// Crash-safe sweep checkpointing (util/checkpoint.hpp): the resume contract
// is bitwise -- an ok entry must round-trip the exact IEEE-754 bits, a fail
// entry its message -- and the file must only ever exist as a complete
// snapshot (write-temp-then-rename), never torn.

#include "util/checkpoint.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>

namespace pdn3d::util {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "pdn3d_" + name + ".ckpt";
}

TEST(CheckpointTest, KeyIsFnv1aOfCanonicalString) {
  EXPECT_NE(checkpoint_key("montecarlo|a"), checkpoint_key("montecarlo|b"));
  EXPECT_EQ(checkpoint_key("same"), checkpoint_key("same"));
}

TEST(CheckpointTest, RoundTripIsBitwiseExact) {
  const std::string path = temp_path("roundtrip");
  std::filesystem::remove(path);
  const std::uint64_t key = checkpoint_key("roundtrip-config");

  // Values chosen to break any text-formatting round trip: negative zero, a
  // denormal, an ulp-precise irrational, and a huge magnitude.
  const double values[] = {-0.0, std::numeric_limits<double>::denorm_min(),
                           0.1 + 0.2, 1.6e308};
  {
    SweepCheckpoint ckpt = SweepCheckpoint::open(path, key, 8, false);
    for (std::uint64_t i = 0; i < 4; ++i) ckpt.record(i, {true, values[i], {}});
    ckpt.record(6, {false, 0.0, "solver ladder exhausted\nwith newline"});
    ckpt.flush();
  }

  SweepCheckpoint resumed = SweepCheckpoint::open(path, key, 8, true);
  EXPECT_EQ(resumed.resumed(), 5u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    const CheckpointEntry* e = resumed.find(i);
    ASSERT_NE(e, nullptr) << "index " << i;
    EXPECT_TRUE(e->ok);
    // Bit equality, not EXPECT_DOUBLE_EQ: -0.0 == 0.0 would pass the weaker
    // check while breaking the byte-identical-output contract.
    EXPECT_EQ(std::bit_cast<std::uint64_t>(e->value), std::bit_cast<std::uint64_t>(values[i]))
        << "index " << i;
  }
  const CheckpointEntry* fail = resumed.find(6);
  ASSERT_NE(fail, nullptr);
  EXPECT_FALSE(fail->ok);
  EXPECT_EQ(fail->message, "solver ladder exhausted with newline");  // folded
  EXPECT_EQ(resumed.find(5), nullptr);  // never computed

  std::filesystem::remove(path);
}

TEST(CheckpointTest, FindReturnsOnlyResumedEntries) {
  const std::string path = temp_path("loaded_only");
  std::filesystem::remove(path);
  SweepCheckpoint ckpt = SweepCheckpoint::open(path, 1, 4, false);
  ckpt.record(0, {true, 1.0, {}});
  // Entries recorded during this run are not handed back: the sweep already
  // has the value, and a find() hit would skip its own bookkeeping.
  EXPECT_EQ(ckpt.find(0), nullptr);
  EXPECT_EQ(ckpt.completed(), 1u);
  ckpt.remove_file();
}

TEST(CheckpointTest, MissingFileIsAFreshStart) {
  const std::string path = temp_path("missing");
  std::filesystem::remove(path);
  const SweepCheckpoint ckpt = SweepCheckpoint::open(path, 42, 10, true);
  EXPECT_EQ(ckpt.resumed(), 0u);
  EXPECT_EQ(ckpt.completed(), 0u);
}

TEST(CheckpointTest, KeyMismatchRefusesResume) {
  const std::string path = temp_path("keymismatch");
  std::filesystem::remove(path);
  {
    SweepCheckpoint ckpt = SweepCheckpoint::open(path, 111, 4, false);
    ckpt.record(0, {true, 1.0, {}});
    ckpt.flush();
  }
  EXPECT_THROW(SweepCheckpoint::open(path, 222, 4, true), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, TotalMismatchRefusesResume) {
  const std::string path = temp_path("totalmismatch");
  std::filesystem::remove(path);
  {
    SweepCheckpoint ckpt = SweepCheckpoint::open(path, 7, 8, false);
    ckpt.flush();
  }
  EXPECT_THROW(SweepCheckpoint::open(path, 7, 4, true), std::runtime_error);
  // total=0 (open-ended) accepts any file total.
  EXPECT_NO_THROW(SweepCheckpoint::open(path, 7, 0, true));
  std::filesystem::remove(path);
}

TEST(CheckpointTest, CorruptFileRefusesResume) {
  const std::string path = temp_path("corrupt");
  {
    std::ofstream out(path);
    out << "not a checkpoint at all\n";
  }
  EXPECT_THROW(SweepCheckpoint::open(path, 7, 4, true), std::runtime_error);
  {
    std::ofstream out(path);
    out << "pdn3d-ckpt v1 key=0000000000000007 total=4\n";
    out << "9 ok 0000000000000000\n";  // index out of range for total=4
  }
  EXPECT_THROW(SweepCheckpoint::open(path, 7, 4, true), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, OpenWithoutResumeDiscardsExistingFile) {
  const std::string path = temp_path("overwrite");
  std::filesystem::remove(path);
  {
    SweepCheckpoint ckpt = SweepCheckpoint::open(path, 7, 4, false);
    ckpt.record(0, {true, 1.0, {}});
    ckpt.flush();
  }
  {
    SweepCheckpoint fresh = SweepCheckpoint::open(path, 7, 4, false);
    EXPECT_EQ(fresh.resumed(), 0u);
    fresh.record(1, {true, 2.0, {}});
    fresh.flush();
  }
  const SweepCheckpoint check = SweepCheckpoint::open(path, 7, 4, true);
  EXPECT_EQ(check.resumed(), 1u);
  EXPECT_EQ(check.find(0), nullptr);  // old entry gone
  ASSERT_NE(check.find(1), nullptr);
  std::filesystem::remove(path);
}

TEST(CheckpointTest, AutoFlushAtIntervalLeavesNoTempFile) {
  const std::string path = temp_path("autoflush");
  std::filesystem::remove(path);
  SweepCheckpoint ckpt = SweepCheckpoint::open(path, 7, 8, false);
  ckpt.set_flush_interval(2);
  ckpt.record(0, {true, 1.0, {}});
  EXPECT_FALSE(std::filesystem::exists(path));  // below the interval
  ckpt.record(1, {true, 2.0, {}});
  EXPECT_TRUE(std::filesystem::exists(path));  // interval reached -> flushed
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));  // renamed, never torn
  ckpt.remove_file();
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(CheckpointTest, RecordedEntriesWinOverResumedOnes) {
  const std::string path = temp_path("recorded_wins");
  std::filesystem::remove(path);
  {
    SweepCheckpoint ckpt = SweepCheckpoint::open(path, 7, 4, false);
    ckpt.record(0, {false, 0.0, "transient failure"});
    ckpt.flush();
  }
  {
    SweepCheckpoint resumed = SweepCheckpoint::open(path, 7, 4, true);
    resumed.record(0, {true, 3.5, {}});  // recomputed successfully this run
    resumed.flush();
  }
  const SweepCheckpoint check = SweepCheckpoint::open(path, 7, 4, true);
  const CheckpointEntry* e = check.find(0);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->ok);
  EXPECT_DOUBLE_EQ(e->value, 3.5);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace pdn3d::util
