#include "util/string_util.hpp"

#include <gtest/gtest.h>

namespace pdn3d::util {
namespace {

TEST(StringUtil, FmtFixed) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(30.03, 2), "30.03");
  EXPECT_EQ(fmt_fixed(-1.5, 0), "-2");  // round-half-even via printf
}

TEST(StringUtil, FmtPercent) {
  EXPECT_EQ(fmt_percent(-0.428), "-42.8%");
  EXPECT_EQ(fmt_percent(0.306), "+30.6%");
  EXPECT_EQ(fmt_percent(0.0, 2), "+0.00%");
}

TEST(StringUtil, SplitBasic) {
  const auto parts = split("0-0-2a-2a", '-');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "0");
  EXPECT_EQ(parts[3], "2a");
}

TEST(StringUtil, SplitKeepsEmptyFields) {
  const auto parts = split("a--b", '-');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(StringUtil, SplitNoSeparator) {
  const auto parts = split("plain", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "plain");
}

TEST(StringUtil, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, ToLower) {
  EXPECT_EQ(to_lower("F2B"), "f2b");
  EXPECT_EQ(to_lower("already"), "already");
}

}  // namespace
}  // namespace pdn3d::util
