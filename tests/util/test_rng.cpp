#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace pdn3d::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint32_t bound : {1u, 2u, 3u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowOneIsZero) {
  Rng rng(9);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BoolProbabilityRoughlyRespected) {
  Rng rng(13);
  int yes = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.next_bool(0.3)) ++yes;
  }
  EXPECT_NEAR(static_cast<double>(yes) / n, 0.3, 0.02);
}

TEST(Rng, BoolExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(Rng, IntInclusiveRange) {
  Rng rng(19);
  std::set<int> seen;
  for (int i = 0; i < 2000; ++i) {
    const int v = rng.next_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, IntDegenerateRange) {
  Rng rng(23);
  EXPECT_EQ(rng.next_int(5, 5), 5);
  EXPECT_EQ(rng.next_int(5, 4), 5);  // clamps to lo
}

TEST(Rng, SplitIsDeterministic) {
  // The parallel sweeps rely on split(seed, i) being a pure function: the
  // same (seed, stream) pair yields the same sequence on any thread, in any
  // order.
  for (std::uint64_t stream : {0ull, 1ull, 7ull, 1000003ull}) {
    Rng a = Rng::split(42, stream);
    Rng b = Rng::split(42, stream);
    for (int i = 0; i < 500; ++i) EXPECT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Rng, SplitStreamsAreIndependent) {
  // Adjacent stream ids (the common case: sample index) must not correlate;
  // the splitmix64 finalizer decorrelates the raw counter.
  Rng a = Rng::split(42, 0);
  Rng b = Rng::split(42, 1);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitSeedsDiverge) {
  Rng a = Rng::split(1, 5);
  Rng b = Rng::split(2, 5);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u32() == b.next_u32()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitStreamMeansStayUniform) {
  // Cheap sanity check that per-stream draws still look uniform -- guards
  // against a broken mixer that maps many streams onto few sequences.
  double sum = 0.0;
  const int streams = 200, draws = 50;
  for (int s = 0; s < streams; ++s) {
    Rng rng = Rng::split(7, static_cast<std::uint64_t>(s));
    for (int i = 0; i < draws; ++i) sum += rng.next_double();
  }
  EXPECT_NEAR(sum / (streams * draws), 0.5, 0.02);
}

TEST(Rng, GeometricMeanApproximatelyCorrect) {
  Rng rng(29);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.next_geometric(4.0);
  EXPECT_NEAR(sum / n, 4.0, 0.25);
}

TEST(Rng, GeometricZeroMean) {
  Rng rng(31);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_geometric(0.0), 0);
}

}  // namespace
}  // namespace pdn3d::util
