#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace pdn3d::util {
namespace {

TEST(Stats, MeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(Stats, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.5, 2.0};
  EXPECT_DOUBLE_EQ(max_value(xs), 7.5);
  EXPECT_DOUBLE_EQ(min_value(xs), -1.0);
}

TEST(Stats, Rms) {
  const std::vector<double> xs = {3.0, 4.0};
  EXPECT_NEAR(rms(xs), std::sqrt(12.5), 1e-12);
}

TEST(Stats, RmseIdenticalIsZero) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(rmse(a, a), 0.0);
}

TEST(Stats, RmseKnownValue) {
  const std::vector<double> a = {0.0, 0.0};
  const std::vector<double> b = {3.0, 4.0};
  EXPECT_NEAR(rmse(a, b), std::sqrt(12.5), 1e-12);
}

TEST(Stats, RmseSizeMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(rmse(a, b), std::invalid_argument);
}

TEST(Stats, RSquaredPerfectFit) {
  const std::vector<double> t = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(r_squared(t, t), 1.0);
}

TEST(Stats, RSquaredMeanPredictorIsZero) {
  const std::vector<double> t = {1.0, 2.0, 3.0};
  const std::vector<double> p = {2.0, 2.0, 2.0};
  EXPECT_NEAR(r_squared(t, p), 0.0, 1e-12);
}

TEST(Stats, PercentileEndpoints) {
  std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Stats, SummaryConsistent) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

}  // namespace
}  // namespace pdn3d::util
