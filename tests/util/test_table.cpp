#include "util/table.hpp"

#include <gtest/gtest.h>

namespace pdn3d::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| a "), std::string::npos);
  EXPECT_NE(out.find("| bb "), std::string::npos);
  EXPECT_NE(out.find("| 1 "), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"x"});
  t.add_row({"wide-cell"});
  const std::string out = t.render();
  // Header row must be padded to the widest cell's width.
  EXPECT_NE(out.find("| x         |"), std::string::npos);
}

TEST(Table, HandlesRaggedRows) {
  Table t({"a", "b"});
  t.add_row({"only-one"});
  t.add_row({"1", "2", "3"});  // extra column
  const std::string out = t.render();
  EXPECT_FALSE(out.empty());
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, SeparatorInsertedBetweenGroups) {
  Table t({"h"});
  t.add_row({"a"});
  t.add_separator();
  t.add_row({"b"});
  const std::string out = t.render();
  // header sep + top + bottom + one group separator = 4 '+--' lines
  int seps = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos; pos = out.find("+-", pos + 1)) {
    ++seps;
  }
  EXPECT_GE(seps, 4);
}

TEST(Table, EmptyTableStillRenders) {
  Table t({"only-header"});
  const std::string out = t.render();
  EXPECT_NE(out.find("only-header"), std::string::npos);
}

}  // namespace
}  // namespace pdn3d::util
