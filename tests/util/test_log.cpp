#include "util/log.hpp"

#include <gtest/gtest.h>

namespace pdn3d::util {
namespace {

TEST(Log, ParseLogLevelNamesAndDigits) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_TRUE(parse_log_level("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("INFO", &level));  // case-insensitive
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(parse_log_level("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(parse_log_level(" error ", &level));  // trimmed
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(parse_log_level("off", &level));
  EXPECT_EQ(level, LogLevel::kOff);
  EXPECT_TRUE(parse_log_level("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(parse_log_level("4", &level));
  EXPECT_EQ(level, LogLevel::kOff);
}

TEST(Log, ParseLogLevelRejectsUnknownInputUntouched) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(parse_log_level("loud", &level));
  EXPECT_FALSE(parse_log_level("", &level));
  EXPECT_FALSE(parse_log_level("7", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
}

TEST(Log, SetLogLevelRoundTrips) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(before);
}

}  // namespace
}  // namespace pdn3d::util
