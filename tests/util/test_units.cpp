#include "util/units.hpp"

#include <gtest/gtest.h>

namespace pdn3d::util {
namespace {

TEST(Units, VoltageConversions) {
  EXPECT_DOUBLE_EQ(to_mV(0.03003), 30.03);
  EXPECT_DOUBLE_EQ(from_mV(30.03), 0.03003);
  EXPECT_DOUBLE_EQ(from_mV(to_mV(1.234)), 1.234);
}

TEST(Units, TimeConversions) {
  EXPECT_DOUBLE_EQ(to_us(109.3e-6), 109.3);
}

TEST(Units, PowerConversions) {
  EXPECT_DOUBLE_EQ(to_mW(0.2205), 220.5);
  EXPECT_DOUBLE_EQ(from_mW(220.5), 0.2205);
}

TEST(Units, ResistanceConversions) {
  EXPECT_DOUBLE_EQ(to_mOhm(0.15), 150.0);
  EXPECT_DOUBLE_EQ(from_mOhm(150.0), 0.15);
}

}  // namespace
}  // namespace pdn3d::util
