#include "util/timer.hpp"

#include <gtest/gtest.h>

#include "obs/metrics.hpp"

namespace pdn3d::util {
namespace {

TEST(Timer, ElapsedIsMonotone) {
  Timer t;
  const double a = t.elapsed_seconds();
  const double b = t.elapsed_seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(Timer, LapRestartsTheLapClockButNotElapsed) {
  Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
  const double lap1 = t.lap_seconds();
  const double lap2 = t.lap_seconds();  // immediately after: near-zero fresh lap
  EXPECT_GE(lap1, 0.0);
  EXPECT_GE(lap2, 0.0);
  EXPECT_LE(lap2, lap1 + 1e-3);
  EXPECT_GE(t.elapsed_seconds(), lap1);  // total keeps accumulating across laps
}

TEST(Timer, ResetClearsBothClocks) {
  Timer t;
  (void)t.lap_seconds();
  t.reset();
  EXPECT_LT(t.elapsed_seconds(), 1.0);
  EXPECT_LT(t.lap_seconds(), 1.0);
}

TEST(ScopedTimer, FeedsHistogramAndCountIntoRegistry) {
  const auto before = obs::counter("test_timer.scope.count").value();
  {
    ScopedTimer scope("test_timer.scope");
    EXPECT_GE(scope.elapsed_seconds(), 0.0);
  }
  EXPECT_EQ(obs::counter("test_timer.scope.count").value(), before + 1);
  EXPECT_GE(obs::histogram("test_timer.scope", obs::time_buckets()).count(), 1u);
}

}  // namespace
}  // namespace pdn3d::util
