// Canonical request identity (api::RequestFingerprint): two requests must
// fingerprint identically exactly when the facade guarantees byte-identical
// output, no matter which surface (CLI flag text, JSON numbers/booleans,
// direct field assignment) filled in the knobs. These tests pin the contract
// the result cache and checkpoint keying build on.

#include <gtest/gtest.h>

#include <string>

#include "api/api.hpp"
#include "api/options.hpp"

namespace pdn3d::api {
namespace {

EvaluateRequest base_request() {
  EvaluateRequest req;
  req.benchmark = core::BenchmarkKind::kWideIo;
  req.op = Operation::kEvaluate;
  req.state = "0-0-0-2";
  return req;
}

TEST(Fingerprint, EqualRequestsFingerprintIdentically) {
  const RequestFingerprint a = base_request().fingerprint();
  const RequestFingerprint b = base_request().fingerprint();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 16u);
}

TEST(Fingerprint, CanonicalTextIsVersionedAndReadable) {
  const RequestFingerprint fp = base_request().fingerprint();
  EXPECT_EQ(fp.canonical.rfind("pdn3d-req-v1|", 0), 0u) << fp.canonical;
  EXPECT_NE(fp.canonical.find("bench=wide-io"), std::string::npos) << fp.canonical;
  EXPECT_NE(fp.canonical.find("op=evaluate"), std::string::npos) << fp.canonical;
  EXPECT_NE(fp.canonical.find("state=0-0-0-2"), std::string::npos) << fp.canonical;
}

// The shared-keyspace guarantee: text parsing (CLI flags), numeric setting
// (JSON numbers), and direct field assignment land on one canonical text.
TEST(Fingerprint, AllOptionSurfacesHashIdentically) {
  EvaluateRequest via_text = base_request();
  ASSERT_TRUE(set_option(&via_text.design, "m2", std::string_view("40")).is_ok());
  ASSERT_TRUE(set_option(&via_text.design, "tl", std::string_view("d")).is_ok());
  ASSERT_TRUE(set_option(&via_text.design, "wb", std::string_view("true")).is_ok());

  EvaluateRequest via_numbers = base_request();
  ASSERT_TRUE(set_option(&via_numbers.design, "m2", 40.0).is_ok());
  ASSERT_TRUE(set_option(&via_numbers.design, "tl", std::string_view("d")).is_ok());
  ASSERT_TRUE(set_option(&via_numbers.design, "wb", true).is_ok());

  EvaluateRequest via_fields = base_request();
  via_fields.design.m2_pct = 40.0;
  via_fields.design.tsv_location = pdn::TsvLocation::kDistributed;
  via_fields.design.wire_bonding = true;

  EXPECT_EQ(via_text.fingerprint(), via_numbers.fingerprint());
  EXPECT_EQ(via_text.fingerprint(), via_fields.fingerprint());
}

TEST(Fingerprint, LegacySetAndSharedTableAgree) {
  DesignOptions via_set;
  ASSERT_TRUE(via_set.set("m3", std::string_view("25")).is_ok());
  ASSERT_TRUE(via_set.set("rdl", std::string_view("bottom")).is_ok());
  ASSERT_TRUE(via_set.set_flag("no-align").is_ok());

  DesignOptions via_table;
  ASSERT_TRUE(set_option(&via_table, "m3", 25.0).is_ok());
  ASSERT_TRUE(set_option(&via_table, "rdl", std::string_view("bottom")).is_ok());
  ASSERT_TRUE(set_option(&via_table, "no-align", true).is_ok());

  EXPECT_EQ(via_set.canonical_text(), via_table.canonical_text());
}

TEST(Fingerprint, OpIrrelevantParametersDoNotAffectIdentity) {
  // analyze ignores samples/alpha...
  EvaluateRequest a = base_request();
  EvaluateRequest b = base_request();
  b.samples = 9999;
  b.alpha = 0.7;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // ...montecarlo reads samples but ignores state/activity/alpha...
  a.op = b.op = Operation::kMonteCarlo;
  EXPECT_EQ(a.samples, 200);
  EXPECT_NE(a.fingerprint(), b.fingerprint());  // samples now matter
  b.samples = a.samples;
  b.state = "different";
  b.alpha = 0.9;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  // ...and cooptimize reads only alpha (the design overlay is ignored).
  a.op = b.op = Operation::kCoOptimize;
  b.alpha = a.alpha;
  ASSERT_TRUE(set_option(&b.design, "m2", 80.0).is_ok());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  b.alpha = 0.55;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

// The EM extension is versioned: any EM field set selects the v2 prefix, so
// the entire pre-EM fingerprint universe (v1) is untouched by construction.
TEST(Fingerprint, EmFieldsVersionTheFingerprint) {
  EvaluateRequest plain = base_request();
  EvaluateRequest em = base_request();
  ASSERT_TRUE(set_option(&em.design, "em-wire-limit", 1.5).is_ok());
  EXPECT_EQ(plain.fingerprint().canonical.rfind("pdn3d-req-v1|", 0), 0u);
  EXPECT_EQ(em.fingerprint().canonical.rfind("pdn3d-req-v2|", 0), 0u);
  EXPECT_NE(plain.fingerprint(), em.fingerprint());

  // The enforcement flag alone is enough to change behavior, so it alone
  // selects v2.
  EvaluateRequest enforce = base_request();
  ASSERT_TRUE(enforce.design.set_flag("em").is_ok());
  EXPECT_EQ(enforce.fingerprint().canonical.rfind("pdn3d-req-v2|", 0), 0u);
}

// Operations that never run the EM pass reset the EM knobs during
// canonicalization, exactly like state/samples/alpha for ops that ignore
// them.
TEST(Fingerprint, EmFieldsAreOpIrrelevantWhereEmNeverRuns) {
  for (const Operation op : {Operation::kMonteCarlo, Operation::kLut, Operation::kValidate}) {
    EvaluateRequest a = base_request();
    a.op = op;
    EvaluateRequest b = a;
    ASSERT_TRUE(set_option(&b.design, "em-temp", 110.0).is_ok());
    ASSERT_TRUE(b.design.set_flag("em").is_ok());
    EXPECT_EQ(a.fingerprint(), b.fingerprint()) << to_string(op);
  }
}

// cooptimize drops the design overlay -- except the EM fields, which
// parameterize its hard constraint and therefore its output.
TEST(Fingerprint, CooptimizeKeepsOnlyEmDesignFields) {
  EvaluateRequest a = base_request();
  a.op = Operation::kCoOptimize;
  EvaluateRequest b = a;
  ASSERT_TRUE(set_option(&b.design, "m2", 80.0).is_ok());  // ignored, as before
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  ASSERT_TRUE(set_option(&b.design, "em-tsv-limit", 0.2).is_ok());  // constraint knob
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(b.fingerprint().canonical.rfind("pdn3d-req-v2|", 0), 0u);
}

// em-check reads state/activity like evaluate does.
TEST(Fingerprint, EmCheckKeepsStateAndActivity) {
  EvaluateRequest a = base_request();
  a.op = Operation::kEmCheck;
  EvaluateRequest b = a;
  b.state = "0-0-2b-0";
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  b.state = a.state;
  b.activity = 0.5;
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, CheckpointPlumbingIsNotIdentity) {
  // Resume is bitwise identical to a fresh run, so checkpointing cannot be
  // part of identity -- this is also what lets the existing checkpoint files
  // key themselves off the fingerprint.
  EvaluateRequest a = base_request();
  EvaluateRequest b = base_request();
  b.checkpoint_path = "/tmp/sweep.ckpt";
  b.resume = true;
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(Fingerprint, DistinctRequestsDiverge) {
  const EvaluateRequest a = base_request();

  EvaluateRequest diff_bench = base_request();
  diff_bench.benchmark = core::BenchmarkKind::kHmc;
  EXPECT_NE(a.fingerprint(), diff_bench.fingerprint());

  EvaluateRequest diff_design = base_request();
  ASSERT_TRUE(set_option(&diff_design.design, "tc", 200.0).is_ok());
  EXPECT_NE(a.fingerprint(), diff_design.fingerprint());

  EvaluateRequest diff_state = base_request();
  diff_state.state = "0-0-2b-0";
  EXPECT_NE(a.fingerprint(), diff_state.fingerprint());

  EvaluateRequest diff_activity = base_request();
  diff_activity.activity = 0.5;
  EXPECT_NE(a.fingerprint(), diff_activity.fingerprint());
}

// Canonicalization is syntactic, not semantic: the empty state (resolved to
// the benchmark default at evaluation time) keeps its own identity.
TEST(Fingerprint, EmptyStateIsNotResolvedToDefault) {
  EvaluateRequest spelled;
  spelled.benchmark = core::BenchmarkKind::kStackedDdr3OffChip;
  spelled.op = Operation::kEvaluate;
  spelled.state = "0-0-0-2";  // this benchmark's default_state text
  EvaluateRequest empty = spelled;
  empty.state.clear();
  EXPECT_NE(spelled.fingerprint(), empty.fingerprint());
}

// Golden value: changing the canonical text format invalidates every
// persisted fingerprint (reports, cached baselines), so it must be a
// deliberate, versioned decision -- bump "pdn3d-req-v1" when you do it.
TEST(Fingerprint, GoldenValueIsStable) {
  EvaluateRequest req;  // `pdn3d analyze off-chip`, all defaults
  const RequestFingerprint fp = req.fingerprint();
  EXPECT_EQ(fp.hex(), "4425fa0e988fed16") << fp.canonical;
}

TEST(Fingerprint, ResultCarriesFingerprint) {
  Session session;
  EvaluateRequest req = base_request();
  const EvaluateResult result = session.evaluate(req);
  ASSERT_TRUE(result.ok()) << result.status.to_string();
  EXPECT_EQ(result.fingerprint, req.fingerprint().hex());
}

// Session::evaluate_group must be indistinguishable from per-request
// evaluate() calls: same outputs, byte for byte, whether or not the group
// was eligible for the multi-RHS batch path.
TEST(Fingerprint, EvaluateGroupMatchesStandaloneByteForByte) {
  Session session;
  std::vector<EvaluateRequest> group;
  for (const char* state : {"0-0-0-2", "0-0-2b-0", "0-0-0-1"}) {
    EvaluateRequest req = base_request();
    req.state = state;
    ASSERT_TRUE(set_option(&req.design, "m2", 30.0).is_ok());
    group.push_back(req);
  }
  const std::vector<EvaluateResult> batched = session.evaluate_group(group);
  ASSERT_EQ(batched.size(), group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    const EvaluateResult fresh = session.evaluate(group[i]);
    ASSERT_TRUE(batched[i].ok()) << batched[i].status.to_string();
    EXPECT_EQ(batched[i].output, fresh.output) << "member " << i;
    EXPECT_EQ(batched[i].exit_code, fresh.exit_code);
    EXPECT_EQ(batched[i].fingerprint, fresh.fingerprint);
    EXPECT_DOUBLE_EQ(batched[i].headline_mv, fresh.headline_mv);
  }
}

// A mixed group (different designs, a non-evaluate op) silently takes the
// per-request fallback -- outputs must still match standalone runs.
TEST(Fingerprint, EvaluateGroupFallbackMatchesStandalone) {
  Session session;
  std::vector<EvaluateRequest> group;
  EvaluateRequest a = base_request();
  EvaluateRequest b = base_request();
  ASSERT_TRUE(set_option(&b.design, "tc", 96.0).is_ok());  // different factor
  EvaluateRequest c = base_request();
  c.op = Operation::kValidate;
  group.push_back(a);
  group.push_back(b);
  group.push_back(c);
  const std::vector<EvaluateResult> batched = session.evaluate_group(group);
  ASSERT_EQ(batched.size(), group.size());
  for (std::size_t i = 0; i < group.size(); ++i) {
    EXPECT_EQ(batched[i].output, session.evaluate(group[i]).output) << "member " << i;
  }
}

}  // namespace
}  // namespace pdn3d::api
