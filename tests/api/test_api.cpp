// The stable evaluation facade (api/api.hpp): request validation, the
// Session's platform cache, and the byte-identity contract between the two
// front ends (one-shot CLI vs `pdn3d serve`) that both render through it.

#include "api/api.hpp"

#include <gtest/gtest.h>

#include <string>

#include "service/protocol.hpp"

namespace pdn3d::api {
namespace {

TEST(OperationTokens, RoundTripAndAnalyzeAlias) {
  for (const Operation op : {Operation::kEvaluate, Operation::kMonteCarlo, Operation::kLut,
                             Operation::kCoOptimize, Operation::kValidate}) {
    Operation parsed{};
    ASSERT_TRUE(parse_operation(to_string(op), &parsed).is_ok()) << to_string(op);
    EXPECT_EQ(parsed, op);
  }
  Operation parsed{};
  ASSERT_TRUE(parse_operation("analyze", &parsed).is_ok());
  EXPECT_EQ(parsed, Operation::kEvaluate);
  EXPECT_FALSE(parse_operation("simulate", &parsed).is_ok());
}

TEST(BenchmarkTokens, RoundTrip) {
  for (const auto kind :
       {core::BenchmarkKind::kStackedDdr3OffChip, core::BenchmarkKind::kStackedDdr3OnChip,
        core::BenchmarkKind::kWideIo, core::BenchmarkKind::kHmc}) {
    core::BenchmarkKind parsed{};
    ASSERT_TRUE(parse_benchmark(benchmark_token(kind), &parsed).is_ok());
    EXPECT_EQ(parsed, kind);
  }
  core::BenchmarkKind parsed{};
  EXPECT_FALSE(parse_benchmark("ddr5", &parsed).is_ok());
}

TEST(EvaluateRequest, ValidateRejectsBadParameters) {
  EvaluateRequest req;
  req.activity = 1.5;
  EXPECT_FALSE(req.validate().is_ok());

  req = EvaluateRequest{};
  req.op = Operation::kMonteCarlo;
  req.samples = 0;
  EXPECT_FALSE(req.validate().is_ok());

  req = EvaluateRequest{};
  req.op = Operation::kCoOptimize;
  req.alpha = 2.0;
  EXPECT_FALSE(req.validate().is_ok());

  EXPECT_TRUE(EvaluateRequest{}.validate().is_ok());
}

TEST(SessionTest, EvaluateNeverThrowsOnInvalidParameters) {
  const Session session;
  EvaluateRequest req;
  req.activity = 7.0;
  const EvaluateResult result = session.evaluate(req);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.exit_code, 1);  // kInvalidArgument -> usage exit code
  EXPECT_EQ(result.output.rfind("error: ", 0), 0u) << result.output;
}

TEST(SessionTest, PlatformIsCachedPerBenchmark) {
  const Session session;
  const core::Platform& a = session.platform(core::BenchmarkKind::kWideIo);
  const core::Platform& b = session.platform(core::BenchmarkKind::kWideIo);
  EXPECT_EQ(&a, &b);
}

TEST(SessionTest, RepeatedEvaluationsAreByteIdentical) {
  const Session session;
  EvaluateRequest req;
  req.benchmark = core::BenchmarkKind::kWideIo;
  req.op = Operation::kEvaluate;
  ASSERT_TRUE(req.design.set("bd", "f2f").is_ok());

  const EvaluateResult cold = session.evaluate(req);  // builds every cache
  const EvaluateResult warm = session.evaluate(req);  // hits every cache
  ASSERT_TRUE(cold.ok()) << cold.output;
  EXPECT_EQ(cold.output, warm.output);
  EXPECT_EQ(cold.exit_code, warm.exit_code);
  EXPECT_DOUBLE_EQ(cold.headline_mv, warm.headline_mv);
}

TEST(SessionTest, ValidateOperationReportsHealthy) {
  const Session session;
  EvaluateRequest req;
  req.benchmark = core::BenchmarkKind::kWideIo;
  req.op = Operation::kValidate;
  const EvaluateResult result = session.evaluate(req);
  ASSERT_TRUE(result.ok()) << result.output;
  EXPECT_EQ(result.exit_code, 0);
  EXPECT_NE(result.output.find("validation passed"), std::string::npos) << result.output;
}

// Golden round trip: the same evaluation specified the CLI way (typed
// DesignOptions built from flag text) and the served way (an NDJSON request
// through the wire-protocol decoder) must render byte-identical output --
// the tentpole's core contract (docs/API.md).
TEST(CliServedParity, WireDecodedRequestRendersIdenticalBytes) {
  const Session session;

  // "CLI" side: what `pdn3d analyze off-chip --state 0-0-0-2 --bd f2f
  //              --m2 15 --tl d` builds.
  EvaluateRequest cli;
  cli.benchmark = core::BenchmarkKind::kStackedDdr3OffChip;
  cli.op = Operation::kEvaluate;
  cli.state = "0-0-0-2";
  ASSERT_TRUE(cli.design.set("bd", "f2f").is_ok());
  ASSERT_TRUE(cli.design.set("m2", "15").is_ok());
  ASSERT_TRUE(cli.design.set("tl", "d").is_ok());

  // "served" side: the same request as one NDJSON line.
  service::Request wire;
  ASSERT_TRUE(service::parse_request(
                  R"({"id":1,"op":"evaluate","benchmark":"off-chip","state":"0-0-0-2",)"
                  R"("design":{"bd":"f2f","m2":15,"tl":"d"}})",
                  &wire)
                  .is_ok());

  const EvaluateResult from_cli = session.evaluate(cli);
  const EvaluateResult from_wire = session.evaluate(wire.eval);
  ASSERT_TRUE(from_cli.ok()) << from_cli.output;
  EXPECT_EQ(from_cli.output, from_wire.output);
  EXPECT_EQ(from_cli.exit_code, from_wire.exit_code);
  EXPECT_DOUBLE_EQ(from_cli.headline_mv, from_wire.headline_mv);
}

}  // namespace
}  // namespace pdn3d::api
