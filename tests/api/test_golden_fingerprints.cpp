// Golden-stability suite for request fingerprints. Every hash pinned here is
// a persisted identity: result-cache keys, checkpoint keys, and report
// fingerprints in the wild all assume these exact values. The EM extension
// versioned the canonical text (pdn3d-req-v2) precisely so that none of these
// v1 hashes move -- if one does, a fingerprint-affecting change leaked into
// the pre-EM keyspace and must be reverted or explicitly re-versioned.

#include <gtest/gtest.h>

#include <string>

#include "api/api.hpp"
#include "api/options.hpp"

namespace pdn3d::api {
namespace {

EvaluateRequest make(core::BenchmarkKind bench, Operation op) {
  EvaluateRequest req;
  req.benchmark = bench;
  req.op = op;
  return req;
}

TEST(GoldenFingerprints, V1HashesAreFrozen) {
  // `pdn3d analyze off-chip`, all defaults -- the original pinned golden.
  EXPECT_EQ(make(core::BenchmarkKind::kStackedDdr3OffChip, Operation::kEvaluate)
                .fingerprint()
                .hex(),
            "4425fa0e988fed16");

  EvaluateRequest analyze = make(core::BenchmarkKind::kWideIo, Operation::kEvaluate);
  analyze.state = "0-0-0-2";
  EXPECT_EQ(analyze.fingerprint().hex(), "8432285474d41d83");

  EXPECT_EQ(make(core::BenchmarkKind::kWideIo, Operation::kValidate).fingerprint().hex(),
            "74b914fd2ae3cb09");

  EXPECT_EQ(make(core::BenchmarkKind::kWideIo, Operation::kLut).fingerprint().hex(),
            "dbc2c00bb02e7be4");

  EvaluateRequest mc = make(core::BenchmarkKind::kWideIo, Operation::kMonteCarlo);
  mc.samples = 50;
  EXPECT_EQ(mc.fingerprint().hex(), "fdf3c57f07cd3fd0");

  EvaluateRequest coopt = make(core::BenchmarkKind::kWideIo, Operation::kCoOptimize);
  coopt.alpha = 0.3;
  EXPECT_EQ(coopt.fingerprint().hex(), "c8111981d9ad0b3c");
}

TEST(GoldenFingerprints, DefaultEmCheckStaysV1) {
  // em-check with no EM fields set uses tech defaults only: a v1 identity
  // (new op token, but no v2 suffix to carry).
  const EvaluateRequest req = make(core::BenchmarkKind::kWideIo, Operation::kEmCheck);
  const RequestFingerprint fp = req.fingerprint();
  EXPECT_EQ(fp.canonical.rfind("pdn3d-req-v1|", 0), 0u) << fp.canonical;
  EXPECT_EQ(fp.hex(), "3589cfafa0b677ae");
}

TEST(GoldenFingerprints, EmFieldsSelectV2) {
  EvaluateRequest req = make(core::BenchmarkKind::kWideIo, Operation::kEmCheck);
  ASSERT_TRUE(set_option(&req.design, "em-temp", 100.0).is_ok());
  const RequestFingerprint fp = req.fingerprint();
  EXPECT_EQ(fp.canonical.rfind("pdn3d-req-v2|", 0), 0u) << fp.canonical;
  EXPECT_EQ(fp.hex(), "733db2f6dd1caf4f");
}

// Canonical texts (not just hashes) of the pre-EM requests must render
// without any EM field: the v1 text is frozen character-for-character.
TEST(GoldenFingerprints, V1CanonicalTextCarriesNoEmFields) {
  const RequestFingerprint fp =
      make(core::BenchmarkKind::kStackedDdr3OffChip, Operation::kEvaluate).fingerprint();
  EXPECT_EQ(fp.canonical.find("em"), std::string::npos) << fp.canonical;
}

}  // namespace
}  // namespace pdn3d::api
