// Typed option parsing for the stable evaluation API (api/options.hpp).
//
// These parsers are the CLI's single path for every option value, so the
// rejection cases double as the CLI's bad-input contract: a malformed value
// is a structured kInvalidArgument, never a silently-parsed 0 (the old
// std::atof behavior this layer replaced).

#include "api/options.hpp"

#include <gtest/gtest.h>

#include "pdn/pdn_config.hpp"

namespace pdn3d::api {
namespace {

TEST(ParseDouble, AcceptsPlainAndScientific) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("x", "1.5", 0.0, 10.0, &v).is_ok());
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(parse_double("x", "2e-1", 0.0, 10.0, &v).is_ok());
  EXPECT_DOUBLE_EQ(v, 0.2);
  EXPECT_TRUE(parse_double("x", "  3.25  ", 0.0, 10.0, &v).is_ok());
  EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(ParseDouble, RejectsGarbageTrailersAndNonFinite) {
  double v = 42.0;
  EXPECT_FALSE(parse_double("x", "abc", 0.0, 10.0, &v).is_ok());
  EXPECT_FALSE(parse_double("x", "1.5zz", 0.0, 10.0, &v).is_ok());
  EXPECT_FALSE(parse_double("x", "", 0.0, 10.0, &v).is_ok());
  EXPECT_FALSE(parse_double("x", "nan", 0.0, 10.0, &v).is_ok());
  EXPECT_FALSE(parse_double("x", "1e400", 0.0, 10.0, &v).is_ok());
  EXPECT_DOUBLE_EQ(v, 42.0);  // out untouched on failure
}

TEST(ParseDouble, EnforcesRangeAndNamesTheOption) {
  double v = 0.0;
  const core::Status st = parse_double("activity", "1.5", 0.0, 1.0, &v);
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("activity"), std::string::npos);
}

TEST(ParseInt, AcceptsAndRejects) {
  long long v = 0;
  EXPECT_TRUE(parse_int("n", "42", 1, 100, &v).is_ok());
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(parse_int("n", "4.5", 1, 100, &v).is_ok());
  EXPECT_FALSE(parse_int("n", "abc", 1, 100, &v).is_ok());
  EXPECT_FALSE(parse_int("n", "", 1, 100, &v).is_ok());
  EXPECT_FALSE(parse_int("n", "0", 1, 100, &v).is_ok());
  EXPECT_FALSE(parse_int("n", "101", 1, 100, &v).is_ok());
  EXPECT_EQ(v, 42);
}

TEST(DesignOptions, NumericSettersEnforceContracts) {
  DesignOptions d;
  EXPECT_TRUE(d.set("m2", 15.0).is_ok());
  EXPECT_TRUE(d.set("m3", 30.0).is_ok());
  EXPECT_FALSE(d.set("m2", 101.0).is_ok());
  EXPECT_FALSE(d.set("m2", -1.0).is_ok());
  EXPECT_FALSE(d.set("tc", 2.5).is_ok());  // TSV count must be integral
  EXPECT_TRUE(d.set("tc", 64.0).is_ok());
  EXPECT_FALSE(d.set("scale", 0.0).is_ok());
  EXPECT_FALSE(d.set("bogus", 1.0).is_ok());
}

TEST(DesignOptions, TextSettersParseEveryCliKnob) {
  DesignOptions d;
  EXPECT_TRUE(d.set("m2", "15").is_ok());
  EXPECT_TRUE(d.set("tc", "128").is_ok());
  EXPECT_TRUE(d.set("tl", "d").is_ok());
  EXPECT_TRUE(d.set("bd", "f2f").is_ok());
  EXPECT_TRUE(d.set("rdl", "bottom").is_ok());
  EXPECT_TRUE(d.set("scale", "0.5").is_ok());
  EXPECT_FALSE(d.set("m2", "abc").is_ok());
  EXPECT_FALSE(d.set("tc", "12.5").is_ok());
  EXPECT_FALSE(d.set("tl", "x").is_ok());
  EXPECT_FALSE(d.set("bd", "f2x").is_ok());
  EXPECT_FALSE(d.set("rdl", "everywhere").is_ok());
  EXPECT_FALSE(d.set("unknown", "1").is_ok());
  EXPECT_TRUE(d.set_flag("wb").is_ok());
  EXPECT_TRUE(d.set_flag("no-align").is_ok());
  EXPECT_FALSE(d.set_flag("bogus").is_ok());
}

TEST(DesignOptions, ApplyPreservesHistoricalCliSemantics) {
  pdn::PdnConfig base;
  base.rdl = pdn::RdlMode::kNone;
  base.tsv_location = pdn::TsvLocation::kEdge;
  base.logic_tsv_location = pdn::TsvLocation::kEdge;
  base.align_tsvs_to_c4 = true;

  DesignOptions d;
  ASSERT_TRUE(d.set("tl", "c").is_ok());
  ASSERT_TRUE(d.set("rdl", "bottom").is_ok());
  ASSERT_TRUE(d.set_flag("no-align").is_ok());
  const pdn::PdnConfig cfg = d.apply(base);

  // tl mirrors onto the logic die when the *base* had no RDL -- even though
  // this request also switches the RDL on (the historical flag ordering).
  EXPECT_EQ(cfg.tsv_location, pdn::TsvLocation::kCenter);
  EXPECT_EQ(cfg.logic_tsv_location, pdn::TsvLocation::kCenter);
  EXPECT_EQ(cfg.rdl, pdn::RdlMode::kBottomOnly);
  EXPECT_FALSE(cfg.align_tsvs_to_c4);
}

TEST(DesignOptions, ApplyLeavesUnsetKnobsAlone) {
  pdn::PdnConfig base;
  base.m2_usage = 0.1;
  base.tsv_count = 33;
  const pdn::PdnConfig cfg = DesignOptions{}.apply(base);
  EXPECT_DOUBLE_EQ(cfg.m2_usage, 0.1);
  EXPECT_EQ(cfg.tsv_count, 33);
}

TEST(ParameterChecks, ActivitySamplesAlpha) {
  EXPECT_TRUE(check_activity(-1.0).is_ok());  // auto
  EXPECT_TRUE(check_activity(0.0).is_ok());
  EXPECT_TRUE(check_activity(1.0).is_ok());
  EXPECT_FALSE(check_activity(-0.5).is_ok());
  EXPECT_FALSE(check_activity(1.5).is_ok());
  EXPECT_TRUE(check_samples(1).is_ok());
  EXPECT_FALSE(check_samples(0).is_ok());
  EXPECT_FALSE(check_samples(10000001).is_ok());
  EXPECT_TRUE(check_alpha(0.3).is_ok());
  EXPECT_FALSE(check_alpha(1.1).is_ok());
}

}  // namespace
}  // namespace pdn3d::api
