// Typed option parsing for the stable evaluation API (api/options.hpp).
//
// These parsers are the CLI's single path for every option value, so the
// rejection cases double as the CLI's bad-input contract: a malformed value
// is a structured kInvalidArgument, never a silently-parsed 0 (the old
// std::atof behavior this layer replaced).

#include "api/options.hpp"

#include <gtest/gtest.h>

#include "pdn/pdn_config.hpp"

namespace pdn3d::api {
namespace {

TEST(ParseDouble, AcceptsPlainAndScientific) {
  double v = 0.0;
  EXPECT_TRUE(parse_double("x", "1.5", 0.0, 10.0, &v).is_ok());
  EXPECT_DOUBLE_EQ(v, 1.5);
  EXPECT_TRUE(parse_double("x", "2e-1", 0.0, 10.0, &v).is_ok());
  EXPECT_DOUBLE_EQ(v, 0.2);
  EXPECT_TRUE(parse_double("x", "  3.25  ", 0.0, 10.0, &v).is_ok());
  EXPECT_DOUBLE_EQ(v, 3.25);
}

TEST(ParseDouble, RejectsGarbageTrailersAndNonFinite) {
  double v = 42.0;
  EXPECT_FALSE(parse_double("x", "abc", 0.0, 10.0, &v).is_ok());
  EXPECT_FALSE(parse_double("x", "1.5zz", 0.0, 10.0, &v).is_ok());
  EXPECT_FALSE(parse_double("x", "", 0.0, 10.0, &v).is_ok());
  EXPECT_FALSE(parse_double("x", "nan", 0.0, 10.0, &v).is_ok());
  EXPECT_FALSE(parse_double("x", "1e400", 0.0, 10.0, &v).is_ok());
  EXPECT_DOUBLE_EQ(v, 42.0);  // out untouched on failure
}

TEST(ParseDouble, EnforcesRangeAndNamesTheOption) {
  double v = 0.0;
  const core::Status st = parse_double("activity", "1.5", 0.0, 1.0, &v);
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("activity"), std::string::npos);
}

TEST(ParseInt, AcceptsAndRejects) {
  long long v = 0;
  EXPECT_TRUE(parse_int("n", "42", 1, 100, &v).is_ok());
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(parse_int("n", "4.5", 1, 100, &v).is_ok());
  EXPECT_FALSE(parse_int("n", "abc", 1, 100, &v).is_ok());
  EXPECT_FALSE(parse_int("n", "", 1, 100, &v).is_ok());
  EXPECT_FALSE(parse_int("n", "0", 1, 100, &v).is_ok());
  EXPECT_FALSE(parse_int("n", "101", 1, 100, &v).is_ok());
  EXPECT_EQ(v, 42);
}

TEST(DesignOptions, NumericSettersEnforceContracts) {
  DesignOptions d;
  EXPECT_TRUE(d.set("m2", 15.0).is_ok());
  EXPECT_TRUE(d.set("m3", 30.0).is_ok());
  EXPECT_FALSE(d.set("m2", 101.0).is_ok());
  EXPECT_FALSE(d.set("m2", -1.0).is_ok());
  EXPECT_FALSE(d.set("tc", 2.5).is_ok());  // TSV count must be integral
  EXPECT_TRUE(d.set("tc", 64.0).is_ok());
  EXPECT_FALSE(d.set("scale", 0.0).is_ok());
  EXPECT_FALSE(d.set("bogus", 1.0).is_ok());
}

TEST(DesignOptions, TextSettersParseEveryCliKnob) {
  DesignOptions d;
  EXPECT_TRUE(d.set("m2", "15").is_ok());
  EXPECT_TRUE(d.set("tc", "128").is_ok());
  EXPECT_TRUE(d.set("tl", "d").is_ok());
  EXPECT_TRUE(d.set("bd", "f2f").is_ok());
  EXPECT_TRUE(d.set("rdl", "bottom").is_ok());
  EXPECT_TRUE(d.set("scale", "0.5").is_ok());
  EXPECT_FALSE(d.set("m2", "abc").is_ok());
  EXPECT_FALSE(d.set("tc", "12.5").is_ok());
  EXPECT_FALSE(d.set("tl", "x").is_ok());
  EXPECT_FALSE(d.set("bd", "f2x").is_ok());
  EXPECT_FALSE(d.set("rdl", "everywhere").is_ok());
  EXPECT_FALSE(d.set("unknown", "1").is_ok());
  EXPECT_TRUE(d.set_flag("wb").is_ok());
  EXPECT_TRUE(d.set_flag("no-align").is_ok());
  EXPECT_FALSE(d.set_flag("bogus").is_ok());
}

TEST(DesignOptions, ApplyPreservesHistoricalCliSemantics) {
  pdn::PdnConfig base;
  base.rdl = pdn::RdlMode::kNone;
  base.tsv_location = pdn::TsvLocation::kEdge;
  base.logic_tsv_location = pdn::TsvLocation::kEdge;
  base.align_tsvs_to_c4 = true;

  DesignOptions d;
  ASSERT_TRUE(d.set("tl", "c").is_ok());
  ASSERT_TRUE(d.set("rdl", "bottom").is_ok());
  ASSERT_TRUE(d.set_flag("no-align").is_ok());
  const pdn::PdnConfig cfg = d.apply(base);

  // tl mirrors onto the logic die when the *base* had no RDL -- even though
  // this request also switches the RDL on (the historical flag ordering).
  EXPECT_EQ(cfg.tsv_location, pdn::TsvLocation::kCenter);
  EXPECT_EQ(cfg.logic_tsv_location, pdn::TsvLocation::kCenter);
  EXPECT_EQ(cfg.rdl, pdn::RdlMode::kBottomOnly);
  EXPECT_FALSE(cfg.align_tsvs_to_c4);
}

TEST(DesignOptions, ApplyLeavesUnsetKnobsAlone) {
  pdn::PdnConfig base;
  base.m2_usage = 0.1;
  base.tsv_count = 33;
  const pdn::PdnConfig cfg = DesignOptions{}.apply(base);
  EXPECT_DOUBLE_EQ(cfg.m2_usage, 0.1);
  EXPECT_EQ(cfg.tsv_count, 33);
}

TEST(DesignOptions, EmKnobsAreRangeCheckedOnEverySurface) {
  DesignOptions d;
  // Numeric surface (JSON numbers).
  EXPECT_TRUE(d.set("em-wire-limit", 2.5).is_ok());
  EXPECT_TRUE(d.set("em-tsv-limit", 0.5).is_ok());
  EXPECT_TRUE(d.set("em-temp", 100.0).is_ok());
  EXPECT_FALSE(d.set("em-wire-limit", 0.0).is_ok());      // (0, 10000]
  EXPECT_FALSE(d.set("em-wire-limit", 20000.0).is_ok());
  EXPECT_FALSE(d.set("em-tsv-limit", -1.0).is_ok());
  EXPECT_FALSE(d.set("em-temp", -100.0).is_ok());         // [-55, 300]
  EXPECT_FALSE(d.set("em-temp", 400.0).is_ok());
  // Text surface (CLI flag values) shares the same parser and ranges.
  DesignOptions t;
  EXPECT_TRUE(t.set("em-wire-limit", "2.5").is_ok());
  EXPECT_TRUE(t.set("em-temp", "100").is_ok());
  EXPECT_FALSE(t.set("em-temp", "abc").is_ok());
  EXPECT_FALSE(t.set("em-tsv-limit", "1e9").is_ok());
  // The enforcement flag.
  EXPECT_FALSE(t.em_enforce);
  EXPECT_TRUE(t.set_flag("em").is_ok());
  EXPECT_TRUE(t.em_enforce);
  // Underscore aliases canonicalize like every other key.
  DesignOptions u;
  EXPECT_TRUE(set_option(&u, "em_wire_limit", 2.5).is_ok());
  EXPECT_TRUE(set_option(&u, "em_temp", 100.0).is_ok());
  EXPECT_EQ(u.em_wire_limit, d.em_wire_limit);
  EXPECT_EQ(u.em_temp_c, d.em_temp_c);
}

TEST(DesignOptions, EmEnabledTracksAnyEmField) {
  EXPECT_FALSE(DesignOptions{}.em_enabled());
  DesignOptions a;
  ASSERT_TRUE(a.set("em-temp", 90.0).is_ok());
  EXPECT_TRUE(a.em_enabled());
  DesignOptions b;
  ASSERT_TRUE(b.set_flag("em").is_ok());
  EXPECT_TRUE(b.em_enabled());
  // Non-EM knobs do not flip it.
  DesignOptions c;
  ASSERT_TRUE(c.set("m2", 15.0).is_ok());
  EXPECT_FALSE(c.em_enabled());
}

TEST(DesignOptions, SpecTableCarriesTheEmKeyspace) {
  // The one shared keyspace: CLI flags, NDJSON fields, and direct set() all
  // iterate design_option_specs(), so the EM keys must be rows there.
  bool saw_wire = false, saw_tsv = false, saw_temp = false, saw_em = false;
  for (const OptionSpec& spec : design_option_specs()) {
    if (spec.key == "em-wire-limit") saw_wire = spec.kind == OptionKind::kNumeric;
    if (spec.key == "em-tsv-limit") saw_tsv = spec.kind == OptionKind::kNumeric;
    if (spec.key == "em-temp") saw_temp = spec.kind == OptionKind::kNumeric;
    if (spec.key == "em") saw_em = spec.kind == OptionKind::kFlag;
  }
  EXPECT_TRUE(saw_wire);
  EXPECT_TRUE(saw_tsv);
  EXPECT_TRUE(saw_temp);
  EXPECT_TRUE(saw_em);

  // The canonical unknown-key error enumerates the keyspace, EM keys
  // included, on every surface.
  DesignOptions d;
  const core::Status st = set_option(&d, "frob", 1.0);
  ASSERT_FALSE(st.is_ok());
  EXPECT_NE(st.message().find("em-wire-limit"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("em-tsv-limit"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("em-temp"), std::string::npos) << st.message();
}

TEST(ParameterChecks, ActivitySamplesAlpha) {
  EXPECT_TRUE(check_activity(-1.0).is_ok());  // auto
  EXPECT_TRUE(check_activity(0.0).is_ok());
  EXPECT_TRUE(check_activity(1.0).is_ok());
  EXPECT_FALSE(check_activity(-0.5).is_ok());
  EXPECT_FALSE(check_activity(1.5).is_ok());
  EXPECT_TRUE(check_samples(1).is_ok());
  EXPECT_FALSE(check_samples(0).is_ok());
  EXPECT_FALSE(check_samples(10000001).is_ok());
  EXPECT_TRUE(check_alpha(0.3).is_ok());
  EXPECT_FALSE(check_alpha(1.1).is_ok());
}

}  // namespace
}  // namespace pdn3d::api
