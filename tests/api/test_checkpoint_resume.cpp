// Crash-safe sweep checkpointing through the evaluation facade: a run that
// dies mid-sweep and resumes from its checkpoint must render byte-identical
// output to an uninterrupted run, at any thread count (the acceptance bar in
// docs/ROBUSTNESS.md). Interruption is simulated by truncating the checkpoint
// file to a prefix of its entries -- exactly what a crash between flushes
// leaves behind.

#include "api/api.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "exec/thread_pool.hpp"

namespace pdn3d::api {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Simulate a crash: keep the header plus the first `keep` entry lines.
void truncate_checkpoint(const std::string& path, std::size_t keep) {
  const auto lines = read_lines(path);
  ASSERT_GT(lines.size(), keep + 1) << "checkpoint too small to truncate";
  std::ofstream out(path, std::ios::trunc);
  for (std::size_t i = 0; i <= keep; ++i) out << lines[i] << "\n";
}

TEST(CheckpointResume, MonteCarloResumeIsBitwiseIdenticalAcrossThreadCounts) {
  const std::string path = testing::TempDir() + "pdn3d_mc_resume.ckpt";
  std::string reference;  // output at threads=1, compared against threads=8
  for (const std::size_t threads : {1u, 8u}) {
    exec::set_default_thread_count(threads);
    const Session session;
    EvaluateRequest req;
    req.benchmark = core::BenchmarkKind::kWideIo;
    req.op = Operation::kMonteCarlo;
    req.samples = 8;

    const EvaluateResult baseline = session.evaluate(req);
    ASSERT_TRUE(baseline.ok()) << baseline.output;

    std::remove(path.c_str());
    req.checkpoint_path = path;
    const EvaluateResult full = session.evaluate(req);
    ASSERT_TRUE(full.ok()) << full.output;
    EXPECT_EQ(full.output, baseline.output);  // checkpointing changes nothing
    ASSERT_TRUE(std::filesystem::exists(path));  // persists after success

    // Crash after 3 of 8 samples, then resume: the 3 recorded samples replay
    // from the file, the tail recomputes, and the output is byte-identical.
    truncate_checkpoint(path, 3);
    req.resume = true;
    const EvaluateResult resumed = session.evaluate(req);
    ASSERT_TRUE(resumed.ok()) << resumed.output;
    EXPECT_EQ(resumed.output, baseline.output);

    // Resuming a complete file is a pure replay and still identical.
    const EvaluateResult replay = session.evaluate(req);
    ASSERT_TRUE(replay.ok()) << replay.output;
    EXPECT_EQ(replay.output, baseline.output);

    if (reference.empty()) {
      reference = baseline.output;
    } else {
      EXPECT_EQ(baseline.output, reference) << "thread count changed the result";
    }
    std::remove(path.c_str());
  }
  exec::set_default_thread_count(0);
}

TEST(CheckpointResume, LutResumeIsBitwiseIdentical) {
  const std::string path = testing::TempDir() + "pdn3d_lut_resume.ckpt";
  std::remove(path.c_str());
  const Session session;
  EvaluateRequest req;
  req.benchmark = core::BenchmarkKind::kHmc;  // 3^4 = 81 states, fast to build
  req.op = Operation::kLut;

  const EvaluateResult baseline = session.evaluate(req);
  ASSERT_TRUE(baseline.ok()) << baseline.output;

  // The checkpointed build bypasses the session's LUT cache; identical output
  // proves the bypass uses the exact same build parameters.
  req.checkpoint_path = path;
  const EvaluateResult full = session.evaluate(req);
  ASSERT_TRUE(full.ok()) << full.output;
  EXPECT_EQ(full.output, baseline.output);

  truncate_checkpoint(path, 40);  // crash halfway through the 81 states
  req.resume = true;
  const EvaluateResult resumed = session.evaluate(req);
  ASSERT_TRUE(resumed.ok()) << resumed.output;
  EXPECT_EQ(resumed.output, baseline.output);
  std::remove(path.c_str());
}

TEST(CheckpointResume, FingerprintMismatchIsAnInputErrorNotSilentMixing) {
  const std::string path = testing::TempDir() + "pdn3d_mismatch.ckpt";
  std::remove(path.c_str());
  const Session session;
  EvaluateRequest req;
  req.benchmark = core::BenchmarkKind::kWideIo;
  req.op = Operation::kMonteCarlo;
  req.samples = 8;
  req.checkpoint_path = path;
  ASSERT_TRUE(session.evaluate(req).ok());

  // Same file, different sweep: the sample values recorded for samples=8 must
  // never seed a samples=16 run.
  req.samples = 16;
  req.resume = true;
  const EvaluateResult mismatched = session.evaluate(req);
  EXPECT_FALSE(mismatched.ok());
  EXPECT_EQ(mismatched.exit_code, 2) << mismatched.output;  // input error

  // A different benchmark is a different fingerprint too.
  req.samples = 8;
  req.benchmark = core::BenchmarkKind::kHmc;
  const EvaluateResult wrong_bench = session.evaluate(req);
  EXPECT_FALSE(wrong_bench.ok());
  EXPECT_EQ(wrong_bench.exit_code, 2) << wrong_bench.output;
  std::remove(path.c_str());
}

TEST(CheckpointResume, ValidateRejectsMeaninglessCheckpointRequests) {
  EvaluateRequest req;
  req.benchmark = core::BenchmarkKind::kWideIo;
  req.op = Operation::kMonteCarlo;
  req.resume = true;  // --resume without --checkpoint
  EXPECT_FALSE(req.validate().is_ok());

  req.resume = false;
  req.checkpoint_path = "/tmp/nope.ckpt";
  req.op = Operation::kEvaluate;  // not a sweep: nothing to checkpoint
  EXPECT_FALSE(req.validate().is_ok());
  req.op = Operation::kValidate;
  EXPECT_FALSE(req.validate().is_ok());
  req.op = Operation::kMonteCarlo;
  EXPECT_TRUE(req.validate().is_ok());
}

}  // namespace
}  // namespace pdn3d::api
