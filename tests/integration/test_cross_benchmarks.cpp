// Cross-benchmark property sweeps: the physical invariants that must hold on
// every benchmark (not just stacked DDR3), parameterized over all four.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/platform.hpp"
#include "cost/cost_model.hpp"

namespace pdn3d::core {
namespace {

class AllBenchmarks : public ::testing::TestWithParam<BenchmarkKind> {
 protected:
  static Platform& platform(BenchmarkKind kind) {
    static std::map<BenchmarkKind, std::unique_ptr<Platform>> cache;
    auto& slot = cache[kind];
    if (!slot) slot = std::make_unique<Platform>(make_benchmark(kind));
    return *slot;
  }

  Platform& p() { return platform(GetParam()); }
};

TEST_P(AllBenchmarks, BaselineWithinFactorTwoOfPaper) {
  auto& plat = p();
  const double ir = plat.measure_ir_mv(plat.benchmark().baseline);
  const double paper = plat.benchmark().paper_baseline_ir_mv;
  EXPECT_GT(ir, 0.5 * paper) << plat.benchmark().name;
  EXPECT_LT(ir, 2.0 * paper) << plat.benchmark().name;
}

TEST_P(AllBenchmarks, MoreMetalAlwaysHelps) {
  auto& plat = p();
  auto cfg = plat.benchmark().baseline;
  const double base = plat.measure_ir_mv(cfg);
  cfg.metal_usage_scale = 1.5;
  const double thick = plat.measure_ir_mv(cfg);
  EXPECT_LT(thick, base) << plat.benchmark().name;
}

TEST_P(AllBenchmarks, MoreAlignedTsvsNeverHurt) {
  auto& plat = p();
  auto cfg = plat.benchmark().baseline;
  // Wide I/O pins TC; doubling it is still a legal *analysis*, only the
  // optimizer respects the JEDEC bound.
  const double base = plat.measure_ir_mv(cfg);
  cfg.tsv_count *= 2;
  const double more = plat.measure_ir_mv(cfg);
  EXPECT_LE(more, base * 1.02) << plat.benchmark().name;
}

TEST_P(AllBenchmarks, IdleColderThanActive) {
  auto& plat = p();
  const auto& bench = plat.benchmark();
  const int dies = bench.stack.num_dram_dies;
  std::string idle = "0";
  for (int d = 1; d < dies; ++d) idle += "-0";
  const double ir_idle = plat.analyze(bench.baseline, idle).dram_max_mv;
  const double ir_active =
      plat.analyze(bench.baseline, bench.default_state, bench.default_io_activity).dram_max_mv;
  EXPECT_LT(ir_idle, ir_active) << bench.name;
}

TEST_P(AllBenchmarks, LutWorstStateIsAnUpperBound) {
  auto& plat = p();
  const auto& lut = plat.lut(plat.benchmark().baseline);
  for (const auto& probe : {std::vector<int>{0, 0, 0, 1}, std::vector<int>{1, 1, 0, 0},
                            std::vector<int>{2, 2, 2, 2}}) {
    EXPECT_LE(lut.max_ir_mv(probe), lut.worst_case_mv() + 1e-9) << plat.benchmark().name;
  }
}

TEST_P(AllBenchmarks, StandardPolicyCompletes) {
  auto& plat = p();
  const auto r = plat.simulate(plat.benchmark().baseline, memctrl::standard_policy());
  EXPECT_TRUE(r.feasible) << plat.benchmark().name;
  EXPECT_EQ(r.reads, plat.benchmark().workload.num_requests) << plat.benchmark().name;
  EXPECT_GT(r.row_hit_fraction, 0.2) << plat.benchmark().name;
}

TEST_P(AllBenchmarks, BaselineCostMatchesPaperColumn) {
  auto& plat = p();
  const double cost = cost::total_cost(plat.benchmark().baseline);
  // Paper Table 9 baseline costs: 0.35 / 0.35 / 0.62 / 0.77.
  const std::map<BenchmarkKind, double> paper = {
      {BenchmarkKind::kStackedDdr3OffChip, 0.35},
      {BenchmarkKind::kStackedDdr3OnChip, 0.35},
      {BenchmarkKind::kWideIo, 0.62},
      {BenchmarkKind::kHmc, 0.77},
  };
  EXPECT_NEAR(cost, paper.at(GetParam()), 0.02) << plat.benchmark().name;
}

TEST_P(AllBenchmarks, WireBondingAlwaysHelps) {
  auto& plat = p();
  auto cfg = plat.benchmark().baseline;
  const double base = plat.measure_ir_mv(cfg);
  cfg.wire_bonding = true;
  EXPECT_LT(plat.measure_ir_mv(cfg), base) << plat.benchmark().name;
}

INSTANTIATE_TEST_SUITE_P(FourBenchmarks, AllBenchmarks,
                         ::testing::Values(BenchmarkKind::kStackedDdr3OffChip,
                                           BenchmarkKind::kStackedDdr3OnChip,
                                           BenchmarkKind::kWideIo, BenchmarkKind::kHmc),
                         [](const auto& info) {
                           std::string name = to_string(info.param);
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace pdn3d::core
