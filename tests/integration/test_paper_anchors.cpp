// Integration tests asserting the qualitative findings of the paper -- the
// orderings and effect directions every experiment relies on. Absolute
// millivolt values are calibration-dependent; these tests pin the *shape*.

#include <gtest/gtest.h>

#include "core/platform.hpp"

namespace pdn3d::core {
namespace {

Platform& off_chip() {
  static Platform p(make_benchmark(BenchmarkKind::kStackedDdr3OffChip));
  return p;
}

Platform& on_chip() {
  static Platform p(make_benchmark(BenchmarkKind::kStackedDdr3OnChip));
  return p;
}

double ir(Platform& p, const pdn::PdnConfig& cfg, const char* state, double act = -1.0) {
  return p.analyze(cfg, state, act).dram_max_mv;
}

TEST(PaperAnchors, BaselineNearPaperValue) {
  // Off-chip stacked DDR3, 0-0-0-2: paper reports 30.03 mV.
  const double v = ir(off_chip(), off_chip().benchmark().baseline, "0-0-0-2");
  EXPECT_GT(v, 22.0);
  EXPECT_LT(v, 38.0);
}

TEST(PaperAnchors, Section3MetalUsage) {
  // "with 2x PDN metal usage, IR drop is reduced more than 40%".
  auto cfg = off_chip().benchmark().baseline;
  const double base = ir(off_chip(), cfg, "0-0-0-2");
  cfg.metal_usage_scale = 2.0;
  const double doubled = ir(off_chip(), cfg, "0-0-0-2");
  EXPECT_LT(doubled, base * 0.6);
}

TEST(PaperAnchors, Section31MountingCoupling) {
  // On-chip with shared (non-dedicated) TSVs couples the logic noise into
  // the DRAM: 30.03 -> 64.41 mV in the paper.
  const double off = ir(off_chip(), off_chip().benchmark().baseline, "0-0-0-2");
  auto shared = on_chip().benchmark().baseline;
  shared.dedicated_tsvs = false;
  const double on = ir(on_chip(), shared, "0-0-0-2");
  EXPECT_GT(on, off * 1.6);

  // Logic self-noise around the paper's 50 mV.
  const auto r = on_chip().analyze(shared, "0-0-0-2");
  EXPECT_GT(r.logic_max_mv, 30.0);
  EXPECT_LT(r.logic_max_mv, 70.0);
}

TEST(PaperAnchors, Section32TsvCountSaturates) {
  // More TSVs lower the IR drop, with diminishing returns (Figure 5).
  auto cfg = off_chip().benchmark().baseline;
  cfg.tsv_count = 15;
  const double v15 = ir(off_chip(), cfg, "0-0-0-2");
  cfg.tsv_count = 60;
  const double v60 = ir(off_chip(), cfg, "0-0-0-2");
  cfg.tsv_count = 240;
  const double v240 = ir(off_chip(), cfg, "0-0-0-2");
  cfg.tsv_count = 480;
  const double v480 = ir(off_chip(), cfg, "0-0-0-2");
  EXPECT_GT(v15, v60);
  EXPECT_GT(v60, v240);
  EXPECT_GE(v240, v480 * 0.99);
  // Saturation: the second halving buys much less than the first.
  EXPECT_LT(v240 - v480, v15 - v60);
}

TEST(PaperAnchors, Section32AlignmentHelpsOnChip) {
  // Figure 5: aligned TSVs beat uniform-pitch TSVs, especially on-chip.
  auto cfg = on_chip().benchmark().baseline;
  cfg.dedicated_tsvs = false;
  cfg.align_tsvs_to_c4 = true;
  const double aligned = ir(on_chip(), cfg, "0-0-0-2");
  cfg.align_tsvs_to_c4 = false;
  const double misaligned = ir(on_chip(), cfg, "0-0-0-2");
  EXPECT_GT(misaligned, aligned);
}

TEST(PaperAnchors, Section33CenterTsvCheapButHot) {
  // Table 2: center TSVs have the lowest cost but the highest IR drop.
  auto edge = off_chip().benchmark().baseline;
  auto center = edge;
  center.tsv_location = pdn::TsvLocation::kCenter;
  center.logic_tsv_location = pdn::TsvLocation::kCenter;
  EXPECT_GT(ir(off_chip(), center, "0-0-0-2"), 1.3 * ir(off_chip(), edge, "0-0-0-2"));
}

TEST(PaperAnchors, Section41DedicatedTsvsDecouple) {
  // Table 3: dedicated TSVs bring the on-chip IR drop down to off-chip level.
  auto shared = on_chip().benchmark().baseline;
  shared.dedicated_tsvs = false;
  auto dedicated = on_chip().benchmark().baseline;
  dedicated.dedicated_tsvs = true;
  const double v_shared = ir(on_chip(), shared, "0-0-0-2");
  const double v_dedicated = ir(on_chip(), dedicated, "0-0-0-2");
  const double v_off = ir(off_chip(), off_chip().benchmark().baseline, "0-0-0-2");
  EXPECT_LT(v_dedicated, 0.6 * v_shared);
  EXPECT_NEAR(v_dedicated, v_off, 0.3 * v_off);
}

TEST(PaperAnchors, Section41WireBondingHelpsSharedMost) {
  // Table 3: wire bonding cuts the non-dedicated on-chip design by ~53% but
  // the off-chip design by only ~10%.
  auto shared = on_chip().benchmark().baseline;
  shared.dedicated_tsvs = false;
  auto shared_wb = shared;
  shared_wb.wire_bonding = true;
  const double drop_on = 1.0 - ir(on_chip(), shared_wb, "0-0-0-2") /
                                   ir(on_chip(), shared, "0-0-0-2");

  auto off = off_chip().benchmark().baseline;
  auto off_wb = off;
  off_wb.wire_bonding = true;
  const double drop_off = 1.0 - ir(off_chip(), off_wb, "0-0-0-2") /
                                    ir(off_chip(), off, "0-0-0-2");
  EXPECT_GT(drop_on, 2.0 * drop_off);
  EXPECT_GT(drop_on, 0.25);
  EXPECT_LT(drop_off, 0.25);
}

TEST(PaperAnchors, Section42F2fSharesPdn) {
  // F2F+B2B cuts the default-state IR drop by ~40% (Table 5: 30.03 -> 17.18).
  auto f2b = off_chip().benchmark().baseline;
  auto f2f = f2b;
  f2f.bonding = pdn::BondingStyle::kF2F;
  const double vb = ir(off_chip(), f2b, "0-0-0-2");
  const double vf = ir(off_chip(), f2f, "0-0-0-2");
  EXPECT_LT(vf, 0.72 * vb);
}

TEST(PaperAnchors, Section43IntraPairOverlapKillsF2fBenefit) {
  // Table 4: overlapping pairs barely benefit; separated pairs benefit a lot.
  auto f2b = off_chip().benchmark().baseline;
  auto f2f = f2b;
  f2f.bonding = pdn::BondingStyle::kF2F;

  // Intra-pair overlapping: dies 3 and 4 (one F2F pair), same bank column.
  const double overlap_gain =
      1.0 - ir(off_chip(), f2f, "0-0-2a-2a") / ir(off_chip(), f2b, "0-0-2a-2a");
  // No overlap: active dies in different pairs.
  const double split_gain =
      1.0 - ir(off_chip(), f2f, "0-2a-0-2a") / ir(off_chip(), f2b, "0-2a-0-2a");
  EXPECT_GT(split_gain, overlap_gain + 0.10);
}

TEST(PaperAnchors, Section43SeparationIncreasesF2fBenefit) {
  auto f2b = off_chip().benchmark().baseline;
  auto f2f = f2b;
  f2f.bonding = pdn::BondingStyle::kF2F;
  const double gain_b =
      1.0 - ir(off_chip(), f2f, "0-0-2b-2a") / ir(off_chip(), f2b, "0-0-2b-2a");
  const double gain_d =
      1.0 - ir(off_chip(), f2f, "0-0-2d-2a") / ir(off_chip(), f2b, "0-0-2d-2a");
  EXPECT_GT(gain_d, gain_b);
}

TEST(PaperAnchors, Section51BalancedStatesWin) {
  // Table 5: 2-2-2-2 at 25% activity has lower max IR than 0-0-0-2 at 100%.
  const auto& base = off_chip().benchmark().baseline;
  EXPECT_LT(ir(off_chip(), base, "2-2-2-2", 0.25), ir(off_chip(), base, "0-0-0-2", 1.0));
}

TEST(PaperAnchors, Section51F2fWorstCaseIsOverlappingState) {
  // For F2F the intra-pair overlapping 0-0-2-2 state overtakes 0-0-0-2.
  auto f2f = off_chip().benchmark().baseline;
  f2f.bonding = pdn::BondingStyle::kF2F;
  EXPECT_GT(ir(off_chip(), f2f, "0-0-2-2", 0.5), ir(off_chip(), f2f, "0-0-0-2", 1.0) * 0.95);
}

TEST(PaperAnchors, Section52PolicyOrdering) {
  auto& p = off_chip();
  const auto base = p.benchmark().baseline;
  const auto s = p.simulate(base, memctrl::standard_policy());
  const auto f = p.simulate(base, memctrl::ir_aware_policy(24.0, memctrl::SchedulingKind::kFcfs));
  const auto d = p.simulate(base, memctrl::ir_aware_policy(24.0, memctrl::SchedulingKind::kDistR));
  ASSERT_TRUE(s.feasible);
  ASSERT_TRUE(f.feasible);
  ASSERT_TRUE(d.feasible);
  // Table 6 ordering: standard slowest, DistR fastest; IR-aware under 24 mV.
  EXPECT_LT(f.runtime_us, s.runtime_us);
  EXPECT_LT(d.runtime_us, f.runtime_us);
  EXPECT_LE(f.max_ir_mv, 24.0);
  EXPECT_LE(d.max_ir_mv, 24.0);
  EXPECT_GT(s.max_ir_mv, 24.0);
}

}  // namespace
}  // namespace pdn3d::core
