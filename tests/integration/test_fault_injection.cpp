/// @file test_fault_injection.cpp
/// @brief Fault-injection suite: plant mesh/input defects and prove every one
/// is either caught by pre-solve validation or recovered by the solver
/// escalation ladder with a dense-verified answer -- never silent garbage.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/benchmarks.hpp"
#include "core/status.hpp"
#include "irdrop/solver.hpp"
#include "pdn/mesh_validator.hpp"
#include "pdn/stack_builder.hpp"

namespace pdn3d::irdrop {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// 6x2 ladder mesh with two taps -- small enough for the dense reference,
/// rich enough that PCG needs real iterations.
pdn::StackModel ladder_mesh() {
  pdn::StackModel m(1.2);
  pdn::LayerGrid g;
  g.nx = 6;
  g.ny = 2;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i + 1 < 6; ++i) {
      m.add_resistor(g.node(i, j), g.node(i + 1, j), 0.5 + 0.1 * i);
    }
  }
  for (int i = 0; i < 6; ++i) {
    m.add_resistor(g.node(i, 0), g.node(i, 1), 0.3, pdn::ElementKind::kVia);
  }
  m.add_tap(g.node(0, 0), 0.2);
  m.add_tap(g.node(5, 1), 0.4);
  return m;
}

TEST(FaultInjection, FloatingNodeCaughtAtConstruction) {
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 4;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  m.add_tap(0, 1.0);
  m.add_resistor(0, 1, 1.0);
  m.add_resistor(2, 3, 1.0);  // island with no path to the tap
  try {
    IrSolver solver(m);
    FAIL() << "floating island must not reach the solver";
  } catch (const core::ValidationError& e) {
    EXPECT_TRUE(e.report().has_check("floating-node")) << e.report().to_string();
  }
}

TEST(FaultInjection, NegativeViaResistanceCaughtAtConstruction) {
  auto m = ladder_mesh();
  // Resistors 10..15 are the via column (kVia); flip one negative.
  std::size_t via_index = 0;
  for (std::size_t i = 0; i < m.resistors().size(); ++i) {
    if (m.resistors()[i].kind == pdn::ElementKind::kVia) via_index = i;
  }
  m.perturb_resistor(via_index, -0.3);
  try {
    IrSolver solver(m);
    FAIL() << "negative via resistance must not reach the solver";
  } catch (const core::ValidationError& e) {
    EXPECT_TRUE(e.report().has_check("non-positive-conductance")) << e.report().to_string();
  }
}

TEST(FaultInjection, NegativeResistanceNeverSilentEvenUnvalidated) {
  // Same defect with validation opted out: defense in depth. The matrix
  // assembly's own stamping guard still refuses the negative conductance, so
  // the defect cannot reach a solver silently through any path.
  auto m = ladder_mesh();
  m.perturb_resistor(0, -0.5);
  IrSolverOptions opts;
  opts.validate = false;
  EXPECT_THROW(IrSolver(m, SolverKind::kPcgIc, opts), std::invalid_argument);
}

TEST(FaultInjection, NanSinkReportedWithNode) {
  const auto m = ladder_mesh();
  IrSolver solver(m);
  std::vector<double> sinks(m.node_count(), 0.01);
  sinks[7] = kNan;
  const auto outcome = solver.solve(SolveRequest{.sinks = sinks});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code(), core::StatusCode::kInputError);
  EXPECT_NE(outcome.status.message().find("node 7"), std::string::npos);
}

TEST(FaultInjection, SingularSystemNeverSilent) {
  // Floating island carrying a load: the system is inconsistent, no rung can
  // solve it, and the ladder must say so.
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 4;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  m.add_tap(0, 1.0);
  m.add_resistor(0, 1, 1.0);
  m.add_resistor(2, 3, 1.0);
  IrSolverOptions opts;
  opts.validate = false;  // sneak past the front door
  opts.cg_max_iterations = 200;
  IrSolver solver(m, SolverKind::kPcgIc, opts);
  const std::vector<double> island_load = {0.0, 0.0, 1.0, 0.0};
  const auto outcome = solver.solve(SolveRequest{.sinks = island_load});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code(), core::StatusCode::kNumericalFailure);
  EXPECT_GE(solver.telemetry().failures, 1u);
}

TEST(FaultInjection, LadderRecoversWhenPcgIsStarved) {
  // Starve both PCG rungs of iterations; the ladder must fall through to a
  // direct rung and still match the dense reference to 1e-8.
  const auto m = ladder_mesh();
  IrSolverOptions starved;
  starved.cg_max_iterations = 1;
  IrSolver solver(m, SolverKind::kPcgIc, starved);
  const std::vector<double> sinks(m.node_count(), 0.01);
  const auto outcome = solver.solve(SolveRequest{.sinks = sinks});
  ASSERT_TRUE(outcome.ok()) << outcome.status.to_string();
  EXPECT_GE(outcome.escalations, 2u);
  EXPECT_TRUE(outcome.kind_used == SolverKind::kBandedDirect ||
              outcome.kind_used == SolverKind::kDense);

  const auto ref_outcome =
      IrSolver(m, SolverKind::kDense).solve(SolveRequest{.sinks = sinks});
  ASSERT_TRUE(ref_outcome.ok()) << ref_outcome.status.to_string();
  const auto& reference = ref_outcome.x;
  ASSERT_EQ(outcome.x.size(), reference.size());
  double ref_max = 0.0;
  for (double v : reference) ref_max = std::max(ref_max, std::abs(v));
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(outcome.x[i], reference[i], 1e-8 * ref_max);
  }

  // Telemetry recorded the failed PCG rungs and the recovery.
  const auto& t = solver.telemetry();
  EXPECT_EQ(t.solves, 1u);
  EXPECT_EQ(t.failures, 0u);
  EXPECT_GE(t.escalations, 2u);
  EXPECT_GE(t.rung_failures[static_cast<std::size_t>(SolverKind::kPcgIc)], 1u);
  EXPECT_GE(t.rung_failures[static_cast<std::size_t>(SolverKind::kPcgJacobi)], 1u);
}

TEST(FaultInjection, FillRatioGuardDeclinesFactorAndLadderRecovers) {
  // A near-zero fill budget makes the sparse-direct factorization decline
  // every mesh; the configured sparse-direct start must fall through the
  // ladder and still deliver a dense-verified answer, with the declined rung
  // visible in telemetry.
  const auto m = ladder_mesh();
  IrSolverOptions opts;
  opts.max_fill_ratio = 1e-9;
  IrSolver solver(m, SolverKind::kSparseDirect, opts);
  EXPECT_FALSE(solver.sparse_factor_available());

  const std::vector<double> sinks(m.node_count(), 0.01);
  const auto outcome = solver.solve(SolveRequest{.sinks = sinks});
  ASSERT_TRUE(outcome.ok()) << outcome.status.to_string();
  EXPECT_GE(outcome.escalations, 1u);
  EXPECT_NE(outcome.kind_used, SolverKind::kSparseDirect);

  const auto ref_outcome =
      IrSolver(m, SolverKind::kDense).solve(SolveRequest{.sinks = sinks});
  ASSERT_TRUE(ref_outcome.ok()) << ref_outcome.status.to_string();
  const auto& reference = ref_outcome.x;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(outcome.x[i], reference[i], 1e-8);
  }

  const auto& t = solver.telemetry();
  EXPECT_GE(t.rung_failures[static_cast<std::size_t>(SolverKind::kSparseDirect)], 1u);
  EXPECT_GE(t.escalations, 1u);
  EXPECT_EQ(t.failures, 0u);
}

TEST(FaultInjection, SingularSubmatrixFailsSparseFactorAndFallsThrough) {
  // A loaded floating island sneaked past validation: the sparse Cholesky
  // factor build hits a non-positive pivot and the rung fails over to the
  // ladder, which (correctly) cannot solve the inconsistent system either --
  // the outcome is a structured numerical failure, never silent garbage.
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 4;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  m.add_tap(0, 1.0);
  m.add_resistor(0, 1, 1.0);
  m.add_resistor(2, 3, 1.0);  // island: its 2x2 submatrix is singular
  IrSolverOptions opts;
  opts.validate = false;  // sneak past the front door
  opts.cg_max_iterations = 200;
  IrSolver solver(m, SolverKind::kSparseDirect, opts);
  EXPECT_FALSE(solver.sparse_factor_available());

  const std::vector<double> island_load = {0.0, 0.0, 1.0, 0.0};
  const auto outcome = solver.solve(SolveRequest{.sinks = island_load});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code(), core::StatusCode::kNumericalFailure);
  EXPECT_TRUE(outcome.x.empty());

  const auto& t = solver.telemetry();
  EXPECT_GE(t.rung_failures[static_cast<std::size_t>(SolverKind::kSparseDirect)], 1u);
  EXPECT_GE(t.failures, 1u);
}

TEST(FaultInjection, PerturbedBenchmarkStackIsCaught) {
  // Full-size paper benchmark, one TSV flipped to NaN deep in the mesh: the
  // validator must still find it.
  const auto bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  auto built = pdn::build_stack(bench.stack, bench.baseline);
  std::size_t tsv_index = built.model.resistors().size();
  for (std::size_t i = 0; i < built.model.resistors().size(); ++i) {
    if (built.model.resistors()[i].kind == pdn::ElementKind::kTsv) {
      tsv_index = i;
      break;
    }
  }
  ASSERT_LT(tsv_index, built.model.resistors().size()) << "benchmark has no TSVs";
  built.model.perturb_resistor(tsv_index, kNan);
  const auto report = pdn::validate_stack_model(built.model);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_check("non-finite-conductance"));
  EXPECT_THROW(IrSolver solver(built.model), core::ValidationError);
}

TEST(FaultInjection, HealthyBenchmarkStillValidates) {
  // Control: the same benchmark unperturbed passes validation and solves on
  // the first rung.
  const auto bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  const auto built = pdn::build_stack(bench.stack, bench.baseline);
  EXPECT_TRUE(pdn::validate_stack_model(built.model).ok());
  IrSolver solver(built.model);
  const std::vector<double> sinks(built.model.node_count(), 0.0);
  const auto outcome = solver.solve(SolveRequest{.sinks = sinks});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.escalations, 0u);
  EXPECT_EQ(outcome.kind_used, SolverKind::kPcgIc);
}

}  // namespace
}  // namespace pdn3d::irdrop
