#include "irdrop/analysis.hpp"

#include <gtest/gtest.h>

#include "floorplan/logic_floorplan.hpp"
#include "pdn/stack_builder.hpp"
#include "tech/presets.hpp"

namespace pdn3d::irdrop {
namespace {

struct Fixture {
  pdn::StackSpec spec;
  pdn::BuiltStack built;
  PowerBinding power;

  explicit Fixture(pdn::PdnConfig cfg = {}) {
    floorplan::DramFloorplanSpec ds;
    ds.width_mm = 6.8;
    ds.height_mm = 6.7;
    ds.bank_cols = 4;
    ds.bank_rows = 2;
    spec.dram_spec = ds;
    spec.dram_fp = floorplan::make_dram_floorplan(ds);
    spec.logic_fp = floorplan::make_t2_floorplan();
    spec.num_dram_dies = 4;
    spec.tech = tech::ddr3_technology();
    built = pdn::build_stack(spec, cfg);
  }

  IrAnalyzer analyzer() const {
    return IrAnalyzer(built.model, spec.dram_fp, spec.logic_fp, power);
  }

  power::MemoryState state(std::string_view s, double act = -1.0) const {
    return power::parse_memory_state(s, spec.dram_spec, act);
  }
};

TEST(IrAnalyzer, TopDieWorstInDefaultState) {
  const Fixture f;
  const auto a = f.analyzer();
  const auto r = a.analyze(f.state("0-0-0-2"));
  ASSERT_EQ(r.dram_dies.size(), 4u);
  // Monotone accumulation up the stack: each die's drop >= the one below.
  EXPECT_LT(r.dram_dies[0].max_mv, r.dram_dies[3].max_mv);
  EXPECT_DOUBLE_EQ(r.dram_max_mv, r.dram_dies[3].max_mv);
  EXPECT_GT(r.dram_max_mv, 5.0);
  EXPECT_LT(r.dram_max_mv, 100.0);
}

TEST(IrAnalyzer, BottomDieActiveDrawsLess) {
  const Fixture f;
  const auto a = f.analyzer();
  const double top = a.analyze(f.state("0-0-0-2")).dram_max_mv;
  const double bottom = a.analyze(f.state("2-0-0-0")).dram_max_mv;
  EXPECT_LT(bottom, top);
}

TEST(IrAnalyzer, IdleStackHasNegligibleDrop) {
  const Fixture f;
  const auto a = f.analyzer();
  const auto r = a.analyze(f.state("0-0-0-0"));
  EXPECT_LT(r.dram_max_mv, 6.0);
  EXPECT_GT(r.dram_max_mv, 0.0);  // idle power still flows
}

TEST(IrAnalyzer, PowerBookkeepingMatchesTable5Convention) {
  const Fixture f;
  const auto a = f.analyzer();
  const auto r = a.analyze(f.state("0-0-0-2", 1.0));
  EXPECT_NEAR(r.active_die_power_mw, 220.5, 1e-6);
  EXPECT_NEAR(r.total_power_mw, 310.5, 1e-6);

  const auto r50 = a.analyze(f.state("0-0-2-2", 0.5));
  EXPECT_NEAR(r50.active_die_power_mw, 175.5, 1e-6);
}

TEST(IrAnalyzer, ActivityReducesDrop) {
  const Fixture f;
  const auto a = f.analyzer();
  const double full = a.analyze(f.state("0-0-0-2", 1.0)).dram_max_mv;
  const double half = a.analyze(f.state("0-0-0-2", 0.5)).dram_max_mv;
  const double quarter = a.analyze(f.state("0-0-0-2", 0.25)).dram_max_mv;
  EXPECT_GT(full, half);
  EXPECT_GT(half, quarter);
}

TEST(IrAnalyzer, InjectionConservesCurrent) {
  const Fixture f;
  const auto a = f.analyzer();
  const auto st = f.state("0-0-0-2", 1.0);
  const auto sinks = a.injection(st);
  double total = 0.0;
  for (double s : sinks) total += s;
  // Total sink current = total DRAM power / VDD (no logic die off-chip).
  EXPECT_NEAR(total, 0.3105 / 1.5, 1e-6);
}

TEST(IrAnalyzer, StateDieCountMismatchThrows) {
  const Fixture f;
  const auto a = f.analyzer();
  EXPECT_THROW(a.analyze(f.state("0-0-2")), std::invalid_argument);
}

TEST(IrAnalyzer, LogicNoiseReportedOnChip) {
  pdn::PdnConfig cfg;
  cfg.mounting = pdn::Mounting::kOnChip;
  const Fixture f(cfg);
  const auto a = f.analyzer();
  const auto r = a.analyze(f.state("0-0-0-2"));
  EXPECT_GT(r.logic_max_mv, 10.0);

  const Fixture off;
  EXPECT_DOUBLE_EQ(off.analyzer().analyze(off.state("0-0-0-2")).logic_max_mv, 0.0);
}

TEST(IrAnalyzer, BlockReportRanksActiveBanksHottest) {
  const Fixture f;
  const auto a = f.analyzer();
  const auto report = a.block_report(f.state("0-0-0-2"), 3);
  ASSERT_EQ(report.size(), f.spec.dram_fp.blocks().size());
  // Hottest-first ordering.
  for (std::size_t i = 1; i < report.size(); ++i) {
    EXPECT_GE(report[i - 1].max_mv, report[i].max_mv);
  }
  // The hottest block on the active die is one of the two reading banks
  // (edge-column pair {0, 1}).
  ASSERT_NE(report.front().block, nullptr);
  EXPECT_EQ(report.front().block->type, floorplan::BlockType::kBankArray);
  EXPECT_LE(report.front().block->bank_index, 1);
  EXPECT_GE(report.front().max_mv, report.front().avg_mv);

  EXPECT_THROW(a.block_report(f.state("0-0-0-2"), 4), std::out_of_range);
  EXPECT_THROW(a.block_report(f.state("0-0-0-2"), -1), std::out_of_range);
}

// The multi-RHS batch path must be bitwise indistinguishable from per-state
// solves: the cross-request coalescing planner and the service's parity
// contract (docs/SERVICE.md) are built on this.
TEST(IrAnalyzer, AnalyzeBatchIsBitwiseIdenticalToStandalone) {
  const Fixture f;
  const auto a = f.analyzer();
  const std::vector<power::MemoryState> states = {
      f.state("0-0-0-2"), f.state("2-0-0-0"), f.state("0-0-2-2", 0.5),
      f.state("0-0-0-0")};
  const auto batched = a.analyze_batch(states);
  ASSERT_EQ(batched.size(), states.size());
  for (std::size_t i = 0; i < states.size(); ++i) {
    const IrResult solo = a.analyze(states[i]);
    ASSERT_EQ(batched[i].dram_dies.size(), solo.dram_dies.size()) << "state " << i;
    for (std::size_t d = 0; d < solo.dram_dies.size(); ++d) {
      EXPECT_EQ(batched[i].dram_dies[d].max_mv, solo.dram_dies[d].max_mv);
      EXPECT_EQ(batched[i].dram_dies[d].avg_mv, solo.dram_dies[d].avg_mv);
    }
    EXPECT_EQ(batched[i].dram_max_mv, solo.dram_max_mv) << "state " << i;
    EXPECT_EQ(batched[i].logic_max_mv, solo.logic_max_mv);
    EXPECT_EQ(batched[i].total_power_mw, solo.total_power_mw);
    EXPECT_EQ(batched[i].active_die_power_mw, solo.active_die_power_mw);
  }
}

TEST(IrAnalyzer, AnalyzeBatchHandlesEdgeSizes) {
  const Fixture f;
  const auto a = f.analyzer();
  EXPECT_TRUE(a.analyze_batch({}).empty());

  const std::vector<power::MemoryState> one = {f.state("0-0-0-2")};
  const auto batched = a.analyze_batch(one);
  ASSERT_EQ(batched.size(), 1u);
  EXPECT_EQ(batched[0].dram_max_mv, a.analyze(one[0]).dram_max_mv);

  // A bad state anywhere in the batch fails the whole call (all-or-nothing).
  const std::vector<power::MemoryState> mixed = {f.state("0-0-0-2"), f.state("0-0-2")};
  EXPECT_THROW((void)a.analyze_batch(mixed), std::invalid_argument);
}

TEST(IrAnalyzer, MoreMetalLowersDrop) {
  pdn::PdnConfig thin;
  pdn::PdnConfig thick;
  thick.metal_usage_scale = 2.0;
  const Fixture f_thin(thin);
  const Fixture f_thick(thick);
  const double ir_thin = f_thin.analyzer().analyze(f_thin.state("0-0-0-2")).dram_max_mv;
  const double ir_thick = f_thick.analyzer().analyze(f_thick.state("0-0-0-2")).dram_max_mv;
  EXPECT_LT(ir_thick, ir_thin * 0.75);  // paper: 2x metal cuts IR > 40%
}

}  // namespace
}  // namespace pdn3d::irdrop
