#include "irdrop/eval_context.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/benchmarks.hpp"
#include "exec/thread_pool.hpp"
#include "pdn/stack_builder.hpp"

namespace pdn3d::irdrop {
namespace {

struct CtxFixture {
  core::Benchmark bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  pdn::BuiltStack built = pdn::build_stack(bench.stack, bench.baseline);
  PowerBinding power;
  IrAnalyzer analyzer{built.model, bench.stack.dram_fp, bench.stack.logic_fp, power};

  power::MemoryState state(const std::string& s) const {
    return power::parse_memory_state(s, bench.stack.dram_spec, 1.0);
  }
};

TEST(EvalContext, AnalyzeMatchesAnalyzer) {
  const CtxFixture f;
  EvalContext ctx(f.analyzer);
  const auto st = f.state("0-0-0-2");
  const auto direct = f.analyzer.analyze(st);
  const auto via_ctx = ctx.analyze(st);
  EXPECT_EQ(via_ctx.dram_max_mv, direct.dram_max_mv);  // same solve, bitwise
  EXPECT_EQ(via_ctx.solver_iterations, direct.solver_iterations);
  EXPECT_EQ(via_ctx.solver_kind, direct.solver_kind);
}

TEST(EvalContext, ScratchReuseDoesNotChangeResults) {
  // Repeated analyses through one context reuse its buffers; the answers
  // must stay bitwise identical to fresh-context analyses.
  const CtxFixture f;
  EvalContext ctx(f.analyzer);
  const std::vector<std::string> states = {"0-0-0-2", "2-0-0-0", "1-1-0-0", "0-0-0-2"};
  for (const auto& s : states) {
    EvalContext fresh(f.analyzer);
    EXPECT_EQ(ctx.analyze(f.state(s)).dram_max_mv, fresh.analyze(f.state(s)).dram_max_mv)
        << s;
  }
}

TEST(EvalContext, ForkSharesAnalyzerButNotStats) {
  const CtxFixture f;
  EvalContext root(f.analyzer);
  (void)root.analyze(f.state("0-0-0-2"));
  EvalContext child = root.fork();
  EXPECT_EQ(&child.analyzer(), &root.analyzer());
  EXPECT_EQ(child.stats().analyses, 0u);  // forks start with zeroed tallies
  EXPECT_EQ(root.stats().analyses, 1u);
  (void)child.analyze(f.state("2-0-0-0"));
  EXPECT_EQ(child.stats().analyses, 1u);
  EXPECT_EQ(root.stats().analyses, 1u);
}

TEST(EvalContext, StatsCountAnalysesAndSolves) {
  const CtxFixture f;
  EvalContext ctx(f.analyzer);
  (void)ctx.analyze(f.state("0-0-0-2"));
  (void)ctx.analyze(f.state("2-0-0-0"));
  EXPECT_EQ(ctx.stats().analyses, 2u);
  EXPECT_GE(ctx.stats().solves, 2u);
}

TEST(EvalContext, RawSolveMatchesUnifiedSolverApi) {
  const CtxFixture f;
  EvalContext ctx(f.analyzer);
  const auto sinks = f.analyzer.injection(f.state("0-0-0-2"));
  const auto via_ctx = ctx.solve(SolveRequest{.sinks = sinks, .want_ir = true});
  const auto direct = f.analyzer.solver().solve(SolveRequest{.sinks = sinks, .want_ir = true});
  ASSERT_TRUE(via_ctx.ok());
  ASSERT_TRUE(direct.ok());
  ASSERT_EQ(via_ctx.x.size(), direct.x.size());
  for (std::size_t i = 0; i < via_ctx.x.size(); ++i) EXPECT_EQ(via_ctx.x[i], direct.x[i]);
}

TEST(ConcurrentEvalContext, ForkedContextsAgreeAcrossThreads) {
  // One forked context per chunk, all sharing the analyzer: results must be
  // bitwise identical to the serial pass (the sweep-engine contract).
  const CtxFixture f;
  const std::vector<std::string> names = {"0-0-0-2", "2-0-0-0", "1-1-0-0",
                                          "0-2-0-0", "0-0-2-0", "0-0-0-1"};
  std::vector<power::MemoryState> states;
  for (const auto& s : names) states.push_back(f.state(s));

  EvalContext serial(f.analyzer);
  std::vector<double> expected;
  for (const auto& st : states) expected.push_back(serial.analyze(st).dram_max_mv);

  exec::ThreadPool pool(4);
  EvalContext root(f.analyzer);
  std::vector<double> got(states.size(), 0.0);
  pool.parallel_chunks(states.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
    EvalContext ctx = root.fork();
    for (std::size_t i = begin; i < end; ++i) got[i] = ctx.analyze(states[i]).dram_max_mv;
  });
  for (std::size_t i = 0; i < states.size(); ++i) EXPECT_EQ(got[i], expected[i]) << names[i];
}

TEST(ConcurrentEvalContext, SharedSolverIsRaceFreeUnderTsan) {
  // Hammer one analyzer from many threads, each through its own context.
  // The assertions are light; the value of this test is running under
  // PDN3D_SANITIZE=thread (scripts/run_sanitized_tests.sh).
  const CtxFixture f;
  const auto st = f.state("0-0-0-2");
  const double expected = f.analyzer.analyze(st).dram_max_mv;
  EvalContext root(f.analyzer);
  std::vector<std::thread> threads;
  std::vector<double> results(4, 0.0);
  for (std::size_t t = 0; t < results.size(); ++t) {
    threads.emplace_back([&, t] {
      EvalContext ctx = root.fork();
      for (int rep = 0; rep < 3; ++rep) results[t] = ctx.analyze(st).dram_max_mv;
    });
  }
  for (auto& th : threads) th.join();
  for (const double r : results) EXPECT_EQ(r, expected);
}

}  // namespace
}  // namespace pdn3d::irdrop
