#include "irdrop/macromodel.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/benchmarks.hpp"
#include "core/platform.hpp"
#include "irdrop/solver.hpp"
#include "obs/metrics.hpp"
#include "opt/cooptimizer.hpp"
#include "pdn/stack_builder.hpp"

namespace pdn3d::irdrop {
namespace {

/// Deterministic value stream in [lo, hi].
class ValueStream {
 public:
  explicit ValueStream(std::uint64_t seed) : state_(seed) {}
  double next(double lo, double hi) {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = static_cast<double>((state_ >> 33) & 0xFFFFFF) / static_cast<double>(0xFFFFFF);
    return lo + (hi - lo) * u;
  }

 private:
  std::uint64_t state_;
};

struct TestStack {
  pdn::StackModel model;
  std::vector<std::size_t> tsv_indices;   ///< resistor indices of inter-die TSVs
  std::vector<std::size_t> mesh_indices;  ///< resistor indices of die-interior elements
};

/// A randomized multi-die stack: `dies` DRAM dies of nx-by-ny device grids,
/// four corner TSVs per interface, taps on die 0 -- the macromodel's target
/// shape at hand-checkable size.
TestStack stacked_mesh(int dies, int nx, int ny, std::uint64_t seed) {
  TestStack out;
  out.model = pdn::StackModel(1.2);
  ValueStream vs(seed);
  std::vector<pdn::LayerGrid> grids;
  for (int d = 0; d < dies; ++d) {
    pdn::LayerGrid g;
    g.die = d;
    g.layer = 0;
    g.nx = nx;
    g.ny = ny;
    g.dx = g.dy = 1.0;
    out.model.add_grid(g);
    grids.push_back(out.model.grids().back());  // base assigned by add_grid
  }
  out.model.set_dram_die_count(dies);
  for (int d = 0; d < dies; ++d) {
    const pdn::LayerGrid& g = grids[static_cast<std::size_t>(d)];
    for (int j = 0; j < ny; ++j) {
      for (int i = 0; i < nx; ++i) {
        if (i + 1 < nx) {
          out.mesh_indices.push_back(out.model.resistors().size());
          out.model.add_resistor(g.node(i, j), g.node(i + 1, j), vs.next(0.3, 0.9));
        }
        if (j + 1 < ny) {
          out.mesh_indices.push_back(out.model.resistors().size());
          out.model.add_resistor(g.node(i, j), g.node(i, j + 1), vs.next(0.3, 0.9));
        }
      }
    }
  }
  for (int d = 0; d + 1 < dies; ++d) {
    const pdn::LayerGrid& lo = grids[static_cast<std::size_t>(d)];
    const pdn::LayerGrid& hi = grids[static_cast<std::size_t>(d) + 1];
    for (const auto [i, j] : {std::pair{0, 0}, std::pair{nx - 1, 0}, std::pair{0, ny - 1},
                              std::pair{nx - 1, ny - 1}}) {
      out.tsv_indices.push_back(out.model.resistors().size());
      out.model.add_resistor(lo.node(i, j), hi.node(i, j), 0.45, pdn::ElementKind::kTsv);
    }
  }
  out.model.add_tap(grids[0].node(0, 0), 0.15);
  out.model.add_tap(grids[0].node(nx - 1, ny - 1), 0.15);
  return out;
}

std::vector<double> sinks_for(std::size_t n, std::uint64_t seed) {
  ValueStream vs(seed);
  std::vector<double> s(n);
  for (double& v : s) v = vs.next(0.0, 0.02);
  return s;
}

std::vector<double> solve_with(const pdn::StackModel& model, SolverKind kind,
                               std::span<const double> sinks, IrSolverOptions options = {}) {
  const IrSolver solver(model, kind, std::move(options));
  const SolveOutcome outcome = solver.solve(SolveRequest{.sinks = sinks});
  EXPECT_TRUE(outcome.ok()) << outcome.status.to_string();
  EXPECT_EQ(outcome.kind_used, kind);
  return outcome.x;
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) worst = std::max(worst, std::abs(x[i] - y[i]));
  return worst;
}

TEST(StackPartition, OneBlockPerDieCoveringEveryNode) {
  const auto bench = core::make_benchmark(core::BenchmarkKind::kWideIo);
  const auto built = pdn::build_stack(bench.stack, bench.baseline);
  const auto part = stack_partition(built.model);
  ASSERT_EQ(part.size(), built.model.node_count());

  std::set<int> dies;
  for (const auto& g : built.model.grids()) dies.insert(g.die);
  std::set<int> blocks(part.begin(), part.end());
  EXPECT_EQ(blocks.size(), dies.size());  // one block per die code
  // Contiguous ids from 0.
  EXPECT_EQ(*blocks.begin(), 0);
  EXPECT_EQ(*blocks.rbegin(), static_cast<int>(dies.size()) - 1);

  // Within one grid, every node belongs to one block.
  for (const auto& g : built.model.grids()) {
    for (std::size_t i = g.base; i < g.base + g.size(); ++i) {
      EXPECT_EQ(part[i], part[g.base]) << "grid " << g.name << " node " << i;
    }
  }
}

TEST(HierTier, MatchesSparseDirectOnRandomizedStacks) {
  for (const std::uint64_t seed : {3ULL, 59ULL, 127ULL}) {
    const int dies = 3 + static_cast<int>(seed % 2);
    const TestStack ts = stacked_mesh(dies, 5, 4, seed);
    const auto sinks = sinks_for(ts.model.node_count(), seed * 13);
    const auto macro = solve_with(ts.model, SolverKind::kMacromodel, sinks);
    const auto direct = solve_with(ts.model, SolverKind::kSparseDirect, sinks);
    EXPECT_LT(max_abs_diff(macro, direct), 1e-10) << "seed " << seed;
  }
}

TEST(HierTier, MatchesSparseDirectOnWideIo) {
  const auto bench = core::make_benchmark(core::BenchmarkKind::kWideIo);
  const auto built = pdn::build_stack(bench.stack, bench.baseline);
  const auto sinks = sinks_for(built.model.node_count(), 17);
  const auto macro = solve_with(built.model, SolverKind::kMacromodel, sinks);
  const auto direct = solve_with(built.model, SolverKind::kSparseDirect, sinks);
  EXPECT_LT(max_abs_diff(macro, direct), 1e-10);
}

TEST(HierTier, WoodburyOverlayMatchesSparseDirect) {
  auto& m_updates = obs::counter("solver.macromodel.woodbury_updates");
  const TestStack ts = stacked_mesh(4, 5, 4, 71);
  auto ctx = std::make_shared<MacromodelContext>();
  IrSolverOptions options;
  options.macromodel = ctx;

  // Anchor the context on the unperturbed design, as prepare_sweep would.
  const IrSolver anchor(ts.model, SolverKind::kMacromodel, options);
  ASSERT_TRUE(anchor.macromodel_available());
  ctx->register_base(anchor.macromodel_base());

  // A TSV-resistance delta: the classic small-rank sweep neighbor.
  pdn::StackModel perturbed = ts.model;
  perturbed.perturb_resistor(ts.tsv_indices[1], 0.55);
  perturbed.perturb_resistor(ts.tsv_indices[2], 0.62);

  const auto u0 = m_updates.value();
  const auto sinks = sinks_for(perturbed.node_count(), 29);
  const auto macro = solve_with(perturbed, SolverKind::kMacromodel, sinks, options);
  EXPECT_EQ(m_updates.value(), u0 + 1);  // rode the overlay, no refactorization
  const auto direct = solve_with(perturbed, SolverKind::kSparseDirect, sinks);
  EXPECT_LT(max_abs_diff(macro, direct), 1e-10);
}

TEST(HierTier, GuardDeclineFallsThroughCleanly) {
  auto& m_fallbacks = obs::counter("solver.macromodel.fallbacks");
  // A single-die mesh has a one-block partition: the macromodel guard
  // declines it (nothing to eliminate hierarchically) and the ladder must
  // recover on sparse-direct, invisibly to the caller.
  const TestStack ts = stacked_mesh(1, 6, 5, 41);
  const IrSolver solver(ts.model, SolverKind::kMacromodel);
  const auto f0 = m_fallbacks.value();
  const auto sinks = sinks_for(ts.model.node_count(), 7);
  const SolveOutcome outcome = solver.solve(SolveRequest{.sinks = sinks});

  ASSERT_TRUE(outcome.ok()) << outcome.status.to_string();
  EXPECT_EQ(outcome.kind_used, SolverKind::kSparseDirect);
  EXPECT_GE(outcome.escalations, 1u);
  EXPECT_FALSE(solver.macromodel_available());
  EXPECT_EQ(solver.telemetry().rung_attempts[0].load(), 1u);
  EXPECT_EQ(solver.telemetry().rung_failures[0].load(), 1u);
  EXPECT_EQ(m_fallbacks.value(), f0 + 1);

  // The recovered answer is the sparse-direct answer, bitwise.
  const auto direct = solve_with(ts.model, SolverKind::kSparseDirect, sinks);
  EXPECT_EQ(outcome.x, direct);
}

TEST(HierTier, NonSpdStackNeverReachesTheTier) {
  // Defense in depth: a planted negative resistance (the classic non-SPD die
  // block) is refused by the matrix assembly's own stamping guard even with
  // validation opted out, so no rung -- macromodel included -- can ever see a
  // non-SPD stack matrix. The rung's own behavior on a non-SPD block matrix
  // is covered at the linalg layer (SchurMacromodel.NonSpdBlockDeclines).
  TestStack ts = stacked_mesh(3, 5, 4, 41);
  ts.model.perturb_resistor(ts.mesh_indices[4], -0.05);
  IrSolverOptions options;
  options.validate = false;
  EXPECT_THROW(IrSolver(ts.model, SolverKind::kMacromodel, options), std::invalid_argument);
}

TEST(HierTier, WoodburyRankCapFallsBackToFreshBuildNotGarbage) {
  auto& m_builds = obs::counter("solver.macromodel.builds");
  const TestStack ts = stacked_mesh(3, 5, 4, 97);
  auto ctx = std::make_shared<MacromodelContext>();
  IrSolverOptions options;
  options.macromodel = ctx;
  options.woodbury_max_rank = 1;  // every real delta is "too large"

  const IrSolver anchor(ts.model, SolverKind::kMacromodel, options);
  ASSERT_TRUE(anchor.macromodel_available());
  ctx->register_base(anchor.macromodel_base());

  pdn::StackModel perturbed = ts.model;
  perturbed.perturb_resistor(ts.tsv_indices[0], 0.5);  // touches 2 nodes > cap

  const auto b0 = m_builds.value();
  const auto sinks = sinks_for(perturbed.node_count(), 61);
  const auto macro = solve_with(perturbed, SolverKind::kMacromodel, sinks, options);
  EXPECT_EQ(m_builds.value(), b0 + 1);  // fresh build, not a forced overlay
  const auto direct = solve_with(perturbed, SolverKind::kSparseDirect, sinks);
  EXPECT_LT(max_abs_diff(macro, direct), 1e-10);
}

TEST(MacromodelConcurrency, SharedContextSolvesBitwiseEqualAcrossThreads) {
  const TestStack ts = stacked_mesh(4, 5, 4, 19);
  auto ctx = std::make_shared<MacromodelContext>();
  IrSolverOptions options;
  options.macromodel = ctx;

  const IrSolver anchor(ts.model, SolverKind::kMacromodel, options);
  ASSERT_TRUE(anchor.macromodel_available());
  ctx->register_base(anchor.macromodel_base());

  // Four sweep neighbors of the anchor (distinct TSV deltas).
  std::vector<pdn::StackModel> variants;
  for (std::size_t v = 0; v < 4; ++v) {
    variants.push_back(ts.model);
    variants.back().perturb_resistor(ts.tsv_indices[v], 0.45 + 0.05 * static_cast<double>(v + 1));
  }
  const auto sinks = sinks_for(ts.model.node_count(), 23);

  // Serial reference, through the same (already-anchored) context.
  std::vector<std::vector<double>> expected;
  for (const auto& m : variants) {
    expected.push_back(solve_with(m, SolverKind::kMacromodel, sinks, options));
  }

  // Worker threads race solver construction (shared block cache + anchor
  // lookup) and solves; every result must be bitwise the serial one.
  std::vector<std::thread> threads;
  std::vector<int> mismatches(8, 0);
  for (std::size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::size_t v = 0; v < variants.size(); ++v) {
        const IrSolver solver(variants[(v + t) % variants.size()], SolverKind::kMacromodel,
                              options);
        const SolveOutcome outcome = solver.solve(SolveRequest{.sinks = sinks});
        if (!outcome.ok() || outcome.kind_used != SolverKind::kMacromodel ||
            outcome.x != expected[(v + t) % variants.size()]) {
          ++mismatches[t];
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t t = 0; t < 8; ++t) EXPECT_EQ(mismatches[t], 0) << "thread " << t;
}

TEST(MacromodelConcurrency, CoOptimizerWinnerBitwiseEqualAcrossThreadCounts) {
  // The tier's headline determinism contract: with the hierarchical tier on,
  // the co-optimizer's sampled fits and re-measured winner are bitwise
  // identical at --threads 1 and --threads 8.
  opt::DesignSpace space;
  space.tsv_locations = {pdn::TsvLocation::kCenter};
  space.dedicated_options = {false};
  space.bonding_options = {pdn::BondingStyle::kF2B};
  space.rdl_options = {pdn::RdlMode::kNone};
  space.wirebond_options = {false};
  space.m2_samples = {0.12, 0.15, 0.18};
  space.m3_samples = {0.15, 0.22, 0.30};
  space.tc_samples = {40, 80};

  const auto run = [&space](int threads) {
    core::Platform platform(core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip));
    platform.set_hierarchical_tier(true);
    opt::CoOptimizer co(space, std::make_unique<core::PlatformEvaluator>(platform), threads);
    return co.optimize(0.5);
  };
  const opt::Optimum serial = run(1);
  const opt::Optimum threaded = run(8);

  EXPECT_EQ(serial.config.summary(), threaded.config.summary());
  EXPECT_EQ(serial.measured_ir_mv, threaded.measured_ir_mv);  // bitwise
  EXPECT_EQ(serial.predicted_ir_mv, threaded.predicted_ir_mv);
  EXPECT_EQ(serial.cost, threaded.cost);
  EXPECT_EQ(serial.objective, threaded.objective);
}

}  // namespace
}  // namespace pdn3d::irdrop
