#include "irdrop/lut.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "floorplan/logic_floorplan.hpp"
#include "pdn/stack_builder.hpp"
#include "tech/presets.hpp"

namespace pdn3d::irdrop {
namespace {

struct LutFixture {
  pdn::StackSpec spec;
  pdn::BuiltStack built;
  PowerBinding power;
  std::unique_ptr<IrAnalyzer> analyzer;

  LutFixture() {
    floorplan::DramFloorplanSpec ds;
    ds.width_mm = 6.8;
    ds.height_mm = 6.7;
    ds.bank_cols = 4;
    ds.bank_rows = 2;
    spec.dram_spec = ds;
    spec.dram_fp = floorplan::make_dram_floorplan(ds);
    spec.logic_fp = floorplan::make_t2_floorplan();
    spec.num_dram_dies = 4;
    spec.tech = tech::ddr3_technology();
    built = pdn::build_stack(spec, pdn::PdnConfig{});
    analyzer = std::make_unique<IrAnalyzer>(built.model, spec.dram_fp, spec.logic_fp, power);
  }
};

TEST(IrLut, CoversAllStates) {
  const LutFixture f;
  const auto lut = IrLut::build(*f.analyzer, f.spec.dram_spec, 2);
  EXPECT_EQ(lut.size(), 81u);  // 3^4
  EXPECT_EQ(lut.die_count(), 4);
  EXPECT_EQ(lut.max_per_die(), 2);
}

TEST(IrLut, MatchesDirectAnalysis) {
  const LutFixture f;
  const auto lut = IrLut::build(*f.analyzer, f.spec.dram_spec, 2, 1.0);
  const auto st = power::make_state_from_counts({0, 0, 0, 2}, f.spec.dram_spec, 1.0);
  EXPECT_NEAR(lut.max_ir_mv({0, 0, 0, 2}), f.analyzer->analyze(st).dram_max_mv, 1e-9);
}

TEST(IrLut, WorstCaseIsTopDiePair) {
  const LutFixture f;
  const auto lut = IrLut::build(*f.analyzer, f.spec.dram_spec, 2, 1.0);
  EXPECT_EQ(lut.worst_case_state(), (std::vector<int>{0, 0, 0, 2}));
  EXPECT_DOUBLE_EQ(lut.worst_case_mv(), lut.max_ir_mv({0, 0, 0, 2}));
}

TEST(IrLut, IdleStateIsSmallest) {
  const LutFixture f;
  const auto lut = IrLut::build(*f.analyzer, f.spec.dram_spec, 2);
  const double idle = lut.max_ir_mv({0, 0, 0, 0});
  EXPECT_LT(idle, lut.max_ir_mv({1, 0, 0, 0}));
  EXPECT_LT(idle, lut.worst_case_mv());
}

TEST(IrLut, DemandFactorScalesEntries) {
  const LutFixture f;
  const auto heavy = IrLut::build(*f.analyzer, f.spec.dram_spec, 2, 1.0);
  const auto light = IrLut::build(*f.analyzer, f.spec.dram_spec, 2, 0.5);
  EXPECT_GT(heavy.max_ir_mv({0, 0, 0, 2}), light.max_ir_mv({0, 0, 0, 2}));
  // Idle state unaffected.
  EXPECT_NEAR(heavy.max_ir_mv({0, 0, 0, 0}), light.max_ir_mv({0, 0, 0, 0}), 1e-9);
}

TEST(IrLut, RangeChecking) {
  const LutFixture f;
  const auto lut = IrLut::build(*f.analyzer, f.spec.dram_spec, 2);
  EXPECT_THROW(lut.max_ir_mv({0, 0, 0}), std::invalid_argument);
  EXPECT_THROW(lut.max_ir_mv({0, 0, 0, 3}), std::out_of_range);
  EXPECT_THROW(lut.max_ir_mv({0, 0, 0, -1}), std::out_of_range);
}

TEST(IrLut, SaveLoadRoundTrip) {
  const LutFixture f;
  const auto lut = IrLut::build(*f.analyzer, f.spec.dram_spec, 2, 0.8);
  std::ostringstream os;
  lut.save(os);
  std::istringstream is(os.str());
  const auto back = IrLut::load(is);
  EXPECT_EQ(back.size(), lut.size());
  EXPECT_EQ(back.die_count(), lut.die_count());
  for (const auto& probe : {std::vector<int>{0, 0, 0, 2}, std::vector<int>{1, 1, 1, 1},
                            std::vector<int>{2, 0, 1, 0}}) {
    EXPECT_NEAR(back.max_ir_mv(probe), lut.max_ir_mv(probe), 1e-4);
  }
}

TEST(IrLut, LoadRejectsMalformedInput) {
  const auto expect_throw = [](const char* text) {
    std::istringstream is(text);
    EXPECT_THROW(IrLut::load(is), std::runtime_error) << text;
  };
  expect_throw("");
  expect_throw("wrong header\n0-0 1.0\n");
  expect_throw("pdn3d-lut v1 dies=2 max=1\n0-0 1.0\n");          // incomplete
  expect_throw("pdn3d-lut v1 dies=2 max=1\n0-0-0 1.0\n");        // wrong die count
  expect_throw("pdn3d-lut v1 dies=2 max=1\n0-0\n");              // missing value
}

TEST(ParallelLut, BuildIsBitwiseIdenticalAcrossThreadCounts) {
  // Every LUT entry derives from its state key alone, so the parallel build
  // must reproduce the serial table exactly.
  const LutFixture f;
  const auto serial = IrLut::build(*f.analyzer, f.spec.dram_spec, 2, 1.0, 1);
  for (const int threads : {2, 8}) {
    const auto lut = IrLut::build(*f.analyzer, f.spec.dram_spec, 2, 1.0, threads);
    ASSERT_EQ(lut.size(), serial.size()) << threads;
    for (int a = 0; a <= 2; ++a) {
      for (int b = 0; b <= 2; ++b) {
        for (int c = 0; c <= 2; ++c) {
          for (int d = 0; d <= 2; ++d) {
            const std::vector<int> key = {a, b, c, d};
            EXPECT_EQ(lut.max_ir_mv(key), serial.max_ir_mv(key)) << threads;
          }
        }
      }
    }
  }
}

TEST(ParallelLut, RejectsNegativeThreads) {
  const LutFixture f;
  EXPECT_THROW(IrLut::build(*f.analyzer, f.spec.dram_spec, 2, 1.0, -1),
               std::invalid_argument);
}

TEST(IrLut, BalancedStatesBeatConcentratedOnes) {
  // The architectural insight of Section 5.1: distributing the same number
  // of active banks across dies lowers the worst-case IR drop.
  const LutFixture f;
  const auto lut = IrLut::build(*f.analyzer, f.spec.dram_spec, 2, 1.0);
  EXPECT_LT(lut.max_ir_mv({1, 1, 1, 1}), lut.max_ir_mv({0, 0, 0, 2}));
  EXPECT_LT(lut.max_ir_mv({2, 2, 2, 2}), lut.max_ir_mv({0, 0, 0, 2}));
}

}  // namespace
}  // namespace pdn3d::irdrop
