#include "irdrop/montecarlo.hpp"

#include <gtest/gtest.h>

#include "core/benchmarks.hpp"
#include "pdn/stack_builder.hpp"

namespace pdn3d::irdrop {
namespace {

struct McFixture {
  core::Benchmark bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  pdn::BuiltStack built = pdn::build_stack(bench.stack, bench.baseline);
  PowerBinding power;
  IrAnalyzer analyzer{built.model, bench.stack.dram_fp, bench.stack.logic_fp, power};
};

TEST(MonteCarlo, PercentilesAreOrdered) {
  const McFixture f;
  MonteCarloConfig cfg;
  cfg.samples = 60;
  const auto r = sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, cfg);
  EXPECT_EQ(r.samples, 60);
  EXPECT_GT(r.mean_mv, 0.0);
  EXPECT_LE(r.p50_mv, r.p95_mv);
  EXPECT_LE(r.p95_mv, r.p99_mv);
  EXPECT_LE(r.p99_mv, r.max_mv + 1e-9);
}

TEST(MonteCarlo, WorstCaseBoundsTypicalOperation) {
  // The paper's design-time worst case (edge-column pair on the top die at
  // full activity) must upper-bound random operation comfortably.
  const McFixture f;
  const auto worst = f.analyzer
                         .analyze(power::parse_memory_state("0-0-0-2",
                                                            f.bench.stack.dram_spec, 1.0))
                         .dram_max_mv;
  MonteCarloConfig cfg;
  cfg.samples = 80;
  const auto r = sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, cfg);
  EXPECT_LT(r.p50_mv, worst);
  EXPECT_LE(r.max_mv, worst * 1.15);  // random states can come close, not far above
}

TEST(MonteCarlo, DeterministicBySeed) {
  const McFixture f;
  MonteCarloConfig cfg;
  cfg.samples = 30;
  const auto a = sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, cfg);
  const auto b = sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, cfg);
  EXPECT_DOUBLE_EQ(a.mean_mv, b.mean_mv);
  cfg.seed = 1234;
  const auto c = sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, cfg);
  EXPECT_NE(a.mean_mv, c.mean_mv);
}

TEST(MonteCarlo, LowerDemandLowersDistribution) {
  const McFixture f;
  MonteCarloConfig heavy;
  heavy.samples = 40;
  MonteCarloConfig light = heavy;
  light.io_demand = 0.4;
  const auto rh = sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, heavy);
  const auto rl = sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, light);
  EXPECT_LT(rl.mean_mv, rh.mean_mv);
}

TEST(ParallelMonteCarlo, BitwiseIdenticalAcrossThreadCounts) {
  // The determinism contract: per-sample counter-derived RNG streams and
  // index-slotted results make every statistic bitwise identical at any
  // thread count. EXPECT_EQ on doubles is deliberate.
  const McFixture f;
  MonteCarloConfig cfg;
  cfg.samples = 48;
  cfg.threads = 1;
  const auto base = sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, cfg);
  for (const int threads : {2, 8}) {
    cfg.threads = threads;
    const auto r = sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, cfg);
    EXPECT_EQ(r.samples, base.samples) << threads;
    EXPECT_EQ(r.mean_mv, base.mean_mv) << threads;
    EXPECT_EQ(r.p50_mv, base.p50_mv) << threads;
    EXPECT_EQ(r.p95_mv, base.p95_mv) << threads;
    EXPECT_EQ(r.p99_mv, base.p99_mv) << threads;
    EXPECT_EQ(r.max_mv, base.max_mv) << threads;
    EXPECT_EQ(r.skipped_samples, base.skipped_samples) << threads;
    EXPECT_EQ(r.solver_escalations, base.solver_escalations) << threads;
    EXPECT_EQ(r.last_failure, base.last_failure) << threads;
  }
}

TEST(ParallelMonteCarlo, RejectsNegativeThreads) {
  const McFixture f;
  MonteCarloConfig cfg;
  cfg.samples = 4;
  cfg.threads = -1;
  EXPECT_THROW(sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, cfg),
               std::invalid_argument);
}

TEST(MonteCarlo, RejectsBadConfig) {
  const McFixture f;
  MonteCarloConfig cfg;
  cfg.samples = 0;
  EXPECT_THROW(sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, cfg),
               std::invalid_argument);
  cfg.samples = 10;
  cfg.max_banks_per_die = 0;
  EXPECT_THROW(sample_ir_distribution(f.analyzer, f.bench.stack.dram_spec, cfg),
               std::invalid_argument);
}

}  // namespace
}  // namespace pdn3d::irdrop
