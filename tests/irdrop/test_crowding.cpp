#include "irdrop/crowding.hpp"

#include <gtest/gtest.h>

#include "core/benchmarks.hpp"
#include "irdrop/analysis.hpp"
#include "pdn/stack_builder.hpp"

namespace pdn3d::irdrop {
namespace {

TEST(Crowding, HandComputedCurrents) {
  // VDD --1ohm-- n0 --2ohm-- n1 with known voltages.
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.add_tap(0, 1.0);
  m.add_resistor(0, 1, 2.0, pdn::ElementKind::kTsv);
  const std::vector<double> v = {0.8, 0.2};
  const auto currents = element_currents(m, v);
  ASSERT_EQ(currents.size(), 1u);
  EXPECT_DOUBLE_EQ(currents[0], 0.3);  // |0.8 - 0.2| / 2

  const auto stats = current_stats(m, v, pdn::ElementKind::kTsv);
  EXPECT_EQ(stats.count, 1u);
  EXPECT_DOUBLE_EQ(stats.max_amps, 0.3);
  EXPECT_DOUBLE_EQ(stats.crowding_factor(), 1.0);

  const auto none = current_stats(m, v, pdn::ElementKind::kF2fVia);
  EXPECT_EQ(none.count, 0u);
  EXPECT_DOUBLE_EQ(none.crowding_factor(), 0.0);
}

TEST(Crowding, SizeMismatchThrows) {
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.add_resistor(0, 1, 1.0);
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(element_currents(m, bad), std::invalid_argument);
  EXPECT_THROW(current_stats(m, bad, pdn::ElementKind::kMesh), std::invalid_argument);
}

struct StackFixture {
  core::Benchmark bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);

  CrowdingStats tsv_stats(const pdn::PdnConfig& cfg, const char* state_text) const {
    const auto built = pdn::build_stack(bench.stack, cfg);
    PowerBinding power;
    power.dram = bench.dram_power;
    power.logic = bench.logic_power;
    const IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp, power);
    const auto state = power::parse_memory_state(state_text, bench.stack.dram_spec);
    return current_stats(built.model, analyzer.node_voltages(state), pdn::ElementKind::kTsv);
  }
};

TEST(Crowding, TsvCurrentsCarryTheSupply) {
  const StackFixture f;
  const auto stats = f.tsv_stats(f.bench.baseline, "0-0-0-2");
  // 3 upper interfaces x 33 TSVs (bottom interface is C4-kind off-chip).
  EXPECT_EQ(stats.count, 99u);
  EXPECT_GT(stats.total_amps, 0.1);  // the active top die draws ~0.15 A
  EXPECT_GT(stats.crowding_factor(), 1.0);
}

TEST(Crowding, FewerTsvsCrowdMore) {
  const StackFixture f;
  auto few = f.bench.baseline;
  few.tsv_count = 15;
  auto many = f.bench.baseline;
  many.tsv_count = 240;
  const auto s_few = f.tsv_stats(few, "0-0-0-2");
  const auto s_many = f.tsv_stats(many, "0-0-0-2");
  // Per-TSV peak current drops sharply with more TSVs.
  EXPECT_GT(s_few.max_amps, 3.0 * s_many.max_amps);
}

TEST(Crowding, IdleStateDrawsLittle) {
  const StackFixture f;
  const auto active = f.tsv_stats(f.bench.baseline, "0-0-0-2");
  const auto idle = f.tsv_stats(f.bench.baseline, "0-0-0-0");
  EXPECT_LT(idle.max_amps, active.max_amps);
}

}  // namespace
}  // namespace pdn3d::irdrop
