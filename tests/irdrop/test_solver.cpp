#include "irdrop/solver.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <span>
#include <vector>

namespace pdn3d::irdrop {
namespace {

/// Test conveniences over the unified entry point: solve and return the
/// voltages (or IR drops), throwing on data-dependent failure like the CLI's
/// error path would.
std::vector<double> solve_voltages(const IrSolver& solver, std::span<const double> sinks) {
  SolveOutcome outcome = solver.solve(SolveRequest{.sinks = sinks});
  if (!outcome.ok()) throw core::NumericalError(std::move(outcome.status));
  return std::move(outcome.x);
}

std::vector<double> solve_drops(const IrSolver& solver, std::span<const double> sinks) {
  SolveOutcome outcome = solver.solve(SolveRequest{.sinks = sinks, .want_ir = true});
  if (!outcome.ok()) throw core::NumericalError(std::move(outcome.status));
  return std::move(outcome.x);
}

/// 8x3 mesh with one corner tap: IC(0) is inexact here, so a starved CG
/// (max_iterations = 1) genuinely fails and exercises the escalation ladder.
pdn::StackModel starvable_mesh() {
  pdn::StackModel m(1.2);
  pdn::LayerGrid g;
  g.nx = 8;
  g.ny = 3;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  for (int j = 0; j < 3; ++j) {
    for (int i = 0; i + 1 < 8; ++i) m.add_resistor(g.node(i, j), g.node(i + 1, j), 0.4);
  }
  for (int j = 0; j + 1 < 3; ++j) {
    for (int i = 0; i < 8; ++i) m.add_resistor(g.node(i, j), g.node(i, j + 1), 0.7);
  }
  m.add_tap(g.node(0, 0), 0.2);
  return m;
}

/// Hand-built models with analytically known solutions.
pdn::StackModel two_node_divider() {
  // VDD --1ohm-- n0 --2ohm-- n1, 1A drawn at n1.
  pdn::StackModel m(1.5);
  pdn::LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  m.add_tap(0, 1.0);
  m.add_resistor(0, 1, 2.0);
  return m;
}

class SolverKinds : public ::testing::TestWithParam<SolverKind> {};

TEST_P(SolverKinds, SeriesDividerExact) {
  const auto m = two_node_divider();
  IrSolver solver(m, GetParam());
  std::vector<double> sinks = {0.0, 1.0};  // 1 A at the far node
  const auto v = solve_voltages(solver, sinks);
  // All current flows through both resistors: v0 = 1.5 - 1*1, v1 = v0 - 2*1.
  EXPECT_NEAR(v[0], 0.5, 1e-9);
  EXPECT_NEAR(v[1], -1.5, 1e-9);
  const auto ir = solve_drops(solver, sinks);
  EXPECT_NEAR(ir[1], 3.0, 1e-9);
}

TEST_P(SolverKinds, ParallelPathsShareCurrent) {
  // VDD taps at both ends of a 3-node chain; 1A in the middle splits evenly.
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 3;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  m.add_tap(0, 1.0);
  m.add_tap(2, 1.0);
  m.add_resistor(0, 1, 1.0);
  m.add_resistor(1, 2, 1.0);
  IrSolver solver(m, GetParam());
  const auto ir = solve_drops(solver, std::vector<double>{0.0, 1.0, 0.0});
  // Symmetric: each branch carries 0.5 A through 2 ohm total.
  EXPECT_NEAR(ir[1], 1.0, 1e-9);
  EXPECT_NEAR(ir[0], 0.5, 1e-9);
  EXPECT_NEAR(ir[2], 0.5, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SolverKinds,
                         ::testing::Values(SolverKind::kSparseDirect, SolverKind::kPcgIc,
                                           SolverKind::kPcgJacobi, SolverKind::kBandedDirect,
                                           SolverKind::kDense));

TEST(IrSolver, NoTapsRejected) {
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.add_resistor(0, 1, 1.0);
  EXPECT_THROW(IrSolver solver(m), std::invalid_argument);
}

TEST(IrSolver, SinkSizeMismatchThrows) {
  const auto m = two_node_divider();
  IrSolver solver(m);
  EXPECT_THROW((void)solver.solve(SolveRequest{.sinks = std::vector<double>{1.0}}),
               std::invalid_argument);
}

TEST(IrSolver, ZeroCurrentMeansNoDrop) {
  const auto m = two_node_divider();
  IrSolver solver(m);
  const auto ir = solve_drops(solver, std::vector<double>{0.0, 0.0});
  EXPECT_NEAR(ir[0], 0.0, 1e-12);
  EXPECT_NEAR(ir[1], 0.0, 1e-12);
}

TEST(IrSolver, SuperpositionHolds) {
  const auto m = two_node_divider();
  IrSolver solver(m);
  const auto a = solve_drops(solver, std::vector<double>{0.5, 0.0});
  const auto b = solve_drops(solver, std::vector<double>{0.0, 0.25});
  const auto ab = solve_drops(solver, std::vector<double>{0.5, 0.25});
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(ab[i], a[i] + b[i], 1e-10);
  }
}

TEST(IrSolver, DensePathMatchesIterative) {
  // Small random-ish ladder network.
  pdn::StackModel m(1.2);
  pdn::LayerGrid g;
  g.nx = 6;
  g.ny = 2;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i + 1 < 6; ++i) {
      m.add_resistor(g.node(i, j), g.node(i + 1, j), 0.5 + 0.1 * i);
    }
  }
  for (int i = 0; i < 6; ++i) m.add_resistor(g.node(i, 0), g.node(i, 1), 0.3);
  m.add_tap(g.node(0, 0), 0.2);
  m.add_tap(g.node(5, 1), 0.4);

  std::vector<double> sinks(m.node_count(), 0.01);
  const auto vi = solve_voltages(IrSolver(m, SolverKind::kPcgIc), sinks);
  const auto vd = solve_voltages(IrSolver(m, SolverKind::kDense), sinks);
  for (std::size_t i = 0; i < vi.size(); ++i) {
    EXPECT_NEAR(vi[i], vd[i], 1e-8);
  }
}

TEST(IrSolver, ConductanceMatrixSymmetric) {
  const auto m = two_node_divider();
  IrSolver solver(m);
  EXPECT_TRUE(solver.conductance_matrix().is_symmetric());
}

TEST(IrSolver, ValidationErrorCarriesStructuredReport) {
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.add_resistor(0, 1, 1.0);  // no taps
  try {
    IrSolver solver(m);
    FAIL() << "expected ValidationError";
  } catch (const core::ValidationError& e) {
    EXPECT_TRUE(e.report().has_check("no-supply-taps"));
  }
}

TEST(IrSolver, MinimalChecksSurviveValidateOptOut) {
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.add_resistor(0, 1, 1.0);
  IrSolverOptions opts;
  opts.validate = false;
  EXPECT_THROW(IrSolver(m, SolverKind::kPcgIc, opts), std::invalid_argument);
}

TEST(IrSolver, EscalationLadderRecoversStarvedPcg) {
  const auto m = starvable_mesh();
  IrSolverOptions starved;
  starved.cg_max_iterations = 1;
  IrSolver solver(m, SolverKind::kPcgIc, starved);
  std::vector<double> sinks(m.node_count(), 0.01);
  const auto outcome = solver.solve(SolveRequest{.sinks = sinks});
  ASSERT_TRUE(outcome.ok()) << outcome.status.to_string();
  // Both PCG rungs starve; a direct rung produces the verified answer.
  EXPECT_GE(outcome.escalations, 2u);
  EXPECT_TRUE(outcome.kind_used == SolverKind::kBandedDirect ||
              outcome.kind_used == SolverKind::kDense);
  EXPECT_EQ(solver.last_kind_used(), outcome.kind_used);

  // And the recovered answer matches an unstarved reference solve.
  const auto reference = solve_voltages(IrSolver(m), sinks);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(outcome.x[i], reference[i], 1e-8);
  }
}

TEST(IrSolver, EscalationCanBeDisabled) {
  const auto m = starvable_mesh();
  IrSolverOptions opts;
  opts.cg_max_iterations = 1;
  opts.escalate = false;
  IrSolver solver(m, SolverKind::kPcgIc, opts);
  const auto outcome =
      solver.solve(SolveRequest{.sinks = std::vector<double>(m.node_count(), 0.01)});
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status.code(), core::StatusCode::kNumericalFailure);
  // Only the configured rung was tried.
  const auto& t = solver.telemetry();
  EXPECT_EQ(t.rung_attempts[static_cast<std::size_t>(SolverKind::kPcgIc)], 1u);
  EXPECT_EQ(t.rung_attempts[static_cast<std::size_t>(SolverKind::kPcgJacobi)], 0u);
  EXPECT_EQ(t.failures, 1u);
}

TEST(IrSolver, TelemetryAccumulatesAcrossSolves) {
  const auto m = two_node_divider();
  IrSolver solver(m);
  (void)solver.solve(SolveRequest{.sinks = std::vector<double>{0.0, 1.0}});
  (void)solver.solve(SolveRequest{.sinks = std::vector<double>{0.5, 0.0}});
  const auto& t = solver.telemetry();
  EXPECT_EQ(t.solves, 2u);
  EXPECT_EQ(t.failures, 0u);
  EXPECT_EQ(t.escalations, 0u);
  EXPECT_EQ(t.rung_attempts[static_cast<std::size_t>(SolverKind::kPcgIc)], 2u);
}

TEST(IrSolver, ExplicitDenseStartIgnoresEscalationLimit) {
  // The dense cap only guards *escalation into* the dense rung; a caller who
  // asked for the signoff path gets it regardless of dimension.
  const auto m = two_node_divider();
  IrSolverOptions opts;
  opts.dense_escalation_limit = 1;  // smaller than the model
  IrSolver solver(m, SolverKind::kDense, opts);
  const auto outcome = solver.solve(SolveRequest{.sinks = std::vector<double>{0.0, 1.0}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.kind_used, SolverKind::kDense);
  EXPECT_EQ(outcome.iterations, 0u);  // direct rungs report no iterations
}

TEST(IrSolver, WantIrIsExactVoltageComplement) {
  // want_ir must be a pure post-processing of the same solve: ir = vdd - v,
  // bitwise, never a second (possibly differently-converged) solve.
  const auto m = two_node_divider();
  IrSolver solver(m);
  const std::vector<double> sinks = {0.0, 1.0};

  const auto outcome = solver.solve(SolveRequest{.sinks = sinks});
  ASSERT_TRUE(outcome.ok());
  const auto ir = solver.solve(SolveRequest{.sinks = sinks, .want_ir = true});
  ASSERT_TRUE(ir.ok());
  ASSERT_EQ(ir.x.size(), outcome.x.size());
  for (std::size_t i = 0; i < ir.x.size(); ++i) {
    EXPECT_EQ(ir.x[i], m.vdd() - outcome.x[i]);
  }
}

TEST(IrSolver, FailedSolveLeavesNoPartialResult) {
  // Callers must never observe partially-written results: a failed outcome
  // carries an empty solution vector, not a half-filled one.
  const auto m = starvable_mesh();
  IrSolverOptions opts;
  opts.cg_max_iterations = 1;
  opts.escalate = false;
  IrSolver solver(m, SolverKind::kPcgIc, opts);
  const auto outcome = solver.solve(
      SolveRequest{.sinks = std::vector<double>(m.node_count(), 0.01), .want_ir = true});
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.x.empty());
}

TEST(IrSolver, CallerScratchReuseIsBitwiseStable) {
  const auto m = starvable_mesh();
  IrSolver solver(m);
  const std::vector<double> sinks(m.node_count(), 0.01);
  const auto fresh = solver.solve(SolveRequest{.sinks = sinks});
  ASSERT_TRUE(fresh.ok());
  SolveScratch scratch;
  for (int rep = 0; rep < 3; ++rep) {
    const auto reused = solver.solve(SolveRequest{.sinks = sinks}, &scratch);
    ASSERT_TRUE(reused.ok());
    ASSERT_EQ(reused.x.size(), fresh.x.size());
    for (std::size_t i = 0; i < fresh.x.size(); ++i) EXPECT_EQ(reused.x[i], fresh.x[i]);
  }
}

TEST(IrSolver, SolverKindNamesStable) {
  // The rung names appear in failure trails and CLI output; keep them fixed.
  EXPECT_STREQ(to_string(SolverKind::kSparseDirect), "sparse-direct");
  EXPECT_STREQ(to_string(SolverKind::kPcgIc), "ic-pcg");
  EXPECT_STREQ(to_string(SolverKind::kPcgJacobi), "jacobi-pcg");
  EXPECT_STREQ(to_string(SolverKind::kBandedDirect), "banded-direct");
  EXPECT_STREQ(to_string(SolverKind::kDense), "dense-cholesky");
}

TEST(IrSolver, SelectSolverKindThreshold) {
  // The heuristic contract sweeps rely on: one-shot callers keep ic-pcg,
  // many-solve callers get the cached sparse-direct factor.
  EXPECT_EQ(select_solver_kind(0), SolverKind::kPcgIc);
  EXPECT_EQ(select_solver_kind(1), SolverKind::kPcgIc);
  EXPECT_EQ(select_solver_kind(kSparseDirectMinSolves - 1), SolverKind::kPcgIc);
  EXPECT_EQ(select_solver_kind(kSparseDirectMinSolves), SolverKind::kSparseDirect);
  EXPECT_EQ(select_solver_kind(100000), SolverKind::kSparseDirect);
}

TEST(IrSolver, SparseDirectMatchesIterativeOnLadderNetwork) {
  pdn::StackModel m(1.2);
  pdn::LayerGrid g;
  g.nx = 6;
  g.ny = 2;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i + 1 < 6; ++i) {
      m.add_resistor(g.node(i, j), g.node(i + 1, j), 0.5 + 0.1 * i);
    }
  }
  for (int i = 0; i < 6; ++i) m.add_resistor(g.node(i, 0), g.node(i, 1), 0.3);
  m.add_tap(g.node(0, 0), 0.2);
  m.add_tap(g.node(5, 1), 0.4);

  IrSolver sparse(m, SolverKind::kSparseDirect);
  EXPECT_EQ(sparse.kind(), SolverKind::kSparseDirect);
  EXPECT_TRUE(sparse.sparse_factor_available());

  std::vector<double> sinks(m.node_count(), 0.01);
  const auto outcome = sparse.solve(SolveRequest{.sinks = sinks});
  ASSERT_TRUE(outcome.ok()) << outcome.status.to_string();
  EXPECT_EQ(outcome.kind_used, SolverKind::kSparseDirect);
  EXPECT_EQ(outcome.iterations, 0u);  // direct rungs report no iterations

  const auto vi = solve_voltages(IrSolver(m, SolverKind::kPcgIc), sinks);
  for (std::size_t i = 0; i < vi.size(); ++i) {
    EXPECT_NEAR(outcome.x[i], vi[i], 1e-8);
  }
}

TEST(IrSolver, BatchedSolveBitwiseMatchesIndividualSolvesInIndexOrder) {
  const auto m = starvable_mesh();
  IrSolver solver(m, SolverKind::kSparseDirect);
  const std::size_t n = m.node_count();

  constexpr std::size_t kBatch = 4;
  std::vector<double> sinks(n * kBatch, 0.0);
  for (std::size_t r = 0; r < kBatch; ++r) {
    for (std::size_t i = 0; i < n; ++i) {
      sinks[r * n + i] = 0.001 * static_cast<double>(r * 7 + i % 5);
    }
  }

  const auto batch = solver.solve(SolveRequest{.sinks = sinks, .batch_count = kBatch});
  ASSERT_TRUE(batch.ok()) << batch.status.to_string();
  ASSERT_EQ(batch.x.size(), n * kBatch);
  EXPECT_EQ(batch.kind_used, SolverKind::kSparseDirect);

  for (std::size_t r = 0; r < kBatch; ++r) {
    const auto one = solver.solve(
        SolveRequest{.sinks = std::span<const double>(sinks.data() + r * n, n)});
    ASSERT_TRUE(one.ok());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batch.x[r * n + i], one.x[i]) << "slice " << r << " node " << i;
    }
  }
}

TEST(IrSolver, BatchedIrConversionPerSlice) {
  const auto m = two_node_divider();
  IrSolver solver(m, SolverKind::kSparseDirect);
  const std::vector<double> sinks = {0.0, 1.0, 0.0, 0.5};  // two 2-node slices
  const auto v = solver.solve(SolveRequest{.sinks = sinks, .batch_count = 2});
  const auto ir = solver.solve(SolveRequest{.sinks = sinks, .want_ir = true, .batch_count = 2});
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(ir.ok());
  ASSERT_EQ(ir.x.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ir.x[i], m.vdd() - v.x[i]);
  }
}

TEST(IrSolver, BatchRequestValidation) {
  const auto m = two_node_divider();
  IrSolver solver(m);
  const std::vector<double> sinks = {0.0, 1.0, 0.0};  // not a multiple of n=2
  EXPECT_THROW((void)solver.solve(SolveRequest{.sinks = sinks, .batch_count = 2}),
               std::invalid_argument);
  EXPECT_THROW((void)solver.solve(SolveRequest{.sinks = sinks, .batch_count = 0}),
               std::invalid_argument);
}

TEST(IrSolver, BatchFailsAsAWhole) {
  // All-or-nothing: one bad slice fails the batch, and the failure names it.
  const auto m = two_node_divider();
  IrSolver solver(m, SolverKind::kSparseDirect);
  std::vector<double> sinks = {0.0, 1.0, 0.0, 1.0, 0.0, 1.0};
  sinks[2 * 2 + 1] = std::numeric_limits<double>::quiet_NaN();  // slice 2
  const auto outcome = solver.solve(SolveRequest{.sinks = sinks, .batch_count = 3});
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.x.empty());
  EXPECT_EQ(outcome.status.code(), core::StatusCode::kInputError);
  EXPECT_NE(outcome.status.message().find("slice 2"), std::string::npos)
      << outcome.status.message();
}

TEST(IrSolver, DeclinedSparseFactorFallsDownLadder) {
  // A fill guard of ~zero declines the factorization; the configured
  // sparse-direct start must escalate and still return a verified answer.
  const auto m = starvable_mesh();
  IrSolverOptions opts;
  opts.max_fill_ratio = 1e-9;
  IrSolver solver(m, SolverKind::kSparseDirect, opts);
  EXPECT_FALSE(solver.sparse_factor_available());

  const std::vector<double> sinks(m.node_count(), 0.01);
  const auto outcome = solver.solve(SolveRequest{.sinks = sinks});
  ASSERT_TRUE(outcome.ok()) << outcome.status.to_string();
  EXPECT_GE(outcome.escalations, 1u);
  EXPECT_NE(outcome.kind_used, SolverKind::kSparseDirect);

  const auto reference = solve_voltages(IrSolver(m), sinks);
  for (std::size_t i = 0; i < reference.size(); ++i) {
    EXPECT_NEAR(outcome.x[i], reference[i], 1e-8);
  }
}

TEST(IrSolver, WarmStartScratchStaysCorrect) {
  // Warm starts change the CG trajectory, never the answer (verified against
  // the residual tolerance like every other solve).
  const auto m = starvable_mesh();
  IrSolver solver(m);
  const std::size_t n = m.node_count();
  SolveScratch scratch;
  scratch.warm_start = true;
  std::vector<double> sinks(n, 0.005);
  for (int rep = 0; rep < 3; ++rep) {
    sinks[3] = 0.005 + 0.001 * rep;
    const auto outcome = solver.solve(SolveRequest{.sinks = sinks}, &scratch);
    ASSERT_TRUE(outcome.ok());
    const auto reference = solve_voltages(IrSolver(m), sinks);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(outcome.x[i], reference[i], 1e-8);
    }
  }
  // The scratch retained the previous voltages for the next warm start.
  EXPECT_EQ(scratch.warm.size(), n);
}

}  // namespace
}  // namespace pdn3d::irdrop
