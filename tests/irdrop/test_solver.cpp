#include "irdrop/solver.hpp"

#include <gtest/gtest.h>

namespace pdn3d::irdrop {
namespace {

/// Hand-built models with analytically known solutions.
pdn::StackModel two_node_divider() {
  // VDD --1ohm-- n0 --2ohm-- n1, 1A drawn at n1.
  pdn::StackModel m(1.5);
  pdn::LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  m.add_tap(0, 1.0);
  m.add_resistor(0, 1, 2.0);
  return m;
}

class SolverKinds : public ::testing::TestWithParam<SolverKind> {};

TEST_P(SolverKinds, SeriesDividerExact) {
  const auto m = two_node_divider();
  IrSolver solver(m, GetParam());
  std::vector<double> sinks = {0.0, 1.0};  // 1 A at the far node
  const auto v = solver.solve(sinks);
  // All current flows through both resistors: v0 = 1.5 - 1*1, v1 = v0 - 2*1.
  EXPECT_NEAR(v[0], 0.5, 1e-9);
  EXPECT_NEAR(v[1], -1.5, 1e-9);
  const auto ir = solver.solve_ir(sinks);
  EXPECT_NEAR(ir[1], 3.0, 1e-9);
}

TEST_P(SolverKinds, ParallelPathsShareCurrent) {
  // VDD taps at both ends of a 3-node chain; 1A in the middle splits evenly.
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 3;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  m.add_tap(0, 1.0);
  m.add_tap(2, 1.0);
  m.add_resistor(0, 1, 1.0);
  m.add_resistor(1, 2, 1.0);
  IrSolver solver(m, GetParam());
  const auto ir = solver.solve_ir(std::vector<double>{0.0, 1.0, 0.0});
  // Symmetric: each branch carries 0.5 A through 2 ohm total.
  EXPECT_NEAR(ir[1], 1.0, 1e-9);
  EXPECT_NEAR(ir[0], 0.5, 1e-9);
  EXPECT_NEAR(ir[2], 0.5, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SolverKinds,
                         ::testing::Values(SolverKind::kPcgIc, SolverKind::kPcgJacobi,
                                           SolverKind::kBandedDirect, SolverKind::kDense));

TEST(IrSolver, NoTapsRejected) {
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.add_resistor(0, 1, 1.0);
  EXPECT_THROW(IrSolver solver(m), std::invalid_argument);
}

TEST(IrSolver, SinkSizeMismatchThrows) {
  const auto m = two_node_divider();
  IrSolver solver(m);
  EXPECT_THROW(solver.solve(std::vector<double>{1.0}), std::invalid_argument);
}

TEST(IrSolver, ZeroCurrentMeansNoDrop) {
  const auto m = two_node_divider();
  IrSolver solver(m);
  const auto ir = solver.solve_ir(std::vector<double>{0.0, 0.0});
  EXPECT_NEAR(ir[0], 0.0, 1e-12);
  EXPECT_NEAR(ir[1], 0.0, 1e-12);
}

TEST(IrSolver, SuperpositionHolds) {
  const auto m = two_node_divider();
  IrSolver solver(m);
  const auto a = solver.solve_ir(std::vector<double>{0.5, 0.0});
  const auto b = solver.solve_ir(std::vector<double>{0.0, 0.25});
  const auto ab = solver.solve_ir(std::vector<double>{0.5, 0.25});
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_NEAR(ab[i], a[i] + b[i], 1e-10);
  }
}

TEST(IrSolver, DensePathMatchesIterative) {
  // Small random-ish ladder network.
  pdn::StackModel m(1.2);
  pdn::LayerGrid g;
  g.nx = 6;
  g.ny = 2;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i + 1 < 6; ++i) {
      m.add_resistor(g.node(i, j), g.node(i + 1, j), 0.5 + 0.1 * i);
    }
  }
  for (int i = 0; i < 6; ++i) m.add_resistor(g.node(i, 0), g.node(i, 1), 0.3);
  m.add_tap(g.node(0, 0), 0.2);
  m.add_tap(g.node(5, 1), 0.4);

  std::vector<double> sinks(m.node_count(), 0.01);
  const auto vi = IrSolver(m, SolverKind::kPcgIc).solve(sinks);
  const auto vd = IrSolver(m, SolverKind::kDense).solve(sinks);
  for (std::size_t i = 0; i < vi.size(); ++i) {
    EXPECT_NEAR(vi[i], vd[i], 1e-8);
  }
}

TEST(IrSolver, ConductanceMatrixSymmetric) {
  const auto m = two_node_divider();
  IrSolver solver(m);
  EXPECT_TRUE(solver.conductance_matrix().is_symmetric());
}

}  // namespace
}  // namespace pdn3d::irdrop
