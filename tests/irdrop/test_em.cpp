// Electromigration pass (irdrop::em_check): branch currents recovered from
// the solved voltages become current densities via per-layer / per-TSV
// cross-section geometry, checked against limits and summarized as Black's
// MTTF. Hand-computed densities pin the unit chain (A, um^2 -> MA/cm^2); the
// wide-io goldens pin the full pass at 1e-10 so a silent geometry or unit
// regression cannot slip through.

#include "irdrop/em.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/benchmarks.hpp"
#include "core/platform.hpp"
#include "irdrop/analysis.hpp"
#include "pdn/stack_builder.hpp"

namespace pdn3d::irdrop {
namespace {

constexpr double kPi = 3.14159265358979323846;

// A 2-node model with one known branch current: VDD --1ohm-- n0 --2ohm-- n1,
// voltages chosen so the branch carries |0.8 - 0.2| / 2 = 0.3 A.
pdn::StackModel two_node_model(pdn::ElementKind kind, double usage, double thickness_um) {
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  g.vdd_usage = usage;
  g.thickness_um = thickness_um;
  m.add_grid(g);
  m.add_tap(0, 1.0);
  m.add_resistor(0, 1, 2.0, kind);
  return m;
}

TEST(EmCheck, TsvDensityFromDiameter) {
  const auto m = two_node_model(pdn::ElementKind::kTsv, 0.5, 0.3);
  tech::Technology tech;
  tech.em.tsv_diameter_um = 5.0;
  const std::vector<double> v = {0.8, 0.2};
  const auto rep = em_check(m, tech, v);

  const auto* tsv = rep.find(pdn::ElementKind::kTsv);
  ASSERT_NE(tsv, nullptr);
  EXPECT_EQ(tsv->current.count, 1u);
  EXPECT_DOUBLE_EQ(tsv->current.max_amps, 0.3);
  // J[MA/cm^2] = 100 * I[A] / area[um^2], area = pi/4 * d^2.
  const double area = kPi * 0.25 * 5.0 * 5.0;
  EXPECT_NEAR(tsv->max_j_ma_cm2, 100.0 * 0.3 / area, 1e-12);
  EXPECT_DOUBLE_EQ(tsv->limit_ma_cm2, tech.em.tsv_limit_ma_cm2);
  EXPECT_GT(tsv->mttf_hours, 0.0);
  EXPECT_EQ(rep.find(pdn::ElementKind::kC4), nullptr);  // kind absent, not zeroed
}

TEST(EmCheck, MeshDensityFromGridGeometry) {
  // An x-directed mesh segment's cross-section is usage * dy * thickness:
  // 0.5 * 1.0 mm * 1000 * 0.3 um = 150 um^2.
  const auto m = two_node_model(pdn::ElementKind::kMesh, 0.5, 0.3);
  const tech::Technology tech;
  const std::vector<double> v = {0.8, 0.2};
  const auto rep = em_check(m, tech, v);
  const auto* mesh = rep.find(pdn::ElementKind::kMesh);
  ASSERT_NE(mesh, nullptr);
  EXPECT_NEAR(mesh->max_j_ma_cm2, 100.0 * 0.3 / 150.0, 1e-12);
  EXPECT_DOUBLE_EQ(mesh->limit_ma_cm2, tech.em.wire_limit_ma_cm2);
}

TEST(EmCheck, LimitOverridesAndViolationCounting) {
  const auto m = two_node_model(pdn::ElementKind::kTsv, 0.5, 0.3);
  const tech::Technology tech;
  const std::vector<double> v = {0.8, 0.2};

  EmOptions opts;
  opts.tsv_limit_ma_cm2 = 1e-3;  // far below the ~1.5 MA/cm^2 the branch carries
  const auto rep = em_check(m, tech, v, opts);
  ASSERT_EQ(rep.kinds.size(), 1u);
  EXPECT_EQ(rep.total_violations, 1u);
  EXPECT_FALSE(rep.clean());
  EXPECT_DOUBLE_EQ(rep.kinds[0].limit_ma_cm2, 1e-3);
  EXPECT_GT(rep.worst_utilization, 1.0);

  // The ~1.5 MA/cm^2 branch also violates the default 0.5 MA/cm^2 TSV
  // limit, but a generous override clears it -- the limit is the only
  // thing that changed, so the verdict must follow it.
  EXPECT_FALSE(em_check(m, tech, v).clean());
  EmOptions generous;
  generous.tsv_limit_ma_cm2 = 10.0;
  EXPECT_TRUE(em_check(m, tech, v, generous).clean());
}

TEST(EmCheck, ZeroCrossSectionIsTypedError) {
  // A zero-diameter TSV tech entry must surface as std::invalid_argument --
  // never as a silent NaN/Inf density (the fault-injection contract).
  const auto m = two_node_model(pdn::ElementKind::kTsv, 0.5, 0.3);
  tech::Technology tech;
  tech.em.tsv_diameter_um = 0.0;
  const std::vector<double> v = {0.8, 0.2};
  EXPECT_THROW(em_check(m, tech, v), std::invalid_argument);

  // Same for a zero-thickness mesh layer.
  const auto mesh = two_node_model(pdn::ElementKind::kMesh, 0.5, 0.0);
  EXPECT_THROW(em_check(mesh, tech::Technology{}, v), std::invalid_argument);
}

TEST(EmCheck, VoltageSizeMismatchThrows) {
  const auto m = two_node_model(pdn::ElementKind::kMesh, 0.5, 0.3);
  const std::vector<double> bad = {1.0};
  EXPECT_THROW(em_check(m, tech::Technology{}, bad), std::invalid_argument);
}

TEST(BlackMttf, GoldenValuesAndProperties) {
  const tech::EmTech em;  // A=1e-8 h, n=2, Ea=0.9 eV
  // Golden values at the default 85 C parameters, pinned at 1e-10 relative.
  EXPECT_NEAR(black_mttf_hours(em, 1.0, 85.0), 46187.77706645921, 46187.0 * 1e-10);
  EXPECT_NEAR(black_mttf_hours(em, 2.0, 85.0), 11546.944266614802, 11546.0 * 1e-10);
  // n = 2: doubling J quarters the MTTF.
  EXPECT_NEAR(black_mttf_hours(em, 1.0, 85.0) / black_mttf_hours(em, 2.0, 85.0), 4.0, 1e-9);
  // Hotter junction, shorter life.
  EXPECT_LT(black_mttf_hours(em, 1.0, 125.0), black_mttf_hours(em, 1.0, 85.0));
  // J <= 0 is the "no stress" sentinel, not infinity.
  EXPECT_EQ(black_mttf_hours(em, 0.0, 85.0), 0.0);
  EXPECT_EQ(black_mttf_hours(em, -1.0, 85.0), 0.0);
  // Vanishing stress is capped to stay finite (JSON-safe gauges).
  EXPECT_LE(black_mttf_hours(em, 1e-30, 85.0), 1e30);
  // Below absolute zero is a caller bug.
  EXPECT_THROW((void)black_mttf_hours(em, 1.0, -300.0), std::invalid_argument);
}

// Full-pass goldens on the wide-io baseline at its default state. These pin
// the branch-current recovery, the per-kind geometry, and the MTTF chain end
// to end; any change here is a deliberate remodel, not drift.
TEST(EmCheck, WideIoGoldenNumbers) {
  const core::Platform p(core::make_benchmark(core::BenchmarkKind::kWideIo));
  const auto state = p.parse_state(p.benchmark().default_state, -1.0);
  const auto rep = p.em_check(p.benchmark().baseline, state);

  const auto near = [](double actual, double expected) {
    EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-10) << "expected " << expected;
  };

  EXPECT_TRUE(rep.clean());
  EXPECT_DOUBLE_EQ(rep.temperature_c, 85.0);
  near(rep.worst_utilization, 0.498991965582396);
  near(rep.min_mttf_hours, 7419.9323608536033);

  const auto* mesh = rep.find(pdn::ElementKind::kMesh);
  ASSERT_NE(mesh, nullptr);
  EXPECT_EQ(mesh->current.count, 7660u);
  near(mesh->current.max_amps, 0.32143987367188537);
  near(mesh->max_j_ma_cm2, 0.10491534220684115);
  near(mesh->mttf_hours, 4196131.1915093875);

  const auto* via = rep.find(pdn::ElementKind::kVia);
  ASSERT_NE(via, nullptr);
  EXPECT_EQ(via->current.count, 3114u);
  near(via->max_j_ma_cm2, 2.49495982791198);
  near(via->avg_j_ma_cm2, 0.16964779149362705);
  near(via->mttf_hours, 7419.9323608536033);

  const auto* tsv = rep.find(pdn::ElementKind::kTsv);
  ASSERT_NE(tsv, nullptr);
  EXPECT_EQ(tsv->current.count, 640u);
  near(tsv->current.max_amps, 0.0026414843964207885);
  near(tsv->max_j_ma_cm2, 0.013452969561295363);

  const auto* c4 = rep.find(pdn::ElementKind::kC4);
  ASSERT_NE(c4, nullptr);
  EXPECT_EQ(c4->current.count, 110u);
  near(c4->max_j_ma_cm2, 0.0061444788771546814);

  const auto* rdl = rep.find(pdn::ElementKind::kRdlVia);
  ASSERT_NE(rdl, nullptr);
  EXPECT_EQ(rdl->current.count, 176u);
  near(rdl->max_j_ma_cm2, 0.0041486970121251687);

  // F2B bonding: no face-to-face via field in this stack.
  EXPECT_EQ(rep.find(pdn::ElementKind::kF2fVia), nullptr);
}

// The request-level temperature override flows through to every MTTF.
TEST(EmCheck, TemperatureOverrideScalesMttf) {
  const core::Platform p(core::make_benchmark(core::BenchmarkKind::kWideIo));
  const auto state = p.parse_state(p.benchmark().default_state, -1.0);
  EmOptions hot;
  hot.temperature_c = 125.0;
  const auto baseline = p.em_check(p.benchmark().baseline, state);
  const auto heated = p.em_check(p.benchmark().baseline, state, hot);
  EXPECT_DOUBLE_EQ(heated.temperature_c, 125.0);
  EXPECT_LT(heated.min_mttf_hours, baseline.min_mttf_hours);
}

}  // namespace
}  // namespace pdn3d::irdrop
