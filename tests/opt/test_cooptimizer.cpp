#include "opt/cooptimizer.hpp"

#include <gtest/gtest.h>

#include "cost/cost_model.hpp"

namespace pdn3d::opt {
namespace {

/// Fast analytic IR evaluator standing in for the R-Mesh: reciprocal response
/// plus bonuses for the discrete options, mimicking the physics (F2F and wire
/// bonding lower IR; center TSVs raise it).
double fake_ir(const pdn::PdnConfig& cfg) {
  double ir = 2.0 + 1.1 / cfg.m2_usage + 0.9 / cfg.m3_usage + 60.0 / cfg.tsv_count;
  if (cfg.tsv_location == pdn::TsvLocation::kCenter) ir *= 1.6;
  if (cfg.tsv_location == pdn::TsvLocation::kDistributed) ir *= 0.7;
  if (cfg.bonding == pdn::BondingStyle::kF2F) ir *= 0.65;
  if (cfg.wire_bonding) ir *= 0.85;
  if (cfg.rdl != pdn::RdlMode::kNone) ir *= 1.05;
  return ir;
}

DesignSpace small_space() {
  DesignSpace s;
  s.tsv_locations = {pdn::TsvLocation::kCenter, pdn::TsvLocation::kEdge};
  s.dedicated_options = {false};
  return s;
}

TEST(CoOptimizer, FitsEveryChoiceWell) {
  CoOptimizer opt(small_space(), fake_ir);
  const auto& fits = opt.fit_models();
  EXPECT_EQ(fits.size(), 16u);
  EXPECT_LT(opt.worst_rmse(), 0.135);     // the paper's bound
  EXPECT_GT(opt.worst_r_squared(), 0.999);
}

TEST(CoOptimizer, AlphaZeroPicksCheapestDesign) {
  CoOptimizer opt(small_space(), fake_ir);
  const auto best = opt.optimize(0.0);
  // Cheapest knobs: minimum metal, minimum TSVs, center location, F2B, no
  // extras.
  EXPECT_NEAR(best.config.m2_usage, 0.10, 1e-9);
  EXPECT_NEAR(best.config.m3_usage, 0.10, 1e-9);
  EXPECT_EQ(best.config.tsv_count, 15);
  EXPECT_EQ(best.config.tsv_location, pdn::TsvLocation::kCenter);
  EXPECT_EQ(best.config.bonding, pdn::BondingStyle::kF2B);
  EXPECT_FALSE(best.config.wire_bonding);
  EXPECT_EQ(best.config.rdl, pdn::RdlMode::kNone);
}

TEST(CoOptimizer, AlphaOnePicksLowestIr) {
  CoOptimizer opt(small_space(), fake_ir);
  const auto best = opt.optimize(1.0);
  EXPECT_NEAR(best.config.m2_usage, 0.20, 1e-9);
  EXPECT_NEAR(best.config.m3_usage, 0.40, 1e-9);
  EXPECT_EQ(best.config.bonding, pdn::BondingStyle::kF2F);
  EXPECT_TRUE(best.config.wire_bonding);
  EXPECT_GE(best.config.tsv_count, 400);
}

TEST(CoOptimizer, IntermediateAlphaBetweenExtremes) {
  CoOptimizer opt(small_space(), fake_ir);
  const auto lo = opt.optimize(0.0);
  const auto mid = opt.optimize(0.3);
  const auto hi = opt.optimize(1.0);
  EXPECT_LE(lo.cost, mid.cost);
  EXPECT_LE(mid.cost, hi.cost);
  EXPECT_GE(lo.measured_ir_mv, mid.measured_ir_mv);
  EXPECT_GE(mid.measured_ir_mv, hi.measured_ir_mv);
}

TEST(CoOptimizer, PredictionMatchesMeasurementAtOptimum) {
  CoOptimizer opt(small_space(), fake_ir);
  const auto best = opt.optimize(0.3);
  // Table 9 reports both columns agreeing closely.
  EXPECT_NEAR(best.predicted_ir_mv, best.measured_ir_mv,
              0.05 * best.measured_ir_mv + 0.1);
  EXPECT_NEAR(best.cost, cost::total_cost(best.config), 1e-12);
}

TEST(CoOptimizer, InvalidArgumentsRejected) {
  CoOptimizer opt(small_space(), fake_ir);
  EXPECT_THROW(opt.optimize(-0.1), std::invalid_argument);
  EXPECT_THROW(opt.optimize(1.1), std::invalid_argument);
  EXPECT_THROW(CoOptimizer(small_space(), IrEvaluator{}), std::invalid_argument);
}

TEST(CoOptimizer, FixedTcSpace) {
  DesignSpace s = small_space();
  s.tc_fixed = true;
  s.tc_fixed_value = 160;
  CoOptimizer opt(s, fake_ir);
  const auto best = opt.optimize(0.5);
  EXPECT_EQ(best.config.tsv_count, 160);
}

TEST(CoOptimizer, SampleCountAccounted) {
  CoOptimizer opt(small_space(), fake_ir);
  opt.fit_models();
  EXPECT_GT(opt.total_samples(), 100u);
}

}  // namespace
}  // namespace pdn3d::opt
