#include "opt/cooptimizer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "core/status.hpp"
#include "cost/cost_model.hpp"

namespace pdn3d::opt {
namespace {

/// Fast analytic IR evaluator standing in for the R-Mesh: reciprocal response
/// plus bonuses for the discrete options, mimicking the physics (F2F and wire
/// bonding lower IR; center TSVs raise it).
double fake_ir(const pdn::PdnConfig& cfg) {
  double ir = 2.0 + 1.1 / cfg.m2_usage + 0.9 / cfg.m3_usage + 60.0 / cfg.tsv_count;
  if (cfg.tsv_location == pdn::TsvLocation::kCenter) ir *= 1.6;
  if (cfg.tsv_location == pdn::TsvLocation::kDistributed) ir *= 0.7;
  if (cfg.bonding == pdn::BondingStyle::kF2F) ir *= 0.65;
  if (cfg.wire_bonding) ir *= 0.85;
  if (cfg.rdl != pdn::RdlMode::kNone) ir *= 1.05;
  return ir;
}

DesignSpace small_space() {
  DesignSpace s;
  s.tsv_locations = {pdn::TsvLocation::kCenter, pdn::TsvLocation::kEdge};
  s.dedicated_options = {false};
  return s;
}

TEST(CoOptimizer, FitsEveryChoiceWell) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  const auto& fits = opt.fit_models();
  EXPECT_EQ(fits.size(), 16u);
  EXPECT_LT(opt.worst_rmse(), 0.135);     // the paper's bound
  EXPECT_GT(opt.worst_r_squared(), 0.999);
}

TEST(CoOptimizer, AlphaZeroPicksCheapestDesign) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  const auto best = opt.optimize(0.0);
  // Cheapest knobs: minimum metal, minimum TSVs, center location, F2B, no
  // extras.
  EXPECT_NEAR(best.config.m2_usage, 0.10, 1e-9);
  EXPECT_NEAR(best.config.m3_usage, 0.10, 1e-9);
  EXPECT_EQ(best.config.tsv_count, 15);
  EXPECT_EQ(best.config.tsv_location, pdn::TsvLocation::kCenter);
  EXPECT_EQ(best.config.bonding, pdn::BondingStyle::kF2B);
  EXPECT_FALSE(best.config.wire_bonding);
  EXPECT_EQ(best.config.rdl, pdn::RdlMode::kNone);
}

TEST(CoOptimizer, AlphaOnePicksLowestIr) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  const auto best = opt.optimize(1.0);
  EXPECT_NEAR(best.config.m2_usage, 0.20, 1e-9);
  EXPECT_NEAR(best.config.m3_usage, 0.40, 1e-9);
  EXPECT_EQ(best.config.bonding, pdn::BondingStyle::kF2F);
  EXPECT_TRUE(best.config.wire_bonding);
  EXPECT_GE(best.config.tsv_count, 400);
}

TEST(CoOptimizer, IntermediateAlphaBetweenExtremes) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  const auto lo = opt.optimize(0.0);
  const auto mid = opt.optimize(0.3);
  const auto hi = opt.optimize(1.0);
  EXPECT_LE(lo.cost, mid.cost);
  EXPECT_LE(mid.cost, hi.cost);
  EXPECT_GE(lo.measured_ir_mv, mid.measured_ir_mv);
  EXPECT_GE(mid.measured_ir_mv, hi.measured_ir_mv);
}

TEST(CoOptimizer, PredictionMatchesMeasurementAtOptimum) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  const auto best = opt.optimize(0.3);
  // Table 9 reports both columns agreeing closely.
  EXPECT_NEAR(best.predicted_ir_mv, best.measured_ir_mv,
              0.05 * best.measured_ir_mv + 0.1);
  EXPECT_NEAR(best.cost, cost::total_cost(best.config), 1e-12);
}

TEST(CoOptimizer, InvalidArgumentsRejected) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  EXPECT_THROW(opt.optimize(-0.1), std::invalid_argument);
  EXPECT_THROW(opt.optimize(1.1), std::invalid_argument);
}

TEST(CoOptimizer, FixedTcSpace) {
  DesignSpace s = small_space();
  s.tc_fixed = true;
  s.tc_fixed_value = 160;
  CoOptimizer opt(s, std::make_unique<FunctionEvaluator>(fake_ir));
  const auto best = opt.optimize(0.5);
  EXPECT_EQ(best.config.tsv_count, 160);
}

TEST(CoOptimizer, SampleCountAccounted) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  opt.fit_models();
  EXPECT_GT(opt.total_samples(), 100u);
  EXPECT_TRUE(opt.skipped_points().empty());  // healthy evaluator: no skips
}

TEST(CoOptimizer, SweepSurvivesUnsolvableRegion) {
  // R-Mesh failures in a whole slice of the space (center TSVs at low M3)
  // must be skipped and reported, not abort the sweep.
  const auto failing = [](const pdn::PdnConfig& cfg) {
    return cfg.tsv_location == pdn::TsvLocation::kCenter && cfg.m3_usage < 0.2;
  };
  const auto evaluate = [&](const pdn::PdnConfig& cfg) {
    if (failing(cfg)) {
      throw core::NumericalError(core::Status::numerical_failure(
          "all solver rungs failed [synthetic fault for test]"));
    }
    return fake_ir(cfg);
  };
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(evaluate));
  const auto& fits = opt.fit_models();
  // Every choice keeps enough solvable samples to stay fitted.
  EXPECT_EQ(fits.size(), 16u);
  EXPECT_FALSE(opt.skipped_points().empty());
  for (const auto& skip : opt.skipped_points()) {
    EXPECT_TRUE(failing(skip.config)) << skip.config.summary();
    EXPECT_NE(skip.reason.find("numerical-failure"), std::string::npos) << skip.reason;
  }

  // The optimum completes and lands outside the failing region.
  const auto best = opt.optimize(1.0);
  EXPECT_FALSE(failing(best.config));
  EXPECT_GT(best.measured_ir_mv, 0.0);
}

TEST(CoOptimizer, BannedWinnerTriggersRetry) {
  // The alpha=0 winner (cheapest corner of the space, see
  // AlphaZeroPicksCheapestDesign) fails only at re-measurement time; the
  // optimizer must ban it and return the best remaining candidate.
  const auto is_cheapest_corner = [](const pdn::PdnConfig& cfg) {
    return cfg.tsv_count == 15 && cfg.m2_usage < 0.105 && cfg.m3_usage < 0.105 &&
           cfg.tsv_location == pdn::TsvLocation::kCenter &&
           cfg.bonding == pdn::BondingStyle::kF2B && !cfg.wire_bonding &&
           cfg.rdl == pdn::RdlMode::kNone;
  };
  const auto evaluate = [&](const pdn::PdnConfig& cfg) {
    if (is_cheapest_corner(cfg)) {
      throw core::NumericalError(
          core::Status::numerical_failure("synthetic failure at the cheapest corner"));
    }
    return fake_ir(cfg);
  };
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(evaluate));
  const auto best = opt.optimize(0.0);
  EXPECT_FALSE(is_cheapest_corner(best.config));
  EXPECT_GT(best.measured_ir_mv, 0.0);
  // The failed winner is on record.
  bool recorded = false;
  for (const auto& skip : opt.skipped_points()) {
    if (is_cheapest_corner(skip.config)) recorded = true;
  }
  EXPECT_TRUE(recorded);
}

TEST(CoOptimizer, HardConstraintExcludesViolatingOptimum) {
  // Plant an EM-style hard constraint that rejects exactly the cost optimum
  // (the alpha=0 cheapest corner, see AlphaZeroPicksCheapestDesign). The
  // optimizer must never report that point as the winner: it is recorded as
  // a typed constraint exclusion and the search continues.
  const auto is_cheapest_corner = [](const pdn::PdnConfig& cfg) {
    return cfg.tsv_count == 15 && cfg.m2_usage < 0.105 && cfg.m3_usage < 0.105 &&
           cfg.tsv_location == pdn::TsvLocation::kCenter &&
           cfg.bonding == pdn::BondingStyle::kF2B && !cfg.wire_bonding &&
           cfg.rdl == pdn::RdlMode::kNone;
  };
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  opt.set_constraint([&](const pdn::PdnConfig& cfg) -> std::string {
    if (is_cheapest_corner(cfg)) return "em-limit: tsv J over limit (planted)";
    return {};
  });
  const auto best = opt.optimize(0.0);
  EXPECT_FALSE(is_cheapest_corner(best.config));
  EXPECT_GT(best.measured_ir_mv, 0.0);

  // The exclusion is on record with its typed kind and reason.
  bool recorded = false;
  for (const auto& skip : opt.skipped_points()) {
    if (!is_cheapest_corner(skip.config)) continue;
    recorded = true;
    EXPECT_EQ(skip.kind, SkippedPoint::Kind::kConstraint);
    EXPECT_NE(skip.reason.find("em-limit"), std::string::npos) << skip.reason;
  }
  EXPECT_TRUE(recorded);
}

TEST(CoOptimizer, ConstraintRejectingEverythingIsStructuredFailure) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  opt.set_constraint([](const pdn::PdnConfig&) -> std::string { return "always violated"; });
  EXPECT_THROW(opt.optimize(0.3), core::NumericalError);
  EXPECT_FALSE(opt.skipped_points().empty());
  for (const auto& skip : opt.skipped_points()) {
    EXPECT_EQ(skip.kind, SkippedPoint::Kind::kConstraint);
  }
}

TEST(CoOptimizer, UnconstrainedRunRecordsNoConstraintSkips) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  const auto best = opt.optimize(0.3);
  EXPECT_GT(best.measured_ir_mv, 0.0);
  EXPECT_TRUE(opt.skipped_points().empty());
}

/// Evaluator that tracks how many siblings were forked and how many
/// measurements ran, shared across forks via atomics.
class CountingEvaluator final : public Evaluator {
 public:
  CountingEvaluator(std::atomic<int>* forks, std::atomic<int>* measures)
      : forks_(forks), measures_(measures) {}
  [[nodiscard]] double measure(const pdn::PdnConfig& cfg) override {
    measures_->fetch_add(1);
    return fake_ir(cfg);
  }
  [[nodiscard]] std::unique_ptr<Evaluator> fork() const override {
    forks_->fetch_add(1);
    return std::make_unique<CountingEvaluator>(forks_, measures_);
  }

 private:
  std::atomic<int>* forks_;
  std::atomic<int>* measures_;
};

TEST(ParallelCoOptimizer, ThreadCountDoesNotChangeTheOptimum) {
  // The sampling sweep runs on forked evaluators; fits, sample accounting,
  // and the optimum must be bitwise identical at any thread count.
  CoOptimizer serial(small_space(), std::make_unique<FunctionEvaluator>(fake_ir), 1);
  const auto best1 = serial.optimize(0.3);
  for (const int threads : {2, 8}) {
    CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir), threads);
    const auto best = opt.optimize(0.3);
    EXPECT_EQ(best.config.summary(), best1.config.summary()) << threads;
    EXPECT_EQ(best.predicted_ir_mv, best1.predicted_ir_mv) << threads;
    EXPECT_EQ(best.measured_ir_mv, best1.measured_ir_mv) << threads;
    EXPECT_EQ(best.cost, best1.cost) << threads;
    EXPECT_EQ(opt.total_samples(), serial.total_samples()) << threads;
    EXPECT_EQ(opt.worst_rmse(), serial.worst_rmse()) << threads;
  }
}

TEST(ParallelCoOptimizer, SkippedPointsKeepSerialOrder) {
  // Failures land in skipped_points() in sample-index order regardless of
  // which worker hit them.
  const auto failing = [](const pdn::PdnConfig& cfg) {
    return cfg.tsv_location == pdn::TsvLocation::kCenter && cfg.m3_usage < 0.2;
  };
  const auto evaluate = [&](const pdn::PdnConfig& cfg) {
    if (failing(cfg)) {
      throw core::NumericalError(core::Status::numerical_failure("synthetic fault"));
    }
    return fake_ir(cfg);
  };
  CoOptimizer serial(small_space(), std::make_unique<FunctionEvaluator>(evaluate), 1);
  serial.fit_models();
  CoOptimizer threaded(small_space(), std::make_unique<FunctionEvaluator>(evaluate), 8);
  threaded.fit_models();
  ASSERT_EQ(threaded.skipped_points().size(), serial.skipped_points().size());
  for (std::size_t i = 0; i < serial.skipped_points().size(); ++i) {
    EXPECT_EQ(threaded.skipped_points()[i].config.summary(),
              serial.skipped_points()[i].config.summary())
        << i;
    EXPECT_EQ(threaded.skipped_points()[i].reason, serial.skipped_points()[i].reason) << i;
  }
}

TEST(ParallelCoOptimizer, ForksOneEvaluatorPerChunkAndMeasuresEverything) {
  std::atomic<int> forks{0};
  std::atomic<int> measures{0};
  CoOptimizer opt(small_space(), std::make_unique<CountingEvaluator>(&forks, &measures), 4);
  opt.fit_models();
  EXPECT_GT(forks.load(), 0);  // the sweep went through fork(), not the root
  EXPECT_GE(static_cast<std::size_t>(measures.load()), opt.total_samples());
}

TEST(CoOptimizer, EvaluatorCtorRejectsBadArguments) {
  EXPECT_THROW(CoOptimizer(small_space(), std::unique_ptr<Evaluator>{}),
               std::invalid_argument);
  EXPECT_THROW(CoOptimizer(small_space(), std::make_unique<FunctionEvaluator>(fake_ir), -1),
               std::invalid_argument);
}

TEST(CoOptimizer, AllPointsUnsolvableIsStructuredFailure) {
  const auto evaluate = [](const pdn::PdnConfig&) -> double {
    throw core::NumericalError(core::Status::numerical_failure("nothing solves"));
  };
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(evaluate));
  EXPECT_THROW(opt.fit_models(), core::NumericalError);
  EXPECT_FALSE(opt.skipped_points().empty());
}

}  // namespace
}  // namespace pdn3d::opt
