#include "opt/design_space.hpp"

#include <gtest/gtest.h>

namespace pdn3d::opt {
namespace {

TEST(DesignSpace, DefaultEnumerationSize) {
  const DesignSpace space;
  // 2 locations x 2 dedicated x 2 bonding x 2 rdl x 2 wirebond = 32.
  EXPECT_EQ(enumerate_choices(space).size(), 32u);
}

TEST(DesignSpace, ValidityFilterApplies) {
  DesignSpace space;
  space.valid = [](const DiscreteChoice& c) {
    return !(c.tsv_location == pdn::TsvLocation::kEdge && c.rdl == pdn::RdlMode::kNone);
  };
  const auto choices = enumerate_choices(space);
  EXPECT_EQ(choices.size(), 24u);
  for (const auto& c : choices) {
    EXPECT_FALSE(c.tsv_location == pdn::TsvLocation::kEdge && c.rdl == pdn::RdlMode::kNone);
  }
}

TEST(DesignSpace, MakeConfigMaterializesChoice) {
  DesignSpace space;
  space.mounting = pdn::Mounting::kOnChip;
  DiscreteChoice choice;
  choice.tsv_location = pdn::TsvLocation::kEdge;
  choice.dedicated = true;
  choice.bonding = pdn::BondingStyle::kF2F;
  choice.rdl = pdn::RdlMode::kBottomOnly;
  choice.wire_bonding = true;
  const auto cfg = make_config(space, choice, 0.15, 0.3, 100);
  EXPECT_DOUBLE_EQ(cfg.m2_usage, 0.15);
  EXPECT_DOUBLE_EQ(cfg.m3_usage, 0.3);
  EXPECT_EQ(cfg.tsv_count, 100);
  EXPECT_TRUE(cfg.dedicated_tsvs);
  EXPECT_EQ(cfg.bonding, pdn::BondingStyle::kF2F);
  EXPECT_EQ(cfg.mounting, pdn::Mounting::kOnChip);
  // With an RDL present the logic-side TSVs stay in the center.
  EXPECT_EQ(cfg.logic_tsv_location, pdn::TsvLocation::kCenter);
}

TEST(DesignSpace, NoRdlForcesMatchingLogicPattern) {
  const DesignSpace space;
  DiscreteChoice choice;
  choice.tsv_location = pdn::TsvLocation::kEdge;
  choice.rdl = pdn::RdlMode::kNone;
  const auto cfg = make_config(space, choice, 0.1, 0.2, 33);
  EXPECT_EQ(cfg.logic_tsv_location, pdn::TsvLocation::kEdge);
}

TEST(DesignSpace, FixedTcOverridesRequest) {
  DesignSpace space;
  space.tc_fixed = true;
  space.tc_fixed_value = 160;
  const auto cfg = make_config(space, DiscreteChoice{}, 0.1, 0.2, 999);
  EXPECT_EQ(cfg.tsv_count, 160);
  EXPECT_EQ(space.effective_tc_min(), 160);
  EXPECT_EQ(space.effective_tc_max(), 160);
}

TEST(DesignSpace, DefaultSampleGrids) {
  const DesignSpace space;
  const auto m2 = default_m2_samples(space);
  EXPECT_EQ(m2.size(), 3u);
  EXPECT_DOUBLE_EQ(m2.front(), space.m2_min);
  EXPECT_DOUBLE_EQ(m2.back(), space.m2_max);

  const auto tcs = default_tc_samples(space);
  EXPECT_GE(tcs.size(), 3u);
  EXPECT_EQ(tcs.front(), space.tc_min);
  EXPECT_EQ(tcs.back(), space.tc_max);

  DesignSpace fixed;
  fixed.tc_fixed = true;
  fixed.tc_fixed_value = 160;
  const auto tcf = default_tc_samples(fixed);
  ASSERT_EQ(tcf.size(), 1u);
  EXPECT_EQ(tcf[0], 160);
}

TEST(DesignSpace, SampleOverridesRespected) {
  DesignSpace space;
  space.m2_samples = {0.12, 0.18};
  space.tc_samples = {20, 40};
  EXPECT_EQ(default_m2_samples(space).size(), 2u);
  EXPECT_EQ(default_tc_samples(space).size(), 2u);
}

}  // namespace
}  // namespace pdn3d::opt
