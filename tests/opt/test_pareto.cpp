#include "opt/pareto.hpp"

#include <gtest/gtest.h>

namespace pdn3d::opt {
namespace {

double fake_ir(const pdn::PdnConfig& cfg) {
  double ir = 2.0 + 1.1 / cfg.m2_usage + 0.9 / cfg.m3_usage + 60.0 / cfg.tsv_count;
  if (cfg.tsv_location == pdn::TsvLocation::kCenter) ir *= 1.6;
  if (cfg.bonding == pdn::BondingStyle::kF2F) ir *= 0.65;
  if (cfg.wire_bonding) ir *= 0.85;
  return ir;
}

DesignSpace small_space() {
  DesignSpace s;
  s.tsv_locations = {pdn::TsvLocation::kCenter, pdn::TsvLocation::kEdge};
  s.dedicated_options = {false};
  s.rdl_options = {pdn::RdlMode::kNone};
  return s;
}

TEST(Pareto, DominatesSemantics) {
  Optimum a;
  a.measured_ir_mv = 10.0;
  a.cost = 0.3;
  Optimum b;
  b.measured_ir_mv = 12.0;
  b.cost = 0.4;
  EXPECT_TRUE(dominates(a, b));
  EXPECT_FALSE(dominates(b, a));
  EXPECT_FALSE(dominates(a, a));  // equal does not dominate

  Optimum c;  // trade-off point: cheaper but hotter
  c.measured_ir_mv = 15.0;
  c.cost = 0.2;
  EXPECT_FALSE(dominates(a, c));
  EXPECT_FALSE(dominates(c, a));
}

TEST(Pareto, FrontIsMonotone) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  const auto front = pareto_front(opt, 9);
  ASSERT_GE(front.size(), 3u);
  for (std::size_t i = 1; i < front.size(); ++i) {
    // Ascending cost, descending IR along the frontier.
    EXPECT_GE(front[i].optimum.cost, front[i - 1].optimum.cost);
    EXPECT_LE(front[i].optimum.measured_ir_mv, front[i - 1].optimum.measured_ir_mv + 1e-9);
  }
}

TEST(Pareto, NoPointDominatesAnother) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  const auto front = pareto_front(opt, 7);
  for (const auto& a : front) {
    for (const auto& b : front) {
      if (&a == &b) continue;
      EXPECT_FALSE(dominates(a.optimum, b.optimum));
    }
  }
}

TEST(Pareto, EndpointsAnchorTheFront) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  const auto front = pareto_front(opt, 9);
  const auto cheapest = opt.optimize(0.0);
  const auto quietest = opt.optimize(1.0);
  EXPECT_NEAR(front.front().optimum.cost, cheapest.cost, 1e-9);
  EXPECT_NEAR(front.back().optimum.measured_ir_mv, quietest.measured_ir_mv, 1e-9);
}

TEST(Pareto, RejectsTooFewSteps) {
  CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(fake_ir));
  EXPECT_THROW(pareto_front(opt, 1), std::invalid_argument);
}

}  // namespace
}  // namespace pdn3d::opt
