// Checkpointed co-optimization sweeps: measurements replay from the file by
// global sample index, so a resumed optimize() is bitwise identical to an
// uninterrupted one -- at any thread count -- while actually skipping the
// recorded measurements. Crashes are simulated by truncating the file to a
// prefix of its entries.

#include "opt/cooptimizer.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "util/checkpoint.hpp"

namespace pdn3d::opt {
namespace {

double fake_ir(const pdn::PdnConfig& cfg) {
  double ir = 2.0 + 1.1 / cfg.m2_usage + 0.9 / cfg.m3_usage + 60.0 / cfg.tsv_count;
  if (cfg.tsv_location == pdn::TsvLocation::kCenter) ir *= 1.6;
  if (cfg.tsv_location == pdn::TsvLocation::kDistributed) ir *= 0.7;
  if (cfg.bonding == pdn::BondingStyle::kF2F) ir *= 0.65;
  if (cfg.wire_bonding) ir *= 0.85;
  if (cfg.rdl != pdn::RdlMode::kNone) ir *= 1.05;
  return ir;
}

DesignSpace small_space() {
  DesignSpace s;
  s.tsv_locations = {pdn::TsvLocation::kCenter, pdn::TsvLocation::kEdge};
  s.dedicated_options = {false};
  return s;
}

/// fake_ir plus a shared measurement counter surviving fork() -- the proof
/// that a resumed sweep *skips* replayed measurements instead of redoing them.
class CountingEvaluator final : public Evaluator {
 public:
  explicit CountingEvaluator(std::atomic<int>* measures) : measures_(measures) {}
  [[nodiscard]] double measure(const pdn::PdnConfig& cfg) override {
    measures_->fetch_add(1);
    return fake_ir(cfg);
  }
  [[nodiscard]] std::unique_ptr<Evaluator> fork() const override {
    return std::make_unique<CountingEvaluator>(measures_);
  }

 private:
  std::atomic<int>* measures_;
};

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void truncate_to_half(const std::string& path) {
  const auto lines = read_lines(path);
  ASSERT_GT(lines.size(), 3u);
  const std::size_t keep = (lines.size() - 1) / 2;  // header + half the entries
  std::ofstream out(path, std::ios::trunc);
  for (std::size_t i = 0; i <= keep; ++i) out << lines[i] << "\n";
}

TEST(CoOptimizerCheckpoint, ResumedOptimizeIsBitwiseIdenticalAndSkipsReplayedWork) {
  const std::string path = testing::TempDir() + "pdn3d_coopt.ckpt";
  std::remove(path.c_str());
  const std::uint64_t key = util::checkpoint_key("coopt-resume-test");

  // Ground truth: no checkpoint involved at all.
  CoOptimizer plain(small_space(), std::make_unique<FunctionEvaluator>(fake_ir), 1);
  const auto truth = plain.optimize(0.3);

  // Full run with a checkpoint attached: same result, file left complete.
  std::atomic<int> full_measures{0};
  {
    auto ckpt = util::SweepCheckpoint::open(path, key, 0, false);
    CoOptimizer opt(small_space(), std::make_unique<CountingEvaluator>(&full_measures), 1);
    opt.set_checkpoint(&ckpt);
    const auto best = opt.optimize(0.3);
    ckpt.flush();
    EXPECT_EQ(best.config.summary(), truth.config.summary());
    EXPECT_EQ(best.predicted_ir_mv, truth.predicted_ir_mv);
    EXPECT_EQ(best.measured_ir_mv, truth.measured_ir_mv);
    EXPECT_EQ(best.cost, truth.cost);
  }
  ASSERT_GT(full_measures.load(), 0);

  // Crash halfway, resume serially: bitwise-identical optimum, and the
  // replayed prefix was never re-measured.
  ASSERT_NO_FATAL_FAILURE(truncate_to_half(path));
  std::atomic<int> resumed_measures{0};
  {
    auto ckpt = util::SweepCheckpoint::open(path, key, 0, true);
    ASSERT_GT(ckpt.resumed(), 0u);
    CoOptimizer opt(small_space(), std::make_unique<CountingEvaluator>(&resumed_measures), 1);
    opt.set_checkpoint(&ckpt);
    const auto best = opt.optimize(0.3);
    ckpt.flush();
    EXPECT_EQ(best.config.summary(), truth.config.summary());
    EXPECT_EQ(best.predicted_ir_mv, truth.predicted_ir_mv);
    EXPECT_EQ(best.measured_ir_mv, truth.measured_ir_mv);
    EXPECT_EQ(best.cost, truth.cost);
  }
  EXPECT_GT(resumed_measures.load(), 0);
  EXPECT_LT(resumed_measures.load(), full_measures.load());

  // Crash again, resume on eight threads: thread count must not perturb the
  // resumed result either (the ParallelCoOptimizer invariant, now through the
  // checkpoint path).
  ASSERT_NO_FATAL_FAILURE(truncate_to_half(path));
  {
    std::atomic<int> threaded_measures{0};
    auto ckpt = util::SweepCheckpoint::open(path, key, 0, true);
    CoOptimizer opt(small_space(), std::make_unique<CountingEvaluator>(&threaded_measures),
                    8);
    opt.set_checkpoint(&ckpt);
    const auto best = opt.optimize(0.3);
    EXPECT_EQ(best.config.summary(), truth.config.summary());
    EXPECT_EQ(best.predicted_ir_mv, truth.predicted_ir_mv);
    EXPECT_EQ(best.measured_ir_mv, truth.measured_ir_mv);
    EXPECT_EQ(best.cost, truth.cost);
    EXPECT_LT(threaded_measures.load(), full_measures.load());
  }
  std::remove(path.c_str());
}

TEST(CoOptimizerCheckpoint, FailedMeasurementsResumeAsSkipsNotRetries) {
  // A checkpointed sweep records failures too; a resume replays them into
  // skipped_points() without calling the evaluator again for those indices.
  const std::string path = testing::TempDir() + "pdn3d_coopt_fail.ckpt";
  std::remove(path.c_str());
  const std::uint64_t key = util::checkpoint_key("coopt-fail-test");
  const auto failing = [](const pdn::PdnConfig& cfg) {
    return cfg.tsv_location == pdn::TsvLocation::kCenter && cfg.m3_usage < 0.2;
  };
  const auto evaluate = [&](const pdn::PdnConfig& cfg) {
    if (failing(cfg)) {
      throw core::NumericalError(core::Status::numerical_failure("synthetic fault"));
    }
    return fake_ir(cfg);
  };

  CoOptimizer plain(small_space(), std::make_unique<FunctionEvaluator>(evaluate), 1);
  plain.fit_models();
  ASSERT_FALSE(plain.skipped_points().empty());

  {
    auto ckpt = util::SweepCheckpoint::open(path, key, 0, false);
    CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(evaluate), 1);
    opt.set_checkpoint(&ckpt);
    opt.fit_models();
    ckpt.flush();
  }
  {
    auto ckpt = util::SweepCheckpoint::open(path, key, 0, true);
    // The resumed evaluator would crash the test if a replayed failure were
    // re-measured as something else entirely.
    CoOptimizer opt(small_space(), std::make_unique<FunctionEvaluator>(evaluate), 1);
    opt.set_checkpoint(&ckpt);
    opt.fit_models();
    ASSERT_EQ(opt.skipped_points().size(), plain.skipped_points().size());
    for (std::size_t i = 0; i < plain.skipped_points().size(); ++i) {
      EXPECT_EQ(opt.skipped_points()[i].config.summary(),
                plain.skipped_points()[i].config.summary())
          << i;
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pdn3d::opt
