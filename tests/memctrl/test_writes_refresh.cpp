// Tests for the write-operation and refresh extensions of the controller.

#include <gtest/gtest.h>

#include "dram/bank.hpp"
#include "memctrl/controller.hpp"
#include "memctrl/workload.hpp"

namespace pdn3d::memctrl {
namespace {

SimConfig ddr3_sim() {
  SimConfig c;
  c.timing = dram::ddr3_1600_timing();
  c.dies = 4;
  c.banks_per_die = 8;
  c.channels = 1;
  return c;
}

TEST(BankWrites, WriteTimingEnforced) {
  const dram::TimingParams t = dram::ddr3_1600_timing();
  dram::Bank bank(t);
  bank.activate(0, 5);
  EXPECT_FALSE(bank.can_write(t.tRCD - 1, 5));
  EXPECT_TRUE(bank.can_write(t.tRCD, 5));
  bank.write(t.tRCD);
  EXPECT_EQ(bank.last_write(), static_cast<dram::Cycle>(t.tRCD));

  // Write-to-read turnaround: reads blocked until data lands + tWTR.
  const dram::Cycle wtr_clear = t.tRCD + t.tCWL + t.burst_cycles() + t.tWTR;
  EXPECT_FALSE(bank.can_read(wtr_clear - 1, 5));
  EXPECT_TRUE(bank.can_read(wtr_clear, 5));

  // Write recovery: precharge blocked until data lands + tWR.
  const dram::Cycle wr_clear = t.tRCD + t.tCWL + t.burst_cycles() + t.tWR;
  EXPECT_FALSE(bank.can_precharge(std::max<dram::Cycle>(t.tRAS, wr_clear - 1)));
  EXPECT_TRUE(bank.can_precharge(std::max<dram::Cycle>(t.tRAS, wr_clear)));
}

TEST(BankWrites, ReadToWriteTurnaround) {
  const dram::TimingParams t = dram::ddr3_1600_timing();
  dram::Bank bank(t);
  bank.activate(0, 1);
  bank.read(t.tRCD);
  EXPECT_FALSE(bank.can_write(t.tRCD + t.tRTW - 1, 1));
  EXPECT_TRUE(bank.can_write(t.tRCD + t.tRTW, 1));
}

TEST(ControllerWrites, MixedWorkloadCompletes) {
  WorkloadConfig wc;
  wc.num_requests = 3000;
  wc.write_fraction = 0.3;
  const auto reqs = generate_workload(wc);
  long writes = 0;
  for (const auto& r : reqs) {
    if (r.is_write) ++writes;
  }
  EXPECT_NEAR(static_cast<double>(writes) / 3000.0, 0.3, 0.03);

  MemoryController mc(ddr3_sim(), standard_policy());
  const auto r = mc.run(reqs);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.reads + r.writes, 3000);
  EXPECT_EQ(r.writes, writes);
}

TEST(ControllerWrites, TurnaroundsCostPerformance) {
  WorkloadConfig wc;
  wc.num_requests = 4000;
  wc.streams = 2;
  const auto pure_reads = generate_workload(wc);
  wc.write_fraction = 0.5;
  const auto mixed = generate_workload(wc);

  const auto r_reads = MemoryController(ddr3_sim(), standard_policy()).run(pure_reads);
  const auto r_mixed = MemoryController(ddr3_sim(), standard_policy()).run(mixed);
  EXPECT_TRUE(r_mixed.feasible);
  // Read/write interleaving pays tWTR/tRTW turnarounds.
  EXPECT_GE(r_mixed.cycles, r_reads.cycles);
}

TEST(ControllerRefresh, PeriodicRefreshHappens) {
  WorkloadConfig wc;
  wc.num_requests = 8000;  // ~40k cycles of arrivals: several tREFI windows
  SimConfig sim = ddr3_sim();
  sim.enable_refresh = true;
  const auto r = MemoryController(sim, standard_policy()).run(generate_workload(wc));
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.reads, 8000);
  // 4 dies, due every tREFI=6240 cycles, runtime ~50-80k cycles.
  EXPECT_GT(r.refreshes, 10);
  EXPECT_LT(r.refreshes, 100);
}

TEST(ControllerRefresh, RefreshCostsRuntime) {
  WorkloadConfig wc;
  wc.num_requests = 8000;
  const auto reqs = generate_workload(wc);
  SimConfig off = ddr3_sim();
  SimConfig on = ddr3_sim();
  on.enable_refresh = true;
  const auto r_off = MemoryController(off, standard_policy()).run(reqs);
  const auto r_on = MemoryController(on, standard_policy()).run(reqs);
  EXPECT_TRUE(r_on.feasible);
  EXPECT_GT(r_on.cycles, r_off.cycles);
  EXPECT_EQ(r_off.refreshes, 0);
}

TEST(ControllerRefresh, WorksWithIrAwarePolicy) {
  // Refresh + IR-aware admission must not deadlock.
  WorkloadConfig wc;
  wc.num_requests = 3000;
  SimConfig sim = ddr3_sim();
  sim.enable_refresh = true;

  // A LUT-free check is impossible for IR-aware; reuse the standard policy
  // with refresh plus a second run to ensure the path composes (the LUT
  // version is covered in test_controller.cpp fixtures).
  const auto r = MemoryController(sim, standard_policy()).run(generate_workload(wc));
  EXPECT_TRUE(r.feasible);
}

}  // namespace
}  // namespace pdn3d::memctrl
