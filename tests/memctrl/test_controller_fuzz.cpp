// Controller fuzz: across random workload seeds and policies, the simulator
// must uphold its invariants -- every request completes exactly once, metrics
// are internally consistent, and the IR-aware constraint is never exceeded.

#include <gtest/gtest.h>

#include "floorplan/logic_floorplan.hpp"
#include "irdrop/lut.hpp"
#include "memctrl/controller.hpp"
#include "memctrl/workload.hpp"
#include "pdn/stack_builder.hpp"
#include "tech/presets.hpp"

namespace pdn3d::memctrl {
namespace {

const irdrop::IrLut& fuzz_lut() {
  static const auto* holder = [] {
    struct Holder {
      pdn::StackSpec spec;
      pdn::BuiltStack built;
      irdrop::PowerBinding power;
      std::unique_ptr<irdrop::IrAnalyzer> analyzer;
      std::unique_ptr<irdrop::IrLut> lut;
    };
    auto* h = new Holder;
    floorplan::DramFloorplanSpec ds;
    ds.width_mm = 6.8;
    ds.height_mm = 6.7;
    ds.bank_cols = 4;
    ds.bank_rows = 2;
    h->spec.dram_spec = ds;
    h->spec.dram_fp = floorplan::make_dram_floorplan(ds);
    h->spec.logic_fp = floorplan::make_t2_floorplan();
    h->spec.num_dram_dies = 4;
    h->spec.tech = tech::ddr3_technology();
    h->built = pdn::build_stack(h->spec, pdn::PdnConfig{});
    h->analyzer = std::make_unique<irdrop::IrAnalyzer>(
        h->built.model, h->spec.dram_fp, h->spec.logic_fp, h->power,
        irdrop::SolverKind::kBandedDirect);
    h->lut = std::make_unique<irdrop::IrLut>(
        irdrop::IrLut::build(*h->analyzer, h->spec.dram_spec, 2, 0.8));
    return h;
  }();
  return *holder->lut;
}

class ControllerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ControllerFuzz, InvariantsHoldAcrossSeeds) {
  WorkloadConfig wc;
  wc.num_requests = 1500;
  wc.seed = GetParam();
  wc.streams = 1 + static_cast<int>(GetParam() % 5);
  wc.row_hit_rate = 0.5 + 0.4 * static_cast<double>(GetParam() % 3) / 2.0;
  wc.write_fraction = static_cast<double>(GetParam() % 4) / 10.0;
  const auto reqs = generate_workload(wc);

  SimConfig sim;
  sim.timing = dram::ddr3_1600_timing();
  sim.enable_refresh = GetParam() % 2 == 0;

  for (const bool aware : {false, true}) {
    PolicyConfig pc = aware ? ir_aware_policy(24.0, GetParam() % 2 ? SchedulingKind::kFcfs
                                                                   : SchedulingKind::kDistR)
                            : standard_policy();
    pc.lut = &fuzz_lut();
    const auto r = MemoryController(sim, pc).run(reqs);

    ASSERT_TRUE(r.feasible) << "seed " << GetParam() << " aware=" << aware;
    EXPECT_EQ(r.reads + r.writes, wc.num_requests);
    EXPECT_GE(r.activates, 1);
    EXPECT_GE(r.row_hit_fraction, 0.0);
    EXPECT_LE(r.row_hit_fraction, 1.0);
    EXPECT_GT(r.cycles, 0);
    // Arrival span lower-bounds the runtime; bus peak upper-bounds bandwidth.
    EXPECT_GE(r.cycles, (wc.num_requests - 1) * wc.arrival_interval);
    EXPECT_LE(r.bandwidth_reads_per_clk, 0.25 + 1e-9);
    if (aware) {
      EXPECT_LE(r.max_ir_mv, 24.0 + 1e-9) << "seed " << GetParam();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ControllerFuzz,
                         ::testing::Values(1u, 7u, 42u, 1234u, 99999u, 31415926u));

}  // namespace
}  // namespace pdn3d::memctrl
