#include "memctrl/workload.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pdn3d::memctrl {
namespace {

TEST(Workload, GeneratesRequestedCount) {
  WorkloadConfig cfg;
  cfg.num_requests = 1234;
  const auto reqs = generate_workload(cfg);
  EXPECT_EQ(reqs.size(), 1234u);
}

TEST(Workload, ArrivalsEvenlySpaced) {
  WorkloadConfig cfg;
  cfg.num_requests = 100;
  cfg.arrival_interval = 5;
  const auto reqs = generate_workload(cfg);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    EXPECT_EQ(reqs[i].arrival, static_cast<dram::Cycle>(i) * 5);
    EXPECT_EQ(reqs[i].id, static_cast<long>(i));
  }
}

TEST(Workload, TargetsStayInRange) {
  WorkloadConfig cfg;
  cfg.num_requests = 5000;
  cfg.dies = 4;
  cfg.banks_per_die = 8;
  cfg.rows_per_bank = 128;
  const auto reqs = generate_workload(cfg);
  for (const auto& r : reqs) {
    EXPECT_GE(r.die, 0);
    EXPECT_LT(r.die, 4);
    EXPECT_GE(r.bank, 0);
    EXPECT_LT(r.bank, 8);
    EXPECT_GE(r.row, 0);
    EXPECT_LT(r.row, 128);
  }
}

TEST(Workload, DeterministicBySeed) {
  WorkloadConfig cfg;
  cfg.num_requests = 500;
  const auto a = generate_workload(cfg);
  const auto b = generate_workload(cfg);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].die, b[i].die);
    EXPECT_EQ(a[i].bank, b[i].bank);
    EXPECT_EQ(a[i].row, b[i].row);
  }
  cfg.seed = 999;
  const auto c = generate_workload(cfg);
  int diffs = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].die != c[i].die || a[i].bank != c[i].bank || a[i].row != c[i].row) ++diffs;
  }
  EXPECT_GT(diffs, 50);
}

TEST(Workload, LocalityNearConfiguredHitRate) {
  WorkloadConfig cfg;
  cfg.num_requests = 20000;
  cfg.row_hit_rate = 0.8;
  cfg.streams = 1;  // single stream makes the measurement exact
  const auto reqs = generate_workload(cfg);
  EXPECT_NEAR(measured_locality(reqs, cfg.dies, cfg.banks_per_die), 0.8, 0.03);
}

TEST(Workload, ZeroHitRateAlwaysJumps) {
  WorkloadConfig cfg;
  cfg.num_requests = 3000;
  cfg.row_hit_rate = 0.0;
  cfg.streams = 1;
  cfg.rows_per_bank = 100000;
  const auto reqs = generate_workload(cfg);
  EXPECT_LT(measured_locality(reqs, cfg.dies, cfg.banks_per_die), 0.02);
}

TEST(Workload, MultipleStreamsTouchMultipleDies) {
  WorkloadConfig cfg;
  cfg.num_requests = 400;
  cfg.streams = 4;
  cfg.row_hit_rate = 1.0;  // streams never jump; diversity comes from streams
  const auto reqs = generate_workload(cfg);
  std::set<std::pair<int, int>> targets;
  for (const auto& r : reqs) targets.insert({r.die, r.bank});
  EXPECT_GE(targets.size(), 2u);
  EXPECT_LE(targets.size(), 4u);
}

TEST(Workload, RejectsBadConfig) {
  WorkloadConfig cfg;
  cfg.num_requests = 0;
  EXPECT_THROW(generate_workload(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace pdn3d::memctrl
