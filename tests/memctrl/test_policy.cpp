#include "memctrl/policy.hpp"

#include <gtest/gtest.h>

namespace pdn3d::memctrl {
namespace {

TEST(PolicyFactories, StandardIsInOrderAndIrBlind) {
  const PolicyConfig pc = standard_policy();
  EXPECT_EQ(pc.ir_policy, IrPolicyKind::kStandard);
  EXPECT_EQ(pc.scheduling, SchedulingKind::kFcfs);
  EXPECT_FALSE(pc.out_of_order);
}

TEST(PolicyFactories, IrAwareScansQueue) {
  const PolicyConfig pc = ir_aware_policy(24.0, SchedulingKind::kDistR);
  EXPECT_EQ(pc.ir_policy, IrPolicyKind::kIrAware);
  EXPECT_EQ(pc.scheduling, SchedulingKind::kDistR);
  EXPECT_DOUBLE_EQ(pc.ir_constraint_mv, 24.0);
  EXPECT_TRUE(pc.out_of_order);
}

TEST(ActivationPolicy, StandardEnforcesTrrd) {
  const dram::TimingParams t = dram::ddr3_1600_timing();
  ActivationPolicy p(standard_policy(), t, 4, 2);
  const std::vector<int> idle = {0, 0, 0, 0};
  EXPECT_TRUE(p.allows(0, 0, idle));
  p.note_activate(0);
  EXPECT_FALSE(p.allows(t.tRRD - 1, 1, idle));
  EXPECT_TRUE(p.allows(t.tRRD, 1, idle));
}

TEST(ActivationPolicy, StandardEnforcesTfaw) {
  const dram::TimingParams t = dram::ddr3_1600_timing();
  ActivationPolicy p(standard_policy(), t, 4, 8);  // wide pump limit to isolate tFAW
  const std::vector<int> idle = {0, 0, 0, 0};
  for (int i = 0; i < 4; ++i) p.note_activate(i * t.tRRD);
  // Four activates in the window: the fifth must wait for the window to pass
  // (tRRD alone would already allow it at 24 + tRRD = 32, but the first ACT
  // is still inside its tFAW window at cycle 25..31).
  EXPECT_FALSE(p.allows(3 * t.tRRD + t.tRRD - 1, 0, idle));
  EXPECT_TRUE(p.allows(t.tFAW, 0, idle));
}

TEST(ActivationPolicy, StandardTreatsStackAsOneDie) {
  const dram::TimingParams t = dram::ddr3_1600_timing();
  ActivationPolicy p(standard_policy(), t, 4, 2);
  // Two banks active on die 0: a 3D-unaware controller refuses die 1 too.
  const std::vector<int> two_on_die0 = {2, 0, 0, 0};
  EXPECT_FALSE(p.allows(1000, 1, two_on_die0));
  const std::vector<int> split = {1, 1, 0, 0};
  EXPECT_FALSE(p.allows(1000, 2, split));
}

TEST(ActivationPolicy, IrAwareRequiresLut) {
  const dram::TimingParams t = dram::ddr3_1600_timing();
  PolicyConfig pc = ir_aware_policy(24.0);
  pc.lut = nullptr;
  EXPECT_THROW(ActivationPolicy(pc, t, 4, 2), std::invalid_argument);
}

TEST(ActivationPolicy, ChargePumpLimitAlwaysEnforced) {
  const dram::TimingParams t = dram::ddr3_1600_timing();
  ActivationPolicy p(standard_policy(), t, 4, 2);
  const std::vector<int> maxed = {2, 0, 0, 0};
  EXPECT_FALSE(p.allows(1000, 0, maxed));
}

TEST(ScheduleOrder, FcfsSortsByArrival) {
  std::vector<Request> q(3);
  q[0].arrival = 30;
  q[1].arrival = 10;
  q[2].arrival = 20;
  const auto order = schedule_order(q, SchedulingKind::kFcfs, {0, 0, 0, 0});
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(ScheduleOrder, DistRPrefersLeastActiveDie) {
  std::vector<Request> q(2);
  q[0].arrival = 0;
  q[0].die = 0;  // older, but die 0 is busy
  q[1].arrival = 10;
  q[1].die = 2;  // younger, idle die
  const auto order = schedule_order(q, SchedulingKind::kDistR, {2, 0, 0, 0});
  EXPECT_EQ(order.front(), 1u);
}

TEST(ScheduleOrder, DistRBreaksTiesByArrival) {
  std::vector<Request> q(2);
  q[0].arrival = 10;
  q[0].die = 1;
  q[1].arrival = 0;
  q[1].die = 3;
  const auto order = schedule_order(q, SchedulingKind::kDistR, {0, 0, 0, 0});
  EXPECT_EQ(order.front(), 1u);
}

}  // namespace
}  // namespace pdn3d::memctrl
