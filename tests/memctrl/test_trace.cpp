#include "memctrl/trace.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "memctrl/controller.hpp"
#include "memctrl/workload.hpp"

namespace pdn3d::memctrl {
namespace {

TEST(Trace, ParsesBasicTrace) {
  std::istringstream is(R"(# header comment
0 0 3 1203 R
5 1 0 88 W

10 3 7 42 r
)");
  const auto reqs = read_trace(is);
  ASSERT_EQ(reqs.size(), 3u);
  EXPECT_EQ(reqs[0].arrival, 0);
  EXPECT_EQ(reqs[0].bank, 3);
  EXPECT_FALSE(reqs[0].is_write);
  EXPECT_TRUE(reqs[1].is_write);
  EXPECT_EQ(reqs[2].die, 3);
  EXPECT_FALSE(reqs[2].is_write);
  EXPECT_EQ(reqs[2].id, 2);
}

TEST(Trace, RoundTrip) {
  WorkloadConfig wc;
  wc.num_requests = 500;
  wc.write_fraction = 0.25;
  const auto original = generate_workload(wc);

  std::ostringstream os;
  write_trace(os, original);
  std::istringstream is(os.str());
  const auto back = read_trace(is);

  ASSERT_EQ(back.size(), original.size());
  for (std::size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].arrival, original[i].arrival);
    EXPECT_EQ(back[i].die, original[i].die);
    EXPECT_EQ(back[i].bank, original[i].bank);
    EXPECT_EQ(back[i].row, original[i].row);
    EXPECT_EQ(back[i].is_write, original[i].is_write);
  }
}

TEST(Trace, RejectsMalformedLines) {
  const auto expect_throw = [](const char* text) {
    std::istringstream is(text);
    EXPECT_THROW(read_trace(is), std::runtime_error) << text;
  };
  expect_throw("0 0 0 R\n");             // missing field
  expect_throw("0 0 0 5 X\n");           // bad op
  expect_throw("0 0 0 5 R extra\n");     // trailing junk
  expect_throw("-1 0 0 5 R\n");          // negative
  expect_throw("10 0 0 5 R\n5 0 0 5 R\n");  // decreasing arrival
}

TEST(Trace, ValidateCatchesRangeErrors) {
  std::vector<Request> reqs(2);
  reqs[0].die = 0;
  reqs[0].bank = 0;
  reqs[1].die = 4;  // out of range for 4 dies
  reqs[1].bank = 0;
  EXPECT_NE(validate_trace(reqs, 4, 8), "");
  reqs[1].die = 3;
  reqs[1].bank = 8;  // out of range for 8 banks
  EXPECT_NE(validate_trace(reqs, 4, 8), "");
  reqs[1].bank = 7;
  EXPECT_EQ(validate_trace(reqs, 4, 8), "");
}

TEST(Trace, ReplaysThroughController) {
  std::ostringstream os;
  os << "# synthetic\n";
  for (int i = 0; i < 200; ++i) {
    os << i * 5 << ' ' << i % 4 << ' ' << (i / 4) % 8 << ' ' << 17 << (i % 5 == 0 ? " W" : " R")
       << "\n";
  }
  std::istringstream is(os.str());
  const auto reqs = read_trace(is);
  EXPECT_EQ(validate_trace(reqs, 4, 8), "");

  SimConfig sim;
  sim.timing = dram::ddr3_1600_timing();
  const auto r = MemoryController(sim, standard_policy()).run(reqs);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.reads + r.writes, 200);
  EXPECT_EQ(r.writes, 40);
}

}  // namespace
}  // namespace pdn3d::memctrl
