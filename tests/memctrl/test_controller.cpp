#include "memctrl/controller.hpp"

#include "memctrl/workload.hpp"

#include <gtest/gtest.h>

#include "floorplan/logic_floorplan.hpp"
#include "irdrop/lut.hpp"
#include "pdn/stack_builder.hpp"
#include "tech/presets.hpp"

namespace pdn3d::memctrl {
namespace {

SimConfig ddr3_sim() {
  SimConfig c;
  c.timing = dram::ddr3_1600_timing();
  c.dies = 4;
  c.banks_per_die = 8;
  c.channels = 1;
  return c;
}

std::vector<Request> simple_requests(int n, int interval = 5) {
  std::vector<Request> out;
  for (int i = 0; i < n; ++i) {
    Request r;
    r.id = i;
    r.arrival = static_cast<dram::Cycle>(i) * interval;
    r.die = 0;
    r.bank = 0;
    r.row = 7;
    out.push_back(r);
  }
  return out;
}

/// A shared LUT fixture (built once -- it needs 81 R-Mesh solves).
const irdrop::IrLut& shared_lut() {
  static const auto* holder = [] {
    struct Holder {
      pdn::StackSpec spec;
      pdn::BuiltStack built;
      irdrop::PowerBinding power;
      std::unique_ptr<irdrop::IrAnalyzer> analyzer;
      std::unique_ptr<irdrop::IrLut> lut;
    };
    auto* h = new Holder;
    floorplan::DramFloorplanSpec ds;
    ds.width_mm = 6.8;
    ds.height_mm = 6.7;
    ds.bank_cols = 4;
    ds.bank_rows = 2;
    h->spec.dram_spec = ds;
    h->spec.dram_fp = floorplan::make_dram_floorplan(ds);
    h->spec.logic_fp = floorplan::make_t2_floorplan();
    h->spec.num_dram_dies = 4;
    h->spec.tech = tech::ddr3_technology();
    h->built = pdn::build_stack(h->spec, pdn::PdnConfig{});
    h->analyzer = std::make_unique<irdrop::IrAnalyzer>(h->built.model, h->spec.dram_fp,
                                                       h->spec.logic_fp, h->power);
    h->lut = std::make_unique<irdrop::IrLut>(
        irdrop::IrLut::build(*h->analyzer, h->spec.dram_spec, 2, 0.8));
    return h;
  }();
  return *holder->lut;
}

TEST(Controller, CompletesAllRequests) {
  MemoryController mc(ddr3_sim(), standard_policy());
  const auto r = mc.run(simple_requests(100));
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.reads, 100);
  EXPECT_GT(r.cycles, 0);
  EXPECT_GT(r.runtime_us, 0.0);
}

TEST(Controller, SingleStreamIsRowHitDominated) {
  MemoryController mc(ddr3_sim(), standard_policy());
  const auto r = mc.run(simple_requests(500));
  EXPECT_GT(r.row_hit_fraction, 0.9);
  EXPECT_LT(r.activates, 50);
}

TEST(Controller, BandwidthBoundedByBusAndArrival) {
  MemoryController mc(ddr3_sim(), standard_policy());
  const auto r = mc.run(simple_requests(500, 5));
  EXPECT_LE(r.bandwidth_reads_per_clk, 0.25 + 1e-9);  // 4-cycle bursts
  EXPECT_LE(r.bandwidth_reads_per_clk, 0.2 + 1e-9);   // 5-cycle arrivals
}

TEST(Controller, RowConflictsForcePrecharges) {
  std::vector<Request> reqs;
  for (int i = 0; i < 100; ++i) {
    Request r;
    r.id = i;
    r.arrival = i * 10;
    r.die = 0;
    r.bank = 0;
    r.row = i % 2;  // ping-pong rows in one bank
    reqs.push_back(r);
  }
  MemoryController mc(ddr3_sim(), standard_policy());
  const auto r = mc.run(reqs);
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.reads, 100);
  EXPECT_GT(r.activates, 50);
  EXPECT_LT(r.row_hit_fraction, 0.5);
}

TEST(Controller, WorkloadIntegration) {
  WorkloadConfig wc;
  wc.num_requests = 2000;
  MemoryController mc(ddr3_sim(), standard_policy());
  const auto r = mc.run(generate_workload(wc));
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.reads, 2000);
}

TEST(Controller, IrAwareRespectsConstraint) {
  WorkloadConfig wc;
  wc.num_requests = 3000;
  wc.streams = 2;
  auto pc = ir_aware_policy(24.0, SchedulingKind::kFcfs);
  pc.lut = &shared_lut();
  MemoryController mc(ddr3_sim(), pc);
  const auto r = mc.run(generate_workload(wc));
  EXPECT_TRUE(r.feasible);
  EXPECT_EQ(r.reads, 3000);
  EXPECT_LE(r.max_ir_mv, 24.0);
}

TEST(Controller, StandardExceedsWhatIrAwareAvoids) {
  WorkloadConfig wc;
  wc.num_requests = 3000;
  wc.streams = 2;
  auto pc = standard_policy();
  pc.lut = &shared_lut();  // reporting only
  MemoryController mc(ddr3_sim(), pc);
  const auto r = mc.run(generate_workload(wc));
  EXPECT_GT(r.max_ir_mv, 24.0);
}

TEST(Controller, TightConstraintIsInfeasible) {
  auto pc = ir_aware_policy(1.0, SchedulingKind::kFcfs);  // below any state
  pc.lut = &shared_lut();
  SimConfig sim = ddr3_sim();
  sim.stall_limit = 2000;
  MemoryController mc(sim, pc);
  const auto r = mc.run(simple_requests(10));
  EXPECT_FALSE(r.feasible);
  EXPECT_EQ(r.reads, 0);
}

TEST(Controller, DistRBalancesAcrossDies) {
  WorkloadConfig wc;
  wc.num_requests = 4000;
  wc.streams = 4;
  auto fcfs = ir_aware_policy(24.0, SchedulingKind::kFcfs);
  fcfs.lut = &shared_lut();
  auto distr = ir_aware_policy(24.0, SchedulingKind::kDistR);
  distr.lut = &shared_lut();
  const auto reqs = generate_workload(wc);
  const auto rf = MemoryController(ddr3_sim(), fcfs).run(reqs);
  const auto rd = MemoryController(ddr3_sim(), distr).run(reqs);
  EXPECT_TRUE(rf.feasible);
  EXPECT_TRUE(rd.feasible);
  EXPECT_LE(rd.runtime_us, rf.runtime_us * 1.001);  // DistR at least as fast
}

TEST(Controller, MoreChannelsNeverSlower) {
  WorkloadConfig wc;
  wc.num_requests = 2000;
  wc.streams = 4;
  const auto reqs = generate_workload(wc);
  SimConfig one = ddr3_sim();
  SimConfig four = ddr3_sim();
  four.channels = 4;
  const auto r1 = MemoryController(one, standard_policy()).run(reqs);
  const auto r4 = MemoryController(four, standard_policy()).run(reqs);
  EXPECT_LE(r4.cycles, r1.cycles);
}

TEST(Controller, IsolationCheckEnforcesConstraintDynamically) {
  // Without the isolated-projection check, a bank closure on another die can
  // push the remaining state above the constraint (see policy.cpp).
  WorkloadConfig wc;
  wc.num_requests = 4000;
  wc.streams = 3;
  auto strict = ir_aware_policy(24.0, SchedulingKind::kDistR);
  strict.lut = &shared_lut();
  auto naive = strict;
  naive.isolation_check = false;
  const auto reqs = generate_workload(wc);
  const auto rs = MemoryController(ddr3_sim(), strict).run(reqs);
  const auto rn = MemoryController(ddr3_sim(), naive).run(reqs);
  EXPECT_LE(rs.max_ir_mv, 24.0 + 1e-9);
  EXPECT_GT(rn.max_ir_mv, 24.0);  // the naive policy drifts above its limit
}

TEST(Controller, RejectsBadConfig) {
  SimConfig bad = ddr3_sim();
  bad.dies = 0;
  EXPECT_THROW(MemoryController(bad, standard_policy()), std::invalid_argument);
  auto pc = ir_aware_policy(24.0);
  pc.lut = nullptr;
  EXPECT_THROW(MemoryController(ddr3_sim(), pc), std::invalid_argument);
}

}  // namespace
}  // namespace pdn3d::memctrl
