// Structured event log: text rendering stays byte-compatible with the legacy
// `[pdn3d LEVEL] message` lines, NDJSON rendering carries typed fields, and
// the format knob parses the documented spellings.

#include "obs/event_log.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/json.hpp"
#include "util/log.hpp"

namespace pdn3d::obs {
namespace {

using util::LogLevel;

TEST(EventLog, TextRenderingMatchesLegacyLines) {
  // Field-less events must render exactly like the old util::log_message
  // output so scripts grepping stderr keep working.
  EXPECT_EQ(render_event_text(LogLevel::kInfo, "starting solve", {}),
            "[pdn3d INFO ] starting solve");
  EXPECT_EQ(render_event_text(LogLevel::kWarn, "cache miss", {}),
            "[pdn3d WARN ] cache miss");
  EXPECT_EQ(render_event_text(LogLevel::kDebug, "x", {}), "[pdn3d DEBUG] x");
  EXPECT_EQ(render_event_text(LogLevel::kError, "boom", {}), "[pdn3d ERROR] boom");
}

TEST(EventLog, TextRenderingAppendsKeyValueFields) {
  const std::string line = render_event_text(
      LogLevel::kInfo, "serve.listening",
      {{"socket", json::Value("/tmp/p.sock")}, {"workers", json::Value(4)}});
  EXPECT_EQ(line, "[pdn3d INFO ] serve.listening socket=/tmp/p.sock workers=4");
}

TEST(EventLog, TextRenderingQuotesUnsafeStrings) {
  const std::string line = render_event_text(
      LogLevel::kWarn, "serve.slow_request",
      {{"reason", json::Value("has spaces")}, {"empty", json::Value("")}});
  EXPECT_EQ(line, R"([pdn3d WARN ] serve.slow_request reason="has spaces" empty="")");
}

TEST(EventLog, NdjsonRenderingCarriesTypedFields) {
  const std::string line = render_event_ndjson(
      LogLevel::kInfo, "serve.drained",
      {{"completed", json::Value(12)}, {"ok", json::Value(true)}},
      "2026-08-08T00:00:00.000Z");
  EXPECT_EQ(line,
            R"({"ts":"2026-08-08T00:00:00.000Z","level":"info","event":"serve.drained",)"
            R"("completed":12,"ok":true})");
}

TEST(EventLog, NdjsonReservedKeysCannotBeOverridden) {
  const std::string line = render_event_ndjson(
      LogLevel::kError, "faults.tripped",
      {{"level", json::Value("spoofed")}, {"site", json::Value("solver")}},
      "2026-08-08T00:00:00.000Z");
  EXPECT_EQ(line,
            R"({"ts":"2026-08-08T00:00:00.000Z","level":"error","event":"faults.tripped",)"
            R"("site":"solver"})");
}

TEST(EventLog, ParseLogFormatSpellings) {
  LogFormat f = LogFormat::kText;
  EXPECT_TRUE(parse_log_format("ndjson", &f));
  EXPECT_EQ(f, LogFormat::kNdjson);
  EXPECT_TRUE(parse_log_format("JSON", &f));
  EXPECT_EQ(f, LogFormat::kNdjson);
  EXPECT_TRUE(parse_log_format("  text ", &f));
  EXPECT_EQ(f, LogFormat::kText);
  f = LogFormat::kNdjson;
  EXPECT_FALSE(parse_log_format("xml", &f));
  EXPECT_EQ(f, LogFormat::kNdjson);  // untouched on failure
}

TEST(EventLog, SetLogFormatRoundTrips) {
  const LogFormat before = log_format();
  set_log_format(LogFormat::kNdjson);
  EXPECT_EQ(log_format(), LogFormat::kNdjson);
  set_log_format(LogFormat::kText);
  EXPECT_EQ(log_format(), LogFormat::kText);
  set_log_format(before);
}

TEST(EventLog, TimestampShapeIsIso8601Utc) {
  const std::string ts = event_timestamp();
  ASSERT_EQ(ts.size(), 24u) << ts;
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts.back(), 'Z');
}

}  // namespace
}  // namespace pdn3d::obs
