// Prometheus text-exposition renderer: name rewriting, per-kind sample
// shapes, cumulative histogram buckets, summary quantiles, byte stability.

#include "obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace pdn3d::obs {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(Prometheus, NameRewriting) {
  EXPECT_EQ(prometheus_name("service.run_ms"), "pdn3d_service_run_ms");
  EXPECT_EQ(prometheus_name("solver.rung_attempts.ic-pcg"),
            "pdn3d_solver_rung_attempts_ic_pcg");
  EXPECT_EQ(prometheus_name("already_legal:name"), "pdn3d_already_legal:name");
}

TEST(Prometheus, RendersCountersAndGauges) {
  MetricsSnapshot snap;
  snap.counters["svc.requests"] = 42;
  snap.gauges["svc.depth"] = 2.5;
  const std::string text = render_prometheus(snap);
  EXPECT_TRUE(contains(text, "# HELP pdn3d_svc_requests pdn3d metric svc.requests\n"));
  EXPECT_TRUE(contains(text, "# TYPE pdn3d_svc_requests counter\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_requests 42\n"));
  EXPECT_TRUE(contains(text, "# TYPE pdn3d_svc_depth gauge\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_depth 2.5\n"));
}

TEST(Prometheus, HistogramBucketsAreCumulativeAndEndInInf) {
  MetricsSnapshot snap;
  MetricsSnapshot::HistogramData h;
  h.upper_bounds = {1.0, 10.0};
  h.bucket_counts = {3, 2, 1};  // 1 observation overflowed
  h.count = 6;
  h.sum = 25.5;
  snap.histograms["svc.latency"] = h;
  const std::string text = render_prometheus(snap);
  EXPECT_TRUE(contains(text, "# TYPE pdn3d_svc_latency histogram\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_latency_bucket{le=\"1\"} 3\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_latency_bucket{le=\"10\"} 5\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_latency_bucket{le=\"+Inf\"} 6\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_latency_sum 25.5\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_latency_count 6\n"));
}

TEST(Prometheus, WindowRendersAsSummary) {
  MetricsSnapshot snap;
  QuantileWindow::Snapshot w;
  w.count = 100;
  w.window_count = 50;
  w.sum = 500.0;
  w.p50 = 4.0;
  w.p90 = 8.0;
  w.p95 = 9.0;
  w.p99 = 9.9;
  snap.windows["svc.run_ms"] = w;
  const std::string text = render_prometheus(snap);
  EXPECT_TRUE(contains(text, "# TYPE pdn3d_svc_run_ms summary\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_run_ms{quantile=\"0.5\"} 4\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_run_ms{quantile=\"0.9\"} 8\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_run_ms{quantile=\"0.95\"} 9\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_run_ms{quantile=\"0.99\"} 9.9000000000000004\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_run_ms_sum 500\n"));
  EXPECT_TRUE(contains(text, "pdn3d_svc_run_ms_count 100\n"));
}

TEST(Prometheus, OutputIsByteStableAcrossRenders) {
  MetricsSnapshot snap;
  snap.counters["b.second"] = 2;
  snap.counters["a.first"] = 1;
  snap.gauges["z.last"] = 9.0;
  const std::string once = render_prometheus(snap);
  const std::string twice = render_prometheus(snap);
  EXPECT_EQ(once, twice);
  // Sorted map order: a.first before b.second.
  EXPECT_LT(once.find("pdn3d_a_first"), once.find("pdn3d_b_second"));
}

TEST(Prometheus, EmptySnapshotRendersEmpty) {
  EXPECT_EQ(render_prometheus(MetricsSnapshot{}), "");
}

}  // namespace
}  // namespace pdn3d::obs
