#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace pdn3d::obs {
namespace {

// Metric names are process-global; every test uses its own prefix so the
// cases stay independent however the runner batches them.

TEST(Metrics, CounterAddsAndResets) {
  Counter& c = counter("test_metrics.counter_basic");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Metrics, RegistryReturnsSameInstanceByName) {
  Counter& a = counter("test_metrics.same_name");
  Counter& b = counter("test_metrics.same_name");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(Metrics, GaugeLastWriteWins) {
  Gauge& g = gauge("test_metrics.gauge_basic");
  g.set(1.5);
  g.set(-2.25);
  EXPECT_DOUBLE_EQ(g.value(), -2.25);
}

TEST(Metrics, HistogramBucketSemantics) {
  Histogram& h = histogram("test_metrics.hist_buckets", {1.0, 2.0, 4.0});
  h.observe(0.5);   // <= 1        -> bucket 0
  h.observe(1.0);   // <= 1 (incl) -> bucket 0
  h.observe(1.5);   // <= 2        -> bucket 1
  h.observe(4.0);   // <= 4        -> bucket 2
  h.observe(99.0);  // overflow    -> bucket 3
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // bounds + overflow
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 99.0);
}

TEST(Metrics, HistogramFirstRegistrationWinsBounds) {
  Histogram& a = histogram("test_metrics.hist_bounds", {1.0, 10.0});
  Histogram& b = histogram("test_metrics.hist_bounds", {5.0});  // ignored
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.upper_bounds(), (std::vector<double>{1.0, 10.0}));
}

TEST(Metrics, ConcurrentIncrementsDoNotTear) {
  Counter& c = counter("test_metrics.concurrent");
  Histogram& h = histogram("test_metrics.concurrent_hist", {0.5});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add(1);
        h.observe(1.0);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.bucket_counts().back(), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, SnapshotIsSortedAndDeterministic) {
  counter("test_metrics.snap_z").add(1);
  counter("test_metrics.snap_a").add(2);
  gauge("test_metrics.snap_g").set(7.0);
  histogram("test_metrics.snap_h", {1.0}).observe(0.5);

  const MetricsSnapshot s1 = MetricsRegistry::instance().snapshot();
  const MetricsSnapshot s2 = MetricsRegistry::instance().snapshot();

  // std::map keys iterate in sorted order -> byte-stable reports.
  EXPECT_TRUE(s1.counters.find("test_metrics.snap_a") != s1.counters.end());
  EXPECT_EQ(s1.counters.at("test_metrics.snap_z"), 1u);
  EXPECT_EQ(s1.counters.at("test_metrics.snap_a"), 2u);
  EXPECT_DOUBLE_EQ(s1.gauges.at("test_metrics.snap_g"), 7.0);
  EXPECT_EQ(s1.histograms.at("test_metrics.snap_h").count, 1u);
  EXPECT_EQ(s1.counters, s2.counters);
  EXPECT_EQ(s1.gauges, s2.gauges);
}

TEST(Metrics, ResetZeroesValuesButKeepsReferencesValid) {
  Counter& c = counter("test_metrics.reset_ref");
  c.add(5);
  MetricsRegistry::instance().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the reference must still point at live storage
  EXPECT_EQ(counter("test_metrics.reset_ref").value(), 2u);
}

TEST(Metrics, BucketHelpers) {
  EXPECT_EQ(linear_buckets(0.0, 2.0, 3), (std::vector<double>{0.0, 2.0, 4.0}));
  EXPECT_EQ(exponential_buckets(1.0, 2.0, 4), (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  const auto tb = time_buckets();
  ASSERT_GT(tb.size(), 2u);
  for (std::size_t i = 1; i < tb.size(); ++i) EXPECT_GT(tb[i], tb[i - 1]);
}

}  // namespace
}  // namespace pdn3d::obs
