#include "obs/report.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pdn3d::obs {
namespace {

RunReportOptions options_for_test() {
  RunReportOptions opt;
  opt.command = "analyze";
  opt.benchmark = "off-chip";
  opt.argv = {"pdn3d", "analyze", "off-chip"};
  return opt;
}

TEST(RunReport, ContainsDocumentedTopLevelKeys) {
  counter("test_report.some_counter").add(3);
  { TraceSpan span("test_report_span"); }

  const json::Value report = build_run_report(options_for_test());
  for (const char* key :
       {"schema", "tool", "version", "command", "benchmark", "provenance", "metrics", "spans",
        "solver", "trace_dropped_events", "trace_unbalanced_spans", "trace_events"}) {
    EXPECT_NE(report.find(key), nullptr) << "missing top-level key: " << key;
  }
  EXPECT_DOUBLE_EQ(report.find("schema")->as_number(), kReportSchemaVersion);
  EXPECT_EQ(report.find("tool")->as_string(), "pdn3d");
  EXPECT_EQ(report.find("command")->as_string(), "analyze");
  EXPECT_EQ(report.find("benchmark")->as_string(), "off-chip");

  const json::Value* prov = report.find("provenance");
  for (const char* key : {"git_revision", "build_type", "compiler", "timestamp_utc", "argv"}) {
    EXPECT_NE(prov->find(key), nullptr) << "missing provenance key: " << key;
  }
  EXPECT_EQ(prov->find("argv")->items().size(), 3u);

  const json::Value* metrics = report.find("metrics");
  ASSERT_NE(metrics->find("counters"), nullptr);
  ASSERT_NE(metrics->find("counters")->find("test_report.some_counter"), nullptr);
  EXPECT_GE(metrics->find("counters")->find("test_report.some_counter")->as_number(), 3.0);

  // The span recorded above appears in the aggregate span list.
  bool found = false;
  for (const json::Value& row : report.find("spans")->items()) {
    if (row.find("path")->as_string() == "test_report_span") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(RunReport, SolverBlockMirrorsRegistryCounters) {
  counter("solver.solves").add(2);
  counter("ladder.escalations").add(1);
  counter("solver.rung_attempts.ic-pcg").add(2);

  const json::Value report = build_run_report(options_for_test());
  const json::Value* solver = report.find("solver");
  ASSERT_NE(solver, nullptr);
  EXPECT_GE(solver->find("solves")->as_number(), 2.0);
  EXPECT_GE(solver->find("escalations")->as_number(), 1.0);
  ASSERT_NE(solver->find("rung_attempts")->find("ic-pcg"), nullptr);
  EXPECT_GE(solver->find("rung_attempts")->find("ic-pcg")->as_number(), 2.0);
}

TEST(RunReport, SolverBlockCarriesMacromodelStats) {
  counter("solver.macromodel.builds").add(1);
  counter("solver.macromodel.woodbury_updates").add(3);

  const json::Value report = build_run_report(options_for_test());
  const json::Value* macromodel = report.find("solver")->find("macromodel");
  ASSERT_NE(macromodel, nullptr);
  for (const char* key : {"builds", "reuses", "woodbury_updates", "fallbacks"}) {
    ASSERT_NE(macromodel->find(key), nullptr) << "missing macromodel key: " << key;
  }
  EXPECT_GE(macromodel->find("builds")->as_number(), 1.0);
  EXPECT_GE(macromodel->find("woodbury_updates")->as_number(), 3.0);
}

TEST(RunReport, TraceEventsCanBeExcluded) {
  { TraceSpan span("test_report_excluded"); }
  RunReportOptions opt = options_for_test();
  opt.include_trace_events = false;
  const json::Value report = build_run_report(opt);
  EXPECT_EQ(report.find("trace_events"), nullptr);
  EXPECT_NE(report.find("spans"), nullptr);  // aggregates are always present
}

TEST(RunReport, WriteProducesParseableFile) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "pdn3d_test_report.json";
  const core::Status st = write_run_report(path, options_for_test());
  ASSERT_TRUE(st.is_ok()) << st.to_string();

  std::ifstream is(path);
  std::stringstream buf;
  buf << is.rdbuf();
  const json::Value parsed = json::parse(buf.str());
  EXPECT_NE(parsed.find("schema"), nullptr);
  std::filesystem::remove(path);
}

TEST(RunReport, WriteToUnwritablePathReturnsStatus) {
  const core::Status st =
      write_run_report("/nonexistent_dir_pdn3d/report.json", options_for_test());
  EXPECT_FALSE(st.is_ok());
}

}  // namespace
}  // namespace pdn3d::obs
