#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "obs/json.hpp"

namespace pdn3d::obs {
namespace {

/// The store is process-global: reset it before and restore defaults after
/// every case so the tests are independent of run order.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceStore::instance().set_enabled(true);
    TraceStore::instance().set_event_capacity(65536);
    TraceStore::instance().clear();
  }
  void TearDown() override {
    TraceStore::instance().set_enabled(true);
    TraceStore::instance().set_event_capacity(65536);
    TraceStore::instance().clear();
  }
};

TEST_F(TraceTest, NestedSpansBuildSlashPaths) {
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
      { TraceSpan leaf("leaf"); }
    }
    { TraceSpan inner2("inner"); }
  }
  const auto stats = TraceStore::instance().stats();
  ASSERT_EQ(stats.count("outer"), 1u);
  ASSERT_EQ(stats.count("outer/inner"), 1u);
  ASSERT_EQ(stats.count("outer/inner/leaf"), 1u);
  EXPECT_EQ(stats.at("outer").count, 1u);
  EXPECT_EQ(stats.at("outer/inner").count, 2u);
  EXPECT_EQ(stats.at("outer/inner/leaf").count, 1u);
  EXPECT_EQ(TraceStore::instance().unbalanced_spans(), 0u);

  const auto events = TraceStore::instance().events();
  ASSERT_EQ(events.size(), 4u);
  // Children close before parents, so the parent is the last event.
  EXPECT_EQ(events.back().path, "outer");
  EXPECT_EQ(events.back().depth, 0);
  EXPECT_EQ(events.front().path, "outer/inner/leaf");
  EXPECT_EQ(events.front().depth, 2);
}

TEST_F(TraceTest, SelfTimeExcludesChildren) {
  {
    TraceSpan outer("outer");
    volatile double sink = 0.0;
    for (int i = 0; i < 200000; ++i) sink = sink + 1.0;
    {
      TraceSpan inner("inner");
      for (int i = 0; i < 200000; ++i) sink = sink + 1.0;
    }
  }
  const auto stats = TraceStore::instance().stats();
  const SpanStats& outer = stats.at("outer");
  const SpanStats& inner = stats.at("outer/inner");
  EXPECT_GE(outer.total_s, inner.total_s);
  // self = total - direct children (clamped at zero).
  EXPECT_NEAR(outer.self_s, outer.total_s - inner.total_s, 1e-9);
  EXPECT_GE(outer.min_s, 0.0);
  EXPECT_GE(outer.max_s, outer.min_s);
}

TEST_F(TraceTest, OutOfOrderDestructionIsCountedNotFatal) {
  auto outer = std::make_unique<TraceSpan>("bad_outer");
  auto inner = std::make_unique<TraceSpan>("bad_child");  // still open when outer dies
  outer.reset();  // pops the child frame as unbalanced, then closes itself
  inner.reset();  // its frame is already gone -> counted too
  EXPECT_EQ(TraceStore::instance().unbalanced_spans(), 2u);
  // The outer span still recorded; subsequent spans are unaffected.
  EXPECT_EQ(TraceStore::instance().stats().count("bad_outer"), 1u);
  { TraceSpan ok("after_unbalanced"); }
  EXPECT_EQ(TraceStore::instance().stats().count("after_unbalanced"), 1u);
}

TEST_F(TraceTest, ChromeTraceJsonRoundTrips) {
  {
    TraceSpan span("chrome_parent");
    span.attribute("k", "v");
    span.attribute("n", std::uint64_t{7});
    { TraceSpan child("child"); }
  }
  const std::string text = TraceStore::instance().chrome_trace().dump(2);
  const json::Value parsed = json::parse(text);

  ASSERT_NE(parsed.find("traceEvents"), nullptr);
  const json::Value& events = *parsed.find("traceEvents");
  ASSERT_TRUE(events.is_array());
  ASSERT_EQ(events.items().size(), 2u);
  for (const json::Value& ev : events.items()) {
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_NE(ev.find("ph"), nullptr);
    EXPECT_EQ(ev.find("ph")->as_string(), "X");
    EXPECT_TRUE(ev.find("ts")->is_number());
    EXPECT_TRUE(ev.find("dur")->is_number());
    EXPECT_TRUE(ev.find("pid")->is_number());
    EXPECT_TRUE(ev.find("tid")->is_number());
  }
  // The parent event carries the attributes as Chrome "args".
  const json::Value& parent = events.items().back();
  EXPECT_EQ(parent.find("name")->as_string(), "chrome_parent");
  ASSERT_NE(parent.find("args"), nullptr);
  EXPECT_EQ(parent.find("args")->find("k")->as_string(), "v");
  EXPECT_EQ(parent.find("args")->find("n")->as_string(), "7");
}

TEST_F(TraceTest, CapacityCapDropsRawEventsButKeepsExactStats) {
  TraceStore::instance().set_event_capacity(2);
  for (int i = 0; i < 5; ++i) {
    TraceSpan span("capped");
  }
  EXPECT_EQ(TraceStore::instance().events().size(), 2u);
  EXPECT_EQ(TraceStore::instance().dropped_events(), 3u);
  EXPECT_EQ(TraceStore::instance().stats().at("capped").count, 5u);  // aggregates stay exact
}

TEST_F(TraceTest, DisabledStoreRecordsNothing) {
  TraceStore::instance().set_enabled(false);
  {
    TraceSpan span("invisible");
    span.attribute("k", "v");  // must be a harmless no-op
  }
  EXPECT_TRUE(TraceStore::instance().events().empty());
  EXPECT_TRUE(TraceStore::instance().stats().empty());
}

TEST_F(TraceTest, ProfileTableListsHeaviestSpans) {
  { TraceSpan span("tabled_span"); }
  const std::string table = TraceStore::instance().profile_table(5);
  EXPECT_NE(table.find("tabled_span"), std::string::npos);
  EXPECT_NE(table.find("self (ms)"), std::string::npos);

  TraceStore::instance().clear();
  EXPECT_NE(TraceStore::instance().profile_table(5).find("(no spans recorded)"),
            std::string::npos);
}

TEST_F(TraceTest, MacroExpandsToScopedSpan) {
  {
    PDN3D_TRACE_SPAN("macro_span");
    PDN3D_TRACE_SPAN_NAMED(named, "macro_named");
    named.attribute("via", "macro");
  }
  const auto stats = TraceStore::instance().stats();
  EXPECT_EQ(stats.count("macro_span"), 1u);
  EXPECT_EQ(stats.count("macro_span/macro_named"), 1u);
}

}  // namespace
}  // namespace pdn3d::obs
