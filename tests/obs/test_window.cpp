// QuantileWindow edge cases (empty, single sample, wraparound, interpolation)
// plus the Histogram all-overflow case. The Concurrent* suite name follows
// the TSan convention (scripts/run_sanitized_tests.sh) so the concurrent
// observe/snapshot test runs under ThreadSanitizer.

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace pdn3d::obs {
namespace {

TEST(QuantileWindowTest, EmptyWindowSnapshotsToZeros) {
  QuantileWindow w(16);
  const auto s = w.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.window_count, 0u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
  EXPECT_DOUBLE_EQ(s.sum, 0.0);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
  EXPECT_DOUBLE_EQ(s.p99, 0.0);
}

TEST(QuantileWindowTest, SingleSampleIsEveryQuantile) {
  QuantileWindow w(16);
  w.observe(42.5);
  const auto s = w.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.window_count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 42.5);
  EXPECT_DOUBLE_EQ(s.max, 42.5);
  EXPECT_DOUBLE_EQ(s.sum, 42.5);
  EXPECT_DOUBLE_EQ(s.p50, 42.5);
  EXPECT_DOUBLE_EQ(s.p90, 42.5);
  EXPECT_DOUBLE_EQ(s.p95, 42.5);
  EXPECT_DOUBLE_EQ(s.p99, 42.5);
}

TEST(QuantileWindowTest, QuantilesInterpolateBetweenRanks) {
  QuantileWindow w(16);
  // Sorted window: {10, 20, 30, 40}. rank(q) = q * (n-1).
  for (double v : {40.0, 10.0, 30.0, 20.0}) w.observe(v);
  const auto s = w.snapshot();
  EXPECT_EQ(s.window_count, 4u);
  EXPECT_DOUBLE_EQ(s.p50, 25.0);   // rank 1.5 -> halfway between 20 and 30
  EXPECT_DOUBLE_EQ(s.p90, 37.0);   // rank 2.7
  EXPECT_DOUBLE_EQ(s.p95, 38.5);   // rank 2.85
  EXPECT_NEAR(s.p99, 39.7, 1e-9);  // rank 2.97
  EXPECT_DOUBLE_EQ(s.min, 10.0);
  EXPECT_DOUBLE_EQ(s.max, 40.0);
}

TEST(QuantileWindowTest, RingEvictsOldestPastCapacity) {
  QuantileWindow w(4);
  for (int i = 1; i <= 10; ++i) w.observe(static_cast<double>(i));
  const auto s = w.snapshot();
  EXPECT_EQ(s.count, 10u);        // lifetime count keeps growing
  EXPECT_EQ(s.window_count, 4u);  // window holds the last 4: {7,8,9,10}
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.sum, 7.0 + 8.0 + 9.0 + 10.0);
  EXPECT_DOUBLE_EQ(s.p50, 8.5);
}

TEST(QuantileWindowTest, CapacityClampsToAtLeastOne) {
  QuantileWindow w(0);
  EXPECT_EQ(w.capacity(), 1u);
  w.observe(1.0);
  w.observe(2.0);
  const auto s = w.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.window_count, 1u);
  EXPECT_DOUBLE_EQ(s.p50, 2.0);  // only the newest sample survives
}

TEST(QuantileWindowTest, ResetClearsWindowAndLifetimeCount) {
  QuantileWindow w(8);
  w.observe(5.0);
  w.reset();
  const auto s = w.snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.window_count, 0u);
  EXPECT_DOUBLE_EQ(s.p50, 0.0);
}

TEST(QuantileWindowTest, RegistryReturnsSameWindowByName) {
  QuantileWindow& a = window("test_window.same_name", 32);
  QuantileWindow& b = window("test_window.same_name", 999);  // capacity ignored
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.capacity(), 32u);  // first registration wins
  a.observe(3.0);
  EXPECT_EQ(b.snapshot().count, 1u);
}

TEST(QuantileWindowTest, SnapshotAppearsInRegistrySnapshot) {
  window("test_window.in_snapshot", 8).observe(12.0);
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();
  ASSERT_TRUE(snap.windows.find("test_window.in_snapshot") != snap.windows.end());
  EXPECT_EQ(snap.windows.at("test_window.in_snapshot").count, 1u);
  EXPECT_DOUBLE_EQ(snap.windows.at("test_window.in_snapshot").p50, 12.0);
}

TEST(Metrics, HistogramAllObservationsOverflow) {
  Histogram& h = histogram("test_window.hist_overflow", {1.0, 2.0});
  h.observe(100.0);
  h.observe(200.0);
  h.observe(300.0);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);  // two bounds + overflow
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 3u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 600.0);
}

TEST(ConcurrentWindow, ObserveAndSnapshotRace) {
  QuantileWindow& w = window("test_window.concurrent", 128);
  constexpr int kWriters = 4;
  constexpr int kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto s = w.snapshot();
      // min/max are always drawn from observed values (or zero when empty).
      EXPECT_GE(s.max, s.min);
      EXPECT_LE(s.window_count, w.capacity());
    }
  });
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        w.observe(static_cast<double>(t * kPerThread + i + 1));
      }
    });
  }
  for (auto& th : writers) th.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();
  const auto s = w.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kWriters) * kPerThread);
  EXPECT_EQ(s.window_count, w.capacity());
  EXPECT_GE(s.min, 1.0);
}

}  // namespace
}  // namespace pdn3d::obs
