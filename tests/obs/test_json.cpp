#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace pdn3d::obs {
namespace {

TEST(Json, ScalarKindsAndDump) {
  EXPECT_EQ(json::Value().dump(), "null");
  EXPECT_EQ(json::Value(true).dump(), "true");
  EXPECT_EQ(json::Value(false).dump(), "false");
  EXPECT_EQ(json::Value(42).dump(), "42");
  EXPECT_EQ(json::Value(2.5).dump(), "2.5");
  EXPECT_EQ(json::Value("hi").dump(), "\"hi\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  json::Value o = json::Value::object();
  o.set("zebra", 1);
  o.set("alpha", 2);
  o.set("mid", 3);
  EXPECT_EQ(o.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":3}");
}

TEST(Json, SetOverwritesExistingKeyInPlace) {
  json::Value o = json::Value::object();
  o.set("a", 1);
  o.set("b", 2);
  o.set("a", 9);
  EXPECT_EQ(o.dump(), "{\"a\":9,\"b\":2}");
  ASSERT_NE(o.find("a"), nullptr);
  EXPECT_DOUBLE_EQ(o.find("a")->as_number(), 9.0);
  EXPECT_EQ(o.find("missing"), nullptr);
}

TEST(Json, EscapeSpecialCharacters) {
  EXPECT_EQ(json::escape("a\"b\\c\n\t"), "a\\\"b\\\\c\\n\\t");
  // Control characters get \u00XX form.
  EXPECT_EQ(json::escape(std::string(1, '\x01')), "\\u0001");
}

TEST(Json, NonFiniteNumbersSerializeAsNull) {
  EXPECT_EQ(json::Value(std::numeric_limits<double>::quiet_NaN()).dump(), "null");
  EXPECT_EQ(json::Value(std::numeric_limits<double>::infinity()).dump(), "null");
}

TEST(Json, ParseRoundTripsADocument) {
  json::Value root = json::Value::object();
  root.set("name", "pdn3d");
  root.set("ok", true);
  root.set("nothing", json::Value());
  json::Value arr = json::Value::array();
  arr.push_back(1);
  arr.push_back(2.5);
  arr.push_back("three");
  root.set("list", std::move(arr));
  json::Value nested = json::Value::object();
  nested.set("depth", 2);
  root.set("child", std::move(nested));

  const json::Value parsed = json::parse(root.dump());
  EXPECT_EQ(parsed.dump(), root.dump());
  // Pretty-printed output parses back to the same document too.
  EXPECT_EQ(json::parse(root.dump(2)).dump(), root.dump());
}

TEST(Json, ParseHandlesEscapesAndUnicode) {
  const json::Value v = json::parse(R"("a\"b\\c\nA")");
  EXPECT_EQ(v.as_string(), "a\"b\\c\nA");
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)json::parse(""), std::runtime_error);
  EXPECT_THROW((void)json::parse("{"), std::runtime_error);
  EXPECT_THROW((void)json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW((void)json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW((void)json::parse("nul"), std::runtime_error);
}

TEST(Json, TypeMisuseThrows) {
  json::Value arr = json::Value::array();
  EXPECT_THROW(arr.set("k", 1), std::logic_error);
  json::Value obj = json::Value::object();
  EXPECT_THROW(obj.push_back(1), std::logic_error);
}

}  // namespace
}  // namespace pdn3d::obs
