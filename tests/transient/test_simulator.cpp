#include "transient/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/benchmarks.hpp"
#include "irdrop/analysis.hpp"
#include "pdn/stack_builder.hpp"
#include "transient/decap.hpp"

namespace pdn3d::transient {
namespace {

/// Single-node RC: VDD --R-- n0 with C at n0 and a current step I.
/// Analytic: IR(t) = I*R*(1 - exp(-t/RC)).
TEST(TransientSimulator, MatchesAnalyticRC) {
  pdn::StackModel m(1.0);
  pdn::LayerGrid g;
  g.die = 0;
  g.layer = 0;
  g.nx = 1;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  const double R = 2.0;
  const double C = 1e-9;
  const double I = 0.1;
  m.add_tap(0, R);

  const std::vector<double> caps = {C};
  const double dt = 1e-11;  // RC/200
  TransientSimulator sim(m, caps, dt);
  const auto result = sim.step_response(std::vector<double>{I}, 10.0 * R * C);

  EXPECT_NEAR(result.dc_ir_mv, I * R * 1e3, 1e-6);
  EXPECT_NEAR(result.peak_ir_mv, I * R * 1e3, 0.01 * I * R * 1e3);

  // Check the waveform against the analytic exponential at a few times.
  for (std::size_t k = 10; k < result.time_ns.size(); k += 40) {
    const double t = result.time_ns[k] * 1e-9;
    const double expected_mv = I * R * (1.0 - std::exp(-t / (R * C))) * 1e3;
    EXPECT_NEAR(result.worst_ir_mv[k], expected_mv, 0.03 * I * R * 1e3);
  }

  // Settling time ~ 4 RC for 2%.
  EXPECT_NEAR(result.settle_ns, 3.9 * R * C * 1e9, 1.5);
  EXPECT_DOUBLE_EQ(result.overshoot_fraction, 0.0);
}

TEST(TransientSimulator, FullStackDroopApproachesDc) {
  const auto bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  const auto built = pdn::build_stack(bench.stack, bench.baseline);
  irdrop::PowerBinding power;
  power.dram = bench.dram_power;
  power.logic = bench.logic_power;
  const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp, power);
  const auto state = power::parse_memory_state("0-0-0-2", bench.stack.dram_spec);
  const auto sinks = analyzer.injection(state);
  const double dc = analyzer.analyze(state).dram_max_mv;

  const auto caps = assign_node_capacitance(built.model);
  TransientSimulator sim(built.model, caps, 1e-9);
  const auto result = sim.step_response(sinks, 500e-9);

  EXPECT_NEAR(result.dc_ir_mv, dc, 0.02 * dc);
  // The transient must end near DC and never stay below it forever.
  EXPECT_NEAR(result.worst_ir_mv.back(), dc, 0.05 * dc);
  EXPECT_LE(result.worst_ir_mv.front(), 1e-9);
  // Monotone-ish rise: the first sample after t=0 is below the final value.
  EXPECT_LT(result.worst_ir_mv[1], result.worst_ir_mv.back());
}

TEST(TransientSimulator, MoreDecapSlowsDroop) {
  const auto bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  const auto built = pdn::build_stack(bench.stack, bench.baseline);
  irdrop::PowerBinding power;
  power.dram = bench.dram_power;
  power.logic = bench.logic_power;
  const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp, power);
  const auto sinks =
      analyzer.injection(power::parse_memory_state("0-0-0-2", bench.stack.dram_spec));

  DecapConfig small;
  small.die_nf_per_mm2 = 0.02;
  small.tap_decap_nf = 0.0;
  DecapConfig big;
  big.die_nf_per_mm2 = 0.40;
  big.tap_decap_nf = 10.0;

  TransientSimulator sim_small(built.model, assign_node_capacitance(built.model, small), 1e-9);
  TransientSimulator sim_big(built.model, assign_node_capacitance(built.model, big), 1e-9);
  const auto r_small = sim_small.step_response(sinks, 200e-9);
  const auto r_big = sim_big.step_response(sinks, 200e-9);

  // With more decap the droop at a fixed early time is smaller.
  const std::size_t k = 5;  // 5 ns
  EXPECT_LT(r_big.worst_ir_mv[k], r_small.worst_ir_mv[k]);
  EXPECT_GE(r_big.settle_ns, r_small.settle_ns);
}

TEST(TransientSimulator, InputValidation) {
  const auto bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  const auto built = pdn::build_stack(bench.stack, bench.baseline);
  const auto caps = assign_node_capacitance(built.model);
  EXPECT_THROW(TransientSimulator(built.model, caps, 0.0), std::invalid_argument);
  const std::vector<double> bad_caps(3, 1e-12);
  EXPECT_THROW(TransientSimulator(built.model, bad_caps, 1e-9), std::invalid_argument);

  TransientSimulator sim(built.model, caps, 1e-9);
  const std::vector<double> bad_sinks(3, 0.0);
  EXPECT_THROW(sim.step_response(bad_sinks, 1e-7), std::invalid_argument);
  const std::vector<double> sinks(built.model.node_count(), 0.0);
  EXPECT_THROW(sim.step_response(sinks, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace pdn3d::transient
