#include "transient/decap.hpp"

#include <gtest/gtest.h>

#include "core/benchmarks.hpp"
#include "pdn/stack_builder.hpp"

namespace pdn3d::transient {
namespace {

TEST(Decap, EveryNodeReceivesCapacitance) {
  const auto bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  const auto built = pdn::build_stack(bench.stack, bench.baseline);
  const auto caps = assign_node_capacitance(built.model);
  ASSERT_EQ(caps.size(), built.model.node_count());
  for (double c : caps) EXPECT_GT(c, 0.0);
}

TEST(Decap, TotalsTrackDieArea) {
  const auto bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  const auto built = pdn::build_stack(bench.stack, bench.baseline);
  DecapConfig cfg;
  cfg.tap_decap_nf = 0.0;  // isolate the area terms
  const auto caps = assign_node_capacitance(built.model, cfg);
  const double total_nf = total_capacitance(caps) * 1e9;

  // 4 DRAM dies at 6.8 x 6.7 mm plus the package plane.
  const double dram_area = 4.0 * 6.8 * 6.7;
  const double pkg_area = (6.8 + 2.0) * (6.7 + 2.0);
  const double expected_nf = cfg.die_nf_per_mm2 * dram_area + cfg.package_nf_per_mm2 * pkg_area;
  EXPECT_NEAR(total_nf, expected_nf, 0.05 * expected_nf);
}

TEST(Decap, TapDecapAdds) {
  const auto bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  const auto built = pdn::build_stack(bench.stack, bench.baseline);
  DecapConfig none;
  none.tap_decap_nf = 0.0;
  DecapConfig some;
  some.tap_decap_nf = 5.0;
  const double delta_nf = (total_capacitance(assign_node_capacitance(built.model, some)) -
                           total_capacitance(assign_node_capacitance(built.model, none))) *
                          1e9;
  EXPECT_NEAR(delta_nf, 5.0 * static_cast<double>(built.model.taps().size()), 1e-6);
}

}  // namespace
}  // namespace pdn3d::transient
