#include "floorplan/logic_floorplan.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pdn3d::floorplan {
namespace {

TEST(LogicFloorplan, T2HasEightCores) {
  const Floorplan fp = make_t2_floorplan();
  EXPECT_EQ(fp.blocks_of_type(BlockType::kCore).size(), 8u);
  EXPECT_EQ(fp.blocks_of_type(BlockType::kCache).size(), 8u);
  EXPECT_EQ(fp.blocks_of_type(BlockType::kUncore).size(), 1u);
  EXPECT_TRUE(fp.is_legal());
  EXPECT_DOUBLE_EQ(fp.width(), 9.0);
  EXPECT_DOUBLE_EQ(fp.height(), 8.0);
}

TEST(LogicFloorplan, T2CachesAdjoinCrossbar) {
  const Floorplan fp = make_t2_floorplan();
  const auto* xbar = fp.blocks_of_type(BlockType::kUncore).front();
  // Caches must sit against the crossbar strip (either side of it).
  for (const auto* cache : fp.blocks_of_type(BlockType::kCache)) {
    const double cache_gap = std::min(std::abs(cache->rect.y1 - xbar->rect.y0),
                                      std::abs(cache->rect.y0 - xbar->rect.y1));
    EXPECT_LT(cache_gap, 0.2);
  }
}

TEST(LogicFloorplan, HmcLogicHasSixteenVaults) {
  const Floorplan fp = make_hmc_logic_floorplan();
  EXPECT_EQ(fp.blocks_of_type(BlockType::kCore).size(), 16u);
  EXPECT_EQ(fp.blocks_of_type(BlockType::kUncore).size(), 2u);  // SerDes strips
  EXPECT_TRUE(fp.is_legal());
}

TEST(LogicFloorplan, CustomDimensions) {
  const Floorplan fp = make_t2_floorplan(12.0, 10.0);
  EXPECT_DOUBLE_EQ(fp.width(), 12.0);
  EXPECT_TRUE(fp.is_legal());
}

}  // namespace
}  // namespace pdn3d::floorplan
