#include "floorplan/dram_floorplan.hpp"

#include <gtest/gtest.h>

namespace pdn3d::floorplan {
namespace {

DramFloorplanSpec ddr3_spec() {
  DramFloorplanSpec s;
  s.width_mm = 6.8;
  s.height_mm = 6.7;
  s.bank_cols = 4;
  s.bank_rows = 2;
  return s;
}

TEST(DramFloorplan, Ddr3HasEightBanks) {
  const Floorplan fp = make_dram_floorplan(ddr3_spec());
  EXPECT_EQ(fp.bank_count(), 8);
  EXPECT_TRUE(fp.is_legal());
}

TEST(DramFloorplan, BankIndexingIsColumnMajor) {
  const auto spec = ddr3_spec();
  const Floorplan fp = make_dram_floorplan(spec);
  // Bank index = col * rows + row; banks of one column share x-extent.
  const Block& b0 = fp.bank(0);
  const Block& b1 = fp.bank(1);
  EXPECT_DOUBLE_EQ(b0.rect.x0, b1.rect.x0);
  EXPECT_LT(b0.rect.y0, b1.rect.y0);  // row 0 below row 1
  // Next column starts further right.
  const Block& b2 = fp.bank(2);
  EXPECT_GT(b2.rect.x0, b0.rect.x0);
}

TEST(DramFloorplan, HasPeripheryIoAndDecoders) {
  const Floorplan fp = make_dram_floorplan(ddr3_spec());
  EXPECT_EQ(fp.blocks_of_type(BlockType::kIoBlock).size(), 1u);
  EXPECT_EQ(fp.blocks_of_type(BlockType::kPeriphery).size(), 2u);
  EXPECT_EQ(fp.blocks_of_type(BlockType::kColDecoder).size(), 2u);
  // cols - 1 inter-column strips, each split above/below the center band.
  EXPECT_EQ(fp.blocks_of_type(BlockType::kRowDecoder).size(), 6u);
}

TEST(DramFloorplan, UtilizationReasonable) {
  const Floorplan fp = make_dram_floorplan(ddr3_spec());
  EXPECT_GT(fp.utilization(), 0.6);
  EXPECT_LT(fp.utilization(), 1.0);
}

TEST(DramFloorplan, MissingBankThrows) {
  const Floorplan fp = make_dram_floorplan(ddr3_spec());
  EXPECT_THROW(fp.bank(8), std::out_of_range);
  EXPECT_THROW(fp.bank(-1), std::out_of_range);
}

TEST(DramFloorplan, InterleavePairSpansColumn) {
  const auto spec = ddr3_spec();
  const auto pair = interleave_pair(spec, 0);
  EXPECT_EQ(pair.low, 0);
  EXPECT_EQ(pair.high, 1);
  const auto pair3 = interleave_pair(spec, 3);
  EXPECT_EQ(pair3.low, 6);
  EXPECT_EQ(pair3.high, 7);
  EXPECT_THROW(interleave_pair(spec, 4), std::out_of_range);
}

TEST(DramFloorplan, RejectsOddRows) {
  DramFloorplanSpec s = ddr3_spec();
  s.bank_rows = 3;
  EXPECT_THROW(make_dram_floorplan(s), std::invalid_argument);
}

TEST(DramFloorplan, RejectsTinyDie) {
  DramFloorplanSpec s = ddr3_spec();
  s.width_mm = 0.2;
  s.height_mm = 0.2;
  EXPECT_THROW(make_dram_floorplan(s), std::invalid_argument);
}

class DramFloorplanShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DramFloorplanShapes, GeneratesLegalFloorplan) {
  DramFloorplanSpec s;
  s.width_mm = 7.2;
  s.height_mm = 6.4;
  s.bank_cols = GetParam().first;
  s.bank_rows = GetParam().second;
  const Floorplan fp = make_dram_floorplan(s);
  EXPECT_EQ(fp.bank_count(), s.bank_cols * s.bank_rows);
  EXPECT_TRUE(fp.is_legal());
  // Every bank index must resolve.
  for (int i = 0; i < fp.bank_count(); ++i) {
    EXPECT_EQ(fp.bank(i).bank_index, i);
  }
}

INSTANTIATE_TEST_SUITE_P(BenchmarkShapes, DramFloorplanShapes,
                         ::testing::Values(std::make_pair(4, 2),   // DDR3
                                           std::make_pair(4, 4),   // Wide I/O
                                           std::make_pair(8, 4),   // HMC
                                           std::make_pair(2, 2),   // small
                                           std::make_pair(1, 2))); // degenerate

}  // namespace
}  // namespace pdn3d::floorplan
