#include "floorplan/geometry.hpp"

#include <gtest/gtest.h>

namespace pdn3d::floorplan {
namespace {

TEST(Geometry, RectBasics) {
  const Rect r{1.0, 2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(r.width(), 3.0);
  EXPECT_DOUBLE_EQ(r.height(), 4.0);
  EXPECT_DOUBLE_EQ(r.area(), 12.0);
  EXPECT_DOUBLE_EQ(r.center().x, 2.5);
  EXPECT_DOUBLE_EQ(r.center().y, 4.0);
}

TEST(Geometry, ContainsIsClosed) {
  const Rect r{0.0, 0.0, 1.0, 1.0};
  EXPECT_TRUE(r.contains({0.0, 0.0}));
  EXPECT_TRUE(r.contains({1.0, 1.0}));
  EXPECT_TRUE(r.contains({0.5, 0.5}));
  EXPECT_FALSE(r.contains({1.0001, 0.5}));
  EXPECT_FALSE(r.contains({0.5, -0.0001}));
}

TEST(Geometry, OverlapsIsStrict) {
  const Rect a{0.0, 0.0, 1.0, 1.0};
  const Rect b{1.0, 0.0, 2.0, 1.0};  // shares an edge only
  EXPECT_FALSE(a.overlaps(b));
  const Rect c{0.5, 0.5, 1.5, 1.5};
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(a));
}

TEST(Geometry, OverlapArea) {
  const Rect a{0.0, 0.0, 2.0, 2.0};
  const Rect b{1.0, 1.0, 3.0, 3.0};
  EXPECT_DOUBLE_EQ(a.overlap_area(b), 1.0);
  const Rect c{5.0, 5.0, 6.0, 6.0};
  EXPECT_DOUBLE_EQ(a.overlap_area(c), 0.0);
}

TEST(Geometry, Distance) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

}  // namespace
}  // namespace pdn3d::floorplan
