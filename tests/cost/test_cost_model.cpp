#include "cost/cost_model.hpp"

#include <gtest/gtest.h>

namespace pdn3d::cost {
namespace {

pdn::PdnConfig baseline_off_chip() {
  pdn::PdnConfig c;  // M2 10%, M3 20%, TC 33, edge, F2B, off-chip
  return c;
}

TEST(CostModel, Table8Endpoints) {
  pdn::PdnConfig c = baseline_off_chip();
  c.tsv_location = pdn::TsvLocation::kCenter;
  c.mounting = pdn::Mounting::kOnChip;

  c.m2_usage = 0.10;
  EXPECT_NEAR(compute_cost(c).m2, 0.025, 1e-9);
  c.m2_usage = 0.20;
  EXPECT_NEAR(compute_cost(c).m2, 0.050, 1e-9);

  c.m3_usage = 0.10;
  EXPECT_NEAR(compute_cost(c).m3, 0.025, 1e-9);
  c.m3_usage = 0.40;
  EXPECT_NEAR(compute_cost(c).m3, 0.100, 1e-9);

  c.tsv_count = 15;
  EXPECT_NEAR(compute_cost(c).tsv_count, 0.078, 1e-3);
  c.tsv_count = 480;
  EXPECT_NEAR(compute_cost(c).tsv_count, 0.44, 5e-3);
}

TEST(CostModel, TsvLocationMultipliers) {
  pdn::PdnConfig c = baseline_off_chip();
  c.tsv_count = 100;
  c.tsv_location = pdn::TsvLocation::kCenter;
  const double tc = compute_cost(c).tsv_count;
  EXPECT_DOUBLE_EQ(compute_cost(c).tsv_location, 0.0);
  c.tsv_location = pdn::TsvLocation::kEdge;
  EXPECT_NEAR(compute_cost(c).tsv_location, 0.5 * tc, 1e-12);
  c.tsv_location = pdn::TsvLocation::kDistributed;
  EXPECT_NEAR(compute_cost(c).tsv_location, tc, 1e-12);
}

TEST(CostModel, FixedTerms) {
  pdn::PdnConfig c = baseline_off_chip();
  c.mounting = pdn::Mounting::kOnChip;
  EXPECT_DOUBLE_EQ(compute_cost(c).bonding, 0.045);
  c.bonding = pdn::BondingStyle::kF2F;
  EXPECT_DOUBLE_EQ(compute_cost(c).bonding, 0.06);
  EXPECT_DOUBLE_EQ(compute_cost(c).rdl, 0.0);
  c.rdl = pdn::RdlMode::kBottomOnly;
  EXPECT_DOUBLE_EQ(compute_cost(c).rdl, 0.05);
  EXPECT_DOUBLE_EQ(compute_cost(c).wire_bond, 0.0);
  c.wire_bonding = true;
  EXPECT_DOUBLE_EQ(compute_cost(c).wire_bond, 0.03);
  EXPECT_DOUBLE_EQ(compute_cost(c).dedicated, 0.0);
  c.dedicated_tsvs = true;
  EXPECT_DOUBLE_EQ(compute_cost(c).dedicated, 0.06);
}

TEST(CostModel, OffChipAlwaysPaysDedicatedTsvs) {
  pdn::PdnConfig c = baseline_off_chip();
  c.dedicated_tsvs = false;
  EXPECT_DOUBLE_EQ(compute_cost(c).dedicated, 0.06);
}

TEST(CostModel, PaperTable9BaselineCosts) {
  // Off-chip baseline: M2 10, M3 20, TC 33 edge, F2B -> 0.35.
  EXPECT_NEAR(total_cost(baseline_off_chip()), 0.35, 0.01);

  // On-chip alpha=0 point: M2 10, M3 10, TC 15 center, F2B, no extras -> 0.17.
  pdn::PdnConfig a0;
  a0.mounting = pdn::Mounting::kOnChip;
  a0.m3_usage = 0.10;
  a0.tsv_count = 15;
  a0.tsv_location = pdn::TsvLocation::kCenter;
  EXPECT_NEAR(total_cost(a0), 0.17, 0.01);

  // Off-chip alpha=1 point: M2 20, M3 40, TC 360 edge, F2F, WB -> 0.87.
  pdn::PdnConfig a1;
  a1.m2_usage = 0.20;
  a1.m3_usage = 0.40;
  a1.tsv_count = 360;
  a1.bonding = pdn::BondingStyle::kF2F;
  a1.wire_bonding = true;
  EXPECT_NEAR(total_cost(a1), 0.87, 0.01);

  // HMC alpha=1: M2 20, M3 40, TC 480 distributed, dedicated, F2B, WB -> 1.17.
  pdn::PdnConfig hmc;
  hmc.mounting = pdn::Mounting::kOnChip;
  hmc.m2_usage = 0.20;
  hmc.m3_usage = 0.40;
  hmc.tsv_count = 480;
  hmc.tsv_location = pdn::TsvLocation::kDistributed;
  hmc.dedicated_tsvs = true;
  hmc.wire_bonding = true;
  EXPECT_NEAR(total_cost(hmc), 1.17, 0.01);
}

TEST(CostModel, InvalidConfigsThrow) {
  pdn::PdnConfig c = baseline_off_chip();
  c.tsv_count = 0;
  EXPECT_THROW(compute_cost(c), std::invalid_argument);
  c = baseline_off_chip();
  c.m2_usage = 0.0;
  EXPECT_THROW(compute_cost(c), std::invalid_argument);
}

TEST(IrCost, AlphaBlendsObjectives) {
  EXPECT_DOUBLE_EQ(ir_cost(30.0, 0.5, 0.0), 0.5);   // pure cost
  EXPECT_DOUBLE_EQ(ir_cost(30.0, 0.5, 1.0), 30.0);  // pure IR
  const double mid = ir_cost(30.0, 0.5, 0.3);
  EXPECT_GT(mid, 0.5);
  EXPECT_LT(mid, 30.0);
}

TEST(IrCost, RejectsBadInputs) {
  EXPECT_THROW(ir_cost(30.0, 0.5, -0.1), std::invalid_argument);
  EXPECT_THROW(ir_cost(30.0, 0.5, 1.1), std::invalid_argument);
  EXPECT_THROW(ir_cost(0.0, 0.5, 0.5), std::invalid_argument);
  EXPECT_THROW(ir_cost(30.0, 0.0, 0.5), std::invalid_argument);
}

TEST(IrCost, MonotoneInBothArguments) {
  EXPECT_LT(ir_cost(20.0, 0.5, 0.3), ir_cost(30.0, 0.5, 0.3));
  EXPECT_LT(ir_cost(30.0, 0.4, 0.3), ir_cost(30.0, 0.5, 0.3));
}

}  // namespace
}  // namespace pdn3d::cost
