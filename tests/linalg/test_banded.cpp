#include "linalg/banded.hpp"

#include <gtest/gtest.h>

#include "linalg/coo.hpp"
#include "linalg/dense.hpp"
#include "linalg/reorder.hpp"
#include "util/rng.hpp"

namespace pdn3d::linalg {
namespace {

/// 2D grid conductance matrix with ground taps -- the PDN structure.
Csr make_grid(int nx, int ny, double g_edge = 1.0, double g_ground = 0.2) {
  CooBuilder b(static_cast<std::size_t>(nx * ny));
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const auto k = static_cast<std::size_t>(j * nx + i);
      if (i + 1 < nx) b.stamp_conductance(k, k + 1, g_edge);
      if (j + 1 < ny) b.stamp_conductance(k, k + static_cast<std::size_t>(nx), g_edge);
    }
  }
  b.stamp_to_ground(0, g_ground);
  b.stamp_to_ground(static_cast<std::size_t>(nx * ny - 1), g_ground);
  return b.compress();
}

TEST(Rcm, ReducesGridBandwidth) {
  // A 6x40 grid numbered row-major has bandwidth 6 along the short axis, but
  // numbering it column-major (worst case) gives 40; RCM must find ~6.
  const int nx = 40;
  const int ny = 6;
  const Csr a = make_grid(nx, ny);
  const auto rcm = rcm_ordering(a);
  EXPECT_LE(bandwidth_under(a, rcm), 8u);
  EXPECT_EQ(rcm.size(), a.dimension());
  // Permutation property: every index exactly once.
  std::vector<char> seen(a.dimension(), 0);
  for (std::size_t v : rcm) {
    ASSERT_LT(v, a.dimension());
    EXPECT_EQ(seen[v], 0);
    seen[v] = 1;
  }
}

TEST(Rcm, HandlesDisconnectedComponents) {
  CooBuilder b(6);
  b.stamp_conductance(0, 1, 1.0);
  b.stamp_conductance(2, 3, 1.0);
  b.stamp_conductance(4, 5, 1.0);
  for (std::size_t i = 0; i < 6; ++i) b.stamp_to_ground(i, 0.1);
  const auto perm = rcm_ordering(b.compress());
  EXPECT_EQ(perm.size(), 6u);
  std::vector<char> seen(6, 0);
  for (std::size_t v : perm) seen[v] = 1;
  for (char c : seen) EXPECT_EQ(c, 1);
}

TEST(BandedCholesky, MatchesDenseSolve) {
  const Csr a = make_grid(12, 9);
  const BandedCholesky banded(a, rcm_ordering(a));

  util::Rng rng(3);
  std::vector<double> b(a.dimension(), 0.0);
  for (double& x : b) x = rng.next_double();

  DenseMatrix d(a.dimension(), a.dimension());
  for (std::size_t i = 0; i < a.dimension(); ++i) {
    for (std::size_t j = 0; j < a.dimension(); ++j) d(i, j) = a.at(i, j);
  }
  const auto x_ref = solve_cholesky(std::move(d), b);
  const auto x = banded.solve(b);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-9);
  }
}

TEST(BandedCholesky, IdentityOrderingAlsoCorrect) {
  const Csr a = make_grid(8, 8);
  const BandedCholesky natural(a, identity_ordering(a.dimension()));
  const BandedCholesky rcm(a, rcm_ordering(a));
  std::vector<double> b(a.dimension(), 0.0);
  b[10] = 1.0;
  const auto x1 = natural.solve(b);
  const auto x2 = rcm.solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_NEAR(x1[i], x2[i], 1e-10);
  }
}

TEST(BandedCholesky, RepeatedSolvesConsistent) {
  const Csr a = make_grid(10, 10);
  const BandedCholesky banded(a, rcm_ordering(a));
  std::vector<double> b1(a.dimension(), 0.0);
  b1[5] = 1.0;
  std::vector<double> b2(a.dimension(), 0.0);
  b2[70] = -2.0;
  const auto x1 = banded.solve(b1);
  const auto x2 = banded.solve(b2);
  // Linearity: solve(b1 + b2) == x1 + x2.
  std::vector<double> b3(a.dimension(), 0.0);
  b3[5] = 1.0;
  b3[70] = -2.0;
  const auto x3 = banded.solve(b3);
  for (std::size_t i = 0; i < x3.size(); ++i) {
    EXPECT_NEAR(x3[i], x1[i] + x2[i], 1e-10);
  }
}

TEST(BandedCholesky, RejectsIndefiniteAndBadInput) {
  CooBuilder b(2);
  b.add(0, 0, 1.0);
  b.add(0, 1, 2.0);
  b.add(1, 0, 2.0);
  b.add(1, 1, 1.0);
  const Csr indefinite = b.compress();
  EXPECT_THROW(BandedCholesky(indefinite, identity_ordering(2)), std::runtime_error);

  const Csr a = make_grid(4, 4);
  EXPECT_THROW(BandedCholesky(a, identity_ordering(3)), std::invalid_argument);
  const BandedCholesky ok(a, identity_ordering(a.dimension()));
  const std::vector<double> bad_rhs(3, 0.0);
  EXPECT_THROW(ok.solve(bad_rhs), std::invalid_argument);
}

TEST(BandedCholesky, FactorSizeTracksBandwidth) {
  const Csr a = make_grid(20, 5);
  const auto perm = rcm_ordering(a);
  const BandedCholesky banded(a, perm);
  EXPECT_EQ(banded.bandwidth(), bandwidth_under(a, perm));
  EXPECT_EQ(banded.factor_size(), a.dimension() * (banded.bandwidth() + 1));
}

}  // namespace
}  // namespace pdn3d::linalg
