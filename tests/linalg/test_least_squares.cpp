#include "linalg/least_squares.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace pdn3d::linalg {
namespace {

TEST(LeastSquares, ExactlyDeterminedSystem) {
  DenseMatrix a(2, 2);
  a(0, 0) = 2.0;
  a(1, 1) = 4.0;
  const auto r = solve_least_squares(a, std::vector<double>{2.0, 8.0});
  EXPECT_NEAR(r.coefficients[0], 1.0, 1e-12);
  EXPECT_NEAR(r.coefficients[1], 2.0, 1e-12);
  EXPECT_NEAR(r.residual_norm, 0.0, 1e-12);
}

TEST(LeastSquares, RecoversLinearModelFromNoisyFreePoints) {
  // y = 3 + 2x sampled exactly: residual must vanish and coefficients match.
  const std::size_t m = 20;
  DenseMatrix a(m, 2);
  std::vector<double> b(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double x = static_cast<double>(i) * 0.5;
    a(i, 0) = 1.0;
    a(i, 1) = x;
    b[i] = 3.0 + 2.0 * x;
  }
  const auto r = solve_least_squares(a, b);
  EXPECT_NEAR(r.coefficients[0], 3.0, 1e-10);
  EXPECT_NEAR(r.coefficients[1], 2.0, 1e-10);
  EXPECT_NEAR(r.residual_norm, 0.0, 1e-9);
}

TEST(LeastSquares, MinimizesResidualOfInconsistentSystem) {
  // Overdetermined: best fit of y = c over {1, 2, 3} is c = 2.
  DenseMatrix a(3, 1);
  a(0, 0) = a(1, 0) = a(2, 0) = 1.0;
  const auto r = solve_least_squares(a, std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_NEAR(r.coefficients[0], 2.0, 1e-12);
  EXPECT_NEAR(r.residual_norm, std::sqrt(2.0), 1e-12);
}

TEST(LeastSquares, UnderdeterminedThrows) {
  DenseMatrix a(1, 2);
  a(0, 0) = 1.0;
  EXPECT_THROW(solve_least_squares(a, std::vector<double>{1.0}), std::invalid_argument);
}

TEST(LeastSquares, RankDeficientThrows) {
  DenseMatrix a(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // column 1 = 2 * column 0
  }
  EXPECT_THROW(solve_least_squares(a, std::vector<double>{1.0, 1.0, 1.0}), std::runtime_error);
}

TEST(LeastSquares, AgreesWithNormalEquations) {
  util::Rng rng(99);
  const std::size_t m = 30;
  const std::size_t n = 4;
  DenseMatrix a(m, n);
  std::vector<double> b(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.next_double() * 2.0 - 1.0;
    b[i] = rng.next_double();
  }
  const auto qr = solve_least_squares(a, b);
  const auto gram = a.gram();
  const auto atb = a.transpose_multiply(b);
  const auto ne = solve_cholesky(gram, atb);
  for (std::size_t j = 0; j < n; ++j) {
    EXPECT_NEAR(qr.coefficients[j], ne[j], 1e-8);
  }
}

}  // namespace
}  // namespace pdn3d::linalg
