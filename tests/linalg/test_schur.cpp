#include "linalg/schur.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "linalg/coo.hpp"
#include "linalg/reorder.hpp"
#include "linalg/sparse_chol.hpp"

namespace pdn3d::linalg {
namespace {

/// Deterministic conductance stream in [0.5, 2.0].
class ValueStream {
 public:
  explicit ValueStream(std::uint64_t seed) : state_(seed) {}
  double next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = static_cast<double>((state_ >> 33) & 0xFFFFFF) / static_cast<double>(0xFFFFFF);
    return 0.5 + 1.5 * u;
  }

 private:
  std::uint64_t state_;
};

struct TestStack {
  Csr a;
  std::vector<int> block_of;
};

/// A chain of `blocks` nx-by-ny grid "dies", each internally meshed with
/// random conductances, coupled die-to-die by two "TSV" conductances at the
/// grid corners, grounded through taps on block 0 -- the shape of the 3D
/// stacks the macromodel targets, small enough to cross-check exactly.
/// `identical` reuses one value stream per block so every die hashes equal.
TestStack chain_stack(int blocks, int nx, int ny, std::uint64_t seed, bool identical = false) {
  const std::size_t per = static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  const std::size_t n = per * static_cast<std::size_t>(blocks);
  CooBuilder builder(n);
  TestStack out;
  out.block_of.assign(n, 0);

  ValueStream shared(seed);
  for (int b = 0; b < blocks; ++b) {
    ValueStream own(seed + static_cast<std::uint64_t>(b) * 977);
    ValueStream& vs = identical ? shared : own;
    if (identical) vs = ValueStream(seed);  // every block replays the same stream
    const std::size_t base = per * static_cast<std::size_t>(b);
    for (std::size_t i = base; i < base + per; ++i) out.block_of[i] = b;
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        const std::size_t node = base + static_cast<std::size_t>(y) * nx + x;
        if (x + 1 < nx) builder.stamp_conductance(node, node + 1, vs.next());
        if (y + 1 < ny) builder.stamp_conductance(node, node + nx, vs.next());
      }
    }
    if (b + 1 < blocks) {
      // Two TSVs per interface: first and last node of the die.
      builder.stamp_conductance(base, base + per, 1.25);
      builder.stamp_conductance(base + per - 1, base + 2 * per - 1, 1.25);
    }
  }
  builder.stamp_to_ground(0, 4.0);
  builder.stamp_to_ground(per - 1, 4.0);
  out.a = builder.compress();
  return out;
}

std::vector<double> rhs_for(std::size_t n, std::uint64_t seed) {
  ValueStream vs(seed);
  std::vector<double> b(n);
  for (double& v : b) v = vs.next() - 1.0;
  return b;
}

std::vector<double> reference_solve(const Csr& a, std::span<const double> b) {
  const SparseCholesky chol(a, rcm_ordering(a));
  return chol.solve(b);
}

double max_abs_diff(std::span<const double> x, std::span<const double> y) {
  double worst = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) worst = std::max(worst, std::abs(x[i] - y[i]));
  return worst;
}

TEST(SchurMacromodel, MatchesSparseDirectOnRandomizedStacks) {
  for (const std::uint64_t seed : {11ULL, 29ULL, 83ULL}) {
    const int blocks = 2 + static_cast<int>(seed % 4);  // 2..5 dies
    const TestStack stack = chain_stack(blocks, 5, 4, seed);
    const SchurMacromodel mm(stack.a, stack.block_of, SchurOptions{}, nullptr);
    EXPECT_EQ(mm.block_count(), static_cast<std::size_t>(blocks));

    const auto b = rhs_for(stack.a.dimension(), seed * 7);
    std::vector<double> x(b.size(), 0.0);
    SchurScratch scratch;
    mm.solve(b, x, scratch);
    const auto ref = reference_solve(stack.a, b);
    EXPECT_LT(max_abs_diff(x, ref), 1e-10) << "seed " << seed;
  }
}

TEST(SchurMacromodel, BatchSlicesBitwiseMatchScalarSolves) {
  const TestStack stack = chain_stack(3, 4, 4, 5);
  const std::size_t n = stack.a.dimension();
  const SchurMacromodel mm(stack.a, stack.block_of, SchurOptions{}, nullptr);

  constexpr std::size_t kCount = 5;
  std::vector<double> batch_b;
  for (std::size_t r = 0; r < kCount; ++r) {
    const auto b = rhs_for(n, 100 + r);
    batch_b.insert(batch_b.end(), b.begin(), b.end());
  }
  std::vector<double> batch_x(n * kCount, 0.0);
  SchurScratch scratch;
  mm.solve_batch(batch_b, batch_x, kCount, scratch);

  for (std::size_t r = 0; r < kCount; ++r) {
    std::vector<double> x(n, 0.0);
    SchurScratch fresh;
    mm.solve(std::span<const double>(batch_b.data() + r * n, n), x, fresh);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(batch_x[r * n + i], x[i]) << "slice " << r << " node " << i;
    }
  }
}

TEST(SchurMacromodel, SolveAllowsAliasedBuffers) {
  const TestStack stack = chain_stack(2, 4, 3, 17);
  const SchurMacromodel mm(stack.a, stack.block_of, SchurOptions{}, nullptr);
  const auto b = rhs_for(stack.a.dimension(), 3);
  std::vector<double> separate(b.size(), 0.0);
  SchurScratch scratch;
  mm.solve(b, separate, scratch);
  std::vector<double> aliased = b;
  mm.solve(aliased, aliased, scratch);
  EXPECT_EQ(aliased, separate);
}

TEST(SchurMacromodel, IdenticalDiesShareCachedBlocks) {
  const TestStack stack = chain_stack(4, 5, 4, 7, /*identical=*/true);
  SchurBlockCache cache;
  const SchurMacromodel mm(stack.a, stack.block_of, SchurOptions{}, &cache);
  // Dies 1 and 2 see TSVs above and below (same sub-mesh shape); the end
  // dies each carry extras (taps / a single interface), so at least the two
  // middle dies must have collapsed onto one cached block.
  EXPECT_LT(cache.size(), mm.block_count());
  EXPECT_GE(mm.blocks_reused(), 1u);
  // Cached blocks must not change the answers.
  const auto b = rhs_for(stack.a.dimension(), 99);
  std::vector<double> x(b.size(), 0.0);
  SchurScratch scratch;
  mm.solve(b, x, scratch);
  EXPECT_LT(max_abs_diff(x, reference_solve(stack.a, b)), 1e-10);
}

TEST(SchurMacromodel, SecondStackReusesCacheAcrossInstances) {
  const TestStack stack = chain_stack(3, 4, 4, 21, /*identical=*/true);
  SchurBlockCache cache;
  const SchurMacromodel first(stack.a, stack.block_of, SchurOptions{}, &cache);
  const std::size_t after_first = cache.size();
  const SchurMacromodel second(stack.a, stack.block_of, SchurOptions{}, &cache);
  EXPECT_EQ(cache.size(), after_first);                    // nothing new to build
  EXPECT_EQ(second.blocks_reused(), second.block_count());  // all served from cache

  const auto b = rhs_for(stack.a.dimension(), 4);
  std::vector<double> x1(b.size(), 0.0);
  std::vector<double> x2(b.size(), 0.0);
  SchurScratch s1;
  SchurScratch s2;
  first.solve(b, x1, s1);
  second.solve(b, x2, s2);
  EXPECT_EQ(x1, x2);  // bitwise: same blocks, same arithmetic order
}

TEST(SchurMacromodel, SingleBlockDeclined) {
  const TestStack stack = chain_stack(1, 4, 4, 3);
  EXPECT_THROW(SchurMacromodel(stack.a, stack.block_of, SchurOptions{}, nullptr),
               std::runtime_error);
}

TEST(SchurMacromodel, InterfaceFractionGuardDeclines) {
  const TestStack stack = chain_stack(3, 4, 4, 9);
  SchurOptions opts;
  opts.max_interface_fraction = 1e-6;  // everything is "too coupled"
  EXPECT_THROW(SchurMacromodel(stack.a, stack.block_of, opts, nullptr), std::runtime_error);
}

TEST(SchurMacromodel, NonSpdBlockDeclines) {
  // Flip one interior conductance negative: that die's A_II loses positive
  // definiteness and the per-block factorization must throw, not produce.
  const std::size_t per = 16;
  CooBuilder builder(2 * per);
  std::vector<int> block_of(2 * per, 0);
  for (std::size_t i = per; i < 2 * per; ++i) block_of[i] = 1;
  for (std::size_t b = 0; b < 2; ++b) {
    const std::size_t base = b * per;
    for (std::size_t i = 0; i + 1 < per; ++i) {
      builder.stamp_conductance(base + i, base + i + 1, 1.0);
    }
  }
  // The defect: a negative conductance, stamped via raw add() because
  // stamp_conductance() rejects it at build time.
  builder.add(5, 5, -40.0);
  builder.add(6, 6, -40.0);
  builder.add(5, 6, 40.0);
  builder.add(6, 5, 40.0);
  builder.stamp_conductance(per - 1, per, 1.0);
  builder.stamp_to_ground(0, 2.0);
  const Csr a = builder.compress();
  EXPECT_THROW(SchurMacromodel(a, block_of, SchurOptions{}, nullptr), std::runtime_error);
}

TEST(WoodburyUpdate, TouchedNodesFindsExactlyTheDelta) {
  const TestStack stack = chain_stack(3, 4, 4, 13);
  CooBuilder delta(stack.a.dimension());
  // Rebuild the same matrix, then nudge one coupling.
  const auto rp = stack.a.row_ptr();
  const auto ci = stack.a.col_idx();
  const auto vals = stack.a.values();
  for (std::size_t i = 0; i < stack.a.dimension(); ++i) {
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) delta.add(i, ci[k], vals[k]);
  }
  delta.stamp_conductance(2, 3, 0.5);
  const Csr a_new = delta.compress();

  const auto touched = WoodburyUpdate::touched_nodes(stack.a, a_new);
  EXPECT_EQ(touched, (std::vector<std::size_t>{2, 3}));
  EXPECT_TRUE(WoodburyUpdate::touched_nodes(stack.a, stack.a).empty());
}

TEST(WoodburyUpdate, MatchesSparseDirectOnPerturbedStack) {
  const TestStack stack = chain_stack(4, 5, 4, 31);
  auto base = std::make_shared<const SchurMacromodel>(stack.a, stack.block_of, SchurOptions{},
                                                      nullptr);

  // Perturb a handful of couplings (a TSV-variation-like delta).
  CooBuilder delta(stack.a.dimension());
  const auto rp = stack.a.row_ptr();
  const auto ci = stack.a.col_idx();
  const auto vals = stack.a.values();
  for (std::size_t i = 0; i < stack.a.dimension(); ++i) {
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) delta.add(i, ci[k], vals[k]);
  }
  delta.stamp_conductance(0, 1, 0.7);
  delta.stamp_conductance(20, 40, 0.9);  // a cross-die coupling
  delta.stamp_to_ground(0, 0.6);
  const Csr a_new = delta.compress();

  const WoodburyUpdate update(base, a_new, 64);
  EXPECT_LE(update.rank(), 4u);

  const auto b = rhs_for(stack.a.dimension(), 55);
  std::vector<double> x(b.size(), 0.0);
  SchurScratch scratch;
  update.solve(b, x, scratch);
  EXPECT_LT(max_abs_diff(x, reference_solve(a_new, b)), 1e-10);

  // Batch path bitwise matches scalar slices.
  std::vector<double> bb(b);
  bb.insert(bb.end(), b.begin(), b.end());
  std::vector<double> bx(bb.size(), 0.0);
  update.solve_batch(bb, bx, 2, scratch);
  for (std::size_t i = 0; i < b.size(); ++i) {
    ASSERT_EQ(bx[i], x[i]);
    ASSERT_EQ(bx[b.size() + i], x[i]);
  }
}

TEST(WoodburyUpdate, IdenticalMatrixDeclined) {
  const TestStack stack = chain_stack(2, 4, 3, 41);
  auto base = std::make_shared<const SchurMacromodel>(stack.a, stack.block_of, SchurOptions{},
                                                      nullptr);
  EXPECT_THROW(WoodburyUpdate(base, stack.a, 64), std::runtime_error);
}

TEST(WoodburyUpdate, RankDeficientUpdateIsRefusedOrFailsResidual) {
  // A delta engineered to make the updated matrix (and with it the Woodbury
  // capture matrix K) singular: cancel the touched node's pivot against its
  // own resolvent entry, d = -1 / (A0^-1)_{pp}. Depending on rounding, the
  // capture LU either detects the exact singularity and throws -- or produces
  // a solution whose true residual is enormous, which is precisely what the
  // solver ladder's residual verification rejects before falling through.
  // Either way the rank-deficient update can never hand back silent garbage.
  const TestStack stack = chain_stack(3, 4, 4, 77);
  const std::size_t n = stack.a.dimension();
  auto base = std::make_shared<const SchurMacromodel>(stack.a, stack.block_of, SchurOptions{},
                                                      nullptr);
  const std::size_t p = 5;  // an interior node of block 0
  std::vector<double> unit(n, 0.0);
  unit[p] = 1.0;
  std::vector<double> resolvent(n, 0.0);
  SchurScratch scratch;
  base->solve(unit, resolvent, scratch);
  ASSERT_GT(resolvent[p], 0.0);  // SPD resolvent diagonal

  CooBuilder delta(n);
  const auto rp = stack.a.row_ptr();
  const auto ci = stack.a.col_idx();
  const auto vals = stack.a.values();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) delta.add(i, ci[k], vals[k]);
  }
  delta.add(p, p, -1.0 / resolvent[p]);
  const Csr a_new = delta.compress();

  bool clean = false;
  try {
    const WoodburyUpdate update(base, a_new, 8);
    const auto b = rhs_for(n, 5);
    std::vector<double> x(n, 0.0);
    update.solve(b, x, scratch);
    // Residual of the (singular) updated system must be hopeless -- far
    // beyond any verify_rel_tol the solver ladder would accept.
    std::vector<double> ax(n, 0.0);
    a_new.multiply(x, ax);
    double resid = 0.0;
    double scale = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      resid += (ax[i] - b[i]) * (ax[i] - b[i]);
      scale += b[i] * b[i];
    }
    clean = !(std::sqrt(resid / scale) < 1e-3) || !std::isfinite(x[p]);
  } catch (const std::runtime_error&) {
    clean = true;  // singular capture detected at construction
  }
  EXPECT_TRUE(clean);
}

TEST(WoodburyUpdate, RankCapDeclines) {
  const TestStack stack = chain_stack(2, 4, 3, 43);
  auto base = std::make_shared<const SchurMacromodel>(stack.a, stack.block_of, SchurOptions{},
                                                      nullptr);
  CooBuilder delta(stack.a.dimension());
  const auto rp = stack.a.row_ptr();
  const auto ci = stack.a.col_idx();
  const auto vals = stack.a.values();
  for (std::size_t i = 0; i < stack.a.dimension(); ++i) {
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) delta.add(i, ci[k], vals[k]);
  }
  for (std::size_t i = 0; i < stack.a.dimension(); ++i) delta.stamp_to_ground(i, 0.1);
  const Csr a_new = delta.compress();
  EXPECT_THROW(WoodburyUpdate(base, a_new, 4), std::runtime_error);
}

}  // namespace
}  // namespace pdn3d::linalg
