#include "linalg/sparse_chol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "linalg/coo.hpp"
#include "linalg/dense.hpp"
#include "linalg/reorder.hpp"
#include "util/rng.hpp"

namespace pdn3d::linalg {
namespace {

/// 2D grid conductance matrix with ground taps -- the PDN structure.
Csr make_grid(int nx, int ny, double g_edge = 1.0, double g_ground = 0.2) {
  CooBuilder b(static_cast<std::size_t>(nx * ny));
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const auto k = static_cast<std::size_t>(j * nx + i);
      if (i + 1 < nx) b.stamp_conductance(k, k + 1, g_edge);
      if (j + 1 < ny) b.stamp_conductance(k, k + static_cast<std::size_t>(nx), g_edge);
    }
  }
  b.stamp_to_ground(0, g_ground);
  b.stamp_to_ground(static_cast<std::size_t>(nx * ny - 1), g_ground);
  return b.compress();
}

/// Randomized SPD conductance mesh: a grid with randomly perturbed edge
/// conductances, random extra "via" edges, and random ground taps. Every
/// stamp keeps the matrix a diagonally dominant M-matrix, hence SPD.
Csr make_random_mesh(util::Rng& rng, int nx, int ny) {
  const auto n = static_cast<std::size_t>(nx * ny);
  CooBuilder b(n);
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      const auto k = static_cast<std::size_t>(j * nx + i);
      if (i + 1 < nx) b.stamp_conductance(k, k + 1, 0.5 + rng.next_double());
      if (j + 1 < ny) {
        b.stamp_conductance(k, k + static_cast<std::size_t>(nx), 0.5 + rng.next_double());
      }
    }
  }
  // Long-range edges mimic TSV stitching between tiers; they wreck the
  // banded structure, which is exactly the regime sparse Cholesky targets.
  for (int e = 0; e < nx; ++e) {
    const auto u = static_cast<std::size_t>(rng.next_double() * double(n - 1));
    const auto v = static_cast<std::size_t>(rng.next_double() * double(n - 1));
    if (u != v) b.stamp_conductance(u, v, 0.1 + rng.next_double());
  }
  for (int t = 0; t < 4; ++t) {
    b.stamp_to_ground(static_cast<std::size_t>(rng.next_double() * double(n - 1)),
                      0.05 + rng.next_double());
  }
  return b.compress();
}

std::vector<double> dense_reference_solve(const Csr& a, const std::vector<double>& b) {
  DenseMatrix d(a.dimension(), a.dimension());
  for (std::size_t i = 0; i < a.dimension(); ++i) {
    for (std::size_t j = 0; j < a.dimension(); ++j) d(i, j) = a.at(i, j);
  }
  return solve_cholesky(std::move(d), b);
}

TEST(SparseCholesky, MatchesDenseSolveOnGrid) {
  const Csr a = make_grid(12, 9);
  const SparseCholesky chol(a, rcm_ordering(a));

  util::Rng rng(3);
  std::vector<double> b(a.dimension(), 0.0);
  for (double& x : b) x = rng.next_double();

  const auto x_ref = dense_reference_solve(a, b);
  const auto x = chol.solve(b);
  ASSERT_EQ(x.size(), x_ref.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(x[i], x_ref[i], 1e-10);
  }
}

TEST(SparseCholesky, PropertyMatchesDenseOnRandomizedMeshes) {
  // The headline property test: across many randomized SPD conductance
  // meshes, sparse Cholesky agrees with the dense reference to 1e-10.
  util::Rng rng(2026);
  for (int trial = 0; trial < 12; ++trial) {
    const int nx = 4 + trial % 7;
    const int ny = 3 + (trial * 5) % 8;
    const Csr a = make_random_mesh(rng, nx, ny);
    const SparseCholesky chol(a, rcm_ordering(a));

    std::vector<double> b(a.dimension(), 0.0);
    for (double& x : b) x = rng.next_double() * 2.0 - 1.0;

    const auto x_ref = dense_reference_solve(a, b);
    const auto x = chol.solve(b);
    for (std::size_t i = 0; i < x.size(); ++i) {
      ASSERT_NEAR(x[i], x_ref[i], 1e-10)
          << "trial " << trial << " (" << nx << "x" << ny << ") index " << i;
    }
  }
}

TEST(SparseCholesky, IdentityOrderingAlsoCorrect) {
  const Csr a = make_grid(8, 8);
  const SparseCholesky natural(a, identity_ordering(a.dimension()));
  const SparseCholesky rcm(a, rcm_ordering(a));
  std::vector<double> b(a.dimension(), 0.0);
  b[10] = 1.0;
  const auto x1 = natural.solve(b);
  const auto x2 = rcm.solve(b);
  for (std::size_t i = 0; i < x1.size(); ++i) {
    EXPECT_NEAR(x1[i], x2[i], 1e-10);
  }
}

TEST(SparseCholesky, BatchSolveBitwiseMatchesIndividualSolves) {
  util::Rng rng(17);
  const Csr a = make_random_mesh(rng, 9, 7);
  const SparseCholesky chol(a, rcm_ordering(a));
  const std::size_t n = a.dimension();

  constexpr std::size_t kCount = 5;
  std::vector<double> b(n * kCount);
  for (double& x : b) x = rng.next_double() * 2.0 - 1.0;

  std::vector<double> x_batch(n * kCount, 0.0);
  std::vector<double> work;
  chol.solve_batch(b, x_batch, kCount, work);

  for (std::size_t r = 0; r < kCount; ++r) {
    const auto x_one =
        chol.solve(std::span<const double>(b.data() + r * n, n));
    // Bitwise, not approximate: the batched sweeps execute per-RHS
    // arithmetic in the same order as a single solve.
    EXPECT_EQ(0, std::memcmp(x_one.data(), x_batch.data() + r * n, n * sizeof(double)))
        << "slice " << r << " differs from individual solve";
  }
}

TEST(SparseCholesky, BatchOfOneMatchesSolve) {
  const Csr a = make_grid(6, 6);
  const SparseCholesky chol(a, rcm_ordering(a));
  std::vector<double> b(a.dimension());
  util::Rng rng(5);
  for (double& x : b) x = rng.next_double();
  std::vector<double> x1(a.dimension(), 0.0);
  std::vector<double> work;
  chol.solve_batch(b, x1, 1, work);
  const auto x2 = chol.solve(b);
  EXPECT_EQ(0, std::memcmp(x1.data(), x2.data(), x1.size() * sizeof(double)));
}

TEST(SparseCholesky, FillRatioGuardTrips) {
  // A tiny guard must reject the factorization with a descriptive error; the
  // grid's exact fill is irrelevant, only that any fill exceeds ~0 allowance.
  const Csr a = make_grid(10, 10);
  SparseCholeskyOptions opts;
  opts.max_fill_ratio = 0.5;  // nnz(L) >= nnz(lower(A)) always, so this trips
  EXPECT_THROW(SparseCholesky(a, rcm_ordering(a), opts), std::runtime_error);
}

TEST(SparseCholesky, ReportsFillStatistics) {
  const Csr a = make_grid(10, 10);
  const SparseCholesky chol(a, rcm_ordering(a));
  EXPECT_EQ(chol.dimension(), a.dimension());
  // L contains at least the lower triangle of A (no cancellation here).
  EXPECT_GE(chol.factor_nnz(), a.dimension());
  EXPECT_GE(chol.fill_ratio(), 1.0);
  EXPECT_LE(chol.fill_ratio(), SparseCholeskyOptions{}.max_fill_ratio);
}

TEST(SparseCholesky, RejectsIndefiniteAndBadInput) {
  CooBuilder bb(2);
  bb.add(0, 0, 1.0);
  bb.add(0, 1, 2.0);
  bb.add(1, 0, 2.0);
  bb.add(1, 1, 1.0);
  const Csr indefinite = bb.compress();
  EXPECT_THROW(SparseCholesky(indefinite, identity_ordering(2)), std::runtime_error);

  const Csr a = make_grid(4, 4);
  EXPECT_THROW(SparseCholesky(a, identity_ordering(3)), std::invalid_argument);
  // Duplicate entry makes the vector the right size but not a permutation.
  std::vector<std::size_t> dup = identity_ordering(a.dimension());
  dup[1] = 0;
  EXPECT_THROW(SparseCholesky(a, dup), std::invalid_argument);

  const SparseCholesky ok(a, identity_ordering(a.dimension()));
  const std::vector<double> bad_rhs(3, 0.0);
  EXPECT_THROW(ok.solve(bad_rhs), std::invalid_argument);
  std::vector<double> x(a.dimension(), 0.0);
  std::vector<double> work;
  EXPECT_THROW(ok.solve_batch(bad_rhs, x, 2, work), std::invalid_argument);
}

TEST(SparseCholesky, LinearityOfSolutions) {
  const Csr a = make_grid(10, 10);
  const SparseCholesky chol(a, rcm_ordering(a));
  std::vector<double> b1(a.dimension(), 0.0);
  b1[5] = 1.0;
  std::vector<double> b2(a.dimension(), 0.0);
  b2[70] = -2.0;
  const auto x1 = chol.solve(b1);
  const auto x2 = chol.solve(b2);
  std::vector<double> b3(a.dimension(), 0.0);
  b3[5] = 1.0;
  b3[70] = -2.0;
  const auto x3 = chol.solve(b3);
  for (std::size_t i = 0; i < x3.size(); ++i) {
    EXPECT_NEAR(x3[i], x1[i] + x2[i], 1e-10);
  }
}

}  // namespace
}  // namespace pdn3d::linalg
