#include "linalg/cg.hpp"

#include <gtest/gtest.h>

#include "linalg/coo.hpp"
#include "linalg/dense.hpp"
#include "util/rng.hpp"

namespace pdn3d::linalg {
namespace {

/// Random SPD grid-like matrix: 1D resistor chain with grounds.
Csr make_chain(std::size_t n, double g_chain, double g_ground) {
  CooBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) b.stamp_conductance(i, i + 1, g_chain);
  b.stamp_to_ground(0, g_ground);
  b.stamp_to_ground(n - 1, g_ground);
  return b.compress();
}

class CgPreconditioners : public ::testing::TestWithParam<Preconditioner> {};

TEST_P(CgPreconditioners, SolvesChainExactly) {
  const Csr a = make_chain(50, 2.0, 1.0);
  std::vector<double> b(50, 0.0);
  b[25] = 1.0;

  CgOptions opts;
  opts.preconditioner = GetParam();
  const CgResult r = solve_cg(a, b, opts);
  ASSERT_TRUE(r.converged);

  // Verify against the dense direct solve.
  DenseMatrix d(50, 50);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = 0; j < 50; ++j) d(i, j) = a.at(i, j);
  }
  const auto xd = solve_cholesky(std::move(d), b);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(r.x[i], xd[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPreconditioners, CgPreconditioners,
                         ::testing::Values(Preconditioner::kNone, Preconditioner::kJacobi,
                                           Preconditioner::kIncompleteCholesky));

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const Csr a = make_chain(10, 1.0, 1.0);
  const std::vector<double> b(10, 0.0);
  const CgResult r = solve_cg(a, b);
  EXPECT_TRUE(r.converged);
  for (double x : r.x) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Cg, RhsSizeMismatchThrows) {
  const Csr a = make_chain(10, 1.0, 1.0);
  const std::vector<double> b(9, 0.0);
  EXPECT_THROW(solve_cg(a, b), std::invalid_argument);
}

TEST(Cg, LinearityInRhs) {
  const Csr a = make_chain(30, 3.0, 0.5);
  std::vector<double> b(30, 0.0);
  b[7] = 1.0;
  const auto r1 = solve_cg(a, b);
  for (double& v : b) v *= 5.0;
  const auto r5 = solve_cg(a, b);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r5.converged);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(r5.x[i], 5.0 * r1.x[i], 1e-8);
  }
}

TEST(Cg, IcPreconditionerConvergesFasterThanNone) {
  // 2D grid Laplacian + ground taps -- the structure the PDN solver sees.
  const int n = 20;
  CooBuilder builder(static_cast<std::size_t>(n * n));
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(j * n + i);
      if (i + 1 < n) builder.stamp_conductance(k, k + 1, 1.0);
      if (j + 1 < n) builder.stamp_conductance(k, k + static_cast<std::size_t>(n), 1.0);
    }
  }
  builder.stamp_to_ground(0, 1.0);
  const Csr a = builder.compress();
  std::vector<double> b(static_cast<std::size_t>(n * n), 0.0);
  b[static_cast<std::size_t>(n * n / 2)] = 1.0;

  CgOptions none;
  none.preconditioner = Preconditioner::kNone;
  CgOptions ic;
  ic.preconditioner = Preconditioner::kIncompleteCholesky;
  const auto r_none = solve_cg(a, b, none);
  const auto r_ic = solve_cg(a, b, ic);
  ASSERT_TRUE(r_none.converged);
  ASSERT_TRUE(r_ic.converged);
  EXPECT_LT(r_ic.iterations, r_none.iterations);
}

TEST(Cg, ResidualReported) {
  const Csr a = make_chain(40, 1.0, 1.0);
  std::vector<double> b(40, 1.0);
  const auto r = solve_cg(a, b);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.residual_norm, 1e-8 * norm2(b));
}

}  // namespace
}  // namespace pdn3d::linalg
