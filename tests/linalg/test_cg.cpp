#include "linalg/cg.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "linalg/coo.hpp"
#include "linalg/dense.hpp"
#include "linalg/ichol.hpp"
#include "util/rng.hpp"

namespace pdn3d::linalg {
namespace {

/// Random SPD grid-like matrix: 1D resistor chain with grounds.
Csr make_chain(std::size_t n, double g_chain, double g_ground) {
  CooBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) b.stamp_conductance(i, i + 1, g_chain);
  b.stamp_to_ground(0, g_ground);
  b.stamp_to_ground(n - 1, g_ground);
  return b.compress();
}

class CgPreconditioners : public ::testing::TestWithParam<Preconditioner> {};

TEST_P(CgPreconditioners, SolvesChainExactly) {
  const Csr a = make_chain(50, 2.0, 1.0);
  std::vector<double> b(50, 0.0);
  b[25] = 1.0;

  CgOptions opts;
  opts.preconditioner = GetParam();
  const CgResult r = solve_cg(a, b, opts);
  ASSERT_TRUE(r.converged);

  // Verify against the dense direct solve.
  DenseMatrix d(50, 50);
  for (std::size_t i = 0; i < 50; ++i) {
    for (std::size_t j = 0; j < 50; ++j) d(i, j) = a.at(i, j);
  }
  const auto xd = solve_cholesky(std::move(d), b);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_NEAR(r.x[i], xd[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPreconditioners, CgPreconditioners,
                         ::testing::Values(Preconditioner::kNone, Preconditioner::kJacobi,
                                           Preconditioner::kIncompleteCholesky));

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const Csr a = make_chain(10, 1.0, 1.0);
  const std::vector<double> b(10, 0.0);
  const CgResult r = solve_cg(a, b);
  EXPECT_TRUE(r.converged);
  for (double x : r.x) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Cg, RhsSizeMismatchThrows) {
  const Csr a = make_chain(10, 1.0, 1.0);
  const std::vector<double> b(9, 0.0);
  EXPECT_THROW(solve_cg(a, b), std::invalid_argument);
}

TEST(Cg, LinearityInRhs) {
  const Csr a = make_chain(30, 3.0, 0.5);
  std::vector<double> b(30, 0.0);
  b[7] = 1.0;
  const auto r1 = solve_cg(a, b);
  for (double& v : b) v *= 5.0;
  const auto r5 = solve_cg(a, b);
  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r5.converged);
  for (std::size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(r5.x[i], 5.0 * r1.x[i], 1e-8);
  }
}

TEST(Cg, IcPreconditionerConvergesFasterThanNone) {
  // 2D grid Laplacian + ground taps -- the structure the PDN solver sees.
  const int n = 20;
  CooBuilder builder(static_cast<std::size_t>(n * n));
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(j * n + i);
      if (i + 1 < n) builder.stamp_conductance(k, k + 1, 1.0);
      if (j + 1 < n) builder.stamp_conductance(k, k + static_cast<std::size_t>(n), 1.0);
    }
  }
  builder.stamp_to_ground(0, 1.0);
  const Csr a = builder.compress();
  std::vector<double> b(static_cast<std::size_t>(n * n), 0.0);
  b[static_cast<std::size_t>(n * n / 2)] = 1.0;

  CgOptions none;
  none.preconditioner = Preconditioner::kNone;
  CgOptions ic;
  ic.preconditioner = Preconditioner::kIncompleteCholesky;
  const auto r_none = solve_cg(a, b, none);
  const auto r_ic = solve_cg(a, b, ic);
  ASSERT_TRUE(r_none.converged);
  ASSERT_TRUE(r_ic.converged);
  EXPECT_LT(r_ic.iterations, r_none.iterations);
}

TEST(Cg, NanRhsBailsImmediately) {
  // A poisoned rhs must be diagnosed up front, not burn max_iterations on
  // NaN arithmetic.
  const Csr a = make_chain(10, 1.0, 1.0);
  std::vector<double> b(10, 1.0);
  b[3] = std::numeric_limits<double>::quiet_NaN();
  const CgResult r = solve_cg(a, b);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure, CgFailure::kDivergedNonFinite);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_NE(r.detail.find("NaN"), std::string::npos);
}

TEST(Cg, InfRhsBailsImmediately) {
  const Csr a = make_chain(10, 1.0, 1.0);
  std::vector<double> b(10, 1.0);
  b[0] = std::numeric_limits<double>::infinity();
  const CgResult r = solve_cg(a, b);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure, CgFailure::kDivergedNonFinite);
  EXPECT_EQ(r.iterations, 0u);
}

TEST(Cg, JacobiReportsNonPositiveDiagonal) {
  // Push row 0's diagonal negative: the old behavior silently substituted
  // 1.0 and let CG chew on an indefinite system; now the defect is named.
  CooBuilder builder(3);
  builder.stamp_conductance(0, 1, 1.0);
  builder.stamp_conductance(1, 2, 1.0);
  builder.stamp_to_ground(2, 1.0);
  builder.add(0, 0, -3.0);  // defect: diagonal 0 becomes -2
  const Csr a = builder.compress();
  const std::vector<double> b = {1.0, 0.0, 0.0};
  CgOptions opts;
  opts.preconditioner = Preconditioner::kJacobi;
  const CgResult r = solve_cg(a, b, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure, CgFailure::kBadPreconditioner);
  EXPECT_EQ(r.iterations, 0u);
  EXPECT_NE(r.detail.find("row 0"), std::string::npos);
}

TEST(Cg, IndefiniteMatrixDetected) {
  CooBuilder builder(2);
  builder.stamp_conductance(0, 1, 1.0);
  builder.add(0, 0, -4.0);  // diagonal 0: 1 - 4 = -3 -> not SPD
  builder.stamp_to_ground(1, 1.0);
  const Csr a = builder.compress();
  const std::vector<double> b = {1.0, 0.0};
  CgOptions opts;
  opts.preconditioner = Preconditioner::kNone;
  const CgResult r = solve_cg(a, b, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure, CgFailure::kIndefinite);
  EXPECT_NE(r.detail.find("p'Ap"), std::string::npos);
}

TEST(Cg, StagnationWatchdogFires) {
  // An impossible improvement requirement makes the watchdog trip at the end
  // of the first window, proving the mechanism (real stalls come from
  // near-singular systems, which are not deterministic to construct).
  const Csr a = make_chain(50, 2.0, 1.0);
  std::vector<double> b(50, 0.0);
  b[25] = 1.0;
  CgOptions opts;
  opts.preconditioner = Preconditioner::kNone;
  opts.rel_tolerance = 1e-14;
  opts.stagnation_window = 3;
  opts.stagnation_improvement = 1.0;  // demand the residual hit exactly zero
  const CgResult r = solve_cg(a, b, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure, CgFailure::kStagnated);
  EXPECT_LE(r.iterations, 4u);
}

TEST(Cg, StagnationCheckCanBeDisabled) {
  const Csr a = make_chain(50, 2.0, 1.0);
  std::vector<double> b(50, 0.0);
  b[25] = 1.0;
  CgOptions opts;
  opts.preconditioner = Preconditioner::kNone;
  opts.stagnation_window = 0;  // off
  const CgResult r = solve_cg(a, b, opts);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(r.failure, CgFailure::kNone);
}

TEST(Cg, CachedIcFactorReused) {
  const Csr a = make_chain(40, 2.0, 1.0);
  std::vector<double> b(40, 0.0);
  b[11] = 1.0;
  const IncompleteCholesky ic(a);
  CgOptions opts;
  opts.preconditioner = Preconditioner::kIncompleteCholesky;
  opts.cached_ic = &ic;
  const CgResult cached = solve_cg(a, b, opts);
  opts.cached_ic = nullptr;
  const CgResult fresh = solve_cg(a, b, opts);
  ASSERT_TRUE(cached.converged);
  EXPECT_EQ(cached.iterations, fresh.iterations);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_NEAR(cached.x[i], fresh.x[i], 1e-12);
}

TEST(Cg, CachedIcDimensionMismatchIsCallerBug) {
  const Csr a = make_chain(40, 2.0, 1.0);
  const Csr small = make_chain(10, 2.0, 1.0);
  const IncompleteCholesky ic(small);
  CgOptions opts;
  opts.preconditioner = Preconditioner::kIncompleteCholesky;
  opts.cached_ic = &ic;
  const std::vector<double> b(40, 1.0);
  EXPECT_THROW(solve_cg(a, b, opts), std::invalid_argument);
}

TEST(Cg, WarmStartFromExactSolutionConvergesInZeroIterations) {
  const Csr a = make_chain(40, 2.0, 1.0);
  std::vector<double> b(40, 0.0);
  b[11] = 1.0;
  const CgResult cold = solve_cg(a, b);
  ASSERT_TRUE(cold.converged);

  CgOptions opts;
  opts.x0 = cold.x;
  const CgResult warm = solve_cg(a, b, opts);
  EXPECT_TRUE(warm.converged);
  EXPECT_EQ(warm.iterations, 0u);
  for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(warm.x[i], cold.x[i]);
}

TEST(Cg, WarmStartFromNearbySolutionReducesIterations) {
  // The sequential-LUT use case: consecutive right-hand sides differ a
  // little, so the previous solution is a good initial guess. A 2D grid is
  // used because its iteration count is tolerance-driven (a 1D chain always
  // terminates exactly at n steps, warm start or not).
  const int n = 16;
  CooBuilder builder(static_cast<std::size_t>(n * n));
  for (int j = 0; j < n; ++j) {
    for (int i = 0; i < n; ++i) {
      const std::size_t k = static_cast<std::size_t>(j * n + i);
      if (i + 1 < n) builder.stamp_conductance(k, k + 1, 1.0);
      if (j + 1 < n) builder.stamp_conductance(k, k + static_cast<std::size_t>(n), 1.0);
    }
  }
  builder.stamp_to_ground(0, 1.0);
  const Csr a = builder.compress();
  std::vector<double> b(static_cast<std::size_t>(n * n), 0.0);
  b[static_cast<std::size_t>(n * n / 2)] = 1.0;

  CgOptions base;
  base.preconditioner = Preconditioner::kNone;  // enough iterations to compare
  const CgResult first = solve_cg(a, b, base);
  ASSERT_TRUE(first.converged);

  b[static_cast<std::size_t>(n * n / 2)] = 1.0 + 1e-4;  // perturbed load
  const CgResult cold = solve_cg(a, b, base);
  CgOptions warm_opts = base;
  warm_opts.x0 = first.x;
  const CgResult warm = solve_cg(a, b, warm_opts);
  ASSERT_TRUE(cold.converged);
  ASSERT_TRUE(warm.converged);
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(Cg, WarmStartSizeMismatchIsCallerBug) {
  const Csr a = make_chain(10, 1.0, 1.0);
  const std::vector<double> b(10, 1.0);
  const std::vector<double> wrong(9, 0.0);
  CgOptions opts;
  opts.x0 = wrong;
  EXPECT_THROW(solve_cg(a, b, opts), std::invalid_argument);
}

TEST(Cg, NonFiniteWarmStartFallsBackToColdStart) {
  // A poisoned guess is a data problem, not a caller bug: the solve must
  // proceed from zero and produce the cold-start answer.
  const Csr a = make_chain(20, 1.0, 1.0);
  std::vector<double> b(20, 0.0);
  b[5] = 1.0;
  const CgResult cold = solve_cg(a, b);
  std::vector<double> bad(20, 0.0);
  bad[3] = std::numeric_limits<double>::quiet_NaN();
  CgOptions opts;
  opts.x0 = bad;
  const CgResult r = solve_cg(a, b, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_EQ(r.iterations, cold.iterations);
  for (std::size_t i = 0; i < 20; ++i) EXPECT_EQ(r.x[i], cold.x[i]);
}

TEST(Cg, ResidualReported) {
  const Csr a = make_chain(40, 1.0, 1.0);
  std::vector<double> b(40, 1.0);
  const auto r = solve_cg(a, b);
  ASSERT_TRUE(r.converged);
  EXPECT_LT(r.residual_norm, 1e-8 * norm2(b));
}

}  // namespace
}  // namespace pdn3d::linalg
