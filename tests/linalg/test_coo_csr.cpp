#include <gtest/gtest.h>

#include "linalg/coo.hpp"
#include "linalg/csr.hpp"

namespace pdn3d::linalg {
namespace {

TEST(Coo, DuplicatesAreSummed) {
  CooBuilder b(3);
  b.add(0, 1, 2.0);
  b.add(0, 1, 3.0);
  const Csr m = b.compress();
  EXPECT_DOUBLE_EQ(m.at(0, 1), 5.0);
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(Coo, ZeroEntriesDropped) {
  CooBuilder b(2);
  b.add(0, 0, 0.0);
  b.add(1, 1, 2.0);
  b.add(1, 1, -2.0);  // cancels
  const Csr m = b.compress();
  EXPECT_EQ(m.nnz(), 0u);
}

TEST(Coo, OutOfRangeThrows) {
  CooBuilder b(2);
  EXPECT_THROW(b.add(2, 0, 1.0), std::out_of_range);
  EXPECT_THROW(b.add(0, 5, 1.0), std::out_of_range);
}

TEST(Coo, StampConductanceSymmetric) {
  CooBuilder b(3);
  b.stamp_conductance(0, 2, 4.0);
  const Csr m = b.compress();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.at(2, 2), 4.0);
  EXPECT_DOUBLE_EQ(m.at(0, 2), -4.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), -4.0);
  EXPECT_TRUE(m.is_symmetric());
}

TEST(Coo, StampRejectsBadInput) {
  CooBuilder b(3);
  EXPECT_THROW(b.stamp_conductance(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(b.stamp_conductance(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(b.stamp_conductance(0, 1, -2.0), std::invalid_argument);
  EXPECT_THROW(b.stamp_to_ground(0, -1.0), std::invalid_argument);
}

TEST(Coo, CompressIsRepeatable) {
  CooBuilder b(2);
  b.stamp_conductance(0, 1, 1.0);
  const Csr m1 = b.compress();
  b.stamp_to_ground(0, 2.0);
  const Csr m2 = b.compress();
  EXPECT_DOUBLE_EQ(m1.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m2.at(0, 0), 3.0);
}

TEST(Csr, MultiplyMatchesManual) {
  CooBuilder b(3);
  b.add(0, 0, 2.0);
  b.add(0, 2, 1.0);
  b.add(1, 1, 3.0);
  b.add(2, 0, 1.0);
  const Csr m = b.compress();
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(3, 0.0);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
}

TEST(Csr, DiagonalExtraction) {
  CooBuilder b(3);
  b.add(0, 0, 1.5);
  b.add(2, 2, -2.5);
  b.add(0, 1, 9.0);
  const Csr m = b.compress();
  const auto d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 1.5);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], -2.5);
}

TEST(Csr, AtMissingEntryIsZero) {
  CooBuilder b(2);
  b.add(0, 0, 1.0);
  const Csr m = b.compress();
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
  EXPECT_THROW(m.at(2, 0), std::out_of_range);
}

TEST(Csr, IsSymmetricDetectsAsymmetry) {
  CooBuilder b(2);
  b.add(0, 1, 1.0);
  const Csr m = b.compress();
  EXPECT_FALSE(m.is_symmetric());
}

TEST(VectorOps, DotNormAxpy) {
  const std::vector<double> a = {1.0, 2.0, 2.0};
  const std::vector<double> b = {2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  std::vector<double> y = {1.0, 1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 5.0);
}

}  // namespace
}  // namespace pdn3d::linalg
