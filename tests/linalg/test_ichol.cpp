#include "linalg/ichol.hpp"

#include <gtest/gtest.h>

#include "linalg/coo.hpp"

namespace pdn3d::linalg {
namespace {

TEST(IncompleteCholesky, ExactForTridiagonal) {
  // IC(0) of a tridiagonal SPD matrix is the exact Cholesky factor, so
  // apply() must solve the system exactly.
  const std::size_t n = 12;
  CooBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) b.stamp_conductance(i, i + 1, 1.0);
  for (std::size_t i = 0; i < n; ++i) b.stamp_to_ground(i, 0.5);
  const Csr a = b.compress();

  IncompleteCholesky ic(a);
  std::vector<double> rhs(n, 0.0);
  rhs[3] = 1.0;
  rhs[9] = -2.0;
  std::vector<double> z(n, 0.0);
  ic.apply(rhs, z);

  // Check A z == rhs.
  std::vector<double> az(n, 0.0);
  a.multiply(z, az);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(az[i], rhs[i], 1e-10);
  }
}

TEST(IncompleteCholesky, IdentityMatrix) {
  const std::size_t n = 5;
  CooBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) b.stamp_to_ground(i, 4.0);
  IncompleteCholesky ic(b.compress());
  std::vector<double> rhs = {4.0, 8.0, 12.0, 16.0, 20.0};
  std::vector<double> z(n, 0.0);
  ic.apply(rhs, z);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(z[i], static_cast<double>(i + 1), 1e-12);
  }
}

TEST(IncompleteCholesky, ApplySizeMismatchThrows) {
  CooBuilder b(3);
  for (std::size_t i = 0; i < 3; ++i) b.stamp_to_ground(i, 1.0);
  IncompleteCholesky ic(b.compress());
  std::vector<double> small(2, 0.0);
  std::vector<double> z(3, 0.0);
  EXPECT_THROW(ic.apply(small, z), std::invalid_argument);
}

TEST(IncompleteCholesky, PreconditionerIsSpd) {
  // z = M^-1 r must satisfy r^T z > 0 for r != 0 (needed by PCG).
  const std::size_t n = 16;
  CooBuilder b(n);
  for (std::size_t i = 0; i + 1 < n; ++i) b.stamp_conductance(i, i + 1, 2.0);
  for (std::size_t i = 0; i + 4 < n; ++i) b.stamp_conductance(i, i + 4, 1.0);
  b.stamp_to_ground(0, 1.0);
  IncompleteCholesky ic(b.compress());

  std::vector<double> r(n, 0.0);
  std::vector<double> z(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    std::fill(r.begin(), r.end(), 0.0);
    r[k] = 1.0;
    ic.apply(r, z);
    double rz = 0.0;
    for (std::size_t i = 0; i < n; ++i) rz += r[i] * z[i];
    EXPECT_GT(rz, 0.0);
  }
}

}  // namespace
}  // namespace pdn3d::linalg
