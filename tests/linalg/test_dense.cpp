#include "linalg/dense.hpp"

#include <gtest/gtest.h>

namespace pdn3d::linalg {
namespace {

TEST(Dense, MultiplyBasic) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(0, 2) = 3.0;
  a(1, 2) = 4.0;
  const auto y = a.multiply(std::vector<double>{1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
}

TEST(Dense, GramIsSymmetric) {
  DenseMatrix a(3, 2);
  a(0, 0) = 1.0;
  a(1, 0) = 2.0;
  a(2, 1) = 3.0;
  const DenseMatrix g = a.gram();
  EXPECT_DOUBLE_EQ(g(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(g(1, 1), 9.0);
  EXPECT_DOUBLE_EQ(g(0, 1), g(1, 0));
}

TEST(Dense, CholeskySolvesSpd) {
  DenseMatrix a(2, 2);
  a(0, 0) = 4.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const auto x = solve_cholesky(a, std::vector<double>{1.0, 2.0});
  // Solve manually: [4 1; 1 3] x = [1; 2] -> x = [1/11, 7/11]
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-12);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-12);
}

TEST(Dense, CholeskyRejectsIndefinite) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW(solve_cholesky(a, std::vector<double>{1.0, 1.0}), std::runtime_error);
}

TEST(Dense, LuSolvesGeneral) {
  DenseMatrix a(3, 3);
  a(0, 1) = 2.0;  // zero pivot at (0,0) forces a row swap
  a(0, 2) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 1.0;
  a(2, 2) = 3.0;
  // b = A * [1, 2, 3]
  const auto b = a.multiply(std::vector<double>{1.0, 2.0, 3.0});
  const auto x = solve_lu(a, b);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Dense, LuRejectsSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;  // rank 1
  EXPECT_THROW(solve_lu(a, std::vector<double>{1.0, 1.0}), std::runtime_error);
}

TEST(DenseLu, FactorOnceSolvesRepeatedly) {
  DenseMatrix a(3, 3);
  a(0, 1) = 2.0;  // zero pivot at (0,0) forces a row swap
  a(0, 2) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 1.0;
  a(2, 2) = 3.0;
  const DenseLu lu(a);
  for (const double scale : {1.0, -2.5, 0.25}) {
    const auto b = a.multiply(std::vector<double>{scale, 2.0 * scale, 3.0 * scale});
    std::vector<double> x(3, 0.0);
    lu.solve(b, x);
    EXPECT_NEAR(x[0], scale, 1e-12);
    EXPECT_NEAR(x[1], 2.0 * scale, 1e-12);
    EXPECT_NEAR(x[2], 3.0 * scale, 1e-12);
  }
}

TEST(DenseLu, SolveAllowsAliasedBuffers) {
  DenseMatrix a(2, 2);
  a(0, 0) = 3.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 2.0;
  const DenseLu lu(a);
  std::vector<double> bx = a.multiply(std::vector<double>{4.0, -1.0});
  lu.solve(bx, bx);
  EXPECT_NEAR(bx[0], 4.0, 1e-12);
  EXPECT_NEAR(bx[1], -1.0, 1e-12);
}

TEST(DenseLu, ConstructionRejectsSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = 2.0;
  a(1, 1) = 4.0;  // rank 1 -- the Woodbury rank-deficient capture case
  EXPECT_THROW(DenseLu{a}, std::runtime_error);
}

TEST(Dense, SizeMismatchThrows) {
  DenseMatrix a(2, 2);
  a(0, 0) = a(1, 1) = 1.0;
  EXPECT_THROW(solve_cholesky(a, std::vector<double>{1.0}), std::invalid_argument);
  EXPECT_THROW(a.multiply(std::vector<double>{1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace pdn3d::linalg
