// exec::BoundedQueue -- the batch evaluation service's admission queue.
// Backpressure (try_push), graceful drain (close + pop-to-empty), and
// cancellation (remove_if) semantics, plus a multi-producer/multi-consumer
// stress run that the TSan suite picks up.

#include "exec/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace pdn3d::exec {
namespace {

TEST(BoundedQueue, TryPushBackpressuresWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_EQ(PushResult::kOk, q.try_push(1));
  EXPECT_EQ(PushResult::kOk, q.try_push(2));
  EXPECT_EQ(PushResult::kFull, q.try_push(3));  // full: signal, not block
  EXPECT_EQ(q.size(), 2u);

  const auto popped = q.pop();
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(*popped, 1);       // FIFO
  EXPECT_EQ(PushResult::kOk, q.try_push(3));  // slot freed
}

TEST(BoundedQueue, CloseDrainsBacklogThenSignalsConsumers) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(PushResult::kOk, q.try_push(10));
  EXPECT_EQ(PushResult::kOk, q.try_push(11));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(PushResult::kClosed, q.try_push(12));  // no admission after close

  // Already-admitted items still come out (graceful drain)...
  EXPECT_EQ(q.pop().value(), 10);
  EXPECT_EQ(q.pop().value(), 11);
  // ...then nullopt is the consumer's exit signal.
  EXPECT_FALSE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());  // idempotent
}

TEST(BoundedQueue, RemoveIfPlucksOnlyQueuedItems) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(PushResult::kOk, q.try_push(1));
  EXPECT_EQ(PushResult::kOk, q.try_push(2));
  EXPECT_EQ(PushResult::kOk, q.try_push(3));

  const auto removed = q.remove_if([](int v) { return v == 2; });
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 2);
  EXPECT_FALSE(q.remove_if([](int v) { return v == 2; }).has_value());  // gone

  EXPECT_EQ(q.pop().value(), 1);
  // 1 was already popped: out of remove_if's reach.
  EXPECT_FALSE(q.remove_if([](int v) { return v == 1; }).has_value());
  EXPECT_EQ(q.pop().value(), 3);
}

TEST(BoundedQueue, CloseWakesBlockedConsumer) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  q.close();
  consumer.join();
}

TEST(BoundedQueue, ConcurrentProducersConsumersDeliverEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);

  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};
  std::vector<std::thread> consumers;
  consumers.reserve(kConsumers);
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (auto item = q.pop()) {
        consumed_sum.fetch_add(*item, std::memory_order_relaxed);
        consumed_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = p * kPerProducer + i;
        // Producers spin on backpressure; the service instead answers
        // queue_full, but the queue itself must stay correct under retries.
        while (q.try_push(std::move(value)) != PushResult::kOk) std::this_thread::yield();
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(consumed_count.load(), n);
  EXPECT_EQ(consumed_sum.load(), n * (n - 1) / 2);  // each value exactly once
}

}  // namespace
}  // namespace pdn3d::exec
