#include "exec/thread_pool.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace pdn3d::exec {
namespace {

TEST(ThreadPool, ZeroTasksIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, [&](std::size_t) { calls.fetch_add(1); });
  pool.parallel_chunks(0, [&](std::size_t, std::size_t, std::size_t) { calls.fetch_add(1); });
  const auto out = pool.parallel_map(0, [](std::size_t i) { return i; });
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(out.empty());
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    ThreadPool pool(threads);
    constexpr std::size_t n = 500;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPool, ParallelMapKeepsResultOrder) {
  ThreadPool pool(8);
  const auto out = pool.parallel_map(257, [](std::size_t i) { return 3 * i + 1; });
  ASSERT_EQ(out.size(), 257u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 3 * i + 1);
}

TEST(ThreadPool, ChunksPartitionTheRangeExactly) {
  // Chunk boundaries must cover [0, n) contiguously, in order, with no
  // overlap -- and depend only on (n, thread_count), never on scheduling.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{7}, std::size_t{64}}) {
      ThreadPool pool(threads);
      std::mutex mu;
      std::vector<std::array<std::size_t, 3>> seen;
      pool.parallel_chunks(n, [&](std::size_t c, std::size_t begin, std::size_t end) {
        std::lock_guard<std::mutex> lock(mu);
        seen.push_back({c, begin, end});
      });
      std::sort(seen.begin(), seen.end());
      ASSERT_FALSE(seen.empty());
      EXPECT_EQ(seen.front()[1], 0u);
      EXPECT_EQ(seen.back()[2], n);
      for (std::size_t k = 0; k < seen.size(); ++k) {
        EXPECT_EQ(seen[k][0], k);                          // chunk ids are dense
        EXPECT_LT(seen[k][1], seen[k][2]);                 // chunks are non-empty
        if (k > 0) EXPECT_EQ(seen[k][1], seen[k - 1][2]);  // contiguous
      }
    }
  }
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  // Several tasks throw; the rethrown exception must be the one a serial
  // loop would have surfaced first, regardless of execution order.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    ThreadPool pool(threads);
    std::atomic<int> executed{0};
    try {
      pool.parallel_for(100, [&](std::size_t i) {
        executed.fetch_add(1);
        if (i % 7 == 3) throw std::runtime_error("task " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3");
    }
    // A throwing task never tears the region down: every task still ran.
    EXPECT_EQ(executed.load(), 100);
  }
}

TEST(ThreadPool, NestedRegionsRunInline) {
  // A task that itself calls parallel_for must not deadlock waiting for
  // workers that are already busy -- nested regions degrade to inline loops.
  ThreadPool pool(4);
  std::atomic<int> inner{0};
  pool.parallel_for(8, [&](std::size_t) {
    pool.parallel_for(8, [&](std::size_t) { inner.fetch_add(1); });
  });
  EXPECT_EQ(inner.load(), 64);
}

TEST(ThreadPool, SingleThreadPoolSpawnsNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const std::size_t caller = std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::set<std::size_t> ids;
  pool.parallel_for(16, [&](std::size_t) {
    ids.insert(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  });
  EXPECT_EQ(ids, std::set<std::size_t>{caller});
}

TEST(ThreadPool, DefaultCountHonorsOverride) {
  set_default_thread_count(3);
  EXPECT_EQ(default_thread_count(), 3u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 3u);
  set_default_thread_count(0);  // back to env/hardware resolution
  EXPECT_GE(default_thread_count(), 1u);
}

TEST(ThreadPool, ParallelSumMatchesSerial) {
  ThreadPool pool(8);
  constexpr std::size_t n = 10000;
  const auto terms = pool.parallel_map(n, [](std::size_t i) { return double(i) * 0.5; });
  const double parallel_sum = std::accumulate(terms.begin(), terms.end(), 0.0);
  double serial_sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) serial_sum += double(i) * 0.5;
  EXPECT_DOUBLE_EQ(parallel_sum, serial_sum);  // slot-ordered => same fp order
}

}  // namespace
}  // namespace pdn3d::exec
