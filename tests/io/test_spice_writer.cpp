#include "io/spice_writer.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace pdn3d::io {
namespace {

pdn::StackModel tiny_model() {
  pdn::StackModel m(1.5);
  pdn::LayerGrid g;
  g.die = 0;
  g.layer = 0;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  g.name = "die/M2";
  m.add_grid(g);
  m.set_dram_die_count(1);
  m.add_resistor(0, 1, 2.5);
  m.add_tap(0, 0.1);
  return m;
}

TEST(SpiceWriter, EmitsAllElements) {
  const auto m = tiny_model();
  std::ostringstream os;
  const std::vector<double> sinks = {0.0, 0.25};
  write_spice_netlist(os, m, sinks);
  const std::string deck = os.str();

  EXPECT_NE(deck.find("V1 vdd 0 DC 1.5"), std::string::npos);
  EXPECT_NE(deck.find("R0 n0 n1 2.5"), std::string::npos);
  EXPECT_NE(deck.find("RT0 vdd n0 0.1"), std::string::npos);
  EXPECT_NE(deck.find("I0 n1 0 DC 0.25"), std::string::npos);
  EXPECT_NE(deck.find(".OP"), std::string::npos);
  EXPECT_NE(deck.find(".END"), std::string::npos);
}

TEST(SpiceWriter, GridAnnotations) {
  const auto m = tiny_model();
  std::ostringstream os;
  write_spice_netlist(os, m);
  EXPECT_NE(os.str().find("* grid die/M2"), std::string::npos);

  SpiceOptions opts;
  opts.annotate_grids = false;
  std::ostringstream os2;
  write_spice_netlist(os2, m, {}, opts);
  EXPECT_EQ(os2.str().find("* grid"), std::string::npos);
}

TEST(SpiceWriter, SuppressesTinyCurrents) {
  const auto m = tiny_model();
  std::ostringstream os;
  const std::vector<double> sinks = {1e-15, 0.1};
  write_spice_netlist(os, m, sinks);
  const std::string deck = os.str();
  EXPECT_EQ(deck.find("I0 n0"), std::string::npos);
  EXPECT_NE(deck.find("I0 n1 0 DC 0.1"), std::string::npos);
}

TEST(SpiceWriter, ElementCountMatchesDeck) {
  const auto m = tiny_model();
  const std::vector<double> sinks = {0.0, 0.25};
  EXPECT_EQ(spice_element_count(m, sinks), 1u + 1u + 1u + 1u);  // V + R + RT + I
  EXPECT_EQ(spice_element_count(m), 3u);
}

TEST(SpiceWriter, SizeMismatchThrows) {
  const auto m = tiny_model();
  std::ostringstream os;
  const std::vector<double> bad = {0.1};
  EXPECT_THROW(write_spice_netlist(os, m, bad), std::invalid_argument);
}

}  // namespace
}  // namespace pdn3d::io
