#include <gtest/gtest.h>

#include <sstream>

#include "core/benchmarks.hpp"
#include "io/floorplan_writer.hpp"
#include "io/ir_map_writer.hpp"
#include "irdrop/analysis.hpp"
#include "pdn/stack_builder.hpp"

namespace pdn3d::io {
namespace {

struct Built {
  core::Benchmark bench = core::make_benchmark(core::BenchmarkKind::kStackedDdr3OffChip);
  pdn::BuiltStack built = pdn::build_stack(bench.stack, bench.baseline);
};

TEST(IrMapWriter, CsvHasOneRowPerNode) {
  Built b;
  const std::vector<double> ir(b.built.model.node_count(), 0.01);
  std::ostringstream os;
  write_ir_csv(os, b.built.model, ir);
  const std::string text = os.str();
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, b.built.model.node_count() + 1);  // header + nodes
  EXPECT_NE(text.find("grid,die,layer,i,j,x_mm,y_mm,ir_mv"), std::string::npos);
}

TEST(IrMapWriter, PgmHeaderAndSize) {
  Built b;
  irdrop::PowerBinding power;
  power.dram = b.bench.dram_power;
  power.logic = b.bench.logic_power;
  const irdrop::IrAnalyzer analyzer(b.built.model, b.bench.stack.dram_fp, b.bench.stack.logic_fp,
                                    power);
  const auto state = power::parse_memory_state("0-0-0-2", b.bench.stack.dram_spec);
  const auto ir = analyzer.ir_map(state);

  std::ostringstream os;
  const double max_mv = write_ir_pgm(os, b.built.model, ir, 3, 0);
  EXPECT_GT(max_mv, 5.0);

  const std::string img = os.str();
  EXPECT_EQ(img.rfind("P5\n", 0), 0u);
  const auto& g = b.built.model.grid(3, 0);
  // Header + exactly nx*ny pixel bytes.
  const std::size_t header_end = img.find("255\n") + 4;
  EXPECT_EQ(img.size() - header_end, g.size());
}

TEST(IrMapWriter, SizeMismatchThrows) {
  Built b;
  const std::vector<double> bad(3, 0.0);
  std::ostringstream os;
  EXPECT_THROW(write_ir_csv(os, b.built.model, bad), std::invalid_argument);
  EXPECT_THROW(write_ir_pgm(os, b.built.model, bad, 0, 0), std::invalid_argument);
}

TEST(FloorplanWriter, CsvListsEveryBlock) {
  Built b;
  std::ostringstream os;
  write_floorplan_csv(os, b.bench.stack.dram_fp);
  const std::string text = os.str();
  EXPECT_NE(text.find("bank_0,bank,0"), std::string::npos);
  EXPECT_NE(text.find("io,io,-1"), std::string::npos);
  std::size_t lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, b.bench.stack.dram_fp.blocks().size() + 1);
}

TEST(FloorplanWriter, DefStructure) {
  Built b;
  std::ostringstream os;
  write_floorplan_def(os, b.bench.stack.dram_fp);
  const std::string text = os.str();
  EXPECT_NE(text.find("VERSION 5.8 ;"), std::string::npos);
  EXPECT_NE(text.find("DIEAREA ( 0 0 ) ( 6800 6700 ) ;"), std::string::npos);
  EXPECT_NE(text.find("END COMPONENTS"), std::string::npos);
  EXPECT_NE(text.find("- bank_0 bank + PLACED"), std::string::npos);
}

}  // namespace
}  // namespace pdn3d::io
