#include "tech/tech_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "tech/presets.hpp"

namespace pdn3d::tech {
namespace {

TEST(TechFile, ParsesFullFile) {
  const std::string text = R"(
# test technology
[dram]
vdd = 1.2
via_resistance = 0.04
layer MA sheet=0.5 dir=horizontal usage=0.15
layer MB sheet=0.2 dir=vertical usage=0.25

[logic]
vdd = 0.9
layer G1 sheet=0.06 dir=h usage=0.3
layer G2 sheet=0.03 dir=v usage=0.4

[interconnect]
tsv_resistance = 0.2
wirebond_resistance = 0.5
)";
  const Technology t = read_technology_string(text);
  EXPECT_DOUBLE_EQ(t.dram.vdd, 1.2);
  EXPECT_DOUBLE_EQ(t.dram.via_resistance, 0.04);
  ASSERT_EQ(t.dram.layer_count(), 2u);
  EXPECT_EQ(t.dram.layer(0).name, "MA");
  EXPECT_DOUBLE_EQ(t.dram.layer(0).sheet_resistance, 0.5);
  EXPECT_EQ(t.dram.layer(0).direction, RouteDirection::kHorizontal);
  EXPECT_DOUBLE_EQ(t.dram.layer(1).default_vdd_usage, 0.25);
  EXPECT_DOUBLE_EQ(t.logic.vdd, 0.9);
  EXPECT_EQ(t.logic.layer(1).name, "G2");
  EXPECT_DOUBLE_EQ(t.interconnect.tsv_resistance, 0.2);
  EXPECT_DOUBLE_EQ(t.interconnect.wirebond_resistance, 0.5);
  // Untouched keys keep the library defaults.
  EXPECT_DOUBLE_EQ(t.interconnect.c4_resistance, default_interconnect().c4_resistance);
}

TEST(TechFile, PartialOverrideKeepsDefaults) {
  const Technology t = read_technology_string("[interconnect]\ntsv_resistance = 0.33\n");
  const Technology d = ddr3_technology();
  EXPECT_DOUBLE_EQ(t.interconnect.tsv_resistance, 0.33);
  EXPECT_EQ(t.dram.layer_count(), d.dram.layer_count());
  EXPECT_DOUBLE_EQ(t.dram.layer(0).sheet_resistance, d.dram.layer(0).sheet_resistance);
}

TEST(TechFile, RoundTripsThroughWriter) {
  Technology original = low_voltage_technology();
  original.interconnect.tsv_resistance = 0.271828;
  original.dram.pdn_layers[0].default_vdd_usage = 0.137;

  std::ostringstream os;
  write_technology(os, original);
  const Technology back = read_technology_string(os.str());

  EXPECT_DOUBLE_EQ(back.dram.vdd, original.dram.vdd);
  EXPECT_DOUBLE_EQ(back.interconnect.tsv_resistance, 0.271828);
  ASSERT_EQ(back.dram.layer_count(), original.dram.layer_count());
  for (std::size_t l = 0; l < original.dram.layer_count(); ++l) {
    EXPECT_EQ(back.dram.layer(l).name, original.dram.layer(l).name);
    EXPECT_DOUBLE_EQ(back.dram.layer(l).sheet_resistance,
                     original.dram.layer(l).sheet_resistance);
    EXPECT_EQ(back.dram.layer(l).direction, original.dram.layer(l).direction);
    EXPECT_DOUBLE_EQ(back.dram.layer(l).default_vdd_usage,
                     original.dram.layer(l).default_vdd_usage);
  }
}

TEST(TechFile, RejectsMalformedInput) {
  EXPECT_THROW(read_technology_string("vdd = 1.0\n"), std::runtime_error);  // before section
  EXPECT_THROW(read_technology_string("[bogus]\n"), std::runtime_error);
  EXPECT_THROW(read_technology_string("[dram]\nnot_a_key = 1\n"), std::runtime_error);
  EXPECT_THROW(read_technology_string("[dram]\nvdd = abc\n"), std::runtime_error);
  EXPECT_THROW(read_technology_string("[dram]\nlayer M sheet=0.1 dir=diagonal\n"),
               std::runtime_error);
  EXPECT_THROW(read_technology_string("[dram]\nlayer M dir=h usage=0.1\n"),
               std::runtime_error);  // no sheet
  EXPECT_THROW(read_technology_string("[interconnect]\nlayer M sheet=0.1\n"),
               std::runtime_error);  // layer outside die section
  EXPECT_THROW(read_technology_string("[dram]\nvdd 1.0\n"), std::runtime_error);  // no '='
  // Replacing the stack with a single layer is rejected.
  EXPECT_THROW(read_technology_string("[dram]\nlayer M sheet=0.1 dir=h usage=0.1\n"),
               std::runtime_error);
}

TEST(TechFile, ParsesEmSectionAndLayerThickness) {
  const std::string text = R"(
[dram]
vdd = 1.2
layer MA sheet=0.5 dir=horizontal usage=0.15 thickness=0.35
layer MB sheet=0.2 dir=vertical usage=0.25 thickness=0.8

[em]
tsv_diameter_um = 6.5
wire_limit_ma_cm2 = 1.5
tsv_limit_ma_cm2 = 0.4
black_n = 1.8
temperature_c = 95
)";
  const Technology t = read_technology_string(text);
  EXPECT_DOUBLE_EQ(t.dram.layer(0).thickness_um, 0.35);
  EXPECT_DOUBLE_EQ(t.dram.layer(1).thickness_um, 0.8);
  EXPECT_DOUBLE_EQ(t.em.tsv_diameter_um, 6.5);
  EXPECT_DOUBLE_EQ(t.em.wire_limit_ma_cm2, 1.5);
  EXPECT_DOUBLE_EQ(t.em.tsv_limit_ma_cm2, 0.4);
  EXPECT_DOUBLE_EQ(t.em.black_n, 1.8);
  EXPECT_DOUBLE_EQ(t.em.temperature_c, 95.0);
  // Untouched EM keys keep the library defaults.
  EXPECT_DOUBLE_EQ(t.em.c4_diameter_um, EmTech{}.c4_diameter_um);
  EXPECT_DOUBLE_EQ(t.em.activation_energy_ev, EmTech{}.activation_energy_ev);
}

TEST(TechFile, EmRoundTripsThroughWriter) {
  Technology original = ddr3_technology();
  original.em.tsv_diameter_um = 7.25;
  original.em.via_area_um2 = 12.5;
  original.em.black_a_hours = 2.5e-8;
  original.em.temperature_c = 110.0;
  original.dram.pdn_layers[0].thickness_um = 0.41;

  std::ostringstream os;
  write_technology(os, original);
  const Technology back = read_technology_string(os.str());

  EXPECT_DOUBLE_EQ(back.em.tsv_diameter_um, 7.25);
  EXPECT_DOUBLE_EQ(back.em.via_area_um2, 12.5);
  EXPECT_DOUBLE_EQ(back.em.black_a_hours, 2.5e-8);
  EXPECT_DOUBLE_EQ(back.em.temperature_c, 110.0);
  EXPECT_DOUBLE_EQ(back.em.wire_limit_ma_cm2, original.em.wire_limit_ma_cm2);
  EXPECT_DOUBLE_EQ(back.dram.layer(0).thickness_um, 0.41);
}

TEST(TechFile, EmSectionRejectsUnknownKeysAndLayers) {
  EXPECT_THROW(read_technology_string("[em]\nnot_a_key = 1\n"), std::runtime_error);
  // Layer lines belong to die sections only -- same contract as
  // [interconnect].
  EXPECT_THROW(read_technology_string("[em]\nlayer M sheet=0.1 dir=h usage=0.1\n"),
               std::runtime_error);
  EXPECT_THROW(read_technology_string("[em]\ntsv_diameter_um = abc\n"), std::runtime_error);
}

/// Parse @p text, expect a throw, and return the message for inspection.
std::string parse_error(const std::string& text) {
  try {
    read_technology_string(text);
  } catch (const std::runtime_error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected parse of <<" << text << ">> to throw";
  return {};
}

TEST(TechFile, TruncatedFileNamesLastLine) {
  // File cut off mid-stack: only one layer of the replaced stack survives.
  const std::string msg =
      parse_error("[dram]\nvdd = 1.2\nlayer MA sheet=0.5 dir=h usage=0.1\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("at least two"), std::string::npos) << msg;
}

TEST(TechFile, TrailingJunkInNumberRejectedWithLine) {
  const std::string msg = parse_error("[dram]\nvdd = 1.2volts\n");
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("trailing junk"), std::string::npos) << msg;
  EXPECT_NE(msg.find("1.2volts"), std::string::npos) << msg;
}

TEST(TechFile, DuplicateLayerNameRejectedWithLine) {
  const std::string msg = parse_error(
      "[dram]\n"
      "layer MA sheet=0.5 dir=h usage=0.1\n"
      "layer MB sheet=0.2 dir=v usage=0.2\n"
      "layer MA sheet=0.3 dir=h usage=0.3\n");
  EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate layer 'MA'"), std::string::npos) << msg;
}

TEST(TechFile, UnknownDirectionRejectedWithLine) {
  const std::string msg = parse_error(
      "[logic]\n"
      "layer G1 sheet=0.06 dir=h usage=0.3\n"
      "layer G2 sheet=0.03 dir=diagonal usage=0.4\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("diagonal"), std::string::npos) << msg;
}

TEST(TechFile, UnterminatedSectionHeaderRejectedWithLine) {
  const std::string msg = parse_error("[dram]\nvdd = 1.2\n[interconnect\n");
  EXPECT_NE(msg.find("line 3"), std::string::npos) << msg;
  EXPECT_NE(msg.find("unterminated"), std::string::npos) << msg;
}

TEST(TechFile, ErrorsCarryLineNumbers) {
  try {
    read_technology_string("[dram]\nvdd = 1.0\nbroken line here\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace pdn3d::tech
