#include "tech/technology.hpp"

#include <gtest/gtest.h>

#include "tech/presets.hpp"

namespace pdn3d::tech {
namespace {

TEST(MetalLayer, SegmentResistanceScalesInverselyWithUsage) {
  MetalLayer m{"M3", 0.16, RouteDirection::kVertical, 0.2};
  EXPECT_DOUBLE_EQ(m.segment_resistance(0.2), 0.8);
  EXPECT_DOUBLE_EQ(m.segment_resistance(0.4), 0.4);
  EXPECT_GT(m.segment_resistance(0.1), m.segment_resistance(0.2));
}

TEST(MetalLayer, RejectsInvalidUsage) {
  MetalLayer m{"M2", 0.33, RouteDirection::kHorizontal, 0.1};
  EXPECT_THROW(m.segment_resistance(0.0), std::invalid_argument);
  EXPECT_THROW(m.segment_resistance(-0.1), std::invalid_argument);
  EXPECT_THROW(m.segment_resistance(1.5), std::invalid_argument);
  EXPECT_NO_THROW(m.segment_resistance(1.0));
}

TEST(Presets, DramStackShape) {
  const DieTechnology t = dram_20nm();
  EXPECT_EQ(t.layer_count(), 2u);
  EXPECT_EQ(t.layer(0).name, "M2");
  EXPECT_EQ(t.layer(1).name, "M3");
  // M2 (thin, mixed signal/power) must be more resistive than M3 (top power).
  EXPECT_GT(t.layer(0).sheet_resistance, t.layer(1).sheet_resistance);
  EXPECT_EQ(t.layer(0).direction, RouteDirection::kHorizontal);
  EXPECT_EQ(t.layer(1).direction, RouteDirection::kVertical);
  EXPECT_DOUBLE_EQ(t.vdd, 1.5);
}

TEST(Presets, LogicStackLessResistiveThanDram) {
  const DieTechnology logic = logic_28nm();
  const DieTechnology dram = dram_20nm();
  EXPECT_LT(logic.layer(0).sheet_resistance, dram.layer(0).sheet_resistance);
  EXPECT_LT(logic.layer(1).sheet_resistance, dram.layer(1).sheet_resistance);
}

TEST(Presets, VddVariants) {
  EXPECT_DOUBLE_EQ(ddr3_technology().dram.vdd, 1.5);
  EXPECT_DOUBLE_EQ(low_voltage_technology().dram.vdd, 1.2);
}

TEST(Presets, InterconnectOrdering) {
  const InterconnectTech ic = default_interconnect();
  // Via-last dedicated TSVs are lower-resistance than via-middle ones.
  EXPECT_LT(ic.dedicated_tsv_resistance, ic.tsv_resistance);
  // An F2F via field node is much lower-R than a TSV.
  EXPECT_LT(ic.f2f_via_resistance, ic.tsv_resistance);
  // Bond wires are the most resistive single element.
  EXPECT_GT(ic.wirebond_resistance, ic.tsv_resistance);
  // RDL is a thick low-resistance layer.
  EXPECT_LT(ic.rdl_sheet_resistance, 0.05);
}

TEST(RouteDirection, ToString) {
  EXPECT_EQ(to_string(RouteDirection::kHorizontal), "horizontal");
  EXPECT_EQ(to_string(RouteDirection::kVertical), "vertical");
  EXPECT_EQ(to_string(RouteDirection::kOmni), "omni");
}

}  // namespace
}  // namespace pdn3d::tech
