// Property sweep: every discrete design/packaging combination must build a
// connected, solvable network with a physically sane IR drop. This exercises
// all builder code paths (mounting x bonding x RDL x wire bonding x
// dedicated x TSV location).

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "floorplan/logic_floorplan.hpp"
#include "irdrop/analysis.hpp"
#include "pdn/stack_builder.hpp"
#include "tech/presets.hpp"

namespace pdn3d::pdn {
namespace {

struct Combo {
  Mounting mounting;
  BondingStyle bonding;
  RdlMode rdl;
  bool wire_bonding;
  bool dedicated;
  TsvLocation location;
};

Combo decode(int index) {
  Combo c{};
  c.mounting = index % 2 == 0 ? Mounting::kOffChip : Mounting::kOnChip;
  index /= 2;
  c.bonding = index % 2 == 0 ? BondingStyle::kF2B : BondingStyle::kF2F;
  index /= 2;
  c.rdl = static_cast<RdlMode>(index % 3);
  index /= 3;
  c.wire_bonding = index % 2 == 1;
  index /= 2;
  c.dedicated = index % 2 == 1;
  index /= 2;
  c.location = static_cast<TsvLocation>(index % 3);
  return c;
}

constexpr int kComboCount = 2 * 2 * 3 * 2 * 2 * 3;  // 144

class BuilderCombos : public ::testing::TestWithParam<int> {};

bool connected_to_taps(const StackModel& m) {
  std::vector<std::size_t> parent(m.node_count());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& r : m.resistors()) parent[find(r.a)] = find(r.b);
  std::set<std::size_t> tap_roots;
  for (const auto& t : m.taps()) tap_roots.insert(find(t.node));
  for (std::size_t i = 0; i < m.node_count(); ++i) {
    if (tap_roots.find(find(i)) == tap_roots.end()) return false;
  }
  return true;
}

TEST_P(BuilderCombos, BuildsConnectedSolvableNetwork) {
  const Combo combo = decode(GetParam());

  StackSpec spec;
  floorplan::DramFloorplanSpec ds;
  ds.width_mm = 6.8;
  ds.height_mm = 6.7;
  ds.bank_cols = 4;
  ds.bank_rows = 2;
  spec.dram_spec = ds;
  spec.dram_fp = floorplan::make_dram_floorplan(ds);
  spec.logic_fp = floorplan::make_t2_floorplan();
  spec.num_dram_dies = 4;
  spec.tech = tech::ddr3_technology();

  PdnConfig cfg;
  cfg.mounting = combo.mounting;
  cfg.bonding = combo.bonding;
  cfg.rdl = combo.rdl;
  cfg.wire_bonding = combo.wire_bonding;
  cfg.dedicated_tsvs = combo.dedicated;
  cfg.tsv_location = combo.location;
  cfg.logic_tsv_location =
      combo.rdl != RdlMode::kNone ? TsvLocation::kCenter : combo.location;

  const auto built = build_stack(spec, cfg);
  ASSERT_TRUE(connected_to_taps(built.model)) << cfg.summary();

  irdrop::PowerBinding power;
  const irdrop::IrAnalyzer analyzer(built.model, spec.dram_fp, spec.logic_fp, power,
                                    irdrop::SolverKind::kBandedDirect);
  const auto state = power::parse_memory_state("0-0-0-2", ds);
  const auto r = analyzer.analyze(state);
  EXPECT_GT(r.dram_max_mv, 1.0) << cfg.summary();
  EXPECT_LT(r.dram_max_mv, 500.0) << cfg.summary();
  // The headline number is the max over dies (which die wins is design
  // dependent: wire bonds feed every die directly, and on-chip coupling can
  // push a lower die above the active one).
  double worst = 0.0;
  for (const auto& die : r.dram_dies) worst = std::max(worst, die.max_mv);
  EXPECT_DOUBLE_EQ(r.dram_max_mv, worst) << cfg.summary();
  // Every die sees a positive drop (idle dies still carry background power).
  for (const auto& die : r.dram_dies) {
    EXPECT_GT(die.max_mv, 0.0) << cfg.summary();
    EXPECT_GE(die.max_mv, die.avg_mv) << cfg.summary();
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, BuilderCombos, ::testing::Range(0, kComboCount));

}  // namespace
}  // namespace pdn3d::pdn
