#include "pdn/layer_grid.hpp"

#include <gtest/gtest.h>

namespace pdn3d::pdn {
namespace {

LayerGrid make_test_grid() {
  LayerGrid g;
  g.die = 0;
  g.layer = 0;
  g.nx = 4;
  g.ny = 3;
  g.x0 = 1.0;
  g.y0 = 2.0;
  g.dx = 0.5;
  g.dy = 0.5;
  g.base = 100;
  return g;
}

TEST(LayerGrid, NodeIdsRowMajorFromBase) {
  const LayerGrid g = make_test_grid();
  EXPECT_EQ(g.node(0, 0), 100u);
  EXPECT_EQ(g.node(3, 0), 103u);
  EXPECT_EQ(g.node(0, 1), 104u);
  EXPECT_EQ(g.node(3, 2), 111u);
  EXPECT_EQ(g.size(), 12u);
}

TEST(LayerGrid, NodeRangeChecked) {
  const LayerGrid g = make_test_grid();
  EXPECT_THROW(g.node(4, 0), std::out_of_range);
  EXPECT_THROW(g.node(0, 3), std::out_of_range);
  EXPECT_THROW(g.node(-1, 0), std::out_of_range);
}

TEST(LayerGrid, PositionsAreCellCentered) {
  const LayerGrid g = make_test_grid();
  const auto p = g.position(0, 0);
  EXPECT_DOUBLE_EQ(p.x, 1.25);
  EXPECT_DOUBLE_EQ(p.y, 2.25);
}

TEST(LayerGrid, NearestClampsOutside) {
  const LayerGrid g = make_test_grid();
  EXPECT_EQ(g.nearest(-100.0, -100.0), g.node(0, 0));
  EXPECT_EQ(g.nearest(100.0, 100.0), g.node(3, 2));
}

TEST(LayerGrid, NearestFindsContainingCell) {
  const LayerGrid g = make_test_grid();
  EXPECT_EQ(g.nearest(1.3, 2.3), g.node(0, 0));
  EXPECT_EQ(g.nearest(1.8, 2.8), g.node(1, 1));
}

TEST(LayerGrid, NodesInRect) {
  const LayerGrid g = make_test_grid();
  // Rect covering the first two columns of the bottom row.
  const auto nodes = g.nodes_in({1.0, 2.0, 2.0, 2.5});
  EXPECT_EQ(nodes.size(), 2u);
}

TEST(LayerGrid, NodesInTinyRectFallsBackToNearest) {
  const LayerGrid g = make_test_grid();
  const auto nodes = g.nodes_in({1.26, 2.26, 1.27, 2.27});  // contains no center
  ASSERT_EQ(nodes.size(), 1u);
  EXPECT_EQ(nodes[0], g.node(0, 0));
}

}  // namespace
}  // namespace pdn3d::pdn
