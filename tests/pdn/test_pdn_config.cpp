#include "pdn/pdn_config.hpp"

#include <gtest/gtest.h>

namespace pdn3d::pdn {
namespace {

TEST(PdnConfig, DefaultsMatchPaperBaseline) {
  const PdnConfig c;
  EXPECT_DOUBLE_EQ(c.m2_usage, 0.10);
  EXPECT_DOUBLE_EQ(c.m3_usage, 0.20);
  EXPECT_EQ(c.tsv_count, 33);
  EXPECT_EQ(c.tsv_location, TsvLocation::kEdge);
  EXPECT_EQ(c.bonding, BondingStyle::kF2B);
  EXPECT_FALSE(c.wire_bonding);
}

TEST(PdnConfig, EffectiveUsageAppliesScale) {
  PdnConfig c;
  c.metal_usage_scale = 1.5;
  EXPECT_DOUBLE_EQ(c.effective_m2(), 0.15);
  EXPECT_DOUBLE_EQ(c.effective_m3(), 0.30);
}

TEST(PdnConfig, SummaryMentionsEveryKnob) {
  PdnConfig c;
  c.dedicated_tsvs = true;
  c.wire_bonding = true;
  c.rdl = RdlMode::kBottomOnly;
  const std::string s = c.summary();
  EXPECT_NE(s.find("M2=10"), std::string::npos);
  EXPECT_NE(s.find("TC=33"), std::string::npos);
  EXPECT_NE(s.find("TD=Y"), std::string::npos);
  EXPECT_NE(s.find("WB=Y"), std::string::npos);
  EXPECT_NE(s.find("RL=bottom"), std::string::npos);
}

TEST(PdnConfig, EnumToString) {
  EXPECT_EQ(to_string(TsvLocation::kCenter), "C");
  EXPECT_EQ(to_string(TsvLocation::kEdge), "E");
  EXPECT_EQ(to_string(TsvLocation::kDistributed), "D");
  EXPECT_EQ(to_string(BondingStyle::kF2B), "F2B");
  EXPECT_EQ(to_string(BondingStyle::kF2F), "F2F");
  EXPECT_EQ(to_string(Mounting::kOffChip), "off-chip");
  EXPECT_EQ(to_string(RdlMode::kAllDies), "all");
}

}  // namespace
}  // namespace pdn3d::pdn
