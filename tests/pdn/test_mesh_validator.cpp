#include "pdn/mesh_validator.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace pdn3d::pdn {
namespace {

constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// VDD --1ohm-- n0 --2ohm-- n1: the smallest healthy mesh.
StackModel healthy_two_node() {
  StackModel m(1.5);
  LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  m.add_tap(0, 1.0);
  m.add_resistor(0, 1, 2.0);
  return m;
}

TEST(MeshValidator, HealthyModelPasses) {
  const auto report = validate_stack_model(healthy_two_node());
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.error_count(), 0u);
}

TEST(MeshValidator, EmptyModelRejected) {
  const StackModel m(1.0);
  const auto report = validate_stack_model(m);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_check("empty-model"));
}

TEST(MeshValidator, NoTapsMakesSystemSingular) {
  StackModel m(1.0);
  LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.add_resistor(0, 1, 1.0);
  const auto report = validate_stack_model(m);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_check("no-supply-taps"));
  // Without any tap the floating-node check would flag everything; the
  // singular-system message already covers it, so no duplicate noise.
  EXPECT_FALSE(report.has_check("floating-node"));
}

TEST(MeshValidator, FloatingNodesDetected) {
  // 4-node grid, but only nodes 0-1 are wired to the tap; 2-3 float.
  StackModel m(1.0);
  LayerGrid g;
  g.nx = 4;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  m.add_tap(0, 1.0);
  m.add_resistor(0, 1, 1.0);
  m.add_resistor(2, 3, 1.0);  // island
  const auto report = validate_stack_model(m);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.has_check("floating-node"));
  for (const auto& issue : report.issues()) {
    if (issue.check == "floating-node") {
      EXPECT_EQ(issue.node, 2u);  // first floating node named as context
      EXPECT_NE(issue.message.find('2'), std::string::npos);
    }
  }
}

TEST(MeshValidator, ZeroTapDieReported) {
  // Two dies; die 1's device grid has no path to the supply.
  StackModel m(1.0);
  LayerGrid g0;
  g0.die = 0;
  g0.nx = 2;
  g0.ny = 1;
  g0.dx = g0.dy = 1.0;
  m.add_grid(g0);
  LayerGrid g1 = g0;
  g1.die = 1;
  m.add_grid(g1);
  m.set_dram_die_count(2);
  m.add_tap(0, 1.0);
  m.add_resistor(0, 1, 1.0);
  m.add_resistor(2, 3, 1.0);  // die 1 internally connected, but never tapped
  const auto report = validate_stack_model(m);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_check("floating-node"));
  ASSERT_TRUE(report.has_check("floating-die"));
  bool found = false;
  for (const auto& issue : report.issues()) {
    if (issue.check == "floating-die" &&
        issue.message.find("die 1") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << report.to_string();
}

TEST(MeshValidator, NegativeResistanceDetected) {
  auto m = healthy_two_node();
  m.perturb_resistor(0, -0.5);
  const auto report = validate_stack_model(m);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_check("non-positive-conductance"));
}

TEST(MeshValidator, NanResistanceDetected) {
  auto m = healthy_two_node();
  m.perturb_resistor(0, kNan);
  const auto report = validate_stack_model(m);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_check("non-finite-conductance"));
}

TEST(MeshValidator, DefectiveTapDetected) {
  auto neg = healthy_two_node();
  neg.perturb_tap(0, 0.0);
  EXPECT_TRUE(validate_stack_model(neg).has_check("non-positive-tap"));

  auto nan = healthy_two_node();
  nan.perturb_tap(0, kNan);
  EXPECT_TRUE(validate_stack_model(nan).has_check("non-finite-tap"));
}

TEST(MeshValidator, PerturbChecksIndices) {
  auto m = healthy_two_node();
  EXPECT_THROW(m.perturb_resistor(99, 1.0), std::out_of_range);
  EXPECT_THROW(m.perturb_tap(99, 1.0), std::out_of_range);
}

TEST(MeshValidator, AccumulatesMultipleDefects) {
  // One defective mesh, one report naming every problem.
  StackModel m(-1.0);  // bad VDD
  LayerGrid g;
  g.nx = 3;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  m.set_dram_die_count(1);
  m.add_tap(0, 1.0);
  m.add_resistor(0, 1, 1.0);  // node 2 floats
  m.perturb_resistor(0, kNan);
  const auto report = validate_stack_model(m);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.error_count(), 3u);
  EXPECT_TRUE(report.has_check("non-positive-vdd"));
  EXPECT_TRUE(report.has_check("non-finite-conductance"));
  EXPECT_TRUE(report.has_check("floating-node"));
}

TEST(InjectionValidator, SizeMismatchRejected) {
  const auto m = healthy_two_node();
  const std::vector<double> sinks = {1.0};
  const auto report = validate_injection(m, sinks);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(report.has_check("injection-size"));
}

TEST(InjectionValidator, NanSinkRejected) {
  const auto m = healthy_two_node();
  const std::vector<double> sinks = {0.0, kNan};
  const auto report = validate_injection(m, sinks);
  EXPECT_FALSE(report.ok());
  ASSERT_TRUE(report.has_check("non-finite-injection"));
  EXPECT_EQ(report.issues().front().node, 1u);
}

TEST(InjectionValidator, NegativeSinkIsOnlyAWarning) {
  const auto m = healthy_two_node();
  const std::vector<double> sinks = {-0.1, 0.2};
  const auto report = validate_injection(m, sinks);
  EXPECT_TRUE(report.ok());  // warnings do not fail validation
  EXPECT_TRUE(report.has_check("negative-injection"));
  EXPECT_EQ(report.warning_count(), 1u);
}

TEST(InjectionValidator, CleanVectorPasses) {
  const auto m = healthy_two_node();
  const std::vector<double> sinks = {0.0, 0.5};
  const auto report = validate_injection(m, sinks);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.issues().size(), 0u);
}

}  // namespace
}  // namespace pdn3d::pdn
