#include "pdn/stack_builder.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <vector>

#include "floorplan/logic_floorplan.hpp"
#include "tech/presets.hpp"

namespace pdn3d::pdn {
namespace {

StackSpec ddr3_stack_spec() {
  StackSpec s;
  floorplan::DramFloorplanSpec ds;
  ds.width_mm = 6.8;
  ds.height_mm = 6.7;
  ds.bank_cols = 4;
  ds.bank_rows = 2;
  s.dram_spec = ds;
  s.dram_fp = floorplan::make_dram_floorplan(ds);
  s.logic_fp = floorplan::make_t2_floorplan();
  s.num_dram_dies = 4;
  s.tech = tech::ddr3_technology();
  return s;
}

bool network_is_connected(const StackModel& m) {
  // Union-find over resistors; every node must reach a tapped node.
  std::vector<std::size_t> parent(m.node_count());
  for (std::size_t i = 0; i < parent.size(); ++i) parent[i] = i;
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& r : m.resistors()) parent[find(r.a)] = find(r.b);
  std::set<std::size_t> tapped_roots;
  for (const auto& t : m.taps()) tapped_roots.insert(find(t.node));
  for (std::size_t i = 0; i < m.node_count(); ++i) {
    if (tapped_roots.find(find(i)) == tapped_roots.end()) return false;
  }
  return true;
}

TEST(StackBuilder, OffChipStackStructure) {
  const auto spec = ddr3_stack_spec();
  const auto built = build_stack(spec, PdnConfig{});
  const StackModel& m = built.model;

  EXPECT_EQ(m.dram_die_count(), 4);
  EXPECT_FALSE(m.has_logic());
  EXPECT_TRUE(m.has_grid(kPackageDie, 0));
  for (int d = 0; d < 4; ++d) {
    EXPECT_TRUE(m.has_grid(d, 0));
    EXPECT_TRUE(m.has_grid(d, 1));
    EXPECT_FALSE(m.has_grid(d, 2));  // no RDL by default
  }
  EXPECT_GT(m.resistors().size(), 1000u);
  EXPECT_FALSE(m.taps().empty());
  EXPECT_TRUE(network_is_connected(m));
}

TEST(StackBuilder, OnChipAddsLogicGrids) {
  const auto spec = ddr3_stack_spec();
  PdnConfig cfg;
  cfg.mounting = Mounting::kOnChip;
  const auto built = build_stack(spec, cfg);
  EXPECT_TRUE(built.model.has_logic());
  EXPECT_TRUE(built.model.has_grid(kLogicDie, 1));
  EXPECT_TRUE(network_is_connected(built.model));
}

TEST(StackBuilder, RdlModesCreateExpectedLayers) {
  const auto spec = ddr3_stack_spec();
  PdnConfig cfg;
  cfg.rdl = RdlMode::kBottomOnly;
  const auto bottom = build_stack(spec, cfg);
  EXPECT_TRUE(bottom.model.has_grid(0, 2));
  EXPECT_FALSE(bottom.model.has_grid(1, 2));

  cfg.rdl = RdlMode::kAllDies;
  const auto all = build_stack(spec, cfg);
  for (int d = 0; d < 4; ++d) EXPECT_TRUE(all.model.has_grid(d, 2));
  EXPECT_TRUE(network_is_connected(all.model));
}

TEST(StackBuilder, F2fAddsDenseViaField) {
  const auto spec = ddr3_stack_spec();
  PdnConfig f2b;
  PdnConfig f2f;
  f2f.bonding = BondingStyle::kF2F;
  const auto nb = build_stack(spec, f2b).model.resistors().size();
  const auto nf = build_stack(spec, f2f).model.resistors().size();
  // The F2F via fields add roughly one resistor per pair-interface node.
  EXPECT_GT(nf, nb + 500u);
}

TEST(StackBuilder, WireBondingAddsSupplyTaps) {
  const auto spec = ddr3_stack_spec();
  PdnConfig plain;
  PdnConfig wb;
  wb.wire_bonding = true;
  const auto t0 = build_stack(spec, plain).model.taps().size();
  const auto t1 = build_stack(spec, wb).model.taps().size();
  // Up to 4 * wirebond_pads_per_side wires per die, bounded by the TSV count.
  const int wires_per_die = std::min(wb.tsv_count, 4 * spec.wirebond_pads_per_side);
  EXPECT_EQ(t1, t0 + static_cast<std::size_t>(4 * wires_per_die));
}

TEST(StackBuilder, MisalignedReportsC4Distance) {
  const auto spec = ddr3_stack_spec();
  PdnConfig aligned;
  aligned.align_tsvs_to_c4 = true;
  PdnConfig misaligned;
  misaligned.align_tsvs_to_c4 = false;
  EXPECT_DOUBLE_EQ(build_stack(spec, aligned).info.avg_c4_tsv_distance_mm, 0.0);
  EXPECT_GT(build_stack(spec, misaligned).info.avg_c4_tsv_distance_mm, 0.0);
}

TEST(StackBuilder, RejectsBadConfigs) {
  const auto spec = ddr3_stack_spec();
  PdnConfig cfg;
  cfg.tsv_count = 0;
  EXPECT_THROW(build_stack(spec, cfg), std::invalid_argument);

  StackSpec empty = spec;
  empty.num_dram_dies = 0;
  EXPECT_THROW(build_stack(empty, PdnConfig{}), std::invalid_argument);
}

TEST(StackBuilder, BuildInfoConsistent) {
  const auto spec = ddr3_stack_spec();
  PdnConfig cfg;
  cfg.tsv_count = 64;
  const auto built = build_stack(spec, cfg);
  EXPECT_EQ(built.info.tsvs_per_interface, 64);
  EXPECT_EQ(built.info.node_count, built.model.node_count());
  EXPECT_EQ(built.info.resistor_count, built.model.resistors().size());
}

TEST(StackBuilder, SingleDieModelForValidation) {
  const auto spec = ddr3_stack_spec();
  const StackModel m = build_single_die(spec, PdnConfig{});
  EXPECT_EQ(m.dram_die_count(), 1);
  EXPECT_TRUE(m.has_grid(0, 0));
  EXPECT_TRUE(m.has_grid(0, 1));
  EXPECT_FALSE(m.has_grid(kPackageDie, 0));
  EXPECT_TRUE(network_is_connected(m));

  // Refinement multiplies node count by ~refine^2.
  const StackModel fine = build_single_die(spec, PdnConfig{}, 2);
  EXPECT_GT(fine.node_count(), 3 * m.node_count());
  EXPECT_THROW(build_single_die(spec, PdnConfig{}, 0), std::invalid_argument);
}

TEST(StackModel, ElementValidation) {
  StackModel m(1.5);
  LayerGrid g;
  g.nx = 2;
  g.ny = 1;
  g.dx = g.dy = 1.0;
  m.add_grid(g);
  EXPECT_THROW(m.add_resistor(0, 0, 1.0), std::invalid_argument);
  EXPECT_THROW(m.add_resistor(0, 1, 0.0), std::invalid_argument);
  EXPECT_THROW(m.add_resistor(0, 5, 1.0), std::out_of_range);
  EXPECT_THROW(m.add_tap(9, 1.0), std::out_of_range);
  EXPECT_THROW(m.grid(3, 0), std::out_of_range);
  m.add_resistor(0, 1, 2.0);
  m.add_tap(0, 0.1);
  EXPECT_EQ(m.resistors().size(), 1u);
  EXPECT_EQ(m.taps().size(), 1u);
}

}  // namespace
}  // namespace pdn3d::pdn
