#include "pdn/tsv_planner.hpp"

#include <gtest/gtest.h>

#include "floorplan/dram_floorplan.hpp"

namespace pdn3d::pdn {
namespace {

floorplan::Floorplan ddr3_fp() {
  floorplan::DramFloorplanSpec s;
  s.width_mm = 6.8;
  s.height_mm = 6.7;
  s.bank_cols = 4;
  s.bank_rows = 2;
  return floorplan::make_dram_floorplan(s);
}

class TsvCounts : public ::testing::TestWithParam<int> {};

TEST_P(TsvCounts, EveryPolicyPlacesExactlyCountSites) {
  const auto fp = ddr3_fp();
  for (const auto loc : {TsvLocation::kEdge, TsvLocation::kCenter, TsvLocation::kDistributed}) {
    const auto sites = plan_tsv_sites(fp, loc, GetParam());
    EXPECT_EQ(sites.size(), static_cast<std::size_t>(GetParam()));
    for (const auto& p : sites) {
      EXPECT_GE(p.x, 0.0);
      EXPECT_LE(p.x, fp.width());
      EXPECT_GE(p.y, 0.0);
      EXPECT_LE(p.y, fp.height());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(PaperRange, TsvCounts, ::testing::Values(15, 33, 160, 384, 480));

TEST(TsvPlanner, EdgeSitesHugTopAndBottom) {
  const auto fp = ddr3_fp();
  const auto sites = plan_tsv_sites(fp, TsvLocation::kEdge, 33);
  for (const auto& p : sites) {
    const bool near_bottom = p.y < 0.2;
    const bool near_top = p.y > fp.height() - 0.2;
    EXPECT_TRUE(near_bottom || near_top);
  }
}

TEST(TsvPlanner, CenterSitesInsideCenterBand) {
  const auto fp = ddr3_fp();
  const auto sites = plan_tsv_sites(fp, TsvLocation::kCenter, 33);
  for (const auto& p : sites) {
    EXPECT_GT(p.y, fp.height() * 0.35);
    EXPECT_LT(p.y, fp.height() * 0.65);
  }
}

TEST(TsvPlanner, DistributedSitesCoverTheDie) {
  const auto fp = ddr3_fp();
  const auto sites = plan_tsv_sites(fp, TsvLocation::kDistributed, 100);
  int quadrant_count[4] = {0, 0, 0, 0};
  for (const auto& p : sites) {
    const int q = (p.x > fp.width() / 2 ? 1 : 0) + (p.y > fp.height() / 2 ? 2 : 0);
    ++quadrant_count[q];
  }
  for (int q = 0; q < 4; ++q) EXPECT_GT(quadrant_count[q], 10);
}

TEST(TsvPlanner, RejectsNonPositiveCount) {
  EXPECT_THROW(plan_tsv_sites(ddr3_fp(), TsvLocation::kEdge, 0), std::invalid_argument);
}

TEST(C4Grid, UniformPitchCentered) {
  const auto grid = c4_grid(9.0, 8.0, 1.0);
  EXPECT_EQ(grid.size(), 72u);  // 9 x 8
  for (const auto& p : grid) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 9.0);
  }
}

TEST(C4Grid, RejectsBadPitch) {
  EXPECT_THROW(c4_grid(9.0, 8.0, 0.0), std::invalid_argument);
}

TEST(AlignToC4, SnapsToNearestBump) {
  const std::vector<floorplan::Point> c4 = {{0.0, 0.0}, {2.0, 0.0}};
  const std::vector<floorplan::Point> sites = {{0.4, 0.1}, {1.8, -0.1}};
  const auto snapped = align_to_c4(sites, c4);
  EXPECT_DOUBLE_EQ(snapped[0].x, 0.0);
  EXPECT_DOUBLE_EQ(snapped[1].x, 2.0);
}

TEST(AlignToC4, EmptyC4IsIdentity) {
  const std::vector<floorplan::Point> sites = {{1.0, 1.0}};
  const auto out = align_to_c4(sites, {});
  EXPECT_DOUBLE_EQ(out[0].x, 1.0);
}

TEST(AverageC4Distance, ZeroWhenCoincident) {
  const std::vector<floorplan::Point> pts = {{1.0, 1.0}};
  EXPECT_DOUBLE_EQ(average_c4_distance(pts, pts), 0.0);
}

TEST(AverageC4Distance, KnownValue) {
  const std::vector<floorplan::Point> sites = {{0.0, 0.0}, {0.0, 4.0}};
  const std::vector<floorplan::Point> c4 = {{3.0, 0.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(average_c4_distance(sites, c4), 3.0);
}

TEST(EdgePadRing, PadsOnBothSides) {
  const auto fp = ddr3_fp();
  const auto pads = edge_pad_ring(fp, 4);
  EXPECT_EQ(pads.size(), 8u);
  int left = 0;
  int right = 0;
  for (const auto& p : pads) {
    if (p.x < 1.0) ++left;
    if (p.x > fp.width() - 1.0) ++right;
  }
  EXPECT_EQ(left, 4);
  EXPECT_EQ(right, 4);
}

}  // namespace
}  // namespace pdn3d::pdn
