// The content-addressed result cache (src/service/cache.hpp) and its service
// integration: LRU bounds, hash-collision safety, cached-vs-fresh byte
// parity, per-request cache modes, and the coalescing planner's batch path.
// The ConcurrentResultCache suite follows the Concurrent* naming convention
// so the TSan suite (scripts/run_sanitized_tests.sh) picks it up.

#include "service/cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "obs/metrics.hpp"
#include "service/server.hpp"

namespace pdn3d::service {
namespace {

using namespace std::chrono_literals;

api::RequestFingerprint make_fp(std::uint64_t hash, const std::string& canonical) {
  api::RequestFingerprint fp;
  fp.hash = hash;
  fp.canonical = canonical;
  return fp;
}

api::EvaluateResult make_result(const std::string& output) {
  api::EvaluateResult r;
  r.output = output;
  return r;
}

TEST(ResultCache, LruEvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  cache.insert(make_fp(1, "a"), make_result("A"));
  cache.insert(make_fp(2, "b"), make_result("B"));
  ASSERT_TRUE(cache.lookup(make_fp(1, "a")).has_value());  // refresh a's position
  cache.insert(make_fp(3, "c"), make_result("C"));         // evicts b, not a

  EXPECT_FALSE(cache.lookup(make_fp(2, "b")).has_value());
  const auto a = cache.lookup(make_fp(1, "a"));
  const auto c = cache.lookup(make_fp(3, "c"));
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(a->output, "A");
  EXPECT_EQ(c->output, "C");

  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.capacity, 2u);
  EXPECT_EQ(s.evictions, 1u);
  EXPECT_EQ(s.insertions, 3u);
  EXPECT_EQ(s.hits, 3u);
  EXPECT_EQ(s.misses, 1u);
}

TEST(ResultCache, HashCollisionDegradesToMissNeverWrongBytes) {
  ResultCache cache(4);
  cache.insert(make_fp(42, "request-one"), make_result("ONE"));
  // Same 64-bit hash, different canonical text: must miss, not serve ONE.
  EXPECT_FALSE(cache.lookup(make_fp(42, "request-two")).has_value());
  // Inserting the collider overwrites the slot (newest wins); the loser
  // misses from then on instead of ever getting the winner's bytes.
  cache.insert(make_fp(42, "request-two"), make_result("TWO"));
  EXPECT_FALSE(cache.lookup(make_fp(42, "request-one")).has_value());
  const auto two = cache.lookup(make_fp(42, "request-two"));
  ASSERT_TRUE(two.has_value());
  EXPECT_EQ(two->output, "TWO");
}

TEST(ResultCache, RefreshOverwritesInPlace) {
  ResultCache cache(2);
  cache.insert(make_fp(7, "k"), make_result("stale"));
  cache.insert(make_fp(7, "k"), make_result("fresh"));
  const auto got = cache.lookup(make_fp(7, "k"));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->output, "fresh");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCache, ZeroCapacityDisablesAndCountsBypass) {
  ResultCache cache(0);
  cache.insert(make_fp(1, "a"), make_result("A"));
  EXPECT_FALSE(cache.lookup(make_fp(1, "a")).has_value());
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 0u);
  EXPECT_EQ(s.insertions, 0u);
  EXPECT_GE(s.bypass, 1u);  // the disabled lookup is counted as a bypass
}

TEST(ResultCache, FailedResultsAreNeverCached) {
  ResultCache cache(4);
  api::EvaluateResult failed;
  failed.status = core::Status::input_error("boom");
  cache.insert(make_fp(1, "a"), failed);
  EXPECT_FALSE(cache.lookup(make_fp(1, "a")).has_value());
  EXPECT_EQ(cache.stats().insertions, 0u);
}

// Hammer one small cache from many threads; TSan verifies the locking, the
// final stats verify no operation was lost or double-counted.
TEST(ConcurrentResultCache, ParallelLookupInsertIsRaceFree) {
  ResultCache cache(8);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 500;
  std::atomic<std::uint64_t> local_hits{0};
  std::atomic<std::uint64_t> local_misses{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &local_hits, &local_misses, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>((t + i) % 16);
        const std::string canonical = "req-" + std::to_string(key);
        if (i % 3 == 0) {
          cache.insert(make_fp(key, canonical), make_result(canonical));
        } else if (const auto got = cache.lookup(make_fp(key, canonical))) {
          EXPECT_EQ(got->output, canonical);  // never another key's bytes
          local_hits.fetch_add(1, std::memory_order_relaxed);
        } else {
          local_misses.fetch_add(1, std::memory_order_relaxed);
        }
        if (i % 97 == 0) cache.note_bypass();
      }
    });
  }
  for (auto& th : threads) th.join();

  const CacheStats s = cache.stats();
  EXPECT_LE(s.entries, 8u);
  EXPECT_EQ(s.hits, local_hits.load());
  EXPECT_EQ(s.misses, local_misses.load());
  EXPECT_EQ(s.hits + s.misses,
            static_cast<std::uint64_t>(kThreads) * ((kOpsPerThread * 2) / 3));
}

// ---------------------------------------------------------------------------
// Service integration
// ---------------------------------------------------------------------------

class Collector {
 public:
  ResponseSink sink() {
    return [this](const std::string& line) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        lines_.push_back(line);
      }
      cv_.notify_all();
    };
  }

  std::vector<std::string> wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, 60s, [&] { return lines_.size() >= n; });
    return lines_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
};

// The escaped `output` payload of an ok response; comparing the escaped
// bytes is equivalent to comparing the unescaped bytes.
std::string output_field(const std::string& line) {
  const auto pos = line.find("\"output\":\"");
  if (pos == std::string::npos) return {};
  const auto start = pos + 10;
  const auto end = line.find("\",\"request_id\":\"", start);
  return end == std::string::npos ? std::string() : line.substr(start, end - start);
}

std::string line_with_id(const std::vector<std::string>& lines, int id) {
  const std::string tag = "\"id\":" + std::to_string(id) + ",";
  for (const auto& line : lines) {
    if (line.rfind("{" + tag, 0) == 0) return line;
  }
  return {};
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::string eval_line(int id, const std::string& extra = "") {
  return "{\"id\":" + std::to_string(id) +
         ",\"op\":\"evaluate\",\"benchmark\":\"off-chip\",\"state\":\"0-0-0-2\"," +
         "\"design\":{\"m2\":20}" + (extra.empty() ? "" : "," + extra) + "}";
}

// A hit must return the same bytes a fresh evaluation produces, at any
// worker count, and the three cache modes must echo their disposition.
TEST(ServiceCache, CachedResponsesAreByteIdenticalToFreshAtAnyThreadCount) {
  std::vector<std::string> outputs;  // [t1 miss, t1 hit, t8 miss, t8 hit]
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    api::Session session;
    ServiceConfig cfg;
    cfg.workers = workers;
    BatchService service(session, cfg);
    service.start();

    Collector c;
    service.submit_line(eval_line(1), c.sink());
    auto lines = c.wait_for(1);  // serialize: the second submit must hit
    service.submit_line(eval_line(2), c.sink());
    service.submit_line(eval_line(3, "\"cache\":\"bypass\""), c.sink());
    service.submit_line(eval_line(4, "\"cache\":\"refresh\""), c.sink());
    lines = c.wait_for(4);
    service.drain();
    ASSERT_EQ(lines.size(), 4u);

    const std::string miss = line_with_id(lines, 1);
    const std::string hit = line_with_id(lines, 2);
    const std::string bypass = line_with_id(lines, 3);
    const std::string refresh = line_with_id(lines, 4);
    EXPECT_TRUE(contains(miss, "\"cache\":\"miss\"")) << miss;
    EXPECT_TRUE(contains(hit, "\"cache\":\"hit\"")) << hit;
    EXPECT_TRUE(contains(bypass, "\"cache\":\"bypass\"")) << bypass;
    EXPECT_TRUE(contains(refresh, "\"cache\":\"miss\"")) << refresh;  // fresh solve

    const std::string fresh_output = output_field(miss);
    ASSERT_FALSE(fresh_output.empty());
    EXPECT_EQ(output_field(hit), fresh_output);
    EXPECT_EQ(output_field(bypass), fresh_output);
    EXPECT_EQ(output_field(refresh), fresh_output);
    outputs.push_back(fresh_output);
    outputs.push_back(output_field(hit));

    const CacheStats s = service.cache().stats();
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.insertions, 2u);  // the miss and the refresh
    EXPECT_GE(s.bypass, 1u);
  }
  ASSERT_EQ(outputs.size(), 4u);
  EXPECT_EQ(outputs[0], outputs[2]);  // 1 worker vs 8 workers: same bytes
  EXPECT_EQ(outputs[1], outputs[3]);
}

TEST(ServiceCache, ServerBypassOverridesRequests) {
  api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.cache_bypass = true;
  BatchService service(session, cfg);
  service.start();
  Collector c;
  service.submit_line(eval_line(1), c.sink());
  c.wait_for(1);
  service.submit_line(eval_line(2), c.sink());
  const auto lines = c.wait_for(2);
  service.drain();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(contains(line_with_id(lines, 1), "\"cache\":\"bypass\""));
  EXPECT_TRUE(contains(line_with_id(lines, 2), "\"cache\":\"bypass\""));
  const CacheStats s = service.cache().stats();
  EXPECT_EQ(s.hits + s.misses + s.insertions, 0u);
  EXPECT_EQ(s.bypass, 2u);
}

// Coalescing: hold the single worker with a test_sleep blocker while three
// factor-sharing requests queue up, then verify they were dispatched as one
// multi-RHS group whose responses are byte-identical to standalone runs.
TEST(ServiceCache, CoalescedBatchMatchesStandaloneByteForByte) {
  api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.enable_test_ops = true;
  BatchService service(session, cfg);
  service.start();

  const std::uint64_t groups_before = obs::counter("service.coalesce.groups").value();

  Collector c;
  // Blocker: non-coalescible (test_sleep), occupies the only worker.
  service.submit_line(
      "{\"id\":1,\"op\":\"validate\",\"benchmark\":\"off-chip\",\"test_sleep_ms\":400}",
      c.sink());
  // Wait until the worker picked the blocker up, so the next three stay
  // queued behind it and get drained as one group.
  for (int i = 0; i < 2000 && service.queued() > 0; ++i) std::this_thread::sleep_for(1ms);
  ASSERT_EQ(service.queued(), 0u);

  const std::vector<std::string> states = {"0-0-0-2", "0-0-2b-0", "0-0-0-1"};
  for (int i = 0; i < 3; ++i) {
    // bypass mode: no dedupe, no hits -- each member gets its own RHS slice.
    service.submit_line("{\"id\":" + std::to_string(10 + i) +
                            ",\"op\":\"evaluate\",\"benchmark\":\"wide-io\",\"state\":\"" +
                            states[static_cast<std::size_t>(i)] +
                            "\",\"design\":{\"m3\":25},\"cache\":\"bypass\"}",
                        c.sink());
  }
  const auto lines = c.wait_for(4);
  service.drain();
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_GE(obs::counter("service.coalesce.groups").value(), groups_before + 1);

  for (int i = 0; i < 3; ++i) {
    api::EvaluateRequest req;
    req.benchmark = core::BenchmarkKind::kWideIo;
    req.op = api::Operation::kEvaluate;
    req.state = states[static_cast<std::size_t>(i)];
    ASSERT_TRUE(api::set_option(&req.design, "m3", 25.0).is_ok());
    const api::EvaluateResult fresh = session.evaluate(req);
    ASSERT_TRUE(fresh.ok());

    const std::string line = line_with_id(lines, 10 + i);
    ASSERT_FALSE(line.empty()) << "no response for id " << 10 + i;
    EXPECT_TRUE(contains(line, "\"ok\":true")) << line;
    // Compare through the wire escaping: escape the fresh output the same
    // way ok_response does by rendering a one-off response.
    Request wire;
    wire.id = 10 + i;
    wire.eval = req;
    wire.request_id = "x";  // output_field keys off the request_id terminator
    const std::string rendered = ok_response(wire, fresh, 0.0, 0.0, "bypass");
    EXPECT_EQ(output_field(line), output_field(rendered)) << "member " << i;
  }
}

// em-check responses: the cached hit and the bypassed fresh solve must be
// byte-identical to a direct facade evaluation of the same request.
TEST(ServiceCache, EmCheckCachedAndFreshResponsesAreByteIdentical) {
  api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  BatchService service(session, cfg);
  service.start();

  const auto em_line = [](int id, const std::string& extra = "") {
    return "{\"id\":" + std::to_string(id) +
           ",\"op\":\"em-check\",\"benchmark\":\"wide-io\",\"state\":\"0-0-0-2\"," +
           "\"design\":{\"em-temp\":100}" + (extra.empty() ? "" : "," + extra) + "}";
  };

  Collector c;
  service.submit_line(em_line(1), c.sink());
  auto lines = c.wait_for(1);  // serialize so the second submit hits
  service.submit_line(em_line(2), c.sink());
  service.submit_line(em_line(3, "\"cache\":\"bypass\""), c.sink());
  lines = c.wait_for(3);
  service.drain();
  ASSERT_EQ(lines.size(), 3u);

  const std::string miss = line_with_id(lines, 1);
  const std::string hit = line_with_id(lines, 2);
  const std::string bypass = line_with_id(lines, 3);
  EXPECT_TRUE(contains(miss, "\"cache\":\"miss\"")) << miss;
  EXPECT_TRUE(contains(hit, "\"cache\":\"hit\"")) << hit;
  EXPECT_TRUE(contains(bypass, "\"cache\":\"bypass\"")) << bypass;

  // Byte parity with the facade (the CLI prints exactly result.output).
  api::EvaluateRequest req;
  req.benchmark = core::BenchmarkKind::kWideIo;
  req.op = api::Operation::kEmCheck;
  req.state = "0-0-0-2";
  ASSERT_TRUE(api::set_option(&req.design, "em-temp", 100.0).is_ok());
  const api::EvaluateResult fresh = session.evaluate(req);
  ASSERT_TRUE(fresh.ok()) << fresh.status.to_string();
  Request wire;
  wire.id = 1;
  wire.eval = req;
  wire.request_id = "x";
  const std::string rendered = ok_response(wire, fresh, 0.0, 0.0, "miss");
  const std::string fresh_output = output_field(rendered);
  ASSERT_FALSE(fresh_output.empty());
  EXPECT_EQ(output_field(miss), fresh_output);
  EXPECT_EQ(output_field(hit), fresh_output);
  EXPECT_EQ(output_field(bypass), fresh_output);
}

// EM-enabled evaluates are excluded from the coalescing planner (the EM pass
// is per-request work the multi-RHS batch path cannot share), but their
// responses still match standalone evaluation byte for byte.
TEST(ServiceCache, EmEnabledEvaluatesDoNotCoalesce) {
  api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.enable_test_ops = true;
  BatchService service(session, cfg);
  service.start();

  const std::uint64_t groups_before = obs::counter("service.coalesce.groups").value();

  Collector c;
  service.submit_line(
      "{\"id\":1,\"op\":\"validate\",\"benchmark\":\"off-chip\",\"test_sleep_ms\":400}",
      c.sink());
  for (int i = 0; i < 2000 && service.queued() > 0; ++i) std::this_thread::sleep_for(1ms);
  ASSERT_EQ(service.queued(), 0u);

  const std::vector<std::string> states = {"0-0-0-2", "0-0-2b-0", "0-0-0-1"};
  for (int i = 0; i < 3; ++i) {
    service.submit_line("{\"id\":" + std::to_string(30 + i) +
                            ",\"op\":\"evaluate\",\"benchmark\":\"wide-io\",\"state\":\"" +
                            states[static_cast<std::size_t>(i)] +
                            "\",\"design\":{\"em-temp\":100},\"cache\":\"bypass\"}",
                        c.sink());
  }
  const auto lines = c.wait_for(4);
  service.drain();
  ASSERT_EQ(lines.size(), 4u);
  // Same factor key, same op, queued together -- yet no coalesce group fired.
  EXPECT_EQ(obs::counter("service.coalesce.groups").value(), groups_before);

  for (int i = 0; i < 3; ++i) {
    api::EvaluateRequest req;
    req.benchmark = core::BenchmarkKind::kWideIo;
    req.op = api::Operation::kEvaluate;
    req.state = states[static_cast<std::size_t>(i)];
    ASSERT_TRUE(api::set_option(&req.design, "em-temp", 100.0).is_ok());
    const api::EvaluateResult fresh = session.evaluate(req);
    ASSERT_TRUE(fresh.ok());
    Request wire;
    wire.id = 30 + i;
    wire.eval = req;
    wire.request_id = "x";
    const std::string rendered = ok_response(wire, fresh, 0.0, 0.0, "bypass");
    const std::string line = line_with_id(lines, 30 + i);
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(output_field(line), output_field(rendered)) << "member " << i;
  }
}

// Duplicate requests inside one coalesced group evaluate once and the twin
// reports a cache hit with identical bytes.
TEST(ServiceCache, DuplicateGroupMembersDedupeAsHits) {
  api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.enable_test_ops = true;
  BatchService service(session, cfg);
  service.start();

  Collector c;
  service.submit_line(
      "{\"id\":1,\"op\":\"validate\",\"benchmark\":\"off-chip\",\"test_sleep_ms\":400}",
      c.sink());
  for (int i = 0; i < 2000 && service.queued() > 0; ++i) std::this_thread::sleep_for(1ms);
  ASSERT_EQ(service.queued(), 0u);

  service.submit_line(eval_line(20), c.sink());
  service.submit_line(eval_line(21), c.sink());  // identical fingerprint
  const auto lines = c.wait_for(3);
  service.drain();
  ASSERT_EQ(lines.size(), 3u);

  const std::string first = line_with_id(lines, 20);
  const std::string twin = line_with_id(lines, 21);
  ASSERT_FALSE(first.empty());
  ASSERT_FALSE(twin.empty());
  // Exactly one of the pair is the fresh miss; its twin is answered as a hit
  // (either deduped inside the group or served from the cache afterwards).
  const bool first_is_miss = contains(first, "\"cache\":\"miss\"");
  EXPECT_TRUE(contains(first_is_miss ? twin : first, "\"cache\":\"hit\""))
      << first << "\n" << twin;
  EXPECT_EQ(output_field(first), output_field(twin));
}

}  // namespace
}  // namespace pdn3d::service
