// The batch evaluation service (src/service/): wire-protocol round trips and
// the BatchService's backpressure / deadline / cancellation / drain fault
// paths, driven through submit_line exactly as the `pdn3d serve` front ends
// drive it. The concurrent-clients test follows the Concurrent* naming
// convention so the TSan suite (scripts/run_sanitized_tests.sh) picks it up.

#include "service/server.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/report.hpp"
#include "service/protocol.hpp"

namespace pdn3d::service {
namespace {

using namespace std::chrono_literals;

// Thread-safe response collector; one per logical client.
class Collector {
 public:
  ResponseSink sink() {
    return [this](const std::string& line) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        lines_.push_back(line);
      }
      cv_.notify_all();
    };
  }

  std::vector<std::string> wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, 30s, [&] { return lines_.size() >= n; });
    return lines_;
  }

  std::vector<std::string> lines() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
};

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// Block until the worker pulled everything submitted so far off the queue.
void wait_drained_queue(const BatchService& service) {
  for (int i = 0; i < 2000 && service.queued() > 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(service.queued(), 0u);
}

TEST(Protocol, ParseEvaluateRequestDecodesEveryField) {
  Request req;
  const core::Status st = parse_request(
      R"({"id":7,"op":"montecarlo","benchmark":"wide-io","samples":64,"activity":0.5,)"
      R"("design":{"m2":15,"tl":"d","wb":true},"deadline_ms":250,"test_sleep_ms":5})",
      &req);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(req.id, 7);
  EXPECT_EQ(req.kind, Request::Kind::kEvaluate);
  EXPECT_EQ(req.eval.op, api::Operation::kMonteCarlo);
  EXPECT_EQ(req.eval.benchmark, core::BenchmarkKind::kWideIo);
  EXPECT_EQ(req.eval.samples, 64);
  EXPECT_DOUBLE_EQ(req.eval.activity, 0.5);
  EXPECT_DOUBLE_EQ(req.deadline_ms, 250.0);
  EXPECT_DOUBLE_EQ(req.test_sleep_ms, 5.0);
}

TEST(Protocol, ParseRejectsMalformedRequests) {
  Request req;
  EXPECT_FALSE(parse_request("not json", &req).is_ok());
  EXPECT_FALSE(parse_request("[1,2,3]", &req).is_ok());
  EXPECT_FALSE(parse_request(R"({"id":1})", &req).is_ok());  // missing op
  EXPECT_FALSE(parse_request(R"({"id":1,"op":"explode","benchmark":"hmc"})", &req).is_ok());
  EXPECT_FALSE(parse_request(R"({"id":1,"op":"evaluate"})", &req).is_ok());  // no benchmark
  EXPECT_FALSE(
      parse_request(R"({"id":1,"op":"evaluate","benchmark":"ddr9"})", &req).is_ok());
  EXPECT_FALSE(parse_request(
                   R"({"id":1,"op":"evaluate","benchmark":"hmc","design":{"m2":"abc"}})",
                   &req)
                   .is_ok());
  EXPECT_FALSE(parse_request(
                   R"({"id":1,"op":"montecarlo","benchmark":"hmc","samples":2.5})", &req)
                   .is_ok());
  EXPECT_FALSE(parse_request(
                   R"({"id":1,"op":"cooptimize","benchmark":"hmc","alpha":3})", &req)
                   .is_ok());
  EXPECT_FALSE(parse_request(R"({"id":1,"op":"cancel"})", &req).is_ok());  // no target
}

TEST(Protocol, ControlRequestsAndResponses) {
  Request req;
  ASSERT_TRUE(parse_request(R"({"id":9,"op":"cancel","target":7})", &req).is_ok());
  EXPECT_EQ(req.kind, Request::Kind::kCancel);
  EXPECT_EQ(req.cancel_target, 7);

  Request ping_req;
  ASSERT_TRUE(parse_request(R"({"op":"ping"})", &ping_req).is_ok());
  EXPECT_EQ(ping_req.kind, Request::Kind::kPing);
  EXPECT_EQ(ping_req.id, -1);  // absent id is echoed as -1

  EXPECT_EQ(ping_response(3), R"({"id":3,"ok":true,"op":"ping"})");
  const std::string err = error_response(5, ErrorKind::kQueueFull, "a \"quoted\" reason");
  EXPECT_TRUE(contains(err, R"("id":5)")) << err;
  EXPECT_TRUE(contains(err, R"("kind":"queue_full")")) << err;
  EXPECT_TRUE(contains(err, R"(a \"quoted\" reason)")) << err;
}

TEST(ServiceTest, EvaluatesAndAnswersBadLines) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  BatchService service(session, cfg);
  service.start();

  Collector client;
  service.submit_line("this is not json", client.sink());
  service.submit_line(R"({"id":1,"op":"validate","benchmark":"wide-io"})", client.sink());
  service.drain();

  const auto lines = client.lines();
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(contains(lines[0], R"("kind":"bad_request")")) << lines[0];
  EXPECT_TRUE(contains(lines[1], R"("id":1)")) << lines[1];
  EXPECT_TRUE(contains(lines[1], R"("ok":true)")) << lines[1];
  EXPECT_TRUE(contains(lines[1], "validation passed")) << lines[1];

  const auto s = service.stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.bad_requests, 1u);
  EXPECT_EQ(s.completed, 1u);
}

TEST(ServiceTest, QueueFullBackpressureAndCancel) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 1;
  cfg.enable_test_ops = true;
  BatchService service(session, cfg);
  service.start();

  Collector c1, c2, c3, canceller;
  // r1 occupies the single worker (test hold), leaving the 1-slot queue free.
  service.submit_line(
      R"({"id":1,"op":"validate","benchmark":"wide-io","test_sleep_ms":700})", c1.sink());
  wait_drained_queue(service);
  // r2 fills the queue; r3 must bounce with queue_full immediately.
  service.submit_line(R"({"id":2,"op":"validate","benchmark":"wide-io"})", c2.sink());
  service.submit_line(R"({"id":3,"op":"validate","benchmark":"wide-io"})", c3.sink());
  const auto rejected = c3.wait_for(1);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_TRUE(contains(rejected[0], R"("id":3)")) << rejected[0];
  EXPECT_TRUE(contains(rejected[0], R"("kind":"queue_full")")) << rejected[0];

  // Cancel the still-queued r2: its own sink gets the cancelled response, the
  // canceller gets an ack; a second cancel finds nothing.
  service.submit_line(R"({"id":4,"op":"cancel","target":2})", canceller.sink());
  const auto cancelled = c2.wait_for(1);
  ASSERT_EQ(cancelled.size(), 1u);
  EXPECT_TRUE(contains(cancelled[0], R"("id":2)")) << cancelled[0];
  EXPECT_TRUE(contains(cancelled[0], R"("kind":"cancelled")")) << cancelled[0];
  service.submit_line(R"({"id":5,"op":"cancel","target":2})", canceller.sink());
  const auto acks = canceller.wait_for(2);
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_TRUE(contains(acks[0], R"("target":2)")) << acks[0];
  EXPECT_TRUE(contains(acks[0], R"("ok":true)")) << acks[0];
  EXPECT_TRUE(contains(acks[1], R"("kind":"not_found")")) << acks[1];

  service.drain();
  ASSERT_EQ(c1.lines().size(), 1u);
  EXPECT_TRUE(contains(c1.lines()[0], R"("ok":true)")) << c1.lines()[0];

  const auto s = service.stats();
  EXPECT_EQ(s.completed, 1u);
  EXPECT_EQ(s.rejected_full, 1u);
  EXPECT_EQ(s.cancelled, 1u);
}

TEST(ServiceTest, DeadlineExpiresWhileQueued) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.enable_test_ops = true;
  BatchService service(session, cfg);
  service.start();

  Collector c1, c2;
  service.submit_line(
      R"({"id":1,"op":"validate","benchmark":"wide-io","test_sleep_ms":300})", c1.sink());
  wait_drained_queue(service);
  // r2's 20 ms deadline cannot survive 300 ms behind r1 on the only worker.
  service.submit_line(R"({"id":2,"op":"validate","benchmark":"wide-io","deadline_ms":20})",
                      c2.sink());
  service.drain();

  const auto lines = c2.lines();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(contains(lines[0], R"("id":2)")) << lines[0];
  EXPECT_TRUE(contains(lines[0], R"("kind":"deadline_exceeded")")) << lines[0];
  EXPECT_EQ(service.stats().deadline_expired, 1u);
  EXPECT_EQ(service.stats().completed, 1u);
}

TEST(ServiceTest, DrainAnswersShutdownAndEveryAdmittedRequest) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 2;
  BatchService service(session, cfg);
  service.start();

  Collector before, after;
  for (int i = 1; i <= 3; ++i) {
    service.submit_line(
        R"({"id":)" + std::to_string(i) + R"(,"op":"validate","benchmark":"wide-io"})",
        before.sink());
  }
  service.drain();
  ASSERT_EQ(before.lines().size(), 3u);  // nothing admitted is ever dropped
  for (const auto& line : before.lines()) {
    EXPECT_TRUE(contains(line, R"("ok":true)")) << line;
  }

  service.submit_line(R"({"id":9,"op":"validate","benchmark":"wide-io"})", after.sink());
  ASSERT_EQ(after.lines().size(), 1u);
  EXPECT_TRUE(contains(after.lines()[0], R"("kind":"shutdown")")) << after.lines()[0];
  EXPECT_EQ(service.stats().rejected_shutdown, 1u);
}

TEST(ServiceTest, PingBypassesBusyWorkers) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.enable_test_ops = true;
  BatchService service(session, cfg);
  service.start();

  Collector busy, ping;
  service.submit_line(
      R"({"id":1,"op":"validate","benchmark":"wide-io","test_sleep_ms":300})", busy.sink());
  service.submit_line(R"({"op":"ping","id":2})", ping.sink());
  // The ping answered synchronously even though the only worker is held.
  // The server appends its generated request_id after the historical shape.
  ASSERT_EQ(ping.lines().size(), 1u);
  EXPECT_TRUE(contains(ping.lines()[0], R"({"id":2,"ok":true,"op":"ping")"))
      << ping.lines()[0];
  EXPECT_TRUE(contains(ping.lines()[0], R"("request_id":"r-)")) << ping.lines()[0];
  service.drain();
}

// Byte-identity under concurrency: several clients issue the same request
// mix against one service; every client must read back identical rendered
// output for identical requests (the shared Session caches may not leak
// cross-request state). Runs under TSan via the Concurrent* name.
TEST(ServiceTest, ConcurrentClientsGetIdenticalResponses) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 64;
  BatchService service(session, cfg);
  service.start();

  constexpr int kClients = 4;
  constexpr int kPerClient = 3;
  std::vector<Collector> clients(kClients);
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        // All clients pin the same request_id so the rendered bytes (which
        // end in the echoed id) stay comparable across clients.
        service.submit_line(R"({"id":)" + std::to_string(c * kPerClient + i) +
                                R"(,"op":"validate","benchmark":"wide-io",)"
                                R"("request_id":"concurrent-mix"})",
                            clients[static_cast<std::size_t>(c)].sink());
      }
    });
  }
  for (auto& t : threads) t.join();
  service.drain();

  // Every admitted request answered, all ok, all rendering identical bytes.
  std::string reference;
  for (auto& client : clients) {
    const auto lines = client.lines();
    ASSERT_EQ(lines.size(), static_cast<std::size_t>(kPerClient));
    for (const auto& line : lines) {
      EXPECT_TRUE(contains(line, R"("ok":true)")) << line;
      const std::size_t pos = line.find(R"("output":")");
      ASSERT_NE(pos, std::string::npos) << line;
      const std::string output = line.substr(pos);
      if (reference.empty()) reference = output;
      EXPECT_EQ(output, reference);
    }
  }
  EXPECT_EQ(service.stats().completed, static_cast<std::uint64_t>(kClients * kPerClient));
}

TEST(ServiceTest, SessionBlockFeedsSchemaV4Report) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  BatchService service(session, cfg);
  service.start();

  Collector client;
  service.submit_line(R"({"id":1,"op":"validate","benchmark":"wide-io"})", client.sink());
  service.submit_line("garbage", client.sink());
  service.drain();

  const obs::json::Value block = service.session_block();
  ASSERT_TRUE(block.is_object());
  EXPECT_DOUBLE_EQ(block.find("submitted")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(block.find("completed")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(block.find("bad_requests")->as_number(), 1.0);
  const obs::json::Value* requests = block.find("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_EQ(requests->items().size(), 1u);  // only evaluated requests get records
  EXPECT_EQ(requests->items()[0].find("op")->as_string(), "validate");
  EXPECT_TRUE(requests->items()[0].find("ok")->as_bool());

  // End to end through the report writer: the session block lands under the
  // top-level "session" key of a schema-v4 run report.
  const std::string path = testing::TempDir() + "pdn3d_service_report.json";
  obs::RunReportOptions opts;
  opts.command = "serve";
  opts.session = block;
  ASSERT_TRUE(obs::write_run_report(path, opts).is_ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const obs::json::Value report = obs::json::parse(text);
  EXPECT_DOUBLE_EQ(report.find("schema")->as_number(),
                   static_cast<double>(obs::kReportSchemaVersion));
  ASSERT_NE(report.find("session"), nullptr);
  EXPECT_DOUBLE_EQ(report.find("session")->find("submitted")->as_number(), 2.0);
}

}  // namespace
}  // namespace pdn3d::service
