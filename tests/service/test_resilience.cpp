// Resilience mechanisms of the batch service: cost-based overload shedding,
// the health op, the per-request watchdog, fault-injection end-to-end paths,
// request-size hardening, and the socket front end's stale-socket handling.
// Suite names start with Service* so scripts/run_sanitized_tests.sh runs them
// under TSan alongside the other concurrency suites.

#include "service/server.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "faults/faults.hpp"
#include "service/protocol.hpp"

namespace pdn3d::service {
namespace {

using namespace std::chrono_literals;

class Collector {
 public:
  ResponseSink sink() {
    return [this](const std::string& line) {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        lines_.push_back(line);
      }
      cv_.notify_all();
    };
  }

  std::vector<std::string> wait_for(std::size_t n) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, 30s, [&] { return lines_.size() >= n; });
    return lines_;
  }

  std::vector<std::string> lines() {
    const std::lock_guard<std::mutex> lock(mutex_);
    return lines_;
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::vector<std::string> lines_;
};

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

void wait_drained_queue(const BatchService& service) {
  for (int i = 0; i < 2000 && service.queued() > 0; ++i) {
    std::this_thread::sleep_for(1ms);
  }
  ASSERT_EQ(service.queued(), 0u);
}

// Several tests arm the process-global fault registry; reset around each so a
// failure in one cannot leak injected faults into the next.
class ServiceFaultFixture : public ::testing::Test {
 protected:
  void SetUp() override { faults::Registry::instance().reset(); }
  void TearDown() override { faults::Registry::instance().reset(); }
};

using ServiceResilience = ServiceFaultFixture;

TEST_F(ServiceResilience, OverloadControlShedsBeyondCostCeiling) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 8;
  cfg.enable_test_ops = true;
  cfg.max_outstanding_cost = 1;
  BatchService service(session, cfg);
  service.start();

  Collector c1, c2;
  // r1 is admitted (an idle service always takes one request) and holds its
  // cost until it finishes, 400 ms from now.
  service.submit_line(
      R"({"id":1,"op":"validate","benchmark":"wide-io","test_sleep_ms":400})", c1.sink());
  wait_drained_queue(service);
  // r2 would push outstanding cost to 2 > 1: shed, typed, immediate.
  service.submit_line(R"({"id":2,"op":"validate","benchmark":"wide-io"})", c2.sink());
  const auto shed = c2.wait_for(1);
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_TRUE(contains(shed[0], R"("id":2)")) << shed[0];
  EXPECT_TRUE(contains(shed[0], R"("kind":"overloaded")")) << shed[0];

  service.drain();
  // The admitted request was never affected by the shedding.
  ASSERT_EQ(c1.lines().size(), 1u);
  EXPECT_TRUE(contains(c1.lines()[0], R"("ok":true)")) << c1.lines()[0];
  const auto s = service.stats();
  EXPECT_EQ(s.rejected_overload, 1u);
  EXPECT_EQ(s.completed, 1u);

  // Once the cost drained, admission reopens.
  Collector after;
  service.submit_line(R"({"id":3,"op":"validate","benchmark":"wide-io"})", after.sink());
  ASSERT_EQ(after.lines().size(), 1u);
  EXPECT_TRUE(contains(after.lines()[0], R"("kind":"shutdown")"));  // drained, not overloaded
}

TEST_F(ServiceResilience, HealthOpReportsStateAndAnswersWhileDraining) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.max_outstanding_cost = 32;
  BatchService service(session, cfg);
  service.start();

  Collector health;
  service.submit_line(R"({"id":7,"op":"health"})", health.sink());
  ASSERT_EQ(health.lines().size(), 1u);  // answered inline, no worker involved
  const std::string live = health.lines()[0];
  EXPECT_TRUE(contains(live, R"("id":7)")) << live;
  EXPECT_TRUE(contains(live, R"("ok":true)")) << live;
  EXPECT_TRUE(contains(live, R"("op":"health")")) << live;
  EXPECT_TRUE(contains(live, R"("draining":false)")) << live;
  EXPECT_TRUE(contains(live, R"("queue_depth":0)")) << live;
  EXPECT_TRUE(contains(live, R"("in_flight":0)")) << live;
  EXPECT_TRUE(contains(live, R"("outstanding_cost":0)")) << live;
  EXPECT_TRUE(contains(live, R"("max_outstanding_cost":32)")) << live;
  EXPECT_TRUE(contains(live, R"("workers":1)")) << live;

  service.drain();
  // Health bypasses the shutdown rejection: operators can still probe a
  // draining server.
  Collector drained;
  service.submit_line(R"({"id":8,"op":"health"})", drained.sink());
  ASSERT_EQ(drained.lines().size(), 1u);
  EXPECT_TRUE(contains(drained.lines()[0], R"("draining":true)")) << drained.lines()[0];
}

TEST_F(ServiceResilience, WatchdogCancelsStuckEvaluationWithTypedTimeout) {
  // The injected worker stall (10 s, cancel-aware) stands in for a stuck
  // solve; the 150 ms watchdog must cut it down to a typed `timeout`.
  ASSERT_EQ(faults::Registry::instance().configure("service.worker.stall=1.0#1:10000"), "");
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  cfg.watchdog_ms = 150.0;
  BatchService service(session, cfg);
  service.start();

  Collector client;
  const auto t0 = std::chrono::steady_clock::now();
  service.submit_line(R"({"id":1,"op":"evaluate","benchmark":"wide-io"})", client.sink());
  const auto lines = client.wait_for(1);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_TRUE(contains(lines[0], R"("id":1)")) << lines[0];
  EXPECT_TRUE(contains(lines[0], R"("kind":"timeout")")) << lines[0];
  EXPECT_LT(ms, 8000.0);  // the 10 s stall was interrupted, not served
  EXPECT_EQ(faults::Registry::instance().triggers("service.worker.stall"), 1u);

  service.drain();
  const auto s = service.stats();
  EXPECT_EQ(s.timeouts, 1u);
  EXPECT_EQ(s.completed, 1u);  // a timed-out request still counts as completed

  // The watchdog left the service healthy: later requests run normally.
  // (The #1 trigger cap disarmed the stall after its single firing.)
}

TEST_F(ServiceResilience, AllocationFaultSurfacesAsEvaluationFailed) {
  ASSERT_EQ(faults::Registry::instance().configure("irdrop.solve.alloc=1/1#1"), "");
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  BatchService service(session, cfg);
  service.start();

  Collector c1, c2;
  service.submit_line(R"({"id":1,"op":"evaluate","benchmark":"wide-io"})", c1.sink());
  const auto failed = c1.wait_for(1);
  ASSERT_EQ(failed.size(), 1u);
  EXPECT_TRUE(contains(failed[0], R"("ok":false)")) << failed[0];
  EXPECT_TRUE(contains(failed[0], R"("kind":"evaluation_failed")")) << failed[0];

  // One bad_alloc does not poison the worker: the next request (fault capped
  // at one trigger) succeeds on the same service.
  service.submit_line(R"({"id":2,"op":"evaluate","benchmark":"wide-io"})", c2.sink());
  service.drain();
  ASSERT_EQ(c2.lines().size(), 1u);
  EXPECT_TRUE(contains(c2.lines()[0], R"("ok":true)")) << c2.lines()[0];
  EXPECT_EQ(service.stats().completed, 2u);
}

TEST_F(ServiceResilience, QueueDelayFaultOnlySlowsNeverDrops) {
  ASSERT_EQ(faults::Registry::instance().configure("service.queue.delay=1.0:20"), "");
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 2;
  BatchService service(session, cfg);
  service.start();

  Collector client;
  for (int i = 1; i <= 4; ++i) {
    service.submit_line(
        R"({"id":)" + std::to_string(i) + R"(,"op":"validate","benchmark":"wide-io"})",
        client.sink());
  }
  service.drain();
  ASSERT_EQ(client.lines().size(), 4u);  // delayed, but every one answered
  for (const auto& line : client.lines()) {
    EXPECT_TRUE(contains(line, R"("ok":true)")) << line;
  }
  EXPECT_EQ(faults::Registry::instance().triggers("service.queue.delay"), 4u);
}

TEST_F(ServiceResilience, OversizedLineAnsweredWithoutParsing) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  BatchService service(session, cfg);
  service.start();

  // A line one byte over the cap -- mostly padding, but syntactically valid
  // JSON so only the size check can be what rejects it.
  std::string line = R"({"id":1,"op":"ping","pad":")";
  line.append(kMaxRequestBytes, 'x');
  line += "\"}";
  Collector client;
  service.submit_line(line, client.sink());
  ASSERT_EQ(client.lines().size(), 1u);
  EXPECT_TRUE(contains(client.lines()[0], R"("kind":"request_too_large")"))
      << client.lines()[0].substr(0, 200);
  service.drain();
  EXPECT_EQ(service.stats().rejected_too_large, 1u);
}

TEST(ServiceProtocolHardening, ParserRejectsHostileInput) {
  Request req;
  // Oversized input is rejected by parse_request itself, independent of the
  // service-level check.
  std::string huge = R"({"id":1,"op":"ping"})";
  huge.append(kMaxRequestBytes, ' ');
  EXPECT_FALSE(parse_request(huge, &req).is_ok());

  // Embedded NUL and invalid UTF-8 never reach the JSON parser.
  std::string nul = R"({"id":1,"op":"ping"})";
  nul[5] = '\0';
  EXPECT_FALSE(parse_request(nul, &req).is_ok());
  EXPECT_FALSE(parse_request("{\"op\":\"ping\xff\"}", &req).is_ok());      // stray byte
  EXPECT_FALSE(parse_request("{\"op\":\"ping\xc0\xaf\"}", &req).is_ok());  // overlong '/'
  EXPECT_FALSE(parse_request("{\"op\":\"ping\xed\xa0\x80\"}", &req).is_ok());  // surrogate

  // Truncated and structurally hostile JSON.
  EXPECT_FALSE(parse_request(R"({"id":1,"op":"pi)", &req).is_ok());
  std::string deep;
  for (int i = 0; i < 256; ++i) deep += '[';
  for (int i = 0; i < 256; ++i) deep += ']';
  EXPECT_FALSE(parse_request(deep, &req).is_ok());

  // Numbers that overflow their integer fields are errors, not wrapped casts.
  EXPECT_FALSE(parse_request(R"({"id":1e999,"op":"ping"})", &req).is_ok());
  EXPECT_FALSE(parse_request(R"({"id":1e300,"op":"ping"})", &req).is_ok());
  EXPECT_FALSE(parse_request(R"({"id":-1e300,"op":"ping"})", &req).is_ok());
  EXPECT_FALSE(parse_request(R"({"id":1.5,"op":"ping"})", &req).is_ok());
  EXPECT_FALSE(
      parse_request(R"({"id":1,"op":"montecarlo","benchmark":"hmc","samples":1e300})", &req)
          .is_ok());

  // The parser is still healthy after all of that.
  ASSERT_TRUE(parse_request(R"({"id":3,"op":"ping"})", &req).is_ok());
  EXPECT_EQ(req.kind, Request::Kind::kPing);
}

TEST(ServiceProtocolHardening, HealthOpParsesAndNewErrorKindsRender) {
  Request req;
  ASSERT_TRUE(parse_request(R"({"id":11,"op":"health"})", &req).is_ok());
  EXPECT_EQ(req.kind, Request::Kind::kHealth);
  EXPECT_EQ(req.id, 11);

  EXPECT_TRUE(contains(error_response(1, ErrorKind::kOverloaded, "shed"),
                       R"("kind":"overloaded")"));
  EXPECT_TRUE(contains(error_response(1, ErrorKind::kTimeout, "watchdog"),
                       R"("kind":"timeout")"));
  EXPECT_TRUE(contains(error_response(1, ErrorKind::kRequestTooLarge, "cap"),
                       R"("kind":"request_too_large")"));
  EXPECT_TRUE(contains(error_response(1, ErrorKind::kInternal, "boom"),
                       R"("kind":"internal")"));
}

// ---------------------------------------------------------------------------
// Socket front end: stale-socket recovery and the connection-reset fault.

int connect_client(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct timeval tv {};
  tv.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Write one request line and read back one response line ("" on EOF/error).
std::string roundtrip(int fd, const std::string& request) {
  const std::string line = request + "\n";
  if (::write(fd, line.data(), line.size()) != static_cast<ssize_t>(line.size())) return "";
  std::string out;
  char c = 0;
  while (::read(fd, &c, 1) == 1) {
    if (c == '\n') return out;
    out += c;
  }
  return "";
}

class ServiceSocketTest : public ServiceFaultFixture {};

TEST_F(ServiceSocketTest, LiveServerRefusesSecondBindStaleSocketRebinds) {
  const std::string path = testing::TempDir() + "pdn3d_resilience.sock";
  std::remove(path.c_str());

  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  BatchService service(session, cfg);
  service.start();

  {
    SocketServer first(service, path);
    first.start();

    // A second server on the same path must refuse: the socket is live.
    BatchService other(session, cfg);
    SocketServer second(other, path);
    try {
      second.start();
      FAIL() << "second bind on a live socket did not throw";
    } catch (const std::runtime_error& e) {
      EXPECT_TRUE(contains(e.what(), "live server")) << e.what();
    }

    // The probe did not disturb the live server.
    const int fd = connect_client(path);
    ASSERT_GE(fd, 0);
    EXPECT_TRUE(contains(roundtrip(fd, R"({"id":1,"op":"ping"})"),
                         R"({"id":1,"ok":true,"op":"ping")"));
    ::close(fd);
    first.stop();
    other.drain();
  }

  // The first server is gone but (simulating a crash) the path still holds a
  // socket file: re-create one manually, then prove a new server reclaims it.
  {
    const int dead = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(dead, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    std::remove(path.c_str());
    ASSERT_EQ(::bind(dead, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
    ::close(dead);  // nobody listening; the file is now stale
  }
  SocketServer reborn(service, path);
  reborn.start();  // unlinks the stale socket and rebinds
  const int fd = connect_client(path);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(contains(roundtrip(fd, R"({"id":2,"op":"ping"})"),
                         R"({"id":2,"ok":true,"op":"ping")"));
  ::close(fd);
  reborn.stop();
  service.drain();
  std::remove(path.c_str());
}

TEST_F(ServiceSocketTest, RegularFileAtSocketPathIsNeverReplaced) {
  const std::string path = testing::TempDir() + "pdn3d_notasocket.sock";
  {
    std::ofstream out(path);
    out << "precious data\n";
  }
  const api::Session session;
  BatchService service(session, ServiceConfig{});
  SocketServer server(service, path);
  try {
    server.start();
    FAIL() << "start() replaced a regular file";
  } catch (const std::runtime_error& e) {
    EXPECT_TRUE(contains(e.what(), "not a socket")) << e.what();
  }
  // The file survived untouched.
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "precious data");
  std::remove(path.c_str());
}

TEST_F(ServiceSocketTest, SocketResetFaultDropsConnectionNotServer) {
  ASSERT_EQ(faults::Registry::instance().configure("service.socket.reset=1/1#1"), "");
  const std::string path = testing::TempDir() + "pdn3d_reset.sock";
  std::remove(path.c_str());

  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  BatchService service(session, cfg);
  service.start();
  SocketServer server(service, path);
  server.start();

  // First connection: the injected reset shuts the socket down mid-read; the
  // client observes EOF instead of a response.
  const int victim = connect_client(path);
  ASSERT_GE(victim, 0);
  EXPECT_EQ(roundtrip(victim, R"({"id":1,"op":"ping"})"), "");
  ::close(victim);
  EXPECT_EQ(faults::Registry::instance().triggers("service.socket.reset"), 1u);

  // The server survived: a fresh connection (fault capped at one trigger)
  // round-trips normally.
  const int fd = connect_client(path);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(contains(roundtrip(fd, R"({"id":2,"op":"ping"})"),
                         R"({"id":2,"ok":true,"op":"ping")"));
  ::close(fd);

  server.stop();
  service.drain();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pdn3d::service
