// Live telemetry surface of the batch service: the stats / metrics protocol
// ops, the per-response request_id contract, and the windowed latency
// quantiles they expose. Driven through submit_line like the front ends.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace pdn3d::service {
namespace {

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// Synchronous single-response capture: every op under test answers inline.
std::string roundtrip(BatchService& service, const std::string& line) {
  std::string out;
  service.submit_line(line, [&](const std::string& response) { out = response; });
  return out;
}

TEST(Protocol, ParsesStatsMetricsAndRequestId) {
  Request req;
  ASSERT_TRUE(parse_request(R"({"id":1,"op":"stats"})", &req).is_ok());
  EXPECT_EQ(req.kind, Request::Kind::kStats);
  ASSERT_TRUE(parse_request(R"({"id":2,"op":"metrics"})", &req).is_ok());
  EXPECT_EQ(req.kind, Request::Kind::kMetrics);

  ASSERT_TRUE(
      parse_request(R"({"id":3,"op":"ping","request_id":"abc.DEF-1:2/3_x"})", &req).is_ok());
  EXPECT_EQ(req.request_id, "abc.DEF-1:2/3_x");

  // Unsafe charset and oversized ids are rejected at parse time.
  EXPECT_FALSE(parse_request(R"({"id":4,"op":"ping","request_id":"has space"})", &req).is_ok());
  EXPECT_FALSE(parse_request(R"({"id":5,"op":"ping","request_id":""})", &req).is_ok());
  const std::string too_long(kMaxRequestIdBytes + 1, 'a');
  EXPECT_FALSE(
      parse_request(R"({"id":6,"op":"ping","request_id":")" + too_long + R"("})", &req)
          .is_ok());
}

TEST(Protocol, AppendRequestIdSplicesFinalKey) {
  std::string line = R"({"id":3,"ok":true,"op":"ping"})";
  append_request_id(&line, "client-7");
  EXPECT_EQ(line, R"({"id":3,"ok":true,"op":"ping","request_id":"client-7"})");

  std::string untouched = R"({"id":4,"ok":true,"op":"ping"})";
  append_request_id(&untouched, "");
  EXPECT_EQ(untouched, R"({"id":4,"ok":true,"op":"ping"})");
}

TEST(ServiceTelemetry, EveryResponseCarriesARequestId) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  BatchService service(session, cfg);
  service.start();

  // Client-supplied id is echoed verbatim.
  EXPECT_TRUE(contains(
      roundtrip(service, R"({"id":1,"op":"ping","request_id":"client-abc"})"),
      R"("request_id":"client-abc")"));

  // Server generates one when the client names none -- including on lines
  // that never parsed.
  EXPECT_TRUE(contains(roundtrip(service, R"({"id":2,"op":"ping"})"), R"("request_id":"r-)"));
  EXPECT_TRUE(contains(roundtrip(service, "not json at all"), R"("request_id":"r-)"));
  EXPECT_TRUE(contains(roundtrip(service, R"({"id":3,"op":"health"})"), R"("request_id":"r-)"));

  service.drain();
}

TEST(ServiceTelemetry, StatsOpReturnsSnapshotWithWindows) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  BatchService service(session, cfg);
  service.start();

  // Run one real evaluation so the service.run_ms window has a sample.
  std::string eval_out;
  service.submit_line(R"({"id":1,"op":"validate","benchmark":"wide-io"})",
                      [&](const std::string& r) { eval_out = r; });
  service.drain();
  ASSERT_TRUE(contains(eval_out, R"("ok":true)")) << eval_out;

  // stats answers inline even after drain (drain-proof like health).
  const std::string stats = roundtrip(service, R"({"id":2,"op":"stats","request_id":"s-1"})");
  const obs::json::Value doc = obs::json::parse(stats);
  EXPECT_TRUE(contains(stats, R"("op":"stats")"));
  EXPECT_TRUE(contains(stats, R"("request_id":"s-1")"));

  const obs::json::Value* totals = doc.find("totals");
  ASSERT_NE(totals, nullptr);
  ASSERT_NE(totals->find("completed"), nullptr);
  EXPECT_GE(totals->find("completed")->as_number(), 1.0);

  ASSERT_NE(doc.find("queue_depth"), nullptr);
  ASSERT_NE(doc.find("in_flight"), nullptr);
  ASSERT_NE(doc.find("uptime_seconds"), nullptr);
  EXPECT_GE(doc.find("uptime_seconds")->as_number(), 0.0);
  ASSERT_NE(doc.find("peak_queue_depth"), nullptr);
  ASSERT_NE(doc.find("peak_in_flight"), nullptr);
  EXPECT_GE(doc.find("peak_in_flight")->as_number(), 1.0);

  const obs::json::Value* windows = doc.find("windows");
  ASSERT_NE(windows, nullptr);
  const obs::json::Value* run_ms = windows->find("service.run_ms");
  ASSERT_NE(run_ms, nullptr) << stats;
  EXPECT_GE(run_ms->find("count")->as_number(), 1.0);
  ASSERT_NE(run_ms->find("p50"), nullptr);
  ASSERT_NE(run_ms->find("p95"), nullptr);
  ASSERT_NE(run_ms->find("p99"), nullptr);
}

TEST(ServiceTelemetry, MetricsOpReturnsPrometheusBody) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  BatchService service(session, cfg);
  service.start();

  const std::string metrics = roundtrip(service, R"({"id":7,"op":"metrics"})");
  EXPECT_TRUE(contains(metrics, R"("op":"metrics")")) << metrics;
  EXPECT_TRUE(contains(metrics, R"("content_type":"text/plain; version=0.0.4")"));
  // The exposition body rides escaped inside the JSON envelope.
  EXPECT_TRUE(contains(metrics, R"(# TYPE pdn3d_service_requests counter)"));
  EXPECT_TRUE(contains(metrics, "pdn3d_service_queue_depth"));
  EXPECT_TRUE(contains(metrics, R"("request_id":"r-)"));

  const obs::json::Value doc = obs::json::parse(metrics);
  const obs::json::Value* body = doc.find("body");
  ASSERT_NE(body, nullptr);
  EXPECT_TRUE(contains(body->as_string(), "# TYPE pdn3d_service_requests counter\n"));

  service.drain();
}

TEST(ServiceTelemetry, SessionBlockRecordsRequestIdsAndPeaks) {
  const api::Session session;
  ServiceConfig cfg;
  cfg.workers = 1;
  BatchService service(session, cfg);
  service.start();

  std::string out;
  service.submit_line(
      R"({"id":1,"op":"validate","benchmark":"wide-io","request_id":"trace-me"})",
      [&](const std::string& r) { out = r; });
  service.drain();
  ASSERT_TRUE(contains(out, R"("request_id":"trace-me")")) << out;

  const obs::json::Value block = service.session_block();
  ASSERT_NE(block.find("uptime_seconds"), nullptr);
  ASSERT_NE(block.find("peak_queue_depth"), nullptr);
  ASSERT_NE(block.find("peak_in_flight"), nullptr);
  EXPECT_GE(block.find("peak_in_flight")->as_number(), 1.0);
  const obs::json::Value* requests = block.find("requests");
  ASSERT_NE(requests, nullptr);
  ASSERT_GE(requests->items().size(), 1u);
  const obs::json::Value* rid = requests->items()[0].find("request_id");
  ASSERT_NE(rid, nullptr);
  EXPECT_EQ(rid->as_string(), "trace-me");
}

}  // namespace
}  // namespace pdn3d::service
