#include "power/power_model.hpp"

#include <gtest/gtest.h>

#include "floorplan/dram_floorplan.hpp"
#include "floorplan/logic_floorplan.hpp"
#include "util/units.hpp"

namespace pdn3d::power {
namespace {

floorplan::DramFloorplanSpec ddr3_spec() {
  floorplan::DramFloorplanSpec s;
  s.width_mm = 6.8;
  s.height_mm = 6.7;
  s.bank_cols = 4;
  s.bank_rows = 2;
  return s;
}

TEST(DiePower, CalibratedToPaperTable5) {
  // The polynomial is calibrated to the paper's published per-die numbers at
  // the reference interleave depth (2 banks).
  const DiePowerSpec spec;
  EXPECT_NEAR(spec.active_die_mw(1.00, 2), 220.5, 1e-9);
  EXPECT_NEAR(spec.active_die_mw(0.50, 2), 175.5, 1e-9);
  EXPECT_NEAR(spec.active_die_mw(0.25, 2), 126.0, 1e-9);
}

TEST(DiePower, MonotoneInActivity) {
  const DiePowerSpec spec;
  double prev = 0.0;
  for (double act = 0.05; act <= 1.0; act += 0.05) {
    const double p = spec.active_die_mw(act, 2);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(DiePower, SingleBankDrawsLessThanPair) {
  const DiePowerSpec spec;
  EXPECT_LT(spec.active_die_mw(1.0, 1), spec.active_die_mw(1.0, 2));
  EXPECT_GT(spec.active_die_mw(1.0, 1), spec.idle_mw);
}

TEST(DiePower, ActivityClamped) {
  const DiePowerSpec spec;
  EXPECT_DOUBLE_EQ(spec.active_die_mw(1.5, 2), spec.active_die_mw(1.0, 2));
  EXPECT_DOUBLE_EQ(spec.active_die_mw(-0.2, 2), spec.active_die_mw(0.0, 2));
}

TEST(DramDiePower, IdleDieSpreadsIdlePowerOnly) {
  const auto fp = floorplan::make_dram_floorplan(ddr3_spec());
  const DiePowerSpec spec;
  const auto blocks = dram_die_power(fp, DieActivity{}, 0.0, spec);
  EXPECT_NEAR(util::to_mW(total_power_w(blocks)), spec.idle_mw, 1e-9);
}

TEST(DramDiePower, ActiveDieTotalMatchesModel) {
  const auto fp = floorplan::make_dram_floorplan(ddr3_spec());
  const DiePowerSpec spec;
  DieActivity act;
  act.active_banks = {0, 1};
  const auto blocks = dram_die_power(fp, act, 1.0, spec);
  EXPECT_NEAR(util::to_mW(total_power_w(blocks)), spec.active_die_mw(1.0, 2), 1e-9);
}

TEST(DramDiePower, ActiveBanksReceiveConcentratedPower) {
  const auto fp = floorplan::make_dram_floorplan(ddr3_spec());
  const DiePowerSpec spec;
  DieActivity act;
  act.active_banks = {0, 1};
  const auto blocks = dram_die_power(fp, act, 1.0, spec);

  double active_bank_power = 0.0;
  for (const auto& bp : blocks) {
    if (bp.block->type == floorplan::BlockType::kBankArray &&
        (bp.block->bank_index == 0 || bp.block->bank_index == 1)) {
      active_bank_power += bp.power_w;
    }
  }
  // Bank share of the activity-dependent power plus their slice of idle.
  EXPECT_GT(util::to_mW(active_bank_power), 0.4 * (spec.active_die_mw(1.0, 2) - spec.idle_mw));
}

TEST(DramDiePower, ScaleMultipliesEverything) {
  const auto fp = floorplan::make_dram_floorplan(ddr3_spec());
  const DiePowerSpec spec;
  DieActivity act;
  act.active_banks = {0, 1};
  const double p1 = total_power_w(dram_die_power(fp, act, 1.0, spec, 1.0));
  const double p2 = total_power_w(dram_die_power(fp, act, 1.0, spec, 2.0));
  EXPECT_NEAR(p2, 2.0 * p1, 1e-12);
}

TEST(LogicPower, TotalsMatchSpec) {
  const auto fp = floorplan::make_t2_floorplan();
  LogicPowerSpec spec;
  spec.total_w = 10.0;
  const auto blocks = logic_die_power(fp, spec);
  EXPECT_NEAR(total_power_w(blocks), 10.0, 1e-9);
}

TEST(LogicPower, CoreShareDominates) {
  const auto fp = floorplan::make_t2_floorplan();
  const LogicPowerSpec spec;
  const auto blocks = logic_die_power(fp, spec);
  double cores = 0.0;
  for (const auto& bp : blocks) {
    if (bp.block->type == floorplan::BlockType::kCore) cores += bp.power_w;
  }
  EXPECT_NEAR(cores, spec.total_w * spec.core_share, 1e-9);
}

}  // namespace
}  // namespace pdn3d::power
