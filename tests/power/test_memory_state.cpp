#include "power/memory_state.hpp"

#include <gtest/gtest.h>

namespace pdn3d::power {
namespace {

floorplan::DramFloorplanSpec ddr3_spec() {
  floorplan::DramFloorplanSpec s;
  s.width_mm = 6.8;
  s.height_mm = 6.7;
  s.bank_cols = 4;
  s.bank_rows = 2;
  return s;
}

TEST(MemoryState, ParsesDefaultState) {
  const auto st = parse_memory_state("0-0-0-2", ddr3_spec());
  ASSERT_EQ(st.die_count(), 4);
  EXPECT_EQ(st.counts(), (std::vector<int>{0, 0, 0, 2}));
  EXPECT_EQ(st.active_die_count(), 1);
  EXPECT_EQ(st.total_active_banks(), 2);
  EXPECT_DOUBLE_EQ(st.io_activity, 1.0);
  // Default location is the worst-case edge column: interleave pair {0, 1}.
  EXPECT_EQ(st.dies[3].active_banks, (std::vector<int>{0, 1}));
}

TEST(MemoryState, LocationLettersSelectColumns) {
  const auto st = parse_memory_state("0-0-2b-2a", ddr3_spec());
  EXPECT_EQ(st.dies[2].active_banks, (std::vector<int>{2, 3}));  // column b = 1
  EXPECT_EQ(st.dies[3].active_banks, (std::vector<int>{0, 1}));  // column a = 0
}

TEST(MemoryState, SharedBandwidthActivityConvention) {
  EXPECT_DOUBLE_EQ(parse_memory_state("2-0-0-0", ddr3_spec()).io_activity, 1.0);
  EXPECT_DOUBLE_EQ(parse_memory_state("0-0-2-2", ddr3_spec()).io_activity, 0.5);
  EXPECT_DOUBLE_EQ(parse_memory_state("2-2-2-2", ddr3_spec()).io_activity, 0.25);
  EXPECT_DOUBLE_EQ(parse_memory_state("0-0-0-0", ddr3_spec()).io_activity, 0.0);
}

TEST(MemoryState, ExplicitActivityOverride) {
  const auto st = parse_memory_state("0-0-0-2", ddr3_spec(), 0.25);
  EXPECT_DOUBLE_EQ(st.io_activity, 0.25);
}

TEST(MemoryState, RoundTripToString) {
  const auto st = parse_memory_state("1-0-2-0", ddr3_spec());
  EXPECT_EQ(st.to_string(), "1-0-2-0");
}

TEST(MemoryState, RejectsMalformedInput) {
  const auto spec = ddr3_spec();
  EXPECT_THROW(parse_memory_state("", spec), std::invalid_argument);
  EXPECT_THROW(parse_memory_state("x-0-0-0", spec), std::invalid_argument);
  EXPECT_THROW(parse_memory_state("2aa-0-0-0", spec), std::invalid_argument);
  EXPECT_THROW(parse_memory_state("0-0-0-2z", spec), std::invalid_argument);  // column 25
  EXPECT_THROW(parse_memory_state("0--0-2", spec), std::invalid_argument);
}

TEST(MemoryState, RejectsTooManyBanks) {
  EXPECT_THROW(parse_memory_state("9-0-0-0", ddr3_spec()), std::invalid_argument);
}

TEST(MemoryState, CountsAboveTwoFillColumnMajor) {
  const auto st = parse_memory_state("4-0-0-0", ddr3_spec());
  EXPECT_EQ(st.dies[0].active_banks, (std::vector<int>{0, 1, 2, 3}));
}

TEST(MemoryState, MakeStateFromCounts) {
  const auto st = make_state_from_counts({0, 1, 0, 2}, ddr3_spec());
  EXPECT_EQ(st.counts(), (std::vector<int>{0, 1, 0, 2}));
  EXPECT_DOUBLE_EQ(st.io_activity, 0.5);
  EXPECT_EQ(st.dies[3].active_banks.size(), 2u);
}

TEST(MemoryState, MakeStateHonorsActivity) {
  const auto st = make_state_from_counts({2, 0, 0, 0}, ddr3_spec(), 0.8);
  EXPECT_DOUBLE_EQ(st.io_activity, 0.8);
}

TEST(MemoryState, ArbitraryDieCount) {
  const auto st = parse_memory_state("1-1", ddr3_spec());
  EXPECT_EQ(st.die_count(), 2);
  EXPECT_DOUBLE_EQ(st.io_activity, 0.5);
}

}  // namespace
}  // namespace pdn3d::power
