#include "dram/bank.hpp"

#include <gtest/gtest.h>

namespace pdn3d::dram {
namespace {

class BankTest : public ::testing::Test {
 protected:
  TimingParams t = ddr3_1600_timing();
  Bank bank{t};
};

TEST_F(BankTest, StartsClosed) {
  EXPECT_EQ(bank.phase(0), Bank::Phase::kClosed);
  EXPECT_TRUE(bank.can_activate(0));
  EXPECT_FALSE(bank.can_read(0, 5));
  EXPECT_FALSE(bank.is_active(0));
}

TEST_F(BankTest, ActivateOpensAfterTrcd) {
  bank.activate(0, 42);
  EXPECT_EQ(bank.phase(0), Bank::Phase::kOpening);
  EXPECT_TRUE(bank.is_active(0));
  EXPECT_EQ(bank.phase(t.tRCD - 1), Bank::Phase::kOpening);
  EXPECT_EQ(bank.phase(t.tRCD), Bank::Phase::kOpen);
  EXPECT_TRUE(bank.can_read(t.tRCD, 42));
  EXPECT_FALSE(bank.can_read(t.tRCD, 43));  // wrong row
}

TEST_F(BankTest, ReadRespectsTccd) {
  bank.activate(0, 1);
  bank.read(t.tRCD);
  EXPECT_FALSE(bank.can_read(t.tRCD + t.tCCD - 1, 1));
  EXPECT_TRUE(bank.can_read(t.tRCD + t.tCCD, 1));
}

TEST_F(BankTest, PrechargeRequiresTrasAndTrtp) {
  bank.activate(0, 1);
  EXPECT_FALSE(bank.can_precharge(t.tRAS - 1));
  EXPECT_TRUE(bank.can_precharge(t.tRAS));
  bank.read(t.tRAS);
  EXPECT_FALSE(bank.can_precharge(t.tRAS + t.tRTP - 1));
  EXPECT_TRUE(bank.can_precharge(t.tRAS + t.tRTP));
}

TEST_F(BankTest, PrechargeClosesAfterTrp) {
  bank.activate(0, 1);
  const Cycle pre = t.tRAS;
  bank.precharge(pre);
  EXPECT_EQ(bank.phase(pre), Bank::Phase::kPrecharging);
  EXPECT_FALSE(bank.is_active(pre));
  EXPECT_FALSE(bank.can_activate(pre + t.tRP - 1));
  EXPECT_TRUE(bank.can_activate(pre + t.tRP));
  EXPECT_EQ(bank.open_row(), -1);
}

TEST_F(BankTest, ReactivationAfterFullCycle) {
  bank.activate(0, 1);
  bank.precharge(t.tRAS);
  const Cycle again = t.tRAS + t.tRP;
  bank.activate(again, 2);
  EXPECT_EQ(bank.phase(again + t.tRCD), Bank::Phase::kOpen);
  EXPECT_EQ(bank.open_row(), 2);
}

TEST_F(BankTest, IllegalCommandsThrow) {
  EXPECT_THROW(bank.read(0), std::logic_error);          // nothing open
  EXPECT_THROW(bank.precharge(0), std::logic_error);     // nothing open
  bank.activate(0, 1);
  EXPECT_THROW(bank.activate(1, 2), std::logic_error);   // already open
  EXPECT_THROW(bank.read(1), std::logic_error);          // before tRCD
  EXPECT_THROW(bank.precharge(1), std::logic_error);     // before tRAS
  bank.read(t.tRCD);
  EXPECT_THROW(bank.read(t.tRCD + 1), std::logic_error); // tCCD violation
}

TEST_F(BankTest, LastActivityTracksReads) {
  bank.activate(0, 1);
  EXPECT_EQ(bank.last_activity(), static_cast<Cycle>(t.tRCD));
  bank.read(t.tRCD + 3);
  EXPECT_EQ(bank.last_activity(), static_cast<Cycle>(t.tRCD + 3));
}

}  // namespace
}  // namespace pdn3d::dram
