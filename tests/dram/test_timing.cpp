#include "dram/timing.hpp"

#include <gtest/gtest.h>

namespace pdn3d::dram {
namespace {

TEST(Timing, Ddr3DefaultsMatchPaper) {
  const TimingParams t = ddr3_1600_timing();
  EXPECT_EQ(t.tRRD, 8);   // Section 5.2: tRRD of 8
  EXPECT_EQ(t.tFAW, 32);  // and tFAW of 32
  EXPECT_EQ(t.burst_length, 8);
  EXPECT_EQ(t.burst_cycles(), 4);  // DDR: 8 beats over 4 clocks
  EXPECT_DOUBLE_EQ(t.tck_ns, 1.25);
}

TEST(Timing, CyclesToMicroseconds) {
  const TimingParams t = ddr3_1600_timing();
  EXPECT_DOUBLE_EQ(t.cycles_to_us(80000), 100.0);
  EXPECT_DOUBLE_EQ(t.cycles_to_us(0), 0.0);
}

TEST(Timing, OrderingInvariants) {
  for (const TimingParams& t : {ddr3_1600_timing(), wide_io_timing(), hmc_timing()}) {
    EXPECT_GT(t.tRAS, t.tRCD);     // a row stays open past its first read
    EXPECT_GE(t.tFAW, 4 * t.tRRD / 2);  // FAW meaningfully tighter than 4x RRD
    EXPECT_GT(t.burst_cycles(), 0);
    EXPECT_GT(t.tck_ns, 0.0);
  }
}

TEST(Timing, WideIoSlowerClock) {
  EXPECT_GT(wide_io_timing().tck_ns, ddr3_1600_timing().tck_ns);
  EXPECT_LT(hmc_timing().tck_ns, ddr3_1600_timing().tck_ns);
}

}  // namespace
}  // namespace pdn3d::dram
