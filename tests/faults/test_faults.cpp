// Deterministic fault injection (src/faults/): the registry's spec grammar,
// the pure-function fault schedule, per-site trigger caps, and the solver
// sites' observable failure modes. Parameterized over every known site so a
// new site cannot ship without the trigger-count contract holding for it.
//
// The registry is process-global; every test configures it explicitly and
// resets it on exit so ordering between tests cannot matter.

#include "faults/faults.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "exec/cancel.hpp"
#include "linalg/cg.hpp"
#include "linalg/coo.hpp"

namespace pdn3d::faults {
namespace {

class FaultsRegistryGuard : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().reset(); }
  void TearDown() override { Registry::instance().reset(); }
};

using FaultsTest = FaultsRegistryGuard;

TEST_F(FaultsTest, UnconfiguredRegistryIsInert) {
  auto& reg = Registry::instance();
  EXPECT_FALSE(reg.enabled());
  EXPECT_FALSE(reg.should_fire("linalg.cg.stall"));
  EXPECT_FALSE(PDN3D_FAULT_POINT("linalg.cg.stall"));
  EXPECT_EQ(reg.triggers("linalg.cg.stall"), 0u);
  EXPECT_TRUE(reg.stats().empty());
}

TEST_F(FaultsTest, EmptySpecDisablesInjection) {
  auto& reg = Registry::instance();
  ASSERT_EQ(reg.configure("linalg.cg.nan=1.0"), "");
  EXPECT_TRUE(reg.enabled());
  ASSERT_EQ(reg.configure(""), "");
  EXPECT_FALSE(reg.enabled());
  EXPECT_FALSE(reg.should_fire("linalg.cg.nan"));
}

TEST_F(FaultsTest, RateOneAlwaysFiresRateZeroNever) {
  auto& reg = Registry::instance();
  ASSERT_EQ(reg.configure("a.site=1.0,b.site=0.0,seed=3"), "");
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(reg.should_fire("a.site"));
    EXPECT_FALSE(reg.should_fire("b.site"));
  }
  EXPECT_EQ(reg.triggers("a.site"), 16u);
  EXPECT_EQ(reg.triggers("b.site"), 0u);
}

TEST_F(FaultsTest, ProbabilisticScheduleReplaysExactly) {
  auto& reg = Registry::instance();
  const auto run = [&reg](const std::string& spec) {
    EXPECT_EQ(reg.configure(spec), "");
    std::vector<bool> decisions;
    decisions.reserve(64);
    for (int i = 0; i < 64; ++i) decisions.push_back(reg.should_fire("x.site"));
    return decisions;
  };
  const auto first = run("x.site=0.5,seed=42");
  const auto replay = run("x.site=0.5,seed=42");
  EXPECT_EQ(first, replay);  // decisions are pure functions of (seed, site, call)
  const auto other_seed = run("x.site=0.5,seed=43");
  EXPECT_NE(first, other_seed);
}

// Every known site obeys the same spec semantics: 1/3 fires on calls 3, 6,
// 9, ... and #2 caps the run at two triggers.
class FaultsEverySite : public ::testing::TestWithParam<std::string_view> {
 protected:
  void SetUp() override { Registry::instance().reset(); }
  void TearDown() override { Registry::instance().reset(); }
};

TEST_P(FaultsEverySite, EveryNthWithCapFiresExactlyTwiceInNineCalls) {
  auto& reg = Registry::instance();
  const std::string site(GetParam());
  ASSERT_EQ(reg.configure(site + "=1/3#2,seed=7"), "");
  std::vector<int> fired_at;
  for (int call = 1; call <= 9; ++call) {
    if (reg.should_fire(site)) fired_at.push_back(call);
  }
  EXPECT_EQ(fired_at, (std::vector<int>{3, 6}));  // 9 blocked by the cap
  EXPECT_EQ(reg.triggers(site), 2u);
  const auto stats = reg.stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].site, site);
  EXPECT_EQ(stats[0].calls, 9u);
  EXPECT_EQ(stats[0].triggers, 2u);
}

INSTANTIATE_TEST_SUITE_P(AllKnownSites, FaultsEverySite, ::testing::ValuesIn(kKnownSites),
                         [](const ::testing::TestParamInfo<std::string_view>& info) {
                           std::string name(info.param);
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

TEST_F(FaultsTest, ParamParsesAndFallsBack) {
  auto& reg = Registry::instance();
  ASSERT_EQ(reg.configure("linalg.cg.stall=1.0:25.5,other.site=1.0"), "");
  EXPECT_DOUBLE_EQ(reg.param("linalg.cg.stall", 50.0), 25.5);
  EXPECT_DOUBLE_EQ(reg.param("other.site", 50.0), 50.0);   // no :param given
  EXPECT_DOUBLE_EQ(reg.param("unknown.site", 50.0), 50.0);
}

TEST_F(FaultsTest, MalformedSpecsRejectedAndPreviousConfigKept) {
  auto& reg = Registry::instance();
  ASSERT_EQ(reg.configure("good.site=1.0"), "");
  EXPECT_NE(reg.configure("nonsense"), "");            // no '='
  EXPECT_NE(reg.configure("x=notanumber"), "");        // bad rate
  EXPECT_NE(reg.configure("x=1.5"), "");               // rate outside [0,1]
  EXPECT_NE(reg.configure("x=2/3"), "");               // only 1/N supported
  EXPECT_NE(reg.configure("x=1/0"), "");               // N >= 1
  EXPECT_NE(reg.configure("x=1/4#abc"), "");           // bad trigger cap
  EXPECT_NE(reg.configure("x=1.0:ms"), "");            // bad param
  EXPECT_NE(reg.configure("seed=minus,x=1.0"), "");    // bad seed
  // Every rejected spec left the previous configuration in force.
  EXPECT_TRUE(reg.enabled());
  EXPECT_TRUE(reg.should_fire("good.site"));
}

TEST_F(FaultsTest, ConfigureFromEnvUnsetDisables) {
  auto& reg = Registry::instance();
  ASSERT_EQ(reg.configure("x.site=1.0"), "");
  ::unsetenv("PDN3D_FAULTS");
  EXPECT_EQ(reg.configure_from_env(), "");
  EXPECT_FALSE(reg.enabled());

  ::setenv("PDN3D_FAULTS", "y.site=1/2#1,seed=9", 1);
  EXPECT_EQ(reg.configure_from_env(), "");
  EXPECT_TRUE(reg.enabled());
  EXPECT_FALSE(reg.should_fire("y.site"));  // call 1
  EXPECT_TRUE(reg.should_fire("y.site"));   // call 2 fires
  ::unsetenv("PDN3D_FAULTS");
}

TEST_F(FaultsTest, MaybeStallSleepsForParamDuration) {
  auto& reg = Registry::instance();
  ASSERT_EQ(reg.configure("s.site=1.0:40"), "");
  const auto t0 = std::chrono::steady_clock::now();
  maybe_stall("s.site", 1000.0);  // :40 overrides the default
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_GE(ms, 35.0);
  EXPECT_LT(ms, 500.0);
}

TEST_F(FaultsTest, MaybeStallInterruptedByCancellation) {
  auto& reg = Registry::instance();
  ASSERT_EQ(reg.configure("s.site=1.0:2000"), "");
  exec::CancelToken token;
  const exec::CancelScope scope(token);
  std::thread canceller([&token] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    token.cancel();
  });
  const auto t0 = std::chrono::steady_clock::now();
  maybe_stall("s.site", 2000.0);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  canceller.join();
  EXPECT_LT(ms, 1500.0);  // returned on cancel, far before the 2 s stall
}

TEST_F(FaultsTest, MaybeThrowAllocThrowsBadAlloc) {
  auto& reg = Registry::instance();
  ASSERT_EQ(reg.configure("irdrop.solve.alloc=1/1"), "");
  EXPECT_THROW(maybe_throw_alloc("irdrop.solve.alloc"), std::bad_alloc);
  reg.reset();
  EXPECT_NO_THROW(maybe_throw_alloc("irdrop.solve.alloc"));
}

// The CG NaN site end to end: the poisoned residual must surface as a
// detected kDivergedNonFinite failure, never as silently-garbage output.
TEST_F(FaultsTest, CgNanSiteSurfacesAsDetectedDivergence) {
  linalg::CooBuilder b(20);
  for (std::size_t i = 0; i + 1 < 20; ++i) b.stamp_conductance(i, i + 1, 2.0);
  b.stamp_to_ground(0, 1.0);
  b.stamp_to_ground(19, 1.0);
  const linalg::Csr a = b.compress();
  std::vector<double> rhs(20, 0.0);
  rhs[10] = 1.0;

  ASSERT_EQ(Registry::instance().configure("linalg.cg.nan=1/1#1"), "");
  const linalg::CgResult poisoned = linalg::solve_cg(a, rhs);
  EXPECT_FALSE(poisoned.converged);
  EXPECT_EQ(poisoned.failure, linalg::CgFailure::kDivergedNonFinite)
      << linalg::to_string(poisoned.failure) << ": " << poisoned.detail;
  EXPECT_EQ(Registry::instance().triggers("linalg.cg.nan"), 1u);

  Registry::instance().reset();
  const linalg::CgResult clean = linalg::solve_cg(a, rhs);
  EXPECT_TRUE(clean.converged);
}

// Cooperative cancellation through the CG inner loop: a pre-cancelled token
// stops the solve at its first poll with the typed kCancelled failure.
TEST_F(FaultsTest, CgHonorsCancellationToken) {
  linalg::CooBuilder b(50);
  for (std::size_t i = 0; i + 1 < 50; ++i) b.stamp_conductance(i, i + 1, 2.0);
  b.stamp_to_ground(0, 1.0);
  b.stamp_to_ground(49, 1.0);
  const linalg::Csr a = b.compress();
  std::vector<double> rhs(50, 0.0);
  rhs[25] = 1.0;

  exec::CancelToken token;
  token.cancel();
  const exec::CancelScope scope(token);
  linalg::CgOptions opts;
  opts.preconditioner = linalg::Preconditioner::kNone;  // force real iterations
  const linalg::CgResult r = linalg::solve_cg(a, rhs, opts);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.failure, linalg::CgFailure::kCancelled) << r.detail;
}

}  // namespace
}  // namespace pdn3d::faults
