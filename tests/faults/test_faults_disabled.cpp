// PDN3D_DISABLE_FAULTS compiles the site macros down to constants in any TU
// that defines it -- this file simulates a build with the option ON and proves
// the macros are inert even against a registry armed at rate 1.0. The macro
// effect is per translation unit, so this coexists with test_faults.cpp in
// the same binary.

#ifndef PDN3D_DISABLE_FAULTS
#define PDN3D_DISABLE_FAULTS 1
#endif

#include "faults/faults.hpp"

#include <gtest/gtest.h>

#include <chrono>

namespace pdn3d::faults {
namespace {

class FaultsDisabledTest : public ::testing::Test {
 protected:
  void SetUp() override { Registry::instance().reset(); }
  void TearDown() override { Registry::instance().reset(); }
};

TEST_F(FaultsDisabledTest, MacrosCompileToNoOpsEvenWhenRegistryArmed) {
  auto& reg = Registry::instance();
  ASSERT_EQ(reg.configure("dead.point=1.0,dead.stall=1.0:5000,dead.alloc=1.0"), "");
  ASSERT_TRUE(reg.enabled());

  EXPECT_FALSE(PDN3D_FAULT_POINT("dead.point"));

  const auto t0 = std::chrono::steady_clock::now();
  PDN3D_FAULT_STALL("dead.stall", 5000.0);
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_LT(ms, 1000.0);  // the 5 s stall never ran

  EXPECT_NO_THROW(PDN3D_FAULT_ALLOC("dead.alloc"));

  // The macros never reached the registry: no calls, no triggers.
  for (const auto& s : reg.stats()) {
    EXPECT_EQ(s.calls, 0u) << s.site;
    EXPECT_EQ(s.triggers, 0u) << s.site;
  }
}

TEST_F(FaultsDisabledTest, RegistryApiStaysLinkableAndFunctional) {
  // Disabling the macros must not take the spec-handling API with it: tools
  // still parse and report on PDN3D_FAULTS even in a hardened build.
  auto& reg = Registry::instance();
  EXPECT_NE(reg.configure("bad spec"), "");
  ASSERT_EQ(reg.configure("x.site=1/2,seed=5"), "");
  EXPECT_FALSE(reg.should_fire("x.site"));  // direct calls still work
  EXPECT_TRUE(reg.should_fire("x.site"));
  EXPECT_EQ(reg.triggers("x.site"), 1u);
}

}  // namespace
}  // namespace pdn3d::faults
