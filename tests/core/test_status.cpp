#include "core/status.hpp"

#include <gtest/gtest.h>

namespace pdn3d::core {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_TRUE(s.message().empty());
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, FactoriesSetCodeAndMessage) {
  const Status a = Status::invalid_argument("bad size");
  EXPECT_FALSE(a.is_ok());
  EXPECT_EQ(a.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(a.message(), "bad size");

  const Status b = Status::input_error("NaN sink");
  EXPECT_EQ(b.code(), StatusCode::kInputError);

  const Status c = Status::numerical_failure("all rungs failed");
  EXPECT_EQ(c.code(), StatusCode::kNumericalFailure);
  // to_string carries both the code name and the message.
  EXPECT_NE(c.to_string().find("numerical"), std::string::npos);
  EXPECT_NE(c.to_string().find("all rungs failed"), std::string::npos);
}

TEST(ValidationReport, EmptyReportIsOk) {
  const ValidationReport r;
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.error_count(), 0u);
  EXPECT_EQ(r.warning_count(), 0u);
  EXPECT_TRUE(r.to_status().is_ok());
}

TEST(ValidationReport, AccumulatesInsteadOfThrowing) {
  ValidationReport r;
  r.add_error("floating-node", "node 3 floats", 3);
  r.add_error("non-positive-conductance", "resistor 0 is -1 ohm");
  r.add_warning("negative-injection", "node 7 injects", 7);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error_count(), 2u);
  EXPECT_EQ(r.warning_count(), 1u);
  ASSERT_EQ(r.issues().size(), 3u);
  EXPECT_EQ(r.issues()[0].node, 3u);
  EXPECT_EQ(r.issues()[1].node, ValidationIssue::kNoNode);
  EXPECT_EQ(r.issues()[2].severity, Severity::kWarning);
}

TEST(ValidationReport, WarningsDoNotFailValidation) {
  ValidationReport r;
  r.add_warning("negative-injection", "odd but legal");
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.to_status().is_ok());
  EXPECT_EQ(r.warning_count(), 1u);
}

TEST(ValidationReport, HasCheckMatchesSlugs) {
  ValidationReport r;
  r.add_error("floating-node", "node 3 floats", 3);
  r.add_warning("negative-injection", "node 7");
  EXPECT_TRUE(r.has_check("floating-node"));
  EXPECT_TRUE(r.has_check("negative-injection"));  // any severity
  EXPECT_FALSE(r.has_check("no-supply-taps"));
}

TEST(ValidationReport, ToStatusSummarizesErrors) {
  ValidationReport r;
  r.add_error("floating-node", "node 3 has no path to any supply tap", 3);
  const Status s = r.to_status();
  EXPECT_EQ(s.code(), StatusCode::kInputError);
  EXPECT_NE(s.message().find("floating-node"), std::string::npos);
}

TEST(ValidationReport, ToStringOneLinePerIssue) {
  ValidationReport r;
  r.add_error("a-check", "first");
  r.add_warning("b-check", "second");
  const std::string text = r.to_string();
  EXPECT_NE(text.find("first"), std::string::npos);
  EXPECT_NE(text.find("second"), std::string::npos);
  EXPECT_NE(text.find("a-check"), std::string::npos);
}

TEST(ValidationReport, MergeAppendsIssues) {
  ValidationReport a;
  a.add_error("x", "one");
  ValidationReport b;
  b.add_warning("y", "two");
  b.add_error("z", "three");
  a.merge(b);
  EXPECT_EQ(a.error_count(), 2u);
  EXPECT_EQ(a.warning_count(), 1u);
  EXPECT_TRUE(a.has_check("y"));
}

TEST(ValidationError, DerivesFromInvalidArgument) {
  ValidationReport r;
  r.add_error("no-supply-taps", "no taps");
  const ValidationError e(r);
  // Pre-existing callers catch std::invalid_argument; the structured report
  // rides along for new callers.
  const std::invalid_argument& base = e;
  EXPECT_NE(std::string(base.what()).find("no-supply-taps"), std::string::npos);
  EXPECT_TRUE(e.report().has_check("no-supply-taps"));
}

TEST(NumericalError, CarriesStatus) {
  const NumericalError e(Status::numerical_failure("ladder exhausted"));
  EXPECT_EQ(e.status().code(), StatusCode::kNumericalFailure);
  EXPECT_NE(std::string(e.what()).find("ladder exhausted"), std::string::npos);
}

}  // namespace
}  // namespace pdn3d::core
