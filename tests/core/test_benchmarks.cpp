#include "core/benchmarks.hpp"

#include <gtest/gtest.h>

namespace pdn3d::core {
namespace {

TEST(Benchmarks, AllFourPresent) {
  const auto all = all_benchmarks();
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0].kind, BenchmarkKind::kStackedDdr3OffChip);
  EXPECT_EQ(all[3].kind, BenchmarkKind::kHmc);
}

TEST(Benchmarks, Table1Specifications) {
  const auto ddr3 = make_benchmark(BenchmarkKind::kStackedDdr3OffChip);
  EXPECT_DOUBLE_EQ(ddr3.stack.dram_fp.width(), 6.8);
  EXPECT_DOUBLE_EQ(ddr3.stack.dram_fp.height(), 6.7);
  EXPECT_EQ(ddr3.stack.dram_fp.bank_count(), 8);
  EXPECT_EQ(ddr3.sim.channels, 1);
  EXPECT_EQ(ddr3.stack.num_dram_dies, 4);

  const auto wio = make_benchmark(BenchmarkKind::kWideIo);
  EXPECT_DOUBLE_EQ(wio.stack.dram_fp.width(), 7.2);
  EXPECT_EQ(wio.stack.dram_fp.bank_count(), 16);
  EXPECT_EQ(wio.sim.channels, 4);
  EXPECT_TRUE(wio.design_space.tc_fixed);
  EXPECT_EQ(wio.design_space.tc_fixed_value, 160);

  const auto hmc = make_benchmark(BenchmarkKind::kHmc);
  EXPECT_EQ(hmc.stack.dram_fp.bank_count(), 32);
  EXPECT_EQ(hmc.sim.channels, 16);
  EXPECT_EQ(hmc.design_space.tc_min, 160);
  EXPECT_EQ(hmc.design_space.tsv_locations.size(), 3u);  // C, E, D
}

TEST(Benchmarks, MountingStylesConsistent) {
  EXPECT_EQ(make_benchmark(BenchmarkKind::kStackedDdr3OffChip).baseline.mounting,
            pdn::Mounting::kOffChip);
  EXPECT_EQ(make_benchmark(BenchmarkKind::kStackedDdr3OnChip).baseline.mounting,
            pdn::Mounting::kOnChip);
  EXPECT_EQ(make_benchmark(BenchmarkKind::kWideIo).baseline.mounting, pdn::Mounting::kOnChip);
  EXPECT_EQ(make_benchmark(BenchmarkKind::kHmc).baseline.mounting, pdn::Mounting::kOnChip);
}

TEST(Benchmarks, BaselinesMatchTable9) {
  for (const auto& b : all_benchmarks()) {
    EXPECT_DOUBLE_EQ(b.baseline.m2_usage, 0.10) << b.name;
    EXPECT_DOUBLE_EQ(b.baseline.m3_usage, 0.20) << b.name;
    EXPECT_EQ(b.baseline.bonding, pdn::BondingStyle::kF2B) << b.name;
    EXPECT_FALSE(b.baseline.wire_bonding) << b.name;
    EXPECT_GT(b.paper_baseline_ir_mv, 0.0) << b.name;
  }
  EXPECT_EQ(make_benchmark(BenchmarkKind::kStackedDdr3OffChip).baseline.tsv_count, 33);
  EXPECT_EQ(make_benchmark(BenchmarkKind::kHmc).baseline.tsv_count, 384);
}

TEST(Benchmarks, WideIoEdgeRequiresRdl) {
  const auto wio = make_benchmark(BenchmarkKind::kWideIo);
  ASSERT_TRUE(static_cast<bool>(wio.design_space.valid));
  opt::DiscreteChoice edge_no_rdl;
  edge_no_rdl.tsv_location = pdn::TsvLocation::kEdge;
  edge_no_rdl.rdl = pdn::RdlMode::kNone;
  EXPECT_FALSE(wio.design_space.valid(edge_no_rdl));
  edge_no_rdl.rdl = pdn::RdlMode::kBottomOnly;
  EXPECT_TRUE(wio.design_space.valid(edge_no_rdl));
}

TEST(Benchmarks, FloorplansLegal) {
  for (const auto& b : all_benchmarks()) {
    EXPECT_TRUE(b.stack.dram_fp.is_legal()) << b.name;
    EXPECT_TRUE(b.stack.logic_fp.is_legal()) << b.name;
  }
}

TEST(Benchmarks, Names) {
  EXPECT_EQ(to_string(BenchmarkKind::kWideIo), "wide-io");
  EXPECT_EQ(make_benchmark(BenchmarkKind::kHmc).name, "HMC");
}

}  // namespace
}  // namespace pdn3d::core
