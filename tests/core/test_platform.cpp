#include "core/platform.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace pdn3d::core {
namespace {

Platform& off_chip_platform() {
  static Platform p(make_benchmark(BenchmarkKind::kStackedDdr3OffChip));
  return p;
}

TEST(Platform, AnalyzeDefaultState) {
  auto& p = off_chip_platform();
  const auto r = p.analyze(p.benchmark().baseline, "0-0-0-2");
  EXPECT_GT(r.dram_max_mv, 10.0);
  EXPECT_LT(r.dram_max_mv, 60.0);
}

TEST(Platform, MeasureMatchesAnalyze) {
  auto& p = off_chip_platform();
  const auto& bench = p.benchmark();
  const double via_measure = p.measure_ir_mv(bench.baseline);
  const double via_analyze =
      p.analyze(bench.baseline, bench.default_state, bench.default_io_activity).dram_max_mv;
  // measure_ir_mv runs one-shot PCG; analyze uses the cached banded direct
  // factorization -- identical up to solver tolerance.
  EXPECT_NEAR(via_measure, via_analyze, 1e-4);
}

TEST(Platform, CacheReusesDesigns) {
  Platform p(make_benchmark(BenchmarkKind::kStackedDdr3OffChip));
  const auto base = p.benchmark().baseline;
  (void)p.analyze(base, "0-0-0-2");
  const auto n1 = p.cache_size();
  (void)p.analyze(base, "2-0-0-0");
  EXPECT_EQ(p.cache_size(), n1);

  pdn::PdnConfig other = base;
  other.tsv_count = 64;
  (void)p.analyze(other, "0-0-0-2");
  EXPECT_EQ(p.cache_size(), n1 + 1);
}

TEST(Platform, MeasureDoesNotGrowCache) {
  Platform p(make_benchmark(BenchmarkKind::kStackedDdr3OffChip));
  pdn::PdnConfig cfg = p.benchmark().baseline;
  cfg.tsv_count = 99;
  (void)p.measure_ir_mv(cfg);
  EXPECT_EQ(p.cache_size(), 0u);
}

TEST(Platform, CacheMetricsCountHitsMissesInserts) {
  auto& hits = obs::counter("platform.design_cache_hits");
  auto& misses = obs::counter("platform.design_cache_misses");
  auto& inserts = obs::counter("platform.design_cache_inserts");

  Platform p(make_benchmark(BenchmarkKind::kStackedDdr3OffChip));
  const auto base = p.benchmark().baseline;

  const auto h0 = hits.value(), m0 = misses.value(), i0 = inserts.value();
  (void)p.analyze(base, "0-0-0-2");  // cold: miss + insert
  EXPECT_EQ(hits.value(), h0);
  EXPECT_EQ(misses.value(), m0 + 1);
  EXPECT_EQ(inserts.value(), i0 + 1);

  (void)p.analyze(base, "2-0-0-0");  // warm: hit, no insert
  EXPECT_EQ(hits.value(), h0 + 1);
  EXPECT_EQ(misses.value(), m0 + 1);
  EXPECT_EQ(inserts.value(), i0 + 1);
}

TEST(ConcurrentPlatformCache, ParallelCheckoutBuildsEachDesignOnce) {
  // Many threads race to check out the same two designs. The shared_mutex
  // cache must end with exactly two entries, every thread must see a fully
  // built design (no partially-published state), and the insert counter must
  // show duplicate builds were discarded, not cached twice.
  auto& inserts = obs::counter("platform.design_cache_inserts");
  Platform p(make_benchmark(BenchmarkKind::kStackedDdr3OffChip));
  const auto base = p.benchmark().baseline;
  pdn::PdnConfig other = base;
  other.tsv_count = 64;

  const auto i0 = inserts.value();
  const double expected_base = p.analyze(base, "0-0-0-2").dram_max_mv;
  const double expected_other = p.analyze(other, "0-0-0-2").dram_max_mv;

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const auto& cfg = (t % 2 == 0) ? base : other;
      const double expected = (t % 2 == 0) ? expected_base : expected_other;
      for (int rep = 0; rep < 3; ++rep) {
        if (p.analyze(cfg, "0-0-0-2").dram_max_mv != expected) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(p.cache_size(), 2u);
  EXPECT_EQ(inserts.value(), i0 + 2);  // losers' duplicate builds discarded
}

TEST(ConcurrentPlatformCache, ParallelLutAccessReturnsOneInstance) {
  Platform p(make_benchmark(BenchmarkKind::kStackedDdr3OffChip));
  const auto base = p.benchmark().baseline;
  std::vector<const irdrop::IrLut*> seen(6, nullptr);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < seen.size(); ++t) {
    threads.emplace_back([&, t] { seen[t] = &p.lut(base); });
  }
  for (auto& th : threads) th.join();
  for (const auto* lut : seen) EXPECT_EQ(lut, seen[0]);
  EXPECT_EQ(seen[0]->size(), 81u);
}

TEST(Platform, LutIsCachedPerConfig) {
  auto& p = off_chip_platform();
  const auto& lut1 = p.lut(p.benchmark().baseline);
  const auto& lut2 = p.lut(p.benchmark().baseline);
  EXPECT_EQ(&lut1, &lut2);
  EXPECT_EQ(lut1.size(), 81u);
}

TEST(Platform, SimulatePoliciesEndToEnd) {
  auto& p = off_chip_platform();
  const auto base = p.benchmark().baseline;
  const auto std_r = p.simulate(base, memctrl::standard_policy());
  const auto distr = p.simulate(base, memctrl::ir_aware_policy(24.0,
                                                               memctrl::SchedulingKind::kDistR));
  EXPECT_TRUE(std_r.feasible);
  EXPECT_TRUE(distr.feasible);
  EXPECT_EQ(std_r.reads, p.benchmark().workload.num_requests);
  // The paper's headline: the IR-aware policy is faster *and* quieter.
  EXPECT_LT(distr.runtime_us, std_r.runtime_us);
  EXPECT_LT(distr.max_ir_mv, std_r.max_ir_mv);
}

TEST(Platform, BuildInfoExposed) {
  auto& p = off_chip_platform();
  const auto info = p.build_info(p.benchmark().baseline);
  EXPECT_EQ(info.tsvs_per_interface, 33);
  EXPECT_GT(info.node_count, 1000u);
}

TEST(Platform, RailPairCombinesBothNets) {
  auto& p = off_chip_platform();
  const auto base = p.benchmark().baseline;
  const auto state = p.parse_state("0-0-0-2");
  const auto symmetric = p.analyze_rail_pair(base, state);
  // A mirrored VSS grid sees the same drop; the supply window loses both.
  EXPECT_NEAR(symmetric.combined_worst_mv, 2.0 * symmetric.vdd.dram_max_mv, 1e-9);
  EXPECT_NEAR(symmetric.vss.dram_max_mv, symmetric.vdd.dram_max_mv, 1e-9);

  // A skinnier ground grid bounces harder.
  const auto skewed = p.analyze_rail_pair(base, state, 0.6);
  EXPECT_GT(skewed.vss.dram_max_mv, skewed.vdd.dram_max_mv);
  EXPECT_GT(skewed.combined_worst_mv, symmetric.combined_worst_mv);

  EXPECT_THROW(p.analyze_rail_pair(base, state, 0.0), std::invalid_argument);
}

TEST(Platform, ParseStateUsesBenchmarkGeometry) {
  auto& p = off_chip_platform();
  const auto st = p.parse_state("0-0-2d-0");
  EXPECT_EQ(st.dies[2].active_banks, (std::vector<int>{6, 7}));  // column d = 3
}

}  // namespace
}  // namespace pdn3d::core
