#include "fit/regression.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace pdn3d::fit {
namespace {

/// Synthetic ground truth with the same structure as the physical model.
double synthetic_ir(const DesignVars& v) {
  return 3.0 + 1.2 / v.m2 + 0.8 / v.m3 + 40.0 / v.tc + 0.05 / (v.m2 * v.m3);
}

std::vector<Sample> sample_grid() {
  std::vector<Sample> out;
  for (double m2 : {0.10, 0.15, 0.20}) {
    for (double m3 : {0.10, 0.25, 0.40}) {
      for (double tc : {15.0, 80.0, 240.0, 480.0}) {
        Sample s;
        s.vars = {m2, m3, tc};
        s.ir_mv = synthetic_ir(s.vars);
        out.push_back(s);
      }
    }
  }
  return out;
}

TEST(IrModel, FitsStructuredDataExactly) {
  const auto samples = sample_grid();
  const IrModel m = IrModel::fit(samples);
  EXPECT_LT(m.rmse(), 1e-6);
  EXPECT_GT(m.r_squared(), 0.999999);
  // Prediction at an unseen interior point.
  const DesignVars v{0.17, 0.3, 120.0};
  EXPECT_NEAR(m.predict(v), synthetic_ir(v), 1e-6);
}

TEST(IrModel, PaperQualityOnNoisyData) {
  // The paper reports RMSE < 0.135 and R^2 > 0.999 on real R-Mesh samples;
  // with small noise the fit must stay in that class.
  util::Rng rng(5);
  auto samples = sample_grid();
  for (auto& s : samples) s.ir_mv += (rng.next_double() - 0.5) * 0.1;
  const IrModel m = IrModel::fit(samples);
  EXPECT_LT(m.rmse(), 0.135);
  EXPECT_GT(m.r_squared(), 0.999);
}

TEST(IrModel, NotEnoughSamplesThrows) {
  std::vector<Sample> few(3);
  EXPECT_THROW(IrModel::fit(few), std::invalid_argument);
}

TEST(IrModel, PredictBeforeFitThrows) {
  IrModel m;
  EXPECT_THROW(m.predict(DesignVars{}), std::logic_error);
}

TEST(IrModel, HandlesFixedTcWithoutBlowingUp) {
  // Wide I/O pins TC at 160, making the TC features collinear with the
  // constant; the ridge term must keep the fit finite and accurate.
  std::vector<Sample> samples;
  for (double m2 : {0.10, 0.14, 0.17, 0.20}) {
    for (double m3 : {0.10, 0.20, 0.30, 0.40}) {
      Sample s;
      s.vars = {m2, m3, 160.0};
      s.ir_mv = synthetic_ir(s.vars);
      samples.push_back(s);
    }
  }
  const IrModel m = IrModel::fit(samples);
  EXPECT_LT(m.rmse(), 1e-3);
  const DesignVars v{0.12, 0.35, 160.0};
  EXPECT_NEAR(m.predict(v), synthetic_ir(v), 0.01);
}

TEST(Features, CountMatchesVector) {
  EXPECT_EQ(ir_features(DesignVars{}).size(), ir_feature_count());
  EXPECT_EQ(ir_feature_names().size(), ir_feature_count());
}

TEST(Features, ReciprocalStructure) {
  const auto f1 = ir_features({0.1, 0.2, 100.0});
  const auto f2 = ir_features({0.2, 0.2, 100.0});
  EXPECT_DOUBLE_EQ(f1[0], 1.0);
  EXPECT_DOUBLE_EQ(f1[1], 2.0 * f2[1]);  // 1/m2 halves when m2 doubles
}

}  // namespace
}  // namespace pdn3d::fit
