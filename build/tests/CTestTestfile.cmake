# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_tech[1]_include.cmake")
include("/root/repo/build/tests/test_floorplan[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_pdn[1]_include.cmake")
include("/root/repo/build/tests/test_irdrop[1]_include.cmake")
include("/root/repo/build/tests/test_dram[1]_include.cmake")
include("/root/repo/build/tests/test_memctrl[1]_include.cmake")
include("/root/repo/build/tests/test_cost[1]_include.cmake")
include("/root/repo/build/tests/test_fit[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_io[1]_include.cmake")
include("/root/repo/build/tests/test_transient[1]_include.cmake")
