
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/memctrl/test_controller.cpp" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_controller.cpp.o" "gcc" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_controller.cpp.o.d"
  "/root/repo/tests/memctrl/test_controller_fuzz.cpp" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_controller_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_controller_fuzz.cpp.o.d"
  "/root/repo/tests/memctrl/test_policy.cpp" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_policy.cpp.o" "gcc" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_policy.cpp.o.d"
  "/root/repo/tests/memctrl/test_trace.cpp" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_trace.cpp.o" "gcc" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_trace.cpp.o.d"
  "/root/repo/tests/memctrl/test_workload.cpp" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_workload.cpp.o" "gcc" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_workload.cpp.o.d"
  "/root/repo/tests/memctrl/test_writes_refresh.cpp" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_writes_refresh.cpp.o" "gcc" "tests/CMakeFiles/test_memctrl.dir/memctrl/test_writes_refresh.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdn3d.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
