# Empty compiler generated dependencies file for test_memctrl.
# This may be replaced when dependencies are built.
