file(REMOVE_RECURSE
  "CMakeFiles/test_memctrl.dir/memctrl/test_controller.cpp.o"
  "CMakeFiles/test_memctrl.dir/memctrl/test_controller.cpp.o.d"
  "CMakeFiles/test_memctrl.dir/memctrl/test_controller_fuzz.cpp.o"
  "CMakeFiles/test_memctrl.dir/memctrl/test_controller_fuzz.cpp.o.d"
  "CMakeFiles/test_memctrl.dir/memctrl/test_policy.cpp.o"
  "CMakeFiles/test_memctrl.dir/memctrl/test_policy.cpp.o.d"
  "CMakeFiles/test_memctrl.dir/memctrl/test_trace.cpp.o"
  "CMakeFiles/test_memctrl.dir/memctrl/test_trace.cpp.o.d"
  "CMakeFiles/test_memctrl.dir/memctrl/test_workload.cpp.o"
  "CMakeFiles/test_memctrl.dir/memctrl/test_workload.cpp.o.d"
  "CMakeFiles/test_memctrl.dir/memctrl/test_writes_refresh.cpp.o"
  "CMakeFiles/test_memctrl.dir/memctrl/test_writes_refresh.cpp.o.d"
  "test_memctrl"
  "test_memctrl.pdb"
  "test_memctrl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
