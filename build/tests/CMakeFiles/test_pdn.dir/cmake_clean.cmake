file(REMOVE_RECURSE
  "CMakeFiles/test_pdn.dir/pdn/test_builder_combos.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/test_builder_combos.cpp.o.d"
  "CMakeFiles/test_pdn.dir/pdn/test_layer_grid.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/test_layer_grid.cpp.o.d"
  "CMakeFiles/test_pdn.dir/pdn/test_pdn_config.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/test_pdn_config.cpp.o.d"
  "CMakeFiles/test_pdn.dir/pdn/test_stack_builder.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/test_stack_builder.cpp.o.d"
  "CMakeFiles/test_pdn.dir/pdn/test_tsv_planner.cpp.o"
  "CMakeFiles/test_pdn.dir/pdn/test_tsv_planner.cpp.o.d"
  "test_pdn"
  "test_pdn.pdb"
  "test_pdn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
