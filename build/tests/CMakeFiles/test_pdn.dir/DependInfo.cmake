
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/pdn/test_builder_combos.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/test_builder_combos.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/test_builder_combos.cpp.o.d"
  "/root/repo/tests/pdn/test_layer_grid.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/test_layer_grid.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/test_layer_grid.cpp.o.d"
  "/root/repo/tests/pdn/test_pdn_config.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/test_pdn_config.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/test_pdn_config.cpp.o.d"
  "/root/repo/tests/pdn/test_stack_builder.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/test_stack_builder.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/test_stack_builder.cpp.o.d"
  "/root/repo/tests/pdn/test_tsv_planner.cpp" "tests/CMakeFiles/test_pdn.dir/pdn/test_tsv_planner.cpp.o" "gcc" "tests/CMakeFiles/test_pdn.dir/pdn/test_tsv_planner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdn3d.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
