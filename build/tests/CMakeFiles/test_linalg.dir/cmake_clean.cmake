file(REMOVE_RECURSE
  "CMakeFiles/test_linalg.dir/linalg/test_banded.cpp.o"
  "CMakeFiles/test_linalg.dir/linalg/test_banded.cpp.o.d"
  "CMakeFiles/test_linalg.dir/linalg/test_cg.cpp.o"
  "CMakeFiles/test_linalg.dir/linalg/test_cg.cpp.o.d"
  "CMakeFiles/test_linalg.dir/linalg/test_coo_csr.cpp.o"
  "CMakeFiles/test_linalg.dir/linalg/test_coo_csr.cpp.o.d"
  "CMakeFiles/test_linalg.dir/linalg/test_dense.cpp.o"
  "CMakeFiles/test_linalg.dir/linalg/test_dense.cpp.o.d"
  "CMakeFiles/test_linalg.dir/linalg/test_ichol.cpp.o"
  "CMakeFiles/test_linalg.dir/linalg/test_ichol.cpp.o.d"
  "CMakeFiles/test_linalg.dir/linalg/test_least_squares.cpp.o"
  "CMakeFiles/test_linalg.dir/linalg/test_least_squares.cpp.o.d"
  "test_linalg"
  "test_linalg.pdb"
  "test_linalg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
