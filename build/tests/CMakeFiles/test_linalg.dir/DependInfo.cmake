
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/linalg/test_banded.cpp" "tests/CMakeFiles/test_linalg.dir/linalg/test_banded.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/linalg/test_banded.cpp.o.d"
  "/root/repo/tests/linalg/test_cg.cpp" "tests/CMakeFiles/test_linalg.dir/linalg/test_cg.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/linalg/test_cg.cpp.o.d"
  "/root/repo/tests/linalg/test_coo_csr.cpp" "tests/CMakeFiles/test_linalg.dir/linalg/test_coo_csr.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/linalg/test_coo_csr.cpp.o.d"
  "/root/repo/tests/linalg/test_dense.cpp" "tests/CMakeFiles/test_linalg.dir/linalg/test_dense.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/linalg/test_dense.cpp.o.d"
  "/root/repo/tests/linalg/test_ichol.cpp" "tests/CMakeFiles/test_linalg.dir/linalg/test_ichol.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/linalg/test_ichol.cpp.o.d"
  "/root/repo/tests/linalg/test_least_squares.cpp" "tests/CMakeFiles/test_linalg.dir/linalg/test_least_squares.cpp.o" "gcc" "tests/CMakeFiles/test_linalg.dir/linalg/test_least_squares.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/pdn3d.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
