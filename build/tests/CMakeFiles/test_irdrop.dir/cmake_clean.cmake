file(REMOVE_RECURSE
  "CMakeFiles/test_irdrop.dir/irdrop/test_analysis.cpp.o"
  "CMakeFiles/test_irdrop.dir/irdrop/test_analysis.cpp.o.d"
  "CMakeFiles/test_irdrop.dir/irdrop/test_crowding.cpp.o"
  "CMakeFiles/test_irdrop.dir/irdrop/test_crowding.cpp.o.d"
  "CMakeFiles/test_irdrop.dir/irdrop/test_lut.cpp.o"
  "CMakeFiles/test_irdrop.dir/irdrop/test_lut.cpp.o.d"
  "CMakeFiles/test_irdrop.dir/irdrop/test_montecarlo.cpp.o"
  "CMakeFiles/test_irdrop.dir/irdrop/test_montecarlo.cpp.o.d"
  "CMakeFiles/test_irdrop.dir/irdrop/test_solver.cpp.o"
  "CMakeFiles/test_irdrop.dir/irdrop/test_solver.cpp.o.d"
  "test_irdrop"
  "test_irdrop.pdb"
  "test_irdrop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_irdrop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
