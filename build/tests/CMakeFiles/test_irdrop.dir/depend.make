# Empty dependencies file for test_irdrop.
# This may be replaced when dependencies are built.
