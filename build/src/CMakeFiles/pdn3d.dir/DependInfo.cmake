
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/benchmarks.cpp" "src/CMakeFiles/pdn3d.dir/core/benchmarks.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/core/benchmarks.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/CMakeFiles/pdn3d.dir/core/platform.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/core/platform.cpp.o.d"
  "/root/repo/src/cost/cost_model.cpp" "src/CMakeFiles/pdn3d.dir/cost/cost_model.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/cost/cost_model.cpp.o.d"
  "/root/repo/src/dram/bank.cpp" "src/CMakeFiles/pdn3d.dir/dram/bank.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/dram/bank.cpp.o.d"
  "/root/repo/src/fit/features.cpp" "src/CMakeFiles/pdn3d.dir/fit/features.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/fit/features.cpp.o.d"
  "/root/repo/src/fit/regression.cpp" "src/CMakeFiles/pdn3d.dir/fit/regression.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/fit/regression.cpp.o.d"
  "/root/repo/src/floorplan/block.cpp" "src/CMakeFiles/pdn3d.dir/floorplan/block.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/floorplan/block.cpp.o.d"
  "/root/repo/src/floorplan/dram_floorplan.cpp" "src/CMakeFiles/pdn3d.dir/floorplan/dram_floorplan.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/floorplan/dram_floorplan.cpp.o.d"
  "/root/repo/src/floorplan/floorplan.cpp" "src/CMakeFiles/pdn3d.dir/floorplan/floorplan.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/floorplan/floorplan.cpp.o.d"
  "/root/repo/src/floorplan/logic_floorplan.cpp" "src/CMakeFiles/pdn3d.dir/floorplan/logic_floorplan.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/floorplan/logic_floorplan.cpp.o.d"
  "/root/repo/src/io/floorplan_writer.cpp" "src/CMakeFiles/pdn3d.dir/io/floorplan_writer.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/io/floorplan_writer.cpp.o.d"
  "/root/repo/src/io/ir_map_writer.cpp" "src/CMakeFiles/pdn3d.dir/io/ir_map_writer.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/io/ir_map_writer.cpp.o.d"
  "/root/repo/src/io/spice_writer.cpp" "src/CMakeFiles/pdn3d.dir/io/spice_writer.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/io/spice_writer.cpp.o.d"
  "/root/repo/src/irdrop/analysis.cpp" "src/CMakeFiles/pdn3d.dir/irdrop/analysis.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/irdrop/analysis.cpp.o.d"
  "/root/repo/src/irdrop/crowding.cpp" "src/CMakeFiles/pdn3d.dir/irdrop/crowding.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/irdrop/crowding.cpp.o.d"
  "/root/repo/src/irdrop/lut.cpp" "src/CMakeFiles/pdn3d.dir/irdrop/lut.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/irdrop/lut.cpp.o.d"
  "/root/repo/src/irdrop/montecarlo.cpp" "src/CMakeFiles/pdn3d.dir/irdrop/montecarlo.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/irdrop/montecarlo.cpp.o.d"
  "/root/repo/src/irdrop/solver.cpp" "src/CMakeFiles/pdn3d.dir/irdrop/solver.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/irdrop/solver.cpp.o.d"
  "/root/repo/src/linalg/banded.cpp" "src/CMakeFiles/pdn3d.dir/linalg/banded.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/linalg/banded.cpp.o.d"
  "/root/repo/src/linalg/cg.cpp" "src/CMakeFiles/pdn3d.dir/linalg/cg.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/linalg/cg.cpp.o.d"
  "/root/repo/src/linalg/coo.cpp" "src/CMakeFiles/pdn3d.dir/linalg/coo.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/linalg/coo.cpp.o.d"
  "/root/repo/src/linalg/csr.cpp" "src/CMakeFiles/pdn3d.dir/linalg/csr.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/linalg/csr.cpp.o.d"
  "/root/repo/src/linalg/dense.cpp" "src/CMakeFiles/pdn3d.dir/linalg/dense.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/linalg/dense.cpp.o.d"
  "/root/repo/src/linalg/ichol.cpp" "src/CMakeFiles/pdn3d.dir/linalg/ichol.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/linalg/ichol.cpp.o.d"
  "/root/repo/src/linalg/least_squares.cpp" "src/CMakeFiles/pdn3d.dir/linalg/least_squares.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/linalg/least_squares.cpp.o.d"
  "/root/repo/src/linalg/reorder.cpp" "src/CMakeFiles/pdn3d.dir/linalg/reorder.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/linalg/reorder.cpp.o.d"
  "/root/repo/src/memctrl/controller.cpp" "src/CMakeFiles/pdn3d.dir/memctrl/controller.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/memctrl/controller.cpp.o.d"
  "/root/repo/src/memctrl/policy.cpp" "src/CMakeFiles/pdn3d.dir/memctrl/policy.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/memctrl/policy.cpp.o.d"
  "/root/repo/src/memctrl/trace.cpp" "src/CMakeFiles/pdn3d.dir/memctrl/trace.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/memctrl/trace.cpp.o.d"
  "/root/repo/src/memctrl/workload.cpp" "src/CMakeFiles/pdn3d.dir/memctrl/workload.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/memctrl/workload.cpp.o.d"
  "/root/repo/src/opt/cooptimizer.cpp" "src/CMakeFiles/pdn3d.dir/opt/cooptimizer.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/opt/cooptimizer.cpp.o.d"
  "/root/repo/src/opt/design_space.cpp" "src/CMakeFiles/pdn3d.dir/opt/design_space.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/opt/design_space.cpp.o.d"
  "/root/repo/src/opt/pareto.cpp" "src/CMakeFiles/pdn3d.dir/opt/pareto.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/opt/pareto.cpp.o.d"
  "/root/repo/src/pdn/layer_grid.cpp" "src/CMakeFiles/pdn3d.dir/pdn/layer_grid.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/pdn/layer_grid.cpp.o.d"
  "/root/repo/src/pdn/pdn_config.cpp" "src/CMakeFiles/pdn3d.dir/pdn/pdn_config.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/pdn/pdn_config.cpp.o.d"
  "/root/repo/src/pdn/stack_builder.cpp" "src/CMakeFiles/pdn3d.dir/pdn/stack_builder.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/pdn/stack_builder.cpp.o.d"
  "/root/repo/src/pdn/stack_model.cpp" "src/CMakeFiles/pdn3d.dir/pdn/stack_model.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/pdn/stack_model.cpp.o.d"
  "/root/repo/src/pdn/tsv_planner.cpp" "src/CMakeFiles/pdn3d.dir/pdn/tsv_planner.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/pdn/tsv_planner.cpp.o.d"
  "/root/repo/src/power/memory_state.cpp" "src/CMakeFiles/pdn3d.dir/power/memory_state.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/power/memory_state.cpp.o.d"
  "/root/repo/src/power/power_model.cpp" "src/CMakeFiles/pdn3d.dir/power/power_model.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/power/power_model.cpp.o.d"
  "/root/repo/src/tech/presets.cpp" "src/CMakeFiles/pdn3d.dir/tech/presets.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/tech/presets.cpp.o.d"
  "/root/repo/src/tech/tech_file.cpp" "src/CMakeFiles/pdn3d.dir/tech/tech_file.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/tech/tech_file.cpp.o.d"
  "/root/repo/src/tech/technology.cpp" "src/CMakeFiles/pdn3d.dir/tech/technology.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/tech/technology.cpp.o.d"
  "/root/repo/src/transient/decap.cpp" "src/CMakeFiles/pdn3d.dir/transient/decap.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/transient/decap.cpp.o.d"
  "/root/repo/src/transient/simulator.cpp" "src/CMakeFiles/pdn3d.dir/transient/simulator.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/transient/simulator.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/pdn3d.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/pdn3d.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/pdn3d.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/string_util.cpp" "src/CMakeFiles/pdn3d.dir/util/string_util.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/util/string_util.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/pdn3d.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/util/table.cpp.o.d"
  "/root/repo/src/util/timer.cpp" "src/CMakeFiles/pdn3d.dir/util/timer.cpp.o" "gcc" "src/CMakeFiles/pdn3d.dir/util/timer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
