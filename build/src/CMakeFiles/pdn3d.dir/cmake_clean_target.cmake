file(REMOVE_RECURSE
  "libpdn3d.a"
)
