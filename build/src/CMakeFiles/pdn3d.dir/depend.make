# Empty dependencies file for pdn3d.
# This may be replaced when dependencies are built.
