# CMake generated Testfile for 
# Source directory: /root/repo/src/irdrop
# Build directory: /root/repo/build/src/irdrop
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
