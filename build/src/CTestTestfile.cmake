# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("linalg")
subdirs("tech")
subdirs("floorplan")
subdirs("power")
subdirs("pdn")
subdirs("irdrop")
subdirs("dram")
subdirs("memctrl")
subdirs("cost")
subdirs("fit")
subdirs("opt")
subdirs("core")
subdirs("io")
subdirs("transient")
