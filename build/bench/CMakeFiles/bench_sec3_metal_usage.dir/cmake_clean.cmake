file(REMOVE_RECURSE
  "CMakeFiles/bench_sec3_metal_usage.dir/bench_sec3_metal_usage.cpp.o"
  "CMakeFiles/bench_sec3_metal_usage.dir/bench_sec3_metal_usage.cpp.o.d"
  "bench_sec3_metal_usage"
  "bench_sec3_metal_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_metal_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
