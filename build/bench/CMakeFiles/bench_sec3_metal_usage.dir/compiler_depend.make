# Empty compiler generated dependencies file for bench_sec3_metal_usage.
# This may be replaced when dependencies are built.
