file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_cooptimization.dir/bench_table9_cooptimization.cpp.o"
  "CMakeFiles/bench_table9_cooptimization.dir/bench_table9_cooptimization.cpp.o.d"
  "bench_table9_cooptimization"
  "bench_table9_cooptimization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_cooptimization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
