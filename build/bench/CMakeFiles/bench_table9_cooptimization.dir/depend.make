# Empty dependencies file for bench_table9_cooptimization.
# This may be replaced when dependencies are built.
