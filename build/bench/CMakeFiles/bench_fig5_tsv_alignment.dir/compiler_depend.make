# Empty compiler generated dependencies file for bench_fig5_tsv_alignment.
# This may be replaced when dependencies are built.
