# Empty dependencies file for bench_table6_policies.
# This may be replaced when dependencies are built.
