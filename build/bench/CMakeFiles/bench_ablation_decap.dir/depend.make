# Empty dependencies file for bench_ablation_decap.
# This may be replaced when dependencies are built.
