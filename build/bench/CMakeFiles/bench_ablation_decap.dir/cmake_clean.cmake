file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_decap.dir/bench_ablation_decap.cpp.o"
  "CMakeFiles/bench_ablation_decap.dir/bench_ablation_decap.cpp.o.d"
  "bench_ablation_decap"
  "bench_ablation_decap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_decap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
