file(REMOVE_RECURSE
  "CMakeFiles/bench_regression_quality.dir/bench_regression_quality.cpp.o"
  "CMakeFiles/bench_regression_quality.dir/bench_regression_quality.cpp.o.d"
  "bench_regression_quality"
  "bench_regression_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regression_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
