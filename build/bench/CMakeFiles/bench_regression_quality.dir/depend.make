# Empty dependencies file for bench_regression_quality.
# This may be replaced when dependencies are built.
