# Empty dependencies file for bench_table2_tsv_rdl.
# This may be replaced when dependencies are built.
