file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_tsv_rdl.dir/bench_table2_tsv_rdl.cpp.o"
  "CMakeFiles/bench_table2_tsv_rdl.dir/bench_table2_tsv_rdl.cpp.o.d"
  "bench_table2_tsv_rdl"
  "bench_table2_tsv_rdl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tsv_rdl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
