file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_montecarlo.dir/bench_ext_montecarlo.cpp.o"
  "CMakeFiles/bench_ext_montecarlo.dir/bench_ext_montecarlo.cpp.o.d"
  "bench_ext_montecarlo"
  "bench_ext_montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
