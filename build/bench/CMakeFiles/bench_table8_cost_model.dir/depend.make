# Empty dependencies file for bench_table8_cost_model.
# This may be replaced when dependencies are built.
