# Empty dependencies file for bench_table3_dedicated_wirebond.
# This may be replaced when dependencies are built.
