file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_dedicated_wirebond.dir/bench_table3_dedicated_wirebond.cpp.o"
  "CMakeFiles/bench_table3_dedicated_wirebond.dir/bench_table3_dedicated_wirebond.cpp.o.d"
  "bench_table3_dedicated_wirebond"
  "bench_table3_dedicated_wirebond.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_dedicated_wirebond.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
