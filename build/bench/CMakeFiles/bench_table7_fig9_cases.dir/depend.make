# Empty dependencies file for bench_table7_fig9_cases.
# This may be replaced when dependencies are built.
