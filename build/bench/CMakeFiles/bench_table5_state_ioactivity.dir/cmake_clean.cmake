file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_state_ioactivity.dir/bench_table5_state_ioactivity.cpp.o"
  "CMakeFiles/bench_table5_state_ioactivity.dir/bench_table5_state_ioactivity.cpp.o.d"
  "bench_table5_state_ioactivity"
  "bench_table5_state_ioactivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_state_ioactivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
