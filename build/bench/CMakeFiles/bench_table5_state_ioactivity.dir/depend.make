# Empty dependencies file for bench_table5_state_ioactivity.
# This may be replaced when dependencies are built.
