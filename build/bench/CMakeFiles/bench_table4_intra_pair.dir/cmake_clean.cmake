file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_intra_pair.dir/bench_table4_intra_pair.cpp.o"
  "CMakeFiles/bench_table4_intra_pair.dir/bench_table4_intra_pair.cpp.o.d"
  "bench_table4_intra_pair"
  "bench_table4_intra_pair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_intra_pair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
