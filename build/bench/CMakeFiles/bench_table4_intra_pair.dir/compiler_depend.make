# Empty compiler generated dependencies file for bench_table4_intra_pair.
# This may be replaced when dependencies are built.
