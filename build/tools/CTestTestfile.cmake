# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_info "/root/repo/build/tools/pdn3d" "info" "off-chip")
set_tests_properties(cli_info PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_analyze "/root/repo/build/tools/pdn3d" "analyze" "off-chip" "--state" "0-0-0-2" "--bd" "f2f")
set_tests_properties(cli_analyze PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_usage_error "/root/repo/build/tools/pdn3d" "bogus" "off-chip")
set_tests_properties(cli_usage_error PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_report "/root/repo/build/tools/pdn3d" "report" "off-chip" "--state" "0-0-2b-0" "--die" "3")
set_tests_properties(cli_report PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_tech_file "/root/repo/build/tools/pdn3d" "analyze" "off-chip" "--tech" "/root/repo/data/example_20nm.tech")
set_tests_properties(cli_tech_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
