file(REMOVE_RECURSE
  "CMakeFiles/pdn3d_cli.dir/pdn3d_cli.cpp.o"
  "CMakeFiles/pdn3d_cli.dir/pdn3d_cli.cpp.o.d"
  "pdn3d"
  "pdn3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdn3d_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
