# Empty compiler generated dependencies file for pdn3d_cli.
# This may be replaced when dependencies are built.
