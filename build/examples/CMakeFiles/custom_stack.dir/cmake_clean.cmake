file(REMOVE_RECURSE
  "CMakeFiles/custom_stack.dir/custom_stack.cpp.o"
  "CMakeFiles/custom_stack.dir/custom_stack.cpp.o.d"
  "custom_stack"
  "custom_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
