# Empty dependencies file for custom_stack.
# This may be replaced when dependencies are built.
