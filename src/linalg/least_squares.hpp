#pragma once

/// @file least_squares.hpp
/// @brief Householder-QR linear least squares (the MATLAB-regression
/// substitute used by the IR-drop model fitting in src/fit).

#include <span>
#include <vector>

#include "linalg/dense.hpp"

namespace pdn3d::linalg {

struct LeastSquaresResult {
  std::vector<double> coefficients;
  double residual_norm = 0.0;  ///< ||b - A x||_2
};

/// Minimize ||A x - b||_2 via Householder QR. Requires rows >= cols and full
/// column rank (throws std::runtime_error on rank deficiency).
LeastSquaresResult solve_least_squares(const DenseMatrix& a, std::span<const double> b);

}  // namespace pdn3d::linalg
