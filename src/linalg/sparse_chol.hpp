#pragma once

/// @file sparse_chol.hpp
/// @brief General sparse Cholesky factorization (elimination-tree up-looking).
///
/// The same-matrix/many-RHS fast path: factor the SPD conductance matrix once
/// under a fill-reducing permutation (RCM from reorder.hpp works well on the
/// near-planar power-grid meshes), then every subsequent solve is two sparse
/// triangular sweeps -- typically 10-100x cheaper than a PCG solve at the
/// mesh sizes the LUT construction and Monte Carlo sweeps run. Unlike
/// BandedCholesky this stores only the structural nonzeros of L, so it stays
/// cheap on meshes whose RCM bandwidth is large (TSV-stitched 3D stacks).
///
/// The factorization is the classic up-looking algorithm: the elimination
/// tree of the permuted matrix gives, via ereach, the nonzero pattern of each
/// row of L in topological order; a symbolic pass counts fill (aborting early
/// when it exceeds the configured fill-ratio guard) and the numeric pass
/// computes one row per step with a sparse triangular solve. L is stored
/// column-compressed with the diagonal first in each column, which makes both
/// triangular sweeps straight loops over contiguous column slices.
///
/// Thread-safety contract: construction does all mutation; every solve entry
/// is const and touches only caller-provided (or per-call) buffers, so one
/// factor may serve any number of concurrent solvers without locking.

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/csr.hpp"

namespace pdn3d::linalg {

struct SparseCholeskyOptions {
  /// Refuse factorizations whose fill ratio nnz(L) / nnz(lower(A)) would
  /// exceed this (std::runtime_error). A guard, not a tuning knob: the
  /// TSV-stitched 3D stack meshes sit at fill 40-65 under RCM (the paper
  /// benchmarks: Wide I/O 43x, stacked DDR3 61x), so the default admits them
  /// with headroom while still rejecting meshes whose factor would dwarf the
  /// matrix, where an iterative rung is the better fallback.
  double max_fill_ratio = 96.0;
};

class SparseCholesky {
 public:
  /// Factor SPD matrix @p a under @p perm (e.g. rcm_ordering(a); new index k
  /// corresponds to old index perm[k]). Throws std::runtime_error when a
  /// pivot is non-positive (not SPD) or the fill-ratio guard trips, and
  /// std::invalid_argument on a malformed permutation.
  explicit SparseCholesky(const Csr& a, std::vector<std::size_t> perm,
                          const SparseCholeskyOptions& options = {});

  /// Solve A x = b in the original ordering. @p x and @p b must have size
  /// dimension() and may alias each other; @p work is resized here.
  void solve(std::span<const double> b, std::span<double> x, std::vector<double>& work) const;

  /// Allocating convenience overload.
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  /// Batched solve: @p b and @p x hold @p count right-hand sides back to
  /// back, each dimension() long (RHS-major). The factor is traversed once
  /// per column for all right-hand sides together, which is what makes a
  /// many-RHS sweep cheaper than @p count individual solves. Each solution is
  /// bitwise identical to the one solve() produces for the same slice.
  void solve_batch(std::span<const double> b, std::span<double> x, std::size_t count,
                   std::vector<double>& work) const;

  [[nodiscard]] std::size_t dimension() const { return n_; }
  /// Structural nonzeros of L (diagonal included).
  [[nodiscard]] std::size_t factor_nnz() const { return values_.size(); }
  /// nnz(L) / nnz(lower triangle of A, diagonal included).
  [[nodiscard]] double fill_ratio() const { return fill_ratio_; }

 private:
  std::size_t n_ = 0;
  double fill_ratio_ = 0.0;
  std::vector<std::size_t> perm_;  ///< new -> old
  std::vector<std::size_t> pos_;   ///< old -> new
  // L column-compressed, diagonal first in each column, rows increasing.
  std::vector<std::size_t> col_ptr_;
  std::vector<std::size_t> row_idx_;
  std::vector<double> values_;
};

}  // namespace pdn3d::linalg
