#pragma once

/// @file schur.hpp
/// @brief Stack-aware hierarchical solver: per-block Schur macromodels over a
/// small reduced interface system, plus low-rank (Woodbury) design-delta
/// updates.
///
/// A 3D DRAM stack is a set of near-repeated per-die meshes coupled only
/// through a few hundred TSV/C4 interface nodes (the paper's Wide I/O mesh:
/// 7110 nodes, 494 interface). Order the system [per-block interiors;
/// interface] and the conductance matrix becomes
///
///     A = [ A_II  A_IB ]      with A_II block-diagonal per die.
///         [ A_BI  A_BB ]
///
/// SchurMacromodel eliminates each block's interior onto its interface slice
/// once -- a per-block SparseCholesky factor, the interior-to-interface
/// coupling solves W_b = A_II,b^-1 E_b, and the dense interface contribution
/// C_b = E_b^T W_b -- then factors the small reduced system
/// S = A_BB - sum_b C_b. Every subsequent solve is one triangular pair per
/// block, a reduced solve, and a back-substitution: no full-mesh
/// factorization ever again.
///
/// The per-block data depends only on the block's sub-mesh in canonical
/// local numbering, so it is keyed by an FNV-1a sub-mesh fingerprint and
/// shared through a SchurBlockCache -- across the identical middle dies of
/// one stack and across the design points of a sweep that leave a die
/// untouched. WoodburyUpdate goes further for design deltas that touch only
/// a few nodes (TSV placement/count tweaks, C4/TSV resistance variation): it
/// reuses a neighboring point's *entire* macromodel, including the reduced
/// factorization, through the Woodbury identity with a dense LU of the small
/// capture matrix.
///
/// Accuracy discipline: these classes make no accuracy promise of their own.
/// The irdrop solver ladder verifies the true residual of every answer
/// against the current conductance matrix and escalates on failure, exactly
/// as for every other rung (see docs/SOLVER.md).
///
/// Thread-safety: SchurMacromodel and SchurBlock are immutable after
/// construction; solves are const and touch only caller-owned scratch.
/// SchurBlockCache is internally synchronized (shared_mutex); concurrent
/// builders racing on one fingerprint each build bitwise-identical blocks
/// and the first insert wins, so results never depend on the race.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <vector>

#include "linalg/csr.hpp"
#include "linalg/dense.hpp"
#include "linalg/sparse_chol.hpp"

namespace pdn3d::linalg {

struct SchurOptions {
  /// Fill guard forwarded to every per-block and reduced-system
  /// factorization (see SparseCholeskyOptions).
  double max_fill_ratio = 96.0;
  /// Decline meshes whose interface exceeds this fraction of all nodes: the
  /// reduced system would not be "small" and a global factor is the better
  /// tool. The paper's stacks sit at 3-7%.
  double max_interface_fraction = 0.25;
};

/// Immutable interior-elimination data of one block (die), in canonical
/// local numbering. Shared across stacks via SchurBlockCache.
struct SchurBlock {
  std::uint64_t fingerprint = 0;  ///< sub-mesh fingerprint this was built from
  std::size_t interior_count = 0;
  std::size_t interface_count = 0;     ///< local interface slots
  SparseCholesky factor;               ///< A_II,b under RCM
  /// E_b = A(interior, interface) as triplets (interior local, slot, value).
  std::vector<std::size_t> e_row;
  std::vector<std::size_t> e_col;
  std::vector<double> e_val;
  DenseMatrix w;  ///< A_II,b^-1 E_b (interior_count x interface_count)
  DenseMatrix c;  ///< E_b^T W_b   (interface_count x interface_count)

  SchurBlock(std::uint64_t fp, std::size_t interiors, std::size_t interfaces,
             SparseCholesky fac)
      : fingerprint(fp), interior_count(interiors), interface_count(interfaces),
        factor(std::move(fac)) {}
};

/// Process/platform-shared cache of SchurBlocks keyed by sub-mesh
/// fingerprint. Thread-safe; entries are immutable once inserted.
class SchurBlockCache {
 public:
  [[nodiscard]] std::shared_ptr<const SchurBlock> find(std::uint64_t fingerprint) const;
  /// Insert wins only when the fingerprint is new; returns the cached entry
  /// either way (losers of a build race adopt the winner's block).
  std::shared_ptr<const SchurBlock> insert(std::shared_ptr<const SchurBlock> block);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t hits() const;    ///< find() calls that returned a block
  [[nodiscard]] std::size_t misses() const;  ///< find() calls that returned null

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::uint64_t, std::shared_ptr<const SchurBlock>> blocks_;
  mutable std::size_t hits_ = 0;
  mutable std::size_t misses_ = 0;
};

/// Per-solve scratch for SchurMacromodel / WoodburyUpdate. Never share one
/// across concurrent solves.
struct SchurScratch {
  std::vector<double> interior;   ///< per-block local RHS / solution slices
  std::vector<double> reduced;    ///< reduced-system RHS / solution
  std::vector<double> work;       ///< triangular-sweep workspace
  std::vector<double> update;     ///< Woodbury small-vector workspace
};

class SchurMacromodel {
 public:
  /// Build the hierarchical macromodel of SPD matrix @p a partitioned by
  /// @p block_of (block id per node, contiguous 0..B-1). Interface nodes are
  /// detected from the matrix: any node with a nonzero coupling into another
  /// block. Blocks are fetched from @p cache by sub-mesh fingerprint when
  /// available and inserted after a build (null cache = private blocks).
  /// Throws std::runtime_error when a guard declines the mesh (single block,
  /// interface fraction, fill guard, non-SPD block) -- the caller's rung
  /// fails and its ladder escalates.
  SchurMacromodel(const Csr& a, std::span<const int> block_of, const SchurOptions& options,
                  SchurBlockCache* cache);

  /// Solve A x = b: per-block interior solves, reduced interface solve, then
  /// back-substitution. @p b and @p x must have size dimension() and may
  /// alias. Fixed arithmetic order -- bitwise deterministic at any thread
  /// count.
  void solve(std::span<const double> b, std::span<double> x, SchurScratch& scratch) const;

  /// Batched solve: @p b and @p x hold @p count right-hand sides back to
  /// back (RHS-major). Per-block factors are swept with batched triangular
  /// solves. Each solution is bitwise identical to solve() of that slice.
  void solve_batch(std::span<const double> b, std::span<double> x, std::size_t count,
                   SchurScratch& scratch) const;

  [[nodiscard]] std::size_t dimension() const { return n_; }
  [[nodiscard]] std::size_t block_count() const { return blocks_.size(); }
  [[nodiscard]] std::size_t interface_count() const { return interface_.size(); }
  /// Blocks served from the cache during construction (of block_count()).
  [[nodiscard]] std::size_t blocks_reused() const { return blocks_reused_; }
  /// The matrix this macromodel was built from (Woodbury delta detection).
  [[nodiscard]] const Csr& matrix() const { return a_; }
  [[nodiscard]] std::span<const int> block_of() const { return block_of_; }

 private:
  struct BlockSlot {
    std::shared_ptr<const SchurBlock> data;
    std::vector<std::size_t> interior_nodes;  ///< local interior -> global node
    std::vector<std::size_t> interface_slots; ///< local slot -> reduced index
  };

  Csr a_;                       ///< source matrix (kept for delta detection)
  std::vector<int> block_of_;
  std::size_t n_ = 0;
  std::vector<std::size_t> interface_;      ///< reduced index -> global node
  std::vector<std::size_t> reduced_index_;  ///< global node -> reduced index (or npos)
  std::vector<BlockSlot> blocks_;
  std::size_t blocks_reused_ = 0;
  // optional only because the factor is built after the blocks in the ctor
  // body; always engaged once construction returns.
  std::optional<SparseCholesky> reduced_;  ///< factor of S = A_BB - sum C_b
};

/// Low-rank design-delta overlay: solves A1 x = b where
/// A1 = A0 + P D P^T touches only the m nodes in P, through the base
/// macromodel's factorizations plus a dense LU of the m x m capture matrix
/// K = I + D M (M = P^T A0^-1 P). Build cost is m base solves; per-solve
/// cost is one base solve plus small dense products -- which is what lets
/// neighboring sweep points reuse both the die factors and the reduced
/// factorization.
class WoodburyUpdate {
 public:
  /// @param base macromodel of A0 (shared; must outlive the update).
  /// @param a_new the perturbed matrix; must have base->dimension().
  /// @param max_rank decline deltas touching more nodes than this
  /// (std::runtime_error) -- beyond it a fresh macromodel build through the
  /// block cache is the cheaper path.
  /// Throws std::runtime_error when the delta is empty, too large, or the
  /// capture matrix is singular (rank-deficient update).
  WoodburyUpdate(std::shared_ptr<const SchurMacromodel> base, const Csr& a_new,
                 std::size_t max_rank);

  /// Solve A1 x = b. @p b / @p x sized dimension(); may alias.
  void solve(std::span<const double> b, std::span<double> x, SchurScratch& scratch) const;

  /// Batched RHS-major solve, slice-bitwise-identical to solve().
  void solve_batch(std::span<const double> b, std::span<double> x, std::size_t count,
                   SchurScratch& scratch) const;

  [[nodiscard]] std::size_t dimension() const { return base_->dimension(); }
  [[nodiscard]] std::size_t rank() const { return touched_.size(); }
  [[nodiscard]] const SchurMacromodel& base() const { return *base_; }

  /// Nodes whose matrix rows differ between @p a_new and @p a_base --
  /// the update rank a WoodburyUpdate of this pair would have.
  [[nodiscard]] static std::vector<std::size_t> touched_nodes(const Csr& a_base,
                                                              const Csr& a_new);

 private:
  std::shared_ptr<const SchurMacromodel> base_;
  std::vector<std::size_t> touched_;  ///< delta nodes, ascending
  DenseMatrix d_;                     ///< delta submatrix (m x m)
  DenseMatrix z_;                     ///< A0^-1 P (n x m)
  // optional only because the LU is built last in the ctor body; always
  // engaged once construction returns.
  std::optional<DenseLu> capture_;    ///< LU of K = I + D M
};

}  // namespace pdn3d::linalg
