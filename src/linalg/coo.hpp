#pragma once

/// @file coo.hpp
/// @brief Coordinate-format (triplet) sparse matrix builder.
///
/// Circuit stamping naturally produces duplicate (row, col) entries -- one per
/// element incident on a node pair. CooBuilder accumulates triplets and
/// compresses them (summing duplicates) into a CSR matrix.

#include <cstddef>
#include <vector>

#include "linalg/csr.hpp"

namespace pdn3d::linalg {

class CooBuilder {
 public:
  /// @param n matrix dimension (square matrices only -- nodal analysis).
  explicit CooBuilder(std::size_t n);

  /// Accumulate @p value at (row, col). Duplicates sum on compression.
  void add(std::size_t row, std::size_t col, double value);

  /// Stamp a two-terminal conductance @p g between nodes @p a and @p b:
  ///   G[a][a] += g, G[b][b] += g, G[a][b] -= g, G[b][a] -= g.
  void stamp_conductance(std::size_t a, std::size_t b, double g);

  /// Stamp conductance @p g from node @p a to ground (diagonal only).
  void stamp_to_ground(std::size_t a, double g);

  [[nodiscard]] std::size_t dimension() const { return n_; }
  [[nodiscard]] std::size_t triplet_count() const { return rows_.size(); }

  /// Sort, merge duplicates, and build a CSR matrix. The builder remains
  /// valid and may keep accumulating (compress again for an updated matrix).
  [[nodiscard]] Csr compress() const;

 private:
  std::size_t n_;
  std::vector<std::size_t> rows_;
  std::vector<std::size_t> cols_;
  std::vector<double> vals_;
};

}  // namespace pdn3d::linalg
