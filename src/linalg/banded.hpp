#pragma once

/// @file banded.hpp
/// @brief Banded Cholesky factorization under an RCM ordering.
///
/// Direct-solver alternative to PCG for repeated right-hand sides: factor
/// once in O(n b^2), then each solve is O(n b). The R-Mesh LUT (81 states)
/// and the co-optimizer's per-design multi-state evaluations are exactly
/// that access pattern.

#include <span>
#include <vector>

#include "linalg/csr.hpp"

namespace pdn3d::linalg {

class BandedCholesky {
 public:
  /// Factor SPD matrix @p a under @p perm (e.g. rcm_ordering(a)).
  /// Throws std::runtime_error if a pivot is non-positive (not SPD).
  BandedCholesky(const Csr& a, std::vector<std::size_t> perm);

  /// Solve A x = b (in the original ordering).
  [[nodiscard]] std::vector<double> solve(std::span<const double> b) const;

  [[nodiscard]] std::size_t bandwidth() const { return band_; }
  [[nodiscard]] std::size_t dimension() const { return n_; }
  /// Factor storage in doubles (n * (bandwidth + 1)).
  [[nodiscard]] std::size_t factor_size() const { return storage_.size(); }

 private:
  [[nodiscard]] double& l_at(std::size_t i, std::size_t j) {
    return storage_[i * (band_ + 1) + (j + band_ - i)];
  }
  [[nodiscard]] double l_get(std::size_t i, std::size_t j) const {
    return storage_[i * (band_ + 1) + (j + band_ - i)];
  }

  std::size_t n_ = 0;
  std::size_t band_ = 0;
  std::vector<std::size_t> perm_;  ///< new -> old
  std::vector<std::size_t> pos_;   ///< old -> new
  std::vector<double> storage_;    ///< row-major band of L
};

}  // namespace pdn3d::linalg
