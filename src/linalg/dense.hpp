#pragma once

/// @file dense.hpp
/// @brief Dense matrix with Cholesky and partial-pivot LU solves.
///
/// This is the "commercial signoff tool" stand-in: an exact direct solver used
/// to validate the fast R-Mesh path (paper Figure 4 validates R-Mesh against
/// Cadence EPS) and as the backend for least-squares normal equations.

#include <cstddef>
#include <span>
#include <vector>

namespace pdn3d::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// y = A x
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// A^T A (for normal equations).
  [[nodiscard]] DenseMatrix gram() const;

  /// A^T b
  [[nodiscard]] std::vector<double> transpose_multiply(std::span<const double> b) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve SPD system via Cholesky. Throws std::runtime_error if not SPD.
std::vector<double> solve_cholesky(DenseMatrix a, std::span<const double> b);

/// Solve a general square system via partially pivoted LU.
/// Throws std::runtime_error on (numerical) singularity.
std::vector<double> solve_lu(DenseMatrix a, std::span<const double> b);

/// Factor-retaining partially pivoted LU for small general square systems --
/// the Woodbury capture matrix K = I + D*U^T*Z of the hierarchical solver
/// tier, factored once per design delta and applied per right-hand side.
/// Thread-safety: construction does all mutation; solve() is const and
/// touches only caller-owned buffers.
class DenseLu {
 public:
  /// Factor @p a in place. Throws std::runtime_error on (numerical)
  /// singularity -- for the solver tier that is the rank-deficient-update
  /// signal that makes the rung fall through cleanly.
  explicit DenseLu(DenseMatrix a);

  /// Solve A x = b. @p x and @p b must have size dimension() and may alias.
  void solve(std::span<const double> b, std::span<double> x) const;

  [[nodiscard]] std::size_t dimension() const { return lu_.rows(); }

 private:
  DenseMatrix lu_;                  ///< L (unit lower) and U packed in place
  std::vector<std::size_t> perm_;   ///< row permutation from partial pivoting
};

}  // namespace pdn3d::linalg
