#pragma once

/// @file dense.hpp
/// @brief Dense matrix with Cholesky and partial-pivot LU solves.
///
/// This is the "commercial signoff tool" stand-in: an exact direct solver used
/// to validate the fast R-Mesh path (paper Figure 4 validates R-Mesh against
/// Cadence EPS) and as the backend for least-squares normal equations.

#include <cstddef>
#include <span>
#include <vector>

namespace pdn3d::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// y = A x
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// A^T A (for normal equations).
  [[nodiscard]] DenseMatrix gram() const;

  /// A^T b
  [[nodiscard]] std::vector<double> transpose_multiply(std::span<const double> b) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solve SPD system via Cholesky. Throws std::runtime_error if not SPD.
std::vector<double> solve_cholesky(DenseMatrix a, std::span<const double> b);

/// Solve a general square system via partially pivoted LU.
/// Throws std::runtime_error on (numerical) singularity.
std::vector<double> solve_lu(DenseMatrix a, std::span<const double> b);

}  // namespace pdn3d::linalg
