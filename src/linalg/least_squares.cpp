#include "linalg/least_squares.hpp"

#include <cmath>
#include <stdexcept>

namespace pdn3d::linalg {

LeastSquaresResult solve_least_squares(const DenseMatrix& a, std::span<const double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  if (b.size() != m) throw std::invalid_argument("solve_least_squares: rhs size mismatch");
  if (m < n) throw std::invalid_argument("solve_least_squares: underdetermined system");

  // Work on copies; reduce A to upper-triangular R with Householder
  // reflections, applying the same reflections to b.
  DenseMatrix r = a;
  std::vector<double> rhs(b.begin(), b.end());

  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder vector for column k below the diagonal.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) throw std::runtime_error("solve_least_squares: rank-deficient matrix");

    const double alpha = (r(k, k) > 0.0) ? -norm : norm;
    std::vector<double> v(m - k, 0.0);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv == 0.0) continue;  // column already reduced

    // Apply H = I - 2 v v^T / (v^T v) to the remaining columns and to rhs.
    for (std::size_t c = k; c < n; ++c) {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i - k] * r(i, c);
      const double f = 2.0 * s / vtv;
      for (std::size_t i = k; i < m; ++i) r(i, c) -= f * v[i - k];
    }
    {
      double s = 0.0;
      for (std::size_t i = k; i < m; ++i) s += v[i - k] * rhs[i];
      const double f = 2.0 * s / vtv;
      for (std::size_t i = k; i < m; ++i) rhs[i] -= f * v[i - k];
    }
  }

  LeastSquaresResult out;
  out.coefficients.assign(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = rhs[ii];
    for (std::size_t c = ii + 1; c < n; ++c) s -= r(ii, c) * out.coefficients[c];
    const double d = r(ii, ii);
    if (std::abs(d) < 1e-300) throw std::runtime_error("solve_least_squares: singular R");
    out.coefficients[ii] = s / d;
  }

  double res = 0.0;
  for (std::size_t i = n; i < m; ++i) res += rhs[i] * rhs[i];
  out.residual_norm = std::sqrt(res);
  return out;
}

}  // namespace pdn3d::linalg
