#pragma once

/// @file csr.hpp
/// @brief Compressed-sparse-row matrix with the operations PCG needs.

#include <cstddef>
#include <span>
#include <vector>

namespace pdn3d::linalg {

/// Immutable CSR matrix. Built by CooBuilder::compress().
class Csr {
 public:
  Csr() = default;
  Csr(std::size_t n, std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
      std::vector<double> values);

  [[nodiscard]] std::size_t dimension() const { return n_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// y = A x. @p x and @p y must have size dimension(); they must not alias.
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Diagonal entries (0 where a row has no diagonal entry).
  [[nodiscard]] std::vector<double> diagonal() const;

  /// Entry lookup (binary search inside the row); 0.0 when absent.
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  /// True if the matrix equals its transpose to tolerance @p tol.
  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

  [[nodiscard]] std::span<const std::size_t> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const std::size_t> col_idx() const { return col_idx_; }
  [[nodiscard]] std::span<const double> values() const { return values_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Dot product of equal-length vectors.
double dot(std::span<const double> a, std::span<const double> b);

/// Euclidean norm.
double norm2(std::span<const double> a);

/// y += alpha * x
void axpy(double alpha, std::span<const double> x, std::span<double> y);

}  // namespace pdn3d::linalg
