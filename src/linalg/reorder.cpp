#include "linalg/reorder.hpp"

#include <algorithm>
#include <numeric>
#include <queue>

namespace pdn3d::linalg {

std::vector<std::size_t> rcm_ordering(const Csr& a) {
  const std::size_t n = a.dimension();
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();

  const auto degree = [&](std::size_t v) { return rp[v + 1] - rp[v]; };

  std::vector<char> visited(n, 0);
  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<std::size_t> neighbors;

  for (std::size_t seed_scan = 0; seed_scan < n; ++seed_scan) {
    if (visited[seed_scan]) continue;

    // Choose the minimum-degree unvisited node of this component region as
    // the seed (a cheap peripheral-node heuristic).
    std::size_t seed = seed_scan;
    for (std::size_t v = seed_scan; v < n; ++v) {
      if (!visited[v] && degree(v) < degree(seed)) seed = v;
      if (degree(seed) <= 1) break;
    }

    std::queue<std::size_t> q;
    q.push(seed);
    visited[seed] = 1;
    while (!q.empty()) {
      const std::size_t v = q.front();
      q.pop();
      order.push_back(v);
      neighbors.clear();
      for (std::size_t k = rp[v]; k < rp[v + 1]; ++k) {
        const std::size_t w = ci[k];
        if (w != v && !visited[w]) {
          visited[w] = 1;
          neighbors.push_back(w);
        }
      }
      std::sort(neighbors.begin(), neighbors.end(),
                [&](std::size_t x, std::size_t y) { return degree(x) < degree(y); });
      for (std::size_t w : neighbors) q.push(w);
    }
  }

  std::reverse(order.begin(), order.end());
  return order;
}

std::size_t bandwidth_under(const Csr& a, const std::vector<std::size_t>& perm) {
  const std::size_t n = a.dimension();
  std::vector<std::size_t> pos(n, 0);
  for (std::size_t k = 0; k < n; ++k) pos[perm[k]] = k;

  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  std::size_t band = 0;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::size_t c = ci[k];
      const std::size_t d = pos[r] > pos[c] ? pos[r] - pos[c] : pos[c] - pos[r];
      band = std::max(band, d);
    }
  }
  return band;
}

std::vector<std::size_t> identity_ordering(std::size_t n) {
  std::vector<std::size_t> out(n);
  std::iota(out.begin(), out.end(), std::size_t{0});
  return out;
}

}  // namespace pdn3d::linalg
