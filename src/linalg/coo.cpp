#include "linalg/coo.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pdn3d::linalg {

CooBuilder::CooBuilder(std::size_t n) : n_(n) {}

void CooBuilder::add(std::size_t row, std::size_t col, double value) {
  if (row >= n_ || col >= n_) throw std::out_of_range("CooBuilder::add: index out of range");
  if (value == 0.0) return;
  rows_.push_back(row);
  cols_.push_back(col);
  vals_.push_back(value);
}

void CooBuilder::stamp_conductance(std::size_t a, std::size_t b, double g) {
  if (g <= 0.0) throw std::invalid_argument("stamp_conductance: non-positive conductance");
  if (a == b) throw std::invalid_argument("stamp_conductance: self-loop");
  add(a, a, g);
  add(b, b, g);
  add(a, b, -g);
  add(b, a, -g);
}

void CooBuilder::stamp_to_ground(std::size_t a, double g) {
  if (g <= 0.0) throw std::invalid_argument("stamp_to_ground: non-positive conductance");
  add(a, a, g);
}

Csr CooBuilder::compress() const {
  const std::size_t nnz_in = rows_.size();
  std::vector<std::size_t> order(nnz_in);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    if (rows_[i] != rows_[j]) return rows_[i] < rows_[j];
    return cols_[i] < cols_[j];
  });

  std::vector<std::size_t> row_ptr(n_ + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(nnz_in);
  values.reserve(nnz_in);

  std::size_t i = 0;
  while (i < nnz_in) {
    const std::size_t r = rows_[order[i]];
    const std::size_t c = cols_[order[i]];
    double sum = 0.0;
    while (i < nnz_in && rows_[order[i]] == r && cols_[order[i]] == c) {
      sum += vals_[order[i]];
      ++i;
    }
    if (sum != 0.0) {
      col_idx.push_back(c);
      values.push_back(sum);
      ++row_ptr[r + 1];
    }
  }
  for (std::size_t r = 0; r < n_; ++r) row_ptr[r + 1] += row_ptr[r];

  return Csr(n_, std::move(row_ptr), std::move(col_idx), std::move(values));
}

}  // namespace pdn3d::linalg
