#include "linalg/csr.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pdn3d::linalg {

Csr::Csr(std::size_t n, std::vector<std::size_t> row_ptr, std::vector<std::size_t> col_idx,
         std::vector<double> values)
    : n_(n), row_ptr_(std::move(row_ptr)), col_idx_(std::move(col_idx)), values_(std::move(values)) {
  if (row_ptr_.size() != n_ + 1) throw std::invalid_argument("Csr: row_ptr size mismatch");
  if (col_idx_.size() != values_.size()) throw std::invalid_argument("Csr: col/value size mismatch");
  if (row_ptr_.back() != values_.size()) throw std::invalid_argument("Csr: row_ptr/nnz mismatch");
}

void Csr::multiply(std::span<const double> x, std::span<double> y) const {
  if (x.size() != n_ || y.size() != n_) throw std::invalid_argument("Csr::multiply: size mismatch");
  for (std::size_t r = 0; r < n_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      sum += values_[k] * x[col_idx_[k]];
    }
    y[r] = sum;
  }
}

std::vector<double> Csr::diagonal() const {
  std::vector<double> d(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) d[r] = values_[k];
    }
  }
  return d;
}

double Csr::at(std::size_t row, std::size_t col) const {
  if (row >= n_ || col >= n_) throw std::out_of_range("Csr::at: index out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

bool Csr::is_symmetric(double tol) const {
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      if (std::abs(values_[k] - at(c, r)) > tol) return false;
    }
  }
  return true;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

}  // namespace pdn3d::linalg
