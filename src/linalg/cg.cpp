#include "linalg/cg.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "linalg/ichol.hpp"

namespace pdn3d::linalg {

CgResult solve_cg(const Csr& a, std::span<const double> b, const CgOptions& options) {
  const std::size_t n = a.dimension();
  if (b.size() != n) throw std::invalid_argument("solve_cg: rhs size mismatch");

  CgResult result;
  result.x.assign(n, 0.0);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    result.converged = true;
    return result;
  }
  const double target = options.rel_tolerance * bnorm;

  std::vector<double> r(b.begin(), b.end());  // r = b - A*0
  std::vector<double> z(n, 0.0);
  std::vector<double> p(n, 0.0);
  std::vector<double> ap(n, 0.0);

  std::vector<double> inv_diag;
  std::unique_ptr<IncompleteCholesky> ic;
  switch (options.preconditioner) {
    case Preconditioner::kNone:
      break;
    case Preconditioner::kJacobi: {
      inv_diag = a.diagonal();
      for (double& d : inv_diag) d = (d > 0.0) ? 1.0 / d : 1.0;
      break;
    }
    case Preconditioner::kIncompleteCholesky:
      ic = std::make_unique<IncompleteCholesky>(a);
      break;
  }

  const auto apply_precond = [&](std::span<const double> rr, std::span<double> zz) {
    switch (options.preconditioner) {
      case Preconditioner::kNone:
        std::copy(rr.begin(), rr.end(), zz.begin());
        break;
      case Preconditioner::kJacobi:
        for (std::size_t i = 0; i < rr.size(); ++i) zz[i] = rr[i] * inv_diag[i];
        break;
      case Preconditioner::kIncompleteCholesky:
        ic->apply(rr, zz);
        break;
    }
  };

  apply_precond(r, z);
  p = z;
  double rz = dot(r, z);

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0) break;  // matrix not SPD on this subspace; bail out
    const double alpha = rz / pap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    result.iterations = it + 1;

    const double rnorm = norm2(r);
    if (rnorm <= target) {
      result.converged = true;
      break;
    }

    apply_precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }

  // Report the true residual, not the recurrence residual.
  a.multiply(result.x, ap);
  for (std::size_t i = 0; i < n; ++i) ap[i] = b[i] - ap[i];
  result.residual_norm = norm2(ap);
  if (result.residual_norm <= target * 10.0) result.converged = true;
  return result;
}

}  // namespace pdn3d::linalg
