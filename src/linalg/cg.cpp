#include "linalg/cg.hpp"

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "exec/cancel.hpp"
#include "faults/faults.hpp"
#include "linalg/ichol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace pdn3d::linalg {

const char* to_string(CgFailure failure) {
  switch (failure) {
    case CgFailure::kNone: return "none";
    case CgFailure::kMaxIterations: return "max-iterations";
    case CgFailure::kDivergedNonFinite: return "diverged-non-finite";
    case CgFailure::kStagnated: return "stagnated";
    case CgFailure::kIndefinite: return "indefinite";
    case CgFailure::kBadPreconditioner: return "bad-preconditioner";
    case CgFailure::kCancelled: return "cancelled";
  }
  return "?";
}

CgResult solve_cg(const Csr& a, std::span<const double> b, const CgOptions& options,
                  CgScratch* scratch) {
  const std::size_t n = a.dimension();
  if (b.size() != n) throw std::invalid_argument("solve_cg: rhs size mismatch");

  PDN3D_TRACE_SPAN_NAMED(span, "cg/solve");
  static auto& m_solves = obs::counter("cg.solves");
  static auto& m_iterations = obs::counter("cg.iterations");
  static auto& m_failures = obs::counter("cg.failures");
  static auto& m_iters_hist =
      obs::histogram("cg.iterations_per_solve", obs::exponential_buckets(1.0, 2.0, 16));
  static auto& m_exit_residual = obs::gauge("cg.exit_relative_residual");
  m_solves.add(1);
  PDN3D_FAULT_STALL("linalg.cg.stall", 50.0);

  CgResult result;
  result.x.assign(n, 0.0);
  if (n == 0) {
    result.converged = true;
    return result;
  }

  const double bnorm = norm2(b);
  if (!std::isfinite(bnorm)) {
    // A NaN/Inf rhs would otherwise burn max_iterations before "converging"
    // false -- every dot product is poisoned. Diagnose and bail immediately.
    result.failure = CgFailure::kDivergedNonFinite;
    result.detail = "right-hand side contains NaN/Inf entries";
    result.residual_norm = bnorm;
    m_failures.add(1);
    return result;
  }
  if (bnorm == 0.0) {
    result.converged = true;
    return result;
  }
  const double target = options.rel_tolerance * bnorm;

  CgScratch local;
  CgScratch& ws = scratch != nullptr ? *scratch : local;
  std::vector<double>& r = ws.r;
  std::vector<double>& z = ws.z;
  std::vector<double>& p = ws.p;
  std::vector<double>& ap = ws.ap;
  std::vector<double>& inv_diag = ws.inv_diag;
  if (!options.x0.empty() && options.x0.size() != n) {
    throw std::invalid_argument("solve_cg: x0 size mismatch");
  }
  bool warm = options.x0.size() == n;
  if (warm) {
    for (const double v : options.x0) {
      if (!std::isfinite(v)) {
        warm = false;  // a poisoned guess must not poison the solve
        break;
      }
    }
  }
  if (warm) {
    std::copy(options.x0.begin(), options.x0.end(), result.x.begin());
    r.resize(n);
    a.multiply(result.x, r);  // r = b - A*x0
    for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
    if (norm2(r) <= target) {
      result.converged = true;
      result.residual_norm = norm2(r);
      return result;
    }
  } else {
    r.assign(b.begin(), b.end());  // r = b - A*0
  }
  z.assign(n, 0.0);
  p.assign(n, 0.0);
  ap.assign(n, 0.0);
  inv_diag.clear();
  std::unique_ptr<IncompleteCholesky> owned_ic;
  const IncompleteCholesky* ic = nullptr;
  switch (options.preconditioner) {
    case Preconditioner::kNone:
      break;
    case Preconditioner::kJacobi: {
      inv_diag = a.diagonal();
      for (std::size_t i = 0; i < n; ++i) {
        // A non-positive (or non-finite) diagonal entry on a system that is
        // supposed to be SPD is a mesh defect (floating node, negative
        // conductance). Report it -- substituting 1.0 here would mask the
        // defect and let CG return plausible-looking garbage.
        if (!(inv_diag[i] > 0.0) || !std::isfinite(inv_diag[i])) {
          result.failure = CgFailure::kBadPreconditioner;
          result.detail = "Jacobi preconditioner: non-positive diagonal at row " +
                          std::to_string(i) + " (value " + std::to_string(inv_diag[i]) +
                          "); the system is not SPD";
          result.residual_norm = bnorm;
          m_failures.add(1);
          return result;
        }
        inv_diag[i] = 1.0 / inv_diag[i];
      }
      break;
    }
    case Preconditioner::kIncompleteCholesky:
      if (options.cached_ic != nullptr) {
        if (options.cached_ic->dimension() != n) {
          throw std::invalid_argument("solve_cg: cached IC dimension mismatch");
        }
        ic = options.cached_ic;
      } else {
        PDN3D_TRACE_SPAN("cg/precond_build");
        const util::ScopedTimer build_timer("cg.precond_build_seconds");
        owned_ic = std::make_unique<IncompleteCholesky>(a);
        ic = owned_ic.get();
      }
      break;
  }

  const auto apply_precond = [&](std::span<const double> rr, std::span<double> zz) {
    switch (options.preconditioner) {
      case Preconditioner::kNone:
        std::copy(rr.begin(), rr.end(), zz.begin());
        break;
      case Preconditioner::kJacobi:
        for (std::size_t i = 0; i < rr.size(); ++i) zz[i] = rr[i] * inv_diag[i];
        break;
      case Preconditioner::kIncompleteCholesky:
        ic->apply(rr, zz);
        break;
    }
  };

  if (PDN3D_FAULT_POINT("linalg.cg.nan")) {
    // Poison the residual: first iteration's curvature goes NaN and the solve
    // reports kDivergedNonFinite, exercising the escalation ladder.
    r[0] = std::numeric_limits<double>::quiet_NaN();
  }

  apply_precond(r, z);
  p = z;
  double rz = dot(r, z);

  // Stagnation watchdog state: best residual seen before/within the current
  // window. CG's residual norm is not monotone, so we compare window bests
  // rather than point values.
  double best_before_window = bnorm;
  double best_in_window = bnorm;
  std::size_t window_start = 0;

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    if (exec::cancellation_requested()) {
      result.failure = CgFailure::kCancelled;
      result.detail = "cancelled by caller at iteration " + std::to_string(it);
      break;
    }
    a.multiply(p, ap);
    const double pap = dot(p, ap);
    if (!std::isfinite(pap)) {
      result.failure = CgFailure::kDivergedNonFinite;
      result.detail = "curvature p'Ap became non-finite at iteration " + std::to_string(it);
      break;
    }
    if (pap <= 0.0) {
      // The matrix is not SPD on this subspace -- CG's update is undefined.
      result.failure = CgFailure::kIndefinite;
      result.detail = "non-positive curvature p'Ap = " + std::to_string(pap) +
                      " at iteration " + std::to_string(it);
      break;
    }
    const double alpha = rz / pap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    result.iterations = it + 1;

    const double rnorm = norm2(r);
    if (!std::isfinite(rnorm)) {
      result.failure = CgFailure::kDivergedNonFinite;
      result.detail = "residual norm became non-finite at iteration " + std::to_string(it);
      break;
    }
    if (rnorm <= target) {
      result.converged = true;
      break;
    }

    if (options.stagnation_window > 0) {
      best_in_window = std::min(best_in_window, rnorm);
      if (it + 1 - window_start >= options.stagnation_window) {
        if (best_in_window > best_before_window * (1.0 - options.stagnation_improvement)) {
          result.failure = CgFailure::kStagnated;
          result.detail = "residual stalled at " + std::to_string(best_in_window) +
                          " (target " + std::to_string(target) + ") over " +
                          std::to_string(options.stagnation_window) + " iterations";
          break;
        }
        best_before_window = best_in_window;
        window_start = it + 1;
      }
    }

    apply_precond(r, z);
    const double rz_new = dot(r, z);
    const double beta = rz_new / rz;
    rz = rz_new;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }

  // Report the true residual, not the recurrence residual.
  a.multiply(result.x, ap);
  for (std::size_t i = 0; i < n; ++i) ap[i] = b[i] - ap[i];
  result.residual_norm = norm2(ap);
  if (std::isfinite(result.residual_norm) && result.residual_norm <= target * 10.0) {
    result.converged = true;
  }
  if (result.converged) {
    result.failure = CgFailure::kNone;
    result.detail.clear();
  } else if (result.failure == CgFailure::kNone) {
    result.failure = CgFailure::kMaxIterations;
    result.detail = "residual " + std::to_string(result.residual_norm) + " above target " +
                    std::to_string(target) + " after " + std::to_string(result.iterations) +
                    " iterations";
  }

  m_iterations.add(result.iterations);
  m_iters_hist.observe(static_cast<double>(result.iterations));
  m_exit_residual.set(bnorm > 0.0 ? result.residual_norm / bnorm : result.residual_norm);
  if (!result.converged) m_failures.add(1);
  span.attribute("iterations", static_cast<std::uint64_t>(result.iterations));
  span.attribute("converged", result.converged ? "true" : "false");
  return result;
}

}  // namespace pdn3d::linalg
