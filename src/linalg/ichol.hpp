#pragma once

/// @file ichol.hpp
/// @brief Zero-fill incomplete Cholesky factorization IC(0) used as the PCG
/// preconditioner on power-grid conductance matrices.

#include <span>
#include <vector>

#include "linalg/csr.hpp"

namespace pdn3d::linalg {

/// Lower-triangular IC(0) factor stored in CSR layout (same sparsity as the
/// lower triangle of the input).
class IncompleteCholesky {
 public:
  /// Factorize SPD matrix @p a. If a pivot goes non-positive the diagonal is
  /// locally boosted (shifted IC) so the preconditioner stays usable.
  explicit IncompleteCholesky(const Csr& a);

  /// Apply M^-1: solve L L^T z = r.
  void apply(std::span<const double> r, std::span<double> z) const;

  [[nodiscard]] std::size_t dimension() const { return n_; }

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
  std::vector<double> diag_;          ///< L diagonal entries
  std::vector<std::size_t> diag_pos_; ///< position of diagonal within each row
};

}  // namespace pdn3d::linalg
