#include "linalg/banded.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/reorder.hpp"

namespace pdn3d::linalg {

BandedCholesky::BandedCholesky(const Csr& a, std::vector<std::size_t> perm)
    : n_(a.dimension()), perm_(std::move(perm)) {
  if (perm_.size() != n_) throw std::invalid_argument("BandedCholesky: permutation size");
  pos_.assign(n_, 0);
  for (std::size_t k = 0; k < n_; ++k) pos_[perm_[k]] = k;

  band_ = bandwidth_under(a, perm_);
  // Row-major band storage for L: row i holds columns [i - band_, i].
  storage_.assign(n_ * (band_ + 1), 0.0);

  // Scatter A (permuted) into the band (lower triangle only).
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto av = a.values();
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = rp[r]; k < rp[r + 1]; ++k) {
      const std::size_t i = pos_[r];
      const std::size_t j = pos_[ci[k]];
      if (j <= i) l_at(i, j) = av[k];
    }
  }

  // In-place banded Cholesky.
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t lo = i > band_ ? i - band_ : 0;
    for (std::size_t j = lo; j <= i; ++j) {
      double sum = l_get(i, j);
      const std::size_t klo = std::max(lo, j > band_ ? j - band_ : std::size_t{0});
      for (std::size_t k = klo; k < j; ++k) {
        sum -= l_get(i, k) * l_get(j, k);
      }
      if (j == i) {
        if (sum <= 0.0) throw std::runtime_error("BandedCholesky: matrix not positive definite");
        l_at(i, i) = std::sqrt(sum);
      } else {
        l_at(i, j) = sum / l_get(j, j);
      }
    }
  }
}

std::vector<double> BandedCholesky::solve(std::span<const double> b) const {
  if (b.size() != n_) throw std::invalid_argument("BandedCholesky::solve: rhs size");

  // Permute b.
  std::vector<double> y(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) y[i] = b[perm_[i]];

  // Forward solve L y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = y[i];
    const std::size_t lo = i > band_ ? i - band_ : 0;
    for (std::size_t k = lo; k < i; ++k) sum -= l_get(i, k) * y[k];
    y[i] = sum / l_get(i, i);
  }
  // Backward solve L^T x = y.
  for (std::size_t ii = n_; ii-- > 0;) {
    double sum = y[ii];
    const std::size_t hi = std::min(n_ - 1, ii + band_);
    for (std::size_t k = ii + 1; k <= hi; ++k) sum -= l_get(k, ii) * y[k];
    y[ii] = sum / l_get(ii, ii);
  }

  // Un-permute.
  std::vector<double> x(n_, 0.0);
  for (std::size_t i = 0; i < n_; ++i) x[perm_[i]] = y[i];
  return x;
}

}  // namespace pdn3d::linalg
