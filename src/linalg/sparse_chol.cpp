#include "linalg/sparse_chol.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "exec/cancel.hpp"
#include "faults/faults.hpp"

namespace pdn3d::linalg {

namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

}  // namespace

SparseCholesky::SparseCholesky(const Csr& a, std::vector<std::size_t> perm,
                               const SparseCholeskyOptions& options)
    : n_(a.dimension()), perm_(std::move(perm)) {
  PDN3D_FAULT_STALL("linalg.chol.stall", 50.0);
  if (perm_.size() != n_) throw std::invalid_argument("SparseCholesky: permutation size");
  pos_.assign(n_, kNone);
  for (std::size_t k = 0; k < n_; ++k) {
    if (perm_[k] >= n_ || pos_[perm_[k]] != kNone) {
      throw std::invalid_argument("SparseCholesky: not a permutation");
    }
    pos_[perm_[k]] = k;
  }

  // Lower triangle of the permuted matrix, stored by row: for new row k the
  // sources are CSR row perm_[k] of A, mapped through pos_ and kept when the
  // mapped column is <= k. Both the elimination tree and the numeric scatter
  // consume exactly this structure.
  const auto rp = a.row_ptr();
  const auto ci = a.col_idx();
  const auto av = a.values();
  std::vector<std::size_t> low_ptr(n_ + 1, 0);
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t old_row = perm_[k];
    for (std::size_t p = rp[old_row]; p < rp[old_row + 1]; ++p) {
      if (pos_[ci[p]] <= k) ++low_ptr[k + 1];
    }
  }
  for (std::size_t k = 0; k < n_; ++k) low_ptr[k + 1] += low_ptr[k];
  const std::size_t nnz_lower = low_ptr[n_];
  std::vector<std::size_t> low_col(nnz_lower);
  std::vector<double> low_val(nnz_lower);
  {
    std::vector<std::size_t> next(low_ptr.begin(), low_ptr.end() - 1);
    for (std::size_t k = 0; k < n_; ++k) {
      const std::size_t old_row = perm_[k];
      for (std::size_t p = rp[old_row]; p < rp[old_row + 1]; ++p) {
        const std::size_t j = pos_[ci[p]];
        if (j > k) continue;
        low_col[next[k]] = j;
        low_val[next[k]] = av[p];
        ++next[k];
      }
    }
  }

  // Elimination tree with ancestor path compression (Liu's algorithm).
  std::vector<std::size_t> parent(n_, kNone);
  std::vector<std::size_t> ancestor(n_, kNone);
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t p = low_ptr[k]; p < low_ptr[k + 1]; ++p) {
      std::size_t i = low_col[p];
      while (i != kNone && i < k) {
        const std::size_t next_i = ancestor[i];
        ancestor[i] = k;
        if (next_i == kNone) parent[i] = k;
        i = next_i;
      }
    }
  }

  // ereach: nonzero pattern of row k of L, in topological order, as
  // stack[top..n-1]. @p mark must be unique per invocation (w is never
  // reset); the symbolic pass uses marks 0..n-1 and the numeric pass n..2n-1.
  std::vector<std::size_t> w(n_, kNone);
  std::vector<std::size_t> stack(n_, 0);
  std::vector<std::size_t> path(n_, 0);
  const auto ereach = [&](std::size_t k, std::size_t mark) -> std::size_t {
    std::size_t top = n_;
    w[k] = mark;
    for (std::size_t p = low_ptr[k]; p < low_ptr[k + 1]; ++p) {
      std::size_t i = low_col[p];
      if (i >= k) continue;
      std::size_t len = 0;
      while (w[i] != mark) {
        path[len++] = i;
        w[i] = mark;
        i = parent[i];
      }
      while (len > 0) stack[--top] = path[--len];
    }
    return top;
  };

  // Symbolic pass: per-column nonzero counts of L, with the fill guard
  // applied on the running total so a hopeless mesh aborts in O(visited).
  std::vector<std::size_t> col_count(n_, 1);  // diagonals
  std::size_t factor_nnz = n_;
  const double fill_limit = options.max_fill_ratio * static_cast<double>(nnz_lower);
  for (std::size_t k = 0; k < n_; ++k) {
    const std::size_t top = ereach(k, k);
    for (std::size_t t = top; t < n_; ++t) ++col_count[stack[t]];
    factor_nnz += n_ - top;
    if (static_cast<double>(factor_nnz) > fill_limit) {
      throw std::runtime_error(
          "SparseCholesky: fill ratio exceeds guard (nnz(L) >= " + std::to_string(factor_nnz) +
          " against " + std::to_string(nnz_lower) + " lower-triangle nonzeros, limit ratio " +
          std::to_string(options.max_fill_ratio) + ")");
    }
  }
  fill_ratio_ = nnz_lower > 0 ? static_cast<double>(factor_nnz) / static_cast<double>(nnz_lower)
                              : 1.0;

  col_ptr_.assign(n_ + 1, 0);
  for (std::size_t j = 0; j < n_; ++j) col_ptr_[j + 1] = col_ptr_[j] + col_count[j];
  row_idx_.assign(factor_nnz, 0);
  values_.assign(factor_nnz, 0.0);

  // Numeric up-looking pass: row k of L is the sparse triangular solve
  // L(0:k-1,0:k-1) y = a(0:k-1,k) over the ereach pattern; results are
  // appended to their columns, so the diagonal lands first in every column
  // and rows are increasing within a column.
  std::vector<std::size_t> next_free(col_ptr_.begin(), col_ptr_.end() - 1);
  std::vector<double> x(n_, 0.0);
  for (std::size_t k = 0; k < n_; ++k) {
    // Factorization can dominate a solve's wall time; poll the cooperative
    // cancellation flag every few hundred columns. The throw surfaces as a
    // rung failure, and the ladder's own poll converts it to kCancelled.
    if ((k & 0x1ffU) == 0 && exec::cancellation_requested()) {
      throw std::runtime_error("SparseCholesky: factorization cancelled at elimination step " +
                               std::to_string(k));
    }
    const std::size_t top = ereach(k, n_ + k);
    double d = 0.0;
    for (std::size_t p = low_ptr[k]; p < low_ptr[k + 1]; ++p) {
      if (low_col[p] == k) {
        d = low_val[p];
      } else {
        x[low_col[p]] = low_val[p];
      }
    }
    for (std::size_t t = top; t < n_; ++t) {
      const std::size_t i = stack[t];
      const double lki = x[i] / values_[col_ptr_[i]];
      x[i] = 0.0;
      for (std::size_t p = col_ptr_[i] + 1; p < next_free[i]; ++p) {
        x[row_idx_[p]] -= values_[p] * lki;
      }
      d -= lki * lki;
      row_idx_[next_free[i]] = k;
      values_[next_free[i]] = lki;
      ++next_free[i];
    }
    if (!(d > 0.0) || !std::isfinite(d)) {
      throw std::runtime_error("SparseCholesky: matrix not positive definite (pivot " +
                               std::to_string(d) + " at elimination step " + std::to_string(k) +
                               ")");
    }
    row_idx_[next_free[k]] = k;
    values_[next_free[k]] = std::sqrt(d);
    ++next_free[k];
  }
}

void SparseCholesky::solve(std::span<const double> b, std::span<double> x,
                           std::vector<double>& work) const {
  if (b.size() != n_ || x.size() != n_) {
    throw std::invalid_argument("SparseCholesky::solve: size mismatch");
  }
  work.resize(n_);
  for (std::size_t k = 0; k < n_; ++k) work[k] = b[perm_[k]];

  // Forward sweep L y = Pb (column-oriented; diagonal first per column).
  for (std::size_t j = 0; j < n_; ++j) {
    const double yj = work[j] / values_[col_ptr_[j]];
    work[j] = yj;
    for (std::size_t p = col_ptr_[j] + 1; p < col_ptr_[j + 1]; ++p) {
      work[row_idx_[p]] -= values_[p] * yj;
    }
  }
  // Backward sweep L^T z = y.
  for (std::size_t j = n_; j-- > 0;) {
    double sum = work[j];
    for (std::size_t p = col_ptr_[j] + 1; p < col_ptr_[j + 1]; ++p) {
      sum -= values_[p] * work[row_idx_[p]];
    }
    work[j] = sum / values_[col_ptr_[j]];
  }

  for (std::size_t k = 0; k < n_; ++k) x[perm_[k]] = work[k];
}

std::vector<double> SparseCholesky::solve(std::span<const double> b) const {
  std::vector<double> x(n_, 0.0);
  std::vector<double> work;
  solve(b, x, work);
  return x;
}

void SparseCholesky::solve_batch(std::span<const double> b, std::span<double> x,
                                 std::size_t count, std::vector<double>& work) const {
  if (b.size() != n_ * count || x.size() != n_ * count) {
    throw std::invalid_argument("SparseCholesky::solve_batch: size mismatch");
  }
  if (count == 0) return;
  work.resize(n_ * count);
  for (std::size_t r = 0; r < count; ++r) {
    for (std::size_t k = 0; k < n_; ++k) work[r * n_ + k] = b[r * n_ + perm_[k]];
  }

  // The factor is traversed once per column for all right-hand sides; per
  // right-hand side the arithmetic order matches solve() exactly, so each
  // slice of the batch is bitwise identical to an individual solve.
  for (std::size_t j = 0; j < n_; ++j) {
    const double d = values_[col_ptr_[j]];
    for (std::size_t r = 0; r < count; ++r) work[r * n_ + j] /= d;
    for (std::size_t p = col_ptr_[j] + 1; p < col_ptr_[j + 1]; ++p) {
      const double v = values_[p];
      const std::size_t i = row_idx_[p];
      for (std::size_t r = 0; r < count; ++r) work[r * n_ + i] -= v * work[r * n_ + j];
    }
  }
  std::vector<double> acc(count, 0.0);
  for (std::size_t j = n_; j-- > 0;) {
    for (std::size_t r = 0; r < count; ++r) acc[r] = work[r * n_ + j];
    for (std::size_t p = col_ptr_[j] + 1; p < col_ptr_[j + 1]; ++p) {
      const double v = values_[p];
      const std::size_t i = row_idx_[p];
      for (std::size_t r = 0; r < count; ++r) acc[r] -= v * work[r * n_ + i];
    }
    const double d = values_[col_ptr_[j]];
    for (std::size_t r = 0; r < count; ++r) work[r * n_ + j] = acc[r] / d;
  }

  for (std::size_t r = 0; r < count; ++r) {
    for (std::size_t k = 0; k < n_; ++k) x[r * n_ + perm_[k]] = work[r * n_ + k];
  }
}

}  // namespace pdn3d::linalg
