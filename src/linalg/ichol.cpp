#include "linalg/ichol.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pdn3d::linalg {

IncompleteCholesky::IncompleteCholesky(const Csr& a) : n_(a.dimension()) {
  // Extract the lower triangle (including diagonal) in CSR form.
  row_ptr_.assign(n_ + 1, 0);
  const auto arp = a.row_ptr();
  const auto aci = a.col_idx();
  const auto av = a.values();
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = arp[r]; k < arp[r + 1]; ++k) {
      if (aci[k] <= r) ++row_ptr_[r + 1];
    }
  }
  for (std::size_t r = 0; r < n_; ++r) row_ptr_[r + 1] += row_ptr_[r];
  col_idx_.resize(row_ptr_.back());
  values_.resize(row_ptr_.back());
  {
    std::vector<std::size_t> fill = {};
    fill.assign(n_, 0);
    for (std::size_t r = 0; r < n_; ++r) {
      for (std::size_t k = arp[r]; k < arp[r + 1]; ++k) {
        if (aci[k] <= r) {
          const std::size_t pos = row_ptr_[r] + fill[r]++;
          col_idx_[pos] = aci[k];
          values_[pos] = av[k];
        }
      }
    }
  }

  diag_.assign(n_, 0.0);
  diag_pos_.assign(n_, 0);

  // IC(0): for each row r, update with previously factored rows sharing
  // sparsity, then take the square root of the diagonal.
  // Column-wise access helper: for each column c, the rows below that touch it.
  // We do the standard up-looking variant using a dense work row for clarity;
  // grid matrices have O(1) entries per row so this stays linear-ish.
  std::vector<double> work(n_, 0.0);
  std::vector<std::size_t> pattern;
  for (std::size_t r = 0; r < n_; ++r) {
    pattern.clear();
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      work[col_idx_[k]] = values_[k];
      pattern.push_back(col_idx_[k]);
    }
    std::sort(pattern.begin(), pattern.end());

    for (std::size_t c : pattern) {
      if (c == r) break;
      // work[c] = (a[r][c] - sum_{j<c} L[r][j] L[c][j]) / L[c][c]
      double sum = work[c];
      // Iterate over row c of L (columns j < c) and match against work.
      for (std::size_t k = row_ptr_[c]; k + 1 < row_ptr_[c + 1]; ++k) {
        const std::size_t j = col_idx_[k];
        if (j < c) sum -= values_[k] * work[j];
      }
      work[c] = sum / diag_[c];
    }

    double d = work[r];
    for (std::size_t c : pattern) {
      if (c == r) break;
      d -= work[c] * work[c];
    }
    if (d <= 0.0) {
      // Shifted IC fallback: keep the factorization positive definite.
      d = std::max(1e-12, std::abs(work[r]) * 1e-3);
    }
    diag_[r] = std::sqrt(d);

    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      values_[k] = (c == r) ? diag_[r] : work[c];
      if (c == r) diag_pos_[r] = k;
      work[c] = 0.0;
    }
  }
}

void IncompleteCholesky::apply(std::span<const double> r, std::span<double> z) const {
  if (r.size() != n_ || z.size() != n_) throw std::invalid_argument("IncompleteCholesky::apply: size");
  // Forward solve L y = r (y stored into z).
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = r[i];
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      if (c < i) sum -= values_[k] * z[c];
    }
    z[i] = sum / diag_[i];
  }
  // Backward solve L^T z = y. Column i of L^T is row i of L, so process rows
  // in reverse, finalizing z[i] and scattering the update into earlier rows.
  for (std::size_t ii = n_; ii-- > 0;) {
    z[ii] /= diag_[ii];
    const double zi = z[ii];
    for (std::size_t k = row_ptr_[ii]; k < row_ptr_[ii + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      if (c < ii) z[c] -= values_[k] * zi;
    }
  }
}

}  // namespace pdn3d::linalg
