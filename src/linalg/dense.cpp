#include "linalg/dense.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace pdn3d::linalg {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

std::vector<double> DenseMatrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("DenseMatrix::multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += data_[r * cols_ + c] * x[c];
    y[r] = s;
  }
  return y;
}

DenseMatrix DenseMatrix::gram() const {
  DenseMatrix g(cols_, cols_);
  for (std::size_t i = 0; i < cols_; ++i) {
    for (std::size_t j = i; j < cols_; ++j) {
      double s = 0.0;
      for (std::size_t r = 0; r < rows_; ++r) s += data_[r * cols_ + i] * data_[r * cols_ + j];
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  return g;
}

std::vector<double> DenseMatrix::transpose_multiply(std::span<const double> b) const {
  if (b.size() != rows_) throw std::invalid_argument("transpose_multiply: size mismatch");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) y[c] += data_[r * cols_ + c] * b[r];
  }
  return y;
}

std::vector<double> solve_cholesky(DenseMatrix a, std::span<const double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) throw std::invalid_argument("solve_cholesky: size mismatch");

  // In-place lower Cholesky factorization.
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a(j, k) * a(j, k);
    if (d <= 0.0) throw std::runtime_error("solve_cholesky: matrix not positive definite");
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a(i, k) * a(j, k);
      a(i, j) = s / ljj;
    }
  }

  std::vector<double> x(b.begin(), b.end());
  // Forward solve L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = x[i];
    for (std::size_t k = 0; k < i; ++k) s -= a(i, k) * x[k];
    x[i] = s / a(i, i);
  }
  // Backward solve L^T x = y.
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t k = ii + 1; k < n; ++k) s -= a(k, ii) * x[k];
    x[ii] = s / a(ii, ii);
  }
  return x;
}

DenseLu::DenseLu(DenseMatrix a) : lu_(std::move(a)) {
  const std::size_t n = lu_.rows();
  if (lu_.cols() != n) throw std::invalid_argument("DenseLu: matrix must be square");
  perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t piv = k;
    double best = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0) throw std::runtime_error("DenseLu: singular matrix");
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(piv, c));
      std::swap(perm_[k], perm_[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) / lu_(k, k);
      lu_(i, k) = m;
      for (std::size_t c = k + 1; c < n; ++c) lu_(i, c) -= m * lu_(k, c);
    }
  }
}

void DenseLu::solve(std::span<const double> b, std::span<double> x) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n || x.size() != n) throw std::invalid_argument("DenseLu::solve: size mismatch");
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
  // Forward solve (unit lower).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) y[i] -= lu_(i, k) * y[k];
  }
  // Backward solve (upper).
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) y[ii] -= lu_(ii, k) * y[k];
    y[ii] /= lu_(ii, ii);
  }
  std::copy(y.begin(), y.end(), x.begin());
}

std::vector<double> solve_lu(DenseMatrix a, std::span<const double> b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n) throw std::invalid_argument("solve_lu: size mismatch");

  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t piv = k;
    double best = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0) throw std::runtime_error("solve_lu: singular matrix");
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(a(k, c), a(piv, c));
      std::swap(perm[k], perm[piv]);
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = a(i, k) / a(k, k);
      a(i, k) = m;
      for (std::size_t c = k + 1; c < n; ++c) a(i, c) -= m * a(k, c);
    }
  }

  std::vector<double> x(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm[i]];
  // Forward solve (unit lower).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < i; ++k) x[i] -= a(i, k) * x[k];
  }
  // Backward solve (upper).
  for (std::size_t ii = n; ii-- > 0;) {
    for (std::size_t k = ii + 1; k < n; ++k) x[ii] -= a(ii, k) * x[k];
    x[ii] /= a(ii, ii);
  }
  return x;
}

}  // namespace pdn3d::linalg
