#include "linalg/schur.hpp"

#include <algorithm>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>

#include "linalg/coo.hpp"
#include "linalg/reorder.hpp"
#include "util/fnv.hpp"

namespace pdn3d::linalg {

namespace {

constexpr std::size_t kNoIndex = std::numeric_limits<std::size_t>::max();

}  // namespace

std::shared_ptr<const SchurBlock> SchurBlockCache::find(std::uint64_t fingerprint) const {
  // Exclusive even for lookup: find() mutates the hit/miss counters.
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto it = blocks_.find(fingerprint);
  if (it == blocks_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return it->second;
}

std::shared_ptr<const SchurBlock> SchurBlockCache::insert(
    std::shared_ptr<const SchurBlock> block) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto [it, inserted] = blocks_.emplace(block->fingerprint, std::move(block));
  return it->second;
}

std::size_t SchurBlockCache::size() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return blocks_.size();
}

std::size_t SchurBlockCache::hits() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return hits_;
}

std::size_t SchurBlockCache::misses() const {
  const std::shared_lock<std::shared_mutex> lock(mutex_);
  return misses_;
}

SchurMacromodel::SchurMacromodel(const Csr& a, std::span<const int> block_of,
                                 const SchurOptions& options, SchurBlockCache* cache)
    : a_(a), block_of_(block_of.begin(), block_of.end()), n_(a.dimension()) {
  if (block_of_.size() != n_) {
    throw std::invalid_argument("SchurMacromodel: block_of size mismatch");
  }
  int block_count = 0;
  for (const int b : block_of_) {
    if (b < 0) throw std::invalid_argument("SchurMacromodel: negative block id");
    block_count = std::max(block_count, b + 1);
  }
  if (block_count < 2) {
    throw std::runtime_error("SchurMacromodel declined: fewer than two blocks");
  }

  const auto rp = a_.row_ptr();
  const auto ci = a_.col_idx();
  const auto vals = a_.values();

  // Interface detection straight from the matrix: any node coupled into
  // another block. Cross-block elements connect interface nodes only, by
  // construction of this set.
  std::vector<char> is_interface(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = rp[i]; k < rp[i + 1]; ++k) {
      if (vals[k] != 0.0 && block_of_[ci[k]] != block_of_[i]) {
        is_interface[i] = 1;
        break;
      }
    }
  }
  reduced_index_.assign(n_, kNoIndex);
  for (std::size_t i = 0; i < n_; ++i) {
    if (is_interface[i]) {
      reduced_index_[i] = interface_.size();
      interface_.push_back(i);
    }
  }
  if (interface_.empty()) {
    throw std::runtime_error("SchurMacromodel declined: blocks are not coupled");
  }
  const double fraction = static_cast<double>(interface_.size()) / static_cast<double>(n_);
  if (fraction > options.max_interface_fraction) {
    throw std::runtime_error(
        "SchurMacromodel declined: interface fraction " + std::to_string(fraction) +
        " exceeds " + std::to_string(options.max_interface_fraction));
  }

  SparseCholeskyOptions chol_opts;
  chol_opts.max_fill_ratio = options.max_fill_ratio;

  // Scratch maps reused across blocks: global node -> local interior index /
  // local interface slot.
  std::vector<std::size_t> interior_of(n_, kNoIndex);
  std::vector<std::size_t> slot_of(n_, kNoIndex);

  blocks_.reserve(static_cast<std::size_t>(block_count));
  for (int b = 0; b < block_count; ++b) {
    BlockSlot slot;
    std::vector<std::size_t> slot_nodes;  ///< local slot -> global interface node
    for (std::size_t i = 0; i < n_; ++i) {
      if (block_of_[i] != b) continue;
      if (is_interface[i]) {
        slot_of[i] = slot_nodes.size();
        slot_nodes.push_back(i);
      } else {
        interior_of[i] = slot.interior_nodes.size();
        slot.interior_nodes.push_back(i);
      }
    }
    const std::size_t ni = slot.interior_nodes.size();
    const std::size_t ns = slot_nodes.size();
    slot.interface_slots.reserve(ns);
    for (const std::size_t g : slot_nodes) slot.interface_slots.push_back(reduced_index_[g]);

    // Canonical sub-mesh fingerprint in local numbering (ascending global
    // order): the interior sub-matrix plus its interface couplings. Identical
    // dies hash equal regardless of where they sit in the global numbering.
    util::Fnv1a fp;
    fp.u64(ni);
    fp.u64(ns);
    for (std::size_t li = 0; li < ni; ++li) {
      const std::size_t gi = slot.interior_nodes[li];
      for (std::size_t k = rp[gi]; k < rp[gi + 1]; ++k) {
        const std::size_t gj = ci[k];
        if (vals[k] == 0.0) continue;
        if (interior_of[gj] != kNoIndex) {
          fp.byte(0);
          fp.u64(interior_of[gj]);
        } else {
          fp.byte(1);
          fp.u64(slot_of[gj]);
        }
        fp.f64(vals[k]);
      }
      fp.byte(2);  // row terminator
    }
    const std::uint64_t fingerprint = fp.value();

    std::shared_ptr<const SchurBlock> data = cache != nullptr ? cache->find(fingerprint) : nullptr;
    if (data != nullptr && (data->interior_count != ni || data->interface_count != ns)) {
      data = nullptr;  // fingerprint collision paranoia: rebuild
    }
    if (data != nullptr) {
      ++blocks_reused_;
    } else {
      // Build the block: local factor, interface couplings E, the coupling
      // solves W = A_II^-1 E, and the interface contribution C = E^T W.
      CooBuilder local(ni);
      std::vector<std::size_t> e_row;
      std::vector<std::size_t> e_col;
      std::vector<double> e_val;
      for (std::size_t li = 0; li < ni; ++li) {
        const std::size_t gi = slot.interior_nodes[li];
        for (std::size_t k = rp[gi]; k < rp[gi + 1]; ++k) {
          const std::size_t gj = ci[k];
          if (vals[k] == 0.0) continue;
          if (interior_of[gj] != kNoIndex) {
            local.add(li, interior_of[gj], vals[k]);
          } else {
            e_row.push_back(li);
            e_col.push_back(slot_of[gj]);
            e_val.push_back(vals[k]);
          }
        }
      }
      if (ni == 0) {
        throw std::runtime_error("SchurMacromodel declined: block " + std::to_string(b) +
                                 " has no interior nodes");
      }
      const Csr a_ii = local.compress();
      // Throws on non-SPD block or fill-guard trip; the caller's rung fails.
      auto built = std::make_shared<SchurBlock>(
          fingerprint, ni, ns, SparseCholesky(a_ii, rcm_ordering(a_ii), chol_opts));

      built->e_row = std::move(e_row);
      built->e_col = std::move(e_col);
      built->e_val = std::move(e_val);

      // W columns: one batched solve over the interface couplings.
      built->w = DenseMatrix(ni, ns);
      if (ns > 0) {
        std::vector<double> rhs(ni * ns, 0.0);
        for (std::size_t t = 0; t < built->e_val.size(); ++t) {
          rhs[built->e_col[t] * ni + built->e_row[t]] = built->e_val[t];
        }
        std::vector<double> sol(ni * ns, 0.0);
        std::vector<double> work;
        built->factor.solve_batch(rhs, sol, ns, work);
        for (std::size_t s = 0; s < ns; ++s) {
          for (std::size_t li = 0; li < ni; ++li) built->w(li, s) = sol[s * ni + li];
        }
      }

      built->c = DenseMatrix(ns, ns);
      for (std::size_t t = 0; t < built->e_val.size(); ++t) {
        const std::size_t li = built->e_row[t];
        const std::size_t s1 = built->e_col[t];
        const double v = built->e_val[t];
        for (std::size_t s2 = 0; s2 < ns; ++s2) built->c(s1, s2) += v * built->w(li, s2);
      }

      data = cache != nullptr ? cache->insert(std::move(built)) : std::move(built);
    }
    slot.data = std::move(data);
    blocks_.push_back(std::move(slot));

    // Reset the scratch maps for the next block.
    for (const std::size_t g : blocks_.back().interior_nodes) interior_of[g] = kNoIndex;
    for (const std::size_t g : slot_nodes) slot_of[g] = kNoIndex;
  }

  // Reduced interface system S = A_BB - sum_b C_b. A_BB comes straight from
  // the matrix (cross-block elements, interface-interface in-block elements,
  // tap diagonals); the C_b are the cached per-block contributions.
  const std::size_t m = interface_.size();
  CooBuilder s_builder(m);
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t gi = interface_[r];
    for (std::size_t k = rp[gi]; k < rp[gi + 1]; ++k) {
      const std::size_t gj = ci[k];
      if (reduced_index_[gj] != kNoIndex && vals[k] != 0.0) {
        s_builder.add(r, reduced_index_[gj], vals[k]);
      }
    }
  }
  for (const BlockSlot& bs : blocks_) {
    const std::size_t ns = bs.interface_slots.size();
    for (std::size_t s1 = 0; s1 < ns; ++s1) {
      for (std::size_t s2 = 0; s2 < ns; ++s2) {
        const double v = bs.data->c(s1, s2);
        if (v != 0.0) s_builder.add(bs.interface_slots[s1], bs.interface_slots[s2], -v);
      }
    }
  }
  const Csr s = s_builder.compress();
  // The Schur complement of an SPD matrix is SPD; a non-positive pivot here
  // means the mesh itself is defective and the rung should fail.
  reduced_.emplace(s, rcm_ordering(s), chol_opts);
}

void SchurMacromodel::solve(std::span<const double> b, std::span<double> x,
                            SchurScratch& scratch) const {
  solve_batch(b, x, 1, scratch);
}

void SchurMacromodel::solve_batch(std::span<const double> b, std::span<double> x,
                                  std::size_t count, SchurScratch& scratch) const {
  if (b.size() != n_ * count || x.size() != n_ * count) {
    throw std::invalid_argument("SchurMacromodel::solve_batch: size mismatch");
  }
  const std::size_t m = interface_.size();

  // Reduced RHS starts as b at the interface nodes; the per-block interior
  // solves then subtract E^T y. Gather before any write so b may alias x.
  std::vector<double>& reduced = scratch.reduced;
  reduced.assign(m * count, 0.0);
  for (std::size_t r = 0; r < count; ++r) {
    for (std::size_t j = 0; j < m; ++j) reduced[r * m + j] = b[r * n_ + interface_[j]];
  }

  // Forward pass: y_b = A_II,b^-1 b_I per block (batched), stored into the
  // interior slots of x; reduced RHS -= E_b^T y_b.
  std::vector<double>& local = scratch.interior;
  for (const BlockSlot& bs : blocks_) {
    const std::size_t ni = bs.interior_nodes.size();
    local.assign(ni * count, 0.0);
    for (std::size_t r = 0; r < count; ++r) {
      for (std::size_t li = 0; li < ni; ++li) {
        local[r * ni + li] = b[r * n_ + bs.interior_nodes[li]];
      }
    }
    bs.data->factor.solve_batch(local, local, count, scratch.work);
    for (std::size_t r = 0; r < count; ++r) {
      for (std::size_t li = 0; li < ni; ++li) {
        x[r * n_ + bs.interior_nodes[li]] = local[r * ni + li];
      }
    }
    const auto& e_row = bs.data->e_row;
    const auto& e_col = bs.data->e_col;
    const auto& e_val = bs.data->e_val;
    for (std::size_t r = 0; r < count; ++r) {
      for (std::size_t t = 0; t < e_val.size(); ++t) {
        reduced[r * m + bs.interface_slots[e_col[t]]] -=
            e_val[t] * x[r * n_ + bs.interior_nodes[e_row[t]]];
      }
    }
  }

  // Reduced interface solve (batched), scattered back into x.
  reduced_->solve_batch(reduced, reduced, count, scratch.work);
  for (std::size_t r = 0; r < count; ++r) {
    for (std::size_t j = 0; j < m; ++j) x[r * n_ + interface_[j]] = reduced[r * m + j];
  }

  // Back-substitution: x_I = y - W x_B per block, y already in place.
  std::vector<double>& xb = scratch.update;
  for (const BlockSlot& bs : blocks_) {
    const std::size_t ni = bs.interior_nodes.size();
    const std::size_t ns = bs.interface_slots.size();
    if (ns == 0) continue;
    xb.assign(ns, 0.0);
    for (std::size_t r = 0; r < count; ++r) {
      for (std::size_t s = 0; s < ns; ++s) {
        xb[s] = reduced[r * m + bs.interface_slots[s]];
      }
      const DenseMatrix& w = bs.data->w;
      for (std::size_t li = 0; li < ni; ++li) {
        double acc = 0.0;
        for (std::size_t s = 0; s < ns; ++s) acc += w(li, s) * xb[s];
        x[r * n_ + bs.interior_nodes[li]] -= acc;
      }
    }
  }
}

std::vector<std::size_t> WoodburyUpdate::touched_nodes(const Csr& a_base, const Csr& a_new) {
  if (a_base.dimension() != a_new.dimension()) {
    throw std::invalid_argument("WoodburyUpdate: dimension mismatch");
  }
  const std::size_t n = a_base.dimension();
  const auto rp0 = a_base.row_ptr();
  const auto ci0 = a_base.col_idx();
  const auto v0 = a_base.values();
  const auto rp1 = a_new.row_ptr();
  const auto ci1 = a_new.col_idx();
  const auto v1 = a_new.values();

  std::vector<std::size_t> touched;
  for (std::size_t i = 0; i < n; ++i) {
    // Merge-walk both sorted rows; any structural or value difference marks
    // the node (its symmetric partner is marked by its own row).
    std::size_t k0 = rp0[i];
    std::size_t k1 = rp1[i];
    bool differs = false;
    while (!differs && (k0 < rp0[i + 1] || k1 < rp1[i + 1])) {
      if (k0 < rp0[i + 1] && k1 < rp1[i + 1] && ci0[k0] == ci1[k1]) {
        if (v0[k0] != v1[k1]) differs = true;
        ++k0;
        ++k1;
      } else if (k1 >= rp1[i + 1] || (k0 < rp0[i + 1] && ci0[k0] < ci1[k1])) {
        if (v0[k0] != 0.0) differs = true;
        ++k0;
      } else {
        if (v1[k1] != 0.0) differs = true;
        ++k1;
      }
    }
    if (differs) touched.push_back(i);
  }
  return touched;
}

WoodburyUpdate::WoodburyUpdate(std::shared_ptr<const SchurMacromodel> base, const Csr& a_new,
                               std::size_t max_rank)
    : base_(std::move(base)) {
  if (base_ == nullptr) throw std::invalid_argument("WoodburyUpdate: null base");
  const std::size_t n = base_->dimension();
  touched_ = touched_nodes(base_->matrix(), a_new);
  const std::size_t m = touched_.size();
  if (m == 0) {
    throw std::runtime_error("WoodburyUpdate declined: matrices are identical");
  }
  if (m > max_rank) {
    throw std::runtime_error("WoodburyUpdate declined: delta touches " + std::to_string(m) +
                             " nodes, above the rank cap " + std::to_string(max_rank));
  }

  // D = delta restricted to the touched nodes. Symmetry of both matrices
  // confines every differing entry to touched x touched.
  d_ = DenseMatrix(m, m);
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t q = 0; q < m; ++q) {
      d_(p, q) = a_new.at(touched_[p], touched_[q]) - base_->matrix().at(touched_[p], touched_[q]);
    }
  }

  // Z = A0^-1 P: one batched hierarchical solve over unit right-hand sides.
  SchurScratch scratch;
  std::vector<double> rhs(n * m, 0.0);
  for (std::size_t q = 0; q < m; ++q) rhs[q * n + touched_[q]] = 1.0;
  std::vector<double> sol(n * m, 0.0);
  base_->solve_batch(rhs, sol, m, scratch);
  z_ = DenseMatrix(n, m);
  for (std::size_t q = 0; q < m; ++q) {
    for (std::size_t i = 0; i < n; ++i) z_(i, q) = sol[q * n + i];
  }

  // Capture matrix K = I + D M with M = P^T Z. Singular K = rank-deficient
  // update; DenseLu throws and the caller's rung falls through cleanly.
  DenseMatrix k(m, m);
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t q = 0; q < m; ++q) {
      double acc = 0.0;
      for (std::size_t r = 0; r < m; ++r) acc += d_(p, r) * z_(touched_[r], q);
      k(p, q) = acc;
    }
    k(p, p) += 1.0;
  }
  capture_.emplace(std::move(k));
}

void WoodburyUpdate::solve(std::span<const double> b, std::span<double> x,
                           SchurScratch& scratch) const {
  solve_batch(b, x, 1, scratch);
}

void WoodburyUpdate::solve_batch(std::span<const double> b, std::span<double> x,
                                 std::size_t count, SchurScratch& scratch) const {
  const std::size_t n = base_->dimension();
  const std::size_t m = touched_.size();
  if (b.size() != n * count || x.size() != n * count) {
    throw std::invalid_argument("WoodburyUpdate::solve_batch: size mismatch");
  }
  // y = A0^-1 b through the base macromodel, then the low-rank correction
  // x = y - Z K^-1 D P^T y per slice.
  base_->solve_batch(b, x, count, scratch);
  std::vector<double>& small = scratch.update;
  small.assign(3 * m, 0.0);
  const std::span<double> t(small.data(), m);
  const std::span<double> u(small.data() + m, m);
  const std::span<double> w(small.data() + 2 * m, m);
  for (std::size_t r = 0; r < count; ++r) {
    for (std::size_t p = 0; p < m; ++p) t[p] = x[r * n + touched_[p]];
    for (std::size_t p = 0; p < m; ++p) {
      double acc = 0.0;
      for (std::size_t q = 0; q < m; ++q) acc += d_(p, q) * t[q];
      u[p] = acc;
    }
    capture_->solve(u, w);
    for (std::size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (std::size_t q = 0; q < m; ++q) acc += z_(i, q) * w[q];
      x[r * n + i] -= acc;
    }
  }
}

}  // namespace pdn3d::linalg
