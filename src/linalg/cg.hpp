#pragma once

/// @file cg.hpp
/// @brief Preconditioned conjugate gradient for the SPD nodal systems the
/// R-Mesh engine produces (this is our HSPICE substitute).

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "linalg/csr.hpp"

namespace pdn3d::linalg {

/// Identity / Jacobi / incomplete-Cholesky preconditioner choice.
enum class Preconditioner { kNone, kJacobi, kIncompleteCholesky };

struct CgOptions {
  double rel_tolerance = 1e-10;  ///< stop when ||r|| <= rel_tolerance * ||b||
  std::size_t max_iterations = 20000;
  Preconditioner preconditioner = Preconditioner::kIncompleteCholesky;
};

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;  ///< final ||b - Ax||
  bool converged = false;
};

/// Solve A x = b for SPD A. Throws std::invalid_argument on size mismatch.
CgResult solve_cg(const Csr& a, std::span<const double> b, const CgOptions& options = {});

}  // namespace pdn3d::linalg
