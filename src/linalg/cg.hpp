#pragma once

/// @file cg.hpp
/// @brief Preconditioned conjugate gradient for the SPD nodal systems the
/// R-Mesh engine produces (this is our HSPICE substitute).
///
/// solve_cg never throws for data-dependent reasons: every failure mode --
/// non-finite right-hand side, divergence to NaN/Inf, stagnation, an
/// indefinite matrix, a defective preconditioner -- is reported through
/// CgResult::failure with a human-readable detail string, so the solver
/// escalation ladder (irdrop::IrSolver) can retry on a sturdier rung instead
/// of the sweep dying or silently consuming garbage.

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "linalg/csr.hpp"

namespace pdn3d::linalg {

class IncompleteCholesky;

/// Identity / Jacobi / incomplete-Cholesky preconditioner choice.
enum class Preconditioner { kNone, kJacobi, kIncompleteCholesky };

struct CgOptions {
  double rel_tolerance = 1e-10;  ///< stop when ||r|| <= rel_tolerance * ||b||
  std::size_t max_iterations = 20000;
  Preconditioner preconditioner = Preconditioner::kIncompleteCholesky;
  /// Reuse an already-built IC(0) factor (non-owning; must outlive the call).
  /// Only consulted when preconditioner == kIncompleteCholesky; when null a
  /// fresh factorization is computed.
  const IncompleteCholesky* cached_ic = nullptr;
  /// Stagnation watchdog: fail if the best residual norm improves by less
  /// than stagnation_improvement over a window of stagnation_window
  /// iterations. 0 disables the check.
  std::size_t stagnation_window = 500;
  double stagnation_improvement = 1e-3;  ///< required fractional improvement
  /// Optional warm start (non-owning; must stay alive for the call). When it
  /// has dimension() finite entries, CG starts from it instead of zero --
  /// worth hundreds of iterations when consecutive right-hand sides are
  /// similar (sequential LUT entries). A non-finite x0 silently falls back to
  /// the zero start. Determinism caveat: the converged solution depends
  /// (bitwise) on x0, so sweep paths with cross-thread-count determinism
  /// contracts must only enable this where x0 cannot depend on chunk layout
  /// (see docs/SOLVER.md).
  std::span<const double> x0;
};

/// Why a CG solve did not produce a verified answer.
enum class CgFailure {
  kNone,               ///< converged
  kMaxIterations,      ///< hit max_iterations with residual above target
  kDivergedNonFinite,  ///< residual (or rhs) went NaN/Inf -- bail immediately
  kStagnated,          ///< residual stopped improving (watchdog window)
  kIndefinite,         ///< p'Ap <= 0: matrix not SPD on the Krylov subspace
  kBadPreconditioner,  ///< preconditioner unusable (e.g. non-positive diagonal)
  kCancelled,          ///< an exec::CancelScope on this thread requested a stop
};

[[nodiscard]] const char* to_string(CgFailure failure);

struct CgResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;  ///< final ||b - Ax||
  bool converged = false;
  CgFailure failure = CgFailure::kNone;  ///< kNone iff converged (or trivial)
  std::string detail;                    ///< human-readable failure context
};

/// Reusable CG work vectors. A plain solve_cg call allocates four (or five,
/// with Jacobi) n-vectors; a sweep of thousands of same-sized solves can
/// instead keep one CgScratch per evaluation context and amortize the
/// allocations. Never share one CgScratch between concurrent solves.
struct CgScratch {
  std::vector<double> r;
  std::vector<double> z;
  std::vector<double> p;
  std::vector<double> ap;
  std::vector<double> inv_diag;
};

/// Solve A x = b for SPD A. Throws std::invalid_argument only on caller bugs
/// (size mismatch); data-dependent failures come back in CgResult. When
/// @p scratch is non-null its buffers are (re)used for the solve's work
/// vectors instead of allocating fresh ones.
CgResult solve_cg(const Csr& a, std::span<const double> b, const CgOptions& options = {},
                  CgScratch* scratch = nullptr);

}  // namespace pdn3d::linalg
