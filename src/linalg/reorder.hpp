#pragma once

/// @file reorder.hpp
/// @brief Reverse Cuthill-McKee (RCM) bandwidth-reducing ordering.
///
/// Power-grid conductance matrices are near-planar; after RCM their
/// bandwidth is O(grid width), which makes a banded direct factorization
/// practical (see banded.hpp). Used by the kBandedDirect solver path.

#include <cstddef>
#include <vector>

#include "linalg/csr.hpp"

namespace pdn3d::linalg {

/// Returns a permutation `perm` such that new index k corresponds to old
/// index perm[k]. Handles disconnected graphs (each component ordered from a
/// minimum-degree peripheral seed).
std::vector<std::size_t> rcm_ordering(const Csr& a);

/// Half-bandwidth of A under a permutation: max |pos[i] - pos[j]| over
/// nonzero off-diagonal entries, where pos is the inverse permutation.
std::size_t bandwidth_under(const Csr& a, const std::vector<std::size_t>& perm);

/// Identity permutation (for comparing orderings).
std::vector<std::size_t> identity_ordering(std::size_t n);

}  // namespace pdn3d::linalg
