#pragma once

/// @file status.hpp
/// @brief Structured error reporting for the numerical-health layer.
///
/// The co-optimization loop samples hundreds of R-Mesh design points per
/// benchmark; a single ill-conditioned point must not kill the sweep, and a
/// degenerate mesh must never produce plausible-looking garbage. Every solve
/// is therefore either *verified-correct* or ends in one of two structured
/// outcomes:
///
///  - a ValidationReport full of errors (defective input, caught before the
///    matrix reaches a solver), carried by ValidationError, or
///  - a Status with StatusCode::kNumericalFailure (every rung of the solver
///    escalation ladder failed), carried by NumericalError.
///
/// Sweeping callers (co-optimizer, Monte Carlo, LUT builders) catch these two
/// exception types, record the failure, and move on; see docs/ROBUSTNESS.md
/// for the conventions and the CLI exit-code table.

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace pdn3d::core {

/// Coarse failure class. Mirrors the CLI exit codes (docs/ROBUSTNESS.md).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,    ///< caller bug: bad sizes, out-of-range parameters
  kInputError,         ///< defective input data: mesh/tech-file/trace defects
  kNumericalFailure,   ///< all solver rungs failed or produced garbage
  kCancelled,          ///< work abandoned on a cooperative cancellation request
};

[[nodiscard]] const char* to_string(StatusCode code);

/// Cheap value type for "did it work, and if not, why". Functions that can
/// fail for data-dependent reasons return Status (or a result struct holding
/// one) instead of throwing, so sweeps can skip-and-report.
class Status {
 public:
  Status() = default;  ///< OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok() { return {}; }
  [[nodiscard]] static Status invalid_argument(std::string message) {
    return {StatusCode::kInvalidArgument, std::move(message)};
  }
  [[nodiscard]] static Status input_error(std::string message) {
    return {StatusCode::kInputError, std::move(message)};
  }
  [[nodiscard]] static Status numerical_failure(std::string message) {
    return {StatusCode::kNumericalFailure, std::move(message)};
  }
  [[nodiscard]] static Status cancelled(std::string message) {
    return {StatusCode::kCancelled, std::move(message)};
  }

  [[nodiscard]] bool is_ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "<code>: <message>" (or "ok").
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

enum class Severity { kWarning, kError };

[[nodiscard]] const char* to_string(Severity severity);

/// One finding of a validation pass. @p check is a stable short slug
/// ("floating-node", "non-positive-conductance", ...) tests and tools can
/// match on without parsing prose.
struct ValidationIssue {
  Severity severity = Severity::kError;
  std::string check;
  std::string message;
  /// Context: offending node id, or kNoNode when not node-specific.
  static constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);
  std::size_t node = kNoNode;
};

/// Accumulates findings instead of throwing on the first one, so a defective
/// mesh yields one report naming every problem (the CLI prints it verbatim).
class ValidationReport {
 public:
  void add_error(std::string check, std::string message,
                 std::size_t node = ValidationIssue::kNoNode);
  void add_warning(std::string check, std::string message,
                   std::size_t node = ValidationIssue::kNoNode);

  /// True when no *errors* were recorded (warnings do not fail validation).
  [[nodiscard]] bool ok() const { return error_count_ == 0; }
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] std::size_t warning_count() const { return issues_.size() - error_count_; }
  [[nodiscard]] const std::vector<ValidationIssue>& issues() const { return issues_; }

  /// True when some issue (any severity) carries the given check slug.
  [[nodiscard]] bool has_check(std::string_view check) const;

  /// Multi-line human-readable report, one issue per line.
  [[nodiscard]] std::string to_string() const;

  /// Collapse into a Status: OK, or kInputError summarizing the errors.
  [[nodiscard]] Status to_status() const;

  /// Append all of @p other's issues (for staged validation passes).
  void merge(const ValidationReport& other);

 private:
  std::vector<ValidationIssue> issues_;
  std::size_t error_count_ = 0;
};

/// Thrown when defective *input* reaches an API that cannot return Status
/// (constructors). Derives from std::invalid_argument so pre-existing callers
/// that expected the old ad-hoc throws keep working.
class ValidationError : public std::invalid_argument {
 public:
  explicit ValidationError(ValidationReport report)
      : std::invalid_argument(report.to_string()), report_(std::move(report)) {}

  [[nodiscard]] const ValidationReport& report() const { return report_; }

 private:
  ValidationReport report_;
};

/// Thrown when a solve exhausted the escalation ladder (or a throwing wrapper
/// around a Status-returning API is used). Sweeping callers catch this to
/// skip-and-report the design point.
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }

 private:
  Status status_;
};

}  // namespace pdn3d::core
