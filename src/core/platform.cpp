#include "core/platform.hpp"

#include <cstdlib>
#include <sstream>
#include <string_view>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace pdn3d::core {

namespace {

/// Expected-solve-count hint for cached designs: a design that earns a cache
/// slot is about to serve at least a LUT build (3^4 states on the paper's
/// 4-die stack), usually much more (controller runs, co-optimizer probes).
constexpr std::size_t kManyStateSolves = 81;

/// PDN3D_HIER_TIER environment opt-in for the hierarchical solver tier.
bool hier_tier_from_env() {
  const char* value = std::getenv("PDN3D_HIER_TIER");
  if (value == nullptr) return false;
  const std::string_view v(value);
  return !(v.empty() || v == "0" || v == "off" || v == "false");
}

}  // namespace

Platform::Platform(Benchmark benchmark)
    : bench_(std::move(benchmark)),
      hier_tier_(hier_tier_from_env()),
      macromodel_ctx_(std::make_shared<irdrop::MacromodelContext>()) {}

power::MemoryState Platform::parse_state(std::string_view text, double io_activity) const {
  return power::parse_memory_state(text, bench_.stack.dram_spec, io_activity);
}

irdrop::PowerBinding Platform::power_binding() const {
  irdrop::PowerBinding pb;
  pb.dram = bench_.dram_power;
  pb.logic = bench_.logic_power;
  pb.dram_scale = bench_.power_scale;
  pb.logic_active = true;
  return pb;
}

std::string Platform::cache_key(const pdn::PdnConfig& config) const {
  std::ostringstream os;
  os << config.summary() << "|ltl=" << pdn::to_string(config.logic_tsv_location)
     << "|al=" << config.align_tsvs_to_c4;
  return os.str();
}

Platform::CachedDesign& Platform::design(const pdn::PdnConfig& config) const {
  static auto& m_hits = obs::counter("platform.design_cache_hits");
  static auto& m_misses = obs::counter("platform.design_cache_misses");
  static auto& m_inserts = obs::counter("platform.design_cache_inserts");
  const std::string key = cache_key(config);
  {
    const std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      m_hits.add(1);
      return *it->second;
    }
  }
  m_misses.add(1);

  // Build outside any lock: stack construction + factorization dominate, and
  // concurrent readers of other designs must not stall behind them. Two
  // threads racing on the same key both build; emplace keeps the first and
  // the loser's copy is discarded (counted as a miss but not an insert).
  PDN3D_TRACE_SPAN("platform/build_design");
  auto cd = std::make_unique<CachedDesign>();
  cd->built = pdn::build_stack(bench_.stack, config);
  // Cached designs serve many states (LUT construction, controller runs):
  // declare the many-solves access pattern so the analyzer gets the cached
  // sparse-direct factor (two triangular sweeps per state; the ladder still
  // covers it if the factorization is declined).
  cd->analyzer = std::make_unique<irdrop::IrAnalyzer>(
      cd->built.model, bench_.stack.dram_fp, bench_.stack.logic_fp, power_binding(),
      irdrop::select_solver_kind(kManyStateSolves));
  const std::unique_lock<std::shared_mutex> lock(cache_mutex_);
  auto [pos, inserted] = cache_.emplace(key, std::move(cd));
  if (inserted) m_inserts.add(1);
  return *pos->second;
}

irdrop::IrResult Platform::analyze(const pdn::PdnConfig& config,
                                   const power::MemoryState& state) const {
  return design(config).analyzer->analyze(state);
}

irdrop::IrResult Platform::analyze(const pdn::PdnConfig& config, std::string_view state,
                                   double io_activity) const {
  return analyze(config, parse_state(state, io_activity));
}

double Platform::measure_ir_mv(const pdn::PdnConfig& config) const {
  // One-shot: build, analyze, discard (sweeps would otherwise exhaust memory
  // through the cache).
  const auto built = pdn::build_stack(bench_.stack, config);
  const irdrop::IrAnalyzer analyzer(built.model, bench_.stack.dram_fp, bench_.stack.logic_fp,
                                    power_binding());
  const auto state = parse_state(bench_.default_state, bench_.default_io_activity);
  return analyzer.analyze(state).dram_max_mv;
}

double Platform::measure_ir_mv(const pdn::PdnConfig& config,
                               std::size_t expected_design_points) const {
  const irdrop::SolverKind kind = irdrop::select_solver_kind(
      1, hier_tier_ ? irdrop::ReuseHint::kSharedDies : irdrop::ReuseHint::kNone,
      expected_design_points);
  if (kind != irdrop::SolverKind::kMacromodel) return measure_ir_mv(config);

  const auto built = pdn::build_stack(bench_.stack, config);
  irdrop::IrSolverOptions options;
  options.macromodel = macromodel_ctx_;
  const irdrop::IrAnalyzer analyzer(built.model, bench_.stack.dram_fp, bench_.stack.logic_fp,
                                    power_binding(), kind, std::move(options));
  const auto state = parse_state(bench_.default_state, bench_.default_io_activity);
  return analyzer.analyze(state).dram_max_mv;
}

void Platform::prepare_sweep(const pdn::PdnConfig& representative,
                             std::size_t expected_design_points) const {
  if (!hier_tier_ || expected_design_points < irdrop::kMacromodelMinDesignPoints) return;
  PDN3D_TRACE_SPAN("platform/prepare_sweep");
  try {
    const auto built = pdn::build_stack(bench_.stack, representative);
    irdrop::IrSolverOptions options;
    options.macromodel = macromodel_ctx_;
    const irdrop::IrSolver solver(built.model, irdrop::SolverKind::kMacromodel,
                                  std::move(options));
    if (auto base = solver.macromodel_base()) {
      macromodel_ctx_->register_base(std::move(base));
    }
  } catch (const std::exception& e) {
    // The anchor is an optimization; a representative the mesh builder or
    // the macromodel guards reject just leaves the sweep anchor-less.
    util::log_warn("prepare_sweep: no macromodel anchor -- ", e.what());
  }
}

irdrop::EmReport Platform::em_check(const pdn::PdnConfig& config,
                                    const power::MemoryState& state,
                                    const irdrop::EmOptions& options) const {
  const irdrop::IrAnalyzer& a = analyzer(config);
  return irdrop::em_check(a.model(), bench_.stack.tech, a.node_voltages(state), options);
}

irdrop::EmReport Platform::measure_em(const pdn::PdnConfig& config,
                                      const irdrop::EmOptions& options) const {
  const auto built = pdn::build_stack(bench_.stack, config);
  const irdrop::IrAnalyzer analyzer(built.model, bench_.stack.dram_fp, bench_.stack.logic_fp,
                                    power_binding());
  const auto state = parse_state(bench_.default_state, bench_.default_io_activity);
  return irdrop::em_check(built.model, bench_.stack.tech, analyzer.node_voltages(state), options);
}

pdn::BuildInfo Platform::build_info(const pdn::PdnConfig& config) const {
  return design(config).built.info;
}

Platform::RailPairResult Platform::analyze_rail_pair(const pdn::PdnConfig& config,
                                                     const power::MemoryState& state,
                                                     double vss_metal_scale) const {
  if (vss_metal_scale <= 0.0) {
    throw std::invalid_argument("analyze_rail_pair: vss_metal_scale must be positive");
  }
  RailPairResult out;
  out.vdd = analyze(config, state);
  // The return net carries the same currents through a mirrored grid; only
  // its metal budget may differ.
  pdn::PdnConfig vss_cfg = config;
  vss_cfg.metal_usage_scale *= vss_metal_scale;
  out.vss = analyze(vss_cfg, state);
  out.combined_worst_mv = out.vdd.dram_max_mv + out.vss.dram_max_mv;
  return out;
}

const irdrop::IrLut& Platform::lut(const pdn::PdnConfig& config) const {
  static auto& m_hits = obs::counter("lut.hit");
  static auto& m_misses = obs::counter("lut.miss");
  CachedDesign& cd = design(config);
  // Per-design mutex (not call_once): a failed build must stay retryable,
  // and concurrent callers of *different* designs must not serialize.
  const std::lock_guard<std::mutex> lock(cd.lut_mutex);
  if (cd.lut) {
    m_hits.add(1);
  } else {
    m_misses.add(1);
    cd.lut = std::make_unique<irdrop::IrLut>(
        irdrop::IrLut::build(*cd.analyzer, bench_.stack.dram_spec, bench_.sim.max_active_per_die,
                             bench_.sim.io_demand_factor));
  }
  return *cd.lut;
}

const irdrop::IrAnalyzer& Platform::analyzer(const pdn::PdnConfig& config) const {
  return *design(config).analyzer;
}

memctrl::SimResult Platform::simulate(const pdn::PdnConfig& config,
                                      memctrl::PolicyConfig policy) const {
  return simulate(config, policy, memctrl::generate_workload(bench_.workload));
}

memctrl::SimResult Platform::simulate(const pdn::PdnConfig& config, memctrl::PolicyConfig policy,
                                      std::vector<memctrl::Request> requests) const {
  policy.lut = &lut(config);
  memctrl::MemoryController controller(bench_.sim, policy);
  return controller.run(std::move(requests));
}

opt::CoOptimizer Platform::make_cooptimizer(int threads) const {
  return opt::CoOptimizer(bench_.design_space, std::make_unique<PlatformEvaluator>(*this),
                          threads);
}

}  // namespace pdn3d::core
