#pragma once

/// @file benchmarks.hpp
/// @brief The four 3D DRAM benchmarks of Table 1.
///
/// Each benchmark bundles everything a study needs: die floorplans,
/// technology, the industry-standard baseline design point (Table 9
/// "Baseline" rows), the power model calibration, the memory-controller
/// configuration, and the co-optimization design space.

#include <string>

#include "memctrl/controller.hpp"
#include "memctrl/workload.hpp"
#include "opt/design_space.hpp"
#include "pdn/stack_builder.hpp"
#include "power/power_model.hpp"

namespace pdn3d::core {

enum class BenchmarkKind {
  kStackedDdr3OffChip,  ///< stand-alone 4-die DDR3 stack
  kStackedDdr3OnChip,   ///< same stack mounted on an OpenSPARC T2 host
  kWideIo,              ///< JEDEC Wide I/O on T2, center micro-bumps
  kHmc,                 ///< hybrid memory cube on its own logic die
};

[[nodiscard]] std::string to_string(BenchmarkKind k);

struct Benchmark {
  std::string name;
  BenchmarkKind kind = BenchmarkKind::kStackedDdr3OffChip;

  pdn::StackSpec stack;        ///< floorplans + technology + packaging geometry
  pdn::PdnConfig baseline;     ///< Table 9 baseline design point
  opt::DesignSpace design_space;

  power::DiePowerSpec dram_power;
  power::LogicPowerSpec logic_power;
  double power_scale = 1.0;  ///< multiplies the DRAM power model

  /// Default (worst-case interleaving read) memory state and its I/O
  /// activity; the co-optimizer minimizes the IR drop of this state.
  std::string default_state = "0-0-0-2";
  double default_io_activity = 1.0;

  memctrl::SimConfig sim;
  memctrl::WorkloadConfig workload;

  /// Paper anchor for the baseline max IR drop (mV) -- used by tests and the
  /// EXPERIMENTS.md comparison, not by the model itself.
  double paper_baseline_ir_mv = 0.0;
};

Benchmark make_benchmark(BenchmarkKind kind);

/// All four, in the paper's order.
std::vector<Benchmark> all_benchmarks();

}  // namespace pdn3d::core
