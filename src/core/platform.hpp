#pragma once

/// @file platform.hpp
/// @brief The integrated CAD/architecture platform (Figure 2) -- the public
/// facade tying floorplanning, PDN generation, R-Mesh analysis, the memory
/// controller, and the co-optimizer together for one benchmark.

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "core/benchmarks.hpp"
#include "irdrop/analysis.hpp"
#include "irdrop/lut.hpp"
#include "memctrl/controller.hpp"
#include "opt/cooptimizer.hpp"

namespace pdn3d::core {

class Platform {
 public:
  explicit Platform(Benchmark benchmark);

  [[nodiscard]] const Benchmark& benchmark() const { return bench_; }

  /// Parse a memory-state string against this benchmark's die floorplan.
  [[nodiscard]] power::MemoryState parse_state(std::string_view text,
                                               double io_activity = -1.0) const;

  /// IR analysis of @p state on the design point @p config (cached analyzer).
  [[nodiscard]] irdrop::IrResult analyze(const pdn::PdnConfig& config,
                                         const power::MemoryState& state) const;
  [[nodiscard]] irdrop::IrResult analyze(const pdn::PdnConfig& config, std::string_view state,
                                         double io_activity = -1.0) const;

  /// Max DRAM IR drop (mV) of the benchmark's default memory state -- the
  /// quantity the paper's tables quote and the co-optimizer minimizes.
  /// Uncached (one-shot) so design-space sweeps do not accumulate memory.
  [[nodiscard]] double measure_ir_mv(const pdn::PdnConfig& config) const;

  /// Build info (TSV placement diagnostics) for a config.
  [[nodiscard]] pdn::BuildInfo build_info(const pdn::PdnConfig& config) const;

  /// Complementary two-rail analysis (the paper analyzes VDD and notes the
  /// ground net "can be analyzed in complementary fashion"). The VSS grid is
  /// modeled as a mirrored network whose metal budget may differ by
  /// @p vss_metal_scale; the combined figure adds VDD droop and VSS bounce at
  /// the worst location (pessimistic colocation).
  struct RailPairResult {
    irdrop::IrResult vdd;
    irdrop::IrResult vss;
    double combined_worst_mv = 0.0;
  };
  [[nodiscard]] RailPairResult analyze_rail_pair(const pdn::PdnConfig& config,
                                                 const power::MemoryState& state,
                                                 double vss_metal_scale = 1.0) const;

  /// IR look-up table over memory states (cached per config).
  [[nodiscard]] const irdrop::IrLut& lut(const pdn::PdnConfig& config) const;

  /// The cached design's analyzer (built with the many-solves sparse-direct
  /// hint). Valid for the Platform's lifetime; safe for concurrent const use.
  [[nodiscard]] const irdrop::IrAnalyzer& analyzer(const pdn::PdnConfig& config) const;

  /// Run the memory-controller simulation on this benchmark's workload with
  /// the given policy. The LUT for @p config is built (or fetched) first.
  [[nodiscard]] memctrl::SimResult simulate(const pdn::PdnConfig& config,
                                            memctrl::PolicyConfig policy) const;

  /// Same, but replaying an explicit request stream (e.g. a trace).
  [[nodiscard]] memctrl::SimResult simulate(const pdn::PdnConfig& config,
                                            memctrl::PolicyConfig policy,
                                            std::vector<memctrl::Request> requests) const;

  /// Co-optimizer bound to this benchmark's design space + R-Mesh evaluator
  /// (a PlatformEvaluator). @p threads = 0 resolves
  /// exec::default_thread_count() for the sampling sweep.
  [[nodiscard]] opt::CoOptimizer make_cooptimizer(int threads = 0) const;

  /// Number of distinct design points currently cached.
  [[nodiscard]] std::size_t cache_size() const {
    const std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    return cache_.size();
  }

 private:
  struct CachedDesign {
    pdn::BuiltStack built;
    std::unique_ptr<irdrop::IrAnalyzer> analyzer;
    std::mutex lut_mutex;  ///< guards the lazy LUT build below
    std::unique_ptr<irdrop::IrLut> lut;
  };

  [[nodiscard]] std::string cache_key(const pdn::PdnConfig& config) const;
  [[nodiscard]] CachedDesign& design(const pdn::PdnConfig& config) const;
  [[nodiscard]] irdrop::PowerBinding power_binding() const;

  Benchmark bench_;
  /// Guards cache_ only. CachedDesign entries are heap-allocated, so the
  /// references design() hands out stay valid while the map grows; the
  /// analyzer inside is safe for concurrent const use by construction.
  mutable std::shared_mutex cache_mutex_;
  mutable std::map<std::string, std::unique_ptr<CachedDesign>> cache_;
};

/// opt::Evaluator over a Platform's one-shot R-Mesh measurement. fork()ed
/// siblings share the (const) platform; measure_ir_mv builds and discards
/// everything per call, so siblings never contend on mutable state.
class PlatformEvaluator final : public opt::Evaluator {
 public:
  /// @param platform must outlive the evaluator and all of its forks.
  explicit PlatformEvaluator(const Platform& platform) : platform_(&platform) {}
  [[nodiscard]] double measure(const pdn::PdnConfig& config) override {
    return platform_->measure_ir_mv(config);
  }
  [[nodiscard]] std::unique_ptr<opt::Evaluator> fork() const override {
    return std::make_unique<PlatformEvaluator>(*platform_);
  }

 private:
  const Platform* platform_;
};

}  // namespace pdn3d::core
