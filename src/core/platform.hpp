#pragma once

/// @file platform.hpp
/// @brief The integrated CAD/architecture platform (Figure 2) -- the public
/// facade tying floorplanning, PDN generation, R-Mesh analysis, the memory
/// controller, and the co-optimizer together for one benchmark.

#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "core/benchmarks.hpp"
#include "irdrop/analysis.hpp"
#include "irdrop/em.hpp"
#include "irdrop/lut.hpp"
#include "memctrl/controller.hpp"
#include "opt/cooptimizer.hpp"

namespace pdn3d::core {

class Platform {
 public:
  explicit Platform(Benchmark benchmark);

  [[nodiscard]] const Benchmark& benchmark() const { return bench_; }

  /// Parse a memory-state string against this benchmark's die floorplan.
  [[nodiscard]] power::MemoryState parse_state(std::string_view text,
                                               double io_activity = -1.0) const;

  /// IR analysis of @p state on the design point @p config (cached analyzer).
  [[nodiscard]] irdrop::IrResult analyze(const pdn::PdnConfig& config,
                                         const power::MemoryState& state) const;
  [[nodiscard]] irdrop::IrResult analyze(const pdn::PdnConfig& config, std::string_view state,
                                         double io_activity = -1.0) const;

  /// Max DRAM IR drop (mV) of the benchmark's default memory state -- the
  /// quantity the paper's tables quote and the co-optimizer minimizes.
  /// Uncached (one-shot) so design-space sweeps do not accumulate memory.
  [[nodiscard]] double measure_ir_mv(const pdn::PdnConfig& config) const;

  /// measure_ir_mv for sweep callers that declare how many sibling design
  /// points the sweep will evaluate. With the hierarchical tier enabled and
  /// enough declared points (kMacromodelMinDesignPoints), the measurement
  /// runs on the macromodel solver rung backed by the platform-shared
  /// MacromodelContext -- die blocks and (after prepare_sweep) whole
  /// factorizations are reused across the sweep's points. Identical
  /// semantics to measure_ir_mv(config) otherwise; the rung's answers pass
  /// the same true-residual verification either way.
  [[nodiscard]] double measure_ir_mv(const pdn::PdnConfig& config,
                                     std::size_t expected_design_points) const;

  /// Prepare the hierarchical tier for a sweep: build the macromodel of
  /// @p representative (through the shared block cache) and register it as
  /// the context's Woodbury anchor. Call before the sweep's workers start
  /// with a deterministically chosen representative (the co-optimizer uses
  /// each batch's first config) -- anchors registered up front are what
  /// keeps tier-on sweeps bitwise identical at any thread count. No-op when
  /// the tier is disabled or the point count is below the amortization
  /// threshold; a macromodel decline is swallowed (the sweep just runs
  /// without an anchor).
  void prepare_sweep(const pdn::PdnConfig& representative,
                     std::size_t expected_design_points) const;

  /// The hierarchical (Schur macromodel + Woodbury) solver tier is strictly
  /// opt-in: the PDN3D_HIER_TIER environment variable (any value but
  /// "0"/"off"/"false"/"") at construction, or this setter. Default-off
  /// keeps every pre-existing output byte-identical.
  void set_hierarchical_tier(bool on) { hier_tier_ = on; }
  [[nodiscard]] bool hierarchical_tier() const { return hier_tier_; }

  /// The platform-wide macromodel reuse context (fingerprint-keyed die-block
  /// cache + Woodbury anchors) behind every tier-enabled measurement.
  [[nodiscard]] const std::shared_ptr<irdrop::MacromodelContext>& macromodel_context() const {
    return macromodel_ctx_;
  }

  /// Electromigration analysis of @p state on the design point @p config:
  /// solves for node voltages on the cached analyzer, then runs the
  /// irdrop::em_check post-solve pass against this benchmark's technology.
  [[nodiscard]] irdrop::EmReport em_check(const pdn::PdnConfig& config,
                                          const power::MemoryState& state,
                                          const irdrop::EmOptions& options = {}) const;

  /// One-shot EM check of the benchmark's default memory state -- the
  /// co-optimizer's hard-constraint probe. Uncached like measure_ir_mv, so
  /// design-space sweeps do not accumulate memory.
  [[nodiscard]] irdrop::EmReport measure_em(const pdn::PdnConfig& config,
                                            const irdrop::EmOptions& options = {}) const;

  /// Build info (TSV placement diagnostics) for a config.
  [[nodiscard]] pdn::BuildInfo build_info(const pdn::PdnConfig& config) const;

  /// Complementary two-rail analysis (the paper analyzes VDD and notes the
  /// ground net "can be analyzed in complementary fashion"). The VSS grid is
  /// modeled as a mirrored network whose metal budget may differ by
  /// @p vss_metal_scale; the combined figure adds VDD droop and VSS bounce at
  /// the worst location (pessimistic colocation).
  struct RailPairResult {
    irdrop::IrResult vdd;
    irdrop::IrResult vss;
    double combined_worst_mv = 0.0;
  };
  [[nodiscard]] RailPairResult analyze_rail_pair(const pdn::PdnConfig& config,
                                                 const power::MemoryState& state,
                                                 double vss_metal_scale = 1.0) const;

  /// IR look-up table over memory states (cached per config).
  [[nodiscard]] const irdrop::IrLut& lut(const pdn::PdnConfig& config) const;

  /// The cached design's analyzer (built with the many-solves sparse-direct
  /// hint). Valid for the Platform's lifetime; safe for concurrent const use.
  [[nodiscard]] const irdrop::IrAnalyzer& analyzer(const pdn::PdnConfig& config) const;

  /// Run the memory-controller simulation on this benchmark's workload with
  /// the given policy. The LUT for @p config is built (or fetched) first.
  [[nodiscard]] memctrl::SimResult simulate(const pdn::PdnConfig& config,
                                            memctrl::PolicyConfig policy) const;

  /// Same, but replaying an explicit request stream (e.g. a trace).
  [[nodiscard]] memctrl::SimResult simulate(const pdn::PdnConfig& config,
                                            memctrl::PolicyConfig policy,
                                            std::vector<memctrl::Request> requests) const;

  /// Co-optimizer bound to this benchmark's design space + R-Mesh evaluator
  /// (a PlatformEvaluator). @p threads = 0 resolves
  /// exec::default_thread_count() for the sampling sweep.
  [[nodiscard]] opt::CoOptimizer make_cooptimizer(int threads = 0) const;

  /// Number of distinct design points currently cached.
  [[nodiscard]] std::size_t cache_size() const {
    const std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    return cache_.size();
  }

 private:
  struct CachedDesign {
    pdn::BuiltStack built;
    std::unique_ptr<irdrop::IrAnalyzer> analyzer;
    std::mutex lut_mutex;  ///< guards the lazy LUT build below
    std::unique_ptr<irdrop::IrLut> lut;
  };

  [[nodiscard]] std::string cache_key(const pdn::PdnConfig& config) const;
  [[nodiscard]] CachedDesign& design(const pdn::PdnConfig& config) const;
  [[nodiscard]] irdrop::PowerBinding power_binding() const;

  Benchmark bench_;
  bool hier_tier_ = false;  ///< hierarchical solver tier opt-in (see setter)
  std::shared_ptr<irdrop::MacromodelContext> macromodel_ctx_;
  /// Guards cache_ only. CachedDesign entries are heap-allocated, so the
  /// references design() hands out stay valid while the map grows; the
  /// analyzer inside is safe for concurrent const use by construction.
  mutable std::shared_mutex cache_mutex_;
  mutable std::map<std::string, std::unique_ptr<CachedDesign>> cache_;
};

/// opt::Evaluator over a Platform's one-shot R-Mesh measurement. fork()ed
/// siblings share the (const) platform; measure_ir_mv builds and discards
/// everything per call, so siblings never contend on mutable state. When the
/// platform's hierarchical tier is on, hint_sweep prepares the shared
/// macromodel anchor and every measurement declares the sweep size, riding
/// the reuse tier; forks inherit the declared size.
class PlatformEvaluator final : public opt::Evaluator {
 public:
  /// @param platform must outlive the evaluator and all of its forks.
  explicit PlatformEvaluator(const Platform& platform) : platform_(&platform) {}
  [[nodiscard]] double measure(const pdn::PdnConfig& config) override {
    return sweep_points_ > 1 ? platform_->measure_ir_mv(config, sweep_points_)
                             : platform_->measure_ir_mv(config);
  }
  void hint_sweep(const pdn::PdnConfig& representative, std::size_t expected_points) override {
    sweep_points_ = expected_points;
    platform_->prepare_sweep(representative, expected_points);
  }
  [[nodiscard]] std::unique_ptr<opt::Evaluator> fork() const override {
    auto sibling = std::make_unique<PlatformEvaluator>(*platform_);
    sibling->sweep_points_ = sweep_points_;
    return sibling;
  }

 private:
  const Platform* platform_;
  std::size_t sweep_points_ = 0;
};

}  // namespace pdn3d::core
