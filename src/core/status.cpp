#include "core/status.hpp"

#include <sstream>

namespace pdn3d::core {

const char* to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid-argument";
    case StatusCode::kInputError: return "input-error";
    case StatusCode::kNumericalFailure: return "numerical-failure";
    case StatusCode::kCancelled: return "cancelled";
  }
  return "?";
}

const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Status::to_string() const {
  if (is_ok()) return "ok";
  return std::string(core::to_string(code_)) + ": " + message_;
}

void ValidationReport::add_error(std::string check, std::string message, std::size_t node) {
  issues_.push_back({Severity::kError, std::move(check), std::move(message), node});
  ++error_count_;
}

void ValidationReport::add_warning(std::string check, std::string message, std::size_t node) {
  issues_.push_back({Severity::kWarning, std::move(check), std::move(message), node});
}

bool ValidationReport::has_check(std::string_view check) const {
  for (const auto& issue : issues_) {
    if (issue.check == check) return true;
  }
  return false;
}

std::string ValidationReport::to_string() const {
  if (issues_.empty()) return "validation ok";
  std::ostringstream os;
  for (std::size_t i = 0; i < issues_.size(); ++i) {
    const auto& issue = issues_[i];
    if (i > 0) os << '\n';
    os << core::to_string(issue.severity) << " [" << issue.check << "] " << issue.message;
    if (issue.node != ValidationIssue::kNoNode) os << " (node " << issue.node << ")";
  }
  return os.str();
}

Status ValidationReport::to_status() const {
  if (ok()) return Status::ok();
  std::ostringstream os;
  os << error_count_ << " validation error" << (error_count_ == 1 ? "" : "s");
  // Name the first error so a one-line status is still actionable.
  for (const auto& issue : issues_) {
    if (issue.severity == Severity::kError) {
      os << "; first: [" << issue.check << "] " << issue.message;
      break;
    }
  }
  return Status::input_error(os.str());
}

void ValidationReport::merge(const ValidationReport& other) {
  issues_.insert(issues_.end(), other.issues_.begin(), other.issues_.end());
  error_count_ += other.error_count_;
}

}  // namespace pdn3d::core
