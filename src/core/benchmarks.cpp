#include "core/benchmarks.hpp"

#include <stdexcept>

#include "dram/timing.hpp"
#include "floorplan/logic_floorplan.hpp"
#include "tech/presets.hpp"

namespace pdn3d::core {

std::string to_string(BenchmarkKind k) {
  switch (k) {
    case BenchmarkKind::kStackedDdr3OffChip: return "stacked-ddr3-off-chip";
    case BenchmarkKind::kStackedDdr3OnChip: return "stacked-ddr3-on-chip";
    case BenchmarkKind::kWideIo: return "wide-io";
    case BenchmarkKind::kHmc: return "hmc";
  }
  return "?";
}

namespace {

Benchmark make_stacked_ddr3(bool on_chip) {
  Benchmark b;
  b.kind = on_chip ? BenchmarkKind::kStackedDdr3OnChip : BenchmarkKind::kStackedDdr3OffChip;
  b.name = on_chip ? "Stacked DDR3 (on-chip)" : "Stacked DDR3 (off-chip)";

  floorplan::DramFloorplanSpec ds;
  ds.width_mm = 6.8;
  ds.height_mm = 6.7;
  ds.bank_cols = 4;
  ds.bank_rows = 2;
  b.stack.dram_spec = ds;
  b.stack.dram_fp = floorplan::make_dram_floorplan(ds);
  b.stack.logic_fp = floorplan::make_t2_floorplan(9.0, 8.0);
  b.stack.num_dram_dies = 4;
  b.stack.tech = tech::ddr3_technology();

  b.baseline.m2_usage = 0.10;
  b.baseline.m3_usage = 0.20;
  b.baseline.tsv_count = 33;
  b.baseline.tsv_location = pdn::TsvLocation::kEdge;
  b.baseline.logic_tsv_location = pdn::TsvLocation::kEdge;
  b.baseline.bonding = pdn::BondingStyle::kF2B;
  b.baseline.rdl = pdn::RdlMode::kNone;
  b.baseline.wire_bonding = false;
  b.baseline.mounting = on_chip ? pdn::Mounting::kOnChip : pdn::Mounting::kOffChip;
  b.baseline.dedicated_tsvs = on_chip;  // Table 9 on-chip baseline uses TD=Y

  b.design_space.mounting = b.baseline.mounting;
  b.design_space.tsv_locations = {pdn::TsvLocation::kCenter, pdn::TsvLocation::kEdge};
  // Off-chip stacks always own their PG TSVs; the dedicated flag is only a
  // real choice when a logic die is underneath.
  b.design_space.dedicated_options = on_chip ? std::vector<bool>{false, true}
                                             : std::vector<bool>{false};

  b.dram_power = power::DiePowerSpec{};
  b.logic_power = power::LogicPowerSpec{};
  b.power_scale = 1.0;
  b.default_state = "0-0-0-2";
  b.default_io_activity = 1.0;
  b.paper_baseline_ir_mv = on_chip ? 31.18 : 30.03;

  b.sim.timing = dram::ddr3_1600_timing();
  b.sim.dies = 4;
  b.sim.banks_per_die = 8;
  b.sim.channels = 1;
  b.workload.dies = 4;
  b.workload.banks_per_die = 8;
  b.workload.streams = 2;
  return b;
}

Benchmark make_wide_io() {
  Benchmark b;
  b.kind = BenchmarkKind::kWideIo;
  b.name = "Wide I/O";

  floorplan::DramFloorplanSpec ds;
  ds.width_mm = 7.2;
  ds.height_mm = 7.2;
  ds.bank_cols = 4;
  ds.bank_rows = 4;
  b.stack.dram_spec = ds;
  b.stack.dram_fp = floorplan::make_dram_floorplan(ds);
  b.stack.logic_fp = floorplan::make_t2_floorplan(9.0, 8.0);
  b.stack.num_dram_dies = 4;
  b.stack.tech = tech::low_voltage_technology();

  b.baseline.m2_usage = 0.10;
  b.baseline.m3_usage = 0.20;
  b.baseline.tsv_count = 160;  // fixed by JEDEC specification
  b.baseline.tsv_location = pdn::TsvLocation::kEdge;
  b.baseline.logic_tsv_location = pdn::TsvLocation::kCenter;  // pumps center
  b.baseline.bonding = pdn::BondingStyle::kF2B;
  b.baseline.rdl = pdn::RdlMode::kBottomOnly;  // edge TSVs require the RDL
  b.baseline.wire_bonding = false;
  b.baseline.mounting = pdn::Mounting::kOnChip;
  b.baseline.dedicated_tsvs = true;

  b.design_space.mounting = pdn::Mounting::kOnChip;
  b.design_space.tc_fixed = true;
  b.design_space.tc_fixed_value = 160;
  b.design_space.tsv_locations = {pdn::TsvLocation::kCenter, pdn::TsvLocation::kEdge};
  // JEDEC puts the PG pumps and micro-bumps in the die center, so edge TSVs
  // are only reachable through an RDL.
  b.design_space.valid = [](const opt::DiscreteChoice& c) {
    if (c.tsv_location == pdn::TsvLocation::kEdge && c.rdl == pdn::RdlMode::kNone) return false;
    return true;
  };

  // Low-power mobile part: scaled-down power model (1.2 V, slow wide bus).
  b.dram_power = power::DiePowerSpec{};
  b.power_scale = 0.47;
  b.logic_power = power::LogicPowerSpec{};
  b.default_state = "0-0-0-2";
  b.default_io_activity = 1.0;
  b.paper_baseline_ir_mv = 13.56;

  b.sim.timing = dram::wide_io_timing();
  b.sim.dies = 4;
  b.sim.banks_per_die = 16;
  b.sim.channels = 4;
  b.sim.channel_by_die = true;
  b.workload.dies = 4;
  b.workload.banks_per_die = 16;
  b.workload.streams = 4;
  b.workload.arrival_interval = 4;
  return b;
}

Benchmark make_hmc() {
  Benchmark b;
  b.kind = BenchmarkKind::kHmc;
  b.name = "HMC";

  floorplan::DramFloorplanSpec ds;
  ds.width_mm = 7.2;
  ds.height_mm = 6.4;
  ds.bank_cols = 8;
  ds.bank_rows = 4;
  b.stack.dram_spec = ds;
  b.stack.dram_fp = floorplan::make_dram_floorplan(ds);
  b.stack.logic_fp = floorplan::make_hmc_logic_floorplan(8.8, 6.4);
  b.stack.num_dram_dies = 4;
  b.stack.tech = tech::low_voltage_technology();

  b.baseline.m2_usage = 0.10;
  b.baseline.m3_usage = 0.20;
  b.baseline.tsv_count = 384;
  b.baseline.tsv_location = pdn::TsvLocation::kEdge;
  b.baseline.logic_tsv_location = pdn::TsvLocation::kEdge;
  b.baseline.bonding = pdn::BondingStyle::kF2B;
  b.baseline.rdl = pdn::RdlMode::kNone;
  b.baseline.wire_bonding = false;
  b.baseline.mounting = pdn::Mounting::kOnChip;  // on its own logic base die
  b.baseline.dedicated_tsvs = true;

  b.design_space.mounting = pdn::Mounting::kOnChip;
  b.design_space.tc_min = 160;  // minimum supply current requirement
  b.design_space.tc_max = 480;
  b.design_space.tsv_locations = {pdn::TsvLocation::kCenter, pdn::TsvLocation::kEdge,
                                  pdn::TsvLocation::kDistributed};

  // High-bandwidth part: every die streams simultaneously through its own
  // vault channels, so per-die power is much higher than DDR3.
  b.dram_power = power::DiePowerSpec{};
  b.power_scale = 2.1;
  b.logic_power = power::LogicPowerSpec{9.0, 0.35, 0.10, 0.55};  // SerDes-heavy
  b.default_state = "2-2-2-2";
  b.default_io_activity = 1.0;  // vaults do not share a channel
  b.paper_baseline_ir_mv = 47.90;

  b.sim.timing = dram::hmc_timing();
  b.sim.dies = 4;
  b.sim.banks_per_die = 32;
  b.sim.channels = 16;
  b.sim.channel_by_die = false;
  b.sim.max_active_per_die = 2;
  b.workload.dies = 4;
  b.workload.banks_per_die = 32;
  b.workload.streams = 8;
  b.workload.arrival_interval = 2;
  return b;
}

}  // namespace

Benchmark make_benchmark(BenchmarkKind kind) {
  switch (kind) {
    case BenchmarkKind::kStackedDdr3OffChip: return make_stacked_ddr3(false);
    case BenchmarkKind::kStackedDdr3OnChip: return make_stacked_ddr3(true);
    case BenchmarkKind::kWideIo: return make_wide_io();
    case BenchmarkKind::kHmc: return make_hmc();
  }
  throw std::invalid_argument("make_benchmark: unknown kind");
}

std::vector<Benchmark> all_benchmarks() {
  return {make_benchmark(BenchmarkKind::kStackedDdr3OffChip),
          make_benchmark(BenchmarkKind::kStackedDdr3OnChip),
          make_benchmark(BenchmarkKind::kWideIo), make_benchmark(BenchmarkKind::kHmc)};
}

}  // namespace pdn3d::core
