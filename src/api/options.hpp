#pragma once

/// @file options.hpp
/// @brief Typed, validated option parsing for the stable evaluation API.
///
/// Every knob that used to travel through the CLI's ad-hoc string map (and
/// silently fell back to 0 through std::atof on garbage) is parsed here with
/// strict syntax and range checks. Both front ends share these parsers: the
/// CLI turns `--m2 15` into DesignOptions the same way the batch service
/// turns `{"design":{"m2":15}}` into them, so a request is rejected with the
/// same message no matter which door it came in through.
///
/// Contract: parsers either fully consume the text and land inside the
/// documented range, or return a core::Status naming the option, the offered
/// value, and the accepted range. No partial parses, no silent zeros.

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "core/status.hpp"
#include "pdn/pdn_config.hpp"

namespace pdn3d::api {

/// Strict double parse: the whole of @p text must be a finite number within
/// [min_value, max_value]. @p name labels the option in error messages.
[[nodiscard]] core::Status parse_double(std::string_view name, std::string_view text,
                                        double min_value, double max_value, double* out);

/// Strict integer parse with the same full-consumption + range contract.
[[nodiscard]] core::Status parse_int(std::string_view name, std::string_view text,
                                     long long min_value, long long max_value, long long* out);

/// Range check for values that arrive already numeric (JSON requests).
[[nodiscard]] core::Status check_range(std::string_view name, double value, double min_value,
                                       double max_value);

[[nodiscard]] core::Status parse_tsv_location(std::string_view text, pdn::TsvLocation* out);
[[nodiscard]] core::Status parse_bonding(std::string_view text, pdn::BondingStyle* out);
[[nodiscard]] core::Status parse_rdl(std::string_view text, pdn::RdlMode* out);

/// The design/packaging knobs of one evaluation request -- the typed
/// replacement for the CLI's string map. Unset fields keep the benchmark's
/// baseline value; apply() layers the overrides onto a base config in the
/// same order the CLI historically did (so `--tl` still decides the
/// logic-side TSV location against the *base* RDL mode).
struct DesignOptions {
  std::optional<double> m2_pct;             ///< [0, 100], percent of die area
  std::optional<double> m3_pct;             ///< [0, 100]
  std::optional<long long> tsv_count;       ///< >= 1 per die-to-die interface
  std::optional<pdn::TsvLocation> tsv_location;
  std::optional<pdn::BondingStyle> bonding;
  std::optional<pdn::RdlMode> rdl;
  bool wire_bonding = false;
  bool dedicated_tsvs = false;
  bool no_align = false;
  std::optional<double> metal_usage_scale;  ///< (0, 100]

  // Electromigration knobs (the em-check operation; also the co-optimizer's
  // hard constraint). All optional/default-off so that requests which leave
  // them alone keep their historical pdn3d-req-v1 canonical text and golden
  // fingerprints byte-for-byte (see EvaluateRequest::fingerprint()).
  std::optional<double> em_wire_limit;  ///< (0, 10000] MA/cm^2, wire J limit
  std::optional<double> em_tsv_limit;   ///< (0, 10000] MA/cm^2, TSV J limit
  std::optional<double> em_temp_c;      ///< [-55, 300] junction temperature
  bool em_enforce = false;              ///< "em": violations fail the request

  /// Any EM field set (or enforcement on): the request's output depends on
  /// the EM subsystem, which versions its fingerprint and opts it out of
  /// batching/coalescing.
  [[nodiscard]] bool em_enabled() const {
    return em_enforce || em_wire_limit || em_tsv_limit || em_temp_c;
  }

  /// Set a numeric knob by key: "m2" | "m3" | "tc" | "scale" | "em-temp" |
  /// "em-wire-limit" | "em-tsv-limit". Range-checked.
  [[nodiscard]] core::Status set(std::string_view key, double value);
  /// Set any knob by key from text: the numeric keys above plus
  /// "tl" | "bd" | "rdl". Numeric text goes through the strict parsers.
  [[nodiscard]] core::Status set(std::string_view key, std::string_view text);
  /// Set a boolean knob: "wb" | "dedicated" | "no-align" | "em".
  [[nodiscard]] core::Status set_flag(std::string_view key);

  /// Layer the set knobs onto @p base.
  [[nodiscard]] pdn::PdnConfig apply(pdn::PdnConfig base) const;

  /// Deterministic rendering of every knob in spec-table order, unset
  /// optionals included as "-". Two DesignOptions that would produce the
  /// same PdnConfig overlay render identically regardless of whether they
  /// were filled by set()/set_option() or by direct field assignment, which
  /// is what makes this text safe to hash into a RequestFingerprint.
  /// EM fields append *only when set* (the v2 suffix), so every pre-EM
  /// request renders -- and therefore hashes -- exactly as it always did.
  [[nodiscard]] std::string canonical_text() const;
};

/// How a design option's value is spelled, for front ends that enumerate
/// the keyspace (CLI flag table, protocol decoder, docs).
enum class OptionKind {
  kNumeric,  ///< takes a number (strict-parsed from text)
  kEnum,     ///< takes one of a fixed token set
  kFlag,     ///< presence flag; text form accepts true/false/1/0
};

/// One row of the shared design-option keyspace.
struct OptionSpec {
  std::string_view key;     ///< canonical key ("m2", "tl", "no-align", ...)
  OptionKind kind;
  std::string_view values;  ///< human-readable value domain for help text
};

/// The single source of truth for the design-option keyspace. Both front
/// ends (CLI flags and NDJSON `design` members) iterate this table, so the
/// key list can never diverge between them. Order is the canonical order
/// used by DesignOptions::canonical_text().
[[nodiscard]] std::span<const OptionSpec> design_option_specs();

/// Set any design knob by key from text, dispatching through the one shared
/// spec table. Flag keys accept "true"/"false"/"1"/"0". Unknown keys get
/// one canonical error that lists the full keyspace.
[[nodiscard]] core::Status set_option(DesignOptions* opts, std::string_view key,
                                      std::string_view text);
/// Overload for values that arrive already numeric (JSON numbers). Enum
/// keys reject numbers; flag keys treat nonzero as set.
[[nodiscard]] core::Status set_option(DesignOptions* opts, std::string_view key, double value);
/// Overload for values that arrive already boolean (JSON true/false).
[[nodiscard]] core::Status set_option(DesignOptions* opts, std::string_view key, bool value);

/// Shared range validators for the non-design request options.
[[nodiscard]] core::Status check_activity(double activity);  ///< [0,1] or -1 (auto)
[[nodiscard]] core::Status check_samples(long long samples); ///< [1, 10'000'000]
[[nodiscard]] core::Status check_alpha(double alpha);        ///< [0, 1]

}  // namespace pdn3d::api
