#pragma once

/// @file api.hpp
/// @brief The stable evaluation facade: EvaluateRequest -> EvaluateResult.
///
/// Both front ends -- the one-shot CLI (`tools/pdn3d_cli.cpp`) and the batch
/// evaluation service (`pdn3d serve`, `src/service/`) -- are thin shells over
/// this facade. A request fully describes one evaluation: a benchmark, a
/// design point (typed DesignOptions, see options.hpp), an operation, and the
/// operation's parameters. The result carries a structured status, the CLI
/// exit code, and the rendered text output. Because the rendering lives here
/// rather than in the CLI, a served request is byte-identical to the
/// equivalent one-shot CLI run by construction.
///
/// A Session owns the per-benchmark Platform instances and therefore all the
/// caches worth amortizing across requests: the shared_mutex design cache
/// (built stacks + analyzers with their sparse Cholesky factors) and the
/// per-design LUTs. The CLI creates one Session per process; the service
/// keeps one alive for thousands of requests -- that cache reuse is the whole
/// point of serving (see docs/SERVICE.md for the measured speedup).
///
/// Stability contract (docs/API.md): the request/result structs and the
/// operation set only grow -- new optional fields with compatible defaults.
/// Renamed or removed fields require a major version bump and a deprecation
/// cycle, like the solver's SolveRequest/SolveOutcome redesign in PR 3/4.
/// evaluate() is const and thread-safe; concurrent callers share the caches.

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "api/options.hpp"
#include "core/benchmarks.hpp"
#include "core/platform.hpp"
#include "core/status.hpp"

namespace pdn3d::api {

/// The operations a request can name. These are exactly the CLI subcommands
/// whose output is a pure function of the request (streaming/simulation
/// commands keep their own CLI paths).
enum class Operation {
  kEvaluate,    ///< IR-drop analysis of one memory state (CLI: analyze)
  kMonteCarlo,  ///< IR distribution over random states (CLI: montecarlo)
  kLut,         ///< memory-state IR look-up table (CLI: lut)
  kCoOptimize,  ///< design+packaging co-optimization (CLI: cooptimize)
  kValidate,    ///< numerical-health check of the R-Mesh (CLI: validate)
  kEmCheck,     ///< branch-current / electromigration check (CLI: em-check)
};

[[nodiscard]] const char* to_string(Operation op);
[[nodiscard]] core::Status parse_operation(std::string_view text, Operation* out);

/// Benchmark lookup by CLI token: off-chip | on-chip | wide-io | hmc.
[[nodiscard]] core::Status parse_benchmark(std::string_view text, core::BenchmarkKind* out);
/// The CLI token for a kind (inverse of parse_benchmark).
[[nodiscard]] const char* benchmark_token(core::BenchmarkKind kind);

/// Stable canonical identity of one evaluation request.
///
/// `canonical` is a deterministic text rendering of the *canonicalized*
/// request (fixed field order, %.17g doubles, op-irrelevant parameters reset
/// to defaults) and `hash` is its 64-bit FNV-1a (util::checkpoint_key). Two
/// requests fingerprint identically exactly when the facade guarantees their
/// rendered output is byte-identical -- whether the knobs arrived through
/// CLI flags, NDJSON protocol fields, or direct field assignment. The hex
/// form is what reports, service records, and the result cache carry.
struct RequestFingerprint {
  std::uint64_t hash = 0;  ///< FNV-1a 64 of `canonical`
  std::string canonical;   ///< the canonical request text that was hashed
  /// 16 lowercase hex digits of `hash`.
  [[nodiscard]] std::string hex() const;
  friend bool operator==(const RequestFingerprint&, const RequestFingerprint&) = default;
};

/// One fully-specified evaluation.
struct EvaluateRequest {
  core::BenchmarkKind benchmark = core::BenchmarkKind::kStackedDdr3OffChip;
  Operation op = Operation::kEvaluate;
  DesignOptions design;

  std::string state;       ///< memory state, empty = benchmark default (evaluate)
  double activity = -1.0;  ///< I/O activity [0,1], -1 = auto (evaluate)
  long long samples = 200; ///< Monte Carlo sample count (montecarlo)
  double alpha = 0.3;      ///< objective exponent [0,1] (cooptimize)

  /// Crash-safe sweep checkpoint file (montecarlo/lut/cooptimize; CLI
  /// `--checkpoint FILE`). Empty = no checkpointing. The file is keyed by a
  /// fingerprint of the request; it persists after a successful run (a
  /// re-run with `resume` replays it instantly). See docs/ROBUSTNESS.md.
  std::string checkpoint_path;
  /// Load completed entries from checkpoint_path before sweeping (CLI
  /// `--resume`). A missing file is a fresh start; a fingerprint mismatch is
  /// an input error. Resumed output is bitwise identical to an uninterrupted
  /// run.
  bool resume = false;

  /// Validate the operation parameters (design knobs are validated as they
  /// are set). Front ends call this before dispatching.
  [[nodiscard]] core::Status validate() const;

  /// A normalized copy with identical output: parameters the operation never
  /// reads are reset to their defaults (`state`/`activity` are meaningful
  /// only for evaluate, `samples` for montecarlo, `alpha` for cooptimize) and
  /// the checkpoint plumbing is cleared (resume is bitwise identical to a
  /// fresh run, so it cannot affect identity). Canonicalization is purely
  /// syntactic: an empty `state` is NOT resolved to the benchmark's default
  /// state text, so "" and the spelled-out default fingerprint differently
  /// even though they evaluate identically.
  [[nodiscard]] EvaluateRequest canonicalize() const;

  /// The stable fingerprint of canonicalize() -- see RequestFingerprint.
  [[nodiscard]] RequestFingerprint fingerprint() const;
};

/// Structured outcome plus the rendered text the front end prints verbatim.
struct EvaluateResult {
  core::Status status;      ///< ok, or the structured failure
  int exit_code = 0;        ///< CLI exit-code mapping (docs/ROBUSTNESS.md)
  std::string output;       ///< rendered text; identical CLI vs served
  double headline_mv = 0.0; ///< op headline: max/worst/p99/optimum IR (mV)
  std::string fingerprint;  ///< RequestFingerprint::hex() of the request

  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// A long-lived evaluation context: lazily builds one core::Platform per
/// benchmark and serves evaluate() calls against them. Thread-safe for
/// concurrent evaluate() calls (the platform map is behind a shared_mutex and
/// Platform itself is const-thread-safe).
class Session {
 public:
  Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Pre-seed (or replace) the platform for @p kind with a customized
  /// benchmark -- the CLI's `--tech FILE` override path. Not thread-safe
  /// against concurrent evaluate(); install before serving.
  void install(core::BenchmarkKind kind, core::Benchmark benchmark);

  /// The (lazily built) platform for a benchmark.
  [[nodiscard]] const core::Platform& platform(core::BenchmarkKind kind) const;

  /// Run one request. Never throws for data-dependent reasons: validation
  /// and numerical failures come back as status + exit_code, exactly as the
  /// CLI would have reported them.
  [[nodiscard]] EvaluateResult evaluate(const EvaluateRequest& request) const;

  /// Run a group of requests, solving them through one multi-RHS batch when
  /// they share a factor (same benchmark + same canonical design text, all
  /// plain evaluate ops without checkpointing). Results come back in input
  /// order and are byte-identical to per-request evaluate() calls -- any
  /// request (or batch failure) that cannot take the shared-factor path
  /// falls back to evaluate() per member, so callers never observe a
  /// different outcome than N individual calls would have produced.
  [[nodiscard]] std::vector<EvaluateResult> evaluate_group(
      std::span<const EvaluateRequest> requests) const;

 private:
  mutable std::shared_mutex mutex_;
  mutable std::map<core::BenchmarkKind, std::unique_ptr<core::Platform>> platforms_;
};

}  // namespace pdn3d::api
