#pragma once

/// @file api.hpp
/// @brief The stable evaluation facade: EvaluateRequest -> EvaluateResult.
///
/// Both front ends -- the one-shot CLI (`tools/pdn3d_cli.cpp`) and the batch
/// evaluation service (`pdn3d serve`, `src/service/`) -- are thin shells over
/// this facade. A request fully describes one evaluation: a benchmark, a
/// design point (typed DesignOptions, see options.hpp), an operation, and the
/// operation's parameters. The result carries a structured status, the CLI
/// exit code, and the rendered text output. Because the rendering lives here
/// rather than in the CLI, a served request is byte-identical to the
/// equivalent one-shot CLI run by construction.
///
/// A Session owns the per-benchmark Platform instances and therefore all the
/// caches worth amortizing across requests: the shared_mutex design cache
/// (built stacks + analyzers with their sparse Cholesky factors) and the
/// per-design LUTs. The CLI creates one Session per process; the service
/// keeps one alive for thousands of requests -- that cache reuse is the whole
/// point of serving (see docs/SERVICE.md for the measured speedup).
///
/// Stability contract (docs/API.md): the request/result structs and the
/// operation set only grow -- new optional fields with compatible defaults.
/// Renamed or removed fields require a major version bump and a deprecation
/// cycle, like the solver's SolveRequest/SolveOutcome redesign in PR 3/4.
/// evaluate() is const and thread-safe; concurrent callers share the caches.

#include <map>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>

#include "api/options.hpp"
#include "core/benchmarks.hpp"
#include "core/platform.hpp"
#include "core/status.hpp"

namespace pdn3d::api {

/// The operations a request can name. These are exactly the CLI subcommands
/// whose output is a pure function of the request (streaming/simulation
/// commands keep their own CLI paths).
enum class Operation {
  kEvaluate,    ///< IR-drop analysis of one memory state (CLI: analyze)
  kMonteCarlo,  ///< IR distribution over random states (CLI: montecarlo)
  kLut,         ///< memory-state IR look-up table (CLI: lut)
  kCoOptimize,  ///< design+packaging co-optimization (CLI: cooptimize)
  kValidate,    ///< numerical-health check of the R-Mesh (CLI: validate)
};

[[nodiscard]] const char* to_string(Operation op);
[[nodiscard]] core::Status parse_operation(std::string_view text, Operation* out);

/// Benchmark lookup by CLI token: off-chip | on-chip | wide-io | hmc.
[[nodiscard]] core::Status parse_benchmark(std::string_view text, core::BenchmarkKind* out);
/// The CLI token for a kind (inverse of parse_benchmark).
[[nodiscard]] const char* benchmark_token(core::BenchmarkKind kind);

/// One fully-specified evaluation.
struct EvaluateRequest {
  core::BenchmarkKind benchmark = core::BenchmarkKind::kStackedDdr3OffChip;
  Operation op = Operation::kEvaluate;
  DesignOptions design;

  std::string state;       ///< memory state, empty = benchmark default (evaluate)
  double activity = -1.0;  ///< I/O activity [0,1], -1 = auto (evaluate)
  long long samples = 200; ///< Monte Carlo sample count (montecarlo)
  double alpha = 0.3;      ///< objective exponent [0,1] (cooptimize)

  /// Crash-safe sweep checkpoint file (montecarlo/lut/cooptimize; CLI
  /// `--checkpoint FILE`). Empty = no checkpointing. The file is keyed by a
  /// fingerprint of the request; it persists after a successful run (a
  /// re-run with `resume` replays it instantly). See docs/ROBUSTNESS.md.
  std::string checkpoint_path;
  /// Load completed entries from checkpoint_path before sweeping (CLI
  /// `--resume`). A missing file is a fresh start; a fingerprint mismatch is
  /// an input error. Resumed output is bitwise identical to an uninterrupted
  /// run.
  bool resume = false;

  /// Validate the operation parameters (design knobs are validated as they
  /// are set). Front ends call this before dispatching.
  [[nodiscard]] core::Status validate() const;
};

/// Structured outcome plus the rendered text the front end prints verbatim.
struct EvaluateResult {
  core::Status status;      ///< ok, or the structured failure
  int exit_code = 0;        ///< CLI exit-code mapping (docs/ROBUSTNESS.md)
  std::string output;       ///< rendered text; identical CLI vs served
  double headline_mv = 0.0; ///< op headline: max/worst/p99/optimum IR (mV)

  [[nodiscard]] bool ok() const { return status.is_ok(); }
};

/// A long-lived evaluation context: lazily builds one core::Platform per
/// benchmark and serves evaluate() calls against them. Thread-safe for
/// concurrent evaluate() calls (the platform map is behind a shared_mutex and
/// Platform itself is const-thread-safe).
class Session {
 public:
  Session() = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Pre-seed (or replace) the platform for @p kind with a customized
  /// benchmark -- the CLI's `--tech FILE` override path. Not thread-safe
  /// against concurrent evaluate(); install before serving.
  void install(core::BenchmarkKind kind, core::Benchmark benchmark);

  /// The (lazily built) platform for a benchmark.
  [[nodiscard]] const core::Platform& platform(core::BenchmarkKind kind) const;

  /// Run one request. Never throws for data-dependent reasons: validation
  /// and numerical failures come back as status + exit_code, exactly as the
  /// CLI would have reported them.
  [[nodiscard]] EvaluateResult evaluate(const EvaluateRequest& request) const;

 private:
  mutable std::shared_mutex mutex_;
  mutable std::map<core::BenchmarkKind, std::unique_ptr<core::Platform>> platforms_;
};

}  // namespace pdn3d::api
