#include "api/api.hpp"

#include <cstdint>
#include <cstdio>
#include <memory>
#include <optional>
#include <sstream>
#include <vector>

#include "cost/cost_model.hpp"
#include "irdrop/em.hpp"
#include "irdrop/lut.hpp"
#include "irdrop/montecarlo.hpp"
#include "opt/cooptimizer.hpp"
#include "pdn/mesh_validator.hpp"
#include "pdn/stack_builder.hpp"
#include "util/checkpoint.hpp"
#include "util/string_util.hpp"
#include "util/table.hpp"

namespace pdn3d::api {

namespace {

// CLI exit-code mapping (docs/ROBUSTNESS.md): 1 usage, 2 input, 3 numerical.
int exit_code_for(const core::Status& status) {
  switch (status.code()) {
    case core::StatusCode::kOk: return 0;
    case core::StatusCode::kInvalidArgument: return 1;
    case core::StatusCode::kInputError: return 2;
    case core::StatusCode::kNumericalFailure: return 3;
    case core::StatusCode::kCancelled: return 3;
  }
  return 2;
}

// %.17g round-trips every finite double exactly; matches obs/json.cpp.
std::string canonical_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// Compact rendering for quantities spanning many decades (MTTF hours).
std::string fmt_general(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3g", value);
  return buf;
}

irdrop::EmOptions em_options(const DesignOptions& design) {
  irdrop::EmOptions o;
  o.wire_limit_ma_cm2 = design.em_wire_limit;
  o.tsv_limit_ma_cm2 = design.em_tsv_limit;
  o.temperature_c = design.em_temp_c;
  return o;
}

/// The one shared renderer for per-kind branch-current statistics: analyze's
/// EM-enabled crowding block and em-check's current block both go through
/// here, so the two operations cannot drift apart.
void render_current_block(const irdrop::EmReport& rep, std::ostream& os) {
  os << "branch currents @ " << util::fmt_fixed(rep.temperature_c, 1) << " C:\n";
  util::Table t({"kind", "count", "max (mA)", "avg (mA)", "crowding", "max J (MA/cm^2)",
                 "limit", "util %", "MTTF (h)"});
  for (const auto& k : rep.kinds) {
    t.add_row({pdn::to_string(k.kind), std::to_string(k.current.count),
               util::fmt_fixed(k.current.max_amps * 1e3, 3),
               util::fmt_fixed(k.current.avg_amps * 1e3, 3),
               util::fmt_fixed(k.current.crowding_factor(), 2),
               util::fmt_fixed(k.max_j_ma_cm2, 4), util::fmt_fixed(k.limit_ma_cm2, 2),
               util::fmt_fixed(k.utilization() * 100.0, 1),
               k.mttf_hours > 0.0 ? fmt_general(k.mttf_hours) : "-"});
  }
  os << t.render();
  os << "EM check : ";
  if (rep.clean()) {
    os << "CLEAN";
  } else {
    os << rep.total_violations << " VIOLATION(S)";
  }
  os << " (worst utilization " << util::fmt_fixed(rep.worst_utilization * 100.0, 1)
     << "% of limit, min MTTF " << fmt_general(rep.min_mttf_hours) << " h)\n";
}

/// Empty when @p rep is clean; otherwise the co-optimizer constraint reason
/// naming the worst-violating element kind.
std::string em_violation_reason(const irdrop::EmReport& rep) {
  if (rep.clean()) return {};
  const irdrop::EmKindStats* worst = nullptr;
  for (const auto& k : rep.kinds) {
    if (k.violations == 0) continue;
    if (worst == nullptr || k.utilization() > worst->utilization()) worst = &k;
  }
  std::ostringstream os;
  os << "em-limit: " << pdn::to_string(worst->kind) << " J "
     << util::fmt_fixed(worst->max_j_ma_cm2, 4) << " > limit "
     << util::fmt_fixed(worst->limit_ma_cm2, 4) << " MA/cm^2 (" << rep.total_violations
     << " violation(s) total)";
  return os.str();
}

/// Open the request's sweep checkpoint, keyed by the request's canonical
/// fingerprint text plus @p extra run-shape bits that live outside the
/// request (Monte Carlo seed, LUT build parameters), so a resume against a
/// different benchmark/op/parameter set is refused instead of silently
/// mixing results. Returns nullptr when checkpointing is off; throws
/// std::runtime_error (-> input error) on a mismatched or corrupt file.
std::unique_ptr<util::SweepCheckpoint> open_checkpoint(const EvaluateRequest& request,
                                                       const std::string& extra,
                                                       std::uint64_t total) {
  if (request.checkpoint_path.empty()) return nullptr;
  const std::uint64_t key = util::checkpoint_key(request.fingerprint().canonical + extra);
  return std::make_unique<util::SweepCheckpoint>(
      util::SweepCheckpoint::open(request.checkpoint_path, key, total, request.resume));
}

/// The shared back half of an evaluate rendering: everything after the IR
/// result exists. Used by the per-request path (render_evaluate) and by the
/// service's coalesced batch path (Session::evaluate_group), so a batched
/// response cannot render differently from a stand-alone one.
void render_evaluate_result(const pdn::PdnConfig& cfg, const std::string& state,
                            const power::MemoryState& parsed, const irdrop::IrResult& r,
                            std::ostream& os, EvaluateResult* result) {
  os << "design : " << cfg.summary() << "\n";
  os << "state  : " << state << " @ activity " << util::fmt_fixed(parsed.io_activity, 2)
     << "\n";
  os << "cost   : " << util::fmt_fixed(cost::total_cost(cfg), 3) << "\n";
  util::Table t({"die", "max IR (mV)", "avg IR (mV)"});
  for (std::size_t d = 0; d < r.dram_dies.size(); ++d) {
    t.add_row({"DRAM" + std::to_string(d + 1), util::fmt_fixed(r.dram_dies[d].max_mv, 2),
               util::fmt_fixed(r.dram_dies[d].avg_mv, 2)});
  }
  os << t.render();
  os << "max DRAM IR drop : " << util::fmt_fixed(r.dram_max_mv, 2) << " mV\n";
  if (r.logic_max_mv > 0.0) {
    os << "logic self-noise : " << util::fmt_fixed(r.logic_max_mv, 2) << " mV\n";
  }
  os << "stack power      : " << util::fmt_fixed(r.total_power_mw, 1) << " mW\n";
  result->headline_mv = r.dram_max_mv;
}

void render_evaluate(const core::Platform& p, const EvaluateRequest& request, std::ostream& os,
                     EvaluateResult* result) {
  const auto cfg = request.design.apply(p.benchmark().baseline);
  const std::string state =
      request.state.empty() ? p.benchmark().default_state : request.state;
  const auto parsed = p.parse_state(state, request.activity);
  const auto r = p.analyze(cfg, parsed);
  render_evaluate_result(cfg, state, parsed, r, os, result);
  if (request.design.em_enabled()) {
    const auto rep = p.em_check(cfg, parsed, em_options(request.design));
    render_current_block(rep, os);
    if (request.design.em_enforce && !rep.clean()) {
      result->status = core::Status::numerical_failure(
          std::to_string(rep.total_violations) + " EM limit violation(s)");
    }
  }
}

void render_em_check(const core::Platform& p, const EvaluateRequest& request, std::ostream& os,
                     EvaluateResult* result) {
  const auto cfg = request.design.apply(p.benchmark().baseline);
  const std::string state =
      request.state.empty() ? p.benchmark().default_state : request.state;
  const auto parsed = p.parse_state(state, request.activity);
  const auto ir = p.analyze(cfg, parsed);
  os << "design : " << cfg.summary() << "\n";
  os << "state  : " << state << " @ activity " << util::fmt_fixed(parsed.io_activity, 2)
     << "\n";
  const auto rep = p.em_check(cfg, parsed, em_options(request.design));
  render_current_block(rep, os);
  os << "max DRAM IR drop : " << util::fmt_fixed(ir.dram_max_mv, 2) << " mV\n";
  result->headline_mv = ir.dram_max_mv;
  if (request.design.em_enforce && !rep.clean()) {
    result->status = core::Status::numerical_failure(
        std::to_string(rep.total_violations) + " EM limit violation(s)");
  }
}

void render_lut(const core::Platform& p, const EvaluateRequest& request, std::ostream& os,
                EvaluateResult* result) {
  const auto cfg = request.design.apply(p.benchmark().baseline);
  // With checkpointing the build bypasses the Platform's LUT cache (the cache
  // cannot resume a partial table) but uses the exact same build parameters,
  // so the rendered table is identical either way.
  std::unique_ptr<util::SweepCheckpoint> ckpt;
  std::optional<irdrop::IrLut> local;
  if (!request.checkpoint_path.empty()) {
    const auto& bench = p.benchmark();
    const auto& analyzer = p.analyzer(cfg);
    const int dies = analyzer.model().dram_die_count();
    const auto radix = static_cast<std::uint64_t>(bench.sim.max_active_per_die + 1);
    std::uint64_t total = 1;
    for (int d = 0; d < dies; ++d) total *= radix;
    ckpt = open_checkpoint(request,
                           "|lut_max=" + std::to_string(bench.sim.max_active_per_die) +
                               "|lut_io=" + std::to_string(bench.sim.io_demand_factor),
                           total);
    local = irdrop::IrLut::build(analyzer, bench.stack.dram_spec, bench.sim.max_active_per_die,
                                 bench.sim.io_demand_factor, 0, ckpt.get());
  }
  const auto& lut = local.has_value() ? *local : p.lut(cfg);
  os << "IR LUT for " << cfg.summary() << " (" << lut.size() << " states)\n";
  util::Table t({"state", "max IR (mV)"});
  std::vector<int> counts(static_cast<std::size_t>(lut.die_count()), 0);
  const int radix = lut.max_per_die() + 1;
  const std::size_t total = lut.size();
  for (std::size_t key = 0; key < total; ++key) {
    std::size_t k = key;
    std::string name;
    for (int d = 0; d < lut.die_count(); ++d) {
      counts[static_cast<std::size_t>(d)] = static_cast<int>(k % radix);
      k /= static_cast<std::size_t>(radix);
      if (d > 0) name += '-';
      name += std::to_string(counts[static_cast<std::size_t>(d)]);
    }
    t.add_row({name, util::fmt_fixed(lut.max_ir_mv(counts), 2)});
  }
  os << t.render();
  const auto worst = lut.worst_case_state();
  os << "worst state: ";
  for (std::size_t i = 0; i < worst.size(); ++i) {
    os << (i ? "-" : "") << worst[i];
  }
  os << " = " << util::fmt_fixed(lut.worst_case_mv(), 2) << " mV\n";
  result->headline_mv = lut.worst_case_mv();
}

void render_montecarlo(const core::Platform& p, const EvaluateRequest& request,
                       std::ostream& os, EvaluateResult* result) {
  const auto cfg = request.design.apply(p.benchmark().baseline);
  irdrop::MonteCarloConfig mc;
  mc.samples = static_cast<int>(request.samples);
  const auto ckpt = open_checkpoint(request, "|mc_seed=" + std::to_string(mc.seed),
                                    static_cast<std::uint64_t>(mc.samples));
  mc.checkpoint = ckpt.get();
  // The cached design analyzer already declares the many-solves access
  // pattern (sparse-direct factor), so repeated montecarlo requests on one
  // design reuse both the mesh and the factorization.
  const auto& analyzer = p.analyzer(cfg);
  const auto r = irdrop::sample_ir_distribution(analyzer, p.benchmark().stack.dram_spec, mc);
  const double worst = p.measure_ir_mv(cfg);
  os << "design : " << cfg.summary() << "\n";
  os << "samples: " << r.samples << "\n";
  util::Table t({"statistic", "IR drop (mV)"});
  t.add_row({"mean", util::fmt_fixed(r.mean_mv, 2)});
  t.add_row({"p50", util::fmt_fixed(r.p50_mv, 2)});
  t.add_row({"p95", util::fmt_fixed(r.p95_mv, 2)});
  t.add_row({"p99", util::fmt_fixed(r.p99_mv, 2)});
  t.add_row({"sampled max", util::fmt_fixed(r.max_mv, 2)});
  t.add_row({"design worst case", util::fmt_fixed(worst, 2)});
  os << t.render();
  result->headline_mv = r.p99_mv;
}

void render_cooptimize(const core::Platform& p, const EvaluateRequest& request,
                       std::ostream& os, EvaluateResult* result) {
  const double alpha = request.alpha;
  auto opt = p.make_cooptimizer();
  // total=0: the measurement count is open-ended (adaptive densify rounds and
  // re-measure retries), but the enumeration order is deterministic.
  const auto ckpt = open_checkpoint(request, "", 0);
  if (ckpt != nullptr) opt.set_checkpoint(ckpt.get());
  if (request.design.em_enabled()) {
    // Hard EM constraint: a cost/IR optimum that violates a current-density
    // limit is excluded (typed SkippedPoint) and the search continues.
    const auto& em_tech = p.benchmark().stack.tech.em;
    const irdrop::EmOptions em = em_options(request.design);
    os << "EM constraint: wire <= "
       << fmt_general(em.wire_limit_ma_cm2.value_or(em_tech.wire_limit_ma_cm2))
       << ", tsv <= "
       << fmt_general(em.tsv_limit_ma_cm2.value_or(em_tech.tsv_limit_ma_cm2))
       << " MA/cm^2 @ "
       << util::fmt_fixed(em.temperature_c.value_or(em_tech.temperature_c), 1)
       << " C (hard)\n";
    opt.set_constraint([&p, em](const pdn::PdnConfig& cfg) {
      return em_violation_reason(p.measure_em(cfg, em));
    });
  }
  os << "sampling the design space with the R-Mesh...\n";
  const auto best = opt.optimize(alpha);
  os << "alpha " << alpha << " optimum:\n";
  os << "  design  : " << best.config.summary() << "\n";
  os << "  model IR: " << util::fmt_fixed(best.predicted_ir_mv, 2) << " mV\n";
  os << "  R-Mesh  : " << util::fmt_fixed(best.measured_ir_mv, 2) << " mV\n";
  os << "  cost    : " << util::fmt_fixed(best.cost, 3) << "\n";
  os << "  fit     : worst RMSE " << util::fmt_fixed(opt.worst_rmse(), 3) << " mV, R^2 "
     << util::fmt_fixed(opt.worst_r_squared(), 4) << "\n";
  for (const auto& s : opt.skipped_points()) {
    const bool constrained = s.kind == opt::SkippedPoint::Kind::kConstraint;
    os << (constrained ? "  excluded: " : "  skipped : ") << s.config.summary() << " -- "
       << s.reason << "\n";
  }
  result->headline_mv = best.measured_ir_mv;
}

void render_validate(const core::Platform& p, const EvaluateRequest& request, std::ostream& os,
                     EvaluateResult* result) {
  const auto& bench = p.benchmark();
  const auto cfg = request.design.apply(bench.baseline);
  os << "design : " << cfg.summary() << "\n";

  pdn::BuiltStack built;
  try {
    built = pdn::build_stack(bench.stack, cfg);
  } catch (const std::exception& e) {
    os << "error: stack build failed: " << e.what() << "\n";
    result->status = core::Status::input_error(std::string("stack build failed: ") + e.what());
    return;
  }
  os << "mesh   : " << built.model.node_count() << " nodes, "
     << built.model.resistors().size() << " resistors, " << built.model.taps().size()
     << " supply taps\n";

  core::ValidationReport report = pdn::validate_stack_model(built.model);
  if (report.ok()) {
    // Mesh is sound; check the default state's injection and run a verified
    // probe solve through the escalation ladder.
    irdrop::PowerBinding power;
    power.dram = bench.dram_power;
    power.logic = bench.logic_power;
    power.dram_scale = bench.power_scale;
    const irdrop::IrAnalyzer analyzer(built.model, bench.stack.dram_fp, bench.stack.logic_fp,
                                      power);
    const auto state = p.parse_state(bench.default_state, bench.default_io_activity);
    const auto sinks = analyzer.injection(state);
    report.merge(pdn::validate_injection(built.model, sinks));
    if (report.ok()) {
      const auto outcome = analyzer.solver().solve(irdrop::SolveRequest{.sinks = sinks});
      if (outcome.ok()) {
        os << "solve  : " << irdrop::to_string(outcome.kind_used) << ", "
           << outcome.iterations << " iterations, relative residual " << outcome.rel_residual;
        if (outcome.escalations > 0) {
          os << " (" << outcome.escalations << " rung escalation(s))";
        }
        os << "\n";
      } else {
        os << "error: probe solve failed: " << outcome.status.to_string() << "\n";
        result->status = core::Status::numerical_failure("probe solve failed: " +
                                                         outcome.status.message());
        return;
      }
    }
  }

  for (const auto& issue : report.issues()) {
    os << core::to_string(issue.severity) << " [" << issue.check << "] " << issue.message
       << "\n";
  }
  if (!report.ok()) {
    os << "validation FAILED: " << report.error_count() << " error(s), "
       << report.warning_count() << " warning(s)\n";
    result->status = core::Status::numerical_failure(report.to_status().message());
    return;
  }
  os << "validation passed";
  if (report.warning_count() > 0) os << " (" << report.warning_count() << " warning(s))";
  os << "\n";
}

}  // namespace

const char* to_string(Operation op) {
  switch (op) {
    case Operation::kEvaluate: return "evaluate";
    case Operation::kMonteCarlo: return "montecarlo";
    case Operation::kLut: return "lut";
    case Operation::kCoOptimize: return "cooptimize";
    case Operation::kValidate: return "validate";
    case Operation::kEmCheck: return "em-check";
  }
  return "?";
}

core::Status parse_operation(std::string_view text, Operation* out) {
  if (text == "evaluate" || text == "analyze") {
    *out = Operation::kEvaluate;
  } else if (text == "montecarlo") {
    *out = Operation::kMonteCarlo;
  } else if (text == "lut") {
    *out = Operation::kLut;
  } else if (text == "cooptimize") {
    *out = Operation::kCoOptimize;
  } else if (text == "validate") {
    *out = Operation::kValidate;
  } else if (text == "em-check") {
    *out = Operation::kEmCheck;
  } else {
    return core::Status::invalid_argument(
        "unknown operation '" + std::string(text) +
        "' (want evaluate | montecarlo | lut | cooptimize | validate | em-check)");
  }
  return core::Status::ok();
}

core::Status parse_benchmark(std::string_view text, core::BenchmarkKind* out) {
  if (text == "off-chip") {
    *out = core::BenchmarkKind::kStackedDdr3OffChip;
  } else if (text == "on-chip") {
    *out = core::BenchmarkKind::kStackedDdr3OnChip;
  } else if (text == "wide-io") {
    *out = core::BenchmarkKind::kWideIo;
  } else if (text == "hmc") {
    *out = core::BenchmarkKind::kHmc;
  } else {
    return core::Status::invalid_argument("unknown benchmark '" + std::string(text) +
                                          "' (want off-chip | on-chip | wide-io | hmc)");
  }
  return core::Status::ok();
}

const char* benchmark_token(core::BenchmarkKind kind) {
  switch (kind) {
    case core::BenchmarkKind::kStackedDdr3OffChip: return "off-chip";
    case core::BenchmarkKind::kStackedDdr3OnChip: return "on-chip";
    case core::BenchmarkKind::kWideIo: return "wide-io";
    case core::BenchmarkKind::kHmc: return "hmc";
  }
  return "?";
}

std::string RequestFingerprint::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash));
  return buf;
}

EvaluateRequest EvaluateRequest::canonicalize() const {
  EvaluateRequest c;
  c.benchmark = benchmark;
  c.op = op;
  // Parameters an operation never reads are left at their defaults so they
  // cannot split identical outputs into distinct identities. cooptimize
  // explores the benchmark's design space from its baseline and ignores the
  // request's design overrides entirely, so they are dropped there too.
  if (op != Operation::kCoOptimize) c.design = design;
  if (op == Operation::kEvaluate || op == Operation::kEmCheck) {
    c.state = state;
    c.activity = activity;
  }
  if (op == Operation::kMonteCarlo) c.samples = samples;
  if (op == Operation::kCoOptimize) {
    c.alpha = alpha;
    // cooptimize ignores the design overrides -- except the EM fields, which
    // parameterize its hard constraint and therefore its output.
    c.design.em_wire_limit = design.em_wire_limit;
    c.design.em_tsv_limit = design.em_tsv_limit;
    c.design.em_temp_c = design.em_temp_c;
    c.design.em_enforce = design.em_enforce;
  }
  if (op == Operation::kMonteCarlo || op == Operation::kLut || op == Operation::kValidate) {
    // These operations never run the EM pass; reset its knobs so they cannot
    // split identical outputs into distinct identities.
    c.design.em_wire_limit.reset();
    c.design.em_tsv_limit.reset();
    c.design.em_temp_c.reset();
    c.design.em_enforce = false;
  }
  // checkpoint_path / resume stay cleared: resume is bitwise identical to an
  // uninterrupted run, so checkpoint plumbing is not output-determining.
  return c;
}

RequestFingerprint EvaluateRequest::fingerprint() const {
  const EvaluateRequest c = canonicalize();
  // Requests that never touch the EM subsystem keep the historical v1 prefix
  // (and, because canonical_text() only appends EM fields when set, their
  // exact pre-EM canonical text and golden hashes). Anything EM-enabled is a
  // new identity under the v2 prefix.
  std::string text = c.design.em_enabled() ? "pdn3d-req-v2" : "pdn3d-req-v1";
  text += "|bench=";
  text += benchmark_token(c.benchmark);
  text += "|op=";
  text += to_string(c.op);
  text += "|design=";
  text += c.design.canonical_text();
  text += "|state=";
  text += c.state;
  text += "|activity=";
  text += canonical_double(c.activity);
  text += "|samples=";
  text += std::to_string(c.samples);
  text += "|alpha=";
  text += canonical_double(c.alpha);
  RequestFingerprint fp;
  fp.canonical = std::move(text);
  fp.hash = util::checkpoint_key(fp.canonical);
  return fp;
}

core::Status EvaluateRequest::validate() const {
  const core::Status act = check_activity(activity);
  if (!act.is_ok()) return act;
  if (op == Operation::kMonteCarlo) {
    const core::Status s = check_samples(samples);
    if (!s.is_ok()) return s;
  }
  if (op == Operation::kCoOptimize) {
    const core::Status a = check_alpha(alpha);
    if (!a.is_ok()) return a;
  }
  if (resume && checkpoint_path.empty()) {
    return core::Status::invalid_argument("resume requires a checkpoint file");
  }
  if (!checkpoint_path.empty() && op != Operation::kMonteCarlo && op != Operation::kLut &&
      op != Operation::kCoOptimize) {
    return core::Status::invalid_argument(
        "checkpointing applies only to montecarlo | lut | cooptimize");
  }
  return core::Status::ok();
}

void Session::install(core::BenchmarkKind kind, core::Benchmark benchmark) {
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  platforms_[kind] = std::make_unique<core::Platform>(std::move(benchmark));
}

const core::Platform& Session::platform(core::BenchmarkKind kind) const {
  {
    const std::shared_lock<std::shared_mutex> lock(mutex_);
    const auto it = platforms_.find(kind);
    if (it != platforms_.end()) return *it->second;
  }
  // Build outside the lock; racing builders both construct and the first
  // emplace wins (same convention as the Platform design cache).
  auto built = std::make_unique<core::Platform>(core::make_benchmark(kind));
  const std::unique_lock<std::shared_mutex> lock(mutex_);
  const auto [pos, inserted] = platforms_.emplace(kind, std::move(built));
  return *pos->second;
}

EvaluateResult Session::evaluate(const EvaluateRequest& request) const {
  EvaluateResult result;
  result.fingerprint = request.fingerprint().hex();
  result.status = request.validate();
  if (!result.status.is_ok()) {
    result.exit_code = exit_code_for(result.status);
    result.output = "error: " + result.status.message() + "\n";
    return result;
  }

  std::ostringstream os;
  try {
    const core::Platform& p = platform(request.benchmark);
    switch (request.op) {
      case Operation::kEvaluate: render_evaluate(p, request, os, &result); break;
      case Operation::kMonteCarlo: render_montecarlo(p, request, os, &result); break;
      case Operation::kLut: render_lut(p, request, os, &result); break;
      case Operation::kCoOptimize: render_cooptimize(p, request, os, &result); break;
      case Operation::kValidate: render_validate(p, request, os, &result); break;
      case Operation::kEmCheck: render_em_check(p, request, os, &result); break;
    }
  } catch (const core::ValidationError& e) {
    os << "error: mesh validation failed:\n" << e.report().to_string() << "\n";
    result.status = core::Status::numerical_failure("mesh validation failed");
  } catch (const core::NumericalError& e) {
    os << "error: " << e.status().to_string() << "\n";
    result.status = e.status();
  } catch (const std::exception& e) {
    os << "error: " << e.what() << "\n";
    result.status = core::Status::input_error(e.what());
  }
  result.output = os.str();
  result.exit_code = exit_code_for(result.status);
  return result;
}

std::vector<EvaluateResult> Session::evaluate_group(
    std::span<const EvaluateRequest> requests) const {
  std::vector<EvaluateResult> results(requests.size());
  if (requests.empty()) return results;

  const auto fallback = [&] {
    for (std::size_t i = 0; i < requests.size(); ++i) results[i] = evaluate(requests[i]);
  };

  // The shared-factor fast path only fires for a homogeneous group of valid
  // plain-evaluate requests on one design; anything else is N independent
  // evaluate() calls with their usual per-request error reporting.
  bool batchable = requests.size() > 1;
  const std::string design_key = requests[0].design.canonical_text();
  for (const EvaluateRequest& r : requests) {
    if (r.op != Operation::kEvaluate || r.design.em_enabled() || !r.checkpoint_path.empty() ||
        r.benchmark != requests[0].benchmark || !r.validate().is_ok() ||
        r.design.canonical_text() != design_key) {
      batchable = false;
      break;
    }
  }
  if (!batchable) {
    fallback();
    return results;
  }

  try {
    const core::Platform& p = platform(requests[0].benchmark);
    const auto cfg = requests[0].design.apply(p.benchmark().baseline);
    std::vector<std::string> state_texts;
    std::vector<power::MemoryState> states;
    state_texts.reserve(requests.size());
    states.reserve(requests.size());
    for (const EvaluateRequest& r : requests) {
      state_texts.push_back(r.state.empty() ? p.benchmark().default_state : r.state);
      states.push_back(p.parse_state(state_texts.back(), r.activity));
    }
    // Same cached analyzer instance Platform::analyze uses, so the solver
    // takes the same rung and each batch slice is bitwise identical to the
    // stand-alone result.
    const auto batch = p.analyzer(cfg).analyze_batch(states);
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EvaluateResult& result = results[i];
      result.fingerprint = requests[i].fingerprint().hex();
      std::ostringstream os;
      render_evaluate_result(cfg, state_texts[i], states[i], batch[i], os, &result);
      result.output = os.str();
      result.exit_code = exit_code_for(result.status);
    }
  } catch (...) {
    // Any batch-path failure (state parse error, solver failure, ...) must
    // surface exactly as individual evaluation would report it.
    fallback();
  }
  return results;
}

}  // namespace pdn3d::api
