#include "api/options.hpp"

#include <array>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "util/string_util.hpp"

namespace pdn3d::api {

namespace {

std::string range_text(double min_value, double max_value) {
  std::ostringstream os;
  os << "[" << min_value << ", " << max_value << "]";
  return os.str();
}

core::Status bad_option(std::string_view name, std::string_view text, std::string_view why) {
  return core::Status::invalid_argument(std::string(name) + ": '" + std::string(text) + "' " +
                                        std::string(why));
}

}  // namespace

core::Status parse_double(std::string_view name, std::string_view text, double min_value,
                          double max_value, double* out) {
  const std::string trimmed{util::trim(text)};
  if (trimmed.empty()) return bad_option(name, text, "is not a number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(trimmed.c_str(), &end);
  if (end != trimmed.c_str() + trimmed.size() || errno == ERANGE || !std::isfinite(value)) {
    return bad_option(name, text, "is not a finite number");
  }
  const core::Status range = check_range(name, value, min_value, max_value);
  if (!range.is_ok()) return range;
  *out = value;
  return core::Status::ok();
}

core::Status parse_int(std::string_view name, std::string_view text, long long min_value,
                       long long max_value, long long* out) {
  const std::string trimmed{util::trim(text)};
  if (trimmed.empty()) return bad_option(name, text, "is not an integer");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(trimmed.c_str(), &end, 10);
  if (end != trimmed.c_str() + trimmed.size() || errno == ERANGE) {
    return bad_option(name, text, "is not an integer");
  }
  if (value < min_value || value > max_value) {
    return core::Status::invalid_argument(
        std::string(name) + ": " + std::to_string(value) + " is outside " +
        range_text(static_cast<double>(min_value), static_cast<double>(max_value)));
  }
  *out = value;
  return core::Status::ok();
}

core::Status check_range(std::string_view name, double value, double min_value,
                         double max_value) {
  if (!std::isfinite(value) || value < min_value || value > max_value) {
    std::ostringstream os;
    os << name << ": " << value << " is outside " << range_text(min_value, max_value);
    return core::Status::invalid_argument(os.str());
  }
  return core::Status::ok();
}

core::Status parse_tsv_location(std::string_view text, pdn::TsvLocation* out) {
  const std::string t = util::to_lower(text);
  if (t == "c") {
    *out = pdn::TsvLocation::kCenter;
  } else if (t == "e") {
    *out = pdn::TsvLocation::kEdge;
  } else if (t == "d") {
    *out = pdn::TsvLocation::kDistributed;
  } else {
    return bad_option("tl", text, "is not a TSV location (want c | e | d)");
  }
  return core::Status::ok();
}

core::Status parse_bonding(std::string_view text, pdn::BondingStyle* out) {
  const std::string t = util::to_lower(text);
  if (t == "f2b") {
    *out = pdn::BondingStyle::kF2B;
  } else if (t == "f2f") {
    *out = pdn::BondingStyle::kF2F;
  } else {
    return bad_option("bd", text, "is not a bonding style (want f2b | f2f)");
  }
  return core::Status::ok();
}

core::Status parse_rdl(std::string_view text, pdn::RdlMode* out) {
  const std::string t = util::to_lower(text);
  if (t == "none") {
    *out = pdn::RdlMode::kNone;
  } else if (t == "bottom") {
    *out = pdn::RdlMode::kBottomOnly;
  } else if (t == "all") {
    *out = pdn::RdlMode::kAllDies;
  } else {
    return bad_option("rdl", text, "is not an RDL mode (want none | bottom | all)");
  }
  return core::Status::ok();
}

core::Status DesignOptions::set(std::string_view key, double value) {
  if (key == "m2" || key == "m3") {
    const core::Status st = check_range(key, value, 0.0, 100.0);
    if (!st.is_ok()) return st;
    (key == "m2" ? m2_pct : m3_pct) = value;
    return core::Status::ok();
  }
  if (key == "tc") {
    const core::Status st = check_range(key, value, 1.0, 1e6);
    if (!st.is_ok()) return st;
    if (value != std::floor(value)) {
      return core::Status::invalid_argument("tc: TSV count must be an integer");
    }
    tsv_count = static_cast<long long>(value);
    return core::Status::ok();
  }
  if (key == "scale") {
    const core::Status st = check_range(key, value, 1e-6, 100.0);
    if (!st.is_ok()) return st;
    metal_usage_scale = value;
    return core::Status::ok();
  }
  if (key == "em-wire-limit" || key == "em-tsv-limit") {
    const core::Status st = check_range(key, value, 1e-6, 10000.0);
    if (!st.is_ok()) return st;
    (key == "em-wire-limit" ? em_wire_limit : em_tsv_limit) = value;
    return core::Status::ok();
  }
  if (key == "em-temp") {
    const core::Status st = check_range(key, value, -55.0, 300.0);
    if (!st.is_ok()) return st;
    em_temp_c = value;
    return core::Status::ok();
  }
  return core::Status::invalid_argument("unknown numeric design option '" + std::string(key) +
                                        "'");
}

core::Status DesignOptions::set(std::string_view key, std::string_view text) {
  if (key == "m2" || key == "m3" || key == "scale" || key == "em-wire-limit" ||
      key == "em-tsv-limit" || key == "em-temp") {
    double value = 0.0;
    // Syntax check here; the numeric setter applies the range contract.
    const core::Status st =
        parse_double(key, text, -1e300, 1e300, &value);
    if (!st.is_ok()) return st;
    return set(key, value);
  }
  if (key == "tc") {
    long long value = 0;
    const core::Status st = parse_int(key, text, 1, 1000000, &value);
    if (!st.is_ok()) return st;
    tsv_count = value;
    return core::Status::ok();
  }
  if (key == "tl") {
    pdn::TsvLocation loc{};
    const core::Status st = parse_tsv_location(text, &loc);
    if (!st.is_ok()) return st;
    tsv_location = loc;
    return core::Status::ok();
  }
  if (key == "bd") {
    pdn::BondingStyle bd{};
    const core::Status st = parse_bonding(text, &bd);
    if (!st.is_ok()) return st;
    bonding = bd;
    return core::Status::ok();
  }
  if (key == "rdl") {
    pdn::RdlMode mode{};
    const core::Status st = parse_rdl(text, &mode);
    if (!st.is_ok()) return st;
    rdl = mode;
    return core::Status::ok();
  }
  return core::Status::invalid_argument("unknown design option '" + std::string(key) + "'");
}

core::Status DesignOptions::set_flag(std::string_view key) {
  if (key == "wb") {
    wire_bonding = true;
  } else if (key == "dedicated") {
    dedicated_tsvs = true;
  } else if (key == "no-align" || key == "no_align") {
    no_align = true;
  } else if (key == "em") {
    em_enforce = true;
  } else {
    return core::Status::invalid_argument("unknown design flag '" + std::string(key) + "'");
  }
  return core::Status::ok();
}

pdn::PdnConfig DesignOptions::apply(pdn::PdnConfig base) const {
  if (m2_pct) base.m2_usage = *m2_pct / 100.0;
  if (m3_pct) base.m3_usage = *m3_pct / 100.0;
  if (tsv_count) base.tsv_count = static_cast<int>(*tsv_count);
  if (tsv_location) {
    base.tsv_location = *tsv_location;
    // Historical CLI semantics: without an RDL (judged against the *base*
    // config, before any rdl override below) the logic die mirrors the DRAM
    // TSV pattern, because nothing can reroute between mismatched patterns.
    if (base.rdl == pdn::RdlMode::kNone) base.logic_tsv_location = *tsv_location;
  }
  if (bonding) base.bonding = *bonding;
  if (rdl) base.rdl = *rdl;
  if (wire_bonding) base.wire_bonding = true;
  if (dedicated_tsvs) base.dedicated_tsvs = true;
  if (no_align) base.align_tsvs_to_c4 = false;
  if (metal_usage_scale) base.metal_usage_scale = *metal_usage_scale;
  return base;
}

namespace {

// Canonical keyspace order; also the field order of canonical_text().
constexpr std::array<OptionSpec, 14> kDesignOptionSpecs{{
    {"m2", OptionKind::kNumeric, "[0, 100] percent of die area"},
    {"m3", OptionKind::kNumeric, "[0, 100] percent of die area"},
    {"tc", OptionKind::kNumeric, "[1, 1000000] TSVs per interface"},
    {"tl", OptionKind::kEnum, "c | e | d"},
    {"bd", OptionKind::kEnum, "f2b | f2f"},
    {"rdl", OptionKind::kEnum, "none | bottom | all"},
    {"scale", OptionKind::kNumeric, "(0, 100] metal usage scale"},
    {"wb", OptionKind::kFlag, "wire bonding"},
    {"dedicated", OptionKind::kFlag, "dedicated power TSVs"},
    {"no-align", OptionKind::kFlag, "do not align TSVs to C4 bumps"},
    {"em-wire-limit", OptionKind::kNumeric, "(0, 10000] MA/cm^2 wire EM limit"},
    {"em-tsv-limit", OptionKind::kNumeric, "(0, 10000] MA/cm^2 TSV EM limit"},
    {"em-temp", OptionKind::kNumeric, "[-55, 300] junction temperature (C)"},
    {"em", OptionKind::kFlag, "enforce EM limits (violations fail the request)"},
}};

const OptionSpec* find_spec(std::string_view key) {
  // Underscores are the historical protocol spelling of dashed keys
  // ("no_align", "em_wire_limit", ...).
  std::string canonical(key);
  for (char& c : canonical) {
    if (c == '_') c = '-';
  }
  for (const OptionSpec& spec : kDesignOptionSpecs) {
    if (spec.key == canonical) return &spec;
  }
  return nullptr;
}

core::Status unknown_key(std::string_view key) {
  std::string known;
  for (const OptionSpec& spec : kDesignOptionSpecs) {
    if (!known.empty()) known += ", ";
    known += spec.key;
  }
  return core::Status::invalid_argument("unknown design option '" + std::string(key) +
                                        "' (known: " + known + ")");
}

core::Status apply_flag(DesignOptions* opts, const OptionSpec& spec, bool value) {
  if (!value) {
    // Flags default to unset; "false" is only meaningful as a no-op.
    return core::Status::ok();
  }
  return opts->set_flag(spec.key);
}

// %.17g round-trips every finite double exactly; matches obs/json.cpp.
std::string canonical_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

std::string tsv_location_token(pdn::TsvLocation loc) {
  switch (loc) {
    case pdn::TsvLocation::kCenter: return "c";
    case pdn::TsvLocation::kEdge: return "e";
    case pdn::TsvLocation::kDistributed: return "d";
  }
  return "?";
}

std::string bonding_token(pdn::BondingStyle bd) {
  return bd == pdn::BondingStyle::kF2F ? "f2f" : "f2b";
}

std::string rdl_token(pdn::RdlMode mode) {
  switch (mode) {
    case pdn::RdlMode::kNone: return "none";
    case pdn::RdlMode::kBottomOnly: return "bottom";
    case pdn::RdlMode::kAllDies: return "all";
  }
  return "?";
}

}  // namespace

std::span<const OptionSpec> design_option_specs() { return kDesignOptionSpecs; }

core::Status set_option(DesignOptions* opts, std::string_view key, std::string_view text) {
  const OptionSpec* spec = find_spec(key);
  if (spec == nullptr) return unknown_key(key);
  if (spec->kind == OptionKind::kFlag) {
    const std::string t = util::to_lower(util::trim(text));
    if (t == "true" || t == "1") return apply_flag(opts, *spec, true);
    if (t == "false" || t == "0") return apply_flag(opts, *spec, false);
    return bad_option(spec->key, text, "is not a boolean (want true | false)");
  }
  return opts->set(spec->key, text);
}

core::Status set_option(DesignOptions* opts, std::string_view key, double value) {
  const OptionSpec* spec = find_spec(key);
  if (spec == nullptr) return unknown_key(key);
  switch (spec->kind) {
    case OptionKind::kNumeric:
      return opts->set(spec->key, value);
    case OptionKind::kFlag:
      return apply_flag(opts, *spec, value != 0.0);
    case OptionKind::kEnum:
      return bad_option(spec->key, canonical_double(value),
                        std::string("is not one of ") + std::string(spec->values));
  }
  return unknown_key(key);
}

core::Status set_option(DesignOptions* opts, std::string_view key, bool value) {
  const OptionSpec* spec = find_spec(key);
  if (spec == nullptr) return unknown_key(key);
  if (spec->kind != OptionKind::kFlag) {
    return bad_option(spec->key, value ? "true" : "false",
                      std::string("is not one of ") + std::string(spec->values));
  }
  return apply_flag(opts, *spec, value);
}

std::string DesignOptions::canonical_text() const {
  std::string out;
  auto field = [&out](std::string_view key, const std::string& value) {
    if (!out.empty()) out += ";";
    out += key;
    out += "=";
    out += value;
  };
  field("m2", m2_pct ? canonical_double(*m2_pct) : "-");
  field("m3", m3_pct ? canonical_double(*m3_pct) : "-");
  field("tc", tsv_count ? std::to_string(*tsv_count) : "-");
  field("tl", tsv_location ? tsv_location_token(*tsv_location) : "-");
  field("bd", bonding ? bonding_token(*bonding) : "-");
  field("rdl", rdl ? rdl_token(*rdl) : "-");
  field("scale", metal_usage_scale ? canonical_double(*metal_usage_scale) : "-");
  field("wb", wire_bonding ? "1" : "0");
  field("dedicated", dedicated_tsvs ? "1" : "0");
  field("no-align", no_align ? "1" : "0");
  // EM fields only when set: pre-EM requests must render exactly as they
  // always did, or every pinned v1 fingerprint would shift.
  if (em_wire_limit) field("em-wire-limit", canonical_double(*em_wire_limit));
  if (em_tsv_limit) field("em-tsv-limit", canonical_double(*em_tsv_limit));
  if (em_temp_c) field("em-temp", canonical_double(*em_temp_c));
  if (em_enforce) field("em", "1");
  return out;
}

core::Status check_activity(double activity) {
  if (activity == -1.0) return core::Status::ok();  // auto: 1 / active dies
  return check_range("activity", activity, 0.0, 1.0);
}

core::Status check_samples(long long samples) {
  if (samples < 1 || samples > 10000000) {
    return core::Status::invalid_argument("samples: " + std::to_string(samples) +
                                          " is outside [1, 10000000]");
  }
  return core::Status::ok();
}

core::Status check_alpha(double alpha) { return check_range("alpha", alpha, 0.0, 1.0); }

}  // namespace pdn3d::api
