#pragma once

/// @file regression.hpp
/// @brief Least-squares IR-drop model (the MATLAB-regression substitute).
///
/// One model is fitted per discrete option combination (TSV location,
/// dedicated TSVs, bonding, RDL, wire bonding); the continuous variables
/// (M2, M3, TC) enter through the reciprocal basis in features.hpp. The
/// paper reports RMSE < 0.135 and R^2 > 0.999 for its fits; the regression
/// quality bench reproduces that check.

#include <span>
#include <vector>

#include "fit/features.hpp"

namespace pdn3d::fit {

struct Sample {
  DesignVars vars;
  double ir_mv = 0.0;
};

class IrModel {
 public:
  IrModel() = default;

  /// Fit from samples (needs at least ir_feature_count() of them).
  /// Throws std::invalid_argument / std::runtime_error on bad input.
  static IrModel fit(std::span<const Sample> samples);

  [[nodiscard]] double predict(const DesignVars& v) const;

  [[nodiscard]] double rmse() const { return rmse_; }
  [[nodiscard]] double r_squared() const { return r_squared_; }
  [[nodiscard]] const std::vector<double>& coefficients() const { return coefficients_; }

 private:
  std::vector<double> coefficients_;
  double rmse_ = 0.0;
  double r_squared_ = 0.0;
};

}  // namespace pdn3d::fit
