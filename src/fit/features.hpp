#pragma once

/// @file features.hpp
/// @brief Feature basis for the IR-drop regression model.
///
/// IR drop through a resistive network is (piecewise) linear in element
/// resistances, and mesh/TSV resistances go as 1/usage and 1/count. The
/// regression basis therefore uses reciprocal terms plus interactions, which
/// is what lets a plain least-squares fit reach the paper's R^2 > 0.999.

#include <vector>

namespace pdn3d::fit {

/// Continuous design variables of one sample.
struct DesignVars {
  double m2 = 0.1;  ///< M2 VDD usage fraction
  double m3 = 0.2;  ///< M3 VDD usage fraction
  double tc = 33.0; ///< power TSV count
};

/// Basis evaluation; returns the feature vector for one design point.
std::vector<double> ir_features(const DesignVars& v);

/// Number of features ir_features() produces.
std::size_t ir_feature_count();

/// Names of the features (for reports).
std::vector<const char*> ir_feature_names();

}  // namespace pdn3d::fit
