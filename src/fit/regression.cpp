#include "fit/regression.hpp"

#include <stdexcept>

#include "linalg/least_squares.hpp"
#include "util/stats.hpp"

namespace pdn3d::fit {

IrModel IrModel::fit(std::span<const Sample> samples) {
  const std::size_t nfeat = ir_feature_count();
  if (samples.size() < nfeat) {
    throw std::invalid_argument("IrModel::fit: not enough samples for the basis");
  }

  // Ridge-regularized least squares: a tiny Tikhonov term keeps the system
  // full rank when a continuous variable is pinned (Wide I/O fixes TC, which
  // makes the reciprocal-TC features collinear with the constant).
  constexpr double kRidge = 1e-6;
  linalg::DenseMatrix a(samples.size() + nfeat, nfeat);
  std::vector<double> b(samples.size() + nfeat, 0.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto feats = ir_features(samples[i].vars);
    for (std::size_t j = 0; j < nfeat; ++j) a(i, j) = feats[j];
    b[i] = samples[i].ir_mv;
  }
  for (std::size_t j = 0; j < nfeat; ++j) a(samples.size() + j, j) = kRidge;

  const auto ls = linalg::solve_least_squares(a, b);

  IrModel model;
  model.coefficients_ = ls.coefficients;

  std::vector<double> truth(samples.size(), 0.0);
  std::vector<double> pred(samples.size(), 0.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    truth[i] = samples[i].ir_mv;
    pred[i] = model.predict(samples[i].vars);
  }
  model.rmse_ = util::rmse(truth, pred);
  model.r_squared_ = util::r_squared(truth, pred);
  return model;
}

double IrModel::predict(const DesignVars& v) const {
  if (coefficients_.empty()) throw std::logic_error("IrModel::predict: model not fitted");
  const auto feats = ir_features(v);
  double s = 0.0;
  for (std::size_t j = 0; j < feats.size(); ++j) s += coefficients_[j] * feats[j];
  return s;
}

}  // namespace pdn3d::fit
