#include "fit/features.hpp"

#include <cmath>

namespace pdn3d::fit {

std::vector<double> ir_features(const DesignVars& v) {
  const double im2 = 1.0 / v.m2;
  const double im3 = 1.0 / v.m3;
  const double itc = 1.0 / v.tc;
  const double istc = 1.0 / std::sqrt(v.tc);
  return {
      1.0,        // constant
      im2,        // M2 mesh resistance
      im3,        // M3 mesh resistance
      itc,        // vertical TSV resistance
      istc,       // TSV spreading (crowding scales sub-linearly)
      im2 * im3,  // mesh interaction
      im2 * itc,  // lateral-vertical interaction
      im3 * itc,  //
  };
}

std::size_t ir_feature_count() { return ir_features(DesignVars{}).size(); }

std::vector<const char*> ir_feature_names() {
  return {"1", "1/M2", "1/M3", "1/TC", "1/sqrt(TC)", "1/(M2*M3)", "1/(M2*TC)", "1/(M3*TC)"};
}

}  // namespace pdn3d::fit
