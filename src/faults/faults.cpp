#include "faults/faults.hpp"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <chrono>
#include <new>
#include <thread>

#include "exec/cancel.hpp"
#include "obs/metrics.hpp"
#include "util/string_util.hpp"

namespace pdn3d::faults {

namespace {

// Global gate mirrored from the registry so inert probes cost one relaxed
// atomic load and nothing else.
std::atomic<bool> g_enabled{false};

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Uniform double in [0,1) from (seed, site, call index) — the whole fault
// schedule is a pure function of the spec.
double decision_u01(std::uint64_t seed, std::uint64_t site_hash, std::uint64_t call) {
  const std::uint64_t mixed = splitmix64(splitmix64(seed ^ site_hash) + call);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53;
}

bool parse_u64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  const std::string copy(s);
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(copy.c_str(), &end, 10);
  if (errno != 0 || end != copy.c_str() + copy.size() || copy[0] == '-') return false;
  *out = static_cast<std::uint64_t>(v);
  return true;
}

bool parse_double(std::string_view s, double* out) {
  if (s.empty()) return false;
  const std::string copy(s);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(copy.c_str(), &end);
  if (errno != 0 || end != copy.c_str() + copy.size()) return false;
  *out = v;
  return true;
}

}  // namespace

struct Registry::Site {
  SiteConfig cfg;
  std::uint64_t name_hash = 0;
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> triggers{0};
  obs::Counter* metric = nullptr;
};

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

std::shared_ptr<const std::map<std::string, std::shared_ptr<Registry::Site>, std::less<>>>
Registry::sites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sites_;
}

std::string Registry::configure(std::string_view spec) {
  auto parsed = std::make_shared<std::map<std::string, std::shared_ptr<Site>, std::less<>>>();
  std::uint64_t seed = 0;
  for (std::string_view entry : util::split(spec, ',')) {
    entry = util::trim(entry);
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return "fault spec entry '" + std::string(entry) + "' is not site=rate";
    }
    const std::string name(util::trim(entry.substr(0, eq)));
    std::string_view value = util::trim(entry.substr(eq + 1));
    if (name == "seed") {
      std::uint64_t parsed_seed = 0;
      if (!parse_u64(value, &parsed_seed)) {
        return "fault spec seed '" + std::string(value) + "' is not an unsigned integer";
      }
      seed = parsed_seed;
      continue;
    }

    auto site = std::make_shared<Site>();
    site->name_hash = fnv1a(name);
    // Peel `:param` then `#max` off the tail: site=rate[#max][:param].
    if (const std::size_t colon = value.find(':'); colon != std::string_view::npos) {
      const std::string_view param = util::trim(value.substr(colon + 1));
      if (!parse_double(param, &site->cfg.param)) {
        return "fault spec param '" + std::string(param) + "' for site " + name +
               " is not a number";
      }
      site->cfg.has_param = true;
      value = util::trim(value.substr(0, colon));
    }
    if (const std::size_t hash = value.find('#'); hash != std::string_view::npos) {
      const std::string_view max = util::trim(value.substr(hash + 1));
      if (!parse_u64(max, &site->cfg.max_triggers)) {
        return "fault spec trigger cap '" + std::string(max) + "' for site " + name +
               " is not an unsigned integer";
      }
      value = util::trim(value.substr(0, hash));
    }
    if (const std::size_t slash = value.find('/'); slash != std::string_view::npos) {
      // `1/N`: fire deterministically on every Nth call.
      const std::string_view num = util::trim(value.substr(0, slash));
      const std::string_view den = util::trim(value.substr(slash + 1));
      if (num != "1" || !parse_u64(den, &site->cfg.every_nth) ||
          site->cfg.every_nth == 0) {
        return "fault spec rate '" + std::string(value) + "' for site " + name +
               " is not 1/N with N >= 1";
      }
    } else {
      if (!parse_double(value, &site->cfg.rate) || !(site->cfg.rate >= 0.0) ||
          !(site->cfg.rate <= 1.0)) {
        return "fault spec rate '" + std::string(value) + "' for site " + name +
               " is not a probability in [0,1]";
      }
    }
    site->metric = &obs::counter("faults." + name);
    (*parsed)[name] = std::move(site);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = seed;
  if (parsed->empty()) {
    sites_.reset();
    g_enabled.store(false, std::memory_order_relaxed);
  } else {
    sites_ = std::move(parsed);
    g_enabled.store(true, std::memory_order_relaxed);
  }
  return {};
}

std::string Registry::configure_from_env() {
  const char* spec = std::getenv("PDN3D_FAULTS");
  if (spec == nullptr) {
    reset();
    return {};
  }
  return configure(spec);
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  sites_.reset();
  seed_ = 0;
  g_enabled.store(false, std::memory_order_relaxed);
}

bool Registry::enabled() const noexcept { return g_enabled.load(std::memory_order_relaxed); }

bool Registry::should_fire(std::string_view site_name) {
  if (!enabled()) return false;
  const auto snapshot = sites();
  if (!snapshot) return false;
  const auto it = snapshot->find(site_name);
  if (it == snapshot->end()) return false;
  Site& site = *it->second;

  const std::uint64_t call = site.calls.fetch_add(1, std::memory_order_relaxed) + 1;
  const SiteConfig& cfg = site.cfg;
  if (cfg.max_triggers != 0 &&
      site.triggers.load(std::memory_order_relaxed) >= cfg.max_triggers) {
    return false;
  }
  bool fire = false;
  if (cfg.every_nth > 0) {
    fire = call % cfg.every_nth == 0;
  } else {
    std::uint64_t seed = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      seed = seed_;
    }
    fire = decision_u01(seed, site.name_hash, call) < cfg.rate;
  }
  if (!fire) return false;
  const std::uint64_t trigger = site.triggers.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cfg.max_triggers != 0 && trigger > cfg.max_triggers) {
    // Lost the race against the cap with another thread: undo.
    site.triggers.fetch_sub(1, std::memory_order_relaxed);
    return false;
  }
  site.metric->add(1);
  return true;
}

double Registry::param(std::string_view site_name, double fallback) const {
  const auto snapshot = sites();
  if (!snapshot) return fallback;
  const auto it = snapshot->find(site_name);
  if (it == snapshot->end() || !it->second->cfg.has_param) return fallback;
  return it->second->cfg.param;
}

std::uint64_t Registry::triggers(std::string_view site_name) const {
  const auto snapshot = sites();
  if (!snapshot) return 0;
  const auto it = snapshot->find(site_name);
  return it == snapshot->end() ? 0 : it->second->triggers.load(std::memory_order_relaxed);
}

std::vector<SiteStats> Registry::stats() const {
  std::vector<SiteStats> out;
  const auto snapshot = sites();
  if (!snapshot) return out;
  for (const auto& [name, site] : *snapshot) {
    out.push_back({name, site->calls.load(std::memory_order_relaxed),
                   site->triggers.load(std::memory_order_relaxed)});
  }
  return out;
}

std::uint64_t Registry::seed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return seed_;
}

bool should_fire(std::string_view site) { return Registry::instance().should_fire(site); }

void maybe_stall(std::string_view site, double default_ms) {
  auto& registry = Registry::instance();
  if (!registry.should_fire(site)) return;
  const double total_ms = registry.param(site, default_ms);
  if (!(total_ms > 0.0)) return;
  // Sleep in 1 ms slices so a cancellation request (watchdog) interrupts the
  // stall instead of riding it out.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(total_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (exec::cancellation_requested()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void maybe_throw_alloc(std::string_view site) {
  if (Registry::instance().should_fire(site)) throw std::bad_alloc();
}

}  // namespace pdn3d::faults
