#pragma once

/// \file
/// Deterministic fault-injection framework (docs/ROBUSTNESS.md).
///
/// Injection sites are string-keyed probes threaded through the solver,
/// executor, and service layers. They are inert until a fault spec is loaded
/// into the process-wide faults::Registry, normally from the PDN3D_FAULTS
/// environment variable:
///
///   PDN3D_FAULTS="linalg.cg.stall=0.05:20,service.socket.reset=1/8#3,seed=42"
///
/// Spec grammar (comma-separated entries):
///   site=rate[#max][:param]   activate `site`
///     rate    probability in [0,1] (seeded, per-call), or `1/N` to fire
///             deterministically on every Nth call
///     #max    stop after `max` triggers (0 / absent = unlimited)
///     :param  site parameter; for stall/delay sites the duration in ms
///   seed=N                    seed for the probabilistic decisions
///
/// Decisions are pure functions of (seed, site, call index), so a run with a
/// fixed spec replays the exact same fault schedule. Every trigger bumps a
/// `faults.<site>` counter in the obs metrics namespace.
///
/// Defining PDN3D_DISABLE_FAULTS (CMake option of the same name) compiles the
/// site macros down to constants; the registry itself stays linkable so
/// spec-handling code keeps building.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pdn3d::faults {

/// Parsed per-site activation from a PDN3D_FAULTS spec entry.
struct SiteConfig {
  double rate = 0.0;             ///< firing probability per call (when every_nth == 0)
  std::uint64_t every_nth = 0;   ///< when > 0: fire deterministically on calls N, 2N, ...
  std::uint64_t max_triggers = 0;  ///< stop firing after this many triggers (0 = unlimited)
  double param = 0.0;            ///< site parameter (stall/delay sites: duration in ms)
  bool has_param = false;        ///< whether `:param` was given in the spec
};

/// Counter snapshot for one configured site.
struct SiteStats {
  std::string site;
  std::uint64_t calls = 0;     ///< times the site was reached
  std::uint64_t triggers = 0;  ///< times it fired
};

/// Process-wide fault registry. Configure once (startup or test setup), then
/// any thread may consult it; `should_fire` is safe to call concurrently.
class Registry {
 public:
  static Registry& instance();

  /// Load a spec, replacing any previous configuration and resetting all
  /// counters. Returns an empty string on success, else a parse error message
  /// (the previous configuration is kept on error). An empty spec disables
  /// injection entirely.
  std::string configure(std::string_view spec);

  /// Load the spec from the PDN3D_FAULTS environment variable. Unset or empty
  /// leaves injection disabled. Returns the configure() error string.
  std::string configure_from_env();

  /// Drop all sites and disable injection (tests).
  void reset();

  /// Cheap global gate: false unless at least one site is configured.
  bool enabled() const noexcept;

  /// Decide whether `site` fires on this call. Bumps the call counter, and on
  /// a trigger the trigger counter plus the `faults.<site>` metric. Always
  /// false for unconfigured sites or when disabled.
  bool should_fire(std::string_view site);

  /// The `:param` value configured for `site`, or `fallback` when absent.
  double param(std::string_view site, double fallback) const;

  /// Trigger count for `site` since the last configure()/reset().
  std::uint64_t triggers(std::string_view site) const;

  /// Snapshot of every configured site's counters.
  std::vector<SiteStats> stats() const;

  /// Seed the current configuration was loaded with.
  std::uint64_t seed() const;

 private:
  Registry() = default;
  struct Site;
  std::shared_ptr<const std::map<std::string, std::shared_ptr<Site>, std::less<>>> sites() const;

  mutable std::mutex mutex_;
  std::shared_ptr<const std::map<std::string, std::shared_ptr<Site>, std::less<>>> sites_;
  std::uint64_t seed_ = 0;
};

/// Every injection site threaded through the codebase, for parameterized
/// tests and documentation. Keep in sync with docs/ROBUSTNESS.md.
inline constexpr std::string_view kKnownSites[] = {
    "linalg.cg.stall",       // sleep before the CG iteration loop
    "linalg.cg.nan",         // poison the initial CG residual with a NaN
    "linalg.chol.stall",     // sleep before the sparse-Cholesky factorization
    "irdrop.solve.alloc",    // throw std::bad_alloc at solver entry
    "exec.region.stall",     // sleep before running a parallel region
    "service.queue.delay",   // sleep between dequeue and evaluation
    "service.worker.stall",  // sleep inside the evaluation (cancel-aware)
    "service.socket.reset",  // shut down a client connection mid-read
};

/// Free-function probes used by the PDN3D_FAULT_* macros below.
bool should_fire(std::string_view site);
/// Sleep for the site's `:param` ms (default `default_ms`), in small slices so
/// an exec::CancelToken installed on this thread interrupts the stall.
void maybe_stall(std::string_view site, double default_ms);
/// Throw std::bad_alloc when the site fires.
void maybe_throw_alloc(std::string_view site);

}  // namespace pdn3d::faults

#ifdef PDN3D_DISABLE_FAULTS
#define PDN3D_FAULT_POINT(site) (false)
#define PDN3D_FAULT_STALL(site, default_ms) ((void)0)
#define PDN3D_FAULT_ALLOC(site) ((void)0)
#else
#define PDN3D_FAULT_POINT(site) (::pdn3d::faults::should_fire(site))
#define PDN3D_FAULT_STALL(site, default_ms) (::pdn3d::faults::maybe_stall(site, default_ms))
#define PDN3D_FAULT_ALLOC(site) (::pdn3d::faults::maybe_throw_alloc(site))
#endif
