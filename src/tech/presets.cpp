#include "tech/presets.hpp"

namespace pdn3d::tech {

DieTechnology dram_20nm(double vdd) {
  DieTechnology t;
  t.name = "dram_20nm";
  t.vdd = vdd;
  t.via_resistance = 0.05;
  t.pdn_layers = {
      MetalLayer{"M2", 0.285, RouteDirection::kHorizontal, 0.10, 0.25},
      MetalLayer{"M3", 0.138, RouteDirection::kVertical, 0.20, 0.45},
  };
  return t;
}

DieTechnology logic_28nm(double vdd) {
  DieTechnology t;
  t.name = "logic_28nm";
  t.vdd = vdd;
  t.via_resistance = 0.02;
  t.pdn_layers = {
      MetalLayer{"M5", 0.075, RouteDirection::kHorizontal, 0.30, 0.85},
      MetalLayer{"M6", 0.042, RouteDirection::kVertical, 0.40, 1.20},
  };
  return t;
}

InterconnectTech default_interconnect() {
  return InterconnectTech{};  // defaults in the struct definition
}

Technology ddr3_technology() {
  return Technology{dram_20nm(1.5), logic_28nm(1.5), default_interconnect()};
}

Technology low_voltage_technology() {
  return Technology{dram_20nm(1.2), logic_28nm(1.2), default_interconnect()};
}

}  // namespace pdn3d::tech
