#include "tech/tech_file.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "tech/presets.hpp"
#include "util/string_util.hpp"

namespace pdn3d::tech {

namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("technology file, line " + std::to_string(line) + ": " + message);
}

double parse_double(int line, std::string_view text) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(std::string(text), &pos);
    if (pos != text.size()) fail(line, "trailing junk in number '" + std::string(text) + "'");
    return v;
  } catch (const std::invalid_argument&) {
    fail(line, "expected a number, got '" + std::string(text) + "'");
  } catch (const std::out_of_range&) {
    fail(line, "number out of range: '" + std::string(text) + "'");
  }
}

RouteDirection parse_direction(int line, std::string_view text) {
  const std::string d = util::to_lower(text);
  if (d == "horizontal" || d == "h") return RouteDirection::kHorizontal;
  if (d == "vertical" || d == "v") return RouteDirection::kVertical;
  if (d == "omni" || d == "o") return RouteDirection::kOmni;
  fail(line, "unknown routing direction '" + std::string(text) + "'");
}

/// Parse "key=value" pairs on a layer line.
std::map<std::string, std::string> parse_pairs(int line, std::istringstream& rest) {
  std::map<std::string, std::string> out;
  std::string token;
  while (rest >> token) {
    const auto eq = token.find('=');
    if (eq == std::string::npos) fail(line, "expected key=value, got '" + token + "'");
    out[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return out;
}

void apply_die_key(int line, DieTechnology& die, const std::string& key, double value) {
  if (key == "vdd") {
    die.vdd = value;
  } else if (key == "via_resistance") {
    die.via_resistance = value;
  } else {
    fail(line, "unknown die key '" + key + "'");
  }
}

void apply_interconnect_key(int line, InterconnectTech& ic, const std::string& key, double value) {
  if (key == "tsv_resistance") ic.tsv_resistance = value;
  else if (key == "dedicated_tsv_resistance") ic.dedicated_tsv_resistance = value;
  else if (key == "c4_resistance") ic.c4_resistance = value;
  else if (key == "logic_c4_resistance") ic.logic_c4_resistance = value;
  else if (key == "misalign_detour_ohm_per_mm") ic.misalign_detour_ohm_per_mm = value;
  else if (key == "package_detour_ohm_per_mm") ic.package_detour_ohm_per_mm = value;
  else if (key == "microbump_resistance") ic.microbump_resistance = value;
  else if (key == "f2f_via_resistance") ic.f2f_via_resistance = value;
  else if (key == "wirebond_resistance") ic.wirebond_resistance = value;
  else if (key == "package_sheet_resistance") ic.package_sheet_resistance = value;
  else if (key == "rdl_sheet_resistance") ic.rdl_sheet_resistance = value;
  else if (key == "rdl_vdd_usage") ic.rdl_vdd_usage = value;
  else if (key == "rdl_via_resistance") ic.rdl_via_resistance = value;
  else fail(line, "unknown interconnect key '" + key + "'");
}

void apply_em_key(int line, EmTech& em, const std::string& key, double value) {
  if (key == "tsv_diameter_um") em.tsv_diameter_um = value;
  else if (key == "c4_diameter_um") em.c4_diameter_um = value;
  else if (key == "via_area_um2") em.via_area_um2 = value;
  else if (key == "f2f_via_area_um2") em.f2f_via_area_um2 = value;
  else if (key == "rdl_via_area_um2") em.rdl_via_area_um2 = value;
  else if (key == "rdl_thickness_um") em.rdl_thickness_um = value;
  else if (key == "package_thickness_um") em.package_thickness_um = value;
  else if (key == "wire_limit_ma_cm2") em.wire_limit_ma_cm2 = value;
  else if (key == "tsv_limit_ma_cm2") em.tsv_limit_ma_cm2 = value;
  else if (key == "via_limit_ma_cm2") em.via_limit_ma_cm2 = value;
  else if (key == "black_a_hours") em.black_a_hours = value;
  else if (key == "black_n") em.black_n = value;
  else if (key == "activation_energy_ev") em.activation_energy_ev = value;
  else if (key == "temperature_c") em.temperature_c = value;
  else fail(line, "unknown em key '" + key + "'");
}

}  // namespace

Technology read_technology(std::istream& is) {
  Technology tech = ddr3_technology();  // library defaults
  enum class Section { kNone, kDram, kLogic, kInterconnect, kEm };
  Section section = Section::kNone;
  bool dram_layers_cleared = false;
  bool logic_layers_cleared = false;

  std::string raw;
  int line = 0;
  while (std::getline(is, raw)) {
    ++line;
    std::string_view text = util::trim(raw);
    if (text.empty() || text.front() == '#') continue;

    if (text.front() == '[') {
      if (text.back() != ']') fail(line, "unterminated section header");
      const std::string name = util::to_lower(text.substr(1, text.size() - 2));
      if (name == "dram") section = Section::kDram;
      else if (name == "logic") section = Section::kLogic;
      else if (name == "interconnect") section = Section::kInterconnect;
      else if (name == "em") section = Section::kEm;
      else fail(line, "unknown section '" + name + "'");
      continue;
    }
    if (section == Section::kNone) fail(line, "content before any [section]");

    std::istringstream ss{std::string(text)};
    std::string first;
    ss >> first;

    if (first == "layer") {
      if (section != Section::kDram && section != Section::kLogic) {
        fail(line, "layers belong to a die section");
      }
      std::string lname;
      if (!(ss >> lname)) fail(line, "layer needs a name");
      const auto pairs = parse_pairs(line, ss);
      MetalLayer layer;
      layer.name = lname;
      bool have_sheet = false;
      for (const auto& [k, v] : pairs) {
        if (k == "sheet") {
          layer.sheet_resistance = parse_double(line, v);
          have_sheet = true;
        } else if (k == "dir") {
          layer.direction = parse_direction(line, v);
        } else if (k == "usage") {
          layer.default_vdd_usage = parse_double(line, v);
        } else if (k == "thickness") {
          layer.thickness_um = parse_double(line, v);
        } else {
          fail(line, "unknown layer attribute '" + k + "'");
        }
      }
      if (!have_sheet) fail(line, "layer '" + lname + "' needs sheet=");
      DieTechnology& die = section == Section::kDram ? tech.dram : tech.logic;
      bool& cleared = section == Section::kDram ? dram_layers_cleared : logic_layers_cleared;
      if (!cleared) {
        die.pdn_layers.clear();  // a file that lists layers replaces the stack
        cleared = true;
      }
      for (const auto& existing : die.pdn_layers) {
        if (existing.name == lname) {
          fail(line, "duplicate layer '" + lname + "' in [" + die.name + "]");
        }
      }
      die.pdn_layers.push_back(layer);
      continue;
    }

    // "key = value" (tolerate spaces around '=').
    std::string rest;
    std::getline(ss, rest);
    std::string key = first;
    std::string value;
    const auto eq_in_key = key.find('=');
    if (eq_in_key != std::string::npos) {
      value = key.substr(eq_in_key + 1);
      key = key.substr(0, eq_in_key);
      if (value.empty()) value = std::string(util::trim(rest));
    } else {
      std::string_view r = util::trim(rest);
      if (r.empty() || r.front() != '=') fail(line, "expected '=' after '" + key + "'");
      r.remove_prefix(1);
      value = std::string(util::trim(r));
    }
    if (value.empty()) fail(line, "missing value for '" + key + "'");
    const double v = parse_double(line, value);

    switch (section) {
      case Section::kDram: apply_die_key(line, tech.dram, key, v); break;
      case Section::kLogic: apply_die_key(line, tech.logic, key, v); break;
      case Section::kInterconnect: apply_interconnect_key(line, tech.interconnect, key, v); break;
      case Section::kEm: apply_em_key(line, tech.em, key, v); break;
      case Section::kNone: fail(line, "unreachable");
    }
  }

  for (const DieTechnology* die : {&tech.dram, &tech.logic}) {
    if (die->pdn_layers.size() < 2) {
      // Typical cause: the file was truncated mid-stack, so name the line the
      // input ended on to point at the cut.
      throw std::runtime_error("technology file, line " + std::to_string(line) + ": '" +
                               die->name + "' has " + std::to_string(die->pdn_layers.size()) +
                               " PDN layer(s), needs at least two (truncated file?)");
    }
  }
  return tech;
}

Technology read_technology_string(const std::string& text) {
  std::istringstream is(text);
  return read_technology(is);
}

void write_technology(std::ostream& os, const Technology& tech) {
  const auto write_die = [&os](const char* section, const DieTechnology& die) {
    os << '[' << section << "]\n";
    os << "vdd = " << die.vdd << "\n";
    os << "via_resistance = " << die.via_resistance << "\n";
    for (const auto& l : die.pdn_layers) {
      os << "layer " << l.name << " sheet=" << l.sheet_resistance << " dir="
         << to_string(l.direction) << " usage=" << l.default_vdd_usage
         << " thickness=" << l.thickness_um << "\n";
    }
    os << "\n";
  };
  os << "# pdn3d technology file\n";
  write_die("dram", tech.dram);
  write_die("logic", tech.logic);

  const auto& ic = tech.interconnect;
  os << "[interconnect]\n";
  os << "tsv_resistance = " << ic.tsv_resistance << "\n";
  os << "dedicated_tsv_resistance = " << ic.dedicated_tsv_resistance << "\n";
  os << "c4_resistance = " << ic.c4_resistance << "\n";
  os << "logic_c4_resistance = " << ic.logic_c4_resistance << "\n";
  os << "misalign_detour_ohm_per_mm = " << ic.misalign_detour_ohm_per_mm << "\n";
  os << "package_detour_ohm_per_mm = " << ic.package_detour_ohm_per_mm << "\n";
  os << "microbump_resistance = " << ic.microbump_resistance << "\n";
  os << "f2f_via_resistance = " << ic.f2f_via_resistance << "\n";
  os << "wirebond_resistance = " << ic.wirebond_resistance << "\n";
  os << "package_sheet_resistance = " << ic.package_sheet_resistance << "\n";
  os << "rdl_sheet_resistance = " << ic.rdl_sheet_resistance << "\n";
  os << "rdl_vdd_usage = " << ic.rdl_vdd_usage << "\n";
  os << "rdl_via_resistance = " << ic.rdl_via_resistance << "\n";

  const auto& em = tech.em;
  os << "\n[em]\n";
  os << "tsv_diameter_um = " << em.tsv_diameter_um << "\n";
  os << "c4_diameter_um = " << em.c4_diameter_um << "\n";
  os << "via_area_um2 = " << em.via_area_um2 << "\n";
  os << "f2f_via_area_um2 = " << em.f2f_via_area_um2 << "\n";
  os << "rdl_via_area_um2 = " << em.rdl_via_area_um2 << "\n";
  os << "rdl_thickness_um = " << em.rdl_thickness_um << "\n";
  os << "package_thickness_um = " << em.package_thickness_um << "\n";
  os << "wire_limit_ma_cm2 = " << em.wire_limit_ma_cm2 << "\n";
  os << "tsv_limit_ma_cm2 = " << em.tsv_limit_ma_cm2 << "\n";
  os << "via_limit_ma_cm2 = " << em.via_limit_ma_cm2 << "\n";
  os << "black_a_hours = " << em.black_a_hours << "\n";
  os << "black_n = " << em.black_n << "\n";
  os << "activation_energy_ev = " << em.activation_energy_ev << "\n";
  os << "temperature_c = " << em.temperature_c << "\n";
}

}  // namespace pdn3d::tech
