#pragma once

/// @file technology.hpp
/// @brief Electrical technology description for dies, inter-die connections,
/// and packaging.
///
/// The paper reads per-layer resistivity and routing direction from a
/// technology file and models PDN wire resistance through "metal layer usage"
/// (area fraction of a layer dedicated to the VDD grid). We mirror that: a
/// stripe grid with usage u on a layer of sheet resistance Rs has a segment
/// resistance of Rs/u between adjacent mesh nodes along the routing
/// direction, independent of the mesh pitch.

#include <cstddef>
#include <string>
#include <vector>

namespace pdn3d::tech {

/// Preferred routing direction of a metal layer. Omni layers (RDL, package
/// planes) conduct in both directions.
enum class RouteDirection { kHorizontal, kVertical, kOmni };

[[nodiscard]] std::string to_string(RouteDirection d);

/// One PDN metal layer of a die.
struct MetalLayer {
  std::string name;
  double sheet_resistance = 0.05;  ///< ohm/square
  RouteDirection direction = RouteDirection::kOmni;
  double default_vdd_usage = 0.2;  ///< fraction of layer area used by VDD
  double thickness_um = 0.30;      ///< conductor thickness (EM cross-sections)

  /// Mesh segment resistance at @p usage (Rs / usage).
  [[nodiscard]] double segment_resistance(double usage) const;
};

/// Per-die technology: VDD level and the PDN layer stack (listed from the
/// layer closest to the devices upward).
struct DieTechnology {
  std::string name;
  double vdd = 1.5;                    ///< volts
  std::vector<MetalLayer> pdn_layers;  ///< e.g. DRAM: {M2, M3}
  double via_resistance = 0.05;        ///< ohm, inter-layer via array per mesh node

  [[nodiscard]] const MetalLayer& layer(std::size_t i) const { return pdn_layers.at(i); }
  [[nodiscard]] std::size_t layer_count() const { return pdn_layers.size(); }
};

/// Electrical models for everything that crosses die boundaries.
struct InterconnectTech {
  double tsv_resistance = 0.15;            ///< ohm per via-middle PG TSV (incl. landing pad)
  double dedicated_tsv_resistance = 0.10;  ///< ohm per via-last dedicated TSV
  double c4_resistance = 0.005;            ///< ohm per package BGA ball
  double logic_c4_resistance = 0.075;      ///< ohm per logic-die C4 power bump
  /// A TSV that does not land on a C4 bump detours through the narrow local
  /// power straps of the receiving die -- far more resistive per length than
  /// the global grid. Extra series resistance per TSV = distance * this.
  double misalign_detour_ohm_per_mm = 8.0;
  /// Off-chip stacks detour through wide package substrate traces instead.
  double package_detour_ohm_per_mm = 0.8;
  double microbump_resistance = 0.020;     ///< ohm per micro-bump at a die interface
  double f2f_via_resistance = 0.020;       ///< ohm per F2F via field at one mesh node
  double wirebond_resistance = 0.25;      ///< ohm per backside bond wire
  double package_sheet_resistance = 0.0022; ///< ohm/sq of the package power plane
  double rdl_sheet_resistance = 0.025;     ///< ohm/sq of the redistribution layer
  double rdl_vdd_usage = 0.50;             ///< VDD fraction of the RDL
  double rdl_via_resistance = 0.050;       ///< ohm, backside pad connection per node
};

/// Electromigration model: cross-section geometry for every ElementKind the
/// stack builder stamps, current-density limits, and Black's-equation
/// parameters. Units: lengths in um, areas in um^2, current densities in
/// MA/cm^2 (1 MA/cm^2 == 10 mA/um^2, so J[MA/cm^2] = 100 * I[A] / A[um^2]).
struct EmTech {
  // -- Cross-section geometry -------------------------------------------
  double tsv_diameter_um = 5.0;        ///< PG TSV drill diameter
  double c4_diameter_um = 90.0;        ///< C4 / BGA bump effective diameter
  double via_area_um2 = 8.0;           ///< same-die inter-layer via array, per node
  double f2f_via_area_um2 = 40.0;      ///< F2F via field, per node
  double rdl_via_area_um2 = 50.0;      ///< RDL backside-pad connection, per node
  double rdl_thickness_um = 3.0;       ///< redistribution-layer conductor
  double package_thickness_um = 30.0;  ///< package power-plane conductor

  // -- Current-density limits (MA/cm^2) ---------------------------------
  double wire_limit_ma_cm2 = 2.0;  ///< in-plane segments (mesh, RDL, package)
  double tsv_limit_ma_cm2 = 0.5;   ///< PG TSVs (crowding-sensitive, tighter)
  double via_limit_ma_cm2 = 5.0;   ///< via arrays, F2F fields, C4s, RDL pads

  // -- Black's equation: MTTF = A * J^-n * exp(Ea / (kB * T)) -----------
  double black_a_hours = 1e-8;  ///< prefactor, hours * (MA/cm^2)^n
  double black_n = 2.0;         ///< current-density exponent
  double activation_energy_ev = 0.9;
  double temperature_c = 85.0;  ///< default junction temperature

  /// Circular cross-section of a drilled/plated connection.
  [[nodiscard]] double tsv_area_um2() const;
  [[nodiscard]] double c4_area_um2() const;
};

/// Everything the PDN builder needs in one bundle.
struct Technology {
  DieTechnology dram;
  DieTechnology logic;
  InterconnectTech interconnect;
  EmTech em;
};

}  // namespace pdn3d::tech
