#include "tech/technology.hpp"

#include <stdexcept>

namespace pdn3d::tech {

std::string to_string(RouteDirection d) {
  switch (d) {
    case RouteDirection::kHorizontal: return "horizontal";
    case RouteDirection::kVertical: return "vertical";
    case RouteDirection::kOmni: return "omni";
  }
  return "?";
}

namespace {
constexpr double kPi = 3.14159265358979323846;
}

double EmTech::tsv_area_um2() const { return kPi * 0.25 * tsv_diameter_um * tsv_diameter_um; }

double EmTech::c4_area_um2() const { return kPi * 0.25 * c4_diameter_um * c4_diameter_um; }

double MetalLayer::segment_resistance(double usage) const {
  if (usage <= 0.0 || usage > 1.0) {
    throw std::invalid_argument("MetalLayer::segment_resistance: usage must be in (0, 1]");
  }
  return sheet_resistance / usage;
}

}  // namespace pdn3d::tech
