#include "tech/technology.hpp"

#include <stdexcept>

namespace pdn3d::tech {

std::string to_string(RouteDirection d) {
  switch (d) {
    case RouteDirection::kHorizontal: return "horizontal";
    case RouteDirection::kVertical: return "vertical";
    case RouteDirection::kOmni: return "omni";
  }
  return "?";
}

double MetalLayer::segment_resistance(double usage) const {
  if (usage <= 0.0 || usage > 1.0) {
    throw std::invalid_argument("MetalLayer::segment_resistance: usage must be in (0, 1]");
  }
  return sheet_resistance / usage;
}

}  // namespace pdn3d::tech
