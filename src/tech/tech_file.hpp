#pragma once

/// @file tech_file.hpp
/// @brief Technology-file reader/writer.
///
/// The paper's platform reads "the resistivity of each metal layer as well
/// as its routing direction ... from the technology file". This implements a
/// small line-based format:
///
///   # comment
///   [dram]
///   vdd = 1.5
///   via_resistance = 0.05
///   layer M2 sheet=0.285 dir=horizontal usage=0.10
///   layer M3 sheet=0.138 dir=vertical   usage=0.20
///
///   [logic]
///   ...
///
///   [interconnect]
///   tsv_resistance = 0.15
///   ...
///
/// Unknown keys are rejected (typos should fail loudly in a CAD flow).

#include <istream>
#include <ostream>
#include <string>

#include "tech/technology.hpp"

namespace pdn3d::tech {

/// Parse a technology file. Starts from the library defaults, so a file may
/// override only what it cares about. Throws std::runtime_error with a
/// line-numbered message on malformed input.
Technology read_technology(std::istream& is);

/// Convenience: parse from a string.
Technology read_technology_string(const std::string& text);

/// Serialize to the same format (round-trips through read_technology).
void write_technology(std::ostream& os, const Technology& tech);

}  // namespace pdn3d::tech
