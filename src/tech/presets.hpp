#pragma once

/// @file presets.hpp
/// @brief Technology presets for the paper's benchmarks.
///
/// Numeric values are synthetic but physically plausible for a 20nm-class
/// DRAM process (thin Cu/Al local metal, thicker top metal) and a 28nm logic
/// process; they are calibrated so the paper's baseline anchors land close
/// (see DESIGN.md section 2).

#include "tech/technology.hpp"

namespace pdn3d::tech {

/// 20nm-class DRAM die: M1 signal (not part of the PDN mesh), M2 mixed
/// signal/power (horizontal), M3 power (vertical).
DieTechnology dram_20nm(double vdd = 1.5);

/// 28nm logic die (OpenSPARC T2 host or HMC logic base): two global PDN
/// layers standing in for the upper metal stack.
DieTechnology logic_28nm(double vdd = 1.5);

/// Default inter-die / packaging electrical models.
InterconnectTech default_interconnect();

/// Bundle for a DDR3-class stack (1.5 V).
Technology ddr3_technology();

/// Bundle for a 1.2 V mobile/HPC stack (Wide I/O, HMC).
Technology low_voltage_technology();

}  // namespace pdn3d::tech
