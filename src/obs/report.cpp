#include "obs/report.hpp"

#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>

#include "exec/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

// Provenance baked in at configure time (src/obs/CMakeLists.txt); "unknown"
// when building outside git or through a foreign build system.
#ifndef PDN3D_GIT_REVISION
#define PDN3D_GIT_REVISION "unknown"
#endif
#ifndef PDN3D_BUILD_TYPE
#define PDN3D_BUILD_TYPE "unknown"
#endif
#ifndef PDN3D_VERSION_STRING
#define PDN3D_VERSION_STRING "unknown"
#endif

namespace pdn3d::obs {

namespace {

std::string utc_timestamp() {
  const std::time_t now = std::chrono::system_clock::to_time_t(std::chrono::system_clock::now());
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02dZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec);
  return buf;
}

json::Value provenance_block(const RunReportOptions& options) {
  json::Value prov = json::Value::object();
  prov.set("git_revision", PDN3D_GIT_REVISION);
  prov.set("build_type", PDN3D_BUILD_TYPE);
#if defined(__VERSION__)
  prov.set("compiler", __VERSION__);
#else
  prov.set("compiler", "unknown");
#endif
  prov.set("timestamp_utc", utc_timestamp());
  json::Value argv = json::Value::array();
  for (const auto& arg : options.argv) argv.push_back(arg);
  prov.set("argv", std::move(argv));
  return prov;
}

json::Value metrics_block(const MetricsSnapshot& snap) {
  json::Value counters = json::Value::object();
  for (const auto& [name, value] : snap.counters) counters.set(name, value);

  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : snap.gauges) gauges.set(name, value);

  json::Value histograms = json::Value::object();
  for (const auto& [name, h] : snap.histograms) {
    json::Value hist = json::Value::object();
    json::Value bounds = json::Value::array();
    for (const double b : h.upper_bounds) bounds.push_back(b);
    json::Value counts = json::Value::array();
    for (const std::uint64_t c : h.bucket_counts) counts.push_back(c);
    hist.set("upper_bounds", std::move(bounds));
    hist.set("bucket_counts", std::move(counts));
    hist.set("count", h.count);
    hist.set("sum", h.sum);
    histograms.set(name, std::move(hist));
  }

  // Schema v5: windowed quantile snapshots (obs::QuantileWindow).
  json::Value windows = json::Value::object();
  for (const auto& [name, w] : snap.windows) {
    json::Value win = json::Value::object();
    win.set("count", w.count);
    win.set("window_count", static_cast<std::uint64_t>(w.window_count));
    win.set("min", w.min);
    win.set("max", w.max);
    win.set("sum", w.sum);
    win.set("p50", w.p50);
    win.set("p90", w.p90);
    win.set("p95", w.p95);
    win.set("p99", w.p99);
    windows.set(name, std::move(win));
  }

  json::Value metrics = json::Value::object();
  metrics.set("counters", std::move(counters));
  metrics.set("gauges", std::move(gauges));
  metrics.set("histograms", std::move(histograms));
  metrics.set("windows", std::move(windows));
  return metrics;
}

json::Value spans_block() {
  // Aggregated per-path statistics; sorted by path, so the slash-separated
  // hierarchy reads as a tree (children follow their parent).
  json::Value spans = json::Value::array();
  for (const auto& [path, s] : TraceStore::instance().stats()) {
    json::Value row = json::Value::object();
    row.set("path", path);
    row.set("count", s.count);
    row.set("total_s", s.total_s);
    row.set("self_s", s.self_s);
    row.set("min_s", s.min_s);
    row.set("max_s", s.max_s);
    spans.push_back(std::move(row));
  }
  return spans;
}

/// The solver block mirrors the registry's `solver.*` metrics in a compact
/// shape so report consumers do not need to know metric names.
json::Value solver_block(const MetricsSnapshot& snap) {
  json::Value solver = json::Value::object();
  const auto counter_or_zero = [&](const std::string& name) -> std::uint64_t {
    const auto it = snap.counters.find(name);
    return it != snap.counters.end() ? it->second : 0;
  };
  solver.set("solves", counter_or_zero("solver.solves"));
  solver.set("failures", counter_or_zero("solver.failures"));
  solver.set("escalations", counter_or_zero("ladder.escalations"));
  json::Value attempts = json::Value::object();
  json::Value failures = json::Value::object();
  for (const auto& [name, value] : snap.counters) {
    constexpr std::string_view kAttempts = "solver.rung_attempts.";
    constexpr std::string_view kFailures = "solver.rung_failures.";
    if (name.rfind(kAttempts, 0) == 0) attempts.set(name.substr(kAttempts.size()), value);
    if (name.rfind(kFailures, 0) == 0) failures.set(name.substr(kFailures.size()), value);
  }
  solver.set("rung_attempts", std::move(attempts));
  solver.set("rung_failures", std::move(failures));

  // Schema v3: cached sparse-direct factorization statistics. Zeros when the
  // run never touched the sparse-direct rung.
  const auto gauge_or_zero = [&](const std::string& name) -> double {
    const auto it = snap.gauges.find(name);
    return it != snap.gauges.end() ? it->second : 0.0;
  };
  json::Value factor = json::Value::object();
  factor.set("builds", counter_or_zero("solver.factor_builds"));
  factor.set("build_failures", counter_or_zero("solver.factor_build_failures"));
  factor.set("cache_hits", counter_or_zero("solver.factor_cache_hits"));
  factor.set("fill_ratio", gauge_or_zero("solver.factor_fill_ratio"));
  factor.set("nnz", gauge_or_zero("solver.factor_nnz"));
  solver.set("factor", std::move(factor));

  // Schema v7: hierarchical-tier reuse statistics. Zeros when the run never
  // selected the macromodel rung.
  json::Value macromodel = json::Value::object();
  macromodel.set("builds", counter_or_zero("solver.macromodel.builds"));
  macromodel.set("reuses", counter_or_zero("solver.macromodel.reuses"));
  macromodel.set("woodbury_updates", counter_or_zero("solver.macromodel.woodbury_updates"));
  macromodel.set("fallbacks", counter_or_zero("solver.macromodel.fallbacks"));
  solver.set("macromodel", std::move(macromodel));

  // Schema v8: electromigration pass statistics. Zeros when the run never
  // executed an EM check.
  json::Value em = json::Value::object();
  em.set("checks", counter_or_zero("solver.em.checks"));
  em.set("violations", counter_or_zero("solver.em.violations"));
  em.set("worst_utilization", gauge_or_zero("solver.em.worst_utilization"));
  em.set("min_mttf_hours", gauge_or_zero("solver.em.min_mttf_hours"));
  solver.set("em", std::move(em));
  return solver;
}

}  // namespace

json::Value build_run_report(const RunReportOptions& options) {
  const MetricsSnapshot snap = MetricsRegistry::instance().snapshot();

  json::Value report = json::Value::object();
  report.set("schema", kReportSchemaVersion);
  report.set("tool", "pdn3d");
  report.set("version", PDN3D_VERSION_STRING);
  report.set("command", options.command);
  report.set("benchmark", options.benchmark);
  // Effective worker-thread count (--threads / PDN3D_THREADS / hardware):
  // reports from the same command are only comparable span-by-span when this
  // matches, so it is provenance, not just a metric.
  report.set("threads", static_cast<std::uint64_t>(exec::default_thread_count()));
  // Schema v6: the canonical request fingerprint, when the command ran
  // through the evaluation facade (api::EvaluateRequest::fingerprint()).
  if (!options.fingerprint.empty()) report.set("fingerprint", options.fingerprint);
  report.set("provenance", provenance_block(options));
  report.set("metrics", metrics_block(snap));
  report.set("spans", spans_block());
  report.set("solver", solver_block(snap));
  if (options.session.is_object()) report.set("session", options.session);

  TraceStore& store = TraceStore::instance();
  report.set("trace_dropped_events", store.dropped_events());
  report.set("trace_unbalanced_spans", store.unbalanced_spans());
  if (options.include_trace_events) {
    report.set("trace_events", *store.chrome_trace().find("traceEvents"));
  }
  return report;
}

core::Status write_run_report(const std::filesystem::path& path,
                              const RunReportOptions& options) {
  const json::Value report = build_run_report(options);
  std::ofstream os(path);
  if (!os) {
    return core::Status::input_error("cannot open report file '" + path.string() +
                                     "' for writing");
  }
  os << report.dump(2) << '\n';
  if (!os) {
    return core::Status::input_error("failed writing report file '" + path.string() + "'");
  }
  return core::Status::ok();
}

}  // namespace pdn3d::obs
