#pragma once

/// @file json.hpp
/// @brief Minimal JSON document model, serializer, and parser.
///
/// Just enough JSON for the observability layer: run reports and Chrome
/// trace_event files are emitted through Value, and the tests parse them back
/// to verify the schema round-trips. Objects preserve insertion order so
/// reports are byte-stable for a given run (diffable); lookup is linear,
/// which is fine at report sizes.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pdn3d::obs::json {

class Value;

using Member = std::pair<std::string, Value>;

/// One JSON value: null, bool, number, string, array, or object.
class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  Value(double d) : kind_(Kind::kNumber), number_(d) {}
  Value(int i) : kind_(Kind::kNumber), number_(i) {}
  Value(std::int64_t i) : kind_(Kind::kNumber), number_(static_cast<double>(i)) {}
  Value(std::uint64_t u) : kind_(Kind::kNumber), number_(static_cast<double>(u)) {}
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  Value(std::string_view s) : kind_(Kind::kString), string_(s) {}
  Value(const char* s) : kind_(Kind::kString), string_(s) {}

  [[nodiscard]] static Value array();
  [[nodiscard]] static Value object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_number() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }
  [[nodiscard]] const std::vector<Value>& items() const { return items_; }
  [[nodiscard]] const std::vector<Member>& members() const { return members_; }

  /// Array append. @throws std::logic_error when not an array.
  void push_back(Value v);

  /// Object insert-or-overwrite. @throws std::logic_error when not an object.
  void set(std::string_view key, Value v);

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Serialize. @p indent 0 = compact single line; > 0 = pretty-printed.
  [[nodiscard]] std::string dump(int indent = 0) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

/// JSON-escape @p text (no surrounding quotes).
[[nodiscard]] std::string escape(std::string_view text);

/// Parse a complete JSON document. @throws std::runtime_error with the
/// offending byte offset on malformed input or trailing garbage.
[[nodiscard]] Value parse(std::string_view text);

}  // namespace pdn3d::obs::json
