#pragma once

/// @file prometheus.hpp
/// @brief Prometheus text-exposition (version 0.0.4) renderer for a
/// MetricsSnapshot.
///
/// This is what the service's `metrics` op returns, so any Prometheus-
/// compatible scraper (or a human with `curl | grep`) can watch a live
/// `pdn3d serve` without the run-report round trip. Mapping:
///
///   Counter          -> `# TYPE <name> counter` + one sample
///   Gauge            -> `# TYPE <name> gauge` + one sample
///   Histogram        -> `# TYPE <name> histogram` + cumulative
///                       `<name>_bucket{le="..."}` series ending in
///                       `le="+Inf"`, plus `<name>_sum` / `<name>_count`
///   QuantileWindow   -> `# TYPE <name> summary` + `{quantile="0.5|0.9|
///                       0.95|0.99"}` samples plus `_sum` / `_count`
///                       (windowed, see docs/OBSERVABILITY.md)
///
/// Registry names use dots and dashes (`solver.rung_attempts.ic-pcg`);
/// exposition names must match [a-zA-Z_:][a-zA-Z0-9_:]*, so both are
/// rewritten to underscores and the original name is kept in a `# HELP`
/// line. Output is sorted by metric name (snapshot maps are sorted), so
/// two scrapes of identical state are byte-identical.

#include <string>

#include "obs/metrics.hpp"

namespace pdn3d::obs {

/// Rewrite a registry metric name to a legal exposition name.
[[nodiscard]] std::string prometheus_name(const std::string& name);

/// Render the whole snapshot as exposition text (trailing newline included).
[[nodiscard]] std::string render_prometheus(const MetricsSnapshot& snap);

}  // namespace pdn3d::obs
