#include "obs/event_log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <mutex>

#include "util/string_util.hpp"

namespace pdn3d::obs {

namespace {

std::mutex g_sink_mutex;

std::string_view level_tag(util::LogLevel level) {
  switch (level) {
    case util::LogLevel::kDebug: return "DEBUG";
    case util::LogLevel::kInfo: return "INFO ";
    case util::LogLevel::kWarn: return "WARN ";
    case util::LogLevel::kError: return "ERROR";
    case util::LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}

std::string_view level_name(util::LogLevel level) {
  switch (level) {
    case util::LogLevel::kDebug: return "debug";
    case util::LogLevel::kInfo: return "info";
    case util::LogLevel::kWarn: return "warn";
    case util::LogLevel::kError: return "error";
    case util::LogLevel::kOff: return "off";
  }
  return "unknown";
}

LogFormat initial_format() {
  if (const char* env = std::getenv("PDN3D_LOG_FORMAT")) {
    LogFormat parsed = LogFormat::kText;
    if (parse_log_format(env, &parsed)) return parsed;
    std::cerr << "[pdn3d WARN ] ignoring unrecognized PDN3D_LOG_FORMAT='" << env << "'\n";
  }
  return LogFormat::kText;
}

std::atomic<LogFormat>& format_storage() {
  static std::atomic<LogFormat> format{initial_format()};
  return format;
}

// A string value renders bare in text mode when it is unambiguous on a
// key=value line: non-empty, no whitespace, '=', or quotes.
bool shell_safe(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '=' || c == '"' || c == '\'') {
      return false;
    }
  }
  return true;
}

}  // namespace

bool parse_log_format(std::string_view text, LogFormat* out) {
  const std::string t = util::to_lower(util::trim(text));
  if (t == "text") *out = LogFormat::kText;
  else if (t == "json" || t == "ndjson") *out = LogFormat::kNdjson;
  else return false;
  return true;
}

LogFormat log_format() { return format_storage().load(std::memory_order_relaxed); }

void set_log_format(LogFormat format) {
  format_storage().store(format, std::memory_order_relaxed);
}

std::string event_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const auto secs = std::chrono::time_point_cast<std::chrono::seconds>(now);
  const auto millis =
      std::chrono::duration_cast<std::chrono::milliseconds>(now - secs).count();
  const std::time_t t = std::chrono::system_clock::to_time_t(secs);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", tm.tm_year + 1900,
                tm.tm_mon + 1, tm.tm_mday, tm.tm_hour, tm.tm_min, tm.tm_sec,
                static_cast<int>(millis));
  return buf;
}

std::string render_event_text(util::LogLevel level, std::string_view event,
                              const std::vector<EventField>& fields) {
  std::string out = "[pdn3d ";
  out += level_tag(level);
  out += "] ";
  out += event;
  for (const auto& [key, value] : fields) {
    out += ' ';
    out += key;
    out += '=';
    if (value.is_string() && shell_safe(value.as_string())) {
      out += value.as_string();
    } else {
      out += value.dump();
    }
  }
  return out;
}

std::string render_event_ndjson(util::LogLevel level, std::string_view event,
                                const std::vector<EventField>& fields,
                                std::string_view timestamp) {
  json::Value obj = json::Value::object();
  obj.set("ts", timestamp);
  obj.set("level", level_name(level));
  obj.set("event", event);
  // Reserved keys win over a same-named field (set() overwrites, so skip).
  for (const auto& [key, value] : fields) {
    if (key == "ts" || key == "level" || key == "event") continue;
    obj.set(key, value);
  }
  return obj.dump();
}

void log_event(util::LogLevel level, std::string_view event,
               const std::vector<EventField>& fields) {
  if (level < util::log_level()) return;
  std::string line;
  if (log_format() == LogFormat::kNdjson) {
    line = render_event_ndjson(level, event, fields, event_timestamp());
  } else {
    line = render_event_text(level, event, fields);
  }
  std::lock_guard lock(g_sink_mutex);
  std::cerr << line << '\n';
}

void log_event(util::LogLevel level, std::string_view event,
               std::initializer_list<EventField> fields) {
  log_event(level, event, std::vector<EventField>(fields));
}

}  // namespace pdn3d::obs
