#pragma once

/// @file report.hpp
/// @brief Machine-readable run reports: one JSON file bundling the metrics
/// snapshot, the span tree, solver telemetry, and build/config provenance.
///
/// Every `pdn3d <cmd> ... --report out.json` invocation ends by writing one
/// of these; scripts/check_report_schema.py validates the schema (versioned
/// via kReportSchemaVersion) and docs/OBSERVABILITY.md documents every key.
/// Reports are
/// the diff baseline for performance PRs: two runs of the same command can be
/// compared span-by-span and counter-by-counter.

#include <filesystem>
#include <string>
#include <vector>

#include "core/status.hpp"
#include "obs/json.hpp"

namespace pdn3d::obs {

/// Current report schema version; bump on breaking key changes.
/// v2: added the top-level "threads" key (effective worker-thread count).
/// v3: added the "factor" sub-object to the "solver" block (cached
///     sparse-direct factorization statistics).
/// v4: added the optional top-level "session" block (batch evaluation
///     service aggregates plus per-request records; `pdn3d serve` only).
/// v5: added "windows" to the "metrics" block (windowed quantile snapshots);
///     session requests gained "request_id"; the session block gained
///     "uptime_seconds" and peak queue/in-flight gauges.
/// v6: added the optional top-level "fingerprint" key (the canonical request
///     fingerprint of the evaluated request, facade commands only); the
///     session block gained the "cache" sub-object (result-cache stats) and
///     session requests gained "fingerprint" and "cache" keys.
/// v7: added the "macromodel" sub-object to the "solver" block (hierarchical
///     tier reuse statistics: builds, reuses, woodbury_updates, fallbacks).
/// v8: added the "em" sub-object to the "solver" block (electromigration
///     pass statistics: checks, violations, worst_utilization,
///     min_mttf_hours).
inline constexpr int kReportSchemaVersion = 8;

struct RunReportOptions {
  std::string command;            ///< CLI command ("analyze", "profile", ...)
  std::string benchmark;          ///< benchmark name, empty when N/A
  std::vector<std::string> argv;  ///< full command line for reproducibility
  /// Include the raw Chrome trace_event array (can be large); the aggregated
  /// span table is always included.
  bool include_trace_events = true;
  /// Schema v4: the service's session block (BatchService::session_block()).
  /// Emitted only when it is a JSON object; one-shot commands leave it null.
  json::Value session;
  /// Schema v6: RequestFingerprint::hex() of the evaluated request. Emitted
  /// as the top-level "fingerprint" key when non-empty (facade commands
  /// only; `serve` records fingerprints per request in the session block).
  std::string fingerprint;
};

/// Assemble the report document from the current process-wide metrics
/// registry and trace store.
[[nodiscard]] json::Value build_run_report(const RunReportOptions& options);

/// build_run_report + write to @p path. Returns ok or an input error with the
/// failing path in the message. Never throws for I/O reasons.
core::Status write_run_report(const std::filesystem::path& path, const RunReportOptions& options);

}  // namespace pdn3d::obs
