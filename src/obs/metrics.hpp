#pragma once

/// @file metrics.hpp
/// @brief Process-wide metrics registry: named counters, gauges, and
/// fixed-bucket histograms.
///
/// Designed to stay on in hot loops: every update is a relaxed atomic
/// operation on pre-registered storage, and the registry lookup is paid once
/// per call site via a function-local static reference:
///
///   static auto& iters = obs::counter("cg.iterations");
///   iters.add(result.iterations);
///
/// Naming convention (docs/OBSERVABILITY.md): `subsystem.noun_verb`, with an
/// optional trailing label segment for per-variant counters
/// (`solver.rung_attempts.ic-pcg`). Snapshots are sorted by name, so two
/// snapshots of the same state serialize identically (diffable run reports).
///
/// All mutators are thread-safe; Monte Carlo and future threaded sweeps can
/// bump the same counter without tearing (the bug the old mutable
/// SolveTelemetry struct had).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pdn3d::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= upper_bounds[i];
/// one implicit overflow bucket counts the rest. Bounds are fixed at
/// registration, so observe() is two relaxed atomic adds plus a small scan.
class Histogram {
 public:
  /// @p upper_bounds must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; size() == upper_bounds().size() + 1 (overflow last).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Windowed latency recorder: a ring of the most recent observations with
/// exact quantile snapshots over that window. Complements Histogram (which is
/// cumulative and bucket-quantized): the window answers "what are p50/p95/p99
/// *right now*", which is what a live `stats` scrape wants, while the
/// histogram keeps the full-run distribution for reports.
///
/// observe() is a short mutex-guarded ring write -- fine at request
/// granularity (one observation per served request), not meant for per-row
/// inner loops. snapshot() copies and sorts the window (O(n log n), n =
/// window capacity), so scrape cost is bounded and independent of run length.
///
/// Quantile semantics (docs/OBSERVABILITY.md): nearest-rank with linear
/// interpolation over the sorted window -- quantile(q) interpolates between
/// the floor/ceil ranks of q*(n-1). An empty window reports all-zero
/// quantiles with window_count == 0; a single sample reports that sample for
/// every quantile.
class QuantileWindow {
 public:
  /// @p capacity ring slots (observations kept); clamped to >= 1.
  explicit QuantileWindow(std::size_t capacity);

  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;        ///< observations ever (not just windowed)
    std::size_t window_count = 0;   ///< observations currently in the window
    double min = 0.0, max = 0.0;    ///< over the window
    double sum = 0.0;               ///< over the window
    double p50 = 0.0, p90 = 0.0, p95 = 0.0, p99 = 0.0;
  };
  [[nodiscard]] Snapshot snapshot() const;

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  void reset();

 private:
  mutable std::mutex mutex_;
  std::vector<double> ring_;
  std::size_t next_ = 0;   ///< ring write cursor
  std::size_t size_ = 0;   ///< valid entries (== capacity once wrapped)
  std::uint64_t total_ = 0;
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> bucket_counts;  ///< overflow bucket last
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
  std::map<std::string, QuantileWindow::Snapshot> windows;
};

/// Owns every metric for the process. References returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create by name. A name permanently binds to its first-seen
  /// metric kind; re-registering a histogram name keeps the original bounds
  /// (same rule for a window's capacity).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);
  QuantileWindow& window(std::string_view name, std::size_t capacity);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every metric's value; registered names (and references) survive.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::unique_ptr<QuantileWindow>, std::less<>> windows_;
};

/// Shorthands for the process-wide registry.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);
/// Default window capacity is 1024 recent observations.
QuantileWindow& window(std::string_view name, std::size_t capacity = 1024);

/// Bucket helpers. exponential_buckets(1, 2, 10) = {1, 2, 4, ..., 512}.
[[nodiscard]] std::vector<double> linear_buckets(double start, double step, std::size_t count);
[[nodiscard]] std::vector<double> exponential_buckets(double start, double factor,
                                                      std::size_t count);
/// Default wall-time buckets in seconds: 1 us .. ~100 s, quarter-decade steps.
[[nodiscard]] std::vector<double> time_buckets();

}  // namespace pdn3d::obs
