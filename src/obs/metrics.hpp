#pragma once

/// @file metrics.hpp
/// @brief Process-wide metrics registry: named counters, gauges, and
/// fixed-bucket histograms.
///
/// Designed to stay on in hot loops: every update is a relaxed atomic
/// operation on pre-registered storage, and the registry lookup is paid once
/// per call site via a function-local static reference:
///
///   static auto& iters = obs::counter("cg.iterations");
///   iters.add(result.iterations);
///
/// Naming convention (docs/OBSERVABILITY.md): `subsystem.noun_verb`, with an
/// optional trailing label segment for per-variant counters
/// (`solver.rung_attempts.ic-pcg`). Snapshots are sorted by name, so two
/// snapshots of the same state serialize identically (diffable run reports).
///
/// All mutators are thread-safe; Monte Carlo and future threaded sweeps can
/// bump the same counter without tearing (the bug the old mutable
/// SolveTelemetry struct had).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace pdn3d::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= upper_bounds[i];
/// one implicit overflow bucket counts the rest. Bounds are fixed at
/// registration, so observe() is two relaxed atomic adds plus a small scan.
class Histogram {
 public:
  /// @p upper_bounds must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& upper_bounds() const { return bounds_; }
  /// Per-bucket counts; size() == upper_bounds().size() + 1 (overflow last).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> upper_bounds;
    std::vector<std::uint64_t> bucket_counts;  ///< overflow bucket last
    std::uint64_t count = 0;
    double sum = 0.0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
};

/// Owns every metric for the process. References returned by
/// counter()/gauge()/histogram() are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// Find-or-create by name. A name permanently binds to its first-seen
  /// metric kind; re-registering a histogram name keeps the original bounds.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zero every metric's value; registered names (and references) survive.
  void reset();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Shorthands for the process-wide registry.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);

/// Bucket helpers. exponential_buckets(1, 2, 10) = {1, 2, 4, ..., 512}.
[[nodiscard]] std::vector<double> linear_buckets(double start, double step, std::size_t count);
[[nodiscard]] std::vector<double> exponential_buckets(double start, double factor,
                                                      std::size_t count);
/// Default wall-time buckets in seconds: 1 us .. ~100 s, quarter-decade steps.
[[nodiscard]] std::vector<double> time_buckets();

}  // namespace pdn3d::obs
