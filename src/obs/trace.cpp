#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <sstream>

#include "util/string_util.hpp"

namespace pdn3d::obs {

namespace {

using Clock = std::chrono::steady_clock;

/// Every span timestamp is relative to this process-wide epoch, so traces
/// from different threads line up on one timeline.
Clock::time_point trace_epoch() {
  static const Clock::time_point epoch = Clock::now();
  return epoch;
}

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - trace_epoch())
          .count());
}

int this_thread_index() {
  static std::atomic<int> next{0};
  thread_local const int index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

/// One open span on this thread's stack.
struct Frame {
  std::string path;
  std::string name;
  std::uint64_t start_us = 0;
  double child_seconds = 0.0;  ///< accumulated inclusive time of direct children
  std::vector<std::pair<std::string, std::string>> attributes;
};

thread_local std::vector<Frame> t_stack;

/// Per-thread capture state for begin_capture()/end_capture().
struct CaptureState {
  bool active = false;
  std::size_t capacity = 0;
  std::uint64_t dropped = 0;
  std::vector<SpanRecord> spans;
};

thread_local CaptureState t_capture;

}  // namespace

void begin_capture(std::size_t capacity) {
  t_capture.active = true;
  t_capture.capacity = capacity == 0 ? 1 : capacity;
  t_capture.dropped = 0;
  t_capture.spans.clear();
}

CaptureResult end_capture() {
  CaptureResult out;
  out.spans = std::move(t_capture.spans);
  out.dropped = t_capture.dropped;
  t_capture = CaptureState{};
  return out;
}

TraceStore& TraceStore::instance() {
  static TraceStore store;
  return store;
}

void TraceStore::set_enabled(bool enabled) {
  std::lock_guard lock(mutex_);
  enabled_ = enabled;
}

bool TraceStore::enabled() const {
  std::lock_guard lock(mutex_);
  return enabled_;
}

void TraceStore::set_event_capacity(std::size_t capacity) {
  std::lock_guard lock(mutex_);
  capacity_ = capacity;
}

std::vector<SpanRecord> TraceStore::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::map<std::string, SpanStats> TraceStore::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::uint64_t TraceStore::dropped_events() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::uint64_t TraceStore::unbalanced_spans() const {
  std::lock_guard lock(mutex_);
  return unbalanced_;
}

void TraceStore::clear() {
  std::lock_guard lock(mutex_);
  events_.clear();
  stats_.clear();
  dropped_ = 0;
  unbalanced_ = 0;
}

void TraceStore::record(SpanRecord record, double child_seconds) {
  const double total_s = static_cast<double>(record.duration_us) * 1e-6;
  const double self_s = std::max(0.0, total_s - child_seconds);
  std::lock_guard lock(mutex_);
  SpanStats& s = stats_[record.path];
  if (s.count == 0) {
    s.min_s = total_s;
    s.max_s = total_s;
  } else {
    s.min_s = std::min(s.min_s, total_s);
    s.max_s = std::max(s.max_s, total_s);
  }
  ++s.count;
  s.total_s += total_s;
  s.self_s += self_s;
  if (events_.size() < capacity_) {
    events_.push_back(std::move(record));
  } else {
    ++dropped_;
  }
}

void TraceStore::note_unbalanced() {
  std::lock_guard lock(mutex_);
  ++unbalanced_;
}

json::Value TraceStore::chrome_trace() const {
  const std::vector<SpanRecord> snapshot = events();
  json::Value events = json::Value::array();
  for (const auto& e : snapshot) {
    json::Value ev = json::Value::object();
    ev.set("name", e.path);
    ev.set("cat", e.name);
    ev.set("ph", "X");  // complete event: ts + dur in one record
    ev.set("ts", static_cast<std::uint64_t>(e.start_us));
    ev.set("dur", static_cast<std::uint64_t>(e.duration_us));
    ev.set("pid", 1);
    ev.set("tid", e.thread_index);
    if (!e.attributes.empty()) {
      json::Value args = json::Value::object();
      for (const auto& [key, value] : e.attributes) args.set(key, value);
      ev.set("args", std::move(args));
    }
    events.push_back(std::move(ev));
  }
  json::Value root = json::Value::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  return root;
}

std::string TraceStore::profile_table(std::size_t top_n) const {
  const auto stats_by_path = stats();
  std::vector<std::pair<std::string, SpanStats>> rows(stats_by_path.begin(),
                                                      stats_by_path.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self_s > b.second.self_s;
  });
  if (rows.size() > top_n) rows.resize(top_n);

  std::ostringstream os;
  os << "  " << util::pad("span", 44) << util::pad("count", 10) << util::pad("total (ms)", 12)
     << util::pad("self (ms)", 12) << util::pad("avg (ms)", 12) << "\n";
  for (const auto& [path, s] : rows) {
    const double avg_ms = s.count > 0 ? s.total_s * 1e3 / static_cast<double>(s.count) : 0.0;
    os << "  " << util::pad(path, 44) << util::pad(std::to_string(s.count), 10)
       << util::pad(util::fmt_fixed(s.total_s * 1e3, 2), 12)
       << util::pad(util::fmt_fixed(s.self_s * 1e3, 2), 12)
       << util::pad(util::fmt_fixed(avg_ms, 3), 12) << "\n";
  }
  if (rows.empty()) os << "  (no spans recorded)\n";
  return os.str();
}

TraceSpan::TraceSpan(std::string_view name) {
  TraceStore& store = TraceStore::instance();
  if (!store.enabled()) return;
  Frame frame;
  if (t_stack.empty()) {
    frame.path = std::string(name);
  } else {
    frame.path.reserve(t_stack.back().path.size() + 1 + name.size());
    frame.path += t_stack.back().path;
    frame.path += '/';
    frame.path += name;
  }
  frame.name = std::string(name);
  frame.start_us = now_us();
  frame_index_ = t_stack.size();
  t_stack.push_back(std::move(frame));
  active_ = true;
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  TraceStore& store = TraceStore::instance();
  // Destroyed out of order: descendants are still open. Close them as
  // unbalanced so the stack stays consistent and the defect is visible.
  while (t_stack.size() > frame_index_ + 1) {
    t_stack.pop_back();
    store.note_unbalanced();
  }
  if (t_stack.size() <= frame_index_) {
    // Our own frame was already discarded by an earlier out-of-order pop.
    store.note_unbalanced();
    return;
  }
  Frame frame = std::move(t_stack.back());
  t_stack.pop_back();

  const std::uint64_t end_us = now_us();
  SpanRecord record;
  record.path = std::move(frame.path);
  record.name = std::move(frame.name);
  record.start_us = frame.start_us;
  record.duration_us = end_us >= frame.start_us ? end_us - frame.start_us : 0;
  record.thread_index = this_thread_index();
  record.depth = static_cast<int>(frame_index_);
  record.attributes = std::move(frame.attributes);

  const double total_s = static_cast<double>(record.duration_us) * 1e-6;
  if (!t_stack.empty()) t_stack.back().child_seconds += total_s;
  if (t_capture.active) {
    if (t_capture.spans.size() < t_capture.capacity) {
      t_capture.spans.push_back(record);
    } else {
      ++t_capture.dropped;
    }
  }
  store.record(std::move(record), frame.child_seconds);
}

void TraceSpan::attribute(std::string_view key, std::string_view value) {
  if (!active_ || t_stack.size() <= frame_index_) return;
  t_stack[frame_index_].attributes.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::attribute(std::string_view key, double value) {
  std::ostringstream os;
  os << value;
  attribute(key, std::string_view(os.str()));
}

void TraceSpan::attribute(std::string_view key, std::uint64_t value) {
  attribute(key, std::string_view(std::to_string(value)));
}

}  // namespace pdn3d::obs
