#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace pdn3d::obs::json {

Value Value::array() {
  Value v;
  v.kind_ = Kind::kArray;
  return v;
}

Value Value::object() {
  Value v;
  v.kind_ = Kind::kObject;
  return v;
}

void Value::push_back(Value v) {
  if (kind_ != Kind::kArray) throw std::logic_error("json::Value::push_back on non-array");
  items_.push_back(std::move(v));
}

void Value::set(std::string_view key, Value v) {
  if (kind_ != Kind::kObject) throw std::logic_error("json::Value::set on non-object");
  for (auto& m : members_) {
    if (m.first == key) {
      m.second = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(v));
}

const Value* Value::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

std::string escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void format_number(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    // JSON has no NaN/Inf; null is the conventional stand-in.
    os << "null";
    return;
  }
  if (d == std::floor(d) && std::abs(d) < 9.007199254740992e15) {
    os << static_cast<long long>(d);
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  os << buf;
}

void dump_value(std::ostream& os, const Value& v, int indent, int depth) {
  const auto newline = [&](int d) {
    if (indent > 0) {
      os << '\n';
      for (int i = 0; i < indent * d; ++i) os << ' ';
    }
  };
  switch (v.kind()) {
    case Value::Kind::kNull: os << "null"; break;
    case Value::Kind::kBool: os << (v.as_bool() ? "true" : "false"); break;
    case Value::Kind::kNumber: format_number(os, v.as_number()); break;
    case Value::Kind::kString: os << '"' << escape(v.as_string()) << '"'; break;
    case Value::Kind::kArray: {
      os << '[';
      bool first = true;
      for (const auto& item : v.items()) {
        if (!first) os << ',';
        first = false;
        newline(depth + 1);
        dump_value(os, item, indent, depth + 1);
      }
      if (!v.items().empty()) newline(depth);
      os << ']';
      break;
    }
    case Value::Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [key, member] : v.members()) {
        if (!first) os << ',';
        first = false;
        newline(depth + 1);
        os << '"' << escape(key) << "\":";
        if (indent > 0) os << ' ';
        dump_value(os, member, indent, depth + 1);
      }
      if (!v.members().empty()) newline(depth);
      os << '}';
      break;
    }
  }
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " + std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit in \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs are passed
            // through as-is; trace/report content is ASCII in practice).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape sequence");
        }
      } else {
        out += c;
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') fail("malformed number '" + token + "'");
    return Value(d);
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos_;
      Value obj = Value::object();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return obj;
      }
      while (true) {
        skip_ws();
        std::string key = parse_string();
        skip_ws();
        expect(':');
        obj.set(key, parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos_;
      Value arr = Value::array();
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return arr;
      }
      while (true) {
        arr.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos_;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return Value(parse_string());
    if (consume_literal("true")) return Value(true);
    if (consume_literal("false")) return Value(false);
    if (consume_literal("null")) return Value();
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) return parse_number();
    fail(std::string("unexpected character '") + c + "'");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Value::dump(int indent) const {
  std::ostringstream os;
  dump_value(os, *this, indent, 0);
  return os.str();
}

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace pdn3d::obs::json
