#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace pdn3d::obs {

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty()) throw std::invalid_argument("Histogram: need at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
  }
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

QuantileWindow::QuantileWindow(std::size_t capacity) : ring_(capacity == 0 ? 1 : capacity) {}

void QuantileWindow::observe(double v) {
  std::lock_guard lock(mutex_);
  ring_[next_] = v;
  next_ = (next_ + 1) % ring_.size();
  if (size_ < ring_.size()) ++size_;
  ++total_;
}

namespace {

// Linear interpolation between the floor/ceil ranks of q*(n-1) over a sorted
// window. Callers guarantee non-empty input.
double quantile_sorted(const std::vector<double>& sorted, double q) {
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

QuantileWindow::Snapshot QuantileWindow::snapshot() const {
  std::vector<double> window;
  Snapshot snap;
  {
    std::lock_guard lock(mutex_);
    snap.count = total_;
    window.assign(ring_.begin(), ring_.begin() + static_cast<std::ptrdiff_t>(size_));
  }
  snap.window_count = window.size();
  if (window.empty()) return snap;
  std::sort(window.begin(), window.end());
  snap.min = window.front();
  snap.max = window.back();
  for (double v : window) snap.sum += v;
  snap.p50 = quantile_sorted(window, 0.50);
  snap.p90 = quantile_sorted(window, 0.90);
  snap.p95 = quantile_sorted(window, 0.95);
  snap.p99 = quantile_sorted(window, 0.99);
  return snap;
}

void QuantileWindow::reset() {
  std::lock_guard lock(mutex_);
  next_ = 0;
  size_ = 0;
  total_ = 0;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> upper_bounds) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return *it->second;
}

QuantileWindow& MetricsRegistry::window(std::string_view name, std::size_t capacity) {
  std::lock_guard lock(mutex_);
  auto it = windows_.find(name);
  if (it == windows_.end()) {
    it = windows_.emplace(std::string(name), std::make_unique<QuantileWindow>(capacity)).first;
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramData data;
    data.upper_bounds = h->upper_bounds();
    data.bucket_counts = h->bucket_counts();
    data.count = h->count();
    data.sum = h->sum();
    snap.histograms.emplace(name, std::move(data));
  }
  for (const auto& [name, w] : windows_) snap.windows.emplace(name, w->snapshot());
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, w] : windows_) w->reset();
}

Counter& counter(std::string_view name) { return MetricsRegistry::instance().counter(name); }
Gauge& gauge(std::string_view name) { return MetricsRegistry::instance().gauge(name); }
Histogram& histogram(std::string_view name, std::vector<double> upper_bounds) {
  return MetricsRegistry::instance().histogram(name, std::move(upper_bounds));
}
QuantileWindow& window(std::string_view name, std::size_t capacity) {
  return MetricsRegistry::instance().window(name, capacity);
}

std::vector<double> linear_buckets(double start, double step, std::size_t count) {
  if (count == 0 || step <= 0.0) throw std::invalid_argument("linear_buckets: bad arguments");
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(start + step * static_cast<double>(i));
  return out;
}

std::vector<double> exponential_buckets(double start, double factor, std::size_t count) {
  if (count == 0 || start <= 0.0 || factor <= 1.0) {
    throw std::invalid_argument("exponential_buckets: bad arguments");
  }
  std::vector<double> out;
  out.reserve(count);
  double v = start;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(v);
    v *= factor;
  }
  return out;
}

std::vector<double> time_buckets() {
  // 1 us .. ~178 s in quarter-decade (x ~1.78) steps: 33 buckets.
  return exponential_buckets(1e-6, 1.778279410038923, 33);
}

}  // namespace pdn3d::obs
