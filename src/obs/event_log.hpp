#pragma once

/// @file event_log.hpp
/// @brief Structured, leveled event log behind util::log.
///
/// Every diagnostic the library emits is an *event*: a level, a short
/// machine-greppable event name, and zero or more key/value fields. One
/// sink renders each event to stderr in one of two formats:
///
///   text (default)   [pdn3d INFO ] serve.listening socket=/tmp/p.sock
///   ndjson           {"ts":"2026-08-08T12:34:56.789Z","level":"info",
///                     "event":"serve.listening","socket":"/tmp/p.sock"}
///
/// The format comes from PDN3D_LOG_FORMAT ("text" | "json"/"ndjson",
/// case-insensitive) or set_log_format(); the threshold is util::log_level()
/// (PDN3D_LOG_LEVEL), so existing level plumbing keeps working. Plain
/// util::log_* calls route through here as field-less events, and their text
/// rendering is byte-identical to the old `[pdn3d LEVEL] message` lines --
/// scripts that grep stderr keep working until they opt into NDJSON.
///
/// Field values are json::Value, so numbers stay numbers in NDJSON output.
/// In text mode strings render bare when shell-safe and quoted otherwise;
/// other kinds render as compact JSON. Events with a `request_id` field are
/// how service logs tie back to wire responses (docs/OBSERVABILITY.md).

#include <initializer_list>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "util/log.hpp"

namespace pdn3d::obs {

enum class LogFormat { kText, kNdjson };

/// Process-wide output format. Initial value comes from PDN3D_LOG_FORMAT
/// when set and recognized, else kText.
[[nodiscard]] LogFormat log_format();
void set_log_format(LogFormat format);

/// Parse "text" | "json" | "ndjson" (case-insensitive). Returns false on
/// unknown input, leaving @p out untouched.
bool parse_log_format(std::string_view text, LogFormat* out);

using EventField = std::pair<std::string_view, json::Value>;

/// Emit one event at @p level. Dropped below util::log_level(). Fields keep
/// their given order in both renderings.
void log_event(util::LogLevel level, std::string_view event,
               std::initializer_list<EventField> fields);
void log_event(util::LogLevel level, std::string_view event,
               const std::vector<EventField>& fields);
inline void log_event(util::LogLevel level, std::string_view event) {
  log_event(level, event, std::initializer_list<EventField>{});
}

/// Render without emitting (tests; sinks that write elsewhere).
[[nodiscard]] std::string render_event_text(util::LogLevel level, std::string_view event,
                                            const std::vector<EventField>& fields);
[[nodiscard]] std::string render_event_ndjson(util::LogLevel level, std::string_view event,
                                              const std::vector<EventField>& fields,
                                              std::string_view timestamp);

/// Current wall-clock time as "YYYY-MM-DDTHH:MM:SS.mmmZ" (UTC).
[[nodiscard]] std::string event_timestamp();

}  // namespace pdn3d::obs
