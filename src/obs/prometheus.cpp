#include "obs/prometheus.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>

namespace pdn3d::obs {

namespace {

// Shortest round-trip-ish float rendering: integers print bare ("12"),
// everything else via %.17g. Prometheus parsers accept either.
std::string fmt_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_help_type(std::string& out, const std::string& ename, const std::string& raw,
                      const char* type) {
  out += "# HELP " + ename + " pdn3d metric " + raw + "\n";
  out += "# TYPE " + ename + " " + type + "\n";
}

}  // namespace

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 7);
  out = "pdn3d_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string ename = prometheus_name(name);
    append_help_type(out, ename, name, "counter");
    out += ename + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string ename = prometheus_name(name);
    append_help_type(out, ename, name, "gauge");
    out += ename + " " + fmt_double(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string ename = prometheus_name(name);
    append_help_type(out, ename, name, "histogram");
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cumulative += i < h.bucket_counts.size() ? h.bucket_counts[i] : 0;
      out += ename + "_bucket{le=\"" + fmt_double(h.upper_bounds[i]) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += ename + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += ename + "_sum " + fmt_double(h.sum) + "\n";
    out += ename + "_count " + std::to_string(h.count) + "\n";
  }
  for (const auto& [name, w] : snap.windows) {
    const std::string ename = prometheus_name(name);
    append_help_type(out, ename, name, "summary");
    out += ename + "{quantile=\"0.5\"} " + fmt_double(w.p50) + "\n";
    out += ename + "{quantile=\"0.9\"} " + fmt_double(w.p90) + "\n";
    out += ename + "{quantile=\"0.95\"} " + fmt_double(w.p95) + "\n";
    out += ename + "{quantile=\"0.99\"} " + fmt_double(w.p99) + "\n";
    out += ename + "_sum " + fmt_double(w.sum) + "\n";
    out += ename + "_count " + std::to_string(w.count) + "\n";
  }
  return out;
}

}  // namespace pdn3d::obs
