#pragma once

/// @file trace.hpp
/// @brief Hierarchical wall-time trace spans.
///
/// A TraceSpan is a scope guard: construction stamps the start time and
/// pushes the span onto a thread-local stack; destruction pops it, folds the
/// duration into per-path aggregate statistics (always, bounded by the number
/// of distinct paths), and appends a raw event to a capped global buffer for
/// Chrome `chrome://tracing` / Perfetto export. A span's *path* is its
/// parent's path + "/" + its own name, so nesting shows up as
/// "cooptimize/solve_point/solver/solve" without any global registration.
///
/// Usage in instrumented code:
///
///   PDN3D_TRACE_SPAN("lut/build");                 // anonymous scope guard
///   PDN3D_TRACE_SPAN_NAMED(span, "solver/solve");  // named, for attributes
///   span.attribute("rung", "ic-pcg");
///
/// Overhead per span is two steady_clock reads plus one short mutex-guarded
/// aggregate update -- negligible against the millisecond-scale solves it
/// wraps, and removable entirely with -DPDN3D_DISABLE_TRACING=ON (the macros
/// compile to nothing; see the bench acceptance gate in ISSUE/docs).

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace pdn3d::obs {

/// One completed span, as exported to Chrome trace JSON.
struct SpanRecord {
  std::string path;   ///< slash-joined ancestry, e.g. "lut/build/solver/solve"
  std::string name;   ///< leaf name as written at the call site
  std::uint64_t start_us = 0;     ///< microseconds since the process trace epoch
  std::uint64_t duration_us = 0;  ///< wall time
  int thread_index = 0;           ///< dense per-process thread id
  int depth = 0;                  ///< nesting depth (0 = root)
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Aggregate statistics for one span path.
struct SpanStats {
  std::uint64_t count = 0;
  double total_s = 0.0;  ///< inclusive wall time
  double self_s = 0.0;   ///< total minus direct children
  double min_s = 0.0;
  double max_s = 0.0;
};

/// Global sink for completed spans. Aggregates are exact; raw events are kept
/// up to a capacity (default 65536) after which they are counted as dropped
/// -- the profile table stays correct either way.
class TraceStore {
 public:
  static TraceStore& instance();

  /// Runtime switch (default on). Disabled spans cost two branch checks.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const;

  /// Cap on buffered raw events (existing overflow events stay dropped).
  void set_event_capacity(std::size_t capacity);

  [[nodiscard]] std::vector<SpanRecord> events() const;
  [[nodiscard]] std::map<std::string, SpanStats> stats() const;
  [[nodiscard]] std::uint64_t dropped_events() const;
  /// Spans destroyed while a descendant was still open (API misuse).
  [[nodiscard]] std::uint64_t unbalanced_spans() const;

  /// Drop all recorded events and statistics (not the enabled flag).
  void clear();

  /// Chrome trace_event JSON: {"traceEvents": [{"ph":"X", ...}, ...]}.
  /// Load via chrome://tracing or https://ui.perfetto.dev.
  [[nodiscard]] json::Value chrome_trace() const;

  /// Human-readable hot-span table, heaviest self-time first.
  [[nodiscard]] std::string profile_table(std::size_t top_n = 15) const;

  // Internal: called by TraceSpan on scope exit.
  void record(SpanRecord record, double child_seconds);
  void note_unbalanced();

 private:
  TraceStore() = default;

  mutable std::mutex mutex_;
  bool enabled_ = true;
  std::size_t capacity_ = 65536;
  std::vector<SpanRecord> events_;
  std::map<std::string, SpanStats> stats_;
  std::uint64_t dropped_ = 0;
  std::uint64_t unbalanced_ = 0;
};

/// RAII span. Must be destroyed in reverse construction order within a
/// thread (automatic with scope guards); violations are detected and counted
/// by TraceStore::unbalanced_spans().
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attach a key/value shown in the Chrome trace "args" block.
  void attribute(std::string_view key, std::string_view value);
  void attribute(std::string_view key, double value);
  void attribute(std::string_view key, std::uint64_t value);

 private:
  bool active_ = false;
  std::size_t frame_index_ = 0;  ///< position in the thread-local open stack
};

/// Thread-local span capture for per-request export (the service's
/// `--slow-ms` path): between begin_capture() and end_capture(), every span
/// *completed on this thread* is also copied into a thread-local buffer, up
/// to @p capacity (extras are counted as dropped, deepest-first since
/// children complete before parents). Capture is independent of the global
/// event buffer and its cap, so a long-running server whose global buffer
/// filled hours ago still exports complete per-request trees. Valid because
/// served requests evaluate inline on one worker thread (the nested-region
/// rule, docs/PARALLELISM.md). Nested captures are not supported: a second
/// begin_capture() resets the buffer.
void begin_capture(std::size_t capacity = 256);

struct CaptureResult {
  std::vector<SpanRecord> spans;  ///< completion order; sort by start_us for a tree
  std::uint64_t dropped = 0;
};
/// Stop capturing on this thread and return everything captured.
[[nodiscard]] CaptureResult end_capture();

/// No-op stand-in when tracing is compiled out.
struct NullSpan {
  explicit NullSpan(std::string_view = {}) {}
  void attribute(std::string_view, std::string_view) {}
  void attribute(std::string_view, double) {}
  void attribute(std::string_view, std::uint64_t) {}
};

}  // namespace pdn3d::obs

#define PDN3D_OBS_CONCAT_IMPL(a, b) a##b
#define PDN3D_OBS_CONCAT(a, b) PDN3D_OBS_CONCAT_IMPL(a, b)

#ifndef PDN3D_DISABLE_TRACING
#define PDN3D_TRACE_SPAN_NAMED(var, name) ::pdn3d::obs::TraceSpan var{name}
#else
#define PDN3D_TRACE_SPAN_NAMED(var, name) \
  [[maybe_unused]] ::pdn3d::obs::NullSpan var {}
#endif

/// Anonymous scope-guard span covering the rest of the enclosing scope.
#define PDN3D_TRACE_SPAN(name) \
  PDN3D_TRACE_SPAN_NAMED(PDN3D_OBS_CONCAT(pdn3d_trace_span_, __LINE__), name)
