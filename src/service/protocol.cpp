#include "service/protocol.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/json.hpp"

namespace pdn3d::service {

namespace obsjson = pdn3d::obs::json;

namespace {

core::Status bad(std::string message) {
  return core::Status::invalid_argument(std::move(message));
}

/// Fetch an optional member, enforcing its JSON type when present.
const obsjson::Value* member(const obsjson::Value& object, std::string_view key,
                             obsjson::Value::Kind kind, core::Status* status,
                             const char* type_name) {
  const obsjson::Value* v = object.find(key);
  if (v == nullptr) return nullptr;
  if (v->kind() != kind) {
    *status = bad("field '" + std::string(key) + "' must be a " + type_name);
    return nullptr;
  }
  return v;
}

core::Status decode_design(const obsjson::Value& design, api::DesignOptions* out) {
  for (const auto& [key, value] : design.members()) {
    if (key == "wb" || key == "dedicated" || key == "no_align" || key == "no-align") {
      if (!value.is_bool()) return bad("design." + key + " must be a boolean");
      if (value.as_bool()) {
        const core::Status st = out->set_flag(key == "no_align" ? "no-align" : key);
        if (!st.is_ok()) return st;
      }
      continue;
    }
    core::Status st;
    if (value.is_number()) {
      st = out->set(key, value.as_number());
    } else if (value.is_string()) {
      st = out->set(key, std::string_view(value.as_string()));
    } else {
      return bad("design." + key + " must be a number or a string");
    }
    if (!st.is_ok()) return st;
  }
  return core::Status::ok();
}

void escape_into(std::string_view text, std::string* out) {
  out->append(obsjson::escape(text));
}

}  // namespace

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNone: return "none";
    case ErrorKind::kBadRequest: return "bad_request";
    case ErrorKind::kQueueFull: return "queue_full";
    case ErrorKind::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorKind::kCancelled: return "cancelled";
    case ErrorKind::kShutdown: return "shutdown";
    case ErrorKind::kNotFound: return "not_found";
    case ErrorKind::kEvaluationFailed: return "evaluation_failed";
  }
  return "?";
}

core::Status parse_request(std::string_view line, Request* out) {
  obsjson::Value doc;
  try {
    doc = obsjson::parse(line);
  } catch (const std::exception& e) {
    return bad(std::string("malformed JSON: ") + e.what());
  }
  if (!doc.is_object()) return bad("request must be a JSON object");

  core::Status status;
  if (const auto* id = member(doc, "id", obsjson::Value::Kind::kNumber, &status, "number")) {
    out->id = static_cast<std::int64_t>(id->as_number());
  }
  if (!status.is_ok()) return status;

  const auto* op = member(doc, "op", obsjson::Value::Kind::kString, &status, "string");
  if (!status.is_ok()) return status;
  if (op == nullptr) return bad("missing required field 'op'");

  if (op->as_string() == "cancel") {
    out->kind = Request::Kind::kCancel;
    const auto* target =
        member(doc, "target", obsjson::Value::Kind::kNumber, &status, "number");
    if (!status.is_ok()) return status;
    if (target == nullptr) return bad("cancel requires a numeric 'target' id");
    out->cancel_target = static_cast<std::int64_t>(target->as_number());
    return core::Status::ok();
  }
  if (op->as_string() == "ping") {
    out->kind = Request::Kind::kPing;
    return core::Status::ok();
  }

  out->kind = Request::Kind::kEvaluate;
  {
    const core::Status st = api::parse_operation(op->as_string(), &out->eval.op);
    if (!st.is_ok()) return st;
  }

  const auto* bench =
      member(doc, "benchmark", obsjson::Value::Kind::kString, &status, "string");
  if (!status.is_ok()) return status;
  if (bench == nullptr) return bad("missing required field 'benchmark'");
  {
    const core::Status st = api::parse_benchmark(bench->as_string(), &out->eval.benchmark);
    if (!st.is_ok()) return st;
  }

  if (const auto* design =
          member(doc, "design", obsjson::Value::Kind::kObject, &status, "object")) {
    const core::Status st = decode_design(*design, &out->eval.design);
    if (!st.is_ok()) return st;
  }
  if (!status.is_ok()) return status;

  if (const auto* state = member(doc, "state", obsjson::Value::Kind::kString, &status,
                                 "string")) {
    out->eval.state = state->as_string();
  }
  if (const auto* activity =
          member(doc, "activity", obsjson::Value::Kind::kNumber, &status, "number")) {
    out->eval.activity = activity->as_number();
  }
  if (const auto* samples =
          member(doc, "samples", obsjson::Value::Kind::kNumber, &status, "number")) {
    const double v = samples->as_number();
    if (v != std::floor(v)) return bad("samples must be an integer");
    out->eval.samples = static_cast<long long>(v);
  }
  if (const auto* alpha =
          member(doc, "alpha", obsjson::Value::Kind::kNumber, &status, "number")) {
    out->eval.alpha = alpha->as_number();
  }
  if (const auto* deadline =
          member(doc, "deadline_ms", obsjson::Value::Kind::kNumber, &status, "number")) {
    const core::Status st = api::check_range("deadline_ms", deadline->as_number(), 0.0, 1e9);
    if (!st.is_ok()) return st;
    out->deadline_ms = deadline->as_number();
  }
  if (const auto* sleep =
          member(doc, "test_sleep_ms", obsjson::Value::Kind::kNumber, &status, "number")) {
    out->test_sleep_ms = sleep->as_number();
  }
  if (!status.is_ok()) return status;

  return out->eval.validate();
}

std::string ok_response(const Request& request, const api::EvaluateResult& result,
                        double queue_ms, double run_ms) {
  // Hand-rolled compact JSON: responses are hot-path (one per request) and
  // the shape is fixed, so we skip the Value tree. Numbers use the document
  // model's formatting via Value::dump for doubles.
  std::string line = "{\"id\":" + std::to_string(request.id);
  line += ",\"ok\":";
  line += result.ok() ? "true" : "false";
  line += ",\"op\":\"";
  line += api::to_string(request.eval.op);
  line += "\",\"benchmark\":\"";
  line += api::benchmark_token(request.eval.benchmark);
  line += "\",\"exit_code\":" + std::to_string(result.exit_code);
  if (!result.ok()) {
    line += ",\"error\":{\"kind\":\"";
    line += to_string(ErrorKind::kEvaluationFailed);
    line += "\",\"message\":\"";
    escape_into(result.status.message(), &line);
    line += "\"}";
  }
  line += ",\"headline_mv\":" + obsjson::Value(result.headline_mv).dump();
  line += ",\"queue_ms\":" + obsjson::Value(queue_ms).dump();
  line += ",\"run_ms\":" + obsjson::Value(run_ms).dump();
  line += ",\"output\":\"";
  escape_into(result.output, &line);
  line += "\"}";
  return line;
}

std::string error_response(std::int64_t id, ErrorKind kind, std::string_view message) {
  std::string line = "{\"id\":" + std::to_string(id);
  line += ",\"ok\":false,\"error\":{\"kind\":\"";
  line += to_string(kind);
  line += "\",\"message\":\"";
  escape_into(message, &line);
  line += "\"}}";
  return line;
}

std::string ping_response(std::int64_t id) {
  return "{\"id\":" + std::to_string(id) + ",\"ok\":true,\"op\":\"ping\"}";
}

}  // namespace pdn3d::service
