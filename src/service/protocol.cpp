#include "service/protocol.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/json.hpp"

namespace pdn3d::service {

namespace obsjson = pdn3d::obs::json;

namespace {

core::Status bad(std::string message) {
  return core::Status::invalid_argument(std::move(message));
}

/// Guarded double->int64 conversion: JSON numbers arrive as doubles, and a
/// huge or non-finite value (1e999 parses to +inf) must be rejected before
/// the cast -- casting an out-of-range double to an integer is undefined
/// behaviour.
bool to_int64(double v, std::int64_t* out) {
  if (!std::isfinite(v) || v != std::floor(v) || v < -9.2e18 || v > 9.2e18) return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

/// Strict UTF-8 scan (rejects overlong encodings, surrogates, > U+10FFFF).
/// Garbage bytes on the wire must become a typed bad_request, not reach the
/// evaluation layer or get echoed raw into a response.
bool valid_utf8(std::string_view text) {
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const auto b0 = static_cast<unsigned char>(text[i]);
    std::size_t len = 0;
    std::uint32_t cp = 0;
    if (b0 < 0x80) {
      ++i;
      continue;
    } else if ((b0 & 0xe0) == 0xc0) {
      len = 2;
      cp = b0 & 0x1fU;
    } else if ((b0 & 0xf0) == 0xe0) {
      len = 3;
      cp = b0 & 0x0fU;
    } else if ((b0 & 0xf8) == 0xf0) {
      len = 4;
      cp = b0 & 0x07U;
    } else {
      return false;
    }
    if (i + len > n) return false;
    for (std::size_t k = 1; k < len; ++k) {
      const auto bk = static_cast<unsigned char>(text[i + k]);
      if ((bk & 0xc0) != 0x80) return false;
      cp = (cp << 6) | (bk & 0x3fU);
    }
    if ((len == 2 && cp < 0x80) || (len == 3 && cp < 0x800) || (len == 4 && cp < 0x10000)) {
      return false;  // overlong encoding
    }
    if (cp > 0x10ffff || (cp >= 0xd800 && cp <= 0xdfff)) return false;
    i += len;
  }
  return true;
}

/// Fetch an optional member, enforcing its JSON type when present.
const obsjson::Value* member(const obsjson::Value& object, std::string_view key,
                             obsjson::Value::Kind kind, core::Status* status,
                             const char* type_name) {
  const obsjson::Value* v = object.find(key);
  if (v == nullptr) return nullptr;
  if (v->kind() != kind) {
    *status = bad("field '" + std::string(key) + "' must be a " + type_name);
    return nullptr;
  }
  return v;
}

core::Status decode_design(const obsjson::Value& design, api::DesignOptions* out) {
  // Every member routes through the one shared api::set_option table -- the
  // same keyspace, range checks, and error messages the CLI flag parser
  // uses, so the two surfaces cannot drift apart (docs/API.md).
  for (const auto& [key, value] : design.members()) {
    core::Status st;
    if (value.is_bool()) {
      st = api::set_option(out, key, value.as_bool());
    } else if (value.is_number()) {
      st = api::set_option(out, key, value.as_number());
    } else if (value.is_string()) {
      st = api::set_option(out, key, std::string_view(value.as_string()));
    } else {
      return bad("design." + key + " must be a number, string, or boolean");
    }
    if (!st.is_ok()) return st;
  }
  return core::Status::ok();
}

void escape_into(std::string_view text, std::string* out) {
  out->append(obsjson::escape(text));
}

/// Client-supplied request_ids are restricted to a shell/log-safe charset so
/// they can be embedded in log lines, trace attributes, and grep patterns
/// without quoting surprises.
bool valid_request_id(std::string_view id) {
  if (id.empty() || id.size() > kMaxRequestIdBytes) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') ||
                    c == '-' || c == '_' || c == '.' || c == ':' || c == '/';
    if (!ok) return false;
  }
  return true;
}

}  // namespace

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kNone: return "none";
    case ErrorKind::kBadRequest: return "bad_request";
    case ErrorKind::kQueueFull: return "queue_full";
    case ErrorKind::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorKind::kCancelled: return "cancelled";
    case ErrorKind::kShutdown: return "shutdown";
    case ErrorKind::kNotFound: return "not_found";
    case ErrorKind::kEvaluationFailed: return "evaluation_failed";
    case ErrorKind::kOverloaded: return "overloaded";
    case ErrorKind::kTimeout: return "timeout";
    case ErrorKind::kRequestTooLarge: return "request_too_large";
    case ErrorKind::kInternal: return "internal";
  }
  return "?";
}

core::Status parse_request(std::string_view line, Request* out) {
  if (line.size() > kMaxRequestBytes) {
    // Callers normally answer this with kRequestTooLarge before parsing; the
    // check here is defense in depth for direct parse_request users.
    return bad("request line exceeds " + std::to_string(kMaxRequestBytes) + " bytes");
  }
  if (line.find('\0') != std::string_view::npos) {
    return bad("request contains a NUL byte");
  }
  if (!valid_utf8(line)) return bad("request is not valid UTF-8");

  obsjson::Value doc;
  try {
    doc = obsjson::parse(line);
  } catch (const std::exception& e) {
    return bad(std::string("malformed JSON: ") + e.what());
  }
  if (!doc.is_object()) return bad("request must be a JSON object");

  core::Status status;
  if (const auto* id = member(doc, "id", obsjson::Value::Kind::kNumber, &status, "number")) {
    if (!to_int64(id->as_number(), &out->id)) return bad("id must be a finite integer");
  }
  if (!status.is_ok()) return status;

  if (const auto* rid =
          member(doc, "request_id", obsjson::Value::Kind::kString, &status, "string")) {
    if (!valid_request_id(rid->as_string())) {
      return bad("request_id must be 1.." + std::to_string(kMaxRequestIdBytes) +
                 " characters of [A-Za-z0-9._:/-]");
    }
    out->request_id = rid->as_string();
  }
  if (!status.is_ok()) return status;

  const auto* op = member(doc, "op", obsjson::Value::Kind::kString, &status, "string");
  if (!status.is_ok()) return status;
  if (op == nullptr) return bad("missing required field 'op'");

  if (op->as_string() == "cancel") {
    out->kind = Request::Kind::kCancel;
    const auto* target =
        member(doc, "target", obsjson::Value::Kind::kNumber, &status, "number");
    if (!status.is_ok()) return status;
    if (target == nullptr) return bad("cancel requires a numeric 'target' id");
    if (!to_int64(target->as_number(), &out->cancel_target)) {
      return bad("target must be a finite integer");
    }
    return core::Status::ok();
  }
  if (op->as_string() == "ping") {
    out->kind = Request::Kind::kPing;
    return core::Status::ok();
  }
  if (op->as_string() == "health") {
    out->kind = Request::Kind::kHealth;
    return core::Status::ok();
  }
  if (op->as_string() == "stats") {
    out->kind = Request::Kind::kStats;
    return core::Status::ok();
  }
  if (op->as_string() == "metrics") {
    out->kind = Request::Kind::kMetrics;
    return core::Status::ok();
  }

  out->kind = Request::Kind::kEvaluate;
  {
    const core::Status st = api::parse_operation(op->as_string(), &out->eval.op);
    if (!st.is_ok()) return st;
  }

  const auto* bench =
      member(doc, "benchmark", obsjson::Value::Kind::kString, &status, "string");
  if (!status.is_ok()) return status;
  if (bench == nullptr) return bad("missing required field 'benchmark'");
  {
    const core::Status st = api::parse_benchmark(bench->as_string(), &out->eval.benchmark);
    if (!st.is_ok()) return st;
  }

  if (const auto* design =
          member(doc, "design", obsjson::Value::Kind::kObject, &status, "object")) {
    const core::Status st = decode_design(*design, &out->eval.design);
    if (!st.is_ok()) return st;
  }
  if (!status.is_ok()) return status;

  if (const auto* state = member(doc, "state", obsjson::Value::Kind::kString, &status,
                                 "string")) {
    out->eval.state = state->as_string();
  }
  if (const auto* activity =
          member(doc, "activity", obsjson::Value::Kind::kNumber, &status, "number")) {
    out->eval.activity = activity->as_number();
  }
  if (const auto* samples =
          member(doc, "samples", obsjson::Value::Kind::kNumber, &status, "number")) {
    std::int64_t v = 0;
    if (!to_int64(samples->as_number(), &v)) return bad("samples must be a finite integer");
    out->eval.samples = v;
  }
  if (const auto* alpha =
          member(doc, "alpha", obsjson::Value::Kind::kNumber, &status, "number")) {
    out->eval.alpha = alpha->as_number();
  }
  if (const auto* deadline =
          member(doc, "deadline_ms", obsjson::Value::Kind::kNumber, &status, "number")) {
    const core::Status st = api::check_range("deadline_ms", deadline->as_number(), 0.0, 1e9);
    if (!st.is_ok()) return st;
    out->deadline_ms = deadline->as_number();
  }
  if (const auto* sleep =
          member(doc, "test_sleep_ms", obsjson::Value::Kind::kNumber, &status, "number")) {
    out->test_sleep_ms = sleep->as_number();
  }
  if (const auto* cache =
          member(doc, "cache", obsjson::Value::Kind::kString, &status, "string")) {
    const std::string_view mode = cache->as_string();
    if (mode == "use") {
      out->cache = Request::CacheMode::kUse;
    } else if (mode == "bypass") {
      out->cache = Request::CacheMode::kBypass;
    } else if (mode == "refresh") {
      out->cache = Request::CacheMode::kRefresh;
    } else {
      return bad("cache must be one of use | bypass | refresh");
    }
  }
  if (!status.is_ok()) return status;

  return out->eval.validate();
}

std::string ok_response(const Request& request, const api::EvaluateResult& result,
                        double queue_ms, double run_ms, std::string_view cache_token) {
  // Hand-rolled compact JSON: responses are hot-path (one per request) and
  // the shape is fixed, so we skip the Value tree. Numbers use the document
  // model's formatting via Value::dump for doubles.
  std::string line = "{\"id\":" + std::to_string(request.id);
  line += ",\"ok\":";
  line += result.ok() ? "true" : "false";
  line += ",\"op\":\"";
  line += api::to_string(request.eval.op);
  line += "\",\"benchmark\":\"";
  line += api::benchmark_token(request.eval.benchmark);
  line += "\",\"exit_code\":" + std::to_string(result.exit_code);
  if (!result.ok()) {
    line += ",\"error\":{\"kind\":\"";
    line += to_string(ErrorKind::kEvaluationFailed);
    line += "\",\"message\":\"";
    escape_into(result.status.message(), &line);
    line += "\"}";
  }
  line += ",\"headline_mv\":" + obsjson::Value(result.headline_mv).dump();
  line += ",\"queue_ms\":" + obsjson::Value(queue_ms).dump();
  line += ",\"run_ms\":" + obsjson::Value(run_ms).dump();
  if (!cache_token.empty()) {
    line += ",\"cache\":\"";
    line += cache_token;
    line += "\"";
  }
  line += ",\"output\":\"";
  escape_into(result.output, &line);
  line += "\"}";
  append_request_id(&line, request.request_id);
  return line;
}

std::string error_response(std::int64_t id, ErrorKind kind, std::string_view message,
                           std::string_view request_id) {
  std::string line = "{\"id\":" + std::to_string(id);
  line += ",\"ok\":false,\"error\":{\"kind\":\"";
  line += to_string(kind);
  line += "\",\"message\":\"";
  escape_into(message, &line);
  line += "\"}}";
  append_request_id(&line, request_id);
  return line;
}

std::string ping_response(std::int64_t id, std::string_view request_id) {
  std::string line = "{\"id\":" + std::to_string(id) + ",\"ok\":true,\"op\":\"ping\"}";
  append_request_id(&line, request_id);
  return line;
}

void append_request_id(std::string* line, std::string_view request_id) {
  if (request_id.empty()) return;
  // Responses are single-line JSON objects ending in '}'; splice the echo in
  // as the final key so substring-matching consumers (smoke greps, docs
  // examples) keep seeing the historical prefix.
  line->pop_back();
  line->append(",\"request_id\":\"");
  escape_into(request_id, line);
  line->append("\"}");
}

}  // namespace pdn3d::service
