#pragma once

/// @file protocol.hpp
/// @brief The batch evaluation service's wire protocol: newline-delimited
/// JSON, one request object per line in, one response object per line out.
///
/// Request shape (docs/SERVICE.md documents every field):
///
///   {"id": 7, "op": "evaluate", "benchmark": "wide-io",
///    "design": {"m2": 15, "m3": 30, "tc": 128, "tl": "d", "bd": "f2b",
///               "rdl": "none", "wb": false, "dedicated": false,
///               "no_align": false, "scale": 1.0},
///    "state": "0-0-0-2", "activity": 0.5,      // evaluate
///    "samples": 200,                            // montecarlo
///    "alpha": 0.3,                              // cooptimize
///    "cache": "use",                            // optional: use|bypass|refresh
///    "deadline_ms": 500}                        // optional, admission->start
///
/// Control requests: {"op": "cancel", "id": 9, "target": 7} removes a
/// still-queued request; {"op": "ping", "id": 0} answers immediately (a
/// liveness probe that bypasses the queue); {"op": "health", "id": 0}
/// answers immediately with queue depth, in-flight count, and drain state;
/// {"op": "stats", "id": 0} answers immediately with the full telemetry
/// snapshot (counters, gauges, quantile windows, uptime); {"op": "metrics",
/// "id": 0} answers with Prometheus exposition text in a "body" field
/// (docs/SERVICE.md).
///
/// Every submitted line produces exactly one response, matched by `id`.
/// Responses arrive in completion order, not submission order. Every
/// response also carries a `request_id` string -- echoed from the request's
/// optional "request_id" member when given, server-generated ("r-<N>")
/// otherwise -- for log/trace correlation (docs/OBSERVABILITY.md).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "api/api.hpp"
#include "core/status.hpp"

namespace pdn3d::service {

/// Why a request was answered with an error instead of a result.
enum class ErrorKind {
  kNone,
  kBadRequest,        ///< malformed JSON / unknown op / out-of-range option
  kQueueFull,         ///< backpressure: admission queue at capacity
  kDeadlineExceeded,  ///< deadline passed while queued
  kCancelled,         ///< removed from the queue by a cancel request
  kShutdown,          ///< submitted after drain began
  kNotFound,          ///< cancel target not queued (finished or unknown)
  kEvaluationFailed,  ///< request ran; the evaluation itself failed
  kOverloaded,        ///< shed by cost-based admission control (overload)
  kTimeout,           ///< evaluation cancelled by the per-request watchdog
  kRequestTooLarge,   ///< request line exceeded kMaxRequestBytes
  kInternal,          ///< unexpected exception escaped the evaluation
};

[[nodiscard]] const char* to_string(ErrorKind kind);

/// Upper bound on one NDJSON request line (bytes). Longer lines are answered
/// with a typed `request_too_large` error instead of being buffered without
/// bound or parsed.
inline constexpr std::size_t kMaxRequestBytes = 64 * 1024;

/// Upper bound on a client-supplied request_id (characters).
inline constexpr std::size_t kMaxRequestIdBytes = 64;

/// One decoded request line.
struct Request {
  enum class Kind { kEvaluate, kCancel, kPing, kHealth, kStats, kMetrics };

  /// Per-request result-cache policy (the optional "cache" field):
  /// "use" consults the cache, "bypass" neither reads nor writes it,
  /// "refresh" evaluates fresh and overwrites the cached entry.
  enum class CacheMode { kUse, kBypass, kRefresh };

  std::int64_t id = -1;  ///< echoed in the response; -1 when absent
  Kind kind = Kind::kEvaluate;
  api::EvaluateRequest eval;    ///< kEvaluate payload
  std::int64_t cancel_target = -1;  ///< kCancel payload
  double deadline_ms = 0.0;     ///< 0 = no deadline
  double test_sleep_ms = 0.0;   ///< fault-injection hold (test builds only)
  CacheMode cache = CacheMode::kUse;  ///< result-cache policy (kEvaluate)
  /// Correlation id: client-supplied "request_id" (1..kMaxRequestIdBytes
  /// chars of [A-Za-z0-9._:/-]); empty here means the server generates one.
  std::string request_id;
};

/// Decode one NDJSON line. On failure the returned status message is what
/// the bad_request response carries.
[[nodiscard]] core::Status parse_request(std::string_view line, Request* out);

/// Render the success response for an evaluated request (single line, no
/// trailing newline). The request's request_id is echoed as the final key.
/// @p cache_token, when non-empty, is echoed as `"cache":"hit|miss|bypass"`
/// -- how the result cache treated this request (docs/SERVICE.md). The
/// parity contract compares the `output` payload; `cache` is bookkeeping
/// like `queue_ms`/`run_ms`.
[[nodiscard]] std::string ok_response(const Request& request, const api::EvaluateResult& result,
                                      double queue_ms, double run_ms,
                                      std::string_view cache_token = {});

/// Render an error response (single line, no trailing newline). The
/// request_id key is appended when non-empty (the service always supplies
/// one; bare protocol users may omit it).
[[nodiscard]] std::string error_response(std::int64_t id, ErrorKind kind,
                                         std::string_view message,
                                         std::string_view request_id = {});

/// Render the ping response (request_id appended when non-empty).
[[nodiscard]] std::string ping_response(std::int64_t id, std::string_view request_id = {});

/// Append `,"request_id":"<escaped>"` before the closing brace of a
/// single-line JSON object response. No-op when @p request_id is empty.
void append_request_id(std::string* line, std::string_view request_id);

}  // namespace pdn3d::service
