#pragma once

/// @file protocol.hpp
/// @brief The batch evaluation service's wire protocol: newline-delimited
/// JSON, one request object per line in, one response object per line out.
///
/// Request shape (docs/SERVICE.md documents every field):
///
///   {"id": 7, "op": "evaluate", "benchmark": "wide-io",
///    "design": {"m2": 15, "m3": 30, "tc": 128, "tl": "d", "bd": "f2b",
///               "rdl": "none", "wb": false, "dedicated": false,
///               "no_align": false, "scale": 1.0},
///    "state": "0-0-0-2", "activity": 0.5,      // evaluate
///    "samples": 200,                            // montecarlo
///    "alpha": 0.3,                              // cooptimize
///    "deadline_ms": 500}                        // optional, admission->start
///
/// Control requests: {"op": "cancel", "id": 9, "target": 7} removes a
/// still-queued request; {"op": "ping", "id": 0} answers immediately (a
/// liveness probe that bypasses the queue); {"op": "health", "id": 0}
/// answers immediately with queue depth, in-flight count, and drain state
/// (docs/SERVICE.md).
///
/// Every submitted line produces exactly one response, matched by `id`.
/// Responses arrive in completion order, not submission order.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "api/api.hpp"
#include "core/status.hpp"

namespace pdn3d::service {

/// Why a request was answered with an error instead of a result.
enum class ErrorKind {
  kNone,
  kBadRequest,        ///< malformed JSON / unknown op / out-of-range option
  kQueueFull,         ///< backpressure: admission queue at capacity
  kDeadlineExceeded,  ///< deadline passed while queued
  kCancelled,         ///< removed from the queue by a cancel request
  kShutdown,          ///< submitted after drain began
  kNotFound,          ///< cancel target not queued (finished or unknown)
  kEvaluationFailed,  ///< request ran; the evaluation itself failed
  kOverloaded,        ///< shed by cost-based admission control (overload)
  kTimeout,           ///< evaluation cancelled by the per-request watchdog
  kRequestTooLarge,   ///< request line exceeded kMaxRequestBytes
  kInternal,          ///< unexpected exception escaped the evaluation
};

[[nodiscard]] const char* to_string(ErrorKind kind);

/// Upper bound on one NDJSON request line (bytes). Longer lines are answered
/// with a typed `request_too_large` error instead of being buffered without
/// bound or parsed.
inline constexpr std::size_t kMaxRequestBytes = 64 * 1024;

/// One decoded request line.
struct Request {
  enum class Kind { kEvaluate, kCancel, kPing, kHealth };

  std::int64_t id = -1;  ///< echoed in the response; -1 when absent
  Kind kind = Kind::kEvaluate;
  api::EvaluateRequest eval;    ///< kEvaluate payload
  std::int64_t cancel_target = -1;  ///< kCancel payload
  double deadline_ms = 0.0;     ///< 0 = no deadline
  double test_sleep_ms = 0.0;   ///< fault-injection hold (test builds only)
};

/// Decode one NDJSON line. On failure the returned status message is what
/// the bad_request response carries.
[[nodiscard]] core::Status parse_request(std::string_view line, Request* out);

/// Render the success response for an evaluated request (single line, no
/// trailing newline).
[[nodiscard]] std::string ok_response(const Request& request, const api::EvaluateResult& result,
                                      double queue_ms, double run_ms);

/// Render an error response (single line, no trailing newline).
[[nodiscard]] std::string error_response(std::int64_t id, ErrorKind kind,
                                         std::string_view message);

/// Render the ping response.
[[nodiscard]] std::string ping_response(std::int64_t id);

}  // namespace pdn3d::service
