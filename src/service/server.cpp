#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <unordered_map>

#include "exec/cancel.hpp"
#include "faults/faults.hpp"
#include "obs/event_log.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace pdn3d::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Keep this many per-request records for the session report; beyond it only
/// the aggregates grow (a soak would otherwise make reports unbounded).
constexpr std::size_t kMaxRequestRecords = 1024;

std::string cancel_ok_response(std::int64_t id, std::int64_t target,
                               std::string_view request_id) {
  std::string line = "{\"id\":" + std::to_string(id) + ",\"ok\":true,\"op\":\"cancel\",\"target\":" +
                     std::to_string(target) + "}";
  append_request_id(&line, request_id);
  return line;
}

/// Largest factor-sharing group one worker drains from the queue; bounds the
/// latency a coalesced member can add to the leader (one multi-RHS solve is
/// nearly flat in batch size, but response delivery waits for the batch).
constexpr std::size_t kMaxCoalesce = 16;

/// Whether a queued request may join a factor-sharing group: plain evaluate
/// only (sweep ops own their parallelism), no checkpoint side channel, and no
/// fault-injection sleep (tests use test_sleep_ms to pin workers; batching
/// those would change what the test holds busy).
bool coalescible(const Request& req) {
  return req.kind == Request::Kind::kEvaluate && req.eval.op == api::Operation::kEvaluate &&
         !req.eval.design.em_enabled() && req.eval.checkpoint_path.empty() &&
         req.test_sleep_ms <= 0.0;
}

/// Requests with equal keys share a factorization: same benchmark, same
/// canonical design overlay. States/activities may differ -- they are the
/// extra right-hand sides.
std::string factor_key(const Request& req) {
  return std::string(api::benchmark_token(req.eval.benchmark)) + "|" +
         req.eval.design.canonical_text();
}

/// How one request is treated against the result cache.
struct CachePlan {
  bool consult = false;    ///< look up before evaluating (mode "use")
  bool store = false;      ///< insert the fresh ok result ("use" miss or "refresh")
  const char* token = "";  ///< response echo: "hit" | "miss" | "bypass"
};

CachePlan plan_cache(const ServiceConfig& config, const Request& req) {
  CachePlan plan;
  const bool eligible = config.cache_entries > 0 && !config.cache_bypass &&
                        req.cache != Request::CacheMode::kBypass &&
                        req.eval.checkpoint_path.empty() && req.test_sleep_ms <= 0.0;
  if (!eligible) {
    plan.token = "bypass";
    return plan;
  }
  plan.store = true;
  plan.token = "miss";  // becomes "hit" only when a lookup succeeds
  plan.consult = req.cache == Request::CacheMode::kUse;  // refresh skips lookup
  return plan;
}

/// Relative weight of a request for cost-based admission control. Units are
/// arbitrary; what matters is the ratio (a co-optimization sweep is ~dozens
/// of solves, one analyze is one).
std::uint64_t estimate_cost(const Request& req) {
  if (req.kind != Request::Kind::kEvaluate) return 1;
  switch (req.eval.op) {
    case api::Operation::kEvaluate:
    case api::Operation::kValidate:
      return 1;
    case api::Operation::kEmCheck:
      return 2;  // one solve + the branch-current recovery pass
    case api::Operation::kLut:
      return 16;
    case api::Operation::kMonteCarlo:
      return std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(std::max<long long>(1, req.eval.samples)) / 16);
    case api::Operation::kCoOptimize:
      return 64;
  }
  return 1;
}

}  // namespace

struct BatchService::Pending {
  Request req;
  ResponseSink sink;
  Clock::time_point enqueued;
  Clock::time_point deadline;  ///< Clock::time_point::max() = none
  std::uint64_t cost = 1;      ///< released from outstanding_cost_ at every exit
};

/// One watched evaluation: the watchdog cancels token once cancel_at passes.
struct BatchService::InFlight {
  exec::CancelToken* token = nullptr;
  Clock::time_point cancel_at;
};

struct BatchService::RequestRecord {
  std::int64_t id = -1;
  std::string request_id;
  std::string op;
  std::string benchmark;
  bool ok = false;
  std::string error;  ///< ErrorKind token, empty when the evaluation ran ok
  double queue_ms = 0.0;
  double run_ms = 0.0;
  double headline_mv = 0.0;
  std::string fingerprint;  ///< RequestFingerprint::hex(); empty if never computed
  std::string cache;        ///< "hit" | "miss" | "bypass"; empty on error paths
};

BatchService::BatchService(const api::Session& session, ServiceConfig config)
    : session_(session), config_(config) {
  if (config_.workers == 0) config_.workers = exec::default_thread_count();
  cache_ = std::make_unique<ResultCache>(config_.cache_entries);
}

BatchService::~BatchService() { drain(); }

void BatchService::start() {
  if (started_) throw std::logic_error("BatchService::start called twice");
  started_ = true;
  queue_ = std::make_unique<exec::BoundedQueue<Pending>>(config_.queue_capacity);
  pool_ = std::make_unique<exec::ThreadPool>(config_.workers);
  started_at_ = Clock::now();
  obs::gauge("service.workers").set(static_cast<double>(config_.workers));
  obs::gauge("service.queue_capacity").set(static_cast<double>(config_.queue_capacity));
  obs::gauge("service.queue_depth").set(0.0);
  obs::gauge("service.inflight").set(0.0);
  obs::gauge("service.uptime_seconds").set(0.0);
  // The worker loops occupy one pool region for the service's whole life; the
  // orchestrator thread is region participant #0 (parallel_for's caller).
  const std::size_t n = config_.workers;
  orchestrator_ = std::thread([this, n] {
    PDN3D_TRACE_SPAN("serve/region");
    pool_->parallel_for(n, [this](std::size_t) { worker_loop(); });
  });
  if (config_.watchdog_ms > 0.0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

void BatchService::watchdog_loop() {
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_) {
    const Clock::time_point now = Clock::now();
    Clock::time_point next = Clock::time_point::max();
    for (auto& [ticket, watched] : inflight_) {
      if (watched.cancel_at <= now) {
        // Cooperative: the worker notices at its next poll point (CG
        // iteration / Cholesky column / solver rung). The entry stays until
        // finish() erases it; cancel() is idempotent so re-firing is fine.
        watched.token->cancel();
      } else {
        next = std::min(next, watched.cancel_at);
      }
    }
    if (next == Clock::time_point::max()) {
      watchdog_cv_.wait(lock);
    } else {
      watchdog_cv_.wait_until(lock, next);
    }
  }
}

double BatchService::uptime_seconds() const {
  if (started_at_ == Clock::time_point{}) return 0.0;
  return std::chrono::duration<double>(Clock::now() - started_at_).count();
}

void BatchService::publish_queue_depth() {
  static auto& g_depth = obs::gauge("service.queue_depth");
  const auto depth = static_cast<std::uint64_t>(queued());
  g_depth.set(static_cast<double>(depth));
  std::uint64_t peak = peak_queue_depth_.load(std::memory_order_relaxed);
  while (depth > peak &&
         !peak_queue_depth_.compare_exchange_weak(peak, depth, std::memory_order_relaxed)) {
  }
}

void BatchService::publish_in_flight(std::uint64_t value) {
  static auto& g_inflight = obs::gauge("service.inflight");
  g_inflight.set(static_cast<double>(value));
  std::uint64_t peak = peak_in_flight_.load(std::memory_order_relaxed);
  while (value > peak &&
         !peak_in_flight_.compare_exchange_weak(peak, value, std::memory_order_relaxed)) {
  }
}

std::string BatchService::health_response(const Request& req) const {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    submitted = stats_.submitted;
    completed = stats_.completed;
  }
  std::string line = "{\"id\":" + std::to_string(req.id) + ",\"ok\":true,\"op\":\"health\"";
  line += ",\"draining\":";
  line += draining_.load(std::memory_order_acquire) ? "true" : "false";
  line += ",\"queue_depth\":" + std::to_string(queued());
  line += ",\"in_flight\":" + std::to_string(in_flight_.load(std::memory_order_relaxed));
  line += ",\"outstanding_cost\":" +
          std::to_string(outstanding_cost_.load(std::memory_order_relaxed));
  line += ",\"max_outstanding_cost\":" + std::to_string(config_.max_outstanding_cost);
  line += ",\"workers\":" + std::to_string(config_.workers);
  line += ",\"submitted\":" + std::to_string(submitted);
  line += ",\"completed\":" + std::to_string(completed);
  line += "}";
  append_request_id(&line, req.request_id);
  return line;
}

std::string BatchService::stats_response(const Request& req) {
  static auto& g_uptime = obs::gauge("service.uptime_seconds");
  g_uptime.set(uptime_seconds());
  publish_queue_depth();
  publish_in_flight(in_flight_.load(std::memory_order_relaxed));

  const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
  Stats totals;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    totals = stats_;
  }

  auto doc = obs::json::Value::object();
  doc.set("id", obs::json::Value(req.id));
  doc.set("ok", obs::json::Value(true));
  doc.set("op", obs::json::Value("stats"));
  doc.set("uptime_seconds", obs::json::Value(uptime_seconds()));
  doc.set("draining", obs::json::Value(draining_.load(std::memory_order_acquire)));
  doc.set("queue_depth", obs::json::Value(static_cast<std::uint64_t>(queued())));
  doc.set("in_flight", obs::json::Value(in_flight_.load(std::memory_order_relaxed)));
  doc.set("outstanding_cost",
          obs::json::Value(outstanding_cost_.load(std::memory_order_relaxed)));
  doc.set("peak_queue_depth", obs::json::Value(peak_queue_depth_.load(std::memory_order_relaxed)));
  doc.set("peak_in_flight", obs::json::Value(peak_in_flight_.load(std::memory_order_relaxed)));
  doc.set("workers", obs::json::Value(static_cast<std::uint64_t>(config_.workers)));
  doc.set("queue_capacity",
          obs::json::Value(static_cast<std::uint64_t>(config_.queue_capacity)));

  auto totals_block = obs::json::Value::object();
  totals_block.set("submitted", obs::json::Value(totals.submitted));
  totals_block.set("completed", obs::json::Value(totals.completed));
  totals_block.set("rejected_queue_full", obs::json::Value(totals.rejected_full));
  totals_block.set("rejected_shutdown", obs::json::Value(totals.rejected_shutdown));
  totals_block.set("rejected_overload", obs::json::Value(totals.rejected_overload));
  totals_block.set("rejected_too_large", obs::json::Value(totals.rejected_too_large));
  totals_block.set("bad_requests", obs::json::Value(totals.bad_requests));
  totals_block.set("deadline_expired", obs::json::Value(totals.deadline_expired));
  totals_block.set("cancelled", obs::json::Value(totals.cancelled));
  totals_block.set("timeouts", obs::json::Value(totals.timeouts));
  totals_block.set("internal_errors", obs::json::Value(totals.internal_errors));
  doc.set("totals", std::move(totals_block));

  {
    const CacheStats cs = cache_->stats();
    auto cache_block = obs::json::Value::object();
    cache_block.set("entries", obs::json::Value(static_cast<std::uint64_t>(cs.entries)));
    cache_block.set("capacity", obs::json::Value(static_cast<std::uint64_t>(cs.capacity)));
    cache_block.set("hits", obs::json::Value(cs.hits));
    cache_block.set("misses", obs::json::Value(cs.misses));
    cache_block.set("insertions", obs::json::Value(cs.insertions));
    cache_block.set("evictions", obs::json::Value(cs.evictions));
    cache_block.set("bypass", obs::json::Value(cs.bypass));
    doc.set("cache", std::move(cache_block));
  }

  auto counters = obs::json::Value::object();
  for (const auto& [name, value] : snap.counters) counters.set(name, obs::json::Value(value));
  doc.set("counters", std::move(counters));

  auto gauges = obs::json::Value::object();
  for (const auto& [name, value] : snap.gauges) gauges.set(name, obs::json::Value(value));
  doc.set("gauges", std::move(gauges));

  auto windows = obs::json::Value::object();
  for (const auto& [name, w] : snap.windows) {
    auto win = obs::json::Value::object();
    win.set("count", obs::json::Value(w.count));
    win.set("window_count", obs::json::Value(static_cast<std::uint64_t>(w.window_count)));
    win.set("min", obs::json::Value(w.min));
    win.set("max", obs::json::Value(w.max));
    win.set("sum", obs::json::Value(w.sum));
    win.set("p50", obs::json::Value(w.p50));
    win.set("p90", obs::json::Value(w.p90));
    win.set("p95", obs::json::Value(w.p95));
    win.set("p99", obs::json::Value(w.p99));
    windows.set(name, std::move(win));
  }
  doc.set("windows", std::move(windows));
  if (!req.request_id.empty()) doc.set("request_id", obs::json::Value(req.request_id));
  return doc.dump();
}

std::string BatchService::metrics_response(const Request& req) {
  static auto& g_uptime = obs::gauge("service.uptime_seconds");
  g_uptime.set(uptime_seconds());
  publish_queue_depth();
  publish_in_flight(in_flight_.load(std::memory_order_relaxed));

  const std::string body =
      obs::render_prometheus(obs::MetricsRegistry::instance().snapshot());
  std::string line = "{\"id\":" + std::to_string(req.id) + ",\"ok\":true,\"op\":\"metrics\"";
  line += ",\"content_type\":\"text/plain; version=0.0.4\"";
  line += ",\"body\":\"" + obs::json::escape(body) + "\"}";
  append_request_id(&line, req.request_id);
  return line;
}

void BatchService::submit_line(std::string_view line, ResponseSink sink) {
  static auto& m_requests = obs::counter("service.requests");
  static auto& m_bad = obs::counter("service.bad_requests");
  static auto& m_full = obs::counter("service.queue_full");
  static auto& m_cancelled = obs::counter("service.cancelled");
  m_requests.add(1);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }

  // Every response carries a correlation id: the client's request_id when it
  // supplied one, a server-generated "r-<N>" otherwise (including responses
  // to lines that never parsed).
  const auto generate_request_id = [this] {
    return "r-" + std::to_string(next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1);
  };

  if (line.size() > kMaxRequestBytes) {
    // Answer before parsing: an oversized line is rejected on length alone,
    // never buffered into the JSON parser.
    static auto& m_too_large = obs::counter("service.request_too_large");
    m_too_large.add(1);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected_too_large;
    }
    sink(error_response(-1, ErrorKind::kRequestTooLarge,
                        "request line exceeds " + std::to_string(kMaxRequestBytes) + " bytes",
                        generate_request_id()));
    return;
  }

  Request req;
  if (const core::Status st = parse_request(line, &req); !st.is_ok()) {
    m_bad.add(1);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.bad_requests;
    }
    if (req.request_id.empty()) req.request_id = generate_request_id();
    obs::log_event(util::LogLevel::kDebug, "serve.bad_request",
                   {{"request_id", req.request_id}, {"id", req.id},
                    {"message", std::string(st.message())}});
    sink(error_response(req.id, ErrorKind::kBadRequest, st.message(), req.request_id));
    return;
  }
  if (req.request_id.empty()) req.request_id = generate_request_id();

  if (req.kind == Request::Kind::kPing) {
    sink(ping_response(req.id, req.request_id));
    return;
  }

  if (req.kind == Request::Kind::kHealth) {
    // Answered inline, even while draining: health is how an operator tells
    // "draining" from "hung".
    sink(health_response(req));
    return;
  }

  if (req.kind == Request::Kind::kStats) {
    // Inline and drain-proof like health: scrapes must work while the
    // server sheds, stalls, or shuts down.
    sink(stats_response(req));
    return;
  }

  if (req.kind == Request::Kind::kMetrics) {
    sink(metrics_response(req));
    return;
  }

  if (req.kind == Request::Kind::kCancel) {
    std::optional<Pending> removed;
    if (queue_ != nullptr) {
      removed = queue_->remove_if(
          [&](const Pending& p) { return p.req.id == req.cancel_target; });
    }
    if (removed.has_value()) {
      m_cancelled.add(1);
      outstanding_cost_.fetch_sub(removed->cost, std::memory_order_relaxed);
      publish_queue_depth();
      removed->sink(error_response(removed->req.id, ErrorKind::kCancelled,
                                   "cancelled while queued", removed->req.request_id));
      RequestRecord rec;
      rec.id = removed->req.id;
      rec.request_id = removed->req.request_id;
      rec.op = api::to_string(removed->req.eval.op);
      rec.benchmark = api::benchmark_token(removed->req.eval.benchmark);
      rec.error = to_string(ErrorKind::kCancelled);
      rec.queue_ms = ms_between(removed->enqueued, Clock::now());
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.cancelled;
      }
      record(std::move(rec));
      sink(cancel_ok_response(req.id, req.cancel_target, req.request_id));
    } else {
      sink(error_response(req.id, ErrorKind::kNotFound,
                          "target not queued (already started, finished, or unknown)",
                          req.request_id));
    }
    return;
  }

  if (!started_ || queue_ == nullptr || queue_->closed()) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected_shutdown;
    }
    sink(error_response(req.id, ErrorKind::kShutdown, "service is draining", req.request_id));
    return;
  }

  const std::uint64_t cost = estimate_cost(req);
  if (config_.max_outstanding_cost > 0) {
    // Approximate check-then-add: concurrent submitters can overshoot by at
    // most one request each, and an idle service always admits (cur == 0).
    const std::uint64_t cur = outstanding_cost_.load(std::memory_order_relaxed);
    if (cur > 0 && cur + cost > config_.max_outstanding_cost) {
      static auto& m_overload = obs::counter("service.rejected_overload");
      m_overload.add(1);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rejected_overload;
      }
      sink(error_response(req.id, ErrorKind::kOverloaded,
                          "outstanding cost " + std::to_string(cur) + " + " +
                              std::to_string(cost) + " exceeds limit " +
                              std::to_string(config_.max_outstanding_cost) + "; retry later",
                          req.request_id));
      return;
    }
  }
  outstanding_cost_.fetch_add(cost, std::memory_order_relaxed);

  Pending pending;
  pending.req = std::move(req);
  pending.sink = std::move(sink);
  pending.enqueued = Clock::now();
  pending.cost = cost;
  double deadline_ms = pending.req.deadline_ms;
  if (deadline_ms <= 0.0) deadline_ms = config_.default_deadline_ms;
  pending.deadline =
      deadline_ms > 0.0
          ? pending.enqueued + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(deadline_ms))
          : Clock::time_point::max();

  // try_push leaves the item untouched on failure, so pending (and its sink)
  // are still ours. The result carries the drain-vs-backpressure distinction
  // (decided under the queue lock) for the client's retry policy.
  switch (queue_->try_push(std::move(pending))) {
    case exec::PushResult::kOk:
      publish_queue_depth();
      break;
    case exec::PushResult::kClosed: {
      outstanding_cost_.fetch_sub(cost, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rejected_shutdown;
      }
      pending.sink(error_response(pending.req.id, ErrorKind::kShutdown, "service is draining",
                                  pending.req.request_id));
      break;
    }
    case exec::PushResult::kFull: {
      m_full.add(1);
      outstanding_cost_.fetch_sub(cost, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rejected_full;
      }
      pending.sink(error_response(pending.req.id, ErrorKind::kQueueFull,
                                  "admission queue full (capacity " +
                                      std::to_string(queue_->capacity()) + "); retry later",
                                  pending.req.request_id));
      break;
    }
  }
}

void BatchService::worker_loop() {
  while (auto pending = queue_->pop()) {
    PDN3D_FAULT_STALL("service.queue.delay", 50.0);
    if (coalescible(pending->req)) {
      // Evaluation planner: drain every queued request sharing this
      // factorization (same benchmark + canonical design) in one atomic
      // sweep and dispatch the group as one multi-RHS solve. A member
      // drained here has been "popped" for cancellation purposes, exactly
      // like a singleton pop.
      std::vector<Pending> group;
      group.push_back(std::move(*pending));
      const std::string key = factor_key(group.front().req);
      queue_->remove_all_if(
          [&key](const Pending& p) { return coalescible(p.req) && factor_key(p.req) == key; },
          kMaxCoalesce - 1, &group);
      if (group.size() > 1) {
        publish_queue_depth();
        finish_group(std::move(group));
      } else {
        finish(std::move(group.front()));
      }
      continue;
    }
    finish(std::move(*pending));
  }
}

void BatchService::finish(Pending&& pending) {
  static auto& m_completed = obs::counter("service.completed");
  static auto& m_deadline = obs::counter("service.deadline_expired");
  static auto& m_timeouts = obs::counter("service.timeouts");
  static auto& m_internal = obs::counter("service.internal_errors");
  static auto& h_queue = obs::histogram("service.queue_ms", {1, 10, 100, 1000, 10000});
  static auto& h_run = obs::histogram("service.run_ms", {1, 10, 100, 1000, 10000});
  static auto& w_queue = obs::window("service.queue_ms");
  static auto& w_run = obs::window("service.run_ms");

  const Clock::time_point start = Clock::now();
  publish_queue_depth();
  const double queue_ms = ms_between(pending.enqueued, start);
  h_queue.observe(queue_ms);
  w_queue.observe(queue_ms);

  RequestRecord rec;
  rec.id = pending.req.id;
  rec.request_id = pending.req.request_id;
  rec.op = api::to_string(pending.req.eval.op);
  rec.benchmark = api::benchmark_token(pending.req.eval.benchmark);
  rec.queue_ms = queue_ms;

  if (start > pending.deadline) {
    m_deadline.add(1);
    outstanding_cost_.fetch_sub(pending.cost, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.deadline_expired;
    }
    rec.error = to_string(ErrorKind::kDeadlineExceeded);
    record(std::move(rec));
    pending.sink(error_response(pending.req.id, ErrorKind::kDeadlineExceeded,
                                "deadline expired after " + std::to_string(queue_ms) +
                                    " ms in queue",
                                pending.req.request_id));
    return;
  }

  PDN3D_TRACE_SPAN_NAMED(span, "serve/request");
  span.attribute("op", rec.op);
  span.attribute("benchmark", rec.benchmark);
  span.attribute("request_id", pending.req.request_id);

  // Result cache: a hit answers with the stored result -- byte-identical to
  // a fresh evaluation by the fingerprint contract (api/api.hpp) -- without
  // touching a worker-side solve.
  const CachePlan cplan = plan_cache(config_, pending.req);
  api::RequestFingerprint fp;
  if (cplan.store) {
    fp = pending.req.eval.fingerprint();
  } else {
    cache_->note_bypass();
  }
  if (cplan.consult) {
    if (const auto cached = cache_->lookup(fp)) {
      const double run_ms = ms_between(start, Clock::now());
      h_run.observe(run_ms);
      w_run.observe(run_ms);
      m_completed.add(1);
      outstanding_cost_.fetch_sub(pending.cost, std::memory_order_relaxed);
      rec.ok = true;
      rec.run_ms = run_ms;
      rec.headline_mv = cached->headline_mv;
      rec.fingerprint = cached->fingerprint;
      rec.cache = "hit";
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.completed;
      }
      record(std::move(rec));
      pending.sink(ok_response(pending.req, *cached, queue_ms, run_ms, "hit"));
      return;
    }
  }

  // Slow-request tracing: capture every span this evaluation completes on
  // this thread (sound because the request runs inline here -- the nested-
  // region rule), and export the tree as a structured event if the run
  // crosses the threshold.
  const bool capture = config_.slow_request_ms > 0.0;
  if (capture) obs::begin_capture();

  if (config_.enable_test_ops && pending.req.test_sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(pending.req.test_sleep_ms));
  }

  // Register with the watchdog before evaluating. The per-request sweep runs
  // inline on this worker (exec's nested-region rule), so installing the
  // token here covers every CG/Cholesky poll point the request will hit.
  publish_in_flight(in_flight_.fetch_add(1, std::memory_order_relaxed) + 1);
  exec::CancelToken cancel;
  std::uint64_t ticket = 0;
  const bool watched = config_.watchdog_ms > 0.0;
  if (watched) {
    ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed) + 1;
    const Clock::time_point cancel_at =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(config_.watchdog_ms));
    {
      const std::lock_guard<std::mutex> lock(watchdog_mutex_);
      inflight_[ticket] = {&cancel, cancel_at};
    }
    watchdog_cv_.notify_one();
  }

  api::EvaluateResult result;
  bool internal_error = false;
  std::string internal_message;
  {
    const exec::CancelScope scope(cancel);
    PDN3D_FAULT_STALL("service.worker.stall", 100.0);
    try {
      result = session_.evaluate(pending.req.eval);
    } catch (const std::exception& e) {
      // evaluate() is documented never to throw for data-dependent reasons;
      // anything escaping (fault-injected bad_alloc included) is answered
      // with a typed `internal` error rather than torn down with the worker.
      internal_error = true;
      internal_message = e.what();
    } catch (...) {
      internal_error = true;
      internal_message = "unknown exception";
    }
  }
  if (watched) {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    inflight_.erase(ticket);
  }
  publish_in_flight(in_flight_.fetch_sub(1, std::memory_order_relaxed) - 1);
  outstanding_cost_.fetch_sub(pending.cost, std::memory_order_relaxed);

  const double run_ms = ms_between(start, Clock::now());
  h_run.observe(run_ms);
  w_run.observe(run_ms);
  m_completed.add(1);
  rec.run_ms = run_ms;

  if (capture) {
    const obs::CaptureResult trace = obs::end_capture();
    if (run_ms >= config_.slow_request_ms) {
      static auto& m_slow = obs::counter("service.slow_requests");
      m_slow.add(1);
      auto spans = obs::json::Value::array();
      for (const auto& s : trace.spans) {
        auto row = obs::json::Value::object();
        row.set("path", obs::json::Value(s.path));
        row.set("start_us", obs::json::Value(s.start_us));
        row.set("duration_us", obs::json::Value(s.duration_us));
        spans.push_back(std::move(row));
      }
      obs::log_event(util::LogLevel::kWarn, "serve.slow_request",
                     {{"request_id", pending.req.request_id},
                      {"id", pending.req.id},
                      {"op", rec.op},
                      {"benchmark", rec.benchmark},
                      {"run_ms", run_ms},
                      {"queue_ms", queue_ms},
                      {"threshold_ms", config_.slow_request_ms},
                      {"spans_dropped", trace.dropped},
                      {"spans", std::move(spans)}});
    }
  }

  if (internal_error) {
    m_internal.add(1);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.completed;
      ++stats_.internal_errors;
    }
    rec.error = to_string(ErrorKind::kInternal);
    record(std::move(rec));
    pending.sink(error_response(pending.req.id, ErrorKind::kInternal, internal_message,
                                pending.req.request_id));
    return;
  }

  // Cancelled AND failed = the watchdog stopped it mid-solve. A request that
  // finished ok despite a late cancel still delivers its result.
  if (cancel.cancelled() && !result.ok()) {
    m_timeouts.add(1);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.completed;
      ++stats_.timeouts;
    }
    rec.error = to_string(ErrorKind::kTimeout);
    record(std::move(rec));
    pending.sink(error_response(pending.req.id, ErrorKind::kTimeout,
                                "evaluation exceeded watchdog (" +
                                    std::to_string(static_cast<long long>(config_.watchdog_ms)) +
                                    " ms): " + std::string(result.status.message()),
                                pending.req.request_id));
    return;
  }

  rec.ok = result.ok();
  if (!result.ok()) rec.error = to_string(ErrorKind::kEvaluationFailed);
  rec.headline_mv = result.headline_mv;
  rec.fingerprint = result.fingerprint;
  rec.cache = cplan.token;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.completed;
  }
  record(std::move(rec));
  if (cplan.store && result.ok()) cache_->insert(fp, result);
  pending.sink(ok_response(pending.req, result, queue_ms, run_ms, cplan.token));
}

void BatchService::finish_group(std::vector<Pending>&& group) {
  static auto& m_completed = obs::counter("service.completed");
  static auto& m_deadline = obs::counter("service.deadline_expired");
  static auto& m_timeouts = obs::counter("service.timeouts");
  static auto& m_internal = obs::counter("service.internal_errors");
  static auto& m_groups = obs::counter("service.coalesce.groups");
  static auto& m_members = obs::counter("service.coalesce.requests");
  static auto& h_queue = obs::histogram("service.queue_ms", {1, 10, 100, 1000, 10000});
  static auto& h_run = obs::histogram("service.run_ms", {1, 10, 100, 1000, 10000});
  static auto& w_queue = obs::window("service.queue_ms");
  static auto& w_run = obs::window("service.run_ms");

  m_groups.add(1);
  m_members.add(group.size());

  const Clock::time_point start = Clock::now();
  PDN3D_TRACE_SPAN_NAMED(span, "serve/batch");
  span.attribute("members", std::to_string(group.size()));
  span.attribute("benchmark", std::string(api::benchmark_token(group.front().req.eval.benchmark)));

  // Per-member admission bookkeeping: expired deadlines and cache hits are
  // answered here exactly as finish() would have, and never reach the solve.
  struct Member {
    Pending pending;
    RequestRecord rec;
    CachePlan plan;
    api::RequestFingerprint fp;
  };
  std::vector<Member> to_run;
  to_run.reserve(group.size());

  for (auto& pending : group) {
    const double queue_ms = ms_between(pending.enqueued, start);
    h_queue.observe(queue_ms);
    w_queue.observe(queue_ms);

    RequestRecord rec;
    rec.id = pending.req.id;
    rec.request_id = pending.req.request_id;
    rec.op = api::to_string(pending.req.eval.op);
    rec.benchmark = api::benchmark_token(pending.req.eval.benchmark);
    rec.queue_ms = queue_ms;

    if (start > pending.deadline) {
      m_deadline.add(1);
      outstanding_cost_.fetch_sub(pending.cost, std::memory_order_relaxed);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.deadline_expired;
      }
      rec.error = to_string(ErrorKind::kDeadlineExceeded);
      record(std::move(rec));
      pending.sink(error_response(pending.req.id, ErrorKind::kDeadlineExceeded,
                                  "deadline expired after " + std::to_string(queue_ms) +
                                      " ms in queue",
                                  pending.req.request_id));
      continue;
    }

    CachePlan plan = plan_cache(config_, pending.req);
    api::RequestFingerprint fp;
    if (plan.store) {
      fp = pending.req.eval.fingerprint();
    } else {
      cache_->note_bypass();
    }
    if (plan.consult) {
      if (const auto cached = cache_->lookup(fp)) {
        const double run_ms = ms_between(start, Clock::now());
        h_run.observe(run_ms);
        w_run.observe(run_ms);
        m_completed.add(1);
        outstanding_cost_.fetch_sub(pending.cost, std::memory_order_relaxed);
        rec.ok = true;
        rec.run_ms = run_ms;
        rec.headline_mv = cached->headline_mv;
        rec.fingerprint = cached->fingerprint;
        rec.cache = "hit";
        {
          const std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.completed;
        }
        record(std::move(rec));
        pending.sink(ok_response(pending.req, *cached, queue_ms, run_ms, "hit"));
        continue;
      }
    }
    to_run.push_back(Member{std::move(pending), std::move(rec), plan, std::move(fp)});
  }

  if (to_run.empty()) return;

  // One watchdog ticket and one cancel token cover the whole batch: the
  // members share a solve, so a timeout stops all of them at the same poll
  // point (each then answers `timeout` individually below).
  publish_in_flight(in_flight_.fetch_add(to_run.size(), std::memory_order_relaxed) +
                    to_run.size());
  exec::CancelToken cancel;
  std::uint64_t ticket = 0;
  const bool watched = config_.watchdog_ms > 0.0;
  if (watched) {
    ticket = next_ticket_.fetch_add(1, std::memory_order_relaxed) + 1;
    const Clock::time_point cancel_at =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(config_.watchdog_ms));
    {
      const std::lock_guard<std::mutex> lock(watchdog_mutex_);
      inflight_[ticket] = {&cancel, cancel_at};
    }
    watchdog_cv_.notify_one();
  }

  // Identical fingerprints inside one group evaluate once: the duplicate is
  // answered from its twin's slice, exactly as if it had arrived after the
  // twin's cache insert and hit -- so it reports `cache: hit` and skips its
  // own (redundant) insert. Bypass members never dedupe: bypass means "give
  // me a fresh solve", so each gets its own slice.
  std::vector<api::EvaluateRequest> reqs;
  reqs.reserve(to_run.size());
  std::vector<std::size_t> slot(to_run.size());
  std::unordered_map<std::string, std::size_t> first_by_fp;
  for (std::size_t i = 0; i < to_run.size(); ++i) {
    Member& m = to_run[i];
    if (m.plan.store) {
      const auto [it, inserted] = first_by_fp.emplace(m.fp.canonical, reqs.size());
      if (!inserted) {
        slot[i] = it->second;
        m.plan.store = false;
        m.plan.token = "hit";
        continue;
      }
    }
    slot[i] = reqs.size();
    reqs.push_back(m.pending.req.eval);
  }

  std::vector<api::EvaluateResult> results;
  bool internal_error = false;
  std::string internal_message;
  {
    const exec::CancelScope scope(cancel);
    PDN3D_FAULT_STALL("service.worker.stall", 100.0);
    try {
      results = session_.evaluate_group(reqs);
    } catch (const std::exception& e) {
      internal_error = true;
      internal_message = e.what();
    } catch (...) {
      internal_error = true;
      internal_message = "unknown exception";
    }
  }
  if (watched) {
    const std::lock_guard<std::mutex> lock(watchdog_mutex_);
    inflight_.erase(ticket);
  }
  publish_in_flight(in_flight_.fetch_sub(to_run.size(), std::memory_order_relaxed) -
                    to_run.size());

  // run_ms is shared: the members finished together in one solve.
  const double run_ms = ms_between(start, Clock::now());
  for (std::size_t i = 0; i < to_run.size(); ++i) {
    Member& m = to_run[i];
    outstanding_cost_.fetch_sub(m.pending.cost, std::memory_order_relaxed);
    h_run.observe(run_ms);
    w_run.observe(run_ms);
    m_completed.add(1);
    m.rec.run_ms = run_ms;
    const double queue_ms = m.rec.queue_ms;

    if (internal_error || slot[i] >= results.size()) {
      m_internal.add(1);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.completed;
        ++stats_.internal_errors;
      }
      m.rec.error = to_string(ErrorKind::kInternal);
      record(std::move(m.rec));
      m.pending.sink(error_response(m.pending.req.id, ErrorKind::kInternal,
                                    internal_error ? internal_message : "batch result missing",
                                    m.pending.req.request_id));
      continue;
    }

    api::EvaluateResult& result = results[slot[i]];
    if (cancel.cancelled() && !result.ok()) {
      m_timeouts.add(1);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.completed;
        ++stats_.timeouts;
      }
      m.rec.error = to_string(ErrorKind::kTimeout);
      record(std::move(m.rec));
      m.pending.sink(error_response(
          m.pending.req.id, ErrorKind::kTimeout,
          "evaluation exceeded watchdog (" +
              std::to_string(static_cast<long long>(config_.watchdog_ms)) +
              " ms): " + std::string(result.status.message()),
          m.pending.req.request_id));
      continue;
    }

    m.rec.ok = result.ok();
    if (!result.ok()) m.rec.error = to_string(ErrorKind::kEvaluationFailed);
    m.rec.headline_mv = result.headline_mv;
    m.rec.fingerprint = result.fingerprint;
    m.rec.cache = m.plan.token;
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.completed;
    }
    record(std::move(m.rec));
    if (m.plan.store && result.ok()) cache_->insert(m.fp, result);
    m.pending.sink(ok_response(m.pending.req, result, queue_ms, run_ms, m.plan.token));
  }
}

void BatchService::record(RequestRecord rec) {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  if (records_.size() >= kMaxRequestRecords) {
    ++records_dropped_;
    return;
  }
  records_.push_back(std::move(rec));
}

void BatchService::drain() {
  if (!started_ || drained_) return;
  drained_ = true;
  draining_.store(true, std::memory_order_release);
  queue_->close();
  orchestrator_.join();
  obs::gauge("service.uptime_seconds").set(uptime_seconds());
  publish_queue_depth();
  publish_in_flight(in_flight_.load(std::memory_order_relaxed));
  if (watchdog_.joinable()) {
    {
      const std::lock_guard<std::mutex> lock(watchdog_mutex_);
      watchdog_stop_ = true;
    }
    watchdog_cv_.notify_one();
    watchdog_.join();
  }
}

BatchService::Stats BatchService::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::size_t BatchService::queued() const { return queue_ != nullptr ? queue_->size() : 0; }

obs::json::Value BatchService::session_block() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  auto block = obs::json::Value::object();
  block.set("workers", obs::json::Value(static_cast<std::uint64_t>(config_.workers)));
  block.set("queue_capacity",
            obs::json::Value(static_cast<std::uint64_t>(config_.queue_capacity)));
  // Schema v6: lifetime and peak load plus the result-cache block, so a
  // report alone answers "how hard was this server actually pushed" and "how
  // much of it was absorbed by the cache".
  block.set("uptime_seconds", obs::json::Value(uptime_seconds()));
  block.set("peak_queue_depth",
            obs::json::Value(peak_queue_depth_.load(std::memory_order_relaxed)));
  block.set("peak_in_flight", obs::json::Value(peak_in_flight_.load(std::memory_order_relaxed)));
  block.set("submitted", obs::json::Value(stats_.submitted));
  block.set("completed", obs::json::Value(stats_.completed));
  block.set("rejected_queue_full", obs::json::Value(stats_.rejected_full));
  block.set("rejected_shutdown", obs::json::Value(stats_.rejected_shutdown));
  block.set("rejected_overload", obs::json::Value(stats_.rejected_overload));
  block.set("rejected_too_large", obs::json::Value(stats_.rejected_too_large));
  block.set("bad_requests", obs::json::Value(stats_.bad_requests));
  block.set("deadline_expired", obs::json::Value(stats_.deadline_expired));
  block.set("cancelled", obs::json::Value(stats_.cancelled));
  block.set("timeouts", obs::json::Value(stats_.timeouts));
  block.set("internal_errors", obs::json::Value(stats_.internal_errors));
  {
    const CacheStats cs = cache_->stats();
    auto cache_block = obs::json::Value::object();
    cache_block.set("entries", obs::json::Value(static_cast<std::uint64_t>(cs.entries)));
    cache_block.set("capacity", obs::json::Value(static_cast<std::uint64_t>(cs.capacity)));
    cache_block.set("hits", obs::json::Value(cs.hits));
    cache_block.set("misses", obs::json::Value(cs.misses));
    cache_block.set("insertions", obs::json::Value(cs.insertions));
    cache_block.set("evictions", obs::json::Value(cs.evictions));
    cache_block.set("bypass", obs::json::Value(cs.bypass));
    block.set("cache", std::move(cache_block));
  }
  auto requests = obs::json::Value::array();
  for (const auto& rec : records_) {
    auto r = obs::json::Value::object();
    r.set("id", obs::json::Value(static_cast<std::int64_t>(rec.id)));
    r.set("request_id", obs::json::Value(rec.request_id));
    r.set("op", obs::json::Value(rec.op));
    r.set("benchmark", obs::json::Value(rec.benchmark));
    r.set("ok", obs::json::Value(rec.ok));
    if (!rec.error.empty()) r.set("error", obs::json::Value(rec.error));
    r.set("queue_ms", obs::json::Value(rec.queue_ms));
    r.set("run_ms", obs::json::Value(rec.run_ms));
    r.set("headline_mv", obs::json::Value(rec.headline_mv));
    r.set("fingerprint", obs::json::Value(rec.fingerprint));
    r.set("cache", obs::json::Value(rec.cache));
    requests.push_back(std::move(r));
  }
  block.set("requests", std::move(requests));
  block.set("requests_dropped_from_report", obs::json::Value(records_dropped_));
  return block;
}

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

SocketServer::SocketServer(BatchService& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("socket path too long: " + path_);
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  // A leftover path is only reclaimed when it is provably a stale socket: a
  // non-socket file is never deleted, and a socket with a live listener keeps
  // refusing a second server instead of hijacking its address.
  struct stat st {};
  if (::lstat(path_.c_str(), &st) == 0) {
    if (!S_ISSOCK(st.st_mode)) {
      ::close(listen_fd_);
      listen_fd_ = -1;
      throw std::runtime_error("refusing to replace " + path_ + ": exists and is not a socket");
    }
    const int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (probe >= 0) {
      const int rc = ::connect(probe, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
      ::close(probe);
      if (rc == 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("refusing to replace " + path_ +
                                 ": a live server is already listening");
      }
    }
    ::unlink(path_.c_str());  // stale socket from a crashed run
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind(" + path_ + "): " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen(" + path_ + "): " + std::strerror(err));
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

/// Shared connection state: the reader thread, every in-flight response
/// sink, and stop() each hold a shared_ptr, so the fd stays valid (not
/// closed, hence never recycled) until the last of them lets go. stop() may
/// therefore shutdown() the fd of a reader that already exited without
/// racing a close().
struct SocketServer::ConnState {
  int fd = -1;
  std::mutex write_mutex;        ///< serializes response writes
  std::atomic<bool> reader_done{false};
  ~ConnState() {
    if (fd >= 0) ::close(fd);
  }
};

void SocketServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->state->reader_done.load(std::memory_order_acquire)) {
      it->reader.join();  // done flag is the reader's last store; join is brief
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100 /*ms*/);
    if (rc <= 0) continue;  // timeout (re-check stop flag) or EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto state = std::make_shared<ConnState>();
    state->fd = fd;
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    reap_finished_locked();  // bound the list under many short-lived clients
    connections_.push_back(
        {std::thread([this, state] { connection_loop(state); }), state});
  }
}

void SocketServer::connection_loop(std::shared_ptr<ConnState> state) {
  static auto& m_conns = obs::counter("service.connections");
  m_conns.add(1);
  // Responses complete on worker threads while the reader is mid-line (or
  // after it exited); the shared state keeps the fd and write mutex alive
  // until the last in-flight response for this connection lands.
  ResponseSink sink = [state](const std::string& line) {
    const std::lock_guard<std::mutex> lock(state->write_mutex);
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      // MSG_NOSIGNAL: a vanished client must yield EPIPE here, not a
      // process-killing SIGPIPE.
      const ssize_t n =
          ::send(state->fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // client went away; drop the response
      off += static_cast<std::size_t>(n);
    }
  };

  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(state->fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF (or stop()'s shutdown) or error: client is done
    if (PDN3D_FAULT_POINT("service.socket.reset")) {
      // Injected connection reset: drop the link mid-stream the way a
      // crashed client would. Already-admitted requests still run; their
      // responses fail to send and are dropped, which is exactly the real
      // failure mode the soak harness must tolerate.
      ::shutdown(state->fd, SHUT_RDWR);
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos = 0;
    for (std::size_t nl = buffer.find('\n', pos); nl != std::string::npos;
         nl = buffer.find('\n', pos)) {
      const std::string_view line(buffer.data() + pos, nl - pos);
      if (!line.empty()) service_.submit_line(line, sink);
      pos = nl + 1;
    }
    buffer.erase(0, pos);
    if (buffer.size() > kMaxRequestBytes) {
      // A line this long is rejected on length alone; close rather than
      // buffer an unbounded stream waiting for its newline.
      sink(error_response(-1, ErrorKind::kRequestTooLarge,
                          "request line exceeds " + std::to_string(kMaxRequestBytes) +
                              " bytes"));
      ::shutdown(state->fd, SHUT_RDWR);
      break;
    }
  }
  if (!buffer.empty()) service_.submit_line(buffer, sink);
  state->reader_done.store(true, std::memory_order_release);
}

void SocketServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<Connection> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(connections_);
  }
  // Unblock readers parked in read() on connections the client never closed:
  // SHUT_RD makes their read() return 0 without cutting the write side, so
  // responses still in flight keep delivering through the caller's
  // BatchService::drain. The shared state guarantees the fd is still ours.
  for (auto& c : conns) ::shutdown(c.state->fd, SHUT_RD);
  for (auto& c : conns) c.reader.join();
  ::unlink(path_.c_str());
}

}  // namespace pdn3d::service
