#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pdn3d::service {

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// Keep this many per-request records for the session report; beyond it only
/// the aggregates grow (a soak would otherwise make reports unbounded).
constexpr std::size_t kMaxRequestRecords = 1024;

std::string cancel_ok_response(std::int64_t id, std::int64_t target) {
  return "{\"id\":" + std::to_string(id) + ",\"ok\":true,\"op\":\"cancel\",\"target\":" +
         std::to_string(target) + "}";
}

}  // namespace

struct BatchService::Pending {
  Request req;
  ResponseSink sink;
  Clock::time_point enqueued;
  Clock::time_point deadline;  ///< Clock::time_point::max() = none
};

struct BatchService::RequestRecord {
  std::int64_t id = -1;
  std::string op;
  std::string benchmark;
  bool ok = false;
  std::string error;  ///< ErrorKind token, empty when the evaluation ran ok
  double queue_ms = 0.0;
  double run_ms = 0.0;
  double headline_mv = 0.0;
};

BatchService::BatchService(const api::Session& session, ServiceConfig config)
    : session_(session), config_(config) {
  if (config_.workers == 0) config_.workers = exec::default_thread_count();
}

BatchService::~BatchService() { drain(); }

void BatchService::start() {
  if (started_) throw std::logic_error("BatchService::start called twice");
  started_ = true;
  queue_ = std::make_unique<exec::BoundedQueue<Pending>>(config_.queue_capacity);
  pool_ = std::make_unique<exec::ThreadPool>(config_.workers);
  obs::gauge("service.workers").set(static_cast<double>(config_.workers));
  obs::gauge("service.queue_capacity").set(static_cast<double>(config_.queue_capacity));
  // The worker loops occupy one pool region for the service's whole life; the
  // orchestrator thread is region participant #0 (parallel_for's caller).
  const std::size_t n = config_.workers;
  orchestrator_ = std::thread([this, n] {
    PDN3D_TRACE_SPAN("serve/region");
    pool_->parallel_for(n, [this](std::size_t) { worker_loop(); });
  });
}

void BatchService::submit_line(std::string_view line, ResponseSink sink) {
  static auto& m_requests = obs::counter("service.requests");
  static auto& m_bad = obs::counter("service.bad_requests");
  static auto& m_full = obs::counter("service.queue_full");
  static auto& m_cancelled = obs::counter("service.cancelled");
  m_requests.add(1);
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.submitted;
  }

  Request req;
  if (const core::Status st = parse_request(line, &req); !st.is_ok()) {
    m_bad.add(1);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.bad_requests;
    }
    sink(error_response(req.id, ErrorKind::kBadRequest, st.message()));
    return;
  }

  if (req.kind == Request::Kind::kPing) {
    sink(ping_response(req.id));
    return;
  }

  if (req.kind == Request::Kind::kCancel) {
    std::optional<Pending> removed;
    if (queue_ != nullptr) {
      removed = queue_->remove_if(
          [&](const Pending& p) { return p.req.id == req.cancel_target; });
    }
    if (removed.has_value()) {
      m_cancelled.add(1);
      removed->sink(error_response(removed->req.id, ErrorKind::kCancelled,
                                   "cancelled while queued"));
      RequestRecord rec;
      rec.id = removed->req.id;
      rec.op = api::to_string(removed->req.eval.op);
      rec.benchmark = api::benchmark_token(removed->req.eval.benchmark);
      rec.error = to_string(ErrorKind::kCancelled);
      rec.queue_ms = ms_between(removed->enqueued, Clock::now());
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.cancelled;
      }
      record(std::move(rec));
      sink(cancel_ok_response(req.id, req.cancel_target));
    } else {
      sink(error_response(req.id, ErrorKind::kNotFound,
                          "target not queued (already started, finished, or unknown)"));
    }
    return;
  }

  if (!started_ || queue_ == nullptr || queue_->closed()) {
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.rejected_shutdown;
    }
    sink(error_response(req.id, ErrorKind::kShutdown, "service is draining"));
    return;
  }

  Pending pending;
  pending.req = std::move(req);
  pending.sink = std::move(sink);
  pending.enqueued = Clock::now();
  double deadline_ms = pending.req.deadline_ms;
  if (deadline_ms <= 0.0) deadline_ms = config_.default_deadline_ms;
  pending.deadline =
      deadline_ms > 0.0
          ? pending.enqueued + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double, std::milli>(deadline_ms))
          : Clock::time_point::max();

  // try_push leaves the item untouched on failure, so pending (and its sink)
  // are still ours. The result carries the drain-vs-backpressure distinction
  // (decided under the queue lock) for the client's retry policy.
  switch (queue_->try_push(std::move(pending))) {
    case exec::PushResult::kOk:
      break;
    case exec::PushResult::kClosed: {
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rejected_shutdown;
      }
      pending.sink(error_response(pending.req.id, ErrorKind::kShutdown, "service is draining"));
      break;
    }
    case exec::PushResult::kFull: {
      m_full.add(1);
      {
        const std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.rejected_full;
      }
      pending.sink(error_response(pending.req.id, ErrorKind::kQueueFull,
                                  "admission queue full (capacity " +
                                      std::to_string(queue_->capacity()) + "); retry later"));
      break;
    }
  }
}

void BatchService::worker_loop() {
  while (auto pending = queue_->pop()) {
    finish(std::move(*pending));
  }
}

void BatchService::finish(Pending&& pending) {
  static auto& m_completed = obs::counter("service.completed");
  static auto& m_deadline = obs::counter("service.deadline_expired");
  static auto& h_queue = obs::histogram("service.queue_ms", {1, 10, 100, 1000, 10000});
  static auto& h_run = obs::histogram("service.run_ms", {1, 10, 100, 1000, 10000});

  const Clock::time_point start = Clock::now();
  const double queue_ms = ms_between(pending.enqueued, start);
  h_queue.observe(queue_ms);

  RequestRecord rec;
  rec.id = pending.req.id;
  rec.op = api::to_string(pending.req.eval.op);
  rec.benchmark = api::benchmark_token(pending.req.eval.benchmark);
  rec.queue_ms = queue_ms;

  if (start > pending.deadline) {
    m_deadline.add(1);
    {
      const std::lock_guard<std::mutex> lock(stats_mutex_);
      ++stats_.deadline_expired;
    }
    rec.error = to_string(ErrorKind::kDeadlineExceeded);
    record(std::move(rec));
    pending.sink(error_response(pending.req.id, ErrorKind::kDeadlineExceeded,
                                "deadline expired after " + std::to_string(queue_ms) +
                                    " ms in queue"));
    return;
  }

  PDN3D_TRACE_SPAN_NAMED(span, "serve/request");
  span.attribute("op", rec.op);
  span.attribute("benchmark", rec.benchmark);

  if (config_.enable_test_ops && pending.req.test_sleep_ms > 0.0) {
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(pending.req.test_sleep_ms));
  }

  const api::EvaluateResult result = session_.evaluate(pending.req.eval);
  const double run_ms = ms_between(start, Clock::now());
  h_run.observe(run_ms);
  m_completed.add(1);

  rec.ok = result.ok();
  if (!result.ok()) rec.error = to_string(ErrorKind::kEvaluationFailed);
  rec.run_ms = run_ms;
  rec.headline_mv = result.headline_mv;
  {
    const std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.completed;
  }
  record(std::move(rec));
  pending.sink(ok_response(pending.req, result, queue_ms, run_ms));
}

void BatchService::record(RequestRecord rec) {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  if (records_.size() >= kMaxRequestRecords) {
    ++records_dropped_;
    return;
  }
  records_.push_back(std::move(rec));
}

void BatchService::drain() {
  if (!started_ || drained_) return;
  drained_ = true;
  queue_->close();
  orchestrator_.join();
}

BatchService::Stats BatchService::stats() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::size_t BatchService::queued() const { return queue_ != nullptr ? queue_->size() : 0; }

obs::json::Value BatchService::session_block() const {
  const std::lock_guard<std::mutex> lock(stats_mutex_);
  auto block = obs::json::Value::object();
  block.set("workers", obs::json::Value(static_cast<std::uint64_t>(config_.workers)));
  block.set("queue_capacity",
            obs::json::Value(static_cast<std::uint64_t>(config_.queue_capacity)));
  block.set("submitted", obs::json::Value(stats_.submitted));
  block.set("completed", obs::json::Value(stats_.completed));
  block.set("rejected_queue_full", obs::json::Value(stats_.rejected_full));
  block.set("rejected_shutdown", obs::json::Value(stats_.rejected_shutdown));
  block.set("bad_requests", obs::json::Value(stats_.bad_requests));
  block.set("deadline_expired", obs::json::Value(stats_.deadline_expired));
  block.set("cancelled", obs::json::Value(stats_.cancelled));
  auto requests = obs::json::Value::array();
  for (const auto& rec : records_) {
    auto r = obs::json::Value::object();
    r.set("id", obs::json::Value(static_cast<std::int64_t>(rec.id)));
    r.set("op", obs::json::Value(rec.op));
    r.set("benchmark", obs::json::Value(rec.benchmark));
    r.set("ok", obs::json::Value(rec.ok));
    if (!rec.error.empty()) r.set("error", obs::json::Value(rec.error));
    r.set("queue_ms", obs::json::Value(rec.queue_ms));
    r.set("run_ms", obs::json::Value(rec.run_ms));
    r.set("headline_mv", obs::json::Value(rec.headline_mv));
    requests.push_back(std::move(r));
  }
  block.set("requests", std::move(requests));
  block.set("requests_dropped_from_report", obs::json::Value(records_dropped_));
  return block;
}

// ---------------------------------------------------------------------------
// SocketServer
// ---------------------------------------------------------------------------

SocketServer::SocketServer(BatchService& service, std::string socket_path)
    : service_(service), path_(std::move(socket_path)) {}

SocketServer::~SocketServer() { stop(); }

void SocketServer::start() {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("socket path too long: " + path_);
  }
  std::memcpy(addr.sun_path, path_.c_str(), path_.size() + 1);
  ::unlink(path_.c_str());  // stale socket from a crashed run
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind(" + path_ + "): " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen(" + path_ + "): " + std::strerror(err));
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

/// Shared connection state: the reader thread, every in-flight response
/// sink, and stop() each hold a shared_ptr, so the fd stays valid (not
/// closed, hence never recycled) until the last of them lets go. stop() may
/// therefore shutdown() the fd of a reader that already exited without
/// racing a close().
struct SocketServer::ConnState {
  int fd = -1;
  std::mutex write_mutex;        ///< serializes response writes
  std::atomic<bool> reader_done{false};
  ~ConnState() {
    if (fd >= 0) ::close(fd);
  }
};

void SocketServer::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->state->reader_done.load(std::memory_order_acquire)) {
      it->reader.join();  // done flag is the reader's last store; join is brief
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void SocketServer::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int rc = ::poll(&pfd, 1, 100 /*ms*/);
    if (rc <= 0) continue;  // timeout (re-check stop flag) or EINTR
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto state = std::make_shared<ConnState>();
    state->fd = fd;
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    reap_finished_locked();  // bound the list under many short-lived clients
    connections_.push_back(
        {std::thread([this, state] { connection_loop(state); }), state});
  }
}

void SocketServer::connection_loop(std::shared_ptr<ConnState> state) {
  static auto& m_conns = obs::counter("service.connections");
  m_conns.add(1);
  // Responses complete on worker threads while the reader is mid-line (or
  // after it exited); the shared state keeps the fd and write mutex alive
  // until the last in-flight response for this connection lands.
  ResponseSink sink = [state](const std::string& line) {
    const std::lock_guard<std::mutex> lock(state->write_mutex);
    std::string out = line;
    out.push_back('\n');
    std::size_t off = 0;
    while (off < out.size()) {
      // MSG_NOSIGNAL: a vanished client must yield EPIPE here, not a
      // process-killing SIGPIPE.
      const ssize_t n =
          ::send(state->fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;  // client went away; drop the response
      off += static_cast<std::size_t>(n);
    }
  };

  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(state->fd, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF (or stop()'s shutdown) or error: client is done
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos = 0;
    for (std::size_t nl = buffer.find('\n', pos); nl != std::string::npos;
         nl = buffer.find('\n', pos)) {
      const std::string_view line(buffer.data() + pos, nl - pos);
      if (!line.empty()) service_.submit_line(line, sink);
      pos = nl + 1;
    }
    buffer.erase(0, pos);
  }
  if (!buffer.empty()) service_.submit_line(buffer, sink);
  state->reader_done.store(true, std::memory_order_release);
}

void SocketServer::stop() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<Connection> conns;
  {
    const std::lock_guard<std::mutex> lock(conn_mutex_);
    conns.swap(connections_);
  }
  // Unblock readers parked in read() on connections the client never closed:
  // SHUT_RD makes their read() return 0 without cutting the write side, so
  // responses still in flight keep delivering through the caller's
  // BatchService::drain. The shared state guarantees the fd is still ours.
  for (auto& c : conns) ::shutdown(c.state->fd, SHUT_RD);
  for (auto& c : conns) c.reader.join();
  ::unlink(path_.c_str());
}

}  // namespace pdn3d::service
