#include "service/cache.hpp"

#include "obs/metrics.hpp"

namespace pdn3d::service {

namespace {

obs::Counter& m_hits() {
  static auto& c = obs::counter("service.cache.hits");
  return c;
}
obs::Counter& m_misses() {
  static auto& c = obs::counter("service.cache.misses");
  return c;
}
obs::Counter& m_insertions() {
  static auto& c = obs::counter("service.cache.insertions");
  return c;
}
obs::Counter& m_evictions() {
  static auto& c = obs::counter("service.cache.evictions");
  return c;
}
obs::Counter& m_bypass() {
  static auto& c = obs::counter("service.cache.bypass");
  return c;
}

}  // namespace

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {
  // Pre-register every cache counter so `service.cache.*` rows exist in
  // stats/metrics scrapes from server start, before the first cache event.
  m_hits();
  m_misses();
  m_insertions();
  m_evictions();
  m_bypass();
}

std::optional<api::EvaluateResult> ResultCache::lookup(const api::RequestFingerprint& fp) {
  if (capacity_ == 0) {
    note_bypass();
    return std::nullopt;
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(fp.hash);
  if (it == index_.end() || it->second->canonical != fp.canonical) {
    ++misses_;
    m_misses().add(1);
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  m_hits().add(1);
  return it->second->result;
}

void ResultCache::insert(const api::RequestFingerprint& fp, const api::EvaluateResult& result) {
  if (capacity_ == 0 || !result.ok()) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = index_.find(fp.hash);
  if (it != index_.end()) {
    // Refresh: overwrite in place and mark most-recently-used. On a true
    // hash collision the newer request wins the slot; the canonical guard
    // in lookup() keeps the loser from ever being served the wrong bytes.
    it->second->canonical = fp.canonical;
    it->second->result = result;
    lru_.splice(lru_.begin(), lru_, it->second);
    ++insertions_;
    m_insertions().add(1);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().hash);
    lru_.pop_back();
    ++evictions_;
    m_evictions().add(1);
  }
  lru_.push_front(Entry{fp.hash, fp.canonical, result});
  index_[fp.hash] = lru_.begin();
  ++insertions_;
  m_insertions().add(1);
}

void ResultCache::note_bypass() {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++bypass_;
  m_bypass().add(1);
}

CacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  CacheStats s;
  s.entries = lru_.size();
  s.capacity = capacity_;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.bypass = bypass_;
  return s;
}

}  // namespace pdn3d::service
