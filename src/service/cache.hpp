#pragma once

/// @file cache.hpp
/// @brief Content-addressed LRU result cache for the batch evaluation
/// service.
///
/// Entries are keyed by the request's RequestFingerprint (api/api.hpp): two
/// requests share an entry exactly when the facade guarantees their rendered
/// output is byte-identical, so a cache hit returns the same bytes a fresh
/// evaluation would have produced (the PR 5 parity contract, now extended to
/// cached responses -- docs/SERVICE.md). The stored canonical text is
/// compared on every hit, so a 64-bit hash collision degrades to a miss
/// instead of serving the wrong result.
///
/// Only successful results are cached (failures are cheap to recompute and
/// often transient), and only operations without side channels -- the
/// service never caches checkpointed requests. Thread-safe: one mutex
/// around an intrusive LRU list + hash map; at service request rates the
/// critical section (a list splice and a map probe) is unmeasurable next to
/// a solve.
///
/// Counters (docs/OBSERVABILITY.md): service.cache.hits / misses /
/// insertions / evictions / bypass.

#include <cstddef>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "api/api.hpp"

namespace pdn3d::service {

/// Point-in-time occupancy + traffic counters for stats/report blocks.
struct CacheStats {
  std::size_t entries = 0;    ///< live entries
  std::size_t capacity = 0;   ///< configured maximum (0 = cache disabled)
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bypass = 0;   ///< requests that skipped the cache entirely
};

/// Size-capped LRU map: fingerprint -> EvaluateResult. See file comment.
class ResultCache {
 public:
  /// @param capacity maximum entries; 0 disables the cache (every lookup
  /// reports a bypass and insert() is a no-op).
  explicit ResultCache(std::size_t capacity);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// The cached result for @p fp, refreshing its LRU position. Counts a hit
  /// or a miss.
  [[nodiscard]] std::optional<api::EvaluateResult> lookup(const api::RequestFingerprint& fp);

  /// Insert (or overwrite -- the "refresh" path) the result for @p fp,
  /// evicting the least-recently-used entry when full. Callers only insert
  /// result.ok() results; a failed result is rejected here as defense in
  /// depth.
  void insert(const api::RequestFingerprint& fp, const api::EvaluateResult& result);

  /// Count a request that skipped the cache (server/request bypass mode,
  /// checkpointed request, cache disabled).
  void note_bypass();

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Entry {
    std::uint64_t hash = 0;
    std::string canonical;  ///< collision guard: verified on every hit
    api::EvaluateResult result;
  };

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  /// Most-recently-used at the front; map values point into the list.
  std::list<Entry> lru_;
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t bypass_ = 0;
};

}  // namespace pdn3d::service
