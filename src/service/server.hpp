#pragma once

/// @file server.hpp
/// @brief The batch evaluation service behind `pdn3d serve`.
///
/// A BatchService owns a bounded admission queue and a set of worker loops
/// dispatched onto an exec::ThreadPool. Front ends (the stdin NDJSON loop and
/// the Unix-domain-socket server below) feed it request lines; every line
/// produces exactly one response through the sink the caller supplied.
///
/// Lifecycle:  start() -> submit_line()* -> drain().
///
///  - **Backpressure.** Admission never blocks: a full queue answers
///    `queue_full` immediately and the request is dropped before it costs
///    anything. Clients retry with their own policy.
///  - **Overload control.** Beyond slot-count backpressure, admission tracks
///    the estimated cost of everything admitted-but-unfinished (a montecarlo
///    with 10k samples is not one ping). When `max_outstanding_cost` is set
///    and the new request would push past it, the request is shed with a
///    typed `overloaded` error before it is queued. The `health` op reports
///    queue depth, in-flight count, outstanding cost, and drain state, and is
///    answered inline even while draining.
///  - **Watchdog.** When `watchdog_ms` is set, an evaluation that runs past
///    it is cancelled cooperatively (exec::CancelToken polled inside the CG /
///    Cholesky inner loops) and answered with a typed `timeout` error. A
///    request that completes despite the cancel still delivers its result.
///  - **Deadline.** `deadline_ms` (or the config default) is enforced at
///    dequeue: a request whose deadline passed while queued answers
///    `deadline_exceeded` instead of running. Granularity is admission->start;
///    a request that began evaluating always runs to completion.
///  - **Cancellation.** `cancel` plucks a still-queued request out of the
///    admission queue. Same granularity: once a worker popped it, the cancel
///    answers `not_found`.
///  - **Graceful drain.** drain() stops admission (`shutdown` responses) and
///    waits for every already-admitted request to finish; no admitted request
///    is ever dropped without a response.
///
/// Request-level parallelism only: worker loops occupy the pool's region, so
/// per-request sweeps (Monte Carlo, co-optimizer) run inline on their worker
/// (exec's nested-region rule). Throughput comes from concurrent requests
/// plus the api::Session caches shared across them.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "exec/bounded_queue.hpp"
#include "exec/thread_pool.hpp"
#include "obs/json.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"

namespace pdn3d::service {

struct ServiceConfig {
  std::size_t workers = 0;         ///< 0 = exec::default_thread_count()
  std::size_t queue_capacity = 64; ///< admission queue slots (backpressure point)
  double default_deadline_ms = 0.0; ///< applied when a request names none; 0 = off
  bool enable_test_ops = false;    ///< honor `test_sleep_ms` (fault-injection tests)
  /// Cost-based admission ceiling: the sum of estimated costs of every
  /// admitted-but-unfinished request may not exceed this (0 = unlimited).
  /// A request that would push past it is shed with a typed `overloaded`
  /// error. The check is approximate (check-then-add, bounded overshoot of
  /// one request) and at least one request is always admitted when idle.
  std::uint64_t max_outstanding_cost = 0;
  /// Per-request watchdog: an evaluation running longer than this is
  /// cancelled cooperatively and answered `timeout` (0 = off). Measured from
  /// evaluation start, not admission (deadline_ms covers queue time).
  double watchdog_ms = 0.0;
  /// Slow-request tracing: an evaluation whose run time exceeds this logs a
  /// `serve.slow_request` event carrying the request's captured span tree
  /// (0 = off). The CLI flag is `--slow-ms`.
  double slow_request_ms = 0.0;
  /// Result-cache capacity in entries, content-addressed by request
  /// fingerprint (0 = cache off). The CLI flag is `--cache-entries`.
  std::size_t cache_entries = 256;
  /// Force every request to bypass the result cache regardless of its
  /// per-request `cache` field (CLI `--cache-bypass`). The cache stays
  /// allocated so stats keep reporting its configuration.
  bool cache_bypass = false;
};

/// Delivery callback for one response line (no trailing newline). Invoked
/// from worker threads and from submit_line's caller; implementations
/// serialize their own writes (see SocketServer's per-connection mutex).
using ResponseSink = std::function<void(const std::string&)>;

class BatchService {
 public:
  /// @param session must outlive the service; shared across all requests so
  /// design/LUT/factor caches amortize (the point of serving).
  BatchService(const api::Session& session, ServiceConfig config);

  /// Drains if the owner forgot to.
  ~BatchService();

  BatchService(const BatchService&) = delete;
  BatchService& operator=(const BatchService&) = delete;

  /// Spawn the worker loops. Call once, before the first submit_line.
  void start();

  /// Decode and dispatch one NDJSON line. Exactly one response reaches
  /// @p sink: immediately for ping/cancel/bad-request/queue-full/shutdown,
  /// or from a worker thread when the evaluation finishes.
  void submit_line(std::string_view line, ResponseSink sink);

  /// Stop admission, answer the backlog, join the workers. Idempotent;
  /// returns when every admitted request has been responded to.
  void drain();

  /// Point-in-time counters (exact once drain() returned).
  struct Stats {
    std::uint64_t submitted = 0;      ///< lines received
    std::uint64_t completed = 0;      ///< evaluations that ran (ok or failed)
    std::uint64_t rejected_full = 0;  ///< queue_full backpressure responses
    std::uint64_t rejected_shutdown = 0;
    std::uint64_t rejected_overload = 0;  ///< shed by cost-based admission
    std::uint64_t rejected_too_large = 0; ///< request_too_large responses
    std::uint64_t bad_requests = 0;
    std::uint64_t deadline_expired = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t timeouts = 0;        ///< watchdog-cancelled evaluations
    std::uint64_t internal_errors = 0; ///< exceptions escaping an evaluation
  };
  [[nodiscard]] Stats stats() const;

  /// Requests admitted but not yet popped by a worker. A test/diagnostic
  /// aid: polling for 0 after a submit proves the worker picked it up.
  [[nodiscard]] std::size_t queued() const;

  /// The run report's "session" block (schema v6): aggregate counters,
  /// uptime, peak load, the result-cache block, plus one record per
  /// evaluated request with its fingerprint and cache disposition
  /// (docs/OBSERVABILITY.md).
  [[nodiscard]] obs::json::Value session_block() const;

  /// The result cache (exposed for tests and stats plumbing).
  [[nodiscard]] const ResultCache& cache() const { return *cache_; }

  /// Seconds since start(); 0 before start.
  [[nodiscard]] double uptime_seconds() const;

 private:
  struct Pending;
  struct RequestRecord;
  struct InFlight;

  void worker_loop();
  void watchdog_loop();
  void finish(Pending&& pending);
  /// The coalescing planner's batch path: a factor-sharing group (>= 2
  /// plain-evaluate requests on one benchmark+design) dispatched as one
  /// multi-RHS solve via Session::evaluate_group, with per-member deadline,
  /// cache, watchdog, and response handling. Responses are byte-identical to
  /// what N finish() calls would have produced (modulo queue_ms/run_ms).
  void finish_group(std::vector<Pending>&& group);
  void record(RequestRecord rec);
  /// Refresh the live service.queue_depth / service.inflight gauges (and
  /// their peaks) from the authoritative sources. Called on every queue or
  /// in-flight transition, so every exit path is covered by construction.
  void publish_queue_depth();
  void publish_in_flight(std::uint64_t value);
  [[nodiscard]] std::string health_response(const Request& req) const;
  [[nodiscard]] std::string stats_response(const Request& req);
  [[nodiscard]] std::string metrics_response(const Request& req);

  const api::Session& session_;
  ServiceConfig config_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<exec::ThreadPool> pool_;
  std::unique_ptr<exec::BoundedQueue<Pending>> queue_;
  std::thread orchestrator_;  ///< runs the pool's worker region
  bool started_ = false;
  bool drained_ = false;

  std::atomic<bool> draining_{false};  ///< set at drain() start (health op)
  std::atomic<std::uint64_t> outstanding_cost_{0};  ///< admitted, unfinished
  std::atomic<std::uint64_t> in_flight_{0};  ///< popped by a worker, running
  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::uint64_t> next_request_id_{0};  ///< server-generated "r-<N>"
  std::atomic<std::uint64_t> peak_queue_depth_{0};
  std::atomic<std::uint64_t> peak_in_flight_{0};
  std::chrono::steady_clock::time_point started_at_{};  ///< set by start()

  std::mutex watchdog_mutex_;  ///< guards inflight_ + watchdog_stop_
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
  std::map<std::uint64_t, InFlight> inflight_;  ///< ticket -> watched request
  std::thread watchdog_;

  mutable std::mutex stats_mutex_;  ///< guards stats_ + records_
  Stats stats_;
  std::vector<RequestRecord> records_;
  std::uint64_t records_dropped_ = 0;
};

/// Unix-domain-socket front end: accepts connections, reads NDJSON lines,
/// writes responses back on the same connection (interleaved in completion
/// order, matched by id). One reader thread per connection; writes are
/// serialized per connection.
class SocketServer {
 public:
  SocketServer(BatchService& service, std::string socket_path);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Bind + listen + spawn the accept loop. Throws std::runtime_error with
  /// errno context on bind/listen failure.
  void start();

  /// Stop accepting, unblock idle readers (shutdown the read side of every
  /// live connection, so a client that never closes cannot hang shutdown),
  /// join them, unlink the socket path. Idempotent. Write sides stay open:
  /// requests already admitted keep running and their responses are still
  /// delivered during the BatchService::drain that follows.
  void stop();

 private:
  /// Shared between the reader thread, every in-flight response sink, and
  /// stop(); owns the fd (closed when the last holder lets go). Defined in
  /// server.cpp.
  struct ConnState;
  struct Connection {
    std::thread reader;
    std::shared_ptr<ConnState> state;
  };

  void accept_loop();
  void connection_loop(std::shared_ptr<ConnState> state);
  void reap_finished_locked();  ///< joins done readers; needs conn_mutex_

  BatchService& service_;
  std::string path_;
  int listen_fd_ = -1;
  std::thread acceptor_;
  std::atomic<bool> stopping_{false};
  std::mutex conn_mutex_;
  std::vector<Connection> connections_;
};

}  // namespace pdn3d::service
