#include "pdn/stack_model.hpp"

namespace pdn3d::pdn {

std::string to_string(ElementKind k) {
  switch (k) {
    case ElementKind::kMesh: return "mesh";
    case ElementKind::kVia: return "via";
    case ElementKind::kTsv: return "tsv";
    case ElementKind::kF2fVia: return "f2f-via";
    case ElementKind::kC4: return "c4";
    case ElementKind::kRdlVia: return "rdl-via";
  }
  return "?";
}

std::size_t StackModel::add_grid(LayerGrid grid) {
  grid.base = node_count_;
  node_count_ += grid.size();
  grids_.push_back(grid);
  return grids_.size() - 1;
}

void StackModel::add_resistor(std::size_t a, std::size_t b, double ohms, ElementKind kind) {
  if (a >= node_count_ || b >= node_count_) throw std::out_of_range("StackModel::add_resistor");
  if (a == b) throw std::invalid_argument("StackModel::add_resistor: self-loop");
  if (ohms <= 0.0) throw std::invalid_argument("StackModel::add_resistor: non-positive R");
  resistors_.push_back({a, b, ohms, kind});
}

void StackModel::add_tap(std::size_t node, double ohms) {
  if (node >= node_count_) throw std::out_of_range("StackModel::add_tap");
  if (ohms <= 0.0) throw std::invalid_argument("StackModel::add_tap: non-positive R");
  taps_.push_back({node, ohms});
}

void StackModel::perturb_resistor(std::size_t index, double ohms) {
  if (index >= resistors_.size()) throw std::out_of_range("StackModel::perturb_resistor");
  resistors_[index].ohms = ohms;
}

void StackModel::perturb_tap(std::size_t index, double ohms) {
  if (index >= taps_.size()) throw std::out_of_range("StackModel::perturb_tap");
  taps_[index].ohms = ohms;
}

bool StackModel::has_grid(int die, int layer) const {
  for (const auto& g : grids_) {
    if (g.die == die && g.layer == layer) return true;
  }
  return false;
}

const LayerGrid& StackModel::grid(int die, int layer) const {
  for (const auto& g : grids_) {
    if (g.die == die && g.layer == layer) return g;
  }
  throw std::out_of_range("StackModel::grid: no grid for die/layer");
}

}  // namespace pdn3d::pdn
