#pragma once

/// @file stack_builder.hpp
/// @brief Assembles the full 3D-stack R-Mesh from a structural spec and a
/// design-point configuration.
///
/// The builder realizes every design/packaging option of the paper:
///  - per-layer stripe meshes sized by VDD metal usage,
///  - C4/BGA supply taps and the package power plane,
///  - TSV interfaces (center / edge / distributed, aligned or uniform-pitch),
///  - dedicated via-last TSVs that bypass the logic PDN,
///  - F2B vs F2F+B2B bonding (dense F2F via fields -> PDN sharing),
///  - backside RDL (bottom-only or on all dies) with edge taps,
///  - backside wire bonding to the package supply.

#include "floorplan/dram_floorplan.hpp"
#include "floorplan/floorplan.hpp"
#include "pdn/pdn_config.hpp"
#include "pdn/stack_model.hpp"
#include "tech/technology.hpp"

namespace pdn3d::pdn {

/// Structural description of a benchmark stack (what does not change across
/// design points).
struct StackSpec {
  floorplan::Floorplan dram_fp;
  floorplan::DramFloorplanSpec dram_spec;
  int num_dram_dies = 4;
  floorplan::Floorplan logic_fp;  ///< consulted only when mounting is on-chip
  tech::Technology tech;
  double grid_pitch = 0.30;      ///< mm, die mesh node pitch
  double c4_pitch = 0.80;        ///< mm, VDD C4 bump grid pitch
  double bga_pitch = 1.20;       ///< mm, VDD package ball pitch
  double package_margin = 1.0;   ///< mm, package beyond the largest die
  int wirebond_pads_per_side = 4;
  int rdl_edge_pads_per_side = 8;
};

/// Diagnostics captured while building (Figure 5 reports the average
/// C4-to-TSV distance).
struct BuildInfo {
  double avg_c4_tsv_distance_mm = 0.0;  ///< bottom-interface sites vs C4 grid
  int tsvs_per_interface = 0;
  std::size_t node_count = 0;
  std::size_t resistor_count = 0;
};

struct BuiltStack {
  StackModel model;
  BuildInfo info;
};

/// Build the R-Mesh for @p spec at design point @p config.
/// Throws std::invalid_argument on inconsistent option combinations.
BuiltStack build_stack(const StackSpec& spec, const PdnConfig& config);

/// Build a single-die (2D) DRAM R-Mesh -- used by the Figure 4 validation
/// flow. @p refine multiplies mesh density (refine=2 halves the pitch).
StackModel build_single_die(const StackSpec& spec, const PdnConfig& config, int refine = 1);

}  // namespace pdn3d::pdn
