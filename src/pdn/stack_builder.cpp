#include "pdn/stack_builder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pdn/tsv_planner.hpp"

namespace pdn3d::pdn {

namespace {

constexpr int kRdlLayer = 2;  ///< DRAM RDL layer index (0 = M2, 1 = M3)

/// Grid dimensions for a die of w x h at the given pitch. The trailing
/// usage/thickness pair records the EM cross-section geometry the mesh will
/// be stamped with (see LayerGrid::vdd_usage).
LayerGrid make_grid(int die, int layer, std::string name, double w, double h, double pitch,
                    double off_x, double off_y, double usage, double thickness_um) {
  LayerGrid g;
  g.die = die;
  g.layer = layer;
  g.name = std::move(name);
  g.nx = std::max(2, static_cast<int>(std::lround(w / pitch)));
  g.ny = std::max(2, static_cast<int>(std::lround(h / pitch)));
  g.dx = w / g.nx;
  g.dy = h / g.ny;
  g.x0 = off_x;
  g.y0 = off_y;
  g.vdd_usage = usage;
  g.thickness_um = thickness_um;
  return g;
}

/// Stamp the in-plane stripe mesh of one layer.
void add_layer_mesh(StackModel& m, const LayerGrid& g, tech::RouteDirection dir,
                    double rs_over_usage) {
  const bool horizontal =
      dir == tech::RouteDirection::kHorizontal || dir == tech::RouteDirection::kOmni;
  const bool vertical =
      dir == tech::RouteDirection::kVertical || dir == tech::RouteDirection::kOmni;
  // A bundle of stripes of total width (usage * cell_height) and length dx
  // has R = Rs * dx / (usage * dy); symmetrically for vertical.
  const double r_h = rs_over_usage * g.dx / g.dy;
  const double r_v = rs_over_usage * g.dy / g.dx;
  for (int j = 0; j < g.ny; ++j) {
    for (int i = 0; i < g.nx; ++i) {
      if (horizontal && i + 1 < g.nx) m.add_resistor(g.node(i, j), g.node(i + 1, j), r_h);
      if (vertical && j + 1 < g.ny) m.add_resistor(g.node(i, j), g.node(i, j + 1), r_v);
    }
  }
}

/// Connect two same-die layers with a via array at every node.
void add_via_array(StackModel& m, const LayerGrid& lo, const LayerGrid& hi, double via_r) {
  for (int j = 0; j < lo.ny; ++j) {
    for (int i = 0; i < lo.nx; ++i) {
      const auto p = lo.position(i, j);
      m.add_resistor(lo.node(i, j), hi.nearest(p.x, p.y), via_r, ElementKind::kVia);
    }
  }
}

struct Frame {
  double off_x = 0.0;
  double off_y = 0.0;

  [[nodiscard]] floorplan::Point to_global(floorplan::Point p) const {
    return {p.x + off_x, p.y + off_y};
  }
};

std::vector<floorplan::Point> to_global(const std::vector<floorplan::Point>& pts,
                                        const Frame& frame) {
  std::vector<floorplan::Point> out;
  out.reserve(pts.size());
  for (const auto& p : pts) out.push_back(frame.to_global(p));
  return out;
}

}  // namespace

BuiltStack build_stack(const StackSpec& spec, const PdnConfig& config) {
  if (config.tsv_count < 1) throw std::invalid_argument("build_stack: tsv_count must be >= 1");
  if (spec.num_dram_dies < 1) throw std::invalid_argument("build_stack: need at least one die");

  PDN3D_TRACE_SPAN_NAMED(span, "pdn/build_stack");
  static auto& m_builds = obs::counter("pdn.stacks_built");
  m_builds.add(1);

  const bool on_chip = config.mounting == Mounting::kOnChip;
  const tech::Technology& tech = spec.tech;
  const tech::InterconnectTech& ic = tech.interconnect;

  const double dram_w = spec.dram_fp.width();
  const double dram_h = spec.dram_fp.height();
  const double logic_w = spec.logic_fp.width();
  const double logic_h = spec.logic_fp.height();

  const double base_w = on_chip ? logic_w : dram_w;
  const double base_h = on_chip ? logic_h : dram_h;
  const double pkg_w = base_w + 2.0 * spec.package_margin;
  const double pkg_h = base_h + 2.0 * spec.package_margin;

  const Frame pkg_frame{0.0, 0.0};
  const Frame logic_frame{(pkg_w - logic_w) * 0.5, (pkg_h - logic_h) * 0.5};
  const Frame dram_frame{(pkg_w - dram_w) * 0.5, (pkg_h - dram_h) * 0.5};

  StackModel model(tech.dram.vdd);
  model.set_dram_die_count(spec.num_dram_dies);

  // ---- Phase 1: create every layer grid (node-id layout is fixed after this;
  // references into the model stay valid from here on). ----------------------
  const double pkg_pitch = spec.grid_pitch * 2.0;
  model.add_grid(make_grid(kPackageDie, 0, "pkg/plane", pkg_w, pkg_h, pkg_pitch, 0.0, 0.0, 1.0,
                           tech.em.package_thickness_um));

  const int logic_layers = static_cast<int>(tech.logic.layer_count());
  if (on_chip) {
    for (int l = 0; l < logic_layers; ++l) {
      const auto& ml = tech.logic.layer(static_cast<std::size_t>(l));
      model.add_grid(make_grid(kLogicDie, l, "logic/" + ml.name, logic_w, logic_h,
                               spec.grid_pitch, logic_frame.off_x, logic_frame.off_y,
                               ml.default_vdd_usage, ml.thickness_um));
    }
  }

  const auto die_has_rdl = [&](int d) {
    return config.rdl == RdlMode::kAllDies || (config.rdl == RdlMode::kBottomOnly && d == 0);
  };
  for (int d = 0; d < spec.num_dram_dies; ++d) {
    const auto& l2 = tech.dram.layer(0);
    const auto& l3 = tech.dram.layer(1);
    model.add_grid(make_grid(d, 0, "dram" + std::to_string(d + 1) + "/" + l2.name, dram_w, dram_h,
                             spec.grid_pitch, dram_frame.off_x, dram_frame.off_y,
                             config.effective_m2(), l2.thickness_um));
    model.add_grid(make_grid(d, 1, "dram" + std::to_string(d + 1) + "/" + l3.name, dram_w, dram_h,
                             spec.grid_pitch, dram_frame.off_x, dram_frame.off_y,
                             config.effective_m3(), l3.thickness_um));
    if (die_has_rdl(d)) {
      model.add_grid(make_grid(d, kRdlLayer, "dram" + std::to_string(d + 1) + "/RDL", dram_w,
                               dram_h, spec.grid_pitch, dram_frame.off_x, dram_frame.off_y,
                               ic.rdl_vdd_usage, tech.em.rdl_thickness_um));
    }
  }

  // ---- Phase 2: stamp in-plane meshes, vias, and supply taps ---------------
  const LayerGrid& pkg_grid = model.grid(kPackageDie, 0);
  add_layer_mesh(model, pkg_grid, tech::RouteDirection::kOmni, ic.package_sheet_resistance);
  for (const auto& ball : to_global(c4_grid(pkg_w, pkg_h, spec.bga_pitch), pkg_frame)) {
    model.add_tap(pkg_grid.nearest(ball.x, ball.y), ic.c4_resistance);
  }

  if (on_chip) {
    for (int l = 0; l < logic_layers; ++l) {
      const auto& ml = tech.logic.layer(static_cast<std::size_t>(l));
      add_layer_mesh(model, model.grid(kLogicDie, l), ml.direction,
                     ml.segment_resistance(ml.default_vdd_usage));
    }
    for (int l = 0; l + 1 < logic_layers; ++l) {
      add_via_array(model, model.grid(kLogicDie, l), model.grid(kLogicDie, l + 1),
                    tech.logic.via_resistance);
    }
    const LayerGrid& logic_top = model.grid(kLogicDie, logic_layers - 1);
    for (const auto& bump : to_global(c4_grid(logic_w, logic_h, spec.c4_pitch), logic_frame)) {
      model.add_resistor(pkg_grid.nearest(bump.x, bump.y), logic_top.nearest(bump.x, bump.y),
                         ic.logic_c4_resistance, ElementKind::kC4);
    }
  }

  const double m2 = config.effective_m2();
  const double m3 = config.effective_m3();
  for (int d = 0; d < spec.num_dram_dies; ++d) {
    const auto& l2 = tech.dram.layer(0);
    const auto& l3 = tech.dram.layer(1);
    add_layer_mesh(model, model.grid(d, 0), l2.direction, l2.segment_resistance(m2));
    add_layer_mesh(model, model.grid(d, 1), l3.direction, l3.segment_resistance(m3));
    add_via_array(model, model.grid(d, 0), model.grid(d, 1), tech.dram.via_resistance);
    if (die_has_rdl(d)) {
      add_layer_mesh(model, model.grid(d, kRdlLayer), tech::RouteDirection::kOmni,
                     ic.rdl_sheet_resistance / ic.rdl_vdd_usage);
    }
  }

  // ---- Phase 3: TSV planning ------------------------------------------------
  const bool want_logic_pattern =
      config.rdl != RdlMode::kNone && config.logic_tsv_location != config.tsv_location;
  const std::vector<floorplan::Point> mem_sites_local =
      plan_tsv_sites(spec.dram_fp, config.tsv_location, config.tsv_count);
  const std::vector<floorplan::Point> bottom_sites_local =
      want_logic_pattern
          ? plan_tsv_sites(spec.dram_fp, config.logic_tsv_location, config.tsv_count)
          : mem_sites_local;

  std::vector<floorplan::Point> mem_sites = to_global(mem_sites_local, dram_frame);
  std::vector<floorplan::Point> bottom_sites = to_global(bottom_sites_local, dram_frame);

  // The C4 field the bottom interface must reach: logic-die C4s when mounted
  // on logic, package balls when off-chip.
  const std::vector<floorplan::Point> c4_global =
      on_chip ? to_global(c4_grid(logic_w, logic_h, spec.c4_pitch), logic_frame)
              : to_global(c4_grid(pkg_w, pkg_h, spec.bga_pitch), pkg_frame);

  BuildInfo info;
  info.tsvs_per_interface = config.tsv_count;
  // Alignment only matters at the supply-entry interface: upper die-to-die
  // TSVs land on each other by construction. An aligned design co-places each
  // bottom TSV with a C4 bump (zero lateral detour); a uniform-pitch design
  // pays a detour resistance through the receiving die's fine local wiring,
  // proportional to the TSV's nearest-C4 distance (Section 3.2 / Figure 5).
  // TSV positions themselves stay fixed by the DRAM pad pattern.
  std::vector<double> bottom_penalty(bottom_sites.size(), 0.0);
  if (!config.align_tsvs_to_c4) {
    const double ohm_per_mm =
        on_chip ? ic.misalign_detour_ohm_per_mm : ic.package_detour_ohm_per_mm;
    for (std::size_t i = 0; i < bottom_sites.size(); ++i) {
      const double dist = average_c4_distance({bottom_sites[i]}, c4_global);
      bottom_penalty[i] = ohm_per_mm * dist;
    }
    info.avg_c4_tsv_distance_mm = average_c4_distance(bottom_sites, c4_global);
  }

  // ---- Phase 4: bottom interface (supply entry into DRAM1) ------------------
  // Lands on DRAM1's RDL when one is present, otherwise on M3.
  const LayerGrid& dram0_entry =
      die_has_rdl(0) ? model.grid(0, kRdlLayer) : model.grid(0, 1);
  const bool f2f = config.bonding == BondingStyle::kF2F;

  if (on_chip && !config.dedicated_tsvs) {
    // Power rides the logic PDN, then PG TSVs through the logic die. With
    // F2F, DRAM1 is flipped face-up, so the path adds DRAM1's own TSVs.
    const LayerGrid& logic_top = model.grid(kLogicDie, logic_layers - 1);
    const double r_bottom =
        ic.tsv_resistance + ic.microbump_resistance + (f2f ? 0.7 * ic.tsv_resistance : 0.0);
    for (std::size_t i = 0; i < bottom_sites.size(); ++i) {
      const auto& s = bottom_sites[i];
      model.add_resistor(logic_top.nearest(s.x, s.y), dram0_entry.nearest(s.x, s.y),
                         r_bottom + bottom_penalty[i], ElementKind::kTsv);
    }
  } else if (on_chip && config.dedicated_tsvs) {
    // Via-last dedicated TSVs: C4 pad straight to the DRAM stack, fully
    // decoupled from the logic mesh.
    const double r_bottom = ic.logic_c4_resistance + ic.dedicated_tsv_resistance +
                            ic.microbump_resistance + (f2f ? 0.7 * ic.tsv_resistance : 0.0);
    for (std::size_t i = 0; i < bottom_sites.size(); ++i) {
      const auto& s = bottom_sites[i];
      model.add_resistor(pkg_grid.nearest(s.x, s.y), dram0_entry.nearest(s.x, s.y),
                         r_bottom + bottom_penalty[i], ElementKind::kTsv);
    }
  } else {
    // Off-chip: flip-chip bumps from the package plane.
    const double r_bottom = ic.c4_resistance + (f2f ? 0.7 * ic.tsv_resistance : 0.0);
    for (std::size_t i = 0; i < bottom_sites.size(); ++i) {
      const auto& s = bottom_sites[i];
      model.add_resistor(pkg_grid.nearest(s.x, s.y), dram0_entry.nearest(s.x, s.y),
                         r_bottom + bottom_penalty[i], ElementKind::kC4);
    }
  }

  // RDL -> M3 backside-pad vias (at memory TSV sites and an edge pad ring).
  {
    std::vector<floorplan::Point> rdl_taps_local = mem_sites_local;
    const auto ring = edge_pad_ring(spec.dram_fp, spec.rdl_edge_pads_per_side);
    rdl_taps_local.insert(rdl_taps_local.end(), ring.begin(), ring.end());
    const auto rdl_taps = to_global(rdl_taps_local, dram_frame);
    for (int d = 0; d < spec.num_dram_dies; ++d) {
      if (!model.has_grid(d, kRdlLayer)) continue;
      const LayerGrid& rdl = model.grid(d, kRdlLayer);
      const LayerGrid& m3g = model.grid(d, 1);
      for (const auto& p : rdl_taps) {
        model.add_resistor(rdl.nearest(p.x, p.y), m3g.nearest(p.x, p.y), ic.rdl_via_resistance,
                           ElementKind::kRdlVia);
      }
    }
  }

  // ---- Phase 5: die-to-die interfaces ---------------------------------------
  for (int d = 0; d + 1 < spec.num_dram_dies; ++d) {
    const bool pair_internal = f2f && (d % 2 == 0);
    const LayerGrid& lower = model.grid(d, 1);
    const bool land_on_rdl = model.has_grid(d + 1, kRdlLayer) && !pair_internal;
    const LayerGrid& upper = land_on_rdl ? model.grid(d + 1, kRdlLayer) : model.grid(d + 1, 1);

    if (pair_internal) {
      // Dense F2F via field: PDN sharing across the whole pair.
      for (int j = 0; j < lower.ny; ++j) {
        for (int i = 0; i < lower.nx; ++i) {
          const auto p = lower.position(i, j);
          model.add_resistor(lower.node(i, j), upper.nearest(p.x, p.y), ic.f2f_via_resistance,
                             ElementKind::kF2fVia);
        }
      }
    } else {
      // F2B interface: TSVs through the lower die + micro-bumps. Between F2F
      // pairs the path crosses both dies' TSVs (B2B), but those dies are
      // thinned aggressively for the F2F flow, so each TSV is shorter.
      const double r = f2f ? 1.4 * ic.tsv_resistance + ic.microbump_resistance
                           : ic.tsv_resistance + ic.microbump_resistance;
      for (const auto& s : mem_sites) {
        model.add_resistor(lower.nearest(s.x, s.y), upper.nearest(s.x, s.y), r,
                           ElementKind::kTsv);
      }
    }
  }

  // ---- Phase 6: backside wire bonding ---------------------------------------
  // Backside metallization forms bond pads over the PG TSV landing pattern,
  // so each wire reaches the die PDN through the same vertical entry points
  // the TSVs use (Figure 7). A limited number of wires fits along the stack
  // faces; sample the TSV sites evenly.
  if (config.wire_bonding) {
    const int wires_per_die = 4 * spec.wirebond_pads_per_side;
    std::vector<floorplan::Point> pads;
    if (static_cast<int>(mem_sites.size()) <= wires_per_die) {
      pads = mem_sites;
    } else {
      const double step = static_cast<double>(mem_sites.size()) / wires_per_die;
      for (int k = 0; k < wires_per_die; ++k) {
        pads.push_back(mem_sites[static_cast<std::size_t>(k * step)]);
      }
    }
    for (int d = 0; d < spec.num_dram_dies; ++d) {
      const LayerGrid& attach =
          model.has_grid(d, kRdlLayer) ? model.grid(d, kRdlLayer) : model.grid(d, 1);
      // Wires run down the stack face to the package; higher dies need
      // longer wires. The backside-pad via is in series.
      const double r_wire =
          ic.wirebond_resistance * (1.0 + 0.08 * static_cast<double>(d)) + ic.rdl_via_resistance;
      for (const auto& p : pads) {
        model.add_tap(attach.nearest(p.x, p.y), r_wire);
      }
    }
  }

  info.node_count = model.node_count();
  info.resistor_count = model.resistors().size();
  obs::gauge("pdn.node_count").set(static_cast<double>(info.node_count));
  obs::gauge("pdn.resistor_count").set(static_cast<double>(info.resistor_count));
  obs::gauge("pdn.tap_count").set(static_cast<double>(model.taps().size()));
  span.attribute("nodes", static_cast<std::uint64_t>(info.node_count));
  span.attribute("resistors", static_cast<std::uint64_t>(info.resistor_count));
  return BuiltStack{std::move(model), info};
}

StackModel build_single_die(const StackSpec& spec, const PdnConfig& config, int refine) {
  if (refine < 1) throw std::invalid_argument("build_single_die: refine must be >= 1");
  const tech::Technology& tech = spec.tech;
  const tech::InterconnectTech& ic = tech.interconnect;
  const double w = spec.dram_fp.width();
  const double h = spec.dram_fp.height();
  const double pitch = spec.grid_pitch / refine;

  StackModel model(tech.dram.vdd);
  model.set_dram_die_count(1);

  const auto& l2 = tech.dram.layer(0);
  const auto& l3 = tech.dram.layer(1);
  model.add_grid(make_grid(0, 0, "die/" + l2.name, w, h, pitch, 0.0, 0.0,
                           config.effective_m2(), l2.thickness_um));
  model.add_grid(make_grid(0, 1, "die/" + l3.name, w, h, pitch, 0.0, 0.0,
                           config.effective_m3(), l3.thickness_um));
  add_layer_mesh(model, model.grid(0, 0), l2.direction,
                 l2.segment_resistance(config.effective_m2()));
  add_layer_mesh(model, model.grid(0, 1), l3.direction,
                 l3.segment_resistance(config.effective_m3()));
  // Refined meshes put `refine^2` cells under one coarse cell; scale the
  // per-node via array so total via conductance per area is preserved.
  add_via_array(model, model.grid(0, 0), model.grid(0, 1),
                tech.dram.via_resistance * refine * refine);

  // 2D die on a package: supply pads where the TSVs would be.
  const auto sites = plan_tsv_sites(spec.dram_fp, config.tsv_location, config.tsv_count);
  const LayerGrid& m3g = model.grid(0, 1);
  for (const auto& s : sites) {
    model.add_tap(m3g.nearest(s.x, s.y), ic.c4_resistance);
  }
  return model;
}

}  // namespace pdn3d::pdn
