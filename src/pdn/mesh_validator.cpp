#include "pdn/mesh_validator.hpp"

#include <cmath>
#include <numeric>
#include <sstream>
#include <vector>

namespace pdn3d::pdn {

namespace {

/// Union-find over node ids (path halving + union by size).
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

std::string fmt_value(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// "nodes 5, 9, 12 (+17 more)" -- keep reports short on large meshes.
std::string fmt_node_list(const std::vector<std::size_t>& nodes, std::size_t limit = 3) {
  std::ostringstream os;
  for (std::size_t i = 0; i < nodes.size() && i < limit; ++i) {
    if (i > 0) os << ", ";
    os << nodes[i];
  }
  if (nodes.size() > limit) os << " (+" << nodes.size() - limit << " more)";
  return os.str();
}

}  // namespace

core::ValidationReport validate_stack_model(const StackModel& model) {
  core::ValidationReport report;
  const std::size_t n = model.node_count();
  if (n == 0) {
    report.add_error("empty-model", "stack model has no nodes");
    return report;
  }

  // Element-value checks. The add_* methods reject these at insertion time,
  // but meshes can also arrive perturbed (fault injection, future file
  // loaders), so validation re-checks everything it depends on.
  for (std::size_t i = 0; i < model.resistors().size(); ++i) {
    const Resistor& r = model.resistors()[i];
    if (r.a >= n || r.b >= n) {
      report.add_error("resistor-node-range",
                       "resistor " + std::to_string(i) + " references node out of range");
      continue;
    }
    if (!std::isfinite(r.ohms)) {
      report.add_error("non-finite-conductance",
                       "resistor " + std::to_string(i) + " has non-finite resistance " +
                           fmt_value(r.ohms), r.a);
    } else if (r.ohms <= 0.0) {
      report.add_error("non-positive-conductance",
                       "resistor " + std::to_string(i) + " has non-positive resistance " +
                           fmt_value(r.ohms) + " ohm", r.a);
    }
  }

  if (model.taps().empty()) {
    report.add_error("no-supply-taps", "no supply taps -- the nodal system is singular");
  }
  for (std::size_t i = 0; i < model.taps().size(); ++i) {
    const SupplyTap& t = model.taps()[i];
    if (t.node >= n) {
      report.add_error("tap-node-range",
                       "tap " + std::to_string(i) + " references node out of range");
      continue;
    }
    if (!std::isfinite(t.ohms)) {
      report.add_error("non-finite-tap", "tap " + std::to_string(i) +
                           " has non-finite resistance " + fmt_value(t.ohms), t.node);
    } else if (t.ohms <= 0.0) {
      report.add_error("non-positive-tap", "tap " + std::to_string(i) +
                           " has non-positive resistance " + fmt_value(t.ohms) + " ohm",
                       t.node);
    }
  }

  if (!std::isfinite(model.vdd()) || model.vdd() <= 0.0) {
    report.add_error("non-positive-vdd", "VDD is " + fmt_value(model.vdd()));
  }

  // Connectivity: every node must have a resistive path to some supply tap,
  // or its row of the conductance matrix is decoupled from the boundary
  // condition and the system is singular. Resistors connect topologically
  // regardless of their (possibly defective) value -- a bad value is already
  // reported above; here we only ask "is there a path at all".
  DisjointSets components(n);
  for (const Resistor& r : model.resistors()) {
    if (r.a < n && r.b < n) components.unite(r.a, r.b);
  }
  std::vector<char> tapped(n, 0);
  for (const SupplyTap& t : model.taps()) {
    if (t.node < n) tapped[components.find(t.node)] = 1;
  }
  std::vector<std::size_t> floating;
  for (std::size_t i = 0; i < n; ++i) {
    if (!tapped[components.find(i)]) floating.push_back(i);
  }
  if (!floating.empty() && !model.taps().empty()) {
    report.add_error("floating-node",
                     std::to_string(floating.size()) + " node(s) have no path to any supply "
                         "tap: nodes " + fmt_node_list(floating),
                     floating.front());
  }

  // Per-die check: a die whose device grid is entirely floating (zero-tap
  // die) deserves a dedicated, design-level message on top of the node ids.
  for (const LayerGrid& g : model.grids()) {
    if (g.layer != 0 || g.size() == 0) continue;
    bool any_supplied = model.taps().empty() ? false : true;
    if (!floating.empty()) {
      any_supplied = false;
      for (std::size_t k = 0; k < g.size() && !any_supplied; ++k) {
        if (tapped[components.find(g.base + k)]) any_supplied = true;
      }
    }
    if (!any_supplied && !model.taps().empty()) {
      report.add_error("floating-die",
                       "device grid of die " + std::to_string(g.die) +
                           " has no path to the supply (zero-tap die)");
    }
  }

  return report;
}

core::ValidationReport validate_injection(const StackModel& model,
                                          std::span<const double> sinks) {
  core::ValidationReport report;
  if (sinks.size() != model.node_count()) {
    report.add_error("injection-size",
                     "sink vector has " + std::to_string(sinks.size()) + " entries, model has " +
                         std::to_string(model.node_count()) + " nodes");
    return report;
  }
  std::vector<std::size_t> non_finite;
  std::vector<std::size_t> negative;
  for (std::size_t i = 0; i < sinks.size(); ++i) {
    if (!std::isfinite(sinks[i])) non_finite.push_back(i);
    else if (sinks[i] < 0.0) negative.push_back(i);
  }
  if (!non_finite.empty()) {
    report.add_error("non-finite-injection",
                     std::to_string(non_finite.size()) + " sink current(s) are NaN/Inf: nodes " +
                         fmt_node_list(non_finite),
                     non_finite.front());
  }
  if (!negative.empty()) {
    report.add_warning("negative-injection",
                       std::to_string(negative.size()) + " sink current(s) are negative "
                           "(current injected into the rail): nodes " + fmt_node_list(negative),
                       negative.front());
  }
  return report;
}

}  // namespace pdn3d::pdn
