#pragma once

/// @file tsv_planner.hpp
/// @brief PG TSV and bump-site placement.
///
/// Produces TSV (x, y) sites in the DRAM die's local frame for the three
/// location policies (center cluster, edge rows, distributed field), plus C4
/// bump grids, and the alignment snapping studied in Figure 5.

#include <vector>

#include "floorplan/floorplan.hpp"
#include "floorplan/geometry.hpp"
#include "pdn/pdn_config.hpp"

namespace pdn3d::pdn {

/// TSV sites for @p count TSVs on a die of the given floorplan, in die-local
/// coordinates.
///  - kEdge: two rows along the top and bottom edges.
///  - kCenter: a compact grid filling the center I/O block.
///  - kDistributed: a uniform field across the whole die.
std::vector<floorplan::Point> plan_tsv_sites(const floorplan::Floorplan& fp, TsvLocation location,
                                             int count);

/// Uniform VDD C4/bump grid of the given pitch covering @p width x @p height
/// (local frame), inset by half a pitch.
std::vector<floorplan::Point> c4_grid(double width, double height, double pitch);

/// Snap each site to the nearest point of @p c4 (both in the same frame).
/// Multiple TSVs may snap to the same bump -- the paper's "TSVs near C4
/// bumps" placement, which shortens the lateral detour in the receiving mesh.
std::vector<floorplan::Point> align_to_c4(const std::vector<floorplan::Point>& sites,
                                          const std::vector<floorplan::Point>& c4);

/// Mean nearest-C4 distance of @p sites -- the paper's "average C4-to-TSV
/// distance" metric.
double average_c4_distance(const std::vector<floorplan::Point>& sites,
                           const std::vector<floorplan::Point>& c4);

/// Edge pad ring sites (used by RDL edge taps and wire-bond pads): @p per_side
/// pads along the left and right die edges.
std::vector<floorplan::Point> edge_pad_ring(const floorplan::Floorplan& fp, int per_side);

}  // namespace pdn3d::pdn
