#pragma once

/// @file layer_grid.hpp
/// @brief One metal layer discretized as a rectangular node grid.

#include <cstddef>
#include <string>
#include <vector>

#include "floorplan/geometry.hpp"

namespace pdn3d::pdn {

/// Die codes used by the stack model: DRAM dies are 0..n-1 from the bottom,
/// the host logic die and the package plane get negative codes.
inline constexpr int kLogicDie = -1;
inline constexpr int kPackageDie = -2;

/// Cell-centered grid over [x0, x0+nx*dx] x [y0, y0+ny*dy] in the global
/// (package-centered) frame. Node (i, j) sits at
/// (x0 + (i+0.5)*dx, y0 + (j+0.5)*dy). Node ids are contiguous from `base`.
struct LayerGrid {
  int die = 0;       ///< die code (see above)
  int layer = 0;     ///< layer index within the die, 0 = closest to devices
  std::string name;  ///< e.g. "dram2/M3"
  int nx = 0;
  int ny = 0;
  double x0 = 0.0;
  double y0 = 0.0;
  double dx = 0.0;
  double dy = 0.0;
  std::size_t base = 0;

  /// EM cross-section geometry, recorded by the stack builder: the VDD metal
  /// fraction its mesh was stamped with and the conductor thickness. A mesh
  /// segment along x carries current through a bundle of total width
  /// vdd_usage * dy (mm), so its cross-section is
  /// vdd_usage * dy * 1000 * thickness_um um^2 (symmetrically along y).
  double vdd_usage = 0.0;
  double thickness_um = 0.0;

  [[nodiscard]] std::size_t size() const {
    return static_cast<std::size_t>(nx) * static_cast<std::size_t>(ny);
  }

  [[nodiscard]] std::size_t node(int i, int j) const;

  [[nodiscard]] floorplan::Point position(int i, int j) const;

  /// Node nearest to global point (x, y), clamped to the grid.
  [[nodiscard]] std::size_t nearest(double x, double y) const;

  /// Nodes whose cell centers fall inside @p r (global frame); when none do,
  /// returns the single nearest node to the rect center.
  [[nodiscard]] std::vector<std::size_t> nodes_in(const floorplan::Rect& r) const;
};

}  // namespace pdn3d::pdn
