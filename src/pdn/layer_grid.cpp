#include "pdn/layer_grid.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace pdn3d::pdn {

std::size_t LayerGrid::node(int i, int j) const {
  if (i < 0 || i >= nx || j < 0 || j >= ny) throw std::out_of_range("LayerGrid::node");
  return base + static_cast<std::size_t>(j) * static_cast<std::size_t>(nx) +
         static_cast<std::size_t>(i);
}

floorplan::Point LayerGrid::position(int i, int j) const {
  return {x0 + (static_cast<double>(i) + 0.5) * dx, y0 + (static_cast<double>(j) + 0.5) * dy};
}

std::size_t LayerGrid::nearest(double x, double y) const {
  const int i = std::clamp(static_cast<int>(std::floor((x - x0) / dx)), 0, nx - 1);
  const int j = std::clamp(static_cast<int>(std::floor((y - y0) / dy)), 0, ny - 1);
  return node(i, j);
}

std::vector<std::size_t> LayerGrid::nodes_in(const floorplan::Rect& r) const {
  std::vector<std::size_t> out;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      if (r.contains(position(i, j))) out.push_back(node(i, j));
    }
  }
  if (out.empty()) {
    const auto c = r.center();
    out.push_back(nearest(c.x, c.y));
  }
  return out;
}

}  // namespace pdn3d::pdn
