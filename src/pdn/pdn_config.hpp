#pragma once

/// @file pdn_config.hpp
/// @brief The design/packaging knobs the paper co-optimizes (Table 8).

#include <string>

namespace pdn3d::pdn {

/// Where PG TSVs are placed on the DRAM dies (Table 8 "TSV location").
enum class TsvLocation {
  kCenter,       ///< compact cluster in the center I/O region (lowest cost)
  kEdge,         ///< rows along the top/bottom die edges (needs KOZ, costly)
  kDistributed,  ///< uniform field between banks (HMC style, costliest)
};

/// Die bonding style. kF2F means F2F within die pairs (1,2) and (3,4) with
/// B2B between pairs -- the paper's "F2F+B2B".
enum class BondingStyle { kF2B, kF2F };

/// Whether the DRAM stack sits on its own substrate or on the host logic die.
enum class Mounting { kOffChip, kOnChip };

/// Redistribution-layer options (Figure 6).
enum class RdlMode {
  kNone,
  kBottomOnly,  ///< RDL between logic/package and the bottom DRAM die
  kAllDies,     ///< backside RDL on every DRAM die
};

[[nodiscard]] std::string to_string(TsvLocation l);
[[nodiscard]] std::string to_string(BondingStyle b);
[[nodiscard]] std::string to_string(Mounting m);
[[nodiscard]] std::string to_string(RdlMode r);

/// One point in the design/packaging space.
struct PdnConfig {
  double m2_usage = 0.10;  ///< DRAM M2 VDD area fraction (paper range 10-20%)
  double m3_usage = 0.20;  ///< DRAM M3 VDD area fraction (paper range 10-40%)
  int tsv_count = 33;      ///< PG TSVs per die-to-die interface (range 15-480)
  TsvLocation tsv_location = TsvLocation::kEdge;
  /// TSV location on the logic-die side. Only meaningful with an RDL, which
  /// can reroute between mismatched patterns (Figure 6c); otherwise the
  /// builder uses tsv_location on both sides.
  TsvLocation logic_tsv_location = TsvLocation::kEdge;
  bool dedicated_tsvs = false;  ///< via-last TSVs bypassing the logic PDN
  BondingStyle bonding = BondingStyle::kF2B;
  RdlMode rdl = RdlMode::kNone;
  bool wire_bonding = false;  ///< backside bond wires to the package supply
  Mounting mounting = Mounting::kOffChip;
  bool align_tsvs_to_c4 = true;    ///< snap TSVs to the C4 grid (Figure 5)
  double metal_usage_scale = 1.0;  ///< Table 7's "1.5x PDN" multiplier

  [[nodiscard]] double effective_m2() const { return m2_usage * metal_usage_scale; }
  [[nodiscard]] double effective_m3() const { return m3_usage * metal_usage_scale; }

  /// Human-readable one-liner for logs and tables.
  [[nodiscard]] std::string summary() const;
};

}  // namespace pdn3d::pdn
