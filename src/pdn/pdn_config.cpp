#include "pdn/pdn_config.hpp"

#include <sstream>

namespace pdn3d::pdn {

std::string to_string(TsvLocation l) {
  switch (l) {
    case TsvLocation::kCenter: return "C";
    case TsvLocation::kEdge: return "E";
    case TsvLocation::kDistributed: return "D";
  }
  return "?";
}

std::string to_string(BondingStyle b) { return b == BondingStyle::kF2B ? "F2B" : "F2F"; }

std::string to_string(Mounting m) { return m == Mounting::kOffChip ? "off-chip" : "on-chip"; }

std::string to_string(RdlMode r) {
  switch (r) {
    case RdlMode::kNone: return "none";
    case RdlMode::kBottomOnly: return "bottom";
    case RdlMode::kAllDies: return "all";
  }
  return "?";
}

std::string PdnConfig::summary() const {
  std::ostringstream os;
  os << "M2=" << m2_usage * 100.0 << "% M3=" << m3_usage * 100.0 << "% TC=" << tsv_count
     << " TL=" << to_string(tsv_location) << " TD=" << (dedicated_tsvs ? "Y" : "N")
     << " BD=" << to_string(bonding) << " RL=" << to_string(rdl)
     << " WB=" << (wire_bonding ? "Y" : "N") << " " << to_string(mounting);
  if (metal_usage_scale != 1.0) os << " x" << metal_usage_scale;
  return os.str();
}

}  // namespace pdn3d::pdn
