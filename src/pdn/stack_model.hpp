#pragma once

/// @file stack_model.hpp
/// @brief The assembled 3D-stack resistive network (R-Mesh).
///
/// A StackModel is pure topology + element values: layer grids, two-terminal
/// resistors, and supply taps (resistors to the ideal VDD rail). The irdrop
/// module turns it into a linear system and solves it.

#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

#include "pdn/layer_grid.hpp"

namespace pdn3d::pdn {

/// What a resistor element physically is -- used by current-crowding
/// analysis (Section 3.2 cites TSV current crowding) and netlist annotation.
enum class ElementKind {
  kMesh,     ///< in-plane PDN segment
  kVia,      ///< same-die inter-layer via array
  kTsv,      ///< PG TSV at a die-to-die interface
  kF2fVia,   ///< F2F via-field connection
  kC4,       ///< C4 bump / micro-bump interface
  kRdlVia,   ///< RDL backside-pad via
};

[[nodiscard]] std::string to_string(ElementKind k);

struct Resistor {
  std::size_t a = 0;
  std::size_t b = 0;
  double ohms = 0.0;
  ElementKind kind = ElementKind::kMesh;
};

/// Resistor from a node to the ideal VDD supply (package ball, bond wire...).
struct SupplyTap {
  std::size_t node = 0;
  double ohms = 0.0;
};

class StackModel {
 public:
  StackModel() = default;  ///< empty model (for default-constructed holders)
  explicit StackModel(double vdd) : vdd_(vdd) {}

  /// Register a new layer grid; assigns its node-id base. Returns its index.
  std::size_t add_grid(LayerGrid grid);

  void add_resistor(std::size_t a, std::size_t b, double ohms,
                    ElementKind kind = ElementKind::kMesh);
  void add_tap(std::size_t node, double ohms);

  [[nodiscard]] double vdd() const { return vdd_; }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] std::span<const Resistor> resistors() const { return resistors_; }
  [[nodiscard]] std::span<const SupplyTap> taps() const { return taps_; }
  [[nodiscard]] const std::vector<LayerGrid>& grids() const { return grids_; }

  /// Overwrite element values *without* the add-time checks. These exist for
  /// the fault-injection test suite (and defect studies): they let a test
  /// plant a negative via resistance or NaN tap that add_resistor/add_tap
  /// reject, so the downstream validation/solver path can prove it catches
  /// the defect. Not for production model construction.
  void perturb_resistor(std::size_t index, double ohms);
  void perturb_tap(std::size_t index, double ohms);

  [[nodiscard]] bool has_grid(int die, int layer) const;

  /// Grid for (die, layer); throws std::out_of_range when absent.
  [[nodiscard]] const LayerGrid& grid(int die, int layer) const;

  /// Device-layer grid (layer 0) of a die: where current is injected and IR
  /// drop is measured.
  [[nodiscard]] const LayerGrid& device_grid(int die) const { return grid(die, 0); }

  /// Number of DRAM dies (die codes 0..n-1).
  [[nodiscard]] int dram_die_count() const { return dram_die_count_; }
  void set_dram_die_count(int n) { dram_die_count_ = n; }

  [[nodiscard]] bool has_logic() const { return has_grid(kLogicDie, 0); }

 private:
  double vdd_ = 1.0;
  std::size_t node_count_ = 0;
  std::vector<LayerGrid> grids_;
  std::vector<Resistor> resistors_;
  std::vector<SupplyTap> taps_;
  int dram_die_count_ = 0;
};

}  // namespace pdn3d::pdn
