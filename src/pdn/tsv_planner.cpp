#include "pdn/tsv_planner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace pdn3d::pdn {

namespace {

/// Rows x cols factorization of @p count that best matches @p aspect
/// (width/height), then lay the points out evenly inside @p area.
std::vector<floorplan::Point> grid_fill(const floorplan::Rect& area, int count) {
  std::vector<floorplan::Point> out;
  if (count <= 0) return out;
  const double aspect = std::max(1e-9, area.width() / std::max(1e-9, area.height()));
  int best_cols = count;
  double best_err = std::numeric_limits<double>::max();
  for (int cols = 1; cols <= count; ++cols) {
    const int rows = (count + cols - 1) / cols;
    const double err = std::abs(static_cast<double>(cols) / static_cast<double>(rows) - aspect);
    if (err < best_err) {
      best_err = err;
      best_cols = cols;
    }
  }
  const int cols = best_cols;
  const int rows = (count + cols - 1) / cols;
  int placed = 0;
  for (int r = 0; r < rows && placed < count; ++r) {
    for (int c = 0; c < cols && placed < count; ++c) {
      const double x = area.x0 + (static_cast<double>(c) + 0.5) * area.width() / cols;
      const double y = area.y0 + (static_cast<double>(r) + 0.5) * area.height() / rows;
      out.push_back({x, y});
      ++placed;
    }
  }
  return out;
}

}  // namespace

std::vector<floorplan::Point> plan_tsv_sites(const floorplan::Floorplan& fp, TsvLocation location,
                                             int count) {
  if (count <= 0) throw std::invalid_argument("plan_tsv_sites: count must be positive");
  const double w = fp.width();
  const double h = fp.height();
  const double margin = 0.10;

  switch (location) {
    case TsvLocation::kEdge: {
      // Two rows hugging the top and bottom edges (the pad/KOZ ring).
      std::vector<floorplan::Point> out;
      const int bottom = (count + 1) / 2;
      const int top = count - bottom;
      const auto fill_row = [&](int n, double y) {
        for (int i = 0; i < n; ++i) {
          const double x = margin + (static_cast<double>(i) + 0.5) * (w - 2.0 * margin) / n;
          out.push_back({x, y});
        }
      };
      fill_row(bottom, margin * 0.5);
      if (top > 0) fill_row(top, h - margin * 0.5);
      return out;
    }
    case TsvLocation::kCenter: {
      // Fill the center periphery strip (the pad/pump band of a DRAM die);
      // fall back to a centered band if the floorplan has no I/O block.
      const auto io_blocks = fp.blocks_of_type(floorplan::BlockType::kIoBlock);
      floorplan::Rect area;
      if (!io_blocks.empty()) {
        const auto& io = io_blocks.front()->rect;
        area = {w * 0.15, io.y0, w * 0.85, io.y1};
      } else {
        area = {w * 0.15, h * 0.44, w * 0.85, h * 0.56};
      }
      return grid_fill(area, count);
    }
    case TsvLocation::kDistributed: {
      return grid_fill({margin, margin, w - margin, h - margin}, count);
    }
  }
  throw std::logic_error("plan_tsv_sites: unknown location");
}

std::vector<floorplan::Point> c4_grid(double width, double height, double pitch) {
  if (pitch <= 0.0) throw std::invalid_argument("c4_grid: pitch must be positive");
  std::vector<floorplan::Point> out;
  const int nx = std::max(1, static_cast<int>(std::floor(width / pitch)));
  const int ny = std::max(1, static_cast<int>(std::floor(height / pitch)));
  const double x_off = (width - static_cast<double>(nx - 1) * pitch) * 0.5;
  const double y_off = (height - static_cast<double>(ny - 1) * pitch) * 0.5;
  for (int j = 0; j < ny; ++j) {
    for (int i = 0; i < nx; ++i) {
      out.push_back({x_off + i * pitch, y_off + j * pitch});
    }
  }
  return out;
}

std::vector<floorplan::Point> align_to_c4(const std::vector<floorplan::Point>& sites,
                                          const std::vector<floorplan::Point>& c4) {
  if (c4.empty()) return sites;
  std::vector<floorplan::Point> out;
  out.reserve(sites.size());
  for (const auto& s : sites) {
    const auto it = std::min_element(c4.begin(), c4.end(), [&](const auto& a, const auto& b) {
      return floorplan::distance(s, a) < floorplan::distance(s, b);
    });
    out.push_back(*it);
  }
  return out;
}

double average_c4_distance(const std::vector<floorplan::Point>& sites,
                           const std::vector<floorplan::Point>& c4) {
  if (sites.empty() || c4.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : sites) {
    double best = std::numeric_limits<double>::max();
    for (const auto& b : c4) best = std::min(best, floorplan::distance(s, b));
    sum += best;
  }
  return sum / static_cast<double>(sites.size());
}

std::vector<floorplan::Point> edge_pad_ring(const floorplan::Floorplan& fp, int per_side) {
  std::vector<floorplan::Point> out;
  if (per_side <= 0) return out;
  const double w = fp.width();
  const double h = fp.height();
  const double inset = 0.08;
  for (int i = 0; i < per_side; ++i) {
    const double y = (static_cast<double>(i) + 0.5) * h / per_side;
    out.push_back({inset, y});
    out.push_back({w - inset, y});
  }
  return out;
}

}  // namespace pdn3d::pdn
