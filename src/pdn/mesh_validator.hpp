#pragma once

/// @file mesh_validator.hpp
/// @brief Pre-solve validation of a StackModel R-Mesh.
///
/// Degenerate grid configurations -- floating nodes, non-positive or
/// non-finite conductances, dies with no path to the supply -- make the nodal
/// system singular or indefinite. CG then either diverges or, worse,
/// "converges" to plausible-looking garbage. This pass catches every such
/// defect before the matrix is ever assembled, accumulating all findings into
/// one core::ValidationReport (never throw-on-first), so a sweep can skip the
/// design point with a complete diagnosis.

#include <span>

#include "core/status.hpp"
#include "pdn/stack_model.hpp"

namespace pdn3d::pdn {

/// Validate mesh topology and element values. Checks (slugs in brackets):
///  - [empty-model]                no nodes at all
///  - [no-supply-taps]             singular system: nothing ties the mesh to VDD
///  - [non-positive-conductance]   resistor with ohms <= 0
///  - [non-finite-conductance]     resistor with NaN/Inf ohms
///  - [non-positive-tap]           supply tap with ohms <= 0
///  - [non-finite-tap]             supply tap with NaN/Inf ohms
///  - [resistor-node-range]        resistor endpoint >= node_count
///  - [tap-node-range]             tap node >= node_count
///  - [floating-node]              node with no resistive path to any tap
///  - [floating-die]               a die's device grid is entirely floating
///  - [non-positive-vdd]           VDD <= 0 or non-finite (warning if merely odd)
[[nodiscard]] core::ValidationReport validate_stack_model(const StackModel& model);

/// Validate a per-node sink-current vector against @p model:
///  - [injection-size]        size != node_count
///  - [non-finite-injection]  NaN/Inf entry
///  - [negative-injection]    negative sink (warning: superposition allows it,
///                            but power maps should not produce it)
[[nodiscard]] core::ValidationReport validate_injection(const StackModel& model,
                                                        std::span<const double> sinks);

}  // namespace pdn3d::pdn
