#include "exec/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "faults/faults.hpp"
#include "obs/metrics.hpp"

namespace pdn3d::exec {

namespace {

std::atomic<std::size_t> g_thread_override{0};

/// A task body must never observe which worker runs it, but a *nested*
/// parallel_for on the same pool would deadlock the region protocol; nested
/// regions run inline on the calling thread instead.
thread_local bool tls_in_region = false;

std::size_t env_thread_count() {
  const char* env = std::getenv("PDN3D_THREADS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long v = std::strtoul(env, &end, 10);
  if (end == env || (end != nullptr && *end != '\0')) return 0;
  return static_cast<std::size_t>(v);
}

}  // namespace

std::size_t default_thread_count() {
  if (const std::size_t o = g_thread_override.load(std::memory_order_relaxed); o > 0) return o;
  if (const std::size_t e = env_thread_count(); e > 0) return e;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void set_default_thread_count(std::size_t threads) {
  g_thread_override.store(threads, std::memory_order_relaxed);
}

/// One parallel_for invocation. Tasks are claimed off `next` in index order
/// (no per-worker queues, hence nothing to steal); `completed` reaching `n`
/// is the region's only completion signal. Only the lowest-index exception
/// is kept -- the one a serial loop would have surfaced.
struct ThreadPool::Region {
  std::size_t n = 0;
  const std::function<void(std::size_t)>* body = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<std::size_t> participants{0};

  std::mutex error_mutex;
  std::size_t first_error_index = std::numeric_limits<std::size_t>::max();
  std::exception_ptr first_error;

  void record_error(std::size_t index, std::exception_ptr error) {
    const std::lock_guard<std::mutex> lock(error_mutex);
    if (index < first_error_index) {
      first_error_index = index;
      first_error = std::move(error);
    }
  }
};

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   ///< workers wait here for a new region
  std::condition_variable done_cv;   ///< the submitter waits here for completion
  std::shared_ptr<Region> current;   ///< active region, null when idle
  std::uint64_t generation = 0;      ///< bumped per region so workers run each once
  bool stop = false;
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(std::size_t threads)
    : thread_count_(threads > 0 ? threads : default_thread_count()) {
  obs::gauge("exec.pool_threads").set(static_cast<double>(thread_count_));
  if (thread_count_ <= 1) return;  // inline pool: no threads, no locks

  impl_ = new Impl;
  impl_->workers.reserve(thread_count_ - 1);
  for (std::size_t w = 0; w + 1 < thread_count_; ++w) {
    impl_->workers.emplace_back([this] {
      std::uint64_t seen = 0;
      for (;;) {
        std::shared_ptr<Region> region;
        {
          std::unique_lock<std::mutex> lock(impl_->mutex);
          impl_->work_cv.wait(lock, [&] {
            return impl_->stop || (impl_->current != nullptr && impl_->generation != seen);
          });
          if (impl_->stop) return;
          seen = impl_->generation;
          region = impl_->current;
        }
        tls_in_region = true;
        run_region(*region);
        tls_in_region = false;
      }
    });
  }
}

ThreadPool::~ThreadPool() {
  if (impl_ == nullptr) return;
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (auto& w : impl_->workers) w.join();
  delete impl_;
}

void ThreadPool::run_region(Region& region) const {
  bool counted = false;
  for (;;) {
    const std::size_t i = region.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= region.n) return;
    if (!counted) {
      counted = true;
      region.participants.fetch_add(1, std::memory_order_relaxed);
    }
    try {
      (*region.body)(i);
    } catch (...) {
      region.record_error(i, std::current_exception());
    }
    if (region.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == region.n) {
      // The submitter may already be waiting; the lock pairs with its
      // predicate check so the notification cannot be lost.
      const std::lock_guard<std::mutex> lock(impl_->mutex);
      impl_->done_cv.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  static auto& m_regions = obs::counter("exec.regions");
  static auto& m_tasks = obs::counter("exec.tasks");
  static auto& m_queue_depth = obs::gauge("exec.queue_depth");
  static auto& m_utilization = obs::gauge("exec.region_utilization");
  m_regions.add(1);
  m_tasks.add(n);
  PDN3D_FAULT_STALL("exec.region.stall", 20.0);

  if (impl_ == nullptr || n == 1 || tls_in_region) {
    // Inline path (single-thread pool, trivial region, or nested call): same
    // semantics as the pooled path -- every task runs, the lowest-index
    // exception surfaces afterwards.
    std::exception_ptr first_error;
    for (std::size_t i = 0; i < n; ++i) {
      try {
        body(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    m_utilization.set(1.0 / static_cast<double>(thread_count_));
    if (first_error) std::rethrow_exception(first_error);
    return;
  }

  auto region = std::make_shared<Region>();
  region->n = n;
  region->body = &body;
  m_queue_depth.set(static_cast<double>(n));
  {
    const std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->current = region;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  tls_in_region = true;
  run_region(*region);
  tls_in_region = false;

  {
    std::unique_lock<std::mutex> lock(impl_->mutex);
    impl_->done_cv.wait(lock, [&] {
      return region->completed.load(std::memory_order_acquire) >= region->n;
    });
    impl_->current.reset();
  }
  m_queue_depth.set(0.0);
  m_utilization.set(static_cast<double>(region->participants.load(std::memory_order_relaxed)) /
                    static_cast<double>(thread_count_));
  if (region->first_error) std::rethrow_exception(region->first_error);
}

void ThreadPool::parallel_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk) {
  if (n == 0) return;
  // Chunk boundaries depend only on n and the pool size, never on runtime
  // scheduling, so per-chunk state (forked EvalContexts, accumulators merged
  // in chunk order) is reproducible run-to-run at a given thread count.
  const std::size_t chunks = std::min(thread_count_, n);
  parallel_for(chunks, [&](std::size_t c) {
    const std::size_t begin = n * c / chunks;
    const std::size_t end = n * (c + 1) / chunks;
    chunk(c, begin, end);
  });
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace pdn3d::exec
