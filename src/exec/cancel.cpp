#include "exec/cancel.hpp"

namespace pdn3d::exec {

namespace {

thread_local const CancelToken* tls_token = nullptr;

}  // namespace

CancelScope::CancelScope(const CancelToken& token) noexcept : previous_(tls_token) {
  tls_token = &token;
}

CancelScope::~CancelScope() { tls_token = previous_; }

bool cancellation_requested() noexcept {
  return tls_token != nullptr && tls_token->cancelled();
}

}  // namespace pdn3d::exec
