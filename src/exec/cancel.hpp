#pragma once

/// \file
/// Cooperative cancellation for long-running evaluations.
///
/// A CancelToken is a shared flag an owner (e.g. the service watchdog) sets
/// to ask work to stop. A CancelScope installs the token as the calling
/// thread's active cancellation flag for its lifetime; inner loops (CG
/// iterations, Cholesky factorization, the solver ladder) poll
/// cancellation_requested() and unwind with StatusCode::kCancelled.
///
/// The flag is thread-local by design: nested parallel regions run inline on
/// the calling thread (see exec::ThreadPool), so a scope installed around
/// `Session::evaluate` on a service worker covers the whole per-request
/// sweep without threading a token through every API layer.

#include <atomic>

namespace pdn3d::exec {

/// Shared cancellation flag. cancel() may be called from any thread.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// RAII: makes `token` the calling thread's active cancellation flag.
/// Scopes nest; the previous flag is restored on destruction.
class CancelScope {
 public:
  explicit CancelScope(const CancelToken& token) noexcept;
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  const CancelToken* previous_;
};

/// True when a CancelScope is active on this thread and its token was
/// cancelled. Cheap enough to poll from solver inner loops.
bool cancellation_requested() noexcept;

}  // namespace pdn3d::exec
