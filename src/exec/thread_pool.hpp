#pragma once

/// @file thread_pool.hpp
/// @brief Fixed-size thread pool for embarrassingly-parallel sweeps.
///
/// Every paper-facing result is a loop over independent R-Mesh solves (Monte
/// Carlo samples, co-optimizer grid points, LUT memory states). This pool
/// runs such loops across a fixed set of worker threads with a deliberately
/// simple, work-stealing-free design: one shared atomic claim counter per
/// region, claimed in index order. The properties the sweep engines rely on:
///
///  - **Ordered results.** parallel_map writes result i into slot i; callers
///    observe exactly the serial output regardless of thread count.
///  - **Per-task exception capture.** A throwing task never tears down the
///    region; every task runs, and afterwards the *lowest-index* captured
///    exception is rethrown -- the same exception a serial loop would have
///    surfaced first.
///  - **Serial fast path.** With one thread (or one task) the body runs
///    inline on the calling thread, no locks, no allocation beyond the
///    result vector -- the single-thread overhead budget is <= 5% vs a plain
///    loop.
///  - **Determinism is the caller's contract.** The pool guarantees order of
///    results, not order of execution; callers must derive any randomness
///    from the task index (see util::Rng::split), never from thread identity.
///
/// The process-wide default thread count resolves, in priority order:
/// set_default_thread_count() (the CLI's --threads), the PDN3D_THREADS
/// environment variable, std::thread::hardware_concurrency().

#include <cstddef>
#include <exception>
#include <functional>
#include <vector>

namespace pdn3d::exec {

/// Process-wide default worker count used by ThreadPool(0) and shared().
/// Resolution order: explicit override > PDN3D_THREADS env > hardware
/// concurrency; always >= 1.
[[nodiscard]] std::size_t default_thread_count();

/// Override the process-wide default (0 clears the override back to
/// env/hardware resolution). Takes effect for pools constructed afterwards;
/// shared() is re-sized lazily only if it has not been created yet.
void set_default_thread_count(std::size_t threads);

class ThreadPool {
 public:
  /// @param threads worker count; 0 resolves default_thread_count(). A pool
  /// of 1 spawns no threads at all -- every region runs inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return thread_count_; }

  /// Run body(i) for every i in [0, n), distributed over the pool (the
  /// calling thread participates). Blocks until all n tasks finished. If any
  /// tasks threw, the exception of the lowest index is rethrown after the
  /// region completes.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Run chunk(c, begin, end) for every contiguous chunk of [0, n), one
  /// chunk per participating worker (c in [0, chunks)). This is the hook for
  /// per-thread state: fork an EvalContext per chunk and reuse it across the
  /// chunk's items. Chunk boundaries depend only on n and thread_count(); use
  /// index-derived randomness to stay deterministic across thread counts.
  void parallel_chunks(std::size_t n,
                       const std::function<void(std::size_t, std::size_t, std::size_t)>& chunk);

  /// parallel_for that collects f(i) into slot i of the result vector. T must
  /// be default-constructible and movable.
  template <typename F>
  auto parallel_map(std::size_t n, F&& f) -> std::vector<decltype(f(std::size_t{}))> {
    std::vector<decltype(f(std::size_t{}))> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = f(i); });
    return out;
  }

  /// Process-wide pool sized by default_thread_count() at first use.
  static ThreadPool& shared();

 private:
  struct Region;
  struct Impl;

  void run_region(Region& region) const;

  std::size_t thread_count_ = 1;
  Impl* impl_ = nullptr;  ///< null for a single-thread pool
};

}  // namespace pdn3d::exec
