#pragma once

/// @file bounded_queue.hpp
/// @brief Bounded multi-producer/multi-consumer queue with explicit
/// backpressure -- the admission queue of the batch evaluation service.
///
/// Design choices, driven by the service's needs (docs/SERVICE.md):
///
///  - **try_push, never block the producer.** A full queue is a *signal*
///    (the caller turns it into a `queue_full` error response), not a place
///    to park the connection thread. There is deliberately no blocking push.
///  - **pop blocks, close() drains.** Consumers block until an item or until
///    the queue is closed *and* empty -- so closing performs a graceful
///    drain: everything admitted before close() is still delivered.
///  - **remove_if for cancellation.** A queued-but-not-started request can be
///    plucked back out; once a consumer popped it, cancellation is too late
///    (the service documents this admission-to-start granularity).
///
/// All methods are thread-safe. The queue is a plain mutex + two condition
/// variables; at service request rates (milliseconds of solve per item) lock
/// contention is unmeasurable, so no lock-free cleverness is warranted.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

namespace pdn3d::exec {

/// Outcome of BoundedQueue::try_push, decided atomically under the queue
/// lock. Callers need the full/closed distinction (backpressure vs. drain)
/// and re-querying closed() after a failed push would race with close().
enum class PushResult { kOk, kFull, kClosed };

template <typename T>
class BoundedQueue {
 public:
  /// @param capacity maximum queued (admitted, not yet popped) items; >= 1.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admit @p item. Never blocks: reports kFull or kClosed instead, with the
  /// item untouched (moved only on kOk).
  [[nodiscard]] PushResult try_push(T&& item) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return PushResult::kOk;
  }

  /// Block until an item is available (returned) or the queue is closed and
  /// empty (nullopt -- the consumer's signal to exit).
  [[nodiscard]] std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Remove the first queued item matching @p pred, returning it. Items a
  /// consumer already popped are out of reach.
  template <typename Pred>
  [[nodiscard]] std::optional<T> remove_if(Pred pred) {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (pred(*it)) {
        T item = std::move(*it);
        items_.erase(it);
        return item;
      }
    }
    return std::nullopt;
  }

  /// Remove every queued item matching @p pred (up to @p max_items, in queue
  /// order), appending them to @p out. Returns the number removed. One lock
  /// acquisition for the whole sweep -- the service's coalescing planner uses
  /// this to drain a factor-sharing group atomically, so a concurrent worker
  /// cannot pop a group member mid-collection.
  template <typename Pred>
  std::size_t remove_all_if(Pred pred, std::size_t max_items, std::vector<T>* out) {
    const std::lock_guard<std::mutex> lock(mutex_);
    std::size_t removed = 0;
    for (auto it = items_.begin(); it != items_.end() && removed < max_items;) {
      if (pred(*it)) {
        out->push_back(std::move(*it));
        it = items_.erase(it);
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  /// Stop admitting; wake every blocked consumer. Already-admitted items are
  /// still delivered (graceful drain). Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace pdn3d::exec
