#include "io/ir_map_writer.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/units.hpp"

namespace pdn3d::io {

namespace {

void validate(const pdn::StackModel& model, std::span<const double> ir) {
  if (ir.size() != model.node_count()) {
    throw std::invalid_argument("ir map writer: IR vector size mismatch");
  }
}

}  // namespace

void write_ir_csv(std::ostream& os, const pdn::StackModel& model,
                  std::span<const double> ir_volts) {
  validate(model, ir_volts);
  os << "grid,die,layer,i,j,x_mm,y_mm,ir_mv\n";
  for (const auto& g : model.grids()) {
    for (int j = 0; j < g.ny; ++j) {
      for (int i = 0; i < g.nx; ++i) {
        const auto p = g.position(i, j);
        os << g.name << ',' << g.die << ',' << g.layer << ',' << i << ',' << j << ',' << p.x
           << ',' << p.y << ',' << util::to_mV(ir_volts[g.node(i, j)]) << "\n";
      }
    }
  }
}

double write_ir_pgm(std::ostream& os, const pdn::StackModel& model,
                    std::span<const double> ir_volts, int die, int layer) {
  validate(model, ir_volts);
  const pdn::LayerGrid& g = model.grid(die, layer);

  double max_ir = 0.0;
  for (std::size_t k = 0; k < g.size(); ++k) {
    max_ir = std::max(max_ir, ir_volts[g.base + k]);
  }

  os << "P5\n" << g.nx << ' ' << g.ny << "\n255\n";
  for (int j = g.ny - 1; j >= 0; --j) {  // image row 0 at the top (max y)
    for (int i = 0; i < g.nx; ++i) {
      const double v = ir_volts[g.node(i, j)];
      const double frac = max_ir > 0.0 ? v / max_ir : 0.0;
      // Dark = high drop.
      const auto pixel = static_cast<unsigned char>(255.0 * (1.0 - std::clamp(frac, 0.0, 1.0)));
      os.put(static_cast<char>(pixel));
    }
  }
  return util::to_mV(max_ir);
}

}  // namespace pdn3d::io
