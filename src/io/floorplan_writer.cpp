#include "io/floorplan_writer.hpp"

#include <cmath>

namespace pdn3d::io {

void write_floorplan_csv(std::ostream& os, const floorplan::Floorplan& fp) {
  os << "name,type,bank,x0_mm,y0_mm,x1_mm,y1_mm\n";
  for (const auto& b : fp.blocks()) {
    os << b.name << ',' << floorplan::to_string(b.type) << ',' << b.bank_index << ',' << b.rect.x0
       << ',' << b.rect.y0 << ',' << b.rect.x1 << ',' << b.rect.y1 << "\n";
  }
}

namespace {
long um(double mm) { return std::lround(mm * 1000.0); }
}  // namespace

void write_floorplan_def(std::ostream& os, const floorplan::Floorplan& fp) {
  os << "VERSION 5.8 ;\nDESIGN " << fp.name() << " ;\nUNITS DISTANCE MICRONS 1000 ;\n";
  os << "DIEAREA ( 0 0 ) ( " << um(fp.width()) << ' ' << um(fp.height()) << " ) ;\n";
  os << "COMPONENTS " << fp.blocks().size() << " ;\n";
  for (const auto& b : fp.blocks()) {
    os << "  - " << b.name << ' ' << floorplan::to_string(b.type) << " + PLACED ( "
       << um(b.rect.x0) << ' ' << um(b.rect.y0) << " ) N\n"
       << "    + RECT ( " << um(b.rect.x0) << ' ' << um(b.rect.y0) << " ) ( " << um(b.rect.x1)
       << ' ' << um(b.rect.y1) << " ) ;\n";
  }
  os << "END COMPONENTS\nEND DESIGN\n";
}

}  // namespace pdn3d::io
