#include "io/spice_writer.hpp"

#include <stdexcept>

namespace pdn3d::io {

namespace {

void validate(const pdn::StackModel& model, std::span<const double> sinks) {
  if (!sinks.empty() && sinks.size() != model.node_count()) {
    throw std::invalid_argument("write_spice_netlist: sink vector size mismatch");
  }
}

}  // namespace

void write_spice_netlist(std::ostream& os, const pdn::StackModel& model,
                         std::span<const double> sinks, const SpiceOptions& options) {
  validate(model, sinks);

  os << "* " << options.title << "\n";
  os << "* nodes: " << model.node_count() << ", resistors: " << model.resistors().size()
     << ", supply taps: " << model.taps().size() << "\n";
  if (options.annotate_grids) {
    for (const auto& g : model.grids()) {
      os << "* grid " << g.name << ": die " << g.die << " layer " << g.layer << ", " << g.nx
         << "x" << g.ny << ", nodes n" << g.base << "..n" << g.base + g.size() - 1 << "\n";
    }
  }

  os << "V1 vdd 0 DC " << model.vdd() << "\n";

  std::size_t idx = 0;
  for (const auto& r : model.resistors()) {
    os << "R" << idx++ << " n" << r.a << " n" << r.b << " " << r.ohms << "\n";
  }
  std::size_t tap_idx = 0;
  for (const auto& t : model.taps()) {
    os << "RT" << tap_idx++ << " vdd n" << t.node << " " << t.ohms << "\n";
  }
  if (!sinks.empty()) {
    std::size_t i_idx = 0;
    for (std::size_t n = 0; n < sinks.size(); ++n) {
      if (sinks[n] > options.min_sink_amps) {
        os << "I" << i_idx++ << " n" << n << " 0 DC " << sinks[n] << "\n";
      }
    }
  }
  if (options.include_op_card) {
    os << ".OP\n.END\n";
  }
}

std::size_t spice_element_count(const pdn::StackModel& model, std::span<const double> sinks,
                                const SpiceOptions& options) {
  validate(model, sinks);
  std::size_t count = 1 + model.resistors().size() + model.taps().size();  // V1 + R + RT
  for (const double s : sinks) {
    if (s > options.min_sink_amps) ++count;
  }
  return count;
}

}  // namespace pdn3d::io
