#pragma once

/// @file spice_writer.hpp
/// @brief SPICE netlist export of a StackModel.
///
/// The paper solves its R-Mesh with HSPICE; this writer emits the equivalent
/// netlist (resistors, supply taps to an ideal VDD source, DC current sinks)
/// so any SPICE-compatible solver can cross-check the built-in engine.

#include <ostream>
#include <span>
#include <string>

#include "pdn/stack_model.hpp"

namespace pdn3d::io {

struct SpiceOptions {
  std::string title = "pdn3d R-Mesh";
  bool include_op_card = true;   ///< emit .OP and .END cards
  bool annotate_grids = true;    ///< comment each layer's node-id range
  double min_sink_amps = 1e-12;  ///< suppress smaller current sources
};

/// Write the model (and optional per-node sink currents) as a SPICE deck.
/// Node 0 is SPICE ground; the ideal rail is node "vdd" driven by V1.
/// Mesh node k is named n<k>.
/// @param sinks empty, or one entry per model node (amps drawn to ground).
void write_spice_netlist(std::ostream& os, const pdn::StackModel& model,
                         std::span<const double> sinks = {}, const SpiceOptions& options = {});

/// Count of non-comment element cards the deck would contain.
std::size_t spice_element_count(const pdn::StackModel& model, std::span<const double> sinks = {},
                                const SpiceOptions& options = {});

}  // namespace pdn3d::io
