#pragma once

/// @file floorplan_writer.hpp
/// @brief Text exports of die floorplans (CSV and a DEF-flavored dump).

#include <ostream>

#include "floorplan/floorplan.hpp"

namespace pdn3d::io {

/// CSV with columns name,type,bank,x0_mm,y0_mm,x1_mm,y1_mm.
void write_floorplan_csv(std::ostream& os, const floorplan::Floorplan& fp);

/// Minimal DEF-like dump (DIEAREA + COMPONENTS with placed rectangles, in
/// integer database units of 1 um) -- enough for layout viewers and diffing.
void write_floorplan_def(std::ostream& os, const floorplan::Floorplan& fp);

}  // namespace pdn3d::io
