#pragma once

/// @file ir_map_writer.hpp
/// @brief Export per-layer IR-drop maps for inspection/plotting.
///
/// Two formats: CSV (x, y, mV per node, one file-section per layer) and PGM
/// (a grayscale image per layer grid, dark = high drop) for a quick look
/// without any plotting stack.

#include <ostream>
#include <span>

#include "pdn/stack_model.hpp"

namespace pdn3d::io {

/// CSV with columns grid,die,layer,i,j,x_mm,y_mm,ir_mv for every mesh node.
/// @param ir_volts per-node IR drop (model.node_count() entries, volts).
void write_ir_csv(std::ostream& os, const pdn::StackModel& model,
                  std::span<const double> ir_volts);

/// Binary PGM (P5) image of one layer grid; pixels scale 0 (no drop) to 255
/// (max drop over that grid). Returns the maximum drop of the grid in mV.
double write_ir_pgm(std::ostream& os, const pdn::StackModel& model,
                    std::span<const double> ir_volts, int die, int layer);

}  // namespace pdn3d::io
