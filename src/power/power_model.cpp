#include "power/power_model.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/units.hpp"

namespace pdn3d::power {

double DiePowerSpec::active_die_mw(double io_activity, int active_banks) const {
  const double act = std::clamp(io_activity, 0.0, 1.0);
  const double extra = p0 + p1 * act + p2 * act * act - idle_mw;
  const double bank_fraction =
      bank_share * static_cast<double>(active_banks) / static_cast<double>(reference_banks);
  return idle_mw + extra * (bank_fraction + io_share + periphery_share);
}

namespace {

/// Spread @p power_w over blocks proportionally to area.
void spread_by_area(const std::vector<const floorplan::Block*>& blocks, double power_w,
                    std::vector<BlockPower>& out) {
  double total_area = 0.0;
  for (const auto* b : blocks) total_area += b->rect.area();
  if (total_area <= 0.0 || power_w <= 0.0) return;
  for (const auto* b : blocks) {
    out.push_back({b, power_w * b->rect.area() / total_area});
  }
}

}  // namespace

std::vector<BlockPower> dram_die_power(const floorplan::Floorplan& fp, const DieActivity& activity,
                                       double io_activity, const DiePowerSpec& spec, double scale) {
  std::vector<BlockPower> out;

  // Idle/background power over every block by area.
  std::vector<const floorplan::Block*> all;
  all.reserve(fp.blocks().size());
  for (const auto& b : fp.blocks()) all.push_back(&b);
  spread_by_area(all, util::from_mW(spec.idle_mw * scale), out);

  if (!activity.active()) return out;

  // Polynomial extra power at the reference interleave depth; the bank-array
  // share scales with the actual active-bank count (each bank draws a fixed
  // per-bank read power).
  const double poly_extra_mw =
      spec.p0 + spec.p1 * io_activity + spec.p2 * io_activity * io_activity - spec.idle_mw;
  if (poly_extra_mw <= 0.0) return out;
  const double extra_w = util::from_mW(poly_extra_mw * scale);

  // Active banks: bank_share covers reference_banks banks.
  const double per_bank =
      extra_w * spec.bank_share / static_cast<double>(spec.reference_banks);
  for (int bank : activity.active_banks) {
    out.push_back({&fp.bank(bank), per_bank});
  }

  // I/O block(s).
  spread_by_area(fp.blocks_of_type(floorplan::BlockType::kIoBlock), extra_w * spec.io_share, out);

  // Periphery + column decoders (charge pumps fire on activation).
  std::vector<const floorplan::Block*> periph = fp.blocks_of_type(floorplan::BlockType::kPeriphery);
  for (const auto* b : fp.blocks_of_type(floorplan::BlockType::kColDecoder)) periph.push_back(b);
  spread_by_area(periph, extra_w * spec.periphery_share, out);

  return out;
}

std::vector<BlockPower> logic_die_power(const floorplan::Floorplan& fp,
                                        const LogicPowerSpec& spec) {
  std::vector<BlockPower> out;
  spread_by_area(fp.blocks_of_type(floorplan::BlockType::kCore), spec.total_w * spec.core_share,
                 out);
  spread_by_area(fp.blocks_of_type(floorplan::BlockType::kCache), spec.total_w * spec.cache_share,
                 out);
  const double rest = spec.total_w * (1.0 - spec.core_share - spec.cache_share);
  spread_by_area(fp.blocks_of_type(floorplan::BlockType::kUncore), rest, out);
  return out;
}

double total_power_w(const std::vector<BlockPower>& blocks) {
  double s = 0.0;
  for (const auto& bp : blocks) s += bp.power_w;
  return s;
}

}  // namespace pdn3d::power
