#include "power/memory_state.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>

#include "util/string_util.hpp"

namespace pdn3d::power {

int MemoryState::active_die_count() const {
  int n = 0;
  for (const DieActivity& d : dies) {
    if (d.active()) ++n;
  }
  return n;
}

int MemoryState::total_active_banks() const {
  int n = 0;
  for (const DieActivity& d : dies) n += d.count();
  return n;
}

std::vector<int> MemoryState::counts() const {
  std::vector<int> out;
  out.reserve(dies.size());
  for (const DieActivity& d : dies) out.push_back(d.count());
  return out;
}

std::string MemoryState::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < dies.size(); ++i) {
    if (i > 0) os << '-';
    os << dies[i].count();
  }
  return os.str();
}

namespace {

/// Banks for `count` active banks in `column`: the interleave pair for 2,
/// the bottom bank for 1, and column-major fill for larger counts.
std::vector<int> banks_for(int count, int column, const floorplan::DramFloorplanSpec& spec) {
  if (count == 0) return {};
  if (column < 0 || column >= spec.bank_cols) {
    throw std::invalid_argument("memory state: bank column out of range");
  }
  const int per_column = spec.bank_rows;
  if (count > spec.bank_cols * spec.bank_rows) {
    throw std::invalid_argument("memory state: more active banks than banks on the die");
  }
  std::vector<int> out;
  if (count == 2) {
    const auto pair = floorplan::interleave_pair(spec, column);
    return {pair.low, pair.high};
  }
  // Column-major fill starting at the requested column, wrapping right.
  int c = column;
  int r = 0;
  for (int i = 0; i < count; ++i) {
    out.push_back(c * per_column + r);
    if (++r == per_column) {
      r = 0;
      c = (c + 1) % spec.bank_cols;
    }
  }
  return out;
}

void finalize_io_activity(MemoryState& state, double io_activity) {
  if (io_activity >= 0.0) {
    state.io_activity = io_activity;
  } else {
    const int k = state.active_die_count();
    state.io_activity = k > 0 ? 1.0 / static_cast<double>(k) : 0.0;
  }
}

}  // namespace

MemoryState parse_memory_state(std::string_view text, const floorplan::DramFloorplanSpec& spec,
                               double io_activity) {
  MemoryState state;
  for (const std::string& token_str : util::split(text, '-')) {
    const std::string_view token = util::trim(token_str);
    if (token.empty()) throw std::invalid_argument("memory state: empty die token");

    std::size_t i = 0;
    while (i < token.size() && std::isdigit(static_cast<unsigned char>(token[i]))) ++i;
    if (i == 0) throw std::invalid_argument("memory state: token must start with a count");
    const int count = std::stoi(std::string(token.substr(0, i)));

    int column = 0;  // worst-case edge column by default
    if (i < token.size()) {
      if (token.size() != i + 1 || !std::isalpha(static_cast<unsigned char>(token[i]))) {
        throw std::invalid_argument("memory state: malformed location suffix");
      }
      column = std::tolower(static_cast<unsigned char>(token[i])) - 'a';
    }

    DieActivity die;
    die.active_banks = banks_for(count, column, spec);
    state.dies.push_back(std::move(die));
  }
  finalize_io_activity(state, io_activity);
  return state;
}

MemoryState make_state_from_counts(const std::vector<int>& counts,
                                   const floorplan::DramFloorplanSpec& spec, double io_activity) {
  MemoryState state;
  for (int c : counts) {
    DieActivity die;
    die.active_banks = banks_for(c, 0, spec);
    state.dies.push_back(std::move(die));
  }
  finalize_io_activity(state, io_activity);
  return state;
}

}  // namespace pdn3d::power
