#pragma once

/// @file memory_state.hpp
/// @brief The paper's "R1-R2-R3-R4" memory-state grammar.
///
/// A memory state names, per DRAM die from the bottom (DRAM1) up, how many
/// banks are actively read and (optionally) where: "0-0-2a-2a" puts an
/// interleaving pair in bank column 'a' of the two top dies. Location letters
/// map to bank columns: 'a' = column 0 (die edge, the worst case the paper
/// assumes when no location is given), 'b' = column 1, and so on.

#include <string>
#include <string_view>
#include <vector>

#include "floorplan/dram_floorplan.hpp"

namespace pdn3d::power {

/// Per-die activity: which banks are being read.
struct DieActivity {
  std::vector<int> active_banks;

  [[nodiscard]] bool active() const { return !active_banks.empty(); }
  [[nodiscard]] int count() const { return static_cast<int>(active_banks.size()); }
};

/// Whole-stack activity plus the shared I/O activity level.
struct MemoryState {
  std::vector<DieActivity> dies;  ///< bottom die first
  /// I/O activity of each *active* die. The paper's convention: with k active
  /// dies sharing the channel bandwidth, each runs at activity 1/k unless
  /// overridden (Table 5 sweeps this explicitly).
  double io_activity = 1.0;

  [[nodiscard]] int die_count() const { return static_cast<int>(dies.size()); }
  [[nodiscard]] int active_die_count() const;
  [[nodiscard]] int total_active_banks() const;

  /// Per-die active-bank counts, e.g. {0,0,0,2} -- the LUT key.
  [[nodiscard]] std::vector<int> counts() const;

  /// "0-0-0-2" style rendering (without location letters).
  [[nodiscard]] std::string to_string() const;
};

/// Parse "R1-R2-R3-R4" with optional location letters ("0-0-2b-2a").
/// @param spec the die floorplan spec (for bank column geometry).
/// @param io_activity if negative, defaults to 1/active_die_count.
/// Throws std::invalid_argument on malformed input or out-of-range columns.
MemoryState parse_memory_state(std::string_view text, const floorplan::DramFloorplanSpec& spec,
                               double io_activity = -1.0);

/// Build a state from per-die counts, banks placed in the worst-case edge
/// column ('a'), matching the paper's Section 5.1 assumption.
MemoryState make_state_from_counts(const std::vector<int>& counts,
                                   const floorplan::DramFloorplanSpec& spec,
                                   double io_activity = -1.0);

}  // namespace pdn3d::power
