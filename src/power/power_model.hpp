#pragma once

/// @file power_model.hpp
/// @brief Per-die and per-block power models.
///
/// The paper uses measured Samsung/Micron power maps scaled to 20nm-class
/// technology (proprietary). We substitute a parametric model calibrated to
/// the per-die numbers the paper publishes in Table 5 for stacked DDR3:
///
///   active-die power (mW) = p0 + p1*act + p2*act^2
///     act = 1.00 -> 220.5 mW, 0.50 -> 175.5 mW, 0.25 -> 126.0 mW
///   idle-die power = 27.3 mW
///
/// which solves to p0 = 58.5, p1 = 306, p2 = -144 (concave: I/O circuits
/// dominate at high activity). Other benchmarks scale these coefficients.
/// Block-level distribution sends the activity-dependent power to the active
/// bank arrays, I/O block, and periphery (charge pumps), and the idle power
/// uniformly across the die.

#include <vector>

#include "floorplan/floorplan.hpp"
#include "power/memory_state.hpp"

namespace pdn3d::power {

/// Coefficients for one DRAM die.
struct DiePowerSpec {
  double idle_mw = 30.0;  ///< inactive die: standby + refresh background
  double p0 = 58.5;       ///< active die power polynomial, in mW
  double p1 = 306.0;
  double p2 = -144.0;
  /// Split of the activity-dependent power (active power minus idle), at the
  /// reference interleave depth of two active banks:
  double bank_share = 0.80;     ///< to active bank arrays (per pair)
  double io_share = 0.12;       ///< to the I/O block
  double periphery_share = 0.08;///< to periphery/col-decoder (pumps, control)
  int reference_banks = 2;      ///< interleave depth the polynomial was fit at

  /// Total power of a die running @p active_banks banks at @p io_activity.
  /// The polynomial is calibrated at reference_banks; the bank-array share
  /// scales linearly with the actual bank count.
  [[nodiscard]] double active_die_mw(double io_activity, int active_banks = 2) const;
};

/// Power assigned to one floorplan block.
struct BlockPower {
  const floorplan::Block* block = nullptr;
  double power_w = 0.0;
};

/// Distribute one DRAM die's power over its blocks for the given activity.
/// @param scale multiplies every power term (benchmark scaling).
std::vector<BlockPower> dram_die_power(const floorplan::Floorplan& fp, const DieActivity& activity,
                                       double io_activity, const DiePowerSpec& spec,
                                       double scale = 1.0);

/// Logic die (host) power distribution.
struct LogicPowerSpec {
  double total_w = 42.0;     ///< full-chip power
  double core_share = 0.60;  ///< split across kCore blocks
  double cache_share = 0.25; ///< across kCache blocks
  double uncore_share = 0.15;///< across kUncore blocks (and the remainder)
};

std::vector<BlockPower> logic_die_power(const floorplan::Floorplan& fp,
                                        const LogicPowerSpec& spec);

/// Sum of block powers (W) -- sanity/bookkeeping helper.
double total_power_w(const std::vector<BlockPower>& blocks);

}  // namespace pdn3d::power
