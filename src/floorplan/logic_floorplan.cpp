#include "floorplan/logic_floorplan.hpp"

#include <string>

namespace pdn3d::floorplan {

Floorplan make_t2_floorplan(double width_mm, double height_mm) {
  Floorplan fp("t2", width_mm, height_mm);
  const double w = width_mm;
  const double h = height_mm;
  const double margin = 0.20;

  // Central crossbar / L2 tag strip.
  const double strip_h = 0.16 * h;
  const double strip_y0 = (h - strip_h) * 0.5;
  fp.add_block({"xbar", BlockType::kUncore, Rect{margin, strip_y0, w - margin, strip_y0 + strip_h},
                -1});

  // Two rows of four core+cache tiles.
  const int cols = 4;
  const double tile_w = (w - 2.0 * margin) / static_cast<double>(cols);
  const double gap = 0.05;
  const double row_h_bottom = strip_y0 - margin - gap;
  const double row_h_top = h - margin - (strip_y0 + strip_h) - gap;

  for (int half = 0; half < 2; ++half) {
    const double y0 = half == 0 ? margin : strip_y0 + strip_h + gap;
    const double row_h = half == 0 ? row_h_bottom : row_h_top;
    // Each tile: core (outer 60%) + L2 cache bank (inner 40%, nearer the
    // crossbar strip).
    const double core_h = 0.60 * row_h;
    for (int c = 0; c < cols; ++c) {
      const double x0 = margin + static_cast<double>(c) * tile_w;
      const double x1 = x0 + tile_w - gap;
      const int core_id = half * cols + c;
      if (half == 0) {
        fp.add_block({"core_" + std::to_string(core_id), BlockType::kCore,
                      Rect{x0, y0, x1, y0 + core_h}, -1});
        fp.add_block({"l2_" + std::to_string(core_id), BlockType::kCache,
                      Rect{x0, y0 + core_h, x1, y0 + row_h}, -1});
      } else {
        fp.add_block({"l2_" + std::to_string(core_id), BlockType::kCache,
                      Rect{x0, y0, x1, y0 + row_h - core_h}, -1});
        fp.add_block({"core_" + std::to_string(core_id), BlockType::kCore,
                      Rect{x0, y0 + row_h - core_h, x1, y0 + row_h}, -1});
      }
    }
  }
  return fp;
}

Floorplan make_hmc_logic_floorplan(double width_mm, double height_mm) {
  Floorplan fp("hmc_logic", width_mm, height_mm);
  const double w = width_mm;
  const double h = height_mm;
  const double margin = 0.15;

  // SerDes strips on the left and right edges (off-cube links).
  const double serdes_w = 0.12 * w;
  fp.add_block({"serdes_l", BlockType::kUncore, Rect{margin, margin, margin + serdes_w, h - margin},
                -1});
  fp.add_block({"serdes_r", BlockType::kUncore,
                Rect{w - margin - serdes_w, margin, w - margin, h - margin}, -1});

  // 4x4 vault controllers in the middle.
  const int cols = 4;
  const int rows = 4;
  const double gap = 0.06;
  const double x_start = margin + serdes_w + gap;
  const double x_end = w - margin - serdes_w - gap;
  const double tile_w = (x_end - x_start) / static_cast<double>(cols);
  const double tile_h = (h - 2.0 * margin) / static_cast<double>(rows);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const double x0 = x_start + static_cast<double>(c) * tile_w;
      const double y0 = margin + static_cast<double>(r) * tile_h;
      fp.add_block({"vault_" + std::to_string(r * cols + c), BlockType::kCore,
                    Rect{x0, y0, x0 + tile_w - gap, y0 + tile_h - gap}, -1});
    }
  }
  return fp;
}

}  // namespace pdn3d::floorplan
