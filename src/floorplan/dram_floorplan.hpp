#pragma once

/// @file dram_floorplan.hpp
/// @brief Block-level DRAM die floorplan generator.
///
/// Produces the regular layout every benchmark die uses: a central periphery
/// strip (charge pumps, control, I/O with the TSV landing region), column
/// decoder strips above/below it, and bank arrays arranged in a grid of
/// columns x rows, with row-decoder strips between bank columns. This mirrors
/// the paper's "arrays, row/column decoders, and peripheral circuits"
/// description.

#include "floorplan/floorplan.hpp"

namespace pdn3d::floorplan {

struct DramFloorplanSpec {
  double width_mm = 6.8;
  double height_mm = 6.7;
  int bank_cols = 4;  ///< bank columns (interleave pairs live in one column)
  int bank_rows = 2;  ///< total bank rows, split evenly above/below the strip
  double edge_margin_mm = 0.15;    ///< pad/KOZ ring kept block-free
  double strip_height_frac = 0.12; ///< center periphery strip height / die height
};

/// Number of banks = bank_cols * bank_rows. Bank index = col * bank_rows + row
/// (row 0 at the bottom).
Floorplan make_dram_floorplan(const DramFloorplanSpec& spec);

/// Convenience: the two banks forming the interleaving pair of @p column
/// (bottom-most and top-most rows of that column).
struct BankPair {
  int low = 0;
  int high = 0;
};
BankPair interleave_pair(const DramFloorplanSpec& spec, int column);

}  // namespace pdn3d::floorplan
