#pragma once

/// @file geometry.hpp
/// @brief 2D geometry primitives (millimetre coordinates, die-plane).

#include <algorithm>
#include <cmath>

namespace pdn3d::floorplan {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline double distance(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

/// Axis-aligned rectangle, closed on all edges. Invariant: x0 <= x1, y0 <= y1.
struct Rect {
  double x0 = 0.0;
  double y0 = 0.0;
  double x1 = 0.0;
  double y1 = 0.0;

  [[nodiscard]] double width() const { return x1 - x0; }
  [[nodiscard]] double height() const { return y1 - y0; }
  [[nodiscard]] double area() const { return width() * height(); }
  [[nodiscard]] Point center() const { return {(x0 + x1) * 0.5, (y0 + y1) * 0.5}; }

  [[nodiscard]] bool contains(Point p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
  }

  [[nodiscard]] bool overlaps(const Rect& o) const {
    return x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }

  /// Intersection area with @p o (0 when disjoint).
  [[nodiscard]] double overlap_area(const Rect& o) const {
    const double w = std::min(x1, o.x1) - std::max(x0, o.x0);
    const double h = std::min(y1, o.y1) - std::max(y0, o.y0);
    if (w <= 0.0 || h <= 0.0) return 0.0;
    return w * h;
  }
};

}  // namespace pdn3d::floorplan
