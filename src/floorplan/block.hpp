#pragma once

/// @file block.hpp
/// @brief Floorplan block: a named rectangle with a functional type.

#include <string>

#include "floorplan/geometry.hpp"

namespace pdn3d::floorplan {

/// Functional classes the power model distinguishes.
enum class BlockType {
  kBankArray,   ///< DRAM cell array bank
  kRowDecoder,  ///< row decoder strip next to a bank
  kColDecoder,  ///< column decoder / sense amp strip
  kPeriphery,   ///< center periphery: charge pumps, control, DLL
  kIoBlock,     ///< I/O drivers and pads (TSV landing region)
  kCore,        ///< logic die: CPU core / vault controller
  kCache,       ///< logic die: L2 / SRAM macro
  kUncore,      ///< logic die: crossbar, SerDes, misc
};

[[nodiscard]] std::string to_string(BlockType t);

struct Block {
  std::string name;
  BlockType type = BlockType::kPeriphery;
  Rect rect;
  /// Bank index for kBankArray blocks (and their decoders), -1 otherwise.
  int bank_index = -1;
};

}  // namespace pdn3d::floorplan
