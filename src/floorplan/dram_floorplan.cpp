#include "floorplan/dram_floorplan.hpp"

#include <stdexcept>
#include <string>

namespace pdn3d::floorplan {

Floorplan make_dram_floorplan(const DramFloorplanSpec& spec) {
  if (spec.bank_cols < 1 || spec.bank_rows < 2 || spec.bank_rows % 2 != 0) {
    throw std::invalid_argument("make_dram_floorplan: need >=1 columns and an even row count");
  }

  Floorplan fp("dram", spec.width_mm, spec.height_mm);
  const double w = spec.width_mm;
  const double h = spec.height_mm;
  const double margin = spec.edge_margin_mm;

  const double strip_h = spec.strip_height_frac * h;
  const double strip_y0 = (h - strip_h) * 0.5;
  const double strip_y1 = strip_y0 + strip_h;

  // Center strip: I/O block in the middle (TSV landing region for center-TSV
  // designs), periphery blocks on both sides.
  const double io_w = 0.30 * (w - 2.0 * margin);
  const double io_x0 = (w - io_w) * 0.5;
  fp.add_block({"io", BlockType::kIoBlock, Rect{io_x0, strip_y0, io_x0 + io_w, strip_y1}, -1});
  fp.add_block({"periph_l", BlockType::kPeriphery, Rect{margin, strip_y0, io_x0, strip_y1}, -1});
  fp.add_block(
      {"periph_r", BlockType::kPeriphery, Rect{io_x0 + io_w, strip_y0, w - margin, strip_y1}, -1});

  // Column decoder strips hugging the periphery strip.
  const double coldec_h = 0.030 * h;
  fp.add_block({"coldec_b", BlockType::kColDecoder,
                Rect{margin, strip_y0 - coldec_h, w - margin, strip_y0}, -1});
  fp.add_block({"coldec_t", BlockType::kColDecoder,
                Rect{margin, strip_y1, w - margin, strip_y1 + coldec_h}, -1});

  // Bank regions above and below.
  const double rowdec_w = 0.035 * w;
  const int cols = spec.bank_cols;
  const int rows_half = spec.bank_rows / 2;
  const double usable_w = w - 2.0 * margin - static_cast<double>(cols - 1) * rowdec_w;
  const double bank_w = usable_w / static_cast<double>(cols);
  const double gap = 0.04;  // mm between stacked banks in one half

  const double bottom_y0 = margin;
  const double bottom_y1 = strip_y0 - coldec_h;
  const double top_y0 = strip_y1 + coldec_h;
  const double top_y1 = h - margin;

  const auto bank_h_in = [&](double y0, double y1) {
    return (y1 - y0 - static_cast<double>(rows_half - 1) * gap) / static_cast<double>(rows_half);
  };
  const double bank_h_bottom = bank_h_in(bottom_y0, bottom_y1);
  const double bank_h_top = bank_h_in(top_y0, top_y1);
  if (bank_w <= 0.0 || bank_h_bottom <= 0.0 || bank_h_top <= 0.0) {
    throw std::invalid_argument("make_dram_floorplan: die too small for the bank grid");
  }

  for (int c = 0; c < cols; ++c) {
    const double x0 = margin + static_cast<double>(c) * (bank_w + rowdec_w);
    // Row decoder strips to the right of every column except the last, split
    // around the central periphery band (which owns that region).
    if (c + 1 < cols) {
      fp.add_block({"rowdec_b" + std::to_string(c), BlockType::kRowDecoder,
                    Rect{x0 + bank_w, bottom_y0, x0 + bank_w + rowdec_w, bottom_y1}, -1});
      fp.add_block({"rowdec_t" + std::to_string(c), BlockType::kRowDecoder,
                    Rect{x0 + bank_w, top_y0, x0 + bank_w + rowdec_w, top_y1}, -1});
    }
    for (int r = 0; r < spec.bank_rows; ++r) {
      const bool bottom_half = r < rows_half;
      const int r_in_half = bottom_half ? r : r - rows_half;
      const double bh = bottom_half ? bank_h_bottom : bank_h_top;
      const double y0 = bottom_half
                            ? bottom_y0 + static_cast<double>(r_in_half) * (bh + gap)
                            : top_y0 + static_cast<double>(r_in_half) * (bh + gap);
      const int index = c * spec.bank_rows + r;
      fp.add_block({"bank_" + std::to_string(index), BlockType::kBankArray,
                    Rect{x0, y0, x0 + bank_w, y0 + bh}, index});
    }
  }
  return fp;
}

BankPair interleave_pair(const DramFloorplanSpec& spec, int column) {
  if (column < 0 || column >= spec.bank_cols) {
    throw std::out_of_range("interleave_pair: column out of range");
  }
  return BankPair{column * spec.bank_rows, column * spec.bank_rows + spec.bank_rows - 1};
}

}  // namespace pdn3d::floorplan
