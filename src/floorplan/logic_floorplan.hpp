#pragma once

/// @file logic_floorplan.hpp
/// @brief Host logic die floorplan generators.
///
/// Two hosts appear in the paper: a full-chip OpenSPARC T2 processor in 28nm
/// (stacked DDR3 on-chip and Wide I/O designs) and the HMC logic base die.
/// These are synthetic stand-ins with the same block classes the power model
/// needs (cores, caches, uncore fabric).

#include "floorplan/floorplan.hpp"

namespace pdn3d::floorplan {

/// OpenSPARC T2-like: 8 cores in two rows of four around a central
/// crossbar/L2 strip. Die 9.0 x 8.0 mm by default (paper Table 1).
Floorplan make_t2_floorplan(double width_mm = 9.0, double height_mm = 8.0);

/// HMC logic base: 16 vault controllers in a 4x4 grid with SerDes strips on
/// the left and right edges. Die 8.8 x 6.4 mm by default.
Floorplan make_hmc_logic_floorplan(double width_mm = 8.8, double height_mm = 6.4);

}  // namespace pdn3d::floorplan
