#include "floorplan/floorplan.hpp"

#include <stdexcept>

namespace pdn3d::floorplan {

Floorplan::Floorplan(std::string name, double width_mm, double height_mm)
    : name_(std::move(name)), width_(width_mm), height_(height_mm) {
  if (width_ <= 0.0 || height_ <= 0.0) {
    throw std::invalid_argument("Floorplan: non-positive die dimensions");
  }
}

void Floorplan::add_block(Block block) { blocks_.push_back(std::move(block)); }

const Block& Floorplan::bank(int bank_index) const {
  for (const Block& b : blocks_) {
    if (b.type == BlockType::kBankArray && b.bank_index == bank_index) return b;
  }
  throw std::out_of_range("Floorplan::bank: no such bank " + std::to_string(bank_index));
}

int Floorplan::bank_count() const {
  int n = 0;
  for (const Block& b : blocks_) {
    if (b.type == BlockType::kBankArray) ++n;
  }
  return n;
}

std::vector<const Block*> Floorplan::blocks_of_type(BlockType t) const {
  std::vector<const Block*> out;
  for (const Block& b : blocks_) {
    if (b.type == t) out.push_back(&b);
  }
  return out;
}

bool Floorplan::is_legal() const {
  const Rect die = outline();
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    const Rect& r = blocks_[i].rect;
    if (r.x0 < -1e-9 || r.y0 < -1e-9 || r.x1 > die.x1 + 1e-9 || r.y1 > die.y1 + 1e-9) {
      return false;
    }
    for (std::size_t j = i + 1; j < blocks_.size(); ++j) {
      // Tolerate sub-nm "overlaps" from floating-point edge sharing.
      if (r.overlap_area(blocks_[j].rect) > 1e-9) {
        return false;
      }
    }
  }
  return true;
}

double Floorplan::utilization() const {
  double a = 0.0;
  for (const Block& b : blocks_) a += b.rect.area();
  const double die = width_ * height_;
  return die > 0.0 ? a / die : 0.0;
}

}  // namespace pdn3d::floorplan
