#pragma once

/// @file floorplan.hpp
/// @brief Block-level die floorplan, the output of the floorplan generator.

#include <cstddef>
#include <string>
#include <vector>

#include "floorplan/block.hpp"

namespace pdn3d::floorplan {

/// A die floorplan: outline + non-overlapping blocks. Bank blocks carry the
/// bank index the memory controller schedules against.
class Floorplan {
 public:
  Floorplan() = default;
  Floorplan(std::string name, double width_mm, double height_mm);

  void add_block(Block block);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] double width() const { return width_; }
  [[nodiscard]] double height() const { return height_; }
  [[nodiscard]] Rect outline() const { return Rect{0.0, 0.0, width_, height_}; }

  [[nodiscard]] const std::vector<Block>& blocks() const { return blocks_; }

  /// Bank-array block for @p bank_index; throws std::out_of_range if absent.
  [[nodiscard]] const Block& bank(int bank_index) const;

  /// Number of kBankArray blocks.
  [[nodiscard]] int bank_count() const;

  /// All blocks of a given type.
  [[nodiscard]] std::vector<const Block*> blocks_of_type(BlockType t) const;

  /// True when no two blocks overlap and all fit inside the outline.
  [[nodiscard]] bool is_legal() const;

  /// Total block area / die area.
  [[nodiscard]] double utilization() const;

 private:
  std::string name_;
  double width_ = 0.0;
  double height_ = 0.0;
  std::vector<Block> blocks_;
};

}  // namespace pdn3d::floorplan
