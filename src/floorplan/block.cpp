#include "floorplan/block.hpp"

namespace pdn3d::floorplan {

std::string to_string(BlockType t) {
  switch (t) {
    case BlockType::kBankArray: return "bank";
    case BlockType::kRowDecoder: return "row_decoder";
    case BlockType::kColDecoder: return "col_decoder";
    case BlockType::kPeriphery: return "periphery";
    case BlockType::kIoBlock: return "io";
    case BlockType::kCore: return "core";
    case BlockType::kCache: return "cache";
    case BlockType::kUncore: return "uncore";
  }
  return "?";
}

}  // namespace pdn3d::floorplan
