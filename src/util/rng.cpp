#include "util/rng.hpp"

#include <cmath>

namespace pdn3d::util {

Rng::Rng(std::uint64_t seed, std::uint64_t stream) : state_(0), inc_((stream << 1u) | 1u) {
  next_u32();
  state_ += seed;
  next_u32();
}

Rng Rng::split(std::uint64_t seed, std::uint64_t stream_id) {
  // splitmix64 finalizer: bijective, so distinct stream ids stay distinct
  // after mixing (and therefore select distinct PCG32 streams).
  std::uint64_t z = stream_id + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30u)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27u)) * 0x94d049bb133111ebULL;
  z ^= z >> 31u;
  return Rng(seed, z);
}

std::uint32_t Rng::next_u32() {
  const std::uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
  const auto rot = static_cast<std::uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::uint32_t Rng::next_below(std::uint32_t bound) {
  if (bound <= 1) return 0;
  // Rejection sampling to avoid modulo bias.
  const std::uint32_t threshold = (0u - bound) % bound;
  for (;;) {
    const std::uint32_t r = next_u32();
    if (r >= threshold) return r % bound;
  }
}

double Rng::next_double() {
  return static_cast<double>(next_u32()) * (1.0 / 4294967296.0);
}

bool Rng::next_bool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

int Rng::next_int(int lo, int hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint32_t>(hi - lo + 1);
  return lo + static_cast<int>(next_below(span));
}

int Rng::next_geometric(double mean) {
  if (mean <= 0.0) return 0;
  const double u = 1.0 - next_double();  // in (0, 1]
  const double p = 1.0 / (mean + 1.0);
  return static_cast<int>(std::floor(std::log(u) / std::log(1.0 - p)));
}

}  // namespace pdn3d::util
